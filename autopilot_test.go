package gensched

import (
	"strings"
	"testing"
)

func TestAutopilotValidation(t *testing.T) {
	c, err := NewCluster(16, ClusterConfig{Policy: MustPolicy("FCFS")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Autopilot(c, AutopilotConfig{}); err == nil {
		t.Fatal("autopilot without an interval accepted")
	}
	// A cluster supports one loop: a second attach must fail loudly, not
	// silently replace the first (whose handle would then report the
	// impostor's statistics).
	if _, err := Autopilot(c, AutopilotConfig{Interval: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := Autopilot(c, AutopilotConfig{Interval: 200}); err == nil {
		t.Fatal("second autopilot silently replaced the first")
	}
}

func TestAutopilotOnCluster(t *testing.T) {
	c, err := NewCluster(16, ClusterConfig{Policy: MustPolicy("FCFS"), Backfill: BackfillEASY})
	if err != nil {
		t.Fatal(err)
	}
	loop, err := Autopilot(c, AutopilotConfig{
		Interval:  100,
		Window:    64,
		MinWindow: 8,
		Tuples:    1,
		Trials:    16,
		TopK:      1,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stream a small deterministic workload through the live cluster; the
	// adaptation rounds ride on AdvanceTo.
	for i := 1; i <= 24; i++ {
		at := float64(i * 30)
		if _, err := c.AdvanceTo(at); err != nil {
			t.Fatal(err)
		}
		if err := c.Submit(Job{ID: i, Submit: at, Runtime: float64(60 + i%5*200), Cores: 1 + i%4}); err != nil {
			t.Fatal(err)
		}
		c.Flush()
	}
	if _, err := c.AdvanceTo(1e4); err != nil {
		t.Fatal(err)
	}
	ds := loop.Decisions()
	if len(ds) == 0 {
		t.Fatal("autopilot never ticked")
	}
	if loop.Rounds() < 1 {
		t.Fatalf("autopilot never retrained: %+v", ds)
	}
	last := ds[len(ds)-1]
	if last.Incumbent == "" {
		t.Fatalf("decision carries no incumbent: %+v", last)
	}
	if loop.Promotions() > 0 && c.Status().Policy == "FCFS" {
		t.Fatal("promotion recorded but the cluster still runs FCFS")
	}
}

func TestTrainOnWindow(t *testing.T) {
	trace, err := LublinTrace(64, 0.5, 1.2, 42)
	if err != nil {
		t.Fatal(err)
	}
	window := trace.Jobs
	if len(window) > 256 {
		window = window[:256]
	}
	cands, pols, err := TrainOnWindow(window, 64, ClusterConfig{Backfill: BackfillEASY}, AutopilotConfig{
		MinWindow: 16,
		Tuples:    1,
		Trials:    32,
		TopK:      2,
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 || len(cands) != len(pols) {
		t.Fatalf("%d candidates, %d policies", len(cands), len(pols))
	}
	for i, cand := range cands {
		if !strings.HasPrefix(pols[i].Name(), "W.") {
			t.Errorf("policy %d named %q", i, pols[i].Name())
		}
		// The textual form deploys through ParsePolicy — the round trip a
		// config file or the schedd policy endpoint performs.
		if _, err := ParsePolicy("DEPLOYED", cand.Expr); err != nil {
			t.Errorf("candidate %d expr %q does not deploy: %v", i, cand.Expr, err)
		}
		if cand.AveBsld < 1 {
			t.Errorf("candidate %d shadow AveBsld %g below 1", i, cand.AveBsld)
		}
	}
}
