package gensched

import (
	"errors"

	"github.com/hpcsched/gensched/internal/adaptive"
)

// AutopilotConfig configures a closed-loop adaptive retrainer attached to
// a Cluster (internal/adaptive). Every zero field selects a default;
// Interval is required. At the default sizing one adaptation round costs
// a few hundred milliseconds (BenchmarkAdaptiveLoop) and runs inside the
// AdvanceTo call that makes it due.
type AutopilotConfig struct {
	// Window is the sliding-window capacity in observed jobs (default 512);
	// MinWindow is the fewest jobs a retraining round needs (default 64).
	Window    int
	MinWindow int
	// Interval is the logical-clock seconds between adaptation rounds
	// (required > 0); rounds fire as the Cluster's clock crosses each
	// multiple of it.
	Interval float64
	// MinDrift skips retraining while the window's characterization has
	// moved less than this many nats since the last round (0 = retrain
	// every round).
	MinDrift float64
	// SSize, QSize, Tuples, Trials size the window-matched training set
	// (Tuples and Trials default to 4 and 256; zero SSize/QSize auto-size
	// each round from the window's mean core request — up to |S|=128,
	// |Q|=256 on a flood of narrow jobs — so the trials see real
	// contention whatever the observed mix). TopK is how many distinct
	// fitted candidates are shadow-evaluated (default 3).
	SSize, QSize, Tuples, Trials, TopK int
	// Margin is the relative window-AveBsld improvement a candidate must
	// show to be promoted (default 0.05); Cooldown is the minimum logical
	// time between promotions (default: two Intervals).
	Margin   float64
	Cooldown float64
	// Workers bounds the loop's parallelism (0 = GOMAXPROCS); results
	// never depend on it.
	Workers int
	// Seed drives every stochastic choice of the loop.
	Seed uint64
}

// AdaptiveDecision records one adaptation round: the retrain instant, the
// window characterization and drift, the shadow-evaluated candidates, and
// the promotion outcome.
type AdaptiveDecision = adaptive.Decision

// AdaptiveCandidate is one fitted function after shadow evaluation.
type AdaptiveCandidate = adaptive.Candidate

// WindowCharacterization summarizes a window of observed traffic.
type WindowCharacterization = adaptive.Characterization

// AdaptiveLoop is the handle Autopilot returns: a read-only view of the
// adaptation history. The loop itself runs inside the Cluster's calls —
// Submit feeds the observation window, and AdvanceTo runs due adaptation
// rounds and applies promotions via the policy hot-swap — so there is no
// goroutine to manage and the loop is exactly as deterministic as the
// stream driving the Cluster.
type AdaptiveLoop struct {
	c    *Cluster
	ctrl *adaptive.Controller
}

// Autopilot closes the paper's loop on a live Cluster: it watches the
// job stream, periodically re-runs the simulate→score→regress pipeline on
// a sliding window of observed traffic, shadow-evaluates the refitted
// candidates against the incumbent policy by replaying the window on a
// digital twin, and hot-swaps the winner in when it beats the incumbent's
// window AveBsld by the configured margin. See examples/adaptivesched for
// the loop reacting to workload drift end to end.
//
// Attach the autopilot before streaming; a Cluster supports one loop.
// The first adaptation round comes due one Interval after the cluster's
// clock at attach time.
func Autopilot(c *Cluster, cfg AutopilotConfig) (*AdaptiveLoop, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pilot != nil {
		return nil, errors.New("gensched: cluster already has an autopilot attached")
	}
	ac := cfg.internal(c.cores, c.cfg)
	ac.Now = c.s.Clock()
	// The digital twin starts shadow replays from the cluster's real
	// backlog. The probe runs inside Tick, which the Cluster only calls
	// while already holding its lock.
	ac.Queue = func() []Job { return c.s.QueuedJobs() }
	ctrl, err := adaptive.New(ac)
	if err != nil {
		return nil, err
	}
	c.pilot = ctrl
	c.pilotErr = nil
	return &AdaptiveLoop{c: c, ctrl: ctrl}, nil
}

// internal maps the public config onto the adaptive package's, filling
// the scheduling-regime fields from the cluster's — the single place the
// two field lists are reconciled.
func (cfg AutopilotConfig) internal(cores int, cc ClusterConfig) adaptive.Config {
	return adaptive.Config{
		Cores:         cores,
		Backfill:      cc.Backfill,
		BackfillOrder: cc.BackfillOrder,
		UseEstimates:  cc.UseEstimates,
		Tau:           cc.Tau,
		Window:        cfg.Window,
		MinWindow:     cfg.MinWindow,
		Interval:      cfg.Interval,
		MinDrift:      cfg.MinDrift,
		SSize:         cfg.SSize,
		QSize:         cfg.QSize,
		Tuples:        cfg.Tuples,
		Trials:        cfg.Trials,
		TopK:          cfg.TopK,
		Margin:        cfg.Margin,
		Cooldown:      cfg.Cooldown,
		Workers:       cfg.Workers,
		Seed:          cfg.Seed,
	}
}

// Decisions returns the adaptation history (a bounded log of the most
// recent rounds), oldest first.
func (l *AdaptiveLoop) Decisions() []AdaptiveDecision {
	l.c.mu.Lock()
	defer l.c.mu.Unlock()
	return append([]AdaptiveDecision(nil), l.ctrl.Decisions()...)
}

// Promotions returns how many rounds promoted a new policy.
func (l *AdaptiveLoop) Promotions() int {
	l.c.mu.Lock()
	defer l.c.mu.Unlock()
	return l.ctrl.Promotions()
}

// Rounds returns how many rounds actually retrained (skips excluded).
func (l *AdaptiveLoop) Rounds() int {
	l.c.mu.Lock()
	defer l.c.mu.Unlock()
	return l.ctrl.Rounds()
}

// Err reports the failure that detached the loop from its Cluster, or
// nil while the loop is healthy. Loop failures never fail the scheduling
// call that triggered the round — check here (the daemon surfaces the
// same condition as last_error on /v1/adapt).
func (l *AdaptiveLoop) Err() error {
	l.c.mu.Lock()
	defer l.c.mu.Unlock()
	return l.c.pilotErr
}

// TrainOnWindow runs one window-matched retraining cycle on a fixed job
// window — the offline entry point for fitting an initial incumbent from
// historical traffic with the same machinery the Autopilot runs live. The
// candidates are shadow-ranked by replaying the window under the target
// cluster's scheduling regime (cluster.Backfill, UseEstimates, Tau), so
// the pick transfers to the cluster it will be deployed on. It returns
// the shadow-evaluated candidates in fit-rank order and the matching
// ready-to-use policies (named W.1, W.2, ...); candidates' Expr strings
// round-trip through ParsePolicy for deployment under any name.
func TrainOnWindow(window []Job, cores int, cluster ClusterConfig, cfg AutopilotConfig) ([]AdaptiveCandidate, []Policy, error) {
	return adaptive.TrainWindow(window, cfg.internal(cores, cluster))
}
