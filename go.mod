module github.com/hpcsched/gensched

go 1.22
