// Package gensched reproduces "Obtaining Dynamic Scheduling Policies with
// Simulation and Machine Learning" (Carastan-Santos & de Camargo, SC'17):
// a complete pipeline that (1) simulates the scheduling behavior of rigid
// parallel tasks on a homogeneous cluster, (2) scores tasks by how much
// running them first improves the average bounded slowdown of a queue,
// (3) fits simple nonlinear functions to those scores by weighted
// regression, and (4) uses the best functions (F1–F4) as dynamic
// scheduling policies that outperform classical and ad-hoc heuristics.
//
// # Scenarios, grids and the Runner
//
// The paper's contribution is not one simulation but a grid of them —
// policies × loads × seeds × backfill modes × platforms — so the primary
// API is declarative. A Scenario describes one experiment; a Grid is the
// cartesian product of a base scenario and axes; a Runner executes the
// grid on a bounded worker pool with context cancellation:
//
//	sc, _ := gensched.NewScenario(
//		gensched.WithCores(256),
//		gensched.WithLublin(15, 1.0), // 15-day sequences, offered load 1.0
//		gensched.WithSequences(10),
//	)
//	g, _ := gensched.NewGrid(sc,
//		gensched.OverPolicies("FCFS", "SPT", "F1"),
//		gensched.OverSeeds(1, 2, 3),
//	)
//	res, _ := (&gensched.Runner{}).Run(ctx, g)
//	fmt.Print(res.Format())
//
// Execution is deterministic for any worker count: every cell derives
// its workload seed with SplitSeed from the cell's axis coordinates, and
// cells that differ only in policy or backfill mode schedule identical
// job sequences (the paper's paired-comparison design). One-shot helpers
// (Simulate, LublinTrace) remain as thin conveniences over the same
// engine.
//
// # Subsystems
//
// The package is the public facade; the subsystems live in internal/
// packages and are re-exported here as needed:
//
//   - the scheduling core shared by both engines: event heap, queue and
//     running-set orders, backfilling, invariant checks
//     (internal/schedcore),
//   - a discrete-event cluster simulator with EASY and conservative
//     backfilling (internal/sim),
//   - the incremental online scheduler behind the Cluster wrapper and
//     the cmd/schedd daemon (internal/online),
//   - the policy zoo: FCFS, SPT, LPT, SAF, WFP3, UNICEF, F1–F4, and
//     SLURM-style multifactor (internal/sched),
//   - the Lublin–Feitelson workload model and Tsafrir estimate model
//     (internal/lublin, internal/tsafrir),
//   - the deterministic RNG and distribution kernel (internal/dist) and
//     the shared parallel execution engine (internal/runner),
//   - SWF trace I/O (internal/workload),
//   - the trial/score training engine (internal/trainer),
//   - the 576-function enumeration and Levenberg–Marquardt regression
//     (internal/expr, internal/mlfit),
//   - synthetic stand-ins for the Curie/Intrepid/SDSC/CTC traces
//     (internal/traces), and
//   - drivers for every table and figure of the paper
//     (internal/experiments), exercised by bench_test.go and cmd/paperrepro.
package gensched

import (
	"fmt"
	"io"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/expr"
	"github.com/hpcsched/gensched/internal/lublin"
	"github.com/hpcsched/gensched/internal/mlfit"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/trainer"
	"github.com/hpcsched/gensched/internal/tsafrir"
	"github.com/hpcsched/gensched/internal/workload"
)

// Version identifies the library release.
const Version = "1.0.0"

// Core model types, re-exported.
type (
	// Job is a rigid task: arrival time, actual and estimated processing
	// times, and a core requirement (§3.1 of the paper).
	Job = workload.Job
	// Trace is an ordered job collection with its platform size.
	Trace = workload.Trace
	// Policy scores waiting tasks; lower scores run first.
	Policy = sched.Policy
	// JobView is what a policy sees about a waiting task.
	JobView = sched.JobView
	// SimOptions configures a simulation run.
	SimOptions = sim.Options
	// SimResult is the outcome of a simulation run.
	SimResult = sim.Result
	// BackfillMode selects none, EASY (aggressive) or conservative.
	BackfillMode = sim.BackfillMode
	// Sample is one (r, n, s, score) training observation.
	Sample = mlfit.Sample
	// FitResult is one fitted candidate function with its Eq. 5 rank.
	FitResult = mlfit.Result
	// Func is a nonlinear function of the paper's family.
	Func = expr.Func
)

// Backfill modes, re-exported.
const (
	BackfillNone         = sim.BackfillNone
	BackfillEASY         = sim.BackfillEASY
	BackfillConservative = sim.BackfillConservative
)

// Policies returns the paper's eight evaluation policies in figure order:
// FCFS, WFP3, UNICEF, SPT, F4, F3, F2, F1.
func Policies() []Policy { return sched.Registry() }

// PolicyByName resolves a policy by report name (also accepts the paper's
// abbreviations WFP, UNI, and EASY).
func PolicyByName(name string) (Policy, error) { return sched.ByName(name) }

// MustPolicy is PolicyByName that panics on unknown names; convenient in
// examples and tests.
func MustPolicy(name string) Policy {
	p, err := sched.ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePolicy builds a policy from the compact textual form of a function
// of the paper's family, e.g. "log10(r)*n + 870*log10(s)" — the syntax
// the fitting tools print — so learned policies round-trip through plain
// configuration strings.
func ParsePolicy(name, src string) (Policy, error) {
	return sched.ParseExpr(name, src)
}

// Simulate schedules jobs on a homogeneous cluster with the given number
// of cores and returns per-job statistics and aggregate metrics, including
// the average bounded slowdown (Eq. 2).
//
// Deprecated: Simulate is the legacy one-shot path, kept for existing
// callers and as the golden reference the Runner is tested against. New
// code should describe the experiment with NewScenario (WithJobs or
// WithTrace for a fixed workload) and execute it with a Runner, which
// adds grids, worker pools, cancellation and deterministic seeding.
func Simulate(cores int, jobs []Job, opt SimOptions) (*SimResult, error) {
	return sim.Run(sim.Platform{Cores: cores}, jobs, opt)
}

// LublinTrace generates a synthetic workload from the Lublin–Feitelson
// model for a machine with the given cores, spanning the given number of
// days. If targetLoad > 0, arrival times are rescaled so the offered load
// Σ(r·n)/(cores·span) matches it; pass 0 to keep the model's natural load.
// Estimates are perfect; see ApplyEstimates for the Tsafrir model.
//
// Deprecated: LublinTrace is the legacy one-shot path, kept for existing
// callers. New code should select the model declaratively with
// WithLublin on a Scenario, which adds load calibration retries, window
// slicing, Tsafrir estimates and per-cell seed derivation.
func LublinTrace(cores int, days, targetLoad float64, seed uint64) (*Trace, error) {
	gen, err := lublin.NewGenerator(lublin.DefaultParams(cores), cores, seed)
	if err != nil {
		return nil, err
	}
	jobs := gen.Until(days * 24 * 3600)
	if targetLoad > 0 {
		lublin.CalibrateLoad(jobs, cores, targetLoad)
	}
	return &Trace{Name: "lublin", MaxProcs: cores, Jobs: jobs}, nil
}

// ApplyEstimates overwrites every job's user estimate with a draw from the
// Tsafrir model (canonical round values, e >= r).
func ApplyEstimates(jobs []Job, seed uint64) error {
	return tsafrir.Apply(tsafrir.Default(), jobs, seed)
}

// ReadSWF parses a trace in Standard Workload Format.
func ReadSWF(r io.Reader) (*Trace, error) { return workload.ParseSWF(r) }

// WriteSWF writes a trace in Standard Workload Format.
func WriteSWF(w io.Writer, t *Trace) error { return workload.WriteSWF(w, t) }

// TrainingConfig scales the score-distribution generation pipeline (§3.2).
// The zero value of every field selects the paper's (reduced-scale)
// defaults: 8 tuples × 4096 trials with |S|=16, |Q|=32 on 256 cores.
type TrainingConfig struct {
	Tuples  int // number of (S, Q) tuples (more = smoother distribution)
	Trials  int // permutation trials per tuple (paper: 256k)
	Seed    uint64
	SSize   int // |S|: initial resource-state tasks per tuple (0 = 16)
	QSize   int // |Q|: measured tasks per tuple (0 = 32)
	Cores   int // training machine size (0 = 256)
	Workers int // parallel workers (0 = GOMAXPROCS)
}

// GenerateScoreDistribution runs the paper's simulation scheme and
// returns the training samples (r, n, s, score).
func GenerateScoreDistribution(cfg TrainingConfig) ([]Sample, error) {
	if cfg.Tuples <= 0 {
		cfg.Tuples = 8
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 4096
	}
	spec := trainer.DefaultSpec()
	if cfg.SSize > 0 {
		spec.SSize = cfg.SSize
	}
	if cfg.QSize > 0 {
		spec.QSize = cfg.QSize
	}
	if cfg.Cores > 0 {
		spec.Cores = cfg.Cores
		spec.Params = lublin.DefaultParams(cfg.Cores)
	}
	return trainer.ScoreDistribution(cfg.Tuples, spec,
		trainer.TrialConfig{Trials: cfg.Trials, Workers: cfg.Workers}, cfg.Seed)
}

// FitPolicies fits all 576 candidate nonlinear functions to the samples
// with the paper's r·n weighting and returns the top distinct fits as
// ready-to-use policies named L1, L2, ... alongside the fit details.
// workers bounds the fitting parallelism (0 = GOMAXPROCS), matching the
// Workers field callers already pass to GenerateScoreDistribution — the
// result never depends on it.
func FitPolicies(samples []Sample, top, workers int) ([]Policy, []FitResult, error) {
	if top <= 0 {
		top = 4
	}
	ranked, err := mlfit.FitAll(samples, mlfit.Options{Workers: workers})
	if err != nil {
		return nil, nil, err
	}
	best := mlfit.TopDistinct(ranked, top)
	policies := make([]Policy, len(best))
	for i, b := range best {
		f, _ := b.Func.Simplified()
		policies[i] = sched.Expr(policyName(i), f)
	}
	return policies, best, nil
}

func policyName(i int) string { return fmt.Sprintf("L%d", i+1) }

// SplitSeed derives independent sub-seeds, re-exported for callers that
// fan simulations out in parallel and want reproducibility.
func SplitSeed(seed, stream uint64) uint64 { return dist.Split(seed, stream) }

// SliceWindows cuts a trace into count disjoint sequences of the given
// length in days, rebasing submit times — the shape of the paper's dynamic
// scheduling experiments (ten fifteen-day sequences).
func SliceWindows(t *Trace, days float64, count int) ([][]Job, error) {
	return workload.Windows(t, days*24*3600, count, 1)
}
