package gensched

import (
	"fmt"

	"github.com/hpcsched/gensched/internal/sched"
)

// Grid is the cartesian product of a base Scenario and up to five axes:
// workload sources, offered loads, seeds, backfill modes and policies.
// Every combination becomes one cell — a fully-resolved Scenario — so
// "add a new scenario axis" is a one-line edit:
//
//	g, err := gensched.NewGrid(base,
//		gensched.OverPolicies("FCFS", "SPT", "F1"),
//		gensched.OverLoads(0.8, 1.05),
//		gensched.OverSeeds(1, 2, 3),
//	)
//
// Axis semantics follow the paper's paired-comparison design: cells that
// differ only in policy or backfill mode schedule the SAME workload
// (same source, load and seed), so policy differences are never
// confounded with workload noise.
type Grid struct {
	Base *Scenario

	// The axes; an empty axis means "the base scenario's value".
	Sources   []WorkloadSource
	Loads     []float64
	Seeds     []uint64
	Backfills []BackfillMode
	Policies  []Policy
}

// Axis adds one dimension to a Grid under construction.
type Axis func(*Grid) error

// NewGrid builds a grid from a base scenario and axes. The base fills
// every dimension an axis does not override.
func NewGrid(base *Scenario, axes ...Axis) (*Grid, error) {
	if base == nil {
		return nil, fmt.Errorf("gensched: grid needs a base scenario")
	}
	g := &Grid{Base: base}
	for _, ax := range axes {
		if err := ax(g); err != nil {
			return nil, err
		}
	}
	// Resolve defaulted axes from the base so expansion is uniform.
	if len(g.Sources) == 0 {
		g.Sources = []WorkloadSource{base.Source}
	}
	if len(g.Loads) == 0 {
		g.Loads = []float64{base.Load}
	}
	if len(g.Seeds) == 0 {
		g.Seeds = []uint64{base.Seed}
	}
	if len(g.Backfills) == 0 {
		g.Backfills = []BackfillMode{base.Backfill}
	}
	if len(g.Policies) == 0 {
		if base.Policy == nil {
			return nil, fmt.Errorf("gensched: grid needs a policy: set one on the base scenario or add OverPolicies")
		}
		g.Policies = []Policy{base.Policy}
	}
	// Reject fixed workloads with jobs larger than the machine a cell
	// will run them on, mirroring NewScenario's build-time validation for
	// sources attached through OverSources.
	for _, src := range g.Sources {
		if err := validateSourceJobs(src, cellCores(base, src), src.Describe()); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// cellCores resolves the machine size a cell scheduling src runs on: a
// source's intrinsic size fills the field unless the user set one
// explicitly (WithCores after WithTrace/WithPlatform). NewGrid validation
// and cell expansion share this so they can never disagree.
func cellCores(base *Scenario, src WorkloadSource) int {
	if src.DefaultCores() > 0 && !base.coresSet {
		return src.DefaultCores()
	}
	return base.Cores
}

// OverPolicies adds a policy axis by report name. With no names, the
// paper's eight evaluation policies are used in figure order.
func OverPolicies(names ...string) Axis {
	return func(g *Grid) error {
		if len(names) == 0 {
			g.Policies = append(g.Policies, sched.Registry()...)
			return nil
		}
		for _, name := range names {
			p, err := sched.ByName(name)
			if err != nil {
				return err
			}
			g.Policies = append(g.Policies, p)
		}
		return nil
	}
}

// OverPolicySet adds policy values directly — learned policies from
// FitPolicies, parsed ones from ParsePolicy, or any custom Policy.
func OverPolicySet(ps ...Policy) Axis {
	return func(g *Grid) error {
		for _, p := range ps {
			if p == nil {
				return fmt.Errorf("gensched: OverPolicySet: nil policy")
			}
			g.Policies = append(g.Policies, p)
		}
		return nil
	}
}

// OverLoads adds an offered-load axis.
func OverLoads(loads ...float64) Axis {
	return func(g *Grid) error {
		for _, l := range loads {
			if l < 0 {
				return fmt.Errorf("gensched: OverLoads(%v): need non-negative loads", l)
			}
		}
		g.Loads = append(g.Loads, loads...)
		return nil
	}
}

// OverSeeds adds a seed axis: independent workload draws of otherwise
// identical scenarios, the way the paper controls variance.
func OverSeeds(seeds ...uint64) Axis {
	return func(g *Grid) error {
		g.Seeds = append(g.Seeds, seeds...)
		return nil
	}
}

// OverBackfills adds a backfill-mode axis.
func OverBackfills(modes ...BackfillMode) Axis {
	return func(g *Grid) error {
		g.Backfills = append(g.Backfills, modes...)
		return nil
	}
}

// OverPlatforms adds a workload-source axis of Table 5 platform
// stand-ins by name. With no names, all four platforms are used in the
// paper's order.
func OverPlatforms(names ...string) Axis {
	return func(g *Grid) error {
		if len(names) == 0 {
			names = PlatformNames()
		}
		for _, name := range names {
			src, err := Platform(name)
			if err != nil {
				return err
			}
			g.Sources = append(g.Sources, src)
		}
		return nil
	}
}

// OverSources adds arbitrary workload sources as an axis.
func OverSources(sources ...WorkloadSource) Axis {
	return func(g *Grid) error {
		for _, s := range sources {
			if s == nil {
				return fmt.Errorf("gensched: OverSources: nil source")
			}
			g.Sources = append(g.Sources, s)
		}
		return nil
	}
}

// Size returns the number of cells the grid expands to.
func (g *Grid) Size() int {
	return len(g.Sources) * len(g.Loads) * len(g.Seeds) * len(g.Backfills) * len(g.Policies)
}

// cell is one resolved grid point plus its axis coordinates.
type cell struct {
	Scenario           Scenario // fully-resolved copy of the base
	Index              int
	si, li, ki, bi, pi int // axis coordinates (source, load, seed, backfill, policy)
}

// workloadKey identifies the workload a cell schedules: cells differing
// only in backfill mode or policy share it.
func (c *cell) workloadKey(g *Grid) int {
	return (c.si*len(g.Loads)+c.li)*len(g.Seeds) + c.ki
}

// Cells expands the grid in deterministic order: sources outermost, then
// loads, seeds, backfill modes, and policies innermost. The returned
// scenarios are fully resolved (every axis value written into the copy).
func (g *Grid) Cells() []Scenario {
	cells := g.cells()
	out := make([]Scenario, len(cells))
	for i, c := range cells {
		out[i] = c.Scenario
	}
	return out
}

func (g *Grid) cells() []*cell {
	out := make([]*cell, 0, g.Size())
	idx := 0
	for si, src := range g.Sources {
		for li, load := range g.Loads {
			for ki, seed := range g.Seeds {
				for bi, bf := range g.Backfills {
					for pi, pol := range g.Policies {
						sc := *g.Base
						sc.Source = src
						sc.Load = load
						sc.Seed = seed
						sc.Backfill = bf
						sc.Policy = pol
						sc.Cores = cellCores(g.Base, src)
						sc.Name = cellName(&sc, g.Base)
						out = append(out, &cell{
							Scenario: sc, Index: idx,
							si: si, li: li, ki: ki, bi: bi, pi: pi,
						})
						idx++
					}
				}
			}
		}
	}
	return out
}

// cellName builds a readable identity for one cell. A user-supplied base
// name (WithName) stays as the leading segment; otherwise the workload
// source's description leads.
func cellName(sc *Scenario, base *Scenario) string {
	head := sc.Source.Describe()
	if base.nameSet {
		head = base.Name
	}
	name := fmt.Sprintf("%s/%s", head, sc.Policy.Name())
	if sc.Load > 0 {
		name += fmt.Sprintf("/load=%.2f", sc.Load)
	}
	if sc.Backfill != BackfillNone {
		name += "/" + sc.Backfill.String()
	}
	return fmt.Sprintf("%s/seed=%d", name, sc.Seed)
}
