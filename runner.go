package gensched

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/runner"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/stats"
)

// Runner executes experiment grids on a bounded worker pool. The zero
// value is ready to use: GOMAXPROCS workers, no streaming.
//
// Execution is deterministic by construction: every grid cell derives
// its workload seed from the cell's axis coordinates with SplitSeed, each
// (cell, sequence) simulation is self-contained, and results land in
// pre-assigned slots — so results are bit-identical for any Workers
// value, and a cancelled run can be re-run and produce the same numbers.
type Runner struct {
	// Workers bounds the pool; 0 means GOMAXPROCS.
	Workers int
	// OnResult, when set, streams each cell's result as it completes.
	// Calls are serialized but arrive in completion order, which depends
	// on scheduling; the returned GridResult is always in cell order.
	OnResult func(*CellResult)
	// KeepSims retains the full per-sequence simulation results
	// (per-job statistics, utilization, backfill counts) on every cell.
	// Off by default: a large grid's job-level statistics can dwarf the
	// aggregates.
	KeepSims bool
}

// CellResult is the outcome of one grid cell: per-sequence average
// bounded slowdowns plus aggregates.
type CellResult struct {
	// Index is the cell's position in the grid's deterministic expansion.
	Index int
	// Scenario is the fully-resolved cell.
	Scenario Scenario
	// Workload names the scheduled workload; Cores is the machine size
	// the cell actually ran on (sources may override the scenario's).
	Workload string
	Cores    int
	// WorkloadSeed is the SplitSeed-derived seed the workload was built
	// from; cells differing only in policy or backfill share it.
	WorkloadSeed uint64
	// PerSeq holds the average bounded slowdown (Eq. 2) of every
	// sequence; AVEbsld is their mean.
	PerSeq  []float64
	AVEbsld float64
	// Sims holds the full simulation result of every sequence when the
	// Runner's KeepSims is set; nil otherwise.
	Sims []*SimResult
}

// Median returns the per-sequence median AVEbsld — the aggregation the
// paper's Table 4 reports.
func (c *CellResult) Median() float64 { return stats.Median(c.PerSeq) }

// Quantile returns the q-quantile (0..1) of the per-sequence AVEbsld
// values, e.g. Quantile(0.75)-Quantile(0.25) for the IQR spread the
// paper's boxplots show.
func (c *CellResult) Quantile(q float64) float64 { return stats.Quantile(c.PerSeq, q) }

// GridResult collects every cell of a grid run, in cell order.
type GridResult struct {
	Cells []*CellResult
}

// Format renders the results as a table, one cell per row.
func (r *GridResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-48s %10s %10s\n", "cell", "AVEbsld", "median")
	for _, c := range r.Cells {
		fmt.Fprintf(&sb, "%-48s %10.2f %10.2f\n", c.Scenario.Name, c.AVEbsld, c.Median())
	}
	return sb.String()
}

// WriteCSV emits the per-sequence AVEbsld matrix: one row per cell
// (labeled by policy name), one column per sequence — the raw series
// behind one boxplot figure panel. The header spans the longest cell;
// cells with fewer sequences leave trailing columns empty.
func (r *GridResult) WriteCSV(w io.Writer) error {
	if len(r.Cells) == 0 {
		return fmt.Errorf("gensched: no cells to write")
	}
	maxSeq := 0
	for _, c := range r.Cells {
		if len(c.PerSeq) > maxSeq {
			maxSeq = len(c.PerSeq)
		}
	}
	if _, err := fmt.Fprint(w, "policy"); err != nil {
		return err
	}
	for si := 0; si < maxSeq; si++ {
		if _, err := fmt.Fprintf(w, ",seq%d", si+1); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, c := range r.Cells {
		if _, err := fmt.Fprint(w, c.Scenario.Policy.Name()); err != nil {
			return err
		}
		for _, v := range c.PerSeq {
			if _, err := fmt.Fprintf(w, ",%g", v); err != nil {
				return err
			}
		}
		for si := len(c.PerSeq); si < maxSeq; si++ {
			if _, err := fmt.Fprint(w, ","); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// ArtifactReport renders the grid in the format of the paper artifact's
// sched-performance-tester output: medians, means and standard
// deviations per cell, plus ASCII boxplots of the per-sequence values.
// Rows are labeled by policy name, so it reads best on grids whose only
// axis is the policy (the artifact's own shape).
func (r *GridResult) ArtifactReport() string {
	var sb strings.Builder
	first := r.Cells[0]
	fmt.Fprintf(&sb, "Performing scheduling performance test for the workload %s.\n", first.Workload)
	est := "actual runtimes"
	if first.Scenario.UseEstimates {
		est = "runtime estimates"
	}
	fmt.Fprintf(&sb, "Configuration:\nUsing %s, backfilling %s\n", est, first.Scenario.Backfill)
	sb.WriteString("Experiment Statistics:\n")
	labels := make([]string, len(r.Cells))
	for i, c := range r.Cells {
		labels[i] = c.Scenario.Policy.Name()
	}
	line := func(label string, f func([]float64) float64) {
		fmt.Fprintf(&sb, "%s:\n", label)
		for i, c := range r.Cells {
			if i > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%s=%.2f", labels[i], f(c.PerSeq))
		}
		sb.WriteString("\n")
	}
	line("Medians", stats.Median)
	line("Means", stats.Mean)
	line("Standard Deviations", stats.StdDev)
	boxes := make([]stats.Boxplot, 0, len(r.Cells))
	for _, c := range r.Cells {
		b, err := stats.NewBoxplot(c.PerSeq)
		if err != nil {
			return sb.String() // single-sequence cells have no boxplot
		}
		boxes = append(boxes, b)
	}
	sb.WriteString(stats.RenderBoxplots(labels, boxes, 60))
	return sb.String()
}

// Run expands the grid and executes every cell on the pool. Workloads
// shared by several cells (same source, load and seed) are built once
// and reused. The context cancels the run between simulations; on
// cancellation or the first error the partial results are discarded and
// the lowest-index error is returned.
func (r *Runner) Run(ctx context.Context, g *Grid) (*GridResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cells := g.cells()
	if len(cells) == 0 {
		return nil, fmt.Errorf("gensched: empty grid")
	}

	// Phase 1: build each distinct workload once, in parallel. The
	// workload seed depends only on the (source, load, seed) coordinates,
	// never on policy or backfill, so paired cells schedule identical
	// job sequences.
	nWorkloads := len(g.Sources) * len(g.Loads) * len(g.Seeds)
	firstCell := make([]*cell, nWorkloads) // one representative per key
	for _, c := range cells {
		if k := c.workloadKey(g); firstCell[k] == nil {
			firstCell[k] = c
		}
	}
	workloads, err := runner.Map(ctx, r.Workers, nWorkloads, func(_ context.Context, k int) (*Workload, error) {
		c := firstCell[k]
		sc := &c.Scenario
		wseed := workloadSeed(sc.Seed, c.si, c.li)
		w, err := sc.Source.Build(WorkloadRequest{
			Cores:     sc.Cores,
			Days:      sc.Days,
			Sequences: sc.Sequences,
			Load:      sc.Load,
			Seed:      wseed,
		})
		if err != nil {
			return nil, fmt.Errorf("gensched: workload for %s: %w", sc.Name, err)
		}
		if len(w.Windows) == 0 {
			return nil, fmt.Errorf("gensched: workload for %s has no sequences", sc.Name)
		}
		return w, nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: flatten (cell, sequence) into independent simulations so
	// the pool stays busy even when one cell has many sequences.
	results := make([]*CellResult, len(cells))
	pending := make([]atomic.Int32, len(cells))
	type task struct{ ci, seq int }
	var tasks []task
	for i, c := range cells {
		w := workloads[c.workloadKey(g)]
		results[i] = &CellResult{
			Index:        c.Index,
			Scenario:     c.Scenario,
			Workload:     w.Name,
			Cores:        w.Cores,
			WorkloadSeed: workloadSeed(c.Scenario.Seed, c.si, c.li),
			PerSeq:       make([]float64, len(w.Windows)),
		}
		if r.KeepSims {
			results[i].Sims = make([]*SimResult, len(w.Windows))
		}
		pending[i].Store(int32(len(w.Windows)))
		for seq := range w.Windows {
			tasks = append(tasks, task{ci: i, seq: seq})
		}
	}
	var streamMu sync.Mutex
	err = runner.Run(ctx, r.Workers, len(tasks), func(_ context.Context, ti int) error {
		t := tasks[ti]
		c := cells[t.ci]
		w := workloads[c.workloadKey(g)]
		sc := &c.Scenario
		res, err := sim.Run(sim.Platform{Cores: w.Cores}, w.Windows[t.seq], sim.Options{
			Policy:         sc.Policy,
			UseEstimates:   sc.UseEstimates,
			Backfill:       sc.Backfill,
			Tau:            sc.Tau,
			KillAtEstimate: sc.KillAtEstimate,
			Check:          sc.Check,
		})
		if err != nil {
			return fmt.Errorf("gensched: %s seq %d: %w", sc.Name, t.seq, err)
		}
		cr := results[t.ci]
		cr.PerSeq[t.seq] = res.AVEbsld
		if r.KeepSims {
			cr.Sims[t.seq] = res
		}
		if pending[t.ci].Add(-1) == 0 {
			cr.AVEbsld = mean(cr.PerSeq)
			if r.OnResult != nil {
				streamMu.Lock()
				r.OnResult(cr)
				streamMu.Unlock()
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &GridResult{Cells: results}, nil
}

// workloadSeed derives the seed a cell's workload is generated from: the
// seed-axis value split by the source and load coordinates. Policy and
// backfill coordinates deliberately do not enter.
func workloadSeed(seed uint64, sourceIdx, loadIdx int) uint64 {
	return dist.Split(dist.Split(seed, uint64(sourceIdx)), uint64(loadIdx))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
