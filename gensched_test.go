package gensched

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestPoliciesRegistry(t *testing.T) {
	ps := Policies()
	if len(ps) != 8 {
		t.Fatalf("got %d policies, want 8", len(ps))
	}
	if ps[0].Name() != "FCFS" || ps[7].Name() != "F1" {
		t.Errorf("registry order: %s ... %s", ps[0].Name(), ps[7].Name())
	}
}

func TestMustPolicy(t *testing.T) {
	if MustPolicy("F1").Name() != "F1" {
		t.Error("MustPolicy(F1) wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustPolicy did not panic on unknown name")
		}
	}()
	MustPolicy("NOPE")
}

func TestLublinTraceAndSimulate(t *testing.T) {
	trace, err := LublinTrace(64, 2, 1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Jobs) == 0 {
		t.Fatal("empty trace")
	}
	if err := trace.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(64, trace.Jobs, SimOptions{Policy: MustPolicy("F1")})
	if err != nil {
		t.Fatal(err)
	}
	if res.AVEbsld < 1 {
		t.Errorf("AVEbsld = %v", res.AVEbsld)
	}
	// Natural load requested: pass 0.
	nat, err := LublinTrace(64, 1, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(nat.Jobs) == 0 {
		t.Fatal("empty natural-load trace")
	}
}

func TestApplyEstimates(t *testing.T) {
	trace, err := LublinTrace(64, 1, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyEstimates(trace.Jobs, 9); err != nil {
		t.Fatal(err)
	}
	for _, j := range trace.Jobs {
		if j.Estimate < j.Runtime {
			t.Fatal("estimate below runtime")
		}
	}
}

func TestSWFRoundTripFacade(t *testing.T) {
	trace, err := LublinTrace(32, 1, 0.8, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, trace); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != len(trace.Jobs) {
		t.Errorf("round trip lost jobs: %d vs %d", len(back.Jobs), len(trace.Jobs))
	}
}

func TestTrainAndFitPipeline(t *testing.T) {
	samples, err := GenerateScoreDistribution(TrainingConfig{Tuples: 2, Trials: 256, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2*32 {
		t.Fatalf("got %d samples", len(samples))
	}
	policies, fits, err := FitPolicies(samples, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(policies) != 3 || len(fits) != 3 {
		t.Fatalf("got %d policies, %d fits", len(policies), len(fits))
	}
	if !strings.HasPrefix(policies[0].Name(), "L") {
		t.Errorf("learned policy name = %q", policies[0].Name())
	}
	// Learned policies must be usable in the simulator.
	trace, err := LublinTrace(256, 1, 1.0, 13)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(256, trace.Jobs, SimOptions{Policy: policies[0]}); err != nil {
		t.Fatal(err)
	}
}

func TestParsePolicy(t *testing.T) {
	p, err := ParsePolicy("MINE", "log10(r)*n + 870*log10(s)")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "MINE" {
		t.Errorf("name = %q", p.Name())
	}
	// Must behave identically to the built-in F1.
	f1 := MustPolicy("F1")
	views := []JobView{
		{Runtime: 100, Cores: 8, Submit: 1000},
		{Runtime: 27000, Cores: 256, Submit: 50},
		{Runtime: 1, Cores: 1, Submit: 86400},
	}
	for _, v := range views {
		if p.Score(v) != f1.Score(v) {
			t.Errorf("parsed policy diverges from F1 at %+v", v)
		}
	}
	if _, err := ParsePolicy("BAD", "r +"); err == nil {
		t.Error("bad source accepted")
	}
}

func TestSliceWindowsFacade(t *testing.T) {
	trace, err := LublinTrace(64, 4, 0.9, 17)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := SliceWindows(trace, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("got %d windows", len(ws))
	}
	for _, w := range ws {
		for _, j := range w {
			if j.Submit < 1 || j.Submit > 86401 {
				t.Fatalf("rebased submit %v out of range", j.Submit)
			}
		}
	}
}

func TestPolicyNameBeyondNine(t *testing.T) {
	// The old rune arithmetic ("L" + rune('1'+i)) produced garbage past
	// index 8; names must stay readable for any top count.
	want := []string{"L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9", "L10", "L11", "L12"}
	for i := 0; i < 12; i++ {
		if got := policyName(i); got != want[i] {
			t.Errorf("policyName(%d) = %q, want %q", i, got, want[i])
		}
	}
}

func TestFitPoliciesNamesTopTwelve(t *testing.T) {
	samples, err := GenerateScoreDistribution(TrainingConfig{Tuples: 2, Trials: 256, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	policies, _, err := FitPolicies(samples, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range policies {
		if want := fmt.Sprintf("L%d", i+1); p.Name() != want {
			t.Errorf("policy %d named %q, want %q", i, p.Name(), want)
		}
	}
	if len(policies) < 10 {
		t.Fatalf("got only %d distinct policies, want at least 10 to cover double-digit names", len(policies))
	}
}

func TestSplitSeed(t *testing.T) {
	if SplitSeed(1, 2) == SplitSeed(1, 3) {
		t.Error("streams collide")
	}
	if SplitSeed(1, 2) != SplitSeed(1, 2) {
		t.Error("not deterministic")
	}
}
