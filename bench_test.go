// Benchmarks regenerating every table and figure of the paper, plus
// ablation studies and micro-benchmarks. Run with:
//
//	go test -bench=. -benchmem            # reduced scale, seconds
//	GENSCHED_FULL=1 go test -bench=Fig4 -benchtime=1x -timeout=4h
//
// Each experiment bench logs the rows/series the paper reports (visible
// with -v); cmd/paperrepro produces the same output as CSV files.
package gensched

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/durable"
	"github.com/hpcsched/gensched/internal/experiments"
	"github.com/hpcsched/gensched/internal/expr"
	"github.com/hpcsched/gensched/internal/fed"
	"github.com/hpcsched/gensched/internal/lublin"
	"github.com/hpcsched/gensched/internal/mlfit"
	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/schedcore"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/telemetry"
	"github.com/hpcsched/gensched/internal/traces"
	"github.com/hpcsched/gensched/internal/trainer"
	"github.com/hpcsched/gensched/internal/tsafrir"
	"github.com/hpcsched/gensched/internal/workload"
)

// tracesAll lists the Table 5 platform specs.
func tracesAll() []traces.PlatformSpec { return traces.All() }

// benchConfig selects paper scale when GENSCHED_FULL is set, otherwise the
// reduced configuration.
func benchConfig() experiments.Config {
	if os.Getenv("GENSCHED_FULL") != "" {
		return experiments.DefaultConfig()
	}
	return experiments.QuickConfig()
}

// benchCache shares generated workloads across benchmarks so each scenario
// bench measures scheduling, not workload generation.
var benchCache = struct {
	sync.Mutex
	windows map[string][][]workload.Job
}{windows: map[string][][]workload.Job{}}

func cachedWindows(b *testing.B, key string, build func() ([][]workload.Job, error)) [][]workload.Job {
	b.Helper()
	benchCache.Lock()
	defer benchCache.Unlock()
	if w, ok := benchCache.windows[key]; ok {
		return w
	}
	w, err := build()
	if err != nil {
		b.Fatal(err)
	}
	benchCache.windows[key] = w
	return w
}

func modelWindows(b *testing.B, cfg experiments.Config, cores int) [][]workload.Job {
	key := fmt.Sprintf("model-%d-%d-%v", cores, cfg.Sequences, cfg.WindowDays)
	return cachedWindows(b, key, func() ([][]workload.Job, error) {
		return experiments.ModelWindows(cfg, cores)
	})
}

// runScenario benchmarks one dynamic scheduling experiment and logs the
// per-policy medians — one row of Table 4.
func runScenario(b *testing.B, sc experiments.Scenario, cfg experiments.Config) {
	b.Helper()
	var res *experiments.DynamicResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunDynamic(sc, sched.Registry(), cfg.Workers)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	med := res.Medians()
	var sb strings.Builder
	for i, p := range res.Policies {
		fmt.Fprintf(&sb, "%s=%.2f ", p, med[i])
	}
	b.Logf("%s medians: %s", sc.ID, sb.String())
}

func benchModelScenario(b *testing.B, id string, cores int, est bool, bf sim.BackfillMode) {
	cfg := benchConfig()
	ws := modelWindows(b, cfg, cores)
	runScenario(b, experiments.Scenario{
		ID: id, Name: id, Cores: cores, UseEstimates: est, Backfill: bf, Windows: ws,
	}, cfg)
}

// --- Figures 4-6: workload-model scenarios -------------------------------

func BenchmarkFig4aModel256Actual(b *testing.B) {
	benchModelScenario(b, "fig4a", 256, false, sim.BackfillNone)
}

func BenchmarkFig4bModel1024Actual(b *testing.B) {
	benchModelScenario(b, "fig4b", 1024, false, sim.BackfillNone)
}

func BenchmarkFig5aModel256Estimates(b *testing.B) {
	benchModelScenario(b, "fig5a", 256, true, sim.BackfillNone)
}

func BenchmarkFig5bModel1024Estimates(b *testing.B) {
	benchModelScenario(b, "fig5b", 1024, true, sim.BackfillNone)
}

func BenchmarkFig6aModel256Backfill(b *testing.B) {
	benchModelScenario(b, "fig6a", 256, true, sim.BackfillEASY)
}

func BenchmarkFig6bModel1024Backfill(b *testing.B) {
	benchModelScenario(b, "fig6b", 1024, true, sim.BackfillEASY)
}

// --- Figures 7-9: synthetic trace scenarios ------------------------------

func benchTraceScenarios(b *testing.B, fig string, est bool, bf sim.BackfillMode) {
	cfg := benchConfig()
	for ti, spec := range tracesAll() {
		spec := spec
		id := fmt.Sprintf("%s%c", fig, 'a'+ti)
		b.Run(strings.ReplaceAll(spec.Name, " ", ""), func(b *testing.B) {
			ws := cachedWindows(b, "trace-"+spec.Name, func() ([][]workload.Job, error) {
				return experiments.TraceWindows(cfg, spec)
			})
			runScenario(b, experiments.Scenario{
				ID: id, Name: spec.Name, Cores: spec.Cores,
				UseEstimates: est, Backfill: bf, Windows: ws,
			}, cfg)
		})
	}
}

func BenchmarkFig7TracesActual(b *testing.B) {
	benchTraceScenarios(b, "fig7", false, sim.BackfillNone)
}

func BenchmarkFig8TracesEstimates(b *testing.B) {
	benchTraceScenarios(b, "fig8", true, sim.BackfillNone)
}

func BenchmarkFig9TracesBackfill(b *testing.B) {
	benchTraceScenarios(b, "fig9", true, sim.BackfillEASY)
}

// --- Training-side experiments -------------------------------------------

func BenchmarkFig1TrialScores(b *testing.B) {
	cfg := benchConfig()
	var res []*trainer.TupleScores
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig1(cfg, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, ts := range res {
		b.Logf("fig1%c scores (mean line 1/32=0.031): %s", 'a'+i, fmtScores(ts.Scores))
	}
}

func fmtScores(xs []float64) string {
	var sb strings.Builder
	for _, x := range xs {
		fmt.Fprintf(&sb, "%.4f ", x)
	}
	return sb.String()
}

func BenchmarkFig2Convergence(b *testing.B) {
	cfg := benchConfig()
	var res *experiments.Fig2Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig2(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("fig2:\n%s", experiments.FormatFig2(res))
}

func BenchmarkTable3Fit(b *testing.B) {
	cfg := benchConfig()
	var res *experiments.Table3Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Table3(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("table3:\n%s", experiments.FormatTable3(res))
}

func BenchmarkFig3Heatmaps(b *testing.B) {
	funcs := []expr.Func{
		{Form: expr.Form{A: expr.BaseLog, B: expr.BaseID, C: expr.BaseLog, Op1: expr.OpMul, Op2: expr.OpAdd}, C: [3]float64{1, 1, 8.70e2}},
		{Form: expr.Form{A: expr.BaseSqrt, B: expr.BaseID, C: expr.BaseLog, Op1: expr.OpMul, Op2: expr.OpAdd}, C: [3]float64{1, 1, 2.56e4}},
		{Form: expr.Form{A: expr.BaseID, B: expr.BaseID, C: expr.BaseLog, Op1: expr.OpMul, Op2: expr.OpAdd}, C: [3]float64{1, 1, 6.86e6}},
		{Form: expr.Form{A: expr.BaseID, B: expr.BaseSqrt, C: expr.BaseLog, Op1: expr.OpMul, Op2: expr.OpAdd}, C: [3]float64{1, 1, 5.30e5}},
	}
	names := []string{"F1", "F2", "F3", "F4"}
	var maps []experiments.Heatmap
	var err error
	for i := 0; i < b.N; i++ {
		maps, err = experiments.Fig3(funcs, names, 64)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("fig3: %d heatmap panels\n%s", len(maps), experiments.RenderHeatmap(maps[1], 48))
}

// --- Tables 4-5 -----------------------------------------------------------

func BenchmarkTable4Medians(b *testing.B) {
	cfg := benchConfig()
	suite := &experiments.Suite{
		Config:    cfg,
		Model256:  modelWindows(b, cfg, 256),
		Model1024: modelWindows(b, cfg, 1024),
	}
	for _, spec := range tracesAll() {
		ws := cachedWindows(b, "trace-"+spec.Name, func() ([][]workload.Job, error) {
			return experiments.TraceWindows(cfg, spec)
		})
		suite.Traces = append(suite.Traces, experiments.TraceWorkload{Spec: spec, Windows: ws})
	}
	var res *experiments.Table4Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = suite.Table4(sched.Registry())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Logf("table4:\n%s", res.Format())
}

func BenchmarkTable5TraceInventory(b *testing.B) {
	cfg := benchConfig()
	var rows []experiments.Table5Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table5(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("table5:\n%s", experiments.FormatTable5(rows))
}

// --- Ablations -------------------------------------------------------------

// BenchmarkAblationRegressionWeight compares the paper's r·n regression
// weighting (Eq. 4) against an unweighted fit on the same distribution.
func BenchmarkAblationRegressionWeight(b *testing.B) {
	cfg := benchConfig()
	samples, err := trainer.ScoreDistribution(cfg.Tuples, trainer.DefaultSpec(),
		trainer.TrialConfig{Trials: cfg.Trials}, dist.Split(cfg.Seed, 77))
	if err != nil {
		b.Fatal(err)
	}
	var wTop, uTop mlfit.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wr, err := mlfit.FitAll(samples, mlfit.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ur, err := mlfit.FitAll(samples, mlfit.Options{Weight: func(mlfit.Sample) float64 { return 1 }})
		if err != nil {
			b.Fatal(err)
		}
		wTop, uTop = wr[0], ur[0]
	}
	b.StopTimer()
	ws, _ := wTop.Func.Simplified()
	us, _ := uTop.Func.Simplified()
	b.Logf("weighted top: %s (rank %.3g); unweighted top: %s (rank %.3g)",
		ws.Compact(), wTop.Rank, us.Compact(), uTop.Rank)
}

// BenchmarkAblationTau sweeps the bounded-slowdown constant τ (Eq. 1).
func BenchmarkAblationTau(b *testing.B) {
	cfg := benchConfig()
	ws := modelWindows(b, cfg, 256)
	for _, tau := range []float64{1, 10, 60} {
		tau := tau
		b.Run(fmt.Sprintf("tau%g", tau), func(b *testing.B) {
			runScenario(b, experiments.Scenario{
				ID: fmt.Sprintf("ablation-tau-%g", tau), Name: "tau sweep",
				Cores: 256, Tau: tau, Windows: ws,
			}, cfg)
		})
	}
}

// BenchmarkAblationBackfillVariant compares no backfilling, EASY and
// conservative backfilling under the F1 policy and FCFS.
func BenchmarkAblationBackfillVariant(b *testing.B) {
	cfg := benchConfig()
	ws := modelWindows(b, cfg, 256)
	for _, mode := range []sim.BackfillMode{sim.BackfillNone, sim.BackfillEASY, sim.BackfillConservative} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			sc := experiments.Scenario{
				ID: "ablation-bf-" + mode.String(), Name: "backfill variant",
				Cores: 256, UseEstimates: true, Backfill: mode, Windows: ws,
			}
			var res *experiments.DynamicResult
			var err error
			pol := []sched.Policy{sched.FCFS(), sched.F1()}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err = experiments.RunDynamic(sc, pol, cfg.Workers)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			med := res.Medians()
			b.Logf("%s: FCFS=%.2f F1=%.2f", mode, med[0], med[1])
		})
	}
}

// BenchmarkAblationQSize sweeps the measured task-set size |Q| in the
// training scheme.
func BenchmarkAblationQSize(b *testing.B) {
	cfg := benchConfig()
	for _, qsize := range []int{16, 32, 64} {
		qsize := qsize
		b.Run(fmt.Sprintf("Q%d", qsize), func(b *testing.B) {
			spec := trainer.DefaultSpec()
			spec.QSize = qsize
			tuple, err := trainer.GenerateTuple(spec, dist.Split(cfg.Seed, uint64(qsize)))
			if err != nil {
				b.Fatal(err)
			}
			var ts *trainer.TupleScores
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ts, err = trainer.ScoreTuple(tuple, trainer.TrialConfig{
					Trials: cfg.Trials, Seed: cfg.Seed,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			var sum float64
			for _, s := range ts.Scores {
				sum += s
			}
			b.Logf("|Q|=%d: mean score %.4f (1/|Q| = %.4f)", qsize, sum/float64(qsize), 1/float64(qsize))
		})
	}
}

// BenchmarkAblationEstimateAccuracy sweeps estimate quality: perfect
// estimates, the Tsafrir model, and grossly inflated requests.
func BenchmarkAblationEstimateAccuracy(b *testing.B) {
	cfg := benchConfig()
	base := modelWindows(b, cfg, 256)
	variants := []struct {
		name   string
		mutate func([]workload.Job)
	}{
		{"perfect", func(js []workload.Job) {
			for i := range js {
				js[i].Estimate = js[i].Runtime
			}
		}},
		{"tsafrir", func(js []workload.Job) {
			_ = tsafrir.Apply(tsafrir.Default(), js, 12345)
		}},
		{"inflated10x", func(js []workload.Job) {
			for i := range js {
				js[i].Estimate = js[i].Runtime * 10
			}
		}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			ws := make([][]workload.Job, len(base))
			for i, w := range base {
				cp := append([]workload.Job(nil), w...)
				v.mutate(cp)
				ws[i] = cp
			}
			sc := experiments.Scenario{
				ID: "ablation-est-" + v.name, Name: v.name, Cores: 256,
				UseEstimates: true, Backfill: sim.BackfillEASY, Windows: ws,
			}
			var res *experiments.DynamicResult
			var err error
			pol := []sched.Policy{sched.FCFS(), sched.F1()}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err = experiments.RunDynamic(sc, pol, cfg.Workers)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			med := res.Medians()
			b.Logf("%s: FCFS+EASY=%.2f F1+EASY=%.2f", v.name, med[0], med[1])
		})
	}
}

// BenchmarkAblationBackfillOrder compares classic EASY (queue-order
// candidates) with the EASY-SJBF variant (shortest safe candidate first)
// under FCFS — the combination where candidate choice matters most.
func BenchmarkAblationBackfillOrder(b *testing.B) {
	cfg := benchConfig()
	ws := modelWindows(b, cfg, 256)
	variants := []struct {
		name  string
		order sched.Policy
	}{
		{"queueorder", nil},
		{"sjbf", sched.SPT()},
		{"saf", sched.SAF()},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var med float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vals := make([]float64, len(ws))
				for si, w := range ws {
					res, err := sim.Run(sim.Platform{Cores: 256}, w, sim.Options{
						Policy: sched.FCFS(), UseEstimates: true,
						Backfill: sim.BackfillEASY, BackfillOrder: v.order,
					})
					if err != nil {
						b.Fatal(err)
					}
					vals[si] = res.AVEbsld
				}
				med = median(vals)
			}
			b.StopTimer()
			b.Logf("FCFS+EASY backfill order %s: median AVEbsld %.2f", v.name, med)
		})
	}
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	n := len(cp)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// BenchmarkAblationLoadSweep sweeps the offered load and logs where the
// policy orderings cross over — the regime question the paper's fixed
// near-saturation load leaves open.
func BenchmarkAblationLoadSweep(b *testing.B) {
	cfg := benchConfig()
	cfg.Sequences = min(cfg.Sequences, 4)
	pols := []sched.Policy{sched.FCFS(), sched.SPT(), sched.F1()}
	loads := []float64{0.7, 0.9, 1.05, 1.2}
	var res *experiments.LoadSweepResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = experiments.LoadSweep(cfg, 256, loads, pols)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Logf("load sweep:\n%s", res.Format())
	for _, x := range res.Crossovers() {
		b.Logf("crossover: %s", x)
	}
}

// BenchmarkAblationBackfillGain quantifies the §4.2.3 observation: the
// ratio by which EASY backfilling improves each policy's median.
func BenchmarkAblationBackfillGain(b *testing.B) {
	cfg := benchConfig()
	ws := modelWindows(b, cfg, 256)
	sc := experiments.Scenario{ID: "gain", Name: "gain", Cores: 256, UseEstimates: true, Windows: ws}
	var gains map[string]float64
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gains, err = experiments.BackfillGain(sc, sched.Registry(), cfg.Workers)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, p := range sched.Names(sched.Registry()) {
		b.Logf("backfill gain %s: %.2fx", p, gains[p])
	}
}

// --- Micro-benchmarks -------------------------------------------------------

func microJobs(n int) []workload.Job {
	gen, err := lublin.NewGenerator(lublin.DefaultParams(256), 256, 4242)
	if err != nil {
		panic(err)
	}
	return gen.Jobs(n)
}

func BenchmarkMicroSimulatorFCFS(b *testing.B) {
	jobs := microJobs(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Platform{Cores: 256}, jobs, sim.Options{Policy: sched.FCFS()}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(jobs)), "jobs/op")
}

func BenchmarkMicroSimulatorEASY(b *testing.B) {
	jobs := microJobs(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Platform{Cores: 256}, jobs, sim.Options{
			Policy: sched.F1(), Backfill: sim.BackfillEASY, UseEstimates: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(jobs)), "jobs/op")
}

func BenchmarkMicroSimulatorConservative(b *testing.B) {
	jobs := microJobs(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Platform{Cores: 256}, jobs, sim.Options{
			Policy: sched.F1(), Backfill: sim.BackfillConservative, UseEstimates: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(jobs)), "jobs/op")
}

// BenchmarkMicroSimulatorEASYChecked measures the overhead of runtime
// invariant checking (Options.Check) on the EASY hot path.
func BenchmarkMicroSimulatorEASYChecked(b *testing.B) {
	jobs := microJobs(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Platform{Cores: 256}, jobs, sim.Options{
			Policy: sched.F1(), Backfill: sim.BackfillEASY, UseEstimates: true, Check: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(jobs)), "jobs/op")
}

// BenchmarkOnlineThroughput streams a Lublin trace through the online
// scheduling subsystem — one submit and one completion event per job,
// deferred per-instant passes, EASY backfilling on estimates — and
// reports events/sec. This is the cmd/schedd serving core without the
// HTTP layer. The events/sec metric comes from the fastest iteration,
// not the mean: scheduler noise (a neighboring tenant, a GC pause) only
// ever adds time, so the minimum is the stable measure of the path
// itself — the property the JournalAppend/OnlineThroughput ratio gate
// and OnlineThroughputTelemetry's paired overhead_ratio depend on.
func BenchmarkOnlineThroughput(b *testing.B) {
	jobs := microJobs(5000)
	events := 2 * len(jobs)
	best := math.Inf(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := ReplayTrace(256, jobs, ClusterConfig{
			Policy: sched.F1(), Backfill: sim.BackfillEASY, UseEstimates: true,
		}); err != nil {
			b.Fatal(err)
		}
		if d := time.Since(t0).Seconds(); d < best {
			best = d
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(events), "events/op")
	if best > 0 {
		b.ReportMetric(float64(events)/best, "events/sec")
	}
}

// BenchmarkOnlineThroughputTelemetry bounds the cost of full
// instrumentation — every submit/start/complete event counted, bucketed
// and traced into a daemon-sized ring (4096 events, the -trace-buf
// default) — with a PAIRED design: every iteration replays the same
// trace twice, once bare and once with a live sink attached,
// alternating which runs first. events/sec reports the instrumented
// path's fastest pass; overhead_ratio is the MEDIAN of the per-pair
// bare/instrumented ratios, and CI gates it at >= 0.95 (benchjson
// -floor): telemetry may cost at most 5% of the serving core's
// throughput. Pairing keeps both sides of each ratio inside one
// measurement window, adjacent in time, so machine-state drift cancels
// within the pair — a ratio of two separately-run benchmarks would gate
// the build on that drift, which on a shared runner exceeds the
// overhead being bounded — and the median across pairs shrugs off the
// iterations where a GC pause or neighboring tenant landed on one side.
// Like JournalAppend this benchmark deliberately stays out of
// BENCH_baseline.json.
func BenchmarkOnlineThroughputTelemetry(b *testing.B) {
	jobs := microJobs(5000)
	events := 2 * len(jobs)
	sink := telemetry.NewSink(4096)
	run := func(s *telemetry.Sink) float64 {
		t0 := time.Now()
		if _, err := online.Replay(256, jobs, online.ReplayOptions{
			Policy: sched.F1(), Backfill: sim.BackfillEASY, UseEstimates: true,
			Telemetry: s,
		}); err != nil {
			b.Fatal(err)
		}
		return time.Since(t0).Seconds()
	}
	bestTel := math.Inf(1)
	ratios := make([]float64, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var dTel, dBare float64
		if i%2 == 0 {
			dTel, dBare = run(sink), run(nil)
		} else {
			dBare, dTel = run(nil), run(sink)
		}
		if dTel < bestTel {
			bestTel = dTel
		}
		if dTel > 0 {
			ratios = append(ratios, dBare/dTel)
		}
	}
	b.StopTimer()
	if got := sink.Submitted.Load(); got == 0 {
		b.Fatal("sink saw no traffic; the benchmark measured the bare path")
	}
	b.ReportMetric(float64(events), "events/op")
	if bestTel > 0 {
		b.ReportMetric(float64(events)/bestTel, "events/sec")
	}
	if len(ratios) > 0 {
		b.ReportMetric(median(ratios), "overhead_ratio")
	}
}

// BenchmarkFederationThroughput drains the same Lublin trace through a
// federated replay at 1 shard and at 8 shards with a PAIRED design:
// every iteration runs both widths back to back, alternating which runs
// first. events/sec reports the 8-shard aggregate from its fastest pass
// (the tentpole throughput number); scaling_x is the MEDIAN of the
// per-pair 8-shard/1-shard events-per-second ratios, the number the CI
// scaling gate floors. Pairing keeps both widths of each ratio adjacent
// in time so machine-state drift cancels within the pair, and the
// median shrugs off iterations where a GC pause landed on one side —
// the same design BenchmarkOnlineThroughputTelemetry uses for its
// overhead_ratio. The jobs-per-shard load is held constant (each width
// schedules shards × perShard jobs on shards × 256 cores), so the ratio
// measures how the merged-drain pipeline scales, not a shrinking queue.
// Like the other ratio benchmarks this deliberately stays out of
// BENCH_baseline.json: scaling_x is gated by -floor with a
// CPU-count-aware minimum (near-linear to 8 shards needs 8 cores; this
// container may have 1), and absolute events/sec is hardware-bound.
func BenchmarkFederationThroughput(b *testing.B) {
	const perShard = 2500
	traces := map[int][]workload.Job{1: microJobs(perShard), 8: microJobs(perShard * 8)}
	run := func(shards int) (sec float64) {
		jobs := traces[shards]
		t0 := time.Now()
		res, err := fed.Replay(jobs, fed.ReplayConfig{
			Shards: shards, ShardCores: 256, Seed: 1,
			Opt: online.ReplayOptions{
				Policy: sched.F1(), Backfill: sim.BackfillEASY, UseEstimates: true,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		sec = time.Since(t0).Seconds()
		if res.Merged.Completed != perShard*shards {
			b.Fatalf("%d shards completed %d jobs, want %d", shards, res.Merged.Completed, perShard*shards)
		}
		return sec
	}
	best8 := math.Inf(1)
	ratios := make([]float64, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var d1, d8 float64
		if i%2 == 0 {
			d8, d1 = run(8), run(1)
		} else {
			d1, d8 = run(1), run(8)
		}
		if d8 < best8 {
			best8 = d8
		}
		if d1 > 0 && d8 > 0 {
			// events/sec ratio: (8·E/d8) / (E/d1) = 8·d1/d8.
			ratios = append(ratios, 8*d1/d8)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(2*perShard*8), "events/op")
	if best8 > 0 {
		b.ReportMetric(float64(2*perShard*8)/best8, "events/sec")
	}
	if len(ratios) > 0 {
		b.ReportMetric(median(ratios), "scaling_x")
	}
}

// BenchmarkJournalAppend streams the BenchmarkOnlineThroughput trace
// through the online scheduler with every mutating event journaled to a
// durable.Store — the cmd/schedd -data-dir submit path without the HTTP
// layer — and reports events/sec. CI gates the ratio
// JournalAppend/OnlineThroughput on events/sec at >= 0.85: journaling
// may cost at most 15% of the serving core's throughput. Both sides of
// the ratio come from the same run and use the same fastest-iteration
// metric, so the gate is hardware-independent and the benchmark
// deliberately stays out of BENCH_baseline.json.
//
// The event loop mirrors online.Replay (the baseline's loop) so the
// ratio isolates the journal overhead: record encoding, checksumming
// and buffered appends. The fsync cadence is the SyncEvery durability
// knob, not per-event submit-path work — the store runs in batched mode
// with one timed Sync closing the run, the cadence production reaches
// as -fsync grows.
func BenchmarkJournalAppend(b *testing.B) {
	jobs := microJobs(5000)
	events := 2 * len(jobs)
	store, _, err := durable.Open(b.TempDir(), durable.Options{SyncEvery: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		if err := store.Close(); err != nil {
			b.Fatal(err)
		}
	}()
	best := math.Inf(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if err := replayJournaled(store, 256, jobs); err != nil {
			b.Fatal(err)
		}
		if d := time.Since(t0).Seconds(); d < best {
			best = d
		}
	}
	if err := store.Sync(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(events), "events/op")
	if best > 0 {
		b.ReportMetric(float64(events)/best, "events/sec")
	}
}

// replayJournaled drains a trace through an online scheduler with one
// journal record per mutating event (submit or completion), appended
// after the scheduler accepts it — cmd/schedd's durable mode without
// the HTTP layer. The drain loop is structured exactly like
// online.Replay so BenchmarkJournalAppend measures journaling, not a
// different event loop.
func replayJournaled(store *durable.Store, cores int, jobs []workload.Job) error {
	s, err := online.New(cores, online.Options{
		Policy: sched.F1(), Backfill: sim.BackfillEASY, UseEstimates: true,
	})
	if err != nil {
		return err
	}
	byID := make(map[int]int, len(jobs))
	var h schedcore.EventHeap
	for i := range jobs {
		byID[jobs[i].ID] = i
		h.Push(schedcore.Event{Time: jobs[i].Submit, Kind: schedcore.KindArrival, Ref: i})
	}
	var rec durable.Record
	for {
		for _, st := range s.Flush() {
			i := byID[st.ID]
			h.Push(schedcore.Event{Time: st.Time + jobs[i].Runtime, Kind: schedcore.KindCompletion, Ref: i})
		}
		if h.Len() == 0 {
			return nil
		}
		t := h.PeekTime()
		if _, err := s.AdvanceTo(t); err != nil {
			return err
		}
		for h.Len() > 0 && h.PeekTime() == t {
			ev := h.Pop()
			switch ev.Kind {
			case schedcore.KindCompletion:
				if err := s.Complete(jobs[ev.Ref].ID); err != nil {
					return err
				}
				rec = durable.Record{Op: durable.OpComplete, Now: t, ID: jobs[ev.Ref].ID}
			case schedcore.KindArrival:
				if err := s.Submit(jobs[ev.Ref]); err != nil {
					return err
				}
				rec = durable.Record{Op: durable.OpSubmit, Now: t, Job: jobs[ev.Ref]}
			}
			if err := store.Append(&rec); err != nil {
				return err
			}
		}
	}
}

// drainFederation drives a live federation through a trace: submit
// every job at its arrival time, then complete started jobs in
// notification order at clock+1 until the federation drains. The
// request stream is a pure function of the trace, identical for the
// bare and journaled sides of a paired iteration.
func drainFederation(b *testing.B, f *fed.Federation, jobs []workload.Job) {
	b.Helper()
	queue := make([]int, 0, len(jobs))
	for i := range jobs {
		_, sts, _, err := f.Submit(jobs[i].Submit, jobs[i], nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, st := range sts {
			queue = append(queue, st.ID)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		sts, _, err := f.Complete(f.Clock()+1, id, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, st := range sts {
			queue = append(queue, st.ID)
		}
	}
	if st := f.Status(); st.Completed != len(jobs) {
		b.Fatalf("drained federation completed %d of %d jobs", st.Completed, len(jobs))
	}
}

// BenchmarkFederationJournaled bounds the cost of per-shard durability
// on the live federated mutation path with a PAIRED design: every
// iteration drains the same trace through two 4-shard federations back
// to back — one in-memory, one journaling every mutation to its shard's
// durable.Store — alternating which runs first. events/sec reports the
// journaled side's fastest pass; durable_ratio is the MEDIAN of the
// per-pair journaled/bare throughput ratios, and CI floors it at 0.80:
// per-shard journaling may cost at most 20% of federated throughput.
// The stores run in batched-fsync mode (the cadence production reaches
// as -fsync grows), so the ratio isolates the per-record work — record
// encoding, checksumming, buffered appends, the routing mirrors — not
// the disk's fsync latency; boot recovery and the drain-time checkpoint
// sit outside the timed region. Pairing and the median play the same
// roles as in OnlineThroughputTelemetry, and like every ratio benchmark
// this stays out of BENCH_baseline.json.
func BenchmarkFederationJournaled(b *testing.B) {
	const shards, perShard = 4, 2000
	jobs := microJobs(shards * perShard)
	events := 2 * len(jobs)
	cfg := fed.Config{
		Shards: shards, ShardCores: 256, Seed: 1,
		Opt: online.Options{Policy: sched.F1(), Backfill: sim.BackfillEASY, UseEstimates: true},
	}
	resolve := func(name, expr string) (sched.Policy, error) { return sched.F1(), nil }
	runBare := func() float64 {
		f, err := fed.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		drainFederation(b, f, jobs)
		return time.Since(t0).Seconds()
	}
	runJournaled := func(dir string) float64 {
		f, err := fed.Open(cfg, fed.DurableConfig{
			Dir: dir, SyncEvery: 1 << 30, PolicyName: "F1", ResolvePolicy: resolve,
		})
		if err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		drainFederation(b, f, jobs)
		sec := time.Since(t0).Seconds()
		if err := f.Drain(); err != nil {
			b.Fatal(err)
		}
		return sec
	}
	bestJ := math.Inf(1)
	ratios := make([]float64, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir, err := os.MkdirTemp("", "fedbench")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		var dJ, dBare float64
		if i%2 == 0 {
			dJ, dBare = runJournaled(dir), runBare()
		} else {
			dBare, dJ = runBare(), runJournaled(dir)
		}
		b.StopTimer()
		if err := os.RemoveAll(dir); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if dJ < bestJ {
			bestJ = dJ
		}
		if dJ > 0 {
			ratios = append(ratios, dBare/dJ)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(events), "events/op")
	if bestJ > 0 {
		b.ReportMetric(float64(events)/bestJ, "events/sec")
	}
	if len(ratios) > 0 {
		b.ReportMetric(median(ratios), "durable_ratio")
	}
}

// BenchmarkAdaptiveLoop measures one full closed-loop adaptation round —
// window characterization, window-matched tuple generation and trial
// scoring, the 576-candidate refit, and the shadow replay of the window
// against the incumbent — at the adaptive subsystem's default sizing.
// This is the work cmd/schedd performs inline on the scheduler thread
// whenever a round comes due, so its cost bounds the latency spike a
// retraining request stream sees.
func BenchmarkAdaptiveLoop(b *testing.B) {
	rng := dist.New(4242)
	jobs := make([]workload.Job, 256)
	at := 0.0
	for i := range jobs {
		at += 8 + 8*rng.Float64()
		jobs[i] = workload.Job{
			ID:      i + 1,
			Submit:  at,
			Runtime: 30 + rng.Float64()*2970,
			Cores:   1 << rng.IntN(5),
		}
		jobs[i].Estimate = jobs[i].Runtime
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands, _, err := TrainOnWindow(jobs, 256, ClusterConfig{Backfill: BackfillEASY}, AutopilotConfig{
			Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(cands) == 0 {
			b.Fatal("no candidates")
		}
	}
}

func BenchmarkMicroPolicyScore(b *testing.B) {
	policies := sched.Registry()
	view := sched.JobView{Runtime: 3600, Cores: 16, Submit: 7200, Wait: 600}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range policies {
			_ = p.Score(view)
		}
	}
}

// fitBenchSamples synthesizes a training set of the paper's default size
// and shape — |Q|·tuples samples spanning the training ranges of (r, n, s)
// with scores from a known Table 3 generator — so the regression benches
// measure fitting, not the trial engine.
func fitBenchSamples(n int) []mlfit.Sample {
	truth := expr.Func{
		Form: expr.Form{A: expr.BaseLog, B: expr.BaseID, C: expr.BaseLog, Op1: expr.OpMul, Op2: expr.OpAdd},
		C:    [3]float64{1, 1, 870},
	}
	rng := dist.New(99)
	samples := make([]mlfit.Sample, n)
	for i := range samples {
		r := 1 + rng.Float64()*27000
		nc := 1 + rng.Float64()*255
		s := 1 + rng.Float64()*86400
		samples[i] = mlfit.Sample{R: r, N: nc, S: s, Score: truth.Eval(r, nc, s)}
	}
	return samples
}

// BenchmarkFitAll measures the full 576-candidate refit at the paper's
// default sample count (8 tuples × |Q| = 32 → 256 samples) — the cost the
// adaptive loop pays on every retraining round. Tracked in BENCH_sim.json
// and gated against the committed baseline.
func BenchmarkFitAll(b *testing.B) {
	samples := fitBenchSamples(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mlfit.FitAll(samples, mlfit.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// evalSweeps is the number of 9-function evaluation sweeps one benchmark
// op performs: a single eval is tens of nanoseconds, below timer
// resolution at the low -benchtime the CI gate runs with, so each op
// covers 9000 evaluations (~hundreds of microseconds) and the gated
// ns/op is a stable measurement rather than noise.
const evalSweeps = 1000

// BenchmarkExprEval is the interpreted policy-function evaluation: the
// tree-walk every queue re-rank performed before the compiled fast path.
// Kept as the comparison point for BenchmarkCompiledEval.
func BenchmarkExprEval(b *testing.B) {
	fns := exprBenchFuncs()
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for s := 0; s < evalSweeps; s++ {
			for _, f := range fns {
				sink += f.Eval(3600, 16, 7200)
			}
		}
	}
	_ = sink
	b.ReportMetric(float64(evalSweeps*len(fns)), "evals/op")
}

// BenchmarkCompiledEval is the same evaluation through the compiled fast
// path (expr.Func.Compile) the scheduling engines use — bit-identical to
// Eval, minus the tree walk. Tracked in BENCH_sim.json and gated against
// the committed baseline.
func BenchmarkCompiledEval(b *testing.B) {
	fns := exprBenchFuncs()
	evals := make([]func(r, n, s float64) float64, len(fns))
	for i, f := range fns {
		evals[i] = f.Compile()
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for s := 0; s < evalSweeps; s++ {
			for _, eval := range evals {
				sink += eval(3600, 16, 7200)
			}
		}
	}
	_ = sink
	b.ReportMetric(float64(evalSweeps*len(fns)), "evals/op")
}

// exprBenchFuncs returns one fitted function per operator pair, covering
// every specialized path of the compiled evaluator.
func exprBenchFuncs() []expr.Func {
	var fns []expr.Func
	for op1 := expr.Op(0); op1 < 3; op1++ {
		for op2 := expr.Op(0); op2 < 3; op2++ {
			fns = append(fns, expr.Func{
				Form: expr.Form{A: expr.BaseLog, B: expr.BaseID, C: expr.BaseSqrt, Op1: op1, Op2: op2},
				C:    [3]float64{0.5, 2, 870},
			})
		}
	}
	return fns
}

// BenchmarkScoreTuple measures one trial batch of the paper's simulation
// scheme — 256 balanced permutation trials of a default (|S|=16, |Q|=32)
// tuple — the other half of a retraining round's cost. Tracked in
// BENCH_sim.json and gated against the committed baseline.
func BenchmarkScoreTuple(b *testing.B) {
	tuple, err := trainer.GenerateTuple(trainer.DefaultSpec(), 31)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trainer.ScoreTuple(tuple, trainer.TrialConfig{Trials: 256, Seed: 5}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(256, "trials/op")
}

func BenchmarkMicroFitSingleForm(b *testing.B) {
	truth := expr.Func{
		Form: expr.Form{A: expr.BaseLog, B: expr.BaseID, C: expr.BaseLog, Op1: expr.OpMul, Op2: expr.OpAdd},
		C:    [3]float64{1, 1, 870},
	}
	rng := dist.New(99)
	samples := make([]mlfit.Sample, 500)
	for i := range samples {
		r := 1 + rng.Float64()*27000
		n := 1 + rng.Float64()*255
		s := 1 + rng.Float64()*86400
		samples[i] = mlfit.Sample{R: r, N: n, S: s, Score: truth.Eval(r, n, s)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mlfit.Fit(truth.Form, samples, mlfit.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroTrialThroughput(b *testing.B) {
	tuple, err := trainer.GenerateTuple(trainer.DefaultSpec(), 31)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trainer.ScoreTuple(tuple, trainer.TrialConfig{Trials: 128, Seed: 5, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(128, "trials/op")
}

func BenchmarkMicroSWFParse(b *testing.B) {
	tr := &workload.Trace{Name: "bench", MaxProcs: 256, Jobs: microJobs(2000)}
	var buf bytes.Buffer
	if err := workload.WriteSWF(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.ParseSWF(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
