package gensched

import (
	"sync"

	"github.com/hpcsched/gensched/internal/adaptive"
	"github.com/hpcsched/gensched/internal/online"
)

// Cluster is the public face of the online scheduling subsystem
// (internal/online): a live cluster that schedules jobs as they stream in,
// instead of requiring the whole workload up front the way Simulate does.
// It maintains the waiting queue, the running set and the backfill
// structures incrementally across calls, and supports hot-swapping the
// queue policy without dropping state. cmd/schedd serves a Cluster over
// HTTP; examples/onlinesched drives one directly.
//
// The streaming contract mirrors a batch scheduler's event loop: Submit
// and Complete record what happened at the current instant, and the
// scheduling pass for the instant runs on Flush — or automatically when
// AdvanceTo moves the clock — so all events of an instant are scheduled
// together. A trace streamed this way schedules bit-identically to
// Simulate with the same options (the property the online differential
// tests pin).
//
// All methods are safe for concurrent use. Slices of JobStart returned by
// Flush and AdvanceTo are scratch, valid until the next call on the
// Cluster; copy them to retain.
type Cluster struct {
	mu    sync.Mutex
	s     *online.Scheduler
	cores int
	cfg   ClusterConfig

	// pilot is the attached adaptive retraining loop, if any (see
	// Autopilot): Submit feeds its observation window and AdvanceTo runs
	// its due adaptation rounds under the same lock, so loop decisions
	// are serialized with the stream that causes them. A loop failure
	// detaches the pilot and is reported by AdaptiveLoop.Err — it never
	// fails the scheduling call that happened to trigger the round.
	pilot    *adaptive.Controller
	pilotErr error
}

// ClusterConfig configures a Cluster. The scheduling fields mean exactly
// what they mean in SimOptions.
type ClusterConfig struct {
	// Policy orders the waiting queue (required); swap it later with
	// SwapPolicy.
	Policy Policy
	// UseEstimates makes every scheduling decision see the user estimate
	// instead of the submitted runtime.
	UseEstimates bool
	// Backfill selects the backfilling algorithm (default none).
	Backfill BackfillMode
	// BackfillOrder optionally reorders EASY backfill candidates.
	BackfillOrder Policy
	// Tau is the bounded-slowdown constant for live metrics (0 = default).
	Tau float64
	// Check enables runtime invariant checking (see Err).
	Check bool
}

// JobStart notifies the caller that a job began running.
type JobStart = online.Start

// ClusterStatus is a point-in-time snapshot of the cluster.
type ClusterStatus = online.Status

// ClusterMetrics aggregates the schedule so far over completed jobs.
type ClusterMetrics = online.Metrics

// NewCluster builds an empty online cluster with the given core count.
// The clock starts at zero.
func NewCluster(cores int, cfg ClusterConfig) (*Cluster, error) {
	s, err := online.New(cores, online.Options{
		Policy:        cfg.Policy,
		UseEstimates:  cfg.UseEstimates,
		Backfill:      cfg.Backfill,
		BackfillOrder: cfg.BackfillOrder,
		Tau:           cfg.Tau,
		Check:         cfg.Check,
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{s: s, cores: cores, cfg: cfg}, nil
}

// Clock returns the cluster's current time.
func (c *Cluster) Clock() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Clock()
}

// Submit records the arrival of a job at the current instant. A zero
// Submit field on a nonzero clock is stamped with the current time. The
// scheduling pass is deferred to the next Flush or AdvanceTo.
func (c *Cluster) Submit(j Job) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.s.Submit(j); err != nil {
		return err
	}
	if c.pilot != nil {
		if j.Submit == 0 {
			j.Submit = c.s.Clock() // the stamp Submit applied
		}
		c.pilot.Observe(j)
	}
	return nil
}

// Complete reports that a running job finished at the current instant.
func (c *Cluster) Complete(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Complete(id)
}

// Flush runs the pending scheduling pass for the current instant, if any,
// and returns the jobs it started.
func (c *Cluster) Flush() []JobStart {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Flush()
}

// AdvanceTo moves the clock forward to t, first flushing any pending pass
// (whose starts are returned). Going backward is an error. With an
// Autopilot attached, any adaptation round due at t runs here, after the
// clock has moved, so a promoted policy governs the passes from t on. A
// failing round never fails the advance — the clock has already moved
// and the starts are real; the loop detaches instead and the failure is
// reported by AdaptiveLoop.Err.
func (c *Cluster) AdvanceTo(t float64) ([]JobStart, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	starts, err := c.s.AdvanceTo(t)
	if err != nil {
		return starts, err
	}
	if c.pilot != nil {
		d, err := c.pilot.Tick(t, c.s.Policy())
		if err == nil && d != nil && d.Promoted {
			err = c.s.SetPolicy(d.Policy)
		}
		if err != nil {
			c.pilotErr = err
			c.pilot = nil // a broken loop must not re-fail every advance
		}
	}
	return starts, nil
}

// SwapPolicy hot-swaps the queue-ordering policy without dropping any
// queued or running state; it governs every scheduling pass from the next
// one on.
func (c *Cluster) SwapPolicy(p Policy) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.SetPolicy(p)
}

// Status snapshots the cluster state.
func (c *Cluster) Status() ClusterStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Status()
}

// Metrics aggregates the schedule so far (completed jobs).
func (c *Cluster) Metrics() ClusterMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Metrics()
}

// Err returns the first invariant violation recorded under
// ClusterConfig.Check, or nil.
func (c *Cluster) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Err()
}

// ReplayTrace streams a whole workload through a fresh online cluster —
// each job submitted at its submit time, completed when its runtime has
// elapsed after the start the scheduler chose, with optional policy
// hot-swaps along the way — and returns the same Result a batch Simulate
// produces. Without swaps the Result is bit-identical to Simulate with
// the same options; with swaps it is the schedule a live operator would
// have obtained flipping policies mid-stream.
func ReplayTrace(cores int, jobs []Job, cfg ClusterConfig, swaps ...PolicySwap) (*SimResult, error) {
	rs := make([]online.Swap, len(swaps))
	for i, s := range swaps {
		rs[i] = online.Swap{At: s.At, Policy: s.Policy}
	}
	return online.Replay(cores, jobs, online.ReplayOptions{
		Policy:        cfg.Policy,
		UseEstimates:  cfg.UseEstimates,
		Backfill:      cfg.Backfill,
		BackfillOrder: cfg.BackfillOrder,
		Tau:           cfg.Tau,
		Check:         cfg.Check,
		Swaps:         rs,
	})
}

// PolicySwap schedules a policy hot-swap at a point in a ReplayTrace
// stream.
type PolicySwap struct {
	At     float64
	Policy Policy
}
