package gensched

import (
	"context"
	"strings"
	"testing"
)

func TestNewScenarioDefaults(t *testing.T) {
	sc, err := NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Cores != 256 || sc.Sequences != 1 || sc.Days != 1 {
		t.Errorf("defaults = cores %d, sequences %d, days %v", sc.Cores, sc.Sequences, sc.Days)
	}
	if sc.Source == nil || sc.Source.Describe() != "lublin" {
		t.Error("default source is not the Lublin model")
	}
}

func TestNewScenarioOptions(t *testing.T) {
	sc, err := NewScenario(
		WithCores(512),
		WithLublin(2, 1.05),
		WithPolicy("F1"),
		WithEASY(),
		WithEstimates(),
		WithSequences(3),
		WithSeed(99),
		WithTau(20),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Cores != 512 || sc.Days != 2 || sc.Load != 1.05 || sc.Sequences != 3 {
		t.Errorf("scenario = %+v", sc)
	}
	if sc.Policy.Name() != "F1" || sc.Backfill != BackfillEASY || !sc.UseEstimates {
		t.Error("conditions not applied")
	}
	if sc.Seed != 99 || sc.Tau != 20 {
		t.Error("seed or tau not applied")
	}
}

func TestNewScenarioErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"bad cores", []Option{WithCores(0)}},
		{"bad policy", []Option{WithPolicy("NOPE")}},
		{"bad platform", []Option{WithPlatform("nope")}},
		{"bad days", []Option{WithLublin(0, 1)}},
		{"bad windows", []Option{WithWindows(1, 0)}},
		{"bad tau", []Option{WithTau(-1)}},
		{"bad load", []Option{WithLoad(-0.5)}},
		{"nil custom policy", []Option{WithCustomPolicy(nil)}},
		{"empty trace", []Option{WithTrace(&Trace{})}},
		{"no jobs", []Option{WithJobs("x", 4, nil)}},
	}
	for _, c := range cases {
		if _, err := NewScenario(c.opts...); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestScenarioRejectsOversizedJobs(t *testing.T) {
	big := []Job{
		{ID: 1, Submit: 0, Runtime: 10, Estimate: 10, Cores: 2},
		{ID: 7, Submit: 5, Runtime: 10, Estimate: 10, Cores: 32}, // larger than the machine
	}
	// WithJobs: the job list's own platform size is too small.
	if _, err := NewScenario(WithJobs("big", 16, big), WithPolicy("FCFS")); err == nil {
		t.Error("WithJobs accepted a job larger than its platform")
	} else if !strings.Contains(err.Error(), "job 7") || !strings.Contains(err.Error(), "32 cores") {
		t.Errorf("unhelpful error: %v", err)
	}
	// WithTrace behaves the same.
	tr := &Trace{Name: "big", MaxProcs: 16, Jobs: big}
	if _, err := NewScenario(WithTrace(tr), WithPolicy("FCFS")); err == nil {
		t.Error("WithTrace accepted a job larger than its platform")
	}
	// An explicit WithCores below the largest job is rejected too...
	if _, err := NewScenario(WithJobs("big", 64, big), WithCores(16), WithPolicy("FCFS")); err == nil {
		t.Error("WithCores shrank the platform below the largest job")
	}
	// ...while a machine that fits passes, as does FixedWindows.
	if _, err := NewScenario(WithJobs("big", 64, big), WithPolicy("FCFS")); err != nil {
		t.Errorf("valid job list rejected: %v", err)
	}
	// FixedWindows sources attach through grids; NewGrid validates them.
	ok, err := NewScenario(WithPolicy("FCFS"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGrid(ok, OverSources(FixedWindows("w", 16, [][]Job{big}))); err == nil {
		t.Error("NewGrid accepted a fixed-window job larger than its platform")
	}
	// An explicit WithCores below a fixed-window job is rejected too.
	small, err := NewScenario(WithCores(8), WithPolicy("FCFS"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGrid(small, OverSources(FixedWindows("w", 64, [][]Job{big}))); err == nil {
		t.Error("NewGrid accepted a fixed-window job larger than the explicit machine size")
	}
}

// TestFixedWindowsHonorsExplicitCores locks the contract the build-time
// validation assumes: an explicit WithCores overrides a FixedWindows
// source's intrinsic machine size, exactly like WithTrace sources, so
// what NewGrid validates is what the cell runs on.
func TestFixedWindowsHonorsExplicitCores(t *testing.T) {
	jobs := []Job{{ID: 1, Submit: 0, Runtime: 10, Estimate: 10, Cores: 16}}
	base, err := NewScenario(WithCores(16), WithPolicy("FCFS"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGrid(base, OverSources(FixedWindows("w", 8, [][]Job{jobs})))
	if err != nil {
		t.Fatalf("grid rejected despite the explicit 16-core machine: %v", err)
	}
	res, err := (&Runner{}).Run(context.Background(), g)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if res.Cells[0].Cores != 16 {
		t.Errorf("cell ran on %d cores, want the explicit 16", res.Cells[0].Cores)
	}
	// Without WithCores the source's own size wins, unchanged.
	plain, err := NewScenario(WithPolicy("FCFS"))
	if err != nil {
		t.Fatal(err)
	}
	ones := []Job{{ID: 1, Submit: 0, Runtime: 10, Estimate: 10, Cores: 1}}
	g2, err := NewGrid(plain, OverSources(FixedWindows("w", 8, [][]Job{ones})))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := (&Runner{}).Run(context.Background(), g2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cells[0].Cores != 8 {
		t.Errorf("cell ran on %d cores, want the source's 8", res2.Cells[0].Cores)
	}
}

func TestWithCheckPropagatesToSimulations(t *testing.T) {
	jobs := []Job{
		{ID: 1, Submit: 0, Runtime: 100, Estimate: 100, Cores: 2},
		{ID: 2, Submit: 1, Runtime: 50, Estimate: 50, Cores: 4},
		{ID: 3, Submit: 2, Runtime: 30, Estimate: 30, Cores: 2},
	}
	sc, err := NewScenario(WithJobs("tiny", 4, jobs), WithPolicy("FCFS"), WithEASY(), WithCheck())
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Check {
		t.Fatal("WithCheck not recorded")
	}
	if _, err := sc.Run(context.Background()); err != nil {
		t.Errorf("checked scenario failed: %v", err)
	}
}

func TestWithPlatformFixesCores(t *testing.T) {
	sc, err := NewScenario(WithPlatform("ctc-sp2"), WithPolicy("FCFS"))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Source.DefaultCores() != 338 {
		t.Errorf("CTC SP2 cores = %d, want 338", sc.Source.DefaultCores())
	}
	for _, name := range PlatformNames() {
		if _, err := Platform(name); err != nil {
			t.Errorf("Platform(%q): %v", name, err)
		}
	}
	// Aliases and case-insensitivity.
	for _, name := range []string{"SDSC", "Curie", "CTC"} {
		if _, err := Platform(name); err != nil {
			t.Errorf("Platform(%q): %v", name, err)
		}
	}
}

func TestFixedTraceAsIs(t *testing.T) {
	jobs := []Job{
		{ID: 1, Submit: 0, Runtime: 100, Estimate: 100, Cores: 2},
		{ID: 2, Submit: 10, Runtime: 50, Estimate: 50, Cores: 4},
	}
	sc, err := NewScenario(WithJobs("tiny", 4, jobs), WithPolicy("FCFS"))
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.Source.Build(WorkloadRequest{Sequences: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Windows) != 1 || len(w.Windows[0]) != 2 {
		t.Fatalf("windows = %v", w.Windows)
	}
	if w.Cores != 4 {
		t.Errorf("cores = %d, want 4 (from the trace)", w.Cores)
	}
	// Jobs must be passed through untouched (no rebasing).
	if w.Windows[0][0] != jobs[0] || w.Windows[0][1] != jobs[1] {
		t.Error("fixed jobs were modified")
	}
}

func TestWithCoresOverridesIntrinsicSize(t *testing.T) {
	jobs := []Job{{ID: 1, Submit: 0, Runtime: 10, Estimate: 10, Cores: 1}}
	// WithCores after WithJobs must win over the trace's own size.
	sc, err := NewScenario(WithJobs("tiny", 4, jobs), WithCores(512), WithPolicy("FCFS"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cores != 512 {
		t.Errorf("explicit WithCores ignored: ran on %d cores, want 512", res.Cores)
	}
	// Without WithCores the trace's size wins.
	sc2, err := NewScenario(WithJobs("tiny", 4, jobs), WithPolicy("FCFS"))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sc2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cores != 4 {
		t.Errorf("intrinsic size not applied: ran on %d cores, want 4", res2.Cores)
	}
}

func TestWithNameSurvivesGridExpansion(t *testing.T) {
	jobs := []Job{{ID: 1, Submit: 0, Runtime: 10, Estimate: 10, Cores: 1}}
	sc, err := NewScenario(WithJobs("tiny", 4, jobs), WithName("fig4a"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGrid(sc, OverPolicies("FCFS", "F1"))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range g.Cells() {
		if !strings.HasPrefix(c.Name, "fig4a/") {
			t.Errorf("cell name %q lost the WithName label", c.Name)
		}
	}
}

func TestScenarioRunSingleCell(t *testing.T) {
	sc, err := NewScenario(
		WithCores(64),
		WithLublin(0.25, 1.0),
		WithPolicy("FCFS"),
		WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerSeq) != 1 || res.AVEbsld < 1 {
		t.Errorf("result = %+v", res)
	}
	if res.Cores != 64 {
		t.Errorf("cores = %d", res.Cores)
	}
}
