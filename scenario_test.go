package gensched

import (
	"context"
	"strings"
	"testing"
)

func TestNewScenarioDefaults(t *testing.T) {
	sc, err := NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Cores != 256 || sc.Sequences != 1 || sc.Days != 1 {
		t.Errorf("defaults = cores %d, sequences %d, days %v", sc.Cores, sc.Sequences, sc.Days)
	}
	if sc.Source == nil || sc.Source.Describe() != "lublin" {
		t.Error("default source is not the Lublin model")
	}
}

func TestNewScenarioOptions(t *testing.T) {
	sc, err := NewScenario(
		WithCores(512),
		WithLublin(2, 1.05),
		WithPolicy("F1"),
		WithEASY(),
		WithEstimates(),
		WithSequences(3),
		WithSeed(99),
		WithTau(20),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Cores != 512 || sc.Days != 2 || sc.Load != 1.05 || sc.Sequences != 3 {
		t.Errorf("scenario = %+v", sc)
	}
	if sc.Policy.Name() != "F1" || sc.Backfill != BackfillEASY || !sc.UseEstimates {
		t.Error("conditions not applied")
	}
	if sc.Seed != 99 || sc.Tau != 20 {
		t.Error("seed or tau not applied")
	}
}

func TestNewScenarioErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"bad cores", []Option{WithCores(0)}},
		{"bad policy", []Option{WithPolicy("NOPE")}},
		{"bad platform", []Option{WithPlatform("nope")}},
		{"bad days", []Option{WithLublin(0, 1)}},
		{"bad windows", []Option{WithWindows(1, 0)}},
		{"bad tau", []Option{WithTau(-1)}},
		{"bad load", []Option{WithLoad(-0.5)}},
		{"nil custom policy", []Option{WithCustomPolicy(nil)}},
		{"empty trace", []Option{WithTrace(&Trace{})}},
		{"no jobs", []Option{WithJobs("x", 4, nil)}},
	}
	for _, c := range cases {
		if _, err := NewScenario(c.opts...); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestWithPlatformFixesCores(t *testing.T) {
	sc, err := NewScenario(WithPlatform("ctc-sp2"), WithPolicy("FCFS"))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Source.DefaultCores() != 338 {
		t.Errorf("CTC SP2 cores = %d, want 338", sc.Source.DefaultCores())
	}
	for _, name := range PlatformNames() {
		if _, err := Platform(name); err != nil {
			t.Errorf("Platform(%q): %v", name, err)
		}
	}
	// Aliases and case-insensitivity.
	for _, name := range []string{"SDSC", "Curie", "CTC"} {
		if _, err := Platform(name); err != nil {
			t.Errorf("Platform(%q): %v", name, err)
		}
	}
}

func TestFixedTraceAsIs(t *testing.T) {
	jobs := []Job{
		{ID: 1, Submit: 0, Runtime: 100, Estimate: 100, Cores: 2},
		{ID: 2, Submit: 10, Runtime: 50, Estimate: 50, Cores: 4},
	}
	sc, err := NewScenario(WithJobs("tiny", 4, jobs), WithPolicy("FCFS"))
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.Source.Build(WorkloadRequest{Sequences: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Windows) != 1 || len(w.Windows[0]) != 2 {
		t.Fatalf("windows = %v", w.Windows)
	}
	if w.Cores != 4 {
		t.Errorf("cores = %d, want 4 (from the trace)", w.Cores)
	}
	// Jobs must be passed through untouched (no rebasing).
	if w.Windows[0][0] != jobs[0] || w.Windows[0][1] != jobs[1] {
		t.Error("fixed jobs were modified")
	}
}

func TestWithCoresOverridesIntrinsicSize(t *testing.T) {
	jobs := []Job{{ID: 1, Submit: 0, Runtime: 10, Estimate: 10, Cores: 1}}
	// WithCores after WithJobs must win over the trace's own size.
	sc, err := NewScenario(WithJobs("tiny", 4, jobs), WithCores(512), WithPolicy("FCFS"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cores != 512 {
		t.Errorf("explicit WithCores ignored: ran on %d cores, want 512", res.Cores)
	}
	// Without WithCores the trace's size wins.
	sc2, err := NewScenario(WithJobs("tiny", 4, jobs), WithPolicy("FCFS"))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sc2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cores != 4 {
		t.Errorf("intrinsic size not applied: ran on %d cores, want 4", res2.Cores)
	}
}

func TestWithNameSurvivesGridExpansion(t *testing.T) {
	jobs := []Job{{ID: 1, Submit: 0, Runtime: 10, Estimate: 10, Cores: 1}}
	sc, err := NewScenario(WithJobs("tiny", 4, jobs), WithName("fig4a"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGrid(sc, OverPolicies("FCFS", "F1"))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range g.Cells() {
		if !strings.HasPrefix(c.Name, "fig4a/") {
			t.Errorf("cell name %q lost the WithName label", c.Name)
		}
	}
}

func TestScenarioRunSingleCell(t *testing.T) {
	sc, err := NewScenario(
		WithCores(64),
		WithLublin(0.25, 1.0),
		WithPolicy("FCFS"),
		WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerSeq) != 1 || res.AVEbsld < 1 {
		t.Errorf("result = %+v", res)
	}
	if res.Cores != 64 {
		t.Errorf("cores = %d", res.Cores)
	}
}
