// Quickstart: generate a day of synthetic cluster workload, schedule it
// with the classical FCFS policy and with the paper's learned F1 policy,
// and compare the average bounded slowdowns.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	gensched "github.com/hpcsched/gensched"
)

func main() {
	const cores = 256

	// A saturated day on a 256-core machine, from the Lublin-Feitelson
	// workload model (offered load 1.05 — the regime where the choice of
	// scheduling policy dominates performance).
	trace, err := gensched.LublinTrace(cores, 1, 1.05, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d jobs on %d cores\n\n", len(trace.Jobs), cores)

	for _, name := range []string{"FCFS", "SPT", "F1"} {
		res, err := gensched.Simulate(cores, trace.Jobs, gensched.SimOptions{
			Policy: gensched.MustPolicy(name),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s average bounded slowdown %9.2f   max wait %7.0fs   utilization %.2f\n",
			name, res.AVEbsld, res.MaxWait, res.Utilization)
	}

	fmt.Println("\nLower is better: F1 = log10(r)*n + 870*log10(s), Table 3 of the paper.")
}
