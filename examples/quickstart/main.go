// Quickstart: declare a scenario — one saturated day of synthetic
// cluster workload on 256 cores — fan it out over a three-policy grid,
// and compare the average bounded slowdowns.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	gensched "github.com/hpcsched/gensched"
)

func main() {
	// A saturated day on a 256-core machine, from the Lublin-Feitelson
	// workload model (offered load 1.05 — the regime where the choice of
	// scheduling policy dominates performance).
	sc, err := gensched.NewScenario(
		gensched.WithCores(256),
		gensched.WithLublin(1, 1.05),
		gensched.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}

	// The grid's only axis is the policy; all three cells schedule the
	// exact same workload, so the comparison is paired.
	g, err := gensched.NewGrid(sc, gensched.OverPolicies("FCFS", "SPT", "F1"))
	if err != nil {
		log.Fatal(err)
	}
	res, err := (&gensched.Runner{KeepSims: true}).Run(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}

	first := res.Cells[0].Sims[0]
	fmt.Printf("workload: %d jobs on %d cores\n\n", len(first.Stats), res.Cells[0].Cores)
	for _, c := range res.Cells {
		sim := c.Sims[0]
		fmt.Printf("%-5s average bounded slowdown %9.2f   max wait %7.0fs   utilization %.2f\n",
			c.Scenario.Policy.Name(), c.AVEbsld, sim.MaxWait, sim.Utilization)
	}

	fmt.Println("\nLower is better: F1 = log10(r)*n + 870*log10(s), Table 3 of the paper.")
}
