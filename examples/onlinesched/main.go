// Example onlinesched drives the online scheduling subsystem the way a
// live resource manager would: it starts a gensched.Cluster, streams one
// day of Lublin–Feitelson jobs at it — submitting each job at its arrival
// time and reporting each completion when the job's runtime has elapsed —
// and hot-swaps the queue policy from FCFS to a learned nonlinear policy
// halfway through the day, without dropping any queued or running state.
// It prints the average bounded slowdown accumulated before the swap and
// at the end of the stream.
package main

import (
	"fmt"
	"log"
	"math"

	gensched "github.com/hpcsched/gensched"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("onlinesched: ", err)
	}
}

func run() error {
	const cores = 256

	// One day of synthetic jobs at offered load 1.6 (an overloaded day, so the queue builds and policy order matters).
	trace, err := gensched.LublinTrace(cores, 1, 1.6, 20170612)
	if err != nil {
		return err
	}
	jobs := trace.Jobs
	fmt.Printf("streaming %d jobs over %.1f hours at a %d-core cluster\n",
		len(jobs), trace.Duration()/3600, cores)

	// The live cluster: FCFS with EASY backfilling, the production
	// baseline the paper's learned policies are deployed against.
	cluster, err := gensched.NewCluster(cores, gensched.ClusterConfig{
		Policy:   gensched.MustPolicy("FCFS"),
		Backfill: gensched.BackfillEASY,
	})
	if err != nil {
		return err
	}

	// The learned policy to hot-swap in: the paper's best fitted form,
	// deployed from its textual representation the way a config file or a
	// swap-policy API request would carry it.
	learned, err := gensched.ParsePolicy("L1", "log10(r)*n + 870*log10(s)")
	if err != nil {
		return err
	}
	swapAt := jobs[0].Submit + (jobs[len(jobs)-1].Submit-jobs[0].Submit)/2
	swapped := false

	// The stream: arrivals are known; completions become known as the
	// cluster starts jobs. pending holds the in-flight completions.
	type completion struct {
		at float64
		id int
	}
	var pending []completion
	runtimeOf := make(map[int]float64, len(jobs))
	for _, j := range jobs {
		runtimeOf[j.ID] = j.Runtime
	}
	// schedule records the completion times of freshly started jobs.
	schedule := func(starts []gensched.JobStart) {
		for _, st := range starts {
			pending = append(pending, completion{at: st.Time + runtimeOf[st.ID], id: st.ID})
		}
	}

	next := 0 // next arrival index
	for next < len(jobs) || len(pending) > 0 {
		// The next instant anything happens: an arrival or a completion.
		t := math.Inf(1)
		if next < len(jobs) {
			t = jobs[next].Submit
		}
		for i := range pending {
			if pending[i].at < t {
				t = pending[i].at
			}
		}

		// Mid-stream, swap the policy — before the instant's events, so
		// the swap governs this instant's scheduling pass too.
		if !swapped && t >= swapAt {
			m := cluster.Metrics()
			fmt.Printf("t=%6.1fh  swapping FCFS -> %s  (AveBsld so far: %.2f over %d jobs)\n",
				cluster.Clock()/3600, learned.Name(), m.AveBsld, m.Completed)
			if err := cluster.SwapPolicy(learned); err != nil {
				return err
			}
			swapped = true
		}

		starts, err := cluster.AdvanceTo(t)
		if err != nil {
			return err
		}
		schedule(starts)
		// Apply every event at this instant: completions, then arrivals.
		for i := 0; i < len(pending); i++ {
			if pending[i].at == t {
				if err := cluster.Complete(pending[i].id); err != nil {
					return err
				}
				pending[i] = pending[len(pending)-1]
				pending = pending[:len(pending)-1]
				i--
			}
		}
		for next < len(jobs) && jobs[next].Submit == t {
			if err := cluster.Submit(jobs[next]); err != nil {
				return err
			}
			next++
		}
		schedule(cluster.Flush())
	}

	m := cluster.Metrics()
	fmt.Printf("stream drained: %d jobs completed, %d backfilled, max queue %d\n",
		m.Completed, m.Backfilled, m.MaxQueueLen)
	fmt.Printf("final AveBsld: %.2f   (mean wait %.0fs, utilization %.1f%%)\n",
		m.AveBsld, m.MeanWait, 100*m.Utilization)
	return nil
}
