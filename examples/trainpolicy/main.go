// Trainpolicy runs the paper's whole pipeline end to end, at miniature
// scale: simulate permutation trials of task sets to build a score
// distribution (§3.2), fit all 576 candidate nonlinear functions by
// weighted regression (§3.3), and race the best one against the
// baselines on a fresh workload — a one-axis grid on the Runner.
//
//	go run ./examples/trainpolicy
package main

import (
	"context"
	"fmt"
	"log"

	gensched "github.com/hpcsched/gensched"
)

func main() {
	// Step 1: the simulation scheme. The paper uses 256k trials across
	// many tuples; a handful is enough to see the pipeline work.
	fmt.Println("step 1: simulating permutation trials (|S|=16, |Q|=32, 256 cores)...")
	samples, err := gensched.GenerateScoreDistribution(gensched.TrainingConfig{
		Tuples: 12,
		Trials: 4096,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d training samples (r, n, s, score)\n\n", len(samples))

	// Step 2: nonlinear regression over the function family.
	fmt.Println("step 2: fitting all 576 candidate functions (weighted by r*n)...")
	policies, fits, err := gensched.FitPolicies(samples, 4, 0)
	if err != nil {
		log.Fatal(err)
	}
	for i, f := range fits {
		simp, _ := f.Func.Simplified()
		fmt.Printf("  L%d: %-40s fitness=%.3g\n", i+1, simp.Compact(), f.Rank)
	}
	fmt.Println()

	// Step 3: the learned function is a scheduling policy. Race it on a
	// fresh saturated workload against the paper's baselines — one grid,
	// policies as the axis, everything else shared.
	fmt.Println("step 3: scheduling a fresh 2-day workload with the learned policy...")
	sc, err := gensched.NewScenario(
		gensched.WithCores(256),
		gensched.WithLublin(2, 1.05),
		gensched.WithSeed(99),
	)
	if err != nil {
		log.Fatal(err)
	}
	g, err := gensched.NewGrid(sc,
		gensched.OverPolicies("FCFS", "SPT", "F1"),
		gensched.OverPolicySet(policies[0]),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := (&gensched.Runner{}).Run(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range res.Cells {
		fmt.Printf("  %-5s AVEbsld %9.2f\n", c.Scenario.Policy.Name(), c.AVEbsld)
	}
}
