// Platformstudy mirrors the paper's real-trace evaluation (§4.3) on the
// synthetic platform stand-ins: for each of the four Table 5 machines —
// from the 338-core CTC SP2 of 1997 to the 163,840-core ANL Intrepid of
// 2009 — schedule disjoint sequences under the most realistic condition
// (user estimates + EASY backfilling) and report the median average
// bounded slowdown per policy. The point of the experiment: policies
// trained once on a 256-core model generalize across wildly different
// platforms.
//
//	go run ./examples/platformstudy
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	gensched "github.com/hpcsched/gensched"
	"github.com/hpcsched/gensched/internal/experiments"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/traces"
)

func main() {
	cfg := experiments.QuickConfig()
	cfg.Sequences = 3
	cfg.WindowDays = 5

	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprint(tw, "platform\tcores\t")
	for _, p := range gensched.Policies() {
		fmt.Fprintf(tw, "%s\t", p.Name())
	}
	fmt.Fprintln(tw)

	for _, spec := range traces.All() {
		windows, err := experiments.TraceWindows(cfg, spec)
		if err != nil {
			log.Fatal(err)
		}
		sc := experiments.Scenario{
			ID: spec.Name, Name: spec.Name, Cores: spec.Cores,
			UseEstimates: true, Backfill: sim.BackfillEASY, Windows: windows,
		}
		res, err := experiments.RunDynamic(sc, sched.Registry(), 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%d\t", spec.Name, spec.Cores)
		for _, m := range res.Medians() {
			fmt.Fprintf(tw, "%.1f\t", m)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Println("\nmedian AVEbsld over sequences; estimates + EASY backfilling; lower is better")
}
