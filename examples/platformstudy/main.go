// Platformstudy mirrors the paper's real-trace evaluation (§4.3) on the
// synthetic platform stand-ins: for each of the four Table 5 machines —
// from the 338-core CTC SP2 of 1997 to the 163,840-core ANL Intrepid of
// 2009 — schedule disjoint sequences under the most realistic condition
// (user estimates + EASY backfilling) and report the median average
// bounded slowdown per policy. The point of the experiment: policies
// trained once on a 256-core model generalize across wildly different
// platforms.
//
// The whole study is one declarative grid — platforms × the paper's
// eight policies — executed on the Runner's worker pool.
//
//	go run ./examples/platformstudy
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	gensched "github.com/hpcsched/gensched"
)

func main() {
	sc, err := gensched.NewScenario(
		gensched.WithWindows(5, 3), // three 5-day sequences
		gensched.WithEstimates(),
		gensched.WithEASY(),
		gensched.WithSeed(20171112),
	)
	if err != nil {
		log.Fatal(err)
	}
	g, err := gensched.NewGrid(sc,
		gensched.OverPlatforms(), // all four Table 5 stand-ins
		gensched.OverPolicies(),  // the paper's eight
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := (&gensched.Runner{}).Run(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprint(tw, "platform\tcores\t")
	for _, p := range gensched.Policies() {
		fmt.Fprintf(tw, "%s\t", p.Name())
	}
	fmt.Fprintln(tw)

	// Platforms are the outer axis, policies the inner: each platform's
	// eight cells are contiguous.
	nPol := len(gensched.Policies())
	for i := 0; i < len(res.Cells); i += nPol {
		fmt.Fprintf(tw, "%s\t%d\t", res.Cells[i].Workload, res.Cells[i].Cores)
		for _, c := range res.Cells[i : i+nPol] {
			fmt.Fprintf(tw, "%.1f\t", c.Median())
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmedian AVEbsld over sequences; estimates + EASY backfilling; lower is better")
}
