// Custompolicy implements the future-work direction of the paper's
// conclusions (§5): "we could envision the same procedure being applied
// to obtain custom scheduling policies for a specific HPC platform, using
// its specific workload traces and architecture configurations."
//
// It runs the training pipeline against an SDSC-Blue-like platform
// (1,152 cores) instead of the paper's generic 256-core configuration,
// fits a custom policy to that platform's own score distribution, and
// compares it against the paper's general F1/F2 policies on fresh
// sequences from the same platform — one grid with the custom policy as
// an extra axis entry.
//
//	go run ./examples/custompolicy
package main

import (
	"context"
	"fmt"
	"log"

	gensched "github.com/hpcsched/gensched"
)

func main() {
	const platform = "sdsc-blue"
	const cores = 1152
	fmt.Printf("platform: %s (%d cores)\n\n", platform, cores)

	// Step 1: score tuples drawn from THIS platform's workload model —
	// machine size and size distribution differ from the paper's generic
	// 256-core training setup.
	fmt.Println("training a custom policy on the platform's own workload model...")
	samples, err := gensched.GenerateScoreDistribution(gensched.TrainingConfig{
		Tuples: 10,
		Trials: 4096,
		Seed:   404,
		Cores:  cores,
	})
	if err != nil {
		log.Fatal(err)
	}
	policies, fits, err := gensched.FitPolicies(samples, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	custom := policies[0]
	simp, _ := fits[0].Func.Simplified()
	fmt.Printf("  custom policy: %s (fitness %.3g)\n\n", simp.Compact(), fits[0].Rank)

	// Step 2: evaluate on fresh sequences from the platform stand-in,
	// under a realistic condition (user estimates), with a seed disjoint
	// from the training seed.
	sc, err := gensched.NewScenario(
		gensched.WithPlatform(platform),
		gensched.WithWindows(2, 4), // four 2-day sequences
		gensched.WithEstimates(),
		gensched.WithSeed(777),
	)
	if err != nil {
		log.Fatal(err)
	}
	g, err := gensched.NewGrid(sc,
		gensched.OverPolicies("FCFS", "SPT", "F1", "F2"),
		gensched.OverPolicySet(custom),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := (&gensched.Runner{}).Run(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("median AVEbsld over %d sequences (%s, user estimates):\n", sc.Sequences, platform)
	for _, c := range res.Cells {
		fmt.Printf("  %-7s %9.2f\n", c.Scenario.Policy.Name(), c.Median())
	}
	fmt.Printf("\nspread (IQR) — the stability property the paper highlights:\n")
	for _, c := range res.Cells {
		fmt.Printf("  %-7s %9.2f\n", c.Scenario.Policy.Name(), c.Quantile(0.75)-c.Quantile(0.25))
	}
}
