// Custompolicy implements the future-work direction of the paper's
// conclusions (§5): "we could envision the same procedure being applied
// to obtain custom scheduling policies for a specific HPC platform, using
// its specific workload traces and architecture configurations."
//
// It runs the training pipeline against an SDSC-Blue-like platform
// (1,152 cores) instead of the paper's generic 256-core configuration,
// fits a custom policy to that platform's own score distribution, and
// compares it against the paper's general F1/F2 policies on fresh
// sequences from the same platform.
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"
	"log"

	"github.com/hpcsched/gensched/internal/experiments"
	"github.com/hpcsched/gensched/internal/lublin"
	"github.com/hpcsched/gensched/internal/mlfit"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/stats"
	"github.com/hpcsched/gensched/internal/traces"
	"github.com/hpcsched/gensched/internal/trainer"
)

func main() {
	platform := traces.SDSCBlue
	fmt.Printf("platform: %s (%d cores, util %.1f%%)\n\n",
		platform.Name, platform.Cores, 100*platform.TargetUtil)

	// Step 1: score tuples drawn from THIS platform's workload model —
	// machine size and size distribution differ from the paper's generic
	// 256-core training setup.
	fmt.Println("training a custom policy on the platform's own workload model...")
	spec := trainer.TupleSpec{
		SSize: 16, QSize: 32,
		Cores:  platform.Cores,
		Params: lublin.DefaultParams(platform.Cores),
	}
	samples, err := trainer.ScoreDistribution(10, spec, trainer.TrialConfig{Trials: 4096}, 404)
	if err != nil {
		log.Fatal(err)
	}
	ranked, err := mlfit.FitAll(samples, mlfit.Options{})
	if err != nil {
		log.Fatal(err)
	}
	best := mlfit.TopDistinct(ranked, 1)[0]
	simp, _ := best.Func.Simplified()
	fmt.Printf("  custom policy: %s (fitness %.3g, order fidelity %.3f)\n\n",
		simp.Compact(), best.Rank, mlfit.OrderFidelity(best.Func, samples))
	custom := sched.Expr("CUSTOM", simp)

	// Step 2: evaluate on fresh sequences from the platform stand-in,
	// under the most realistic condition (estimates + EASY backfilling).
	cfg := experiments.QuickConfig()
	cfg.Seed = 777 // disjoint from the training seed
	windows, err := experiments.TraceWindows(cfg, platform)
	if err != nil {
		log.Fatal(err)
	}
	sc := experiments.Scenario{
		ID: "custom", Name: platform.Name, Cores: platform.Cores,
		UseEstimates: true, Windows: windows,
	}
	contenders := []sched.Policy{sched.FCFS(), sched.SPT(), sched.F1(), sched.F2(), custom}
	res, err := experiments.RunDynamic(sc, contenders, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("median AVEbsld over %d sequences (%s, user estimates):\n", cfg.Sequences, platform.Name)
	med := res.Medians()
	for i, p := range res.Policies {
		fmt.Printf("  %-7s %9.2f\n", p, med[i])
	}
	fmt.Printf("\nspread (IQR) — the stability property the paper highlights:\n")
	for i, p := range res.Policies {
		b, err := stats.NewBoxplot(res.PerSeq[i])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s %9.2f\n", p, b.IQR())
	}
}
