// Swfreplay demonstrates the Standard Workload Format round trip the
// paper's evaluation relies on: write a synthetic trace as SWF (the
// Parallel Workloads Archive format), parse it back, slice it into
// disjoint sequences, and replay each sequence through the simulator the
// way the dynamic scheduling experiments do.
//
//	go run ./examples/swfreplay
package main

import (
	"bytes"
	"fmt"
	"log"

	gensched "github.com/hpcsched/gensched"
	"os"
)

func main() {
	const cores = 128

	// Generate six days of workload and persist it as SWF.
	trace, err := gensched.LublinTrace(cores, 6, 0.95, 7)
	if err != nil {
		log.Fatal(err)
	}
	if err := gensched.ApplyEstimates(trace.Jobs, 8); err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gensched.WriteSWF(&buf, trace); err != nil {
		log.Fatal(err)
	}
	path := "replay.swf"
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d jobs, %d bytes\n", path, len(trace.Jobs), buf.Len())

	// Parse it back, as any SWF consumer would.
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	parsed, err := gensched.ReadSWF(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	st := parsed.ComputeStats()
	fmt.Printf("parsed back: %d jobs, %d cores, util %.1f%%, mean size %.1f cores\n\n",
		st.Jobs, parsed.MaxProcs, 100*st.Utilization, st.MeanCores)

	// Replay three disjoint 2-day sequences under two policies.
	windows, err := gensched.SliceWindows(parsed, 2, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"FCFS", "F1"} {
		fmt.Printf("%s:", name)
		for i, w := range windows {
			res, err := gensched.Simulate(parsed.MaxProcs, w, gensched.SimOptions{
				Policy:       gensched.MustPolicy(name),
				UseEstimates: true,
				Backfill:     gensched.BackfillEASY,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  seq%d AVEbsld=%.2f", i+1, res.AVEbsld)
		}
		fmt.Println()
	}
	_ = os.Remove(path)
}
