// Swfreplay demonstrates the Standard Workload Format round trip the
// paper's evaluation relies on: write a synthetic trace as SWF (the
// Parallel Workloads Archive format), parse it back, and replay it as a
// Scenario — the parsed trace sliced into disjoint sequences, scheduled
// under every grid policy the way the dynamic scheduling experiments do.
//
//	go run ./examples/swfreplay
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"

	gensched "github.com/hpcsched/gensched"
)

func main() {
	const cores = 128

	// Generate twelve days of workload and persist it as SWF. Load
	// calibration to 1.05 compresses the clock, leaving a dense trace a
	// few days long.
	trace, err := gensched.LublinTrace(cores, 12, 1.05, 42)
	if err != nil {
		log.Fatal(err)
	}
	if err := gensched.ApplyEstimates(trace.Jobs, 8); err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gensched.WriteSWF(&buf, trace); err != nil {
		log.Fatal(err)
	}
	path := "replay.swf"
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d jobs, %d bytes\n", path, len(trace.Jobs), buf.Len())

	// Parse it back, as any SWF consumer would.
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	parsed, err := gensched.ReadSWF(f)
	_ = f.Close() // opened read-only; close cannot lose data
	if err != nil {
		log.Fatal(err)
	}
	st := parsed.ComputeStats()
	fmt.Printf("parsed back: %d jobs, %d cores, util %.1f%%, mean size %.1f cores\n\n",
		st.Jobs, parsed.MaxProcs, 100*st.Utilization, st.MeanCores)

	// Replay three disjoint two-day sequences under two policies: the
	// parsed trace is the scenario's workload source, the policies are
	// the grid's axis.
	sc, err := gensched.NewScenario(
		gensched.WithTrace(parsed),
		gensched.WithWindows(2, 3),
		gensched.WithEstimates(),
		gensched.WithEASY(),
	)
	if err != nil {
		log.Fatal(err)
	}
	g, err := gensched.NewGrid(sc, gensched.OverPolicies("FCFS", "F1"))
	if err != nil {
		log.Fatal(err)
	}
	res, err := (&gensched.Runner{}).Run(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range res.Cells {
		fmt.Printf("%s:", c.Scenario.Policy.Name())
		for i, v := range c.PerSeq {
			fmt.Printf("  seq%d AVEbsld=%.2f", i+1, v)
		}
		fmt.Println()
	}
	_ = os.Remove(path)
}
