package main

import (
	"bytes"
	"strings"
	"testing"

	gensched "github.com/hpcsched/gensched"
)

// TestAdaptiveLoopPinned pins the example's behavior — the acceptance
// property of the adaptive subsystem: under stationary traffic the loop
// retrains but never promotes; when the workload drifts it detects the
// regime change, promotes a retrained policy whose twin-replay AveBsld
// decisively beats the stale incumbent's, and ends the stream far ahead
// of the keep-the-stale-policy counterfactual. Everything is seeded, so
// the run is exactly reproducible.
func TestAdaptiveLoopPinned(t *testing.T) {
	rep, err := run()
	if err != nil {
		t.Fatal(err)
	}

	// Stationary traffic: the loop ran — and retrained at least once —
	// but made zero promotions.
	if rep.Stationary.Rounds < 1 {
		t.Errorf("stationary: loop never retrained (rounds=%d)", rep.Stationary.Rounds)
	}
	if rep.Stationary.Promotions != 0 {
		t.Errorf("stationary: %d promotions, want 0", rep.Stationary.Promotions)
	}
	if rep.Stationary.Policy != rep.Incumbent {
		t.Errorf("stationary: finished under %q, want the incumbent %q",
			rep.Stationary.Policy, rep.Incumbent)
	}

	// Drifting traffic: the loop promoted a retrained policy.
	if rep.Drifted.Promotions < 1 {
		t.Fatalf("drift: no promotions (decisions: %+v)", rep.Drifted.Decisions)
	}
	var promo *gensched.AdaptiveDecision
	for i := range rep.Drifted.Decisions {
		if rep.Drifted.Decisions[i].Promoted {
			promo = &rep.Drifted.Decisions[i]
			break
		}
	}
	if promo == nil {
		t.Fatal("drift: promotions counted but no promoted decision recorded")
	}
	// The promotion was triggered by detected drift, not noise: the
	// characterization moved by nats, and the promoted candidate beat the
	// stale incumbent's twin replay by the configured margin.
	if promo.Drift < 1 {
		t.Errorf("promoting round measured drift %.3f nats, want >= 1 (a regime change)", promo.Drift)
	}
	if promo.Incumbent != rep.Incumbent {
		t.Errorf("promotion displaced %q, want the stale incumbent %q", promo.Incumbent, rep.Incumbent)
	}
	best := promo.Candidates[promo.Best()]
	margin := autopilotConfig().Margin
	if best.AveBsld >= promo.IncumbentBsld*(1-margin) {
		t.Errorf("promoted candidate replay AveBsld %.3f does not beat incumbent %.3f by margin %.2f",
			best.AveBsld, promo.IncumbentBsld, margin)
	}
	// The twin replayed more than the raw window: the live backlog was
	// merged in (that is where a stale policy's damage shows).
	if promo.ShadowJobs <= promo.Window {
		t.Errorf("twin replayed %d jobs for a window of %d; expected the backlog merged in",
			promo.ShadowJobs, promo.Window)
	}
	if rep.Drifted.Policy == rep.Incumbent {
		t.Errorf("drift: stream still finished under the stale incumbent %q", rep.Drifted.Policy)
	}

	// End to end, closing the loop beat keeping the stale policy — with
	// real headroom, not rounding error.
	if rep.Drifted.Metrics.AveBsld >= rep.StaleThroughout/2 {
		t.Errorf("adaptive run AveBsld %.2f vs stale counterfactual %.2f: want at least 2x better",
			rep.Drifted.Metrics.AveBsld, rep.StaleThroughout)
	}

	// The printed report renders both scenarios.
	var buf bytes.Buffer
	printReport(&buf, rep)
	out := buf.String()
	for _, want := range []string{"PROMOTE", "0 promotions", "counterfactual"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}

// TestRunDeterministic pins reproducibility at the example level: two
// invocations produce identical decision sequences and final metrics.
func TestRunDeterministic(t *testing.T) {
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Drifted.Metrics != b.Drifted.Metrics || a.Stationary.Metrics != b.Stationary.Metrics {
		t.Fatal("metrics differ across identical runs")
	}
	if len(a.Drifted.Decisions) != len(b.Drifted.Decisions) {
		t.Fatal("decision counts differ across identical runs")
	}
	for i := range a.Drifted.Decisions {
		da, db := a.Drifted.Decisions[i], b.Drifted.Decisions[i]
		if da.At != db.At || da.Promoted != db.Promoted || da.PolicyExpr != db.PolicyExpr {
			t.Fatalf("decision %d differs across identical runs", i)
		}
	}
}
