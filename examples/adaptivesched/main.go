// Example adaptivesched demonstrates the closed adaptive-retraining loop
// end to end: a policy fitted offline to historical traffic is deployed
// on a live cluster, the traffic drifts mid-stream from the big-job mix
// it was trained for to an overloaded small-job flood, and the Autopilot
// — retraining from a sliding window of observed jobs, shadow-evaluating
// the refitted candidates on a window replay, and hot-swapping the
// winner — moves the cluster off the stale policy without a restart.
//
// Two scenarios run:
//
//   - stationary: traffic stays in the trained-for regime. The loop
//     retrains once (first round), finds no candidate beating the
//     incumbent by the margin, and afterwards idles on the drift gate:
//     zero promotions.
//   - drift: the mix flips halfway. The loop detects the drift,
//     retrains on the new window, and promotes a policy whose
//     window-replay AveBsld beats the stale incumbent's.
//
// The drifted run is also compared against the counterfactual of keeping
// the stale policy for the whole stream (ReplayTrace), showing what the
// swap bought end to end. Everything derives from fixed seeds, so the
// output is reproducible; main_test.go pins it.
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"os"

	gensched "github.com/hpcsched/gensched"
)

const cores = 256

// rng is a minimal splitmix64, enough to generate the synthetic regimes
// deterministically without reaching into internal packages.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }
func (r *rng) pick(v []int) int {
	return v[int(r.next()%uint64(len(v)))]
}

// bigJobs is the historical regime: a trickle of long, wide jobs with
// modest runtime dispersion — the shape of traffic where F3's
// area-plus-aging trade-off is sound and reordering buys little.
func bigJobs(seed uint64, n int, t0 float64) []gensched.Job {
	r := &rng{s: seed}
	jobs := make([]gensched.Job, n)
	at := t0
	for i := range jobs {
		at += 600 + 600*r.float()
		runtime := 3600 * (2 + 2*r.float())
		jobs[i] = gensched.Job{Submit: at, Runtime: runtime, Estimate: runtime,
			Cores: r.pick([]int{8, 16, 32, 64})}
	}
	return jobs
}

// smallJobs is the drifted regime: an overloaded flood (~1.6x offered
// load) of short, narrow jobs with heterogeneous areas — the mix where
// area-ordering matters and a big-job policy's huge s-coefficient
// degenerates to near-FCFS.
func smallJobs(seed uint64, n int, t0 float64) []gensched.Job {
	r := &rng{s: seed}
	jobs := make([]gensched.Job, n)
	at := t0
	for i := range jobs {
		at += 8 + 8*r.float()
		runtime := math.Exp(math.Log(30) + r.float()*math.Log(100)) // 30s .. 3000s
		jobs[i] = gensched.Job{Submit: at, Runtime: runtime, Estimate: runtime,
			Cores: r.pick([]int{2, 4, 8, 16})}
	}
	return jobs
}

func reID(jobs []gensched.Job) []gensched.Job {
	for i := range jobs {
		jobs[i].ID = i + 1
	}
	return jobs
}

// clusterConfig is the one scheduling regime everything in this example
// shares: offline shadow ranking, the live clusters, and the
// counterfactual replay. EASY backfilling, the production baseline.
func clusterConfig(p gensched.Policy) gensched.ClusterConfig {
	return gensched.ClusterConfig{Policy: p, Backfill: gensched.BackfillEASY}
}

func autopilotConfig() gensched.AutopilotConfig {
	return gensched.AutopilotConfig{
		Window:    256,
		MinWindow: 160,
		Interval:  6 * 3600,
		MinDrift:  0.2,
		Tuples:    3,
		Trials:    96,
		TopK:      3,
		// Swaps must be decisive: a candidate has to beat the incumbent's
		// window replay by 25%. Retrained-on-the-same-regime candidates
		// land within this band (no thrash); a genuinely stale policy on
		// drifted traffic loses by multiples, so real drift still swaps.
		Margin: 0.25,
		Seed:   20170613,
	}
}

// outcome summarizes one closed-loop run.
type outcome struct {
	Rounds     int
	Promotions int
	Decisions  []gensched.AdaptiveDecision
	Metrics    gensched.ClusterMetrics
	Policy     string // policy active at the end of the stream
}

// runStream drives the live cluster with the autopilot attached, exactly
// like a resource manager: submit each arrival, report each completion as
// the job's runtime elapses, advance the clock between events. The
// adaptation rounds ride on AdvanceTo.
func runStream(jobs []gensched.Job, incumbent gensched.Policy) (outcome, error) {
	cluster, err := gensched.NewCluster(cores, clusterConfig(incumbent))
	if err != nil {
		return outcome{}, err
	}
	loop, err := gensched.Autopilot(cluster, autopilotConfig())
	if err != nil {
		return outcome{}, err
	}

	type completion struct {
		at float64
		id int
	}
	var pending []completion
	runtimeOf := make(map[int]float64, len(jobs))
	for _, j := range jobs {
		runtimeOf[j.ID] = j.Runtime
	}
	schedule := func(starts []gensched.JobStart) {
		for _, st := range starts {
			pending = append(pending, completion{at: st.Time + runtimeOf[st.ID], id: st.ID})
		}
	}
	next := 0
	for next < len(jobs) || len(pending) > 0 {
		t := math.Inf(1)
		if next < len(jobs) {
			t = jobs[next].Submit
		}
		for i := range pending {
			if pending[i].at < t {
				t = pending[i].at
			}
		}
		starts, err := cluster.AdvanceTo(t)
		if err != nil {
			return outcome{}, err
		}
		schedule(starts)
		for i := 0; i < len(pending); i++ {
			if pending[i].at == t {
				if err := cluster.Complete(pending[i].id); err != nil {
					return outcome{}, err
				}
				pending[i] = pending[len(pending)-1]
				pending = pending[:len(pending)-1]
				i--
			}
		}
		for next < len(jobs) && jobs[next].Submit == t {
			if err := cluster.Submit(jobs[next]); err != nil {
				return outcome{}, err
			}
			next++
		}
		schedule(cluster.Flush())
	}
	if err := loop.Err(); err != nil {
		return outcome{}, err
	}
	return outcome{
		Rounds:     loop.Rounds(),
		Promotions: loop.Promotions(),
		Decisions:  loop.Decisions(),
		Metrics:    cluster.Metrics(),
		Policy:     cluster.Status().Policy,
	}, nil
}

// report holds everything the example demonstrates; main prints it and
// main_test.go pins it.
type report struct {
	Incumbent       string
	Stationary      outcome
	Drifted         outcome
	StaleThroughout float64 // counterfactual AveBsld: stale policy, whole drifted stream
}

func run() (*report, error) {
	// The deployed incumbent is the paper's own offline artifact: F3 from
	// Table 3, r·n + 6.86e6·log10(s), its huge s-coefficient calibrated
	// to the big areas of the paper's training distribution. On the
	// big-job regime that trade-off is sound; on a small-job flood the
	// s-term swamps the areas and the policy degenerates to near-FCFS.
	incumbent := gensched.MustPolicy("F3")
	rep := &report{Incumbent: incumbent.Name()}

	// 1. Stationary scenario: live traffic stays in the regime the
	// incumbent handles well.
	var err error
	stationary := reID(bigJobs(2002, 256, 0))
	if rep.Stationary, err = runStream(stationary, incumbent); err != nil {
		return nil, err
	}

	// 2. Drift scenario: the mix flips to the small-job flood mid-stream.
	big := bigJobs(2002, 256, 0)
	drifted := reID(append(big, smallJobs(3003, 768, big[len(big)-1].Submit)...))
	if rep.Drifted, err = runStream(drifted, incumbent); err != nil {
		return nil, err
	}

	// 3. Counterfactual: the same drifted stream with the stale incumbent
	// kept for the whole run.
	res, err := gensched.ReplayTrace(cores, drifted, clusterConfig(incumbent))
	if err != nil {
		return nil, err
	}
	rep.StaleThroughout = res.AVEbsld
	return rep, nil
}

func printReport(w io.Writer, rep *report) {
	fmt.Fprintf(w, "deployed incumbent: the paper's %s (r*n + 6.86e6*log10(s))\n", rep.Incumbent)

	fmt.Fprintf(w, "\n— stationary traffic (the trained-for regime) —\n")
	printOutcome(w, rep.Stationary)

	fmt.Fprintf(w, "\n— drifting traffic (flips to a small-job flood mid-stream) —\n")
	printOutcome(w, rep.Drifted)
	fmt.Fprintf(w, "counterfactual (stale %s throughout): AveBsld %.2f vs %.2f with the loop\n",
		rep.Incumbent, rep.StaleThroughout, rep.Drifted.Metrics.AveBsld)
}

func printOutcome(w io.Writer, o outcome) {
	for _, d := range o.Decisions {
		switch {
		case d.Skipped:
			fmt.Fprintf(w, "t=%7.1fh  round skipped: %s (window %d, drift %.2f)\n",
				d.At/3600, d.Reason, d.Window, d.Drift)
		case d.Promoted:
			best := d.Candidates[d.Best()]
			fmt.Fprintf(w, "t=%7.1fh  retrained on %d jobs (drift %.2f): PROMOTE %s\n",
				d.At/3600, d.Window, d.Drift, d.PolicyExpr)
			fmt.Fprintf(w, "           twin replay of %d jobs (window + backlog): AveBsld %.2f -> %.2f (incumbent %s)\n",
				d.ShadowJobs, d.IncumbentBsld, best.AveBsld, d.Incumbent)
		default:
			fmt.Fprintf(w, "t=%7.1fh  retrained on %d jobs (drift %.2f): keep %s (%s)\n",
				d.At/3600, d.Window, d.Drift, d.Incumbent, d.Reason)
		}
	}
	fmt.Fprintf(w, "stream done under %s: %d jobs, AveBsld %.2f, %d retrains, %d promotions\n",
		o.Policy, o.Metrics.Completed, o.Metrics.AveBsld, o.Rounds, o.Promotions)
}

func main() {
	rep, err := run()
	if err != nil {
		log.Fatal("adaptivesched: ", err)
	}
	printReport(os.Stdout, rep)
}
