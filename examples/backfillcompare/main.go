// Backfillcompare reproduces the paper's most realistic condition (§4.2.3)
// on a single workload: scheduling decisions made on inaccurate user
// estimates, with and without EASY aggressive backfilling, for every
// evaluation policy. FCFS+EASY is the classical EASY algorithm; the
// learned policies gain the least from backfilling because their initial
// order already packs the machine well.
//
// The whole comparison is one grid: 8 policies × 3 backfill modes over a
// single shared workload. Cells differing only in policy or backfill
// schedule identical jobs, so every column is a paired comparison.
//
//	go run ./examples/backfillcompare
package main

import (
	"context"
	"fmt"
	"log"

	gensched "github.com/hpcsched/gensched"
)

func main() {
	sc, err := gensched.NewScenario(
		gensched.WithCores(256),
		gensched.WithLublin(3, 1.05), // three saturated days
		gensched.WithEstimates(),     // schedule on Tsafrir user estimates
		gensched.WithSeed(2024),
	)
	if err != nil {
		log.Fatal(err)
	}
	modes := []gensched.BackfillMode{
		gensched.BackfillNone, gensched.BackfillEASY, gensched.BackfillConservative,
	}
	g, err := gensched.NewGrid(sc,
		gensched.OverPolicies(), // the paper's eight
		gensched.OverBackfills(modes...),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := (&gensched.Runner{KeepSims: true}).Run(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %d jobs over 3 days on %d cores, user estimates\n\n",
		len(res.Cells[0].Sims[0].Stats), res.Cells[0].Cores)
	fmt.Printf("%-8s %14s %14s %14s %10s\n", "policy", "no backfill", "EASY", "conservative", "backfills")

	// Cells expand policies innermost, backfills outside them: cell index
	// = bi*8 + pi. Walk one row per policy.
	nPol := len(gensched.Policies())
	for pi := 0; pi < nPol; pi++ {
		var row [3]float64
		var backfills int
		for bi := range modes {
			c := res.Cells[bi*nPol+pi]
			row[bi] = c.AVEbsld
			if c.Scenario.Backfill == gensched.BackfillEASY {
				backfills = c.Sims[0].Backfilled
			}
		}
		fmt.Printf("%-8s %14.2f %14.2f %14.2f %10d\n",
			res.Cells[pi].Scenario.Policy.Name(), row[0], row[1], row[2], backfills)
	}
	fmt.Println("\nAVEbsld, lower is better. 'backfills' counts jobs started out of order by EASY.")
}
