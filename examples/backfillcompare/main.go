// Backfillcompare reproduces the paper's most realistic condition (§4.2.3)
// on a single workload: scheduling decisions made on inaccurate user
// estimates, with and without EASY aggressive backfilling, for every
// evaluation policy. FCFS+EASY is the classical EASY algorithm; the
// learned policies gain the least from backfilling because their initial
// order already packs the machine well.
//
//	go run ./examples/backfillcompare
package main

import (
	"fmt"
	"log"

	gensched "github.com/hpcsched/gensched"
)

func main() {
	const cores = 256
	trace, err := gensched.LublinTrace(cores, 3, 1.05, 2024)
	if err != nil {
		log.Fatal(err)
	}
	// Replace the perfect estimates with realistic Tsafrir ones.
	if err := gensched.ApplyEstimates(trace.Jobs, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d jobs over 3 days on %d cores, user estimates\n\n", len(trace.Jobs), cores)
	fmt.Printf("%-8s %14s %14s %14s %10s\n", "policy", "no backfill", "EASY", "conservative", "backfills")

	for _, p := range gensched.Policies() {
		var row [3]float64
		var backfills int
		for i, mode := range []gensched.BackfillMode{
			gensched.BackfillNone, gensched.BackfillEASY, gensched.BackfillConservative,
		} {
			res, err := gensched.Simulate(cores, trace.Jobs, gensched.SimOptions{
				Policy:       p,
				UseEstimates: true,
				Backfill:     mode,
			})
			if err != nil {
				log.Fatal(err)
			}
			row[i] = res.AVEbsld
			if mode == gensched.BackfillEASY {
				backfills = res.Backfilled
			}
		}
		fmt.Printf("%-8s %14.2f %14.2f %14.2f %10d\n", p.Name(), row[0], row[1], row[2], backfills)
	}
	fmt.Println("\nAVEbsld, lower is better. 'backfills' counts jobs started out of order by EASY.")
}
