package gensched

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// gridBase is a cheap base scenario for grid tests: a small machine,
// short sequences, saturated load.
func gridBase(t *testing.T, opts ...Option) *Scenario {
	t.Helper()
	base := []Option{
		WithCores(64),
		WithLublin(0.25, 1.0),
		WithSeed(11),
	}
	sc, err := NewScenario(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestGridExpansion(t *testing.T) {
	g, err := NewGrid(gridBase(t),
		OverPolicies("FCFS", "SPT", "F1"),
		OverLoads(0.8, 1.05),
		OverSeeds(1, 2),
		OverBackfills(BackfillNone, BackfillEASY),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := g.Size(), 3*2*2*2; got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	cells := g.Cells()
	if len(cells) != g.Size() {
		t.Fatalf("expanded %d cells, want %d", len(cells), g.Size())
	}
	// Policies vary innermost; the first two cells differ only in policy.
	if cells[0].Policy.Name() != "FCFS" || cells[1].Policy.Name() != "SPT" {
		t.Errorf("innermost axis order: %s, %s", cells[0].Policy.Name(), cells[1].Policy.Name())
	}
	if cells[0].Load != cells[1].Load || cells[0].Seed != cells[1].Seed {
		t.Error("policy neighbors do not share workload coordinates")
	}
	// Every cell is fully resolved and uniquely named.
	names := make(map[string]bool)
	for _, c := range cells {
		if c.Policy == nil || c.Source == nil {
			t.Fatal("unresolved cell")
		}
		if names[c.Name] {
			t.Fatalf("duplicate cell name %q", c.Name)
		}
		names[c.Name] = true
	}
}

func TestGridDefaultsFromBase(t *testing.T) {
	g, err := NewGrid(gridBase(t, WithPolicy("F1"), WithEASY()))
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 1 {
		t.Fatalf("one-cell grid has size %d", g.Size())
	}
	c := g.Cells()[0]
	if c.Policy.Name() != "F1" || c.Backfill != BackfillEASY || c.Seed != 11 {
		t.Errorf("cell = %+v", c)
	}
}

func TestGridNeedsPolicy(t *testing.T) {
	if _, err := NewGrid(gridBase(t)); err == nil {
		t.Error("grid without any policy accepted")
	}
	if _, err := NewGrid(gridBase(t), OverPolicies("NOPE")); err == nil {
		t.Error("unknown policy name accepted")
	}
}

// TestRunnerDeterministicAcrossWorkers is the acceptance check: a
// 2-policy × 2-seed × 2-backfill grid must return bit-identical AVEbsld
// values for Workers=1 and Workers=8.
func TestRunnerDeterministicAcrossWorkers(t *testing.T) {
	mkGrid := func() *Grid {
		g, err := NewGrid(gridBase(t),
			OverPolicies("FCFS", "F1"),
			OverSeeds(1, 2),
			OverBackfills(BackfillNone, BackfillEASY),
		)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, err := (&Runner{Workers: 1}).Run(context.Background(), mkGrid())
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Runner{Workers: 8}).Run(context.Background(), mkGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != 8 || len(b.Cells) != 8 {
		t.Fatalf("got %d and %d cells, want 8", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		if ca.Scenario.Name != cb.Scenario.Name {
			t.Fatalf("cell %d ordering differs: %q vs %q", i, ca.Scenario.Name, cb.Scenario.Name)
		}
		if ca.AVEbsld != cb.AVEbsld {
			t.Errorf("cell %d (%s): AVEbsld %v (1 worker) != %v (8 workers)",
				i, ca.Scenario.Name, ca.AVEbsld, cb.AVEbsld)
		}
		for j := range ca.PerSeq {
			if ca.PerSeq[j] != cb.PerSeq[j] {
				t.Errorf("cell %d seq %d differs across worker counts", i, j)
			}
		}
	}
}

// TestRunnerDeterministicKeepSimsAcrossWorkers extends the determinism
// acceptance check to the full simulation payload: a grid spanning every
// backfill mode, run with KeepSims on, must be bit-identical between
// Workers=1 and Workers=8 down to every per-job statistic — and cells
// sharing a workload (paired policies) must schedule the exact same jobs.
func TestRunnerDeterministicKeepSimsAcrossWorkers(t *testing.T) {
	mkGrid := func() *Grid {
		g, err := NewGrid(gridBase(t, WithCheck()),
			OverPolicies("FCFS", "F1"),
			OverSeeds(1, 2),
			OverBackfills(BackfillNone, BackfillEASY, BackfillConservative),
		)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, err := (&Runner{Workers: 1, KeepSims: true}).Run(context.Background(), mkGrid())
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Runner{Workers: 8, KeepSims: true}).Run(context.Background(), mkGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != 12 || len(b.Cells) != 12 {
		t.Fatalf("got %d and %d cells, want 12", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		if ca.Scenario.Name != cb.Scenario.Name || ca.WorkloadSeed != cb.WorkloadSeed {
			t.Fatalf("cell %d identity differs across worker counts", i)
		}
		if ca.AVEbsld != cb.AVEbsld || !reflect.DeepEqual(ca.PerSeq, cb.PerSeq) {
			t.Errorf("cell %d (%s): aggregates differ across worker counts", i, ca.Scenario.Name)
		}
		if len(ca.Sims) == 0 || len(ca.Sims) != len(cb.Sims) {
			t.Fatalf("cell %d: KeepSims payload missing (%d vs %d)", i, len(ca.Sims), len(cb.Sims))
		}
		for j := range ca.Sims {
			if !reflect.DeepEqual(ca.Sims[j], cb.Sims[j]) {
				t.Errorf("cell %d seq %d: full simulation results differ across worker counts", i, j)
			}
		}
	}
	// Paired-workload reuse: cells sharing (seed axis) must have scheduled
	// the exact same job sequences, job for job, regardless of policy or
	// backfill mode.
	bySeed := make(map[uint64]*CellResult)
	for _, c := range a.Cells {
		first, ok := bySeed[c.WorkloadSeed]
		if !ok {
			bySeed[c.WorkloadSeed] = c
			continue
		}
		for j := range c.Sims {
			fs, cs := first.Sims[j].Stats, c.Sims[j].Stats
			if len(fs) != len(cs) {
				t.Fatalf("paired cells %s vs %s: sequence %d sizes differ", first.Scenario.Name, c.Scenario.Name, j)
			}
			for k := range fs {
				if fs[k].Job != cs[k].Job {
					t.Fatalf("paired cells %s vs %s: job %d differs — workload not reused",
						first.Scenario.Name, c.Scenario.Name, k)
				}
			}
		}
	}
	if len(bySeed) != 2 {
		t.Fatalf("expected 2 distinct workloads (one per seed), got %d", len(bySeed))
	}
}

// TestRunnerPairedWorkloads verifies the paired-comparison property:
// cells differing only in policy or backfill mode share the workload
// seed, while seed-axis neighbors do not.
func TestRunnerPairedWorkloads(t *testing.T) {
	g, err := NewGrid(gridBase(t),
		OverPolicies("FCFS", "F1"),
		OverSeeds(1, 2),
		OverBackfills(BackfillNone, BackfillEASY),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Runner{}).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	bySeed := make(map[uint64]map[uint64]bool) // seed axis value -> workload seeds
	for _, c := range res.Cells {
		m := bySeed[c.Scenario.Seed]
		if m == nil {
			m = make(map[uint64]bool)
			bySeed[c.Scenario.Seed] = m
		}
		m[c.WorkloadSeed] = true
	}
	if len(bySeed) != 2 {
		t.Fatalf("got %d seed groups", len(bySeed))
	}
	for seed, m := range bySeed {
		if len(m) != 1 {
			t.Errorf("seed %d: %d distinct workload seeds across policy/backfill cells, want 1", seed, len(m))
		}
	}
	// Cells 0 and 4 differ in the seed axis (2 backfills × 2 policies per
	// seed); their workloads must be independent draws.
	if res.Cells[0].WorkloadSeed == res.Cells[4].WorkloadSeed {
		t.Error("different seed-axis values share a workload seed")
	}
}

// TestRunnerGoldenVersusSimulate pins the new path to the legacy one: a
// fixed-jobs grid cell must reproduce Simulate exactly.
func TestRunnerGoldenVersusSimulate(t *testing.T) {
	trace, err := LublinTrace(64, 1, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []BackfillMode{BackfillNone, BackfillEASY} {
		legacy, err := Simulate(64, trace.Jobs, SimOptions{
			Policy:   MustPolicy("F1"),
			Backfill: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		sc, err := NewScenario(
			WithTrace(trace),
			WithPolicy("F1"),
			WithBackfill(mode),
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sc.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.PerSeq) != 1 || res.PerSeq[0] != legacy.AVEbsld {
			t.Errorf("mode %v: grid cell AVEbsld %v != legacy Simulate %v",
				mode, res.PerSeq[0], legacy.AVEbsld)
		}
	}
}

func TestRunnerContextCancellation(t *testing.T) {
	g, err := NewGrid(gridBase(t), OverPolicies("FCFS", "WFP3", "UNICEF", "SPT", "F1"), OverSeeds(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int32
	r := &Runner{Workers: 2, OnResult: func(*CellResult) {
		if done.Add(1) == 2 {
			cancel() // cancel mid-grid, after two cells completed
		}
	}}
	res, err := r.Run(ctx, g)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled run returned partial results")
	}
}

func TestRunnerStreamsEveryCell(t *testing.T) {
	g, err := NewGrid(gridBase(t), OverPolicies("FCFS", "F1"), OverBackfills(BackfillNone, BackfillEASY))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	r := &Runner{OnResult: func(c *CellResult) { seen[c.Index] = true }}
	res, err := r.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.Cells) {
		t.Errorf("streamed %d cells, want %d", len(seen), len(res.Cells))
	}
	for i, c := range res.Cells {
		if c.Index != i {
			t.Errorf("cell %d has index %d", i, c.Index)
		}
		if !seen[i] {
			t.Errorf("cell %d never streamed", i)
		}
	}
}

func TestWriteCSVUnequalSequenceCounts(t *testing.T) {
	job := func(id int) Job { return Job{ID: id, Submit: 0, Runtime: 10, Estimate: 10, Cores: 1} }
	short := FixedWindows("short", 4, [][]Job{{job(1)}})
	long := FixedWindows("long", 4, [][]Job{{job(1)}, {job(2)}, {job(3)}})
	sc, err := NewScenario(WithPolicy("FCFS"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGrid(sc, OverSources(short, long))
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Runner{}).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d CSV lines:\n%s", len(lines), buf.String())
	}
	// Header must span the longest cell and every row must have the
	// same number of fields.
	want := strings.Count(lines[0], ",")
	if want != 3 {
		t.Errorf("header has %d sequence columns, want 3: %q", want, lines[0])
	}
	for _, line := range lines[1:] {
		if got := strings.Count(line, ","); got != want {
			t.Errorf("ragged CSV row %q: %d fields, header has %d", line, got, want)
		}
	}
}

func TestGridResultFormat(t *testing.T) {
	g, err := NewGrid(gridBase(t), OverPolicies("FCFS", "F1"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Runner{}).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format()
	for _, want := range []string{"AVEbsld", "FCFS", "F1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}
