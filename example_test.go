package gensched_test

import (
	"fmt"

	gensched "github.com/hpcsched/gensched"
)

// ExamplePolicies lists the paper's eight evaluation policies in the order
// the figures present them.
func ExamplePolicies() {
	for _, p := range gensched.Policies() {
		fmt.Println(p.Name())
	}
	// Output:
	// FCFS
	// WFP3
	// UNICEF
	// SPT
	// F4
	// F3
	// F2
	// F1
}

// ExampleSimulate schedules a tiny hand-built workload and prints each
// job's start time: under FCFS the 4-core job blocks the queue, so the
// 1-core job behind it waits even though cores are free.
func ExampleSimulate() {
	jobs := []gensched.Job{
		{ID: 1, Submit: 0, Runtime: 100, Estimate: 100, Cores: 2},
		{ID: 2, Submit: 10, Runtime: 50, Estimate: 50, Cores: 4},
		{ID: 3, Submit: 20, Runtime: 30, Estimate: 30, Cores: 1},
	}
	res, err := gensched.Simulate(4, jobs, gensched.SimOptions{
		Policy: gensched.MustPolicy("FCFS"),
	})
	if err != nil {
		panic(err)
	}
	for _, s := range res.Stats {
		fmt.Printf("job %d starts at %.0f\n", s.Job.ID, s.Start)
	}
	// Output:
	// job 1 starts at 0
	// job 2 starts at 100
	// job 3 starts at 150
}

// ExampleSimulate_backfilling enables EASY aggressive backfilling on the
// same workload: job 3 now jumps ahead because it finishes before the
// blocked head's reservation.
func ExampleSimulate_backfilling() {
	jobs := []gensched.Job{
		{ID: 1, Submit: 0, Runtime: 100, Estimate: 100, Cores: 2},
		{ID: 2, Submit: 10, Runtime: 50, Estimate: 50, Cores: 4},
		{ID: 3, Submit: 20, Runtime: 30, Estimate: 30, Cores: 1},
	}
	res, err := gensched.Simulate(4, jobs, gensched.SimOptions{
		Policy:   gensched.MustPolicy("FCFS"),
		Backfill: gensched.BackfillEASY,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("job 3 starts at %.0f (backfilled: %v)\n", res.Stats[2].Start, res.Stats[2].Backfilled)
	fmt.Printf("head job 2 still starts at %.0f\n", res.Stats[1].Start)
	// Output:
	// job 3 starts at 20 (backfilled: true)
	// head job 2 still starts at 100
}

// ExampleMustPolicy_f1 shows the learned F1 policy scoring two waiting
// tasks: the earlier-submitted task wins even when it is much larger,
// because of the dominant log10(s) term the paper highlights.
func ExampleMustPolicy_f1() {
	f1 := gensched.MustPolicy("F1")
	early := gensched.JobView{Runtime: 27000, Cores: 256, Submit: 100}
	late := gensched.JobView{Runtime: 10, Cores: 1, Submit: 10000}
	fmt.Println(f1.Score(early) < f1.Score(late))
	// Output:
	// true
}
