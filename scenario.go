package gensched

import (
	"context"
	"fmt"
	"strings"

	"github.com/hpcsched/gensched/internal/experiments"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/traces"
	"github.com/hpcsched/gensched/internal/workload"
)

// Scenario is a declarative description of one simulation experiment: a
// platform, a workload source, the scheduling conditions, and the
// experiment dimensions (sequence count and length). Build one with
// NewScenario and functional options:
//
//	sc, err := gensched.NewScenario(
//		gensched.WithCores(256),
//		gensched.WithLublin(15, 1.0),
//		gensched.WithPolicy("F1"),
//		gensched.WithEASY(),
//	)
//
// A Scenario is a value: grids copy it per cell and override single
// fields, so a fully-specified cell is always inspectable.
type Scenario struct {
	// Name labels the scenario in results and reports.
	Name string
	// Cores is the machine size. Workload sources with an intrinsic
	// platform (WithPlatform, WithTrace) supply their own size unless a
	// later WithCores overrides it explicitly.
	Cores int
	// Source produces the job sequences. Defaults to the Lublin model.
	Source WorkloadSource
	// Policy orders the waiting queue.
	Policy Policy
	// Backfill selects none, EASY (aggressive) or conservative.
	Backfill BackfillMode
	// UseEstimates makes scheduling decisions see user estimates instead
	// of actual runtimes (execution always takes the actual runtime).
	UseEstimates bool
	// Tau is the bounded-slowdown constant; 0 means the paper's 10 s.
	Tau float64
	// KillAtEstimate truncates execution at the user estimate.
	KillAtEstimate bool
	// Check enables runtime invariant checking in every simulation of the
	// scenario (sim.Options.Check): cores never oversubscribed, no start
	// before submission, the EASY head never delayed, conservative
	// reservations honored, plus a post-run schedule audit against the
	// reference checker. A violation fails the run with a descriptive
	// error. Costs a small constant factor; intended for engine
	// development, CI and debugging rather than large production grids.
	Check bool
	// Load is the target offered load for generated workloads; 0 keeps
	// the model's natural load.
	Load float64
	// Days is the length of one sequence, in days.
	Days float64
	// Sequences is the number of disjoint sequences scheduled
	// independently (the paper's ten fifteen-day windows).
	Sequences int
	// Seed is the root of all randomness. Grid cells derive sub-seeds
	// from it with SplitSeed, so any worker count reproduces any cell.
	Seed uint64

	// nameSet and coresSet record that WithName / WithCores were given
	// explicitly, so grids know whether a source's intrinsic platform
	// size or generated cell label may fill the field instead.
	nameSet  bool
	coresSet bool
}

// Option configures a Scenario under construction.
type Option func(*Scenario) error

// NewScenario builds a Scenario from the defaults (256 cores, one 1-day
// Lublin sequence at natural load, seed 1, no backfilling) and the given
// options. The policy may be left unset when the scenario seeds a Grid
// with a policy axis.
func NewScenario(opts ...Option) (*Scenario, error) {
	sc := &Scenario{Cores: 256, Days: 1, Sequences: 1, Seed: 1}
	for _, opt := range opts {
		if err := opt(sc); err != nil {
			return nil, err
		}
	}
	if sc.Source == nil {
		sc.Source = Lublin()
	}
	if sc.Name == "" {
		sc.Name = sc.Source.Describe()
	}
	if sc.Sequences <= 0 {
		return nil, fmt.Errorf("gensched: scenario needs at least one sequence, got %d", sc.Sequences)
	}
	if sc.Cores <= 0 && sc.Source.DefaultCores() <= 0 {
		return nil, fmt.Errorf("gensched: scenario needs a positive core count")
	}
	if err := sc.validateJobSizes(); err != nil {
		return nil, err
	}
	return sc, nil
}

// boundedSource lets fixed workload sources (traces, job lists, pre-built
// windows) expose their largest job so scenario construction can reject
// unschedulable workloads up front, with a clear error, instead of
// surfacing sim.Run's rejection from deep inside a grid run. Generated
// sources (Lublin, platforms) size jobs to the machine by construction.
type boundedSource interface {
	maxJobCores() (cores, jobID int)
}

// validateJobSizes rejects scenarios whose fixed workload contains a job
// larger than the machine it will be scheduled on — the condition that
// would otherwise leave the queue head unschedulable forever (the
// "unreachable" branch in the EASY reservation scan).
func (sc *Scenario) validateJobSizes() error {
	return validateSourceJobs(sc.Source, cellCores(sc, sc.Source), sc.Name)
}

// validateSourceJobs checks a fixed source's largest job against the
// machine size; NewScenario and NewGrid both call it so the error
// surfaces at construction, not from deep inside a grid run.
func validateSourceJobs(src WorkloadSource, cores int, name string) error {
	b, ok := src.(boundedSource)
	if !ok || cores <= 0 {
		return nil
	}
	if maxCores, id := b.maxJobCores(); maxCores > cores {
		return fmt.Errorf("gensched: scenario %q: job %d requires %d cores but the platform has %d; "+
			"raise WithCores, repair the trace (Trace.Repair), or drop the job", name, id, maxCores, cores)
	}
	return nil
}

// MustScenario is NewScenario that panics on error; convenient in
// examples and tests.
func MustScenario(opts ...Option) *Scenario {
	sc, err := NewScenario(opts...)
	if err != nil {
		panic(err)
	}
	return sc
}

// WithName labels the scenario; grid cells keep the label as the leading
// segment of their generated cell names.
func WithName(name string) Option {
	return func(sc *Scenario) error { sc.Name = name; sc.nameSet = true; return nil }
}

// WithCores sets the machine size explicitly, overriding a workload
// source's intrinsic size. Order matters: WithTrace and WithPlatform
// reset the machine size to the source's own, so put WithCores after
// them to override.
func WithCores(cores int) Option {
	return func(sc *Scenario) error {
		if cores <= 0 {
			return fmt.Errorf("gensched: WithCores(%d): need a positive core count", cores)
		}
		sc.Cores = cores
		sc.coresSet = true
		return nil
	}
}

// WithLublin selects the Lublin–Feitelson workload model: sequences of
// the given length in days, arrival-calibrated to the given offered load
// (0 keeps the natural load). Tsafrir user estimates are attached.
func WithLublin(days, load float64) Option {
	return func(sc *Scenario) error {
		if days <= 0 {
			return fmt.Errorf("gensched: WithLublin: need a positive sequence length, got %v days", days)
		}
		sc.Source = Lublin()
		sc.Days = days
		sc.Load = load
		return nil
	}
}

// WithPlatform selects one of the paper's Table 5 platform stand-ins by
// name: "curie", "intrepid", "sdsc-blue" or "ctc-sp2" (case-insensitive,
// the short aliases "sdsc" and "ctc" work too). The platform fixes the
// core count and target utilization.
func WithPlatform(name string) Option {
	return func(sc *Scenario) error {
		src, err := Platform(name)
		if err != nil {
			return err
		}
		sc.Source = src
		sc.Cores, sc.coresSet = 0, false // the platform's own size wins
		return nil
	}
}

// WithTrace schedules a fixed trace (e.g. parsed from SWF) instead of a
// generated workload. With one sequence and zero Days the trace is
// scheduled as-is; set WithWindows to slice it.
func WithTrace(t *Trace) Option {
	return func(sc *Scenario) error {
		if t == nil || len(t.Jobs) == 0 {
			return fmt.Errorf("gensched: WithTrace: empty trace")
		}
		sc.Source = FixedTrace(t)
		sc.Cores, sc.coresSet = 0, false // the trace's own size wins
		sc.Days = 0                      // as-is unless WithWindows slices it
		return nil
	}
}

// WithJobs schedules a fixed job list as one sequence.
func WithJobs(name string, cores int, jobs []Job) Option {
	return func(sc *Scenario) error {
		if len(jobs) == 0 {
			return fmt.Errorf("gensched: WithJobs: no jobs")
		}
		if cores <= 0 {
			return fmt.Errorf("gensched: WithJobs: need a positive core count, got %d", cores)
		}
		sc.Source = FixedTrace(&Trace{Name: name, MaxProcs: cores, Jobs: jobs})
		sc.Cores, sc.coresSet = 0, false
		sc.Days = 0
		return nil
	}
}

// WithWindows cuts the workload into count disjoint sequences of the
// given length in days.
func WithWindows(days float64, count int) Option {
	return func(sc *Scenario) error {
		if days <= 0 || count <= 0 {
			return fmt.Errorf("gensched: WithWindows(%v, %d): need positive length and count", days, count)
		}
		sc.Days = days
		sc.Sequences = count
		return nil
	}
}

// WithSequences sets the number of disjoint sequences, keeping the
// sequence length.
func WithSequences(n int) Option {
	return func(sc *Scenario) error {
		if n <= 0 {
			return fmt.Errorf("gensched: WithSequences(%d): need a positive count", n)
		}
		sc.Sequences = n
		return nil
	}
}

// WithPolicy selects the scheduling policy by report name (FCFS, WFP3,
// UNICEF, SPT, F1–F4, ... — anything PolicyByName accepts).
func WithPolicy(name string) Option {
	return func(sc *Scenario) error {
		p, err := sched.ByName(name)
		if err != nil {
			return err
		}
		sc.Policy = p
		return nil
	}
}

// WithCustomPolicy installs a policy value, e.g. one learned by
// FitPolicies or parsed by ParsePolicy.
func WithCustomPolicy(p Policy) Option {
	return func(sc *Scenario) error {
		if p == nil {
			return fmt.Errorf("gensched: WithCustomPolicy(nil)")
		}
		sc.Policy = p
		return nil
	}
}

// WithEASY enables aggressive (EASY) backfilling.
func WithEASY() Option {
	return func(sc *Scenario) error { sc.Backfill = BackfillEASY; return nil }
}

// WithConservative enables conservative backfilling.
func WithConservative() Option {
	return func(sc *Scenario) error { sc.Backfill = BackfillConservative; return nil }
}

// WithBackfill sets the backfill mode explicitly.
func WithBackfill(mode BackfillMode) Option {
	return func(sc *Scenario) error { sc.Backfill = mode; return nil }
}

// WithEstimates makes scheduling decisions use the Tsafrir user
// estimates instead of actual runtimes.
func WithEstimates() Option {
	return func(sc *Scenario) error { sc.UseEstimates = true; return nil }
}

// WithTau sets the bounded-slowdown constant (Eq. 1); the default is the
// paper's 10 seconds.
func WithTau(tau float64) Option {
	return func(sc *Scenario) error {
		if tau <= 0 {
			return fmt.Errorf("gensched: WithTau(%v): need a positive constant", tau)
		}
		sc.Tau = tau
		return nil
	}
}

// WithKillAtEstimate truncates execution at the user estimate, the way
// production resource managers enforce wallclock requests.
func WithKillAtEstimate() Option {
	return func(sc *Scenario) error { sc.KillAtEstimate = true; return nil }
}

// WithCheck turns on runtime invariant checking in every simulation of
// the scenario: the engine validates its own scheduling decisions
// (oversubscription, start-before-submit, queue order, the EASY no-delay
// guarantee, conservative reservation feasibility) and audits the final
// schedule, failing the run on the first violation.
func WithCheck() Option {
	return func(sc *Scenario) error { sc.Check = true; return nil }
}

// WithLoad sets the target offered load for generated workloads.
func WithLoad(load float64) Option {
	return func(sc *Scenario) error {
		if load < 0 {
			return fmt.Errorf("gensched: WithLoad(%v): need a non-negative load", load)
		}
		sc.Load = load
		return nil
	}
}

// WithSeed sets the root seed.
func WithSeed(seed uint64) Option {
	return func(sc *Scenario) error { sc.Seed = seed; return nil }
}

// Run executes the scenario on its own (a one-cell grid) and returns the
// cell result. Workers and cancellation come from the Runner zero value;
// use a Runner directly for more control.
func (sc *Scenario) Run(ctx context.Context) (*CellResult, error) {
	g, err := NewGrid(sc)
	if err != nil {
		return nil, err
	}
	res, err := (&Runner{}).Run(ctx, g)
	if err != nil {
		return nil, err
	}
	return res.Cells[0], nil
}

// Workload is a materialized workload: the job sequences one or more
// grid cells schedule.
type Workload struct {
	Name    string
	Cores   int
	Windows [][]Job
}

// WorkloadRequest carries everything a WorkloadSource needs to build a
// workload deterministically.
type WorkloadRequest struct {
	Cores     int     // requested machine size (0 = source default)
	Days      float64 // sequence length in days (0 = whole trace as one)
	Sequences int     // number of disjoint sequences
	Load      float64 // target offered load (0 = natural)
	Seed      uint64  // fully determines the workload
}

// WorkloadSource produces workloads for scenario cells. Implementations
// must be deterministic in the request: equal requests yield equal
// workloads regardless of worker count or call order.
type WorkloadSource interface {
	// Describe names the source for results and reports.
	Describe() string
	// DefaultCores is the source's intrinsic machine size, or 0 when the
	// scenario must supply one.
	DefaultCores() int
	// Build materializes the workload.
	Build(req WorkloadRequest) (*Workload, error)
}

// Lublin returns the Lublin–Feitelson model workload source: sequences
// drawn from the generator, load-calibrated, with Tsafrir user estimates
// attached. The scenario supplies the machine size.
func Lublin() WorkloadSource { return lublinSource{} }

type lublinSource struct{}

func (lublinSource) Describe() string  { return "lublin" }
func (lublinSource) DefaultCores() int { return 0 }

func (lublinSource) Build(req WorkloadRequest) (*Workload, error) {
	if req.Cores <= 0 {
		return nil, fmt.Errorf("gensched: the Lublin source needs a machine size (WithCores)")
	}
	cfg := experiments.Config{
		Seed:       req.Seed,
		Sequences:  req.Sequences,
		WindowDays: req.Days,
		ModelLoad:  req.Load,
	}
	windows, err := experiments.ModelWindows(cfg, req.Cores)
	if err != nil {
		return nil, err
	}
	return &Workload{
		Name:    fmt.Sprintf("lublin_%d", req.Cores),
		Cores:   req.Cores,
		Windows: windows,
	}, nil
}

// Platform returns the workload source for one of the paper's Table 5
// platform stand-ins, resolved by name (case-insensitive; "curie",
// "intrepid", "sdsc-blue"/"sdsc", "ctc-sp2"/"ctc").
func Platform(name string) (WorkloadSource, error) {
	switch strings.ToLower(name) {
	case "curie":
		return platformSource{traces.Curie}, nil
	case "intrepid":
		return platformSource{traces.Intrepid}, nil
	case "sdsc-blue", "sdsc":
		return platformSource{traces.SDSCBlue}, nil
	case "ctc-sp2", "ctc":
		return platformSource{traces.CTCSP2}, nil
	}
	return nil, fmt.Errorf("gensched: unknown platform %q (want curie, intrepid, sdsc-blue or ctc-sp2)", name)
}

// PlatformNames lists the Table 5 platform stand-ins in the paper's
// order, in the form Platform accepts.
func PlatformNames() []string {
	return []string{"curie", "intrepid", "sdsc-blue", "ctc-sp2"}
}

type platformSource struct {
	spec traces.PlatformSpec
}

func (p platformSource) Describe() string  { return p.spec.Name }
func (p platformSource) DefaultCores() int { return p.spec.Cores }

func (p platformSource) Build(req WorkloadRequest) (*Workload, error) {
	cfg := experiments.Config{
		Seed:       req.Seed,
		Sequences:  req.Sequences,
		WindowDays: req.Days,
	}
	windows, err := experiments.TraceWindows(cfg, p.spec)
	if err != nil {
		return nil, err
	}
	return &Workload{Name: p.spec.Name, Cores: p.spec.Cores, Windows: windows}, nil
}

// FixedWindows returns a source that schedules pre-built job sequences
// exactly as given — the bridge for callers that construct windows
// themselves (suites that share one workload across several conditions).
func FixedWindows(name string, cores int, windows [][]Job) WorkloadSource {
	return windowsSource{name: name, cores: cores, windows: windows}
}

type windowsSource struct {
	name    string
	cores   int
	windows [][]Job
}

func (s windowsSource) Describe() string  { return s.name }
func (s windowsSource) DefaultCores() int { return s.cores }

func (s windowsSource) Build(req WorkloadRequest) (*Workload, error) {
	if len(s.windows) == 0 {
		return nil, fmt.Errorf("gensched: fixed-window source %q has no sequences", s.name)
	}
	// An explicit machine size overrides the source's intrinsic one, the
	// same contract traceSource honors — and the size the build-time
	// job-size validation (cellCores) assumes the cell will run on.
	cores := s.cores
	if req.Cores > 0 {
		cores = req.Cores
	}
	return &Workload{Name: s.name, Cores: cores, Windows: s.windows}, nil
}

func (s windowsSource) maxJobCores() (cores, jobID int) {
	for _, w := range s.windows {
		for _, j := range w {
			if j.Cores > cores {
				cores, jobID = j.Cores, j.ID
			}
		}
	}
	return cores, jobID
}

// FixedTrace returns a source that replays an existing trace. With
// Days = 0 and one sequence the jobs are scheduled exactly as given —
// the legacy Simulate path; otherwise the trace is cut into rebased
// disjoint windows like SliceWindows.
func FixedTrace(t *Trace) WorkloadSource { return traceSource{t} }

type traceSource struct {
	trace *Trace
}

func (s traceSource) Describe() string  { return s.trace.Name }
func (s traceSource) DefaultCores() int { return s.trace.MaxProcs }

func (s traceSource) maxJobCores() (cores, jobID int) {
	for _, j := range s.trace.Jobs {
		if j.Cores > cores {
			cores, jobID = j.Cores, j.ID
		}
	}
	return cores, jobID
}

func (s traceSource) Build(req WorkloadRequest) (*Workload, error) {
	cores := s.trace.MaxProcs
	if req.Cores > 0 {
		cores = req.Cores
	}
	w := &Workload{Name: s.trace.Name, Cores: cores}
	if req.Days <= 0 && req.Sequences <= 1 {
		w.Windows = [][]Job{s.trace.Jobs}
		return w, nil
	}
	days := req.Days
	if days <= 0 {
		days = s.trace.Duration() / 86400 / float64(req.Sequences)
	}
	windows, err := workload.Windows(s.trace, days*86400, req.Sequences, 1)
	if err != nil {
		return nil, err
	}
	w.Windows = windows
	return w, nil
}
