// Command tracegen emits synthetic workload traces in Standard Workload
// Format: either a raw Lublin–Feitelson stream for an arbitrary machine or
// one of the calibrated platform stand-ins from the paper's Table 5
// (curie, intrepid, sdsc-blue, ctc-sp2).
//
// Usage:
//
//	tracegen -cores 256 -days 30 -load 1.05 -seed 1 -out lublin_256.swf
//	tracegen -platform curie -days 45 -out curie.swf
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/hpcsched/gensched/internal/lublin"
	"github.com/hpcsched/gensched/internal/traces"
	"github.com/hpcsched/gensched/internal/tsafrir"
	"github.com/hpcsched/gensched/internal/workload"
)

func main() {
	var (
		platform  = flag.String("platform", "", "platform stand-in: curie | intrepid | sdsc-blue | ctc-sp2 (empty = raw Lublin)")
		cores     = flag.Int("cores", 256, "machine size for raw Lublin traces")
		days      = flag.Float64("days", 30, "trace duration in days")
		load      = flag.Float64("load", 0, "target offered load for raw Lublin traces (0 = natural)")
		seed      = flag.Uint64("seed", 1, "random seed")
		estimates = flag.Bool("estimates", true, "attach Tsafrir user estimates")
		out       = flag.String("out", "", "output file (empty = stdout)")
	)
	flag.Parse()
	if err := run(*platform, *cores, *days, *load, *seed, *estimates, *out); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(platform string, cores int, days, load float64, seed uint64, estimates bool, out string) error {
	var trace *workload.Trace
	var err error
	if platform != "" {
		spec, err2 := platformSpec(platform)
		if err2 != nil {
			return err2
		}
		trace, err = traces.Generate(spec, days, seed)
	} else {
		trace, err = rawLublin(cores, days, load, seed, estimates)
	}
	if err != nil {
		return err
	}
	w := os.Stdout
	var f *os.File
	if out != "" {
		f, err = os.Create(out)
		if err != nil {
			return err
		}
		w = f
	}
	if err := workload.WriteSWF(w, trace); err != nil {
		if f != nil {
			_ = f.Close() // the write error is the one worth reporting
		}
		return err
	}
	if f != nil {
		// A close error on the written trace is data loss, not noise.
		if err := f.Close(); err != nil {
			return err
		}
	}
	st := trace.ComputeStats()
	fmt.Fprintf(os.Stderr, "tracegen: %d jobs, %.1f days, util %.1f%%, mean size %.1f cores\n",
		st.Jobs, st.DurationSec/86400, 100*st.Utilization, st.MeanCores)
	return nil
}

func platformSpec(name string) (traces.PlatformSpec, error) {
	switch strings.ToLower(name) {
	case "curie":
		return traces.Curie, nil
	case "intrepid":
		return traces.Intrepid, nil
	case "sdsc-blue", "sdsc":
		return traces.SDSCBlue, nil
	case "ctc-sp2", "ctc":
		return traces.CTCSP2, nil
	}
	return traces.PlatformSpec{}, fmt.Errorf("unknown platform %q", name)
}

func rawLublin(cores int, days, load float64, seed uint64, estimates bool) (*workload.Trace, error) {
	gen, err := lublin.NewGenerator(lublin.DefaultParams(cores), cores, seed)
	if err != nil {
		return nil, err
	}
	jobs := gen.Until(days * 24 * 3600)
	if load > 0 {
		lublin.CalibrateLoad(jobs, cores, load)
	}
	if estimates {
		if err := tsafrir.Apply(tsafrir.Default(), jobs, seed+1); err != nil {
			return nil, err
		}
	}
	return &workload.Trace{Name: fmt.Sprintf("lublin_%d", cores), MaxProcs: cores, Jobs: jobs}, nil
}
