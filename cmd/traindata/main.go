// Command traindata is workflow 1 of the paper's artifact
// (training-data-generator): it runs the simulation scheme of §3.2 —
// tuples of task sets (S, Q), balanced permutation trials, Eq. 3 scores —
// and writes the resulting score(r, n, s) distribution as CSV in the
// artifact's format (runtime,#processors,submit time,score).
//
// The default path goes through the public gensched facade (the same
// engine the Scenario/Runner API fans out on); campaign mode keeps the
// artifact's resumable per-tuple file layout.
//
// Usage:
//
//	traindata -tuples 64 -trials 262144 -out score-distribution.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	gensched "github.com/hpcsched/gensched"
	"github.com/hpcsched/gensched/internal/lublin"
	"github.com/hpcsched/gensched/internal/mlfit"
	"github.com/hpcsched/gensched/internal/profiling"
	"github.com/hpcsched/gensched/internal/trainer"
)

func main() {
	var (
		tuples     = flag.Int("tuples", 16, "number of (S,Q) tuples to score")
		trials     = flag.Int("trials", 8192, "permutation trials per tuple (paper: 262144)")
		ssize      = flag.Int("s", 16, "|S|: initial resource-state tasks per tuple")
		qsize      = flag.Int("q", 32, "|Q|: measured tasks per tuple")
		cores      = flag.Int("cores", 256, "machine size")
		seed       = flag.Uint64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		out        = flag.String("out", "score-distribution.csv", "output CSV (empty = stdout)")
		dir        = flag.String("dir", "", "campaign mode: write per-tuple files under this directory (artifact layout)")
		from       = flag.Int("from", 0, "campaign mode: first tuple index")
		gather     = flag.Bool("gather", false, "campaign mode: join <dir>/training-data/*.csv into -out and exit")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on successful exit")
	)
	flag.Parse()
	stopProfiles, perr := profiling.Start("traindata", *cpuprofile, *memprofile)
	if perr != nil {
		fmt.Fprintln(os.Stderr, "traindata:", perr)
		os.Exit(1)
	}
	defer stopProfiles()
	start := time.Now()

	var samples []mlfit.Sample
	var err error
	switch {
	case *dir != "" && *gather:
		samples, err = trainer.Gather(*dir)
	case *dir != "":
		spec := trainer.TupleSpec{
			SSize: *ssize, QSize: *qsize, Cores: *cores,
			Params: lublin.DefaultParams(*cores),
		}
		c := trainer.Campaign{
			Dir: *dir, Spec: spec,
			Trials: trainer.TrialConfig{Trials: *trials, Workers: *workers},
			Seed:   *seed,
		}
		if err := c.Run(*from, *tuples); err != nil {
			fmt.Fprintln(os.Stderr, "traindata:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "traindata: campaign wrote tuples [%d,%d) under %s in %v\n",
			*from, *from+*tuples, *dir, time.Since(start).Round(time.Millisecond))
		return
	default:
		samples, err = gensched.GenerateScoreDistribution(gensched.TrainingConfig{
			Tuples: *tuples, Trials: *trials, Seed: *seed,
			SSize: *ssize, QSize: *qsize, Cores: *cores, Workers: *workers,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "traindata:", err)
		os.Exit(1)
	}
	w := os.Stdout
	var f *os.File
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "traindata:", err)
			os.Exit(1)
		}
		w = f
	}
	if err := trainer.WriteScoreCSV(w, samples); err != nil {
		fmt.Fprintln(os.Stderr, "traindata:", err)
		os.Exit(1)
	}
	if f != nil {
		// os.Exit skips deferred closes, and an unchecked close on the
		// written CSV is silent data loss — close explicitly.
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "traindata:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "traindata: %d samples (%d tuples x |Q|=%d, %d trials each) in %v\n",
		len(samples), *tuples, *qsize, *trials, time.Since(start).Round(time.Millisecond))
}
