package main

import (
	"net/http"
	"strings"
	"testing"
)

// TestScheddStatusCodes pins the 400/409 classification: requests the
// client got wrong (shape, syntax, unknown names) are 400 Bad Request;
// well-formed requests the scheduler state refuses are 409 Conflict.
func TestScheddStatusCodes(t *testing.T) {
	ts := newTestServer(t, 8)
	// Seed: job 1 active, clock at 10.
	if code, _ := post(t, ts, "/v1/submit", `{"id":1,"cores":1,"runtime":100,"now":10}`); code != 200 {
		t.Fatalf("seed submit: code=%d", code)
	}
	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		// Validation failures: the request itself is wrong.
		{"bad json", "/v1/submit", `{not json`, http.StatusBadRequest},
		{"nonpositive cores", "/v1/submit", `{"id":9,"cores":0,"runtime":10}`, http.StatusBadRequest},
		{"negative cores", "/v1/submit", `{"id":9,"cores":-2,"runtime":10}`, http.StatusBadRequest},
		{"nonpositive runtime", "/v1/submit", `{"id":9,"cores":1,"runtime":0}`, http.StatusBadRequest},
		{"oversized job", "/v1/submit", `{"id":9,"cores":64,"runtime":10}`, http.StatusBadRequest},
		{"negative estimate", "/v1/submit", `{"id":9,"cores":1,"runtime":10,"estimate":-1}`, http.StatusBadRequest},
		{"unknown policy name", "/v1/policy", `{"name":"NOPE?!"}`, http.StatusBadRequest},
		{"unparseable expr", "/v1/policy", `{"name":"L1","expr":"log10(("}`, http.StatusBadRequest},
		{"adapt without interval", "/v1/adapt", `{"action":"start"}`, http.StatusBadRequest},
		{"adapt sizing over cap", "/v1/adapt", `{"action":"start","interval":10,"tuples":100000}`, http.StatusBadRequest},
		{"adapt unknown action", "/v1/adapt", `{"action":"reverse"}`, http.StatusBadRequest},
		// State conflicts: a well-formed request the history refuses.
		{"duplicate id", "/v1/submit", `{"id":1,"cores":1,"runtime":10,"now":11}`, http.StatusConflict},
		{"submit after the clock", "/v1/submit", `{"id":9,"cores":1,"runtime":10,"submit":50,"now":20}`, http.StatusConflict},
		{"unknown completion", "/v1/complete", `{"id":77,"now":12}`, http.StatusConflict},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, r := post(t, ts, tc.path, tc.body)
			if code != tc.want {
				t.Errorf("%s %s: code=%d, want %d (reply %+v)", tc.path, tc.body, code, tc.want, r)
			}
			if r.Error == "" {
				t.Errorf("%s %s: error body missing", tc.path, tc.body)
			}
		})
	}
}

// TestScheddExplicitZeroNow pins that "now":0 means instant zero, not
// "field omitted": t=0 is a real instant on the logical clock.
func TestScheddExplicitZeroNow(t *testing.T) {
	ts := newTestServer(t, 4)
	code, r := post(t, ts, "/v1/submit", `{"id":1,"cores":1,"runtime":10,"now":0}`)
	if code != 200 || r.Now != 0 {
		t.Fatalf("submit at t=0: code=%d reply=%+v", code, r)
	}
	if len(r.Started) != 1 || r.Started[0].Time != 0 || r.Started[0].Wait != 0 {
		t.Fatalf("job at t=0 should start at t=0 with zero wait: %+v", r.Started)
	}
	// With the clock pinned at 0, a job claiming submission at t=5 is in
	// the future — an explicit now=0 must NOT silently re-resolve to the
	// submit time the way an omitted field does.
	if code, r := post(t, ts, "/v1/submit", `{"id":2,"cores":1,"runtime":10,"submit":5,"now":0}`); code != http.StatusConflict {
		t.Fatalf("future submit under explicit now=0: code=%d reply=%+v", code, r)
	}
	// Omitted now still resolves to the submit time.
	if code, r := post(t, ts, "/v1/submit", `{"id":3,"cores":1,"runtime":10,"submit":5}`); code != 200 || r.Now != 5 {
		t.Fatalf("omitted now: code=%d reply=%+v", code, r)
	}
}

// TestScheddHealthzMethods pins /healthz to GET and HEAD.
func TestScheddHealthzMethods(t *testing.T) {
	ts := newTestServer(t, 4)
	for _, tc := range []struct {
		method string
		want   int
	}{
		{http.MethodGet, http.StatusOK},
		{http.MethodHead, http.StatusOK},
		{http.MethodPost, http.StatusMethodNotAllowed},
		{http.MethodDelete, http.StatusMethodNotAllowed},
		{http.MethodPut, http.StatusMethodNotAllowed},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+"/healthz", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s /healthz: code=%d, want %d", tc.method, resp.StatusCode, tc.want)
		}
	}
}
