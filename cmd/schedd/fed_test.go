package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/hpcsched/gensched/internal/durable"
	"github.com/hpcsched/gensched/internal/fed"
	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/workload"
)

func newFedTestServer(t *testing.T, shards, shardCores, traceBuf int) (*fedServer, *httptest.Server) {
	t.Helper()
	fd, err := fed.New(fed.Config{
		Shards: shards, ShardCores: shardCores, Seed: 1, TraceBuf: traceBuf,
		Opt: online.Options{Policy: sched.FCFS(), Backfill: sim.BackfillEASY, Check: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := newFedServer(fd, false)
	ts := httptest.NewServer(fs.handler())
	t.Cleanup(ts.Close)
	return fs, ts
}

func TestFedScheddSubmitStatusMetrics(t *testing.T) {
	_, ts := newFedTestServer(t, 4, 8, 0)
	for i := 1; i <= 12; i++ {
		body := fmt.Sprintf(`{"id":%d,"cores":2,"runtime":50,"estimate":50,"now":%d}`, i, i)
		code, r := post(t, ts, "/v1/submit", body)
		if code != 200 {
			t.Fatalf("submit %d: code=%d reply=%+v", i, code, r)
		}
	}
	var st struct {
		Shards    int `json:"shards"`
		Cores     int `json:"cores"`
		Submitted int `json:"submitted"`
		Running   int `json:"running"`
		Queued    int `json:"queued"`
		PerShard  []struct {
			Submitted int `json:"submitted"`
		} `json:"per_shard"`
	}
	get(t, ts, "/v1/status", &st)
	if st.Shards != 4 || st.Cores != 32 || st.Submitted != 12 {
		t.Fatalf("status: %+v", st)
	}
	if len(st.PerShard) != 4 {
		t.Fatalf("per_shard has %d entries, want 4", len(st.PerShard))
	}
	sum := 0
	for _, p := range st.PerShard {
		sum += p.Submitted
	}
	if sum != 12 {
		t.Fatalf("per-shard submitted sums to %d, want 12", sum)
	}
	if st.Running+st.Queued != 12 {
		t.Fatalf("running %d + queued %d != 12", st.Running, st.Queued)
	}
	// Complete one job and read the merged metrics.
	if code, r := post(t, ts, "/v1/complete", `{"id":1,"now":100}`); code != 200 {
		t.Fatalf("complete: code=%d reply=%+v", code, r)
	}
	var m struct {
		Completed int `json:"completed"`
		PerShard  []struct {
			Completed int `json:"completed"`
		} `json:"per_shard"`
	}
	get(t, ts, "/v1/metrics", &m)
	if m.Completed != 1 || len(m.PerShard) != 4 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestFedScheddRefusesAdaptAndOversizedJobs(t *testing.T) {
	_, ts := newFedTestServer(t, 4, 8, 0)
	resp, err := ts.Client().Post(ts.URL+"/v1/adapt", "application/json", strings.NewReader(`{"action":"start"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("/v1/adapt on a federation: %d, want 501", resp.StatusCode)
	}
	// Wider than one shard, even though 4×8 = 32 total cores exist.
	code, r := post(t, ts, "/v1/submit", `{"id":1,"cores":9,"runtime":10,"estimate":10}`)
	if code != http.StatusBadRequest {
		t.Fatalf("oversized submit: code=%d reply=%+v, want 400", code, r)
	}
}

func TestFedScheddPolicySwap(t *testing.T) {
	_, ts := newFedTestServer(t, 2, 8, 0)
	code, r := post(t, ts, "/v1/policy", `{"name":"F1"}`)
	if code != 200 || r.Policy != "F1" {
		t.Fatalf("policy swap: code=%d reply=%+v", code, r)
	}
	var st struct {
		Policy string `json:"policy"`
	}
	get(t, ts, "/v1/status", &st)
	if st.Policy != "F1" {
		t.Fatalf("policy after swap: %q", st.Policy)
	}
}

// TestFedScheddTraceShardTagged drives traffic through a federation and
// checks the merged /v1/trace: every JSONL line carries a shard tag, the
// stream is time-ordered, and the sample/limit/format validation matches
// the single-engine endpoint exactly.
func TestFedScheddTraceShardTagged(t *testing.T) {
	_, ts := newFedTestServer(t, 4, 8, 1024)
	for i := 1; i <= 16; i++ {
		body := fmt.Sprintf(`{"id":%d,"cores":2,"runtime":50,"estimate":50,"now":%d}`, i, i)
		if code, r := post(t, ts, "/v1/submit", body); code != 200 {
			t.Fatalf("submit %d: code=%d reply=%+v", i, code, r)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("trace: %d", resp.StatusCode)
	}
	seen := 0
	lastT := -1.0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		var ev struct {
			Shard *int    `json:"shard"`
			T     float64 `json:"t"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if ev.Shard == nil || *ev.Shard < 0 || *ev.Shard > 3 {
			t.Fatalf("line %q lacks a valid shard tag", line)
		}
		if ev.T < lastT {
			t.Fatalf("merged trace goes back in time: %g after %g", ev.T, lastT)
		}
		lastT = ev.T
		seen++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if seen == 0 {
		t.Fatal("merged trace is empty after 16 submits")
	}
	// Validation parity with the single-engine endpoint.
	for _, q := range []string{"?sample=0", "?sample=-3", "?sample=x", "?limit=-1", "?format=yaml"} {
		resp, err := ts.Client().Get(ts.URL + "/v1/trace" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("trace%s: %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestFedScheddPromMetrics(t *testing.T) {
	_, ts := newFedTestServer(t, 4, 8, 1024)
	if code, r := post(t, ts, "/v1/submit", `{"id":1,"cores":2,"runtime":50,"estimate":50}`); code != 200 {
		t.Fatalf("submit: code=%d reply=%+v", code, r)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"gensched_shards 4",
		"gensched_cores 32",
		"gensched_jobs_submitted_total 1",
		"gensched_fed_stolen_placements",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
}

// TestTraceSampleThenLimit pins the single-engine /v1/trace contract
// parseTraceQuery documents: ?limit caps the most recent events AFTER
// ?sample thins the stream — so sample=K&limit=N returns the last N of
// the 1-in-K stream, and sample=0 is always a 400.
func TestTraceSampleThenLimit(t *testing.T) {
	_, ts := newTelemetryServer(t, 8, 4096)
	for i := 1; i <= 40; i++ {
		body := fmt.Sprintf(`{"id":%d,"cores":1,"runtime":50,"estimate":50,"now":%d}`, i, i)
		if code, r := post(t, ts, "/v1/submit", body); code != 200 {
			t.Fatalf("submit %d: code=%d reply=%+v", i, code, r)
		}
	}
	lines := func(q string) []string {
		resp, err := ts.Client().Get(ts.URL + "/v1/trace" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("trace%s: %d", q, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		out := strings.Split(strings.TrimSuffix(string(b), "\n"), "\n")
		if len(out) == 1 && out[0] == "" {
			return nil
		}
		return out
	}
	sampled := lines("?sample=3")
	const limit = 10
	if len(sampled) <= limit {
		t.Fatalf("need more than %d sampled events, got %d", limit, len(sampled))
	}
	for _, line := range sampled {
		var ev struct {
			Seq uint64 `json:"seq"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		if ev.Seq%3 != 0 {
			t.Fatalf("sample=3 stream contains seq %d", ev.Seq)
		}
	}
	got := lines(fmt.Sprintf("?sample=3&limit=%d", limit))
	want := sampled[len(sampled)-limit:]
	if len(got) != limit {
		t.Fatalf("limit=%d returned %d lines", limit, len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("limit must keep the most recent events after sampling:\nline %d\n got %s\nwant %s", i, got[i], want[i])
		}
	}
	// sample=0 is rejected, never treated as "no sampling".
	resp, err := ts.Client().Get(ts.URL + "/v1/trace?sample=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("sample=0: %d, want 400", resp.StatusCode)
	}
}

// --- Binary protocol ---------------------------------------------------------

// binConn is a test client for the binary protocol.
type binConn struct {
	t  *testing.T
	c  net.Conn
	br *bufio.Reader
}

func dialBin(t *testing.T, addr string) *binConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return &binConn{t: t, c: c, br: bufio.NewReader(c)}
}

func (bc *binConn) roundTrip(payload []byte) (float64, []online.Start, error) {
	bc.t.Helper()
	if _, err := bc.c.Write(fed.AppendFrame(nil, payload)); err != nil {
		bc.t.Fatal(err)
	}
	resp, err := fed.ReadFrame(bc.br, nil)
	if err != nil {
		bc.t.Fatal(err)
	}
	return fed.DecodeResp(resp, nil)
}

func (bc *binConn) record(rec *durable.Record) (float64, []online.Start, error) {
	bc.t.Helper()
	payload, err := fed.AppendRecordMsg(nil, rec)
	if err != nil {
		bc.t.Fatal(err)
	}
	return bc.roundTrip(payload)
}

func startBinServer(t *testing.T, h binaryHandler) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bs := newBinServer(l, h)
	bs.start()
	t.Cleanup(bs.stop)
	return l.Addr().String()
}

// TestBinaryProtocolSingleEngine drives the binary listener against the
// single-engine server and checks the scheduling outcomes match what the
// HTTP path would produce: starts arrive with the submit response, a
// duplicate ID errors with the HTTP status code, and the journal path is
// shared (the mutation lands in /v1/status).
func TestBinaryProtocolSingleEngine(t *testing.T) {
	s, err := online.New(8, online.Options{Policy: sched.FCFS(), Backfill: sim.BackfillEASY, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	sv := newServer(s, 8, false)
	ts := httptest.NewServer(sv.handler())
	t.Cleanup(ts.Close)
	bc := dialBin(t, startBinServer(t, sv))

	now, starts, err := bc.record(&durable.Record{
		Op: durable.OpSubmit, Now: 5,
		Job: workload.Job{ID: 1, Submit: 5, Runtime: 100, Estimate: 100, Cores: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if now != 5 || len(starts) != 1 || starts[0].ID != 1 || starts[0].Time != 5 {
		t.Fatalf("submit: now=%g starts=%+v", now, starts)
	}
	// Duplicate: RespErr carrying the same 409 the HTTP path uses.
	_, _, err = bc.record(&durable.Record{
		Op: durable.OpSubmit, Now: 6,
		Job: workload.Job{ID: 1, Submit: 6, Runtime: 100, Estimate: 100, Cores: 4},
	})
	we, ok := err.(*fed.WireError)
	if !ok || we.Code != http.StatusConflict {
		t.Fatalf("duplicate submit: %v, want 409 WireError", err)
	}
	// Ops the wire must refuse.
	_, _, err = bc.record(&durable.Record{Op: durable.OpInit, Init: &durable.InitState{Cores: 8}})
	if we, ok := err.(*fed.WireError); !ok || we.Code != http.StatusBadRequest {
		t.Fatalf("OpInit over the wire: %v, want 400 WireError", err)
	}
	// Oversized job: validated exactly like HTTP submit.
	_, _, err = bc.record(&durable.Record{
		Op: durable.OpSubmit, Now: 7,
		Job: workload.Job{ID: 2, Submit: 7, Runtime: 10, Estimate: 10, Cores: 9},
	})
	if we, ok := err.(*fed.WireError); !ok || we.Code != http.StatusBadRequest {
		t.Fatalf("oversized submit over the wire: %v, want 400 WireError", err)
	}
	// The mutation is visible over HTTP: one shared scheduler.
	var st struct {
		Submitted int `json:"submitted"`
	}
	get(t, ts, "/v1/status", &st)
	if st.Submitted != 1 {
		t.Fatalf("status after binary submit: %+v", st)
	}
}

// TestBinaryProtocolBatch sends one batch frame with submits, a
// complete, and an advance, and expects the same outcome as the records
// sent individually: batches are pure syscall amortization.
func TestBinaryProtocolBatch(t *testing.T) {
	run := func(batch bool) (float64, int) {
		s, err := online.New(4, online.Options{Policy: sched.FCFS(), Backfill: sim.BackfillEASY, Check: true})
		if err != nil {
			t.Fatal(err)
		}
		sv := newServer(s, 4, false)
		bc := dialBin(t, startBinServer(t, sv))
		recs := []durable.Record{
			{Op: durable.OpSubmit, Now: 0, Job: workload.Job{ID: 1, Runtime: 50, Estimate: 50, Cores: 4}},
			{Op: durable.OpSubmit, Now: 1, Job: workload.Job{ID: 2, Submit: 1, Runtime: 30, Estimate: 30, Cores: 4}},
			{Op: durable.OpComplete, Now: 50, ID: 1},
			{Op: durable.OpAdvance, Now: 90},
		}
		var now float64
		total := 0
		if batch {
			payload, err := fed.AppendBatchMsg(nil, recs)
			if err != nil {
				t.Fatal(err)
			}
			var starts []online.Start
			now, starts, err = bc.roundTrip(payload)
			if err != nil {
				t.Fatal(err)
			}
			total = len(starts)
		} else {
			for i := range recs {
				n, starts, err := bc.record(&recs[i])
				if err != nil {
					t.Fatal(err)
				}
				now = n
				total += len(starts)
			}
		}
		return now, total
	}
	bNow, bStarts := run(true)
	sNow, sStarts := run(false)
	if bNow != sNow || bStarts != sStarts {
		t.Fatalf("batch (now=%g starts=%d) != sequential (now=%g starts=%d)", bNow, bStarts, sNow, sStarts)
	}
	if bNow != 90 || bStarts != 2 {
		t.Fatalf("outcome: now=%g starts=%d, want 90 and 2", bNow, bStarts)
	}
}

// TestBinaryProtocolFederation drives the binary listener against a
// federation and checks jobs spread across shards with the same router
// the HTTP path uses.
func TestBinaryProtocolFederation(t *testing.T) {
	fs, _ := newFedTestServer(t, 4, 8, 0)
	bc := dialBin(t, startBinServer(t, fs))
	for i := 1; i <= 12; i++ {
		_, _, err := bc.record(&durable.Record{
			Op: durable.OpSubmit, Now: float64(i),
			Job: workload.Job{ID: i, Submit: float64(i), Runtime: 50, Estimate: 50, Cores: 2},
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	st := fs.fd.Status()
	if st.Submitted != 12 {
		t.Fatalf("submitted %d, want 12", st.Submitted)
	}
	shardsUsed := 0
	for _, p := range st.PerShard {
		if p.Submitted > 0 {
			shardsUsed++
		}
	}
	if shardsUsed < 2 {
		t.Fatalf("only %d shards received jobs", shardsUsed)
	}
}
