package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/durable"
	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/schedcore"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/simtest"
	"github.com/hpcsched/gensched/internal/workload"
)

// The crash-point tests: kill the daemon's on-disk state at every record
// boundary (and inside record frames), recover, replay the rest of the
// op stream, and require the final state to be BIT-IDENTICAL to an
// uninterrupted run — compared as canonical snapshot bytes, which cover
// the engine image, every metrics aggregate, the active policy
// descriptor and the adaptive loop's state.

// scriptOps turns a workload into the deterministic operation stream a
// live client would produce: submissions at their submit times and
// completions when the execution time has elapsed after the start the
// scheduler chose (which requires actually running the scheduler while
// scripting — the stream depends on its decisions). Control ops (policy
// swap, adaptive start/stop) are injected at fixed op counts.
func scriptOps(t *testing.T, init durable.InitState, jobs []workload.Job, withControl bool) []durable.Record {
	t.Helper()
	sv, err := buildServer(init, false, true)
	if err != nil {
		t.Fatal(err)
	}
	var h schedcore.EventHeap
	for i := range jobs {
		h.Push(schedcore.Event{Time: jobs[i].Submit, Kind: schedcore.KindArrival, Ref: i})
	}
	var ops []durable.Record
	swapAt, adaptAt, stopAt := -1, -1, -1
	if withControl {
		n := 2 * len(jobs)
		adaptAt, swapAt, stopAt = n/5, n/2, (9*n)/10
	}
	var inject func()
	inject = func() {
		switch len(ops) {
		case adaptAt:
			ops = append(ops, durable.Record{Op: durable.OpAdaptStart, Adapt: &durable.AdaptConfig{
				Window: 64, MinWindow: 8, Interval: 200, SSize: 8, QSize: 16,
				Tuples: 1, Trials: 8, TopK: 1, Workers: 1, Seed: 7,
			}})
		case swapAt:
			ops = append(ops, durable.Record{Op: durable.OpPolicy, Name: "CRASHTEST",
				Expr: "log10(r)*n + 870*log10(s)"})
		case stopAt:
			// Coverage guard: the loop must actually have retrained before
			// the stream stops it, or the sweep isn't exercising adaptive
			// recovery. The real runs replay this exact deterministic
			// stream, so asserting here covers them all.
			if sv.ad == nil || sv.ad.Rounds() == 0 {
				t.Fatal("scripted stream never ran an adaptation round; retune the injection points")
			}
			ops = append(ops, durable.Record{Op: durable.OpAdaptStop})
		default:
			return
		}
		rec := ops[len(ops)-1]
		if _, err := sv.apply(&rec); err != nil {
			t.Fatalf("scripting op %d (%v): %v", len(ops)-1, rec.Op, err)
		}
		inject() // two injection counts can collide on one boundary
	}
	step := func(rec durable.Record) []online.Start {
		inject()
		starts, err := sv.apply(&rec)
		if err != nil {
			t.Fatalf("scripting op %d (%v): %v", len(ops), rec.Op, err)
		}
		ops = append(ops, rec)
		return starts
	}
	push := func(starts []online.Start) {
		for _, st := range starts {
			i := -1
			for j := range jobs {
				if jobs[j].ID == st.ID {
					i = j
					break
				}
			}
			h.Push(schedcore.Event{Time: st.Time + jobs[i].Runtime, Kind: schedcore.KindCompletion, Ref: i})
		}
	}
	for h.Len() > 0 {
		ev := h.Pop()
		switch ev.Kind {
		case schedcore.KindArrival:
			push(step(durable.Record{Op: durable.OpSubmit, Now: ev.Time, Job: jobs[ev.Ref]}))
		case schedcore.KindCompletion:
			push(step(durable.Record{Op: durable.OpComplete, Now: ev.Time, ID: jobs[ev.Ref].ID}))
		}
	}
	if err := sv.s.Err(); err != nil {
		t.Fatalf("scripting run violated invariants: %v", err)
	}
	return ops
}

// fingerprint is the canonical byte image of everything the daemon would
// checkpoint, with the journal sequence zeroed so runs that checkpointed
// at different moments still compare equal iff their state is equal.
func fingerprint(t *testing.T, sv *server) []byte {
	t.Helper()
	snap, err := sv.buildSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap.Seq = 0
	return durable.EncodeSnapshot(snap)
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// runJournaled boots a durable server on dir, applies ops, and calls
// after(k) once the k-th op is on disk. Returns the server and a copy of
// every op's start notifications.
func runJournaled(t *testing.T, dir string, init durable.InitState, ops []durable.Record, ckptEvery float64, after func(k int)) (*server, [][]online.Start) {
	t.Helper()
	sv, err := openDurable(dir, 1, ckptEvery, init, false, true)
	if err != nil {
		t.Fatal(err)
	}
	startsLog := make([][]online.Start, len(ops))
	for k := range ops {
		rec := ops[k]
		starts, err := sv.applyJournal(&rec)
		if err != nil {
			t.Fatalf("op %d (%v): %v", k, rec.Op, err)
		}
		startsLog[k] = append([]online.Start(nil), starts...)
		if after != nil {
			after(k)
		}
	}
	return sv, startsLog
}

// recoverAndFinish reopens a crashed data directory, replays ops[from:]
// (checking each op's starts against the uninterrupted run), and returns
// the final fingerprint.
func recoverAndFinish(t *testing.T, dir string, init durable.InitState, ops []durable.Record, startsLog [][]online.Start, from int, ckptEvery float64) []byte {
	t.Helper()
	sv, err := openDurable(dir, 1, ckptEvery, init, false, true)
	if err != nil {
		t.Fatalf("recovery from crash point %d: %v", from, err)
	}
	for k := from; k < len(ops); k++ {
		rec := ops[k]
		starts, err := sv.applyJournal(&rec)
		if err != nil {
			t.Fatalf("crash point %d: reapplying op %d (%v): %v", from, k, rec.Op, err)
		}
		if len(starts) != len(startsLog[k]) {
			t.Fatalf("crash point %d: op %d started %d jobs, uninterrupted run started %d",
				from, k, len(starts), len(startsLog[k]))
		}
		for i := range starts {
			if starts[i] != startsLog[k][i] {
				t.Fatalf("crash point %d: op %d start %d = %+v, uninterrupted %+v",
					from, k, i, starts[i], startsLog[k][i])
			}
		}
	}
	fp := fingerprint(t, sv)
	if err := sv.shutdownStore(); err != nil {
		t.Fatalf("crash point %d: shutdown: %v", from, err)
	}
	return fp
}

func crashWorkload(t *testing.T, seed uint64, n, cores int) []workload.Job {
	rng := dist.New(seed)
	return simtest.IntegerJobs(rng, n, cores)
}

// TestCrashRecoveryEveryRecord is the core crash-point sweep, without
// checkpoints: the journal alone must reconstruct the state from any
// record boundary.
func TestCrashRecoveryEveryRecord(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 18
	}
	const cores = 16
	init := durable.InitState{Cores: cores, Backfill: int(sim.BackfillEASY), UseEstimates: true, PolicyName: "F1"}
	jobs := crashWorkload(t, 42, n, cores)
	ops := scriptOps(t, init, jobs, false)

	base := t.TempDir()
	live := filepath.Join(base, "live")
	crashAt := func(k int) string { return filepath.Join(base, fmt.Sprintf("crash-%04d", k)) }
	sv, startsLog := runJournaled(t, live, init, ops, 0, func(k int) {
		copyDir(t, live, crashAt(k))
	})
	want := fingerprint(t, sv)
	if err := sv.shutdownStore(); err != nil {
		t.Fatal(err)
	}

	// A non-durable server applying the same stream: journaling must not
	// perturb scheduling at all.
	plain, err := buildServer(init, false, true)
	if err != nil {
		t.Fatal(err)
	}
	for k := range ops {
		rec := ops[k]
		if _, err := plain.apply(&rec); err != nil {
			t.Fatalf("plain op %d: %v", k, err)
		}
	}
	if !bytes.Equal(fingerprint(t, plain), want) {
		t.Fatal("journaled run diverged from the in-memory run")
	}

	// Every record boundary: recover, replay the remainder, compare.
	for k := range ops {
		if got := recoverAndFinish(t, crashAt(k), init, ops, startsLog, k+1, 0); !bytes.Equal(got, want) {
			t.Fatalf("crash after op %d: recovered state differs from uninterrupted run", k)
		}
	}
	// The graceful-shutdown path: the live dir now holds a final
	// checkpoint; recovery from it must land on the same state.
	if got := recoverAndFinish(t, live, init, ops, startsLog, len(ops), 0); !bytes.Equal(got, want) {
		t.Fatal("recovery from the final checkpoint differs from uninterrupted run")
	}
}

// TestCrashRecoveryTornTail crashes INSIDE record frames: every byte-
// truncation of an op's frame must recover to the previous boundary and
// accept the rest of the stream.
func TestCrashRecoveryTornTail(t *testing.T) {
	n := 16
	if testing.Short() {
		n = 10
	}
	const cores = 8
	init := durable.InitState{Cores: cores, Backfill: int(sim.BackfillConservative), PolicyName: "FCFS"}
	jobs := crashWorkload(t, 7, n, cores)
	ops := scriptOps(t, init, jobs, false)

	base := t.TempDir()
	live := filepath.Join(base, "live")
	crashAt := func(k int) string { return filepath.Join(base, fmt.Sprintf("crash-%04d", k)) }
	sv, startsLog := runJournaled(t, live, init, ops, 0, func(k int) {
		copyDir(t, live, crashAt(k))
	})
	want := fingerprint(t, sv)
	if err := sv.shutdownStore(); err != nil {
		t.Fatal(err)
	}

	for k := 1; k < len(ops); k += 3 {
		// The dir copy at k ends with op k's frame; chop bytes off its
		// tail so recovery sees a torn append of op k.
		dir := crashAt(k)
		names, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var segPath string
		for _, e := range names {
			if filepath.Ext(e.Name()) == ".log" {
				segPath = filepath.Join(dir, e.Name()) // only one segment: no checkpoints ran
			}
		}
		full, err := os.ReadFile(segPath)
		if err != nil {
			t.Fatal(err)
		}
		// The copy at k-1 ends right before op k's frame.
		frameLen := len(full) - segmentLenAfter(t, crashAt(k-1))
		for _, cut := range []int{1, frameLen / 2, frameLen - 1} {
			if cut <= 0 || cut >= frameLen {
				continue
			}
			torn := filepath.Join(base, fmt.Sprintf("torn-%04d-%d", k, cut))
			copyDir(t, dir, torn)
			if err := os.WriteFile(filepath.Join(torn, filepath.Base(segPath)), full[:len(full)-cut], 0o644); err != nil {
				t.Fatal(err)
			}
			// Op k's append was torn away: recovery resumes from op k.
			if got := recoverAndFinish(t, torn, init, ops, startsLog, k, 0); !bytes.Equal(got, want) {
				t.Fatalf("torn tail at op %d (cut %d): recovered state differs", k, cut)
			}
		}
	}
}

// segmentLenAfter reports the single journal segment's size in a crash
// copy, so the caller can compute the last op's frame length.
func segmentLenAfter(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".log" {
			info, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			return int(info.Size())
		}
	}
	t.Fatalf("no segment in %s", dir)
	return 0
}

// TestCrashRecoveryWithCheckpointsAndAdaptive is the full-stack sweep:
// policy hot-swap and a live adaptive retraining loop in the op stream,
// checkpoints interleaving with the crash points, so recovery exercises
// snapshot-load + bounded replay (including re-deriving retraining
// rounds) rather than replay-from-genesis.
func TestCrashRecoveryWithCheckpointsAndAdaptive(t *testing.T) {
	n := 36
	if testing.Short() {
		n = 16
	}
	const cores = 16
	const ckptEvery = 150 // logical seconds; the op stream spans far more
	init := durable.InitState{Cores: cores, Backfill: int(sim.BackfillEASY), UseEstimates: true, PolicyName: "F1"}
	jobs := crashWorkload(t, 1234, n, cores)
	ops := scriptOps(t, init, jobs, true)

	base := t.TempDir()
	live := filepath.Join(base, "live")
	crashAt := func(k int) string { return filepath.Join(base, fmt.Sprintf("crash-%04d", k)) }
	sv, startsLog := runJournaled(t, live, init, ops, ckptEvery, func(k int) {
		copyDir(t, live, crashAt(k))
	})
	if got, wantSeq := sv.store.Seq(), uint64(len(ops)+1); got != wantSeq {
		t.Fatalf("journal sequence after the run = %d, want %d (genesis + ops)", got, wantSeq)
	}
	want := fingerprint(t, sv)
	if sv.ad != nil {
		t.Fatal("scripted stream should have stopped the adaptive loop")
	}
	if err := sv.shutdownStore(); err != nil {
		t.Fatal(err)
	}

	sawSnapshot := false
	for k := range ops {
		if _, err := os.Stat(filepath.Join(crashAt(k), "snapshot")); err == nil {
			sawSnapshot = true
		}
		if got := recoverAndFinish(t, crashAt(k), init, ops, startsLog, k+1, ckptEvery); !bytes.Equal(got, want) {
			t.Fatalf("crash after op %d: recovered state differs from uninterrupted run", k)
		}
	}
	if !sawSnapshot {
		t.Fatal("no crash point contained a checkpoint; lower ckptEvery")
	}
	if got := recoverAndFinish(t, live, init, ops, startsLog, len(ops), ckptEvery); !bytes.Equal(got, want) {
		t.Fatal("recovery from the final checkpoint differs from uninterrupted run")
	}
}

// TestDataDirFlagMismatch pins the guard: a journal recorded under one
// machine shape refuses to boot under different flags.
func TestDataDirFlagMismatch(t *testing.T) {
	const cores = 8
	init := durable.InitState{Cores: cores, Backfill: int(sim.BackfillEASY), PolicyName: "FCFS"}
	dir := t.TempDir()
	sv, err := openDurable(dir, 1, 0, init, false, false)
	if err != nil {
		t.Fatal(err)
	}
	rec := durable.Record{Op: durable.OpSubmit, Now: 1, Job: workload.Job{ID: 1, Submit: 1, Runtime: 10, Cores: 1}}
	if _, err := sv.applyJournal(&rec); err != nil {
		t.Fatal(err)
	}
	if err := sv.shutdownStore(); err != nil {
		t.Fatal(err)
	}
	bad := init
	bad.Cores = 16
	if _, err := openDurable(dir, 1, 0, bad, false, false); err == nil {
		t.Fatal("boot accepted a journal recorded with different cores")
	}
	// The original shape still boots, and the submitted job survived.
	sv2, err := openDurable(dir, 1, 0, init, false, false)
	if err != nil {
		t.Fatal(err)
	}
	st := sv2.s.Status()
	if st.Running+st.Queued != 1 {
		t.Fatalf("recovered status lost the job: %+v", st)
	}
	if err := sv2.shutdownStore(); err != nil {
		t.Fatal(err)
	}
}
