package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
)

// TestScheddConcurrentClients hammers every mutating endpoint from many
// goroutine clients at once — the serial handler tests never exercise the
// daemon's locking. Submitters race each other and a completer; a flipper
// hot-swaps the policy mid-traffic; an advancer nudges the clock; a
// poller watches /v1/status throughout. Run under -race this checks the
// daemon's synchronization; the assertions check its semantics under
// interleaving:
//
//   - the logical clock never goes backward between sequential polls,
//   - every response is well-formed (200 with starts, or a structured
//     error; never a mangled body from a torn shared buffer),
//   - the runtime invariant checker (Check: true) stays silent, and
//   - after a single-threaded drain, the totals reconcile: every
//     submitted job started and completed exactly once.
func TestScheddConcurrentClients(t *testing.T) {
	const (
		cores      = 32
		submitters = 4
		perClient  = 120
	)
	total := submitters * perClient
	s, err := online.New(cores, online.Options{
		Policy:   sched.FCFS(),
		Backfill: sim.BackfillEASY,
		Check:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(s, 64, false).handler())
	defer ts.Close()
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 16

	// The logical clock all clients share: every request takes a fresh,
	// strictly increasing "now", so any clock regression observed at the
	// server is the server's fault.
	var clock atomic.Int64
	tick := func() float64 { return float64(clock.Add(1)) }

	var (
		failures  atomic.Int64
		firstFail sync.Once
		failMsg   string
	)
	fail := func(format string, args ...any) {
		failures.Add(1)
		firstFail.Do(func() { failMsg = fmt.Sprintf(format, args...) })
	}

	doPost := func(path, body string) (int, reply) {
		resp, err := client.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			fail("POST %s: %v", path, err)
			return 0, reply{}
		}
		defer resp.Body.Close()
		var r reply
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			fail("POST %s: mangled response body: %v", path, err)
			return resp.StatusCode, reply{}
		}
		if resp.StatusCode != 200 && r.Error == "" {
			fail("POST %s: status %d without an error body", path, resp.StatusCode)
		}
		return resp.StatusCode, r
	}

	// Started jobs are collected under a lock; the completer pops from
	// the set while the storm runs, the drain phase empties it after.
	runtimeOf := func(id int) float64 { return []float64{30, 120, 45, 300}[id%4] }
	var (
		startMu        sync.Mutex
		pendingStarts  []int
		startedTotal   int
		completedTotal atomic.Int64
	)
	record := func(r *reply) {
		if len(r.Started) == 0 {
			return
		}
		startMu.Lock()
		for _, st := range r.Started {
			pendingStarts = append(pendingStarts, st.ID)
			startedTotal++
		}
		startMu.Unlock()
	}
	pop := func() (int, bool) {
		startMu.Lock()
		defer startMu.Unlock()
		if len(pendingStarts) == 0 {
			return 0, false
		}
		id := pendingStarts[len(pendingStarts)-1]
		pendingStarts = pendingStarts[:len(pendingStarts)-1]
		return id, true
	}
	complete := func(id int) {
		code, r := doPost("/v1/complete", fmt.Sprintf(`{"id":%d,"now":%g}`, id, tick()))
		if code != 200 {
			fail("complete %d rejected: %d %s", id, code, r.Error)
			return
		}
		completedTotal.Add(1)
		record(&r)
	}

	// The storm: submitters, a completer, a policy flipper, an advancer.
	// The completer keeps racing until every producer goroutine is done
	// (stormDone), so completions genuinely interleave with submissions.
	var storm, producers sync.WaitGroup
	stormDone := make(chan struct{})
	for c := 0; c < submitters; c++ {
		storm.Add(1)
		producers.Add(1)
		go func(c int) {
			defer storm.Done()
			defer producers.Done()
			for i := 0; i < perClient; i++ {
				id := c*perClient + i + 1
				body := fmt.Sprintf(`{"id":%d,"cores":%d,"runtime":%g,"estimate":%g,"now":%g}`,
					id, []int{1, 2, 4, 8}[id%4], runtimeOf(id), runtimeOf(id), tick())
				if code, r := doPost("/v1/submit", body); code == 200 {
					record(&r)
				} else {
					fail("submit %d rejected: %d %s", id, code, r.Error)
				}
			}
		}(c)
	}
	storm.Add(1)
	go func() { // completer
		defer storm.Done()
		for {
			id, ok := pop()
			if ok {
				complete(id)
				continue
			}
			select {
			case <-stormDone:
				return
			default:
				runtime.Gosched()
			}
		}
	}()
	storm.Add(1)
	producers.Add(1)
	go func() { // policy flipper
		defer storm.Done()
		defer producers.Done()
		for i := 0; i < 40; i++ {
			body := `{"name":"FCFS"}`
			if i%2 == 0 {
				body = `{"name":"L","expr":"r*n + 0*log10(s)"}`
			}
			if code, r := doPost("/v1/policy", body); code != 200 {
				fail("policy flip rejected: %d %s", code, r.Error)
			}
		}
	}()
	storm.Add(1)
	producers.Add(1)
	go func() { // advancer
		defer storm.Done()
		defer producers.Done()
		for i := 0; i < 80; i++ {
			if code, r := doPost("/v1/advance", fmt.Sprintf(`{"now":%g}`, tick())); code == 200 {
				record(&r)
			} else {
				fail("advance rejected: %d %s", code, r.Error)
			}
		}
	}()

	// The poller runs outside the storm group and is stopped last.
	pollDone := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		last := -1.0
		for {
			select {
			case <-pollDone:
				return
			default:
			}
			resp, err := client.Get(ts.URL + "/v1/status")
			if err != nil {
				fail("status: %v", err)
				return
			}
			var st struct {
				Now                float64 `json:"now"`
				InvariantViolation string  `json:"invariant_violation"`
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				fail("status: mangled body: %v", err)
				return
			}
			if st.Now < last {
				fail("clock went backward: %g after %g", st.Now, last)
			}
			last = st.Now
			if st.InvariantViolation != "" {
				fail("invariant violation: %s", st.InvariantViolation)
			}
		}
	}()

	// Wait out the storm, then drain single-threaded: advance the clock
	// and complete everything that starts until all jobs have retired.
	go func() {
		producers.Wait()
		close(stormDone)
	}()
	storm.Wait()
	for completedTotal.Load() < int64(total) && failures.Load() == 0 {
		if code, r := doPost("/v1/advance", fmt.Sprintf(`{"now":%g}`, tick())); code == 200 {
			record(&r)
		}
		for {
			id, ok := pop()
			if !ok {
				break
			}
			complete(id)
		}
	}
	close(pollDone)
	pollWG.Wait()

	if failures.Load() > 0 {
		t.Fatalf("%d failures; first: %s", failures.Load(), failMsg)
	}
	startMu.Lock()
	st := startedTotal
	startMu.Unlock()
	if st != total || completedTotal.Load() != int64(total) {
		t.Fatalf("started %d and completed %d of %d jobs", st, completedTotal.Load(), total)
	}

	// Final ground truth from the server.
	var fin struct {
		Queued, Running, Submitted, Completed int
	}
	get(t, ts, "/v1/status", &fin)
	if fin.Submitted != total || fin.Completed != total || fin.Queued != 0 || fin.Running != 0 {
		t.Fatalf("final state inconsistent: %+v (want %d submitted and completed, nothing active)", fin, total)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("invariant violation: %v", err)
	}
}
