package main

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
)

// adaptStatusReply mirrors the /v1/adapt GET rendering.
type adaptStatusReply struct {
	Enabled    bool    `json:"enabled"`
	Window     int     `json:"window"`
	NextCheck  float64 `json:"next_check"`
	Rounds     int     `json:"rounds"`
	Promotions int     `json:"promotions"`
	Policy     string  `json:"policy"`
	LastError  string  `json:"last_error"`
	Last       *struct {
		At         float64 `json:"at"`
		Round      int     `json:"round"`
		Skipped    bool    `json:"skipped"`
		Reason     string  `json:"reason"`
		Promoted   bool    `json:"promoted"`
		PolicyExpr string  `json:"policy_expr"`
	} `json:"last"`
}

func TestScheddAdaptValidation(t *testing.T) {
	ts := newTestServer(t, 4)
	if code, r := post(t, ts, "/v1/adapt", `{"action":"start"}`); code != http.StatusBadRequest || r.Error == "" {
		t.Errorf("start without interval: code=%d reply=%+v", code, r)
	}
	if code, r := post(t, ts, "/v1/adapt", `{"action":"reverse"}`); code != http.StatusBadRequest || r.Error == "" {
		t.Errorf("unknown action: code=%d reply=%+v", code, r)
	}
	if code, _ := post(t, ts, "/v1/adapt", `{not json`); code != http.StatusBadRequest {
		t.Errorf("bad body: code=%d", code)
	}
	// Sizing fields are bounded: a start request cannot allocate an
	// arbitrarily large window or schedule hours-long inline rounds.
	if code, r := post(t, ts, "/v1/adapt", `{"action":"start","interval":10,"window":2000000000}`); code != http.StatusBadRequest || r.Error == "" {
		t.Errorf("huge window accepted: code=%d reply=%+v", code, r)
	}
	if code, r := post(t, ts, "/v1/adapt", `{"action":"start","interval":10,"trials":-5}`); code != http.StatusBadRequest || r.Error == "" {
		t.Errorf("negative trials accepted: code=%d reply=%+v", code, r)
	}
	var st adaptStatusReply
	get(t, ts, "/v1/adapt", &st)
	if st.Enabled {
		t.Errorf("adapt enabled before start: %+v", st)
	}
}

func TestScheddAdaptLifecycle(t *testing.T) {
	ts := newTestServer(t, 4)
	code, _ := post(t, ts, "/v1/adapt",
		`{"action":"start","interval":500,"window":64,"min_window":16,"tuples":1,"trials":16,"topk":1,"seed":7}`)
	if code != 200 {
		t.Fatalf("start: code=%d", code)
	}
	var st adaptStatusReply
	get(t, ts, "/v1/adapt", &st)
	if !st.Enabled || st.NextCheck != 500 {
		t.Fatalf("status after start: %+v", st)
	}
	// A second start must not silently replace the running loop.
	if code, r := post(t, ts, "/v1/adapt", `{"action":"start","interval":900}`); code != http.StatusConflict || r.Error == "" {
		t.Fatalf("start while running: code=%d reply=%+v", code, r)
	}
	if code, _ := post(t, ts, "/v1/adapt", `{"action":"stop"}`); code != 200 {
		t.Fatalf("stop: code=%d", code)
	}
	get(t, ts, "/v1/adapt", &st)
	if st.Enabled {
		t.Fatalf("status after stop: %+v", st)
	}
}

// TestScheddAdaptLoopRetrainsAndPromotes drives a stale-policy scenario
// through the HTTP API end to end: a daemon scheduling an overloaded
// heterogeneous flood under a near-FCFS incumbent, with the adaptive loop
// started over the wire. The periodic trigger rides on the logical clock
// of ordinary submit/complete requests; the loop retrains from the
// observed window and hot-swaps the incumbent out.
func TestScheddAdaptLoopRetrainsAndPromotes(t *testing.T) {
	// A 64-core machine under a policy whose giant s-coefficient makes it
	// near-FCFS on small jobs (the stale incumbent of the examples).
	stale, err := sched.ParseExpr("STALE", "r*n + 6.86e6*log10(s)")
	if err != nil {
		t.Fatal(err)
	}
	s, err := online.New(64, online.Options{Policy: stale, Backfill: sim.BackfillEASY, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(s, 64, false).handler())
	defer ts.Close()

	code, _ := post(t, ts, "/v1/adapt",
		`{"action":"start","interval":900,"window":96,"min_window":48,"tuples":2,"trials":32,"topk":2,"margin":0.05,"seed":11}`)
	if code != 200 {
		t.Fatalf("start: code=%d", code)
	}

	// An overloaded flood: heterogeneous areas arriving every ~5s, ~1.6x
	// offered load, with a deterministic runtime pattern.
	var completions []struct {
		at float64
		id int
	}
	now := 0.0
	for i := 1; i <= 240; i++ {
		now += 5
		runtime := []float64{20, 500, 60, 1500, 120, 3000}[i%6]
		cores := []int{1, 2, 4, 8}[i%4]
		code, r := post(t, ts, "/v1/submit", fmt.Sprintf(
			`{"id":%d,"cores":%d,"runtime":%g,"estimate":%g,"now":%g}`, i, cores, runtime, runtime, now))
		if code != 200 {
			t.Fatalf("submit %d: code=%d %+v", i, code, r)
		}
		for _, st := range r.Started {
			completions = append(completions, struct {
				at float64
				id int
			}{st.Time + runtime, st.ID})
		}
		// Report any completions that have come due.
		for k := 0; k < len(completions); k++ {
			if completions[k].at <= now {
				code, r := post(t, ts, "/v1/complete", fmt.Sprintf(
					`{"id":%d,"now":%g}`, completions[k].id, math.Max(completions[k].at, now)))
				if code != 200 {
					t.Fatalf("complete %d: code=%d %+v", completions[k].id, code, r)
				}
				for _, st := range r.Started {
					rt := []float64{20, 500, 60, 1500, 120, 3000}[st.ID%6]
					completions = append(completions, struct {
						at float64
						id int
					}{st.Time + rt, st.ID})
				}
				completions[k] = completions[len(completions)-1]
				completions = completions[:len(completions)-1]
				k--
			}
		}
	}

	var st adaptStatusReply
	get(t, ts, "/v1/adapt", &st)
	if st.LastError != "" {
		t.Fatalf("adaptive loop failed: %s", st.LastError)
	}
	if !st.Enabled || st.Rounds < 1 {
		t.Fatalf("loop never retrained: %+v", st)
	}
	if st.Window < 48 {
		t.Fatalf("observation window not fed: %+v", st)
	}
	if st.Last == nil {
		t.Fatalf("no decision recorded: %+v", st)
	}
	if st.Promotions < 1 {
		t.Fatalf("stale policy survived the drifted flood: %+v", st)
	}
	if st.Policy == "STALE" {
		t.Fatalf("promotion did not swap the scheduler policy: %+v", st)
	}
	// The scheduler's own status agrees with the adapt view.
	var sst struct{ Policy string }
	get(t, ts, "/v1/status", &sst)
	if sst.Policy != st.Policy {
		t.Fatalf("policy views disagree: %q vs %q", sst.Policy, st.Policy)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("invariant violation: %v", err)
	}
}
