// The compact binary listener: length-prefixed record frames (see
// internal/fed: wire.go) carrying the same mutations as the HTTP/JSON
// endpoints, minus the JSON. One goroutine per connection reads frames
// through a buffered reader, applies the records through a backend
// shared with the HTTP handlers (the single server's journal path or the
// federation), and writes the framed response through a buffered writer
// that only flushes when the connection has no further request buffered
// — so a client streaming batches pays one syscall per pipeline stall,
// not one per record.

package main

import (
	"bufio"
	"net"
	"sync"

	"github.com/hpcsched/gensched/internal/durable"
	"github.com/hpcsched/gensched/internal/fed"
	"github.com/hpcsched/gensched/internal/online"
)

// binaryHandler applies one request frame's records in order and
// reports the resulting clock plus every start notification, appended to
// buf. Implemented by *server (journal path, under its mutex) and
// *fedServer (routed across shards). An error aborts the batch at the
// failing record; prior records stay applied, exactly as if they had
// been sent as separate frames.
type binaryHandler interface {
	applyWire(recs []durable.Record, buf []online.Start) (now float64, starts []online.Start, err error)
}

// applyWire implements binaryHandler on the single-engine server: every
// record runs the same apply+journal path as its HTTP equivalent, and
// the whole batch holds the mutex once.
func (sv *server) applyWire(recs []durable.Record, buf []online.Start) (float64, []online.Start, error) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	for i := range recs {
		if err := checkWireOp(recs[i].Op); err != nil {
			return sv.s.Clock(), buf, err
		}
		if recs[i].Op == durable.OpSubmit {
			if err := recs[i].Job.Validate(sv.cores); err != nil {
				return sv.s.Clock(), buf, badRequest(err)
			}
		}
		st, err := sv.applyJournal(&recs[i])
		if err != nil {
			return sv.s.Clock(), buf, err
		}
		buf = append(buf, st...) // copy out of the scheduler's scratch
	}
	return sv.s.Clock(), buf, nil
}

// checkWireOp restricts the wire to client-facing mutations: the journal
// codec can express genesis and adapt records, but those are the
// daemon's own to write.
func checkWireOp(op durable.Op) error {
	switch op {
	case durable.OpSubmit, durable.OpComplete, durable.OpAdvance, durable.OpPolicy:
		return nil
	}
	return badRequest(&wireOpError{op})
}

type wireOpError struct{ op durable.Op }

func (e *wireOpError) Error() string {
	return "op " + e.op.String() + " is not accepted over the wire"
}

// binServer owns the binary listener and its connections.
type binServer struct {
	l net.Listener
	h binaryHandler

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	stopped bool
	wg      sync.WaitGroup
}

func newBinServer(l net.Listener, h binaryHandler) *binServer {
	return &binServer{l: l, h: h, conns: make(map[net.Conn]struct{})}
}

// start launches the accept loop.
func (b *binServer) start() {
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		for {
			c, err := b.l.Accept()
			if err != nil {
				return // listener closed by stop()
			}
			b.mu.Lock()
			if b.stopped {
				b.mu.Unlock()
				_ = c.Close() // shutting down; the dial loses the race
				return
			}
			b.conns[c] = struct{}{}
			b.mu.Unlock()
			b.wg.Add(1)
			go func() {
				defer b.wg.Done()
				b.serveConn(c)
			}()
		}
	}()
}

// stop closes the listener and every connection and waits for the
// handlers to return. Idempotent; called at the start of the graceful
// drain so that once it returns, no binary mutation is in flight.
func (b *binServer) stop() {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		b.wg.Wait()
		return
	}
	b.stopped = true
	conns := make([]net.Conn, 0, len(b.conns))
	for c := range b.conns {
		conns = append(conns, c)
	}
	b.mu.Unlock()
	_ = b.l.Close() // best-effort teardown; Accept unblocks either way
	for _, c := range conns {
		_ = c.Close() // unblocks the conn's blocked Read
	}
	b.wg.Wait()
}

// serveConn runs one connection's request loop. All buffers are
// per-connection scratch reused across frames, so the steady state
// allocates nothing.
func (b *binServer) serveConn(c net.Conn) {
	defer func() {
		b.mu.Lock()
		delete(b.conns, c)
		b.mu.Unlock()
		_ = c.Close() // close errors after the loop exits carry no signal
	}()
	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 64<<10)
	var (
		frame  []byte
		recs   []durable.Record
		starts []online.Start
		resp   []byte
		out    []byte
	)
	for {
		payload, err := fed.ReadFrame(br, frame)
		if err != nil {
			return // EOF between frames is the normal hangup; mid-frame garbage also ends the conn
		}
		frame = payload
		resp = resp[:0]
		recs, err = fed.DecodeMsg(payload, recs[:0])
		if err != nil {
			// The frame itself was delimited, so the stream is still in
			// sync: report and keep serving.
			resp = fed.AppendErrResp(resp, 400, false, err.Error())
		} else {
			var now float64
			now, starts, err = b.h.applyWire(recs, starts[:0])
			if err != nil {
				resp = fed.AppendErrResp(resp, errStatus(err), errRetryable(err), err.Error())
			} else {
				resp = fed.AppendOKResp(resp, now, starts)
			}
		}
		out = fed.AppendFrame(out[:0], resp)
		if _, werr := bw.Write(out); werr != nil {
			return
		}
		// Flush only when the client has nothing further buffered: a
		// pipelined burst of frames gets one write syscall per stall.
		if br.Buffered() == 0 {
			if werr := bw.Flush(); werr != nil {
				return
			}
		}
	}
}
