package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
)

// BenchmarkScheddEvents measures the daemon's serving loop — JSON decode,
// scheduler advance+apply+flush, JSON encode — without the TCP stack: one
// op is a submit request plus a complete request against the live
// handler. The acceptance target is ≥100k events/sec on one core;
// allocs/op is dominated by net/http request plumbing and body decoding
// (the scheduler core itself is allocation-free in steady state, see
// internal/online's BenchmarkSchedulerSteadyState).
func BenchmarkScheddEvents(b *testing.B) {
	s, err := online.New(64, online.Options{Policy: sched.F1(), Backfill: sim.BackfillEASY})
	if err != nil {
		b.Fatal(err)
	}
	h := newServer(s, 64, false).handler()
	var body strings.Reader
	do := func(path, payload string) {
		body.Reset(payload)
		req := httptest.NewRequest(http.MethodPost, path, &body)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("%s: %d %s", path, w.Code, w.Body)
		}
	}
	clock := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock++
		do("/v1/submit", fmt.Sprintf(`{"id":1,"cores":8,"runtime":100,"estimate":120,"now":%g}`, clock))
		clock++
		do("/v1/complete", fmt.Sprintf(`{"id":1,"now":%g}`, clock))
	}
	b.StopTimer()
	b.ReportMetric(2, "events/op")
	if perOp := b.Elapsed().Seconds() / float64(b.N); perOp > 0 {
		b.ReportMetric(2/perOp, "events/sec")
	}
}
