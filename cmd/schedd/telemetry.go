// Telemetry surface: the Prometheus text-exposition /metrics endpoint,
// the /v1/trace decision-trace export, the per-endpoint wall-clock
// latency histograms, and optional net/http/pprof.
//
// The determinism split lives here: everything below the HTTP boundary
// (the Sink the scheduler stack writes) runs on the logical clock, and
// the only wall-clock reads are in the timed() wrapper — measured at
// the daemon edge, fed into an Edge the genschedvet detlint rule bans
// from deterministic zones. A fixed-seed workload therefore produces a
// byte-identical /v1/trace stream no matter how it was timed.

package main

import (
	"net/http"
	"net/http/pprof"
	"net/url"
	"strconv"
	"time"

	"github.com/hpcsched/gensched/internal/telemetry"
)

// recoveryInfo is how the current process came back from the data
// directory; captured at boot, reported by /v1/status.
type recoveryInfo struct {
	Recovered     bool    // state was rebuilt from disk (not a fresh directory)
	FromSnapshot  bool    // a checkpoint snapshot was the recovery base
	SnapshotSeq   uint64  // journal sequence the snapshot covered
	SnapshotClock float64 // logical clock restored from the snapshot
	Replayed      int     // journal records replayed on top
	Segments      int     // journal segments scanned
}

// edgeEndpoints is the fixed per-endpoint latency label set. /metrics,
// /v1/trace and /healthz stay untimed: scrapes and probes measuring
// themselves add noise, not signal.
var edgeEndpoints = []string{
	"submit", "complete", "advance", "policy", "adapt", "status", "metrics",
}

// enableTelemetry builds the sink and attaches it across the stack:
// scheduler, journal, and the adaptive controller if one was started
// (or recovered) before telemetry came up. Called once at boot, before
// the daemon serves; recovery replay runs before it, uninstrumented, so
// counters always describe this process's live traffic.
func (sv *server) enableTelemetry(traceCap int) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	sv.tel = telemetry.NewSink(traceCap)
	sv.s.SetTelemetry(sv.tel)
	if sv.store != nil {
		sv.store.SetTelemetry(sv.tel)
	}
	if sv.ad != nil {
		sv.ad.SetTelemetry(sv.tel)
	}
	sv.edge = telemetry.NewEdge(edgeEndpoints...)
}

// timed wraps a handler with edge latency measurement. This is the one
// place the daemon reads a wall clock for telemetry; with telemetry
// disabled (edge nil) the wrapper is a plain call.
func (sv *server) timed(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if sv.edge == nil {
			h(w, r)
			return
		}
		t0 := time.Now()
		h(w, r)
		sv.edge.Observe(name, time.Since(t0).Seconds())
	}
}

// promMetrics serves GET /metrics in the Prometheus text exposition
// format. The sink is plain single-writer state owned by the scheduler
// thread, so the gauges AND the sink render under the server mutex —
// a bounded in-memory copy, microseconds, which is the price of
// keeping the scheduler's own hooks atomic-free. The edge histograms
// are internally locked and render after the mutex is released.
func (sv *server) promMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if sv.tel == nil {
		writeErr(w, http.StatusNotFound, "telemetry is disabled (-telemetry=false)")
		return
	}
	var ew telemetry.ExpositionWriter
	sv.mu.Lock()
	st := sv.s.Status()
	ew.Gauge("gensched_clock_seconds", "Scheduler logical clock.", st.Now)
	ew.Gauge("gensched_cores", "Machine size in cores.", float64(st.Cores))
	ew.Gauge("gensched_free_cores", "Cores currently idle.", float64(st.FreeCores))
	ew.Gauge("gensched_queued_jobs", "Jobs currently waiting.", float64(st.Queued))
	ew.Gauge("gensched_running_jobs", "Jobs currently running.", float64(st.Running))
	if sv.store != nil {
		broken := 0.0
		if sv.storeErr != nil {
			broken = 1
		}
		ew.Gauge("gensched_journal_seq", "Sequence the next journal append gets.", float64(sv.store.Seq()))
		ew.Gauge("gensched_last_checkpoint_clock_seconds", "Logical clock at the last checkpoint.", sv.lastCkpt)
		ew.Gauge("gensched_store_failed", "1 when the journal has latched a write/sync failure.", broken)
	}
	telemetry.WriteSink(&ew, sv.tel)
	sv.mu.Unlock()
	sv.edge.WriteExposition(&ew)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = ew.WriteTo(w) // a scraper that hung up mid-body is its own problem
}

// parseTraceQuery validates the /v1/trace query parameters, shared by
// the single-engine and federated handlers so the two endpoints cannot
// drift. The semantics, in one place:
//
//   - sample=K keeps every K-th event by sequence number (seq%K == 0).
//     K must be a positive integer; sample=0 (and any K < 1) is rejected
//     with the same 400 on every daemon configuration.
//   - limit=N caps to the most recent N events AFTER sampling — sampling
//     first, then the recency cap — so sample=10&limit=100 means "the
//     last 100 of the 1-in-10 thinned stream", never "1 in 10 of the
//     last 100". telemetry.Tracer.Events and fed.MergedTrace both
//     implement this order, and TestTraceSampleThenLimit pins it.
//
// A non-empty errMsg is a 400 the caller must report.
func parseTraceQuery(q url.Values) (sample, limit int, format, errMsg string) {
	sample, limit = 1, 0
	if s := q.Get("sample"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			return 0, 0, "", "sample must be a positive integer"
		}
		sample = v
	}
	if s := q.Get("limit"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			return 0, 0, "", "limit must be a non-negative integer"
		}
		limit = v
	}
	format = q.Get("format")
	if format != "" && format != "jsonl" && format != "chrome" {
		return 0, 0, "", "format must be jsonl or chrome"
	}
	return sample, limit, format, ""
}

// trace serves GET /v1/trace: the decision-trace ring as JSONL (default)
// or Chrome trace-event JSON (?format=chrome), with ?sample=K keeping
// every K-th event by sequence and ?limit=N capping to the most recent
// N after sampling (see parseTraceQuery for the full contract).
func (sv *server) trace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if sv.tel == nil || sv.tel.Trace == nil {
		writeErr(w, http.StatusNotFound, "telemetry is disabled (-telemetry=false)")
		return
	}
	sample, limit, format, errMsg := parseTraceQuery(r.URL.Query())
	if errMsg != "" {
		writeErr(w, http.StatusBadRequest, errMsg)
		return
	}
	// Copy the ring under the server mutex (the tracer is single-writer
	// scheduler state), then render to the client after releasing it so
	// a slow reader never stalls scheduling.
	sv.mu.Lock()
	events := sv.tel.Trace.Events(sample, limit)
	sv.mu.Unlock()
	if format == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		_ = telemetry.WriteEventsChrome(w, events) // client went away mid-stream; nothing actionable
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	_ = telemetry.WriteEventsJSONL(w, events) // client went away mid-stream; nothing actionable
}

// registerPprof exposes net/http/pprof under /debug/pprof/ when the
// daemon was started with -pprof. Explicit registration (not the
// package's init side effect on DefaultServeMux) so the profiler is
// opt-in on the daemon's own mux; shared by the single-engine and
// federated servers.
func registerPprof(mux *http.ServeMux, on bool) {
	if !on {
		return
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
