// Command schedd serves the online scheduling subsystem over HTTP/JSON: a
// scheduler daemon that accepts job submissions and completion reports as
// they happen, answers status and metrics queries, and hot-swaps the
// queue policy without restarting — the paper's learned policies deployed
// the way a production resource manager would deploy them.
//
// # API
//
//	POST /v1/submit    {"id":1,"cores":4,"runtime":120,"estimate":150,"now":7.5}
//	POST /v1/complete  {"id":1,"now":127.5}
//	POST /v1/advance   {"now":200}
//	POST /v1/policy    {"name":"F1"}  or  {"name":"L1","expr":"log10(r)*n + 870*log10(s)"}
//	POST /v1/adapt     {"action":"start","interval":3600,...}  or  {"action":"stop"}
//	GET  /v1/adapt     adaptive-loop status (rounds, promotions, last decision)
//	GET  /v1/status
//	GET  /v1/metrics
//	GET  /v1/trace     decision trace (?format=jsonl|chrome&sample=K&limit=N)
//	GET  /metrics      Prometheus text exposition
//	GET  /healthz      503 once the journal has latched a failure
//	GET  /debug/pprof/ (with -pprof)
//
// Mutating endpoints reply {"now":..,"started":[{"id":..,"time":..,"wait":..,
// "backfilled":..},...]} — the jobs the request's scheduling pass started —
// or {"error":"..."} with a 4xx status. The clock is logical by default:
// each request carries "now" in seconds (omitted = the current clock) and
// time never goes backward. With -clock real the daemon stamps requests
// with wall time since boot instead and "now" is ignored.
//
// schedd shuts down gracefully on SIGINT/SIGTERM: the durable journal is
// flushed and closed after the final in-flight mutation (later mutations
// get 503), then in-flight requests drain before the process exits. A
// drain-time fsync failure latches the store — /healthz reports 503 for
// the rest of the grace period and the exit status is nonzero.
//
// With -shards N (N > 1) the daemon becomes a federation: N independent
// shard schedulers, each its own -cores machine with its own logical
// clock, behind a deterministic consistent-hash router with a
// least-loaded fallback. /v1/status, /v1/metrics, /metrics and /v1/trace
// merge the shards deterministically ((clock, shard, seq) order). With
// -data-dir each shard journals to <data-dir>/shard-NNNN/ and recovers
// independently on boot (a pre-federation flat layout is adopted as
// shard 0); a shard whose store fails is quarantined — its mutations
// return 503 + Retry-After while healthy shards keep serving. /v1/adapt
// remains a single-engine feature.
//
// With -binary-addr the same mutations are additionally served over a
// compact length-prefixed binary protocol (see internal/fed: wire.go)
// that amortizes syscalls by batching submits.
//
// Usage:
//
//	schedd -addr :8080 -cores 256 -policy FCFS -backfill easy -estimates
//	schedd -addr :8080 -shards 8 -cores 128 -binary-addr :8081
//	schedtest -daemon http://localhost:8080 -cores 256 -days 1   # load generator
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	gensched "github.com/hpcsched/gensched"
	"github.com/hpcsched/gensched/internal/durable"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
)

// daemonConfig is run's flag set; one struct so boot helpers and tests
// share it without a parade of positional arguments.
type daemonConfig struct {
	addr      string
	cores     int
	policy    string
	backfill  string
	estimates bool
	tau       float64
	clock     string
	check     bool
	dataDir   string  // "" = in-memory only
	fsync     int     // records per fsync batch
	ckptEvery float64 // logical seconds between checkpoints
	telemetry bool    // counters, histograms, decision trace, /metrics
	traceBuf  int     // decision-trace ring capacity in events
	pprofFlag bool    // expose net/http/pprof under /debug/pprof/

	shards     int    // federated shard count; 1 = the classic single engine
	binaryAddr string // compact binary protocol listener ("" = disabled)
	fedSeed    uint64 // router ring seed (placements are a pure function of it)
}

func main() {
	var cfg daemonConfig
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.cores, "cores", 256, "machine size")
	flag.StringVar(&cfg.policy, "policy", "FCFS", "initial queue policy (name, or an expression like 'log10(r)*n+870*log10(s)')")
	flag.StringVar(&cfg.backfill, "backfill", "easy", "backfilling: none | easy | conservative")
	flag.BoolVar(&cfg.estimates, "estimates", false, "schedule on user estimates instead of submitted runtimes")
	flag.Float64Var(&cfg.tau, "tau", 0, "bounded-slowdown constant (0 = default 10s)")
	flag.StringVar(&cfg.clock, "clock", "logical", "clock source: logical (requests carry 'now') | real (wall time)")
	flag.BoolVar(&cfg.check, "check", false, "enable runtime invariant checking (development)")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "durable state directory (empty = in-memory only; state is lost on exit)")
	flag.IntVar(&cfg.fsync, "fsync", 1, "journal records per fsync batch (1 = every mutation durable before its response)")
	flag.Float64Var(&cfg.ckptEvery, "checkpoint-interval", 3600, "logical seconds between snapshots (0 = only on shutdown)")
	flag.BoolVar(&cfg.telemetry, "telemetry", true, "enable counters, histograms, the decision trace, /metrics and /v1/trace")
	flag.IntVar(&cfg.traceBuf, "trace-buf", 4096, "decision-trace ring capacity in events")
	flag.BoolVar(&cfg.pprofFlag, "pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.IntVar(&cfg.shards, "shards", 1, "shard count: N > 1 federates N independent -cores machines behind a deterministic router (-data-dir journals per shard)")
	flag.StringVar(&cfg.binaryAddr, "binary-addr", "", "listen address for the compact binary protocol (empty = disabled)")
	flag.Uint64Var(&cfg.fedSeed, "fed-seed", 1, "seed for the federation router's hash ring")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(1)
	}
}

func run(cfg daemonConfig) error {
	p, err := resolvePolicy(cfg.policy, "")
	if err != nil {
		return err
	}
	bf, err := parseBackfill(cfg.backfill)
	if err != nil {
		return err
	}
	var realClock bool
	switch cfg.clock {
	case "logical":
	case "real":
		realClock = true
	default:
		return fmt.Errorf("unknown clock source %q", cfg.clock)
	}
	if cfg.shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", cfg.shards)
	}
	if cfg.shards > 1 {
		return runFederated(cfg, p, bf, realClock)
	}
	init := durable.InitState{
		Cores:        cfg.cores,
		Backfill:     int(bf),
		UseEstimates: cfg.estimates,
		Tau:          cfg.tau,
		PolicyName:   cfg.policy,
	}
	var srv *server
	if cfg.dataDir == "" {
		srv, err = buildServer(init, realClock, cfg.check)
	} else {
		srv, err = openDurable(cfg.dataDir, cfg.fsync, cfg.ckptEvery, init, realClock, cfg.check)
	}
	if err != nil {
		return err
	}
	if cfg.telemetry {
		// After recovery replay: the counters describe this process's
		// live traffic, while /v1/status carries the recovery provenance.
		srv.enableTelemetry(cfg.traceBuf)
	}
	srv.pprofOn = cfg.pprofFlag

	l, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		_ = srv.shutdownStore() // cleanup; the listen error is already being reported
		return err
	}
	var bin *binServer
	if cfg.binaryAddr != "" {
		bl, berr := net.Listen("tcp", cfg.binaryAddr)
		if berr != nil {
			_ = l.Close()
			_ = srv.shutdownStore()
			return berr
		}
		bin = newBinServer(bl, srv)
		bin.start()
		fmt.Fprintf(os.Stderr, "schedd: binary protocol on %s\n", bl.Addr())
	}
	fmt.Fprintf(os.Stderr, "schedd: serving %d cores under %s+%s on %s (clock: %s)\n",
		cfg.cores, p.Name(), bf, l.Addr(), cfg.clock)
	if cfg.dataDir != "" {
		fmt.Fprintf(os.Stderr, "schedd: journaling to %s (fsync every %d, checkpoint every %gs, recovered to t=%g seq=%d)\n",
			cfg.dataDir, cfg.fsync, cfg.ckptEvery, srv.s.Clock(), srv.store.Seq())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = serve(ctx, l, srv.handler(), func() error {
		// Binary connections first — their mutations share sv.mu, so once
		// the listener and conns are gone, drainStore's mutex acquisition
		// is the last word on in-flight mutations.
		if bin != nil {
			bin.stop()
		}
		return srv.drainStore()
	})
	// Safety net for the non-drain exit paths (listener error): idempotent
	// after a graceful drain.
	if serr := srv.shutdownStore(); err == nil {
		err = serr
	}
	if bin != nil {
		bin.stop()
	}
	return err
}

// serve runs the HTTP server until ctx is cancelled, then shuts down
// gracefully. Ordering is the durability contract: drain (when non-nil)
// runs FIRST — it must wait out the final in-flight mutation, refuse
// later ones, and flush+close the durable journal, latching any failure
// so /healthz turns 503 — and only then does the listener close and the
// remaining in-flight requests drain (up to a 10s grace period). A drain
// failure wins over shutdown errors and forces a nonzero exit: the
// daemon must never report "drained" with unsynced state on disk.
func serve(ctx context.Context, l net.Listener, h http.Handler, drain func() error) error {
	hs := &http.Server{
		Handler:     h,
		ReadTimeout: 30 * time.Second,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case <-ctx.Done():
		var derr error
		if drain != nil {
			derr = drain()
		}
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := hs.Shutdown(shCtx)
		if err == nil {
			<-errc // always http.ErrServerClosed after Shutdown
		}
		if derr != nil {
			return derr
		}
		return err
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// resolvePolicy resolves a policy by registry name, falling back to
// parsing it as a scoring expression; an explicit expr always parses.
func resolvePolicy(name, expr string) (sched.Policy, error) {
	if expr != "" {
		if name == "" {
			name = "CUSTOM"
		}
		return sched.ParseExpr(name, expr)
	}
	if p, err := sched.ByName(name); err == nil {
		return p, nil
	}
	if p, err := sched.ParseExpr("CUSTOM", name); err == nil {
		return p, nil
	}
	return nil, fmt.Errorf("unknown policy %q (not a registry name, not a parsable expression)", name)
}

func parseBackfill(s string) (sim.BackfillMode, error) {
	switch strings.ToLower(s) {
	case "none", "":
		return gensched.BackfillNone, nil
	case "easy", "aggressive":
		return gensched.BackfillEASY, nil
	case "conservative":
		return gensched.BackfillConservative, nil
	}
	return 0, fmt.Errorf("unknown backfill mode %q", s)
}
