package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"

	"github.com/hpcsched/gensched/internal/adaptive"
	"github.com/hpcsched/gensched/internal/durable"
)

// The /v1/adapt endpoint controls the daemon's closed-loop adaptive
// retrainer (internal/adaptive):
//
//	POST /v1/adapt {"action":"start","interval":3600,...}  attach a loop
//	POST /v1/adapt {"action":"stop"}                       detach it
//	GET  /v1/adapt                                         loop status
//
// While a loop is attached, every successful submit feeds its observation
// window, and every mutating request that moves the logical clock also
// runs any adaptation round that came due — the periodic trigger rides on
// the clock the requests already carry, so the daemon stays free of
// background goroutines and the loop stays deterministic for a given
// request stream. Promotions apply through the same policy hot-swap the
// /v1/policy endpoint uses, under the same lock.
//
// A round retrains from the observed window and shadow-evaluates the
// candidates, which costs a few hundred milliseconds at the default
// sizing (BenchmarkAdaptiveLoop); it runs on the scheduler thread — the
// request that trips an interval boundary stalls for the round, and the
// daemon serves nothing else meanwhile — so shrink tuples/trials if that
// latency spike matters.

// adaptRequest is the /v1/adapt POST body. Zero sizing fields select the
// adaptive package defaults; interval is required for "start".
type adaptRequest struct {
	Action    string  `json:"action"` // start | stop
	Window    int     `json:"window"`
	MinWindow int     `json:"min_window"`
	Interval  float64 `json:"interval"`
	MinDrift  float64 `json:"min_drift"`
	SSize     int     `json:"ssize"`
	QSize     int     `json:"qsize"`
	Tuples    int     `json:"tuples"`
	Trials    int     `json:"trials"`
	TopK      int     `json:"topk"`
	Margin    float64 `json:"margin"`
	Cooldown  float64 `json:"cooldown"`
	Workers   int     `json:"workers"`
	Seed      uint64  `json:"seed"`
}

func (sv *server) adapt(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		sv.adaptStatus(w)
	case http.MethodPost:
		sv.adaptControl(w, r)
	default:
		writeErr(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

// validateAdapt caps the sizing fields a start request may carry: the
// window is backed by a real allocation and every round runs inline
// under the server lock, so one unbounded request must not be able to
// OOM the daemon or wedge it in an hours-long round. Deliberately larger
// experiments belong in the library API, not at the network boundary.
func validateAdapt(req *adaptRequest) error {
	for _, f := range []struct {
		name string
		got  int
		max  int
	}{
		{"window", req.Window, 1 << 16},
		{"min_window", req.MinWindow, 1 << 16},
		{"tuples", req.Tuples, 64},
		{"trials", req.Trials, 1 << 16},
		{"ssize", req.SSize, 4096},
		{"qsize", req.QSize, 4096},
		{"topk", req.TopK, 32},
		{"workers", req.Workers, 256},
	} {
		if f.got < 0 || f.got > f.max {
			return fmt.Errorf("%s %d outside [0, %d]", f.name, f.got, f.max)
		}
	}
	return nil
}

func (sv *server) adaptControl(w http.ResponseWriter, r *http.Request) {
	var req adaptRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<16)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	switch req.Action {
	case "start":
		if err := validateAdapt(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		rec := durable.Record{Op: durable.OpAdaptStart, Adapt: &durable.AdaptConfig{
			Window:    req.Window,
			MinWindow: req.MinWindow,
			Interval:  req.Interval,
			MinDrift:  req.MinDrift,
			SSize:     req.SSize,
			QSize:     req.QSize,
			Tuples:    req.Tuples,
			Trials:    req.Trials,
			TopK:      req.TopK,
			Margin:    req.Margin,
			Cooldown:  req.Cooldown,
			Workers:   req.Workers,
			Seed:      req.Seed,
		}}
		sv.mu.Lock()
		_, err := sv.applyJournal(&rec)
		sv.mu.Unlock()
		if err != nil {
			writeErr(w, errStatus(err), err.Error())
			return
		}
		sv.adaptStatus(w)
	case "stop":
		rec := durable.Record{Op: durable.OpAdaptStop}
		sv.mu.Lock()
		_, err := sv.applyJournal(&rec)
		sv.mu.Unlock()
		if err != nil {
			writeErr(w, errStatus(err), err.Error())
			return
		}
		sv.adaptStatus(w)
	default:
		writeErr(w, http.StatusBadRequest, "action must be \"start\" or \"stop\"")
	}
}

// adaptStep runs any adaptation round due at the current clock and
// applies its promotion. It is called with sv.mu held, after a mutating
// request succeeded. Loop errors are recorded for /v1/adapt rather than
// failing the request that happened to trigger the round.
func (sv *server) adaptStep() {
	if sv.ad == nil {
		return
	}
	d, err := sv.ad.Tick(sv.s.Clock(), sv.s.Policy())
	if err != nil {
		sv.adErr = err
		sv.ad = nil // a broken loop must not re-fail every request
		return
	}
	if d != nil && d.Promoted {
		if err := sv.s.SetPolicy(d.Policy); err != nil {
			sv.adErr = err
		} else {
			// Keep the snapshot descriptor pointing at the live policy; a
			// restored daemon reparses the promoted expression.
			sv.policyName, sv.policyExpr = d.Policy.Name(), d.PolicyExpr
		}
	}
}

// adaptDecision is the status rendering of one adaptation round.
type adaptDecision struct {
	At            float64          `json:"at"`
	Round         int              `json:"round,omitempty"`
	Window        int              `json:"window"`
	Drift         float64          `json:"drift,omitempty"`
	Skipped       bool             `json:"skipped,omitempty"`
	Reason        string           `json:"reason"`
	Incumbent     string           `json:"incumbent"`
	IncumbentBsld float64          `json:"incumbent_bsld,omitempty"`
	Candidates    []adaptCandidate `json:"candidates,omitempty"`
	Promoted      bool             `json:"promoted"`
	PolicyExpr    string           `json:"policy_expr,omitempty"`
}

type adaptCandidate struct {
	Expr    string  `json:"expr"`
	Rank    float64 `json:"rank"`
	AveBsld float64 `json:"ave_bsld"`
}

func renderDecision(d *adaptive.Decision) *adaptDecision {
	out := &adaptDecision{
		At:            d.At,
		Round:         d.Round,
		Window:        d.Window,
		Skipped:       d.Skipped,
		Reason:        d.Reason,
		Incumbent:     d.Incumbent,
		IncumbentBsld: d.IncumbentBsld,
		Promoted:      d.Promoted,
		PolicyExpr:    d.PolicyExpr,
	}
	if !math.IsInf(d.Drift, 0) {
		out.Drift = d.Drift
	}
	for _, c := range d.Candidates {
		out.Candidates = append(out.Candidates, adaptCandidate{Expr: c.Expr, Rank: c.Rank, AveBsld: c.AveBsld})
	}
	return out
}

func (sv *server) adaptStatus(w http.ResponseWriter) {
	resp := struct {
		Enabled    bool           `json:"enabled"`
		Window     int            `json:"window,omitempty"`
		NextCheck  float64        `json:"next_check,omitempty"`
		Rounds     int            `json:"rounds"`
		Promotions int            `json:"promotions"`
		Policy     string         `json:"policy"`
		LastError  string         `json:"last_error,omitempty"`
		Last       *adaptDecision `json:"last,omitempty"`
	}{}
	sv.mu.Lock()
	resp.Policy = sv.s.Policy().Name()
	if sv.adErr != nil {
		resp.LastError = sv.adErr.Error()
	}
	if sv.ad != nil {
		resp.Enabled = true
		resp.Window = sv.ad.WindowLen()
		resp.NextCheck = sv.ad.NextCheck()
		resp.Rounds = sv.ad.Rounds()
		resp.Promotions = sv.ad.Promotions()
		if d := sv.ad.LastDecision(); d != nil {
			resp.Last = renderDecision(d)
		}
	}
	sv.mu.Unlock()
	marshalJSON(w, resp)
}
