package main

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/hpcsched/gensched/internal/durable"
)

func durableTestInit(cores int) durable.InitState {
	return durable.InitState{Cores: cores, Backfill: 1, PolicyName: "FCFS"}
}

// TestDrainRefusesLateMutationsAndClosesJournal pins the graceful-drain
// ordering: drainStore waits out in-flight mutations (it takes the same
// mutex), closes the journal after the last one, and every later
// mutation gets 503 — while /healthz stays 200, because a clean drain is
// not a store failure.
func TestDrainRefusesLateMutationsAndClosesJournal(t *testing.T) {
	dir := t.TempDir()
	sv, err := openDurable(dir, 1, 0, durableTestInit(8), false, true)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv.handler())
	defer ts.Close()
	if code, r := post(t, ts, "/v1/submit", `{"id":1,"cores":2,"runtime":50,"estimate":50}`); code != 200 {
		t.Fatalf("submit: code=%d reply=%+v", code, r)
	}
	if err := sv.drainStore(); err != nil {
		t.Fatalf("drainStore: %v", err)
	}
	code, r := post(t, ts, "/v1/submit", `{"id":2,"cores":1,"runtime":10,"estimate":10}`)
	if code != http.StatusServiceUnavailable || !strings.Contains(r.Error, "draining") {
		t.Fatalf("post-drain submit: code=%d reply=%+v, want 503 draining", code, r)
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after clean drain: %d, want 200", resp.StatusCode)
	}
	// Idempotent: the post-serve safety net must not double-close or
	// invent an error.
	if err := sv.shutdownStore(); err != nil {
		t.Fatalf("shutdownStore after drain: %v", err)
	}
	// The drain checkpointed: a reopen recovers from the snapshot with
	// zero journal replay.
	sv2, err := openDurable(dir, 1, 0, durableTestInit(8), false, true)
	if err != nil {
		t.Fatalf("reopen after drain: %v", err)
	}
	defer func() { _ = sv2.shutdownStore() }()
	if !sv2.recov.FromSnapshot || sv2.recov.Replayed != 0 {
		t.Fatalf("recovery after drain: %+v, want snapshot with 0 replayed", sv2.recov)
	}
	st := sv2.s.Status()
	if st.Submitted != 1 || st.Running != 1 {
		t.Fatalf("recovered status: %+v", st)
	}
}

// TestDrainFsyncFailureLatchesStore pins the failure half of the drain
// contract: when the final flush fails, the store latches the error —
// /healthz turns 503 for the rest of the grace window — and drainStore
// reports it instead of pretending the daemon drained cleanly.
func TestDrainFsyncFailureLatchesStore(t *testing.T) {
	dir := t.TempDir()
	sv, err := openDurable(dir, 1, 0, durableTestInit(8), false, true)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv.handler())
	defer ts.Close()
	if code, r := post(t, ts, "/v1/submit", `{"id":1,"cores":2,"runtime":50,"estimate":50}`); code != 200 {
		t.Fatalf("submit: code=%d reply=%+v", code, r)
	}
	// Yank the data directory out from under the final checkpoint.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := sv.drainStore(); err == nil {
		t.Fatal("drainStore reported a clean drain with its data directory gone")
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after failed drain: %d, want 503", resp.StatusCode)
	}
	// The latched error persists through the safety-net close: the
	// process must exit nonzero.
	if err := sv.shutdownStore(); err == nil {
		t.Fatal("shutdownStore forgot the drain failure")
	}
}

// TestServeDrainFailureForcesNonzeroExit runs the real serve loop and
// requires the drain error to surface from serve itself (the run() exit
// status), even though the HTTP listener shut down cleanly.
func TestServeDrainFailureForcesNonzeroExit(t *testing.T) {
	dir := t.TempDir()
	sv, err := openDurable(dir, 1, 0, durableTestInit(8), false, true)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, l, sv.handler(), sv.drainStore) }()
	url := "http://" + l.Addr().String()
	var lastErr error
	for i := 0; i < 50; i++ {
		resp, err := http.Post(url+"/v1/submit", "application/json",
			strings.NewReader(`{"id":1,"cores":1,"runtime":10,"estimate":10}`))
		if err == nil {
			resp.Body.Close()
			lastErr = nil
			break
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	if lastErr != nil {
		t.Fatalf("server never came up: %v", lastErr)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("serve returned nil after a failed drain; the exit status would be 0 with unsynced state")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return within 5s of cancellation")
	}
	_ = sv.shutdownStore()
}
