// Durability wiring: every mutation the daemon accepts flows through
// apply() — both live (HTTP handler → apply → journal) and at boot
// (snapshot restore → journal replay → apply). Because the two paths
// share one code path and the scheduler stack is deterministic, replay
// reconstructs the pre-crash state bit-identically; the crash-point test
// kills the journal at every record boundary and checks exactly that.

package main

import (
	"fmt"
	"net/http"
	"time"

	"github.com/hpcsched/gensched/internal/adaptive"
	"github.com/hpcsched/gensched/internal/durable"
	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/sim"
)

// apply executes one journaled operation against the live scheduler.
// Called with sv.mu held. Adaptation rounds ride on the operations that
// move the clock, exactly as they do live, so replay re-derives every
// retraining decision instead of reading it from disk.
func (sv *server) apply(rec *durable.Record) ([]online.Start, error) {
	switch rec.Op {
	case durable.OpSubmit:
		starts, err := sv.s.SubmitAt(rec.Now, rec.Job)
		if err != nil {
			return nil, err
		}
		if sv.ad != nil {
			job := rec.Job
			if job.Submit == 0 {
				job.Submit = sv.s.Clock() // the stamp SubmitAt applied
			}
			sv.ad.Observe(job)
		}
		sv.adaptStep()
		return starts, nil
	case durable.OpComplete:
		starts, err := sv.s.CompleteAt(rec.Now, rec.ID)
		if err != nil {
			return nil, err
		}
		sv.adaptStep()
		return starts, nil
	case durable.OpAdvance:
		t := rec.Now
		if c := sv.s.Clock(); t < c {
			t = c // the logical clock never moves backward
		}
		starts, err := sv.s.AdvanceTo(t)
		if err != nil {
			return nil, err
		}
		sv.adaptStep()
		return starts, nil
	case durable.OpPolicy:
		p, err := resolvePolicy(rec.Name, rec.Expr)
		if err != nil {
			return nil, badRequest(err)
		}
		if err := sv.s.SetPolicy(p); err != nil {
			return nil, err
		}
		sv.policyName, sv.policyExpr = rec.Name, rec.Expr
		return nil, nil
	case durable.OpAdaptStart:
		return nil, sv.startAdapt(rec.Adapt)
	case durable.OpAdaptStop:
		sv.ad = nil
		sv.adCfg = nil
		return nil, nil
	}
	return nil, fmt.Errorf("unexpected journal op %v", rec.Op)
}

// applyJournal is the full mutation path under the lock: durability
// gate, apply, journal, checkpoint cadence. With no -data-dir the
// journal steps are no-ops and this is just apply.
func (sv *server) applyJournal(rec *durable.Record) ([]online.Start, error) {
	if sv.draining {
		// The drain gate: once graceful shutdown has begun, the journal is
		// (or is about to be) checkpointed and closed, so a late mutation
		// must be refused rather than applied in memory only.
		return nil, httpError(http.StatusServiceUnavailable,
			fmt.Errorf("daemon is draining, refusing mutations"))
	}
	if sv.storeErr != nil {
		return nil, httpError(http.StatusInternalServerError,
			fmt.Errorf("journal failed earlier, refusing mutations: %w", sv.storeErr))
	}
	starts, err := sv.apply(rec)
	if err != nil {
		return nil, err
	}
	if err := sv.journal(rec); err != nil {
		return nil, err
	}
	sv.maybeCheckpoint()
	return starts, nil
}

// journal appends one applied record. A failure latches storeErr: the
// mutation is applied in memory but may not survive a crash, which the
// response says outright.
func (sv *server) journal(rec *durable.Record) error {
	if sv.store == nil {
		return nil
	}
	if err := sv.store.Append(rec); err != nil {
		sv.storeErr = err
		return httpError(http.StatusInternalServerError,
			fmt.Errorf("journal append failed (mutation applied but not durable): %w", err))
	}
	return nil
}

// maybeCheckpoint writes a checkpoint when the logical clock has moved
// ckptEvery past the last one. Called with sv.mu held after a
// successful mutation.
func (sv *server) maybeCheckpoint() {
	if sv.store == nil || sv.ckptEvery <= 0 {
		return
	}
	if sv.s.Clock()-sv.lastCkpt >= sv.ckptEvery {
		sv.checkpointNow()
	}
}

// checkpointNow snapshots the full scheduler state and rotates the
// journal. Failures latch storeErr rather than failing the request that
// happened to trip the cadence.
func (sv *server) checkpointNow() {
	snap, err := sv.buildSnapshot()
	if err == nil {
		err = sv.store.Checkpoint(snap)
	}
	if err != nil {
		sv.storeErr = err
		return
	}
	sv.lastCkpt = sv.s.Clock()
}

// buildSnapshot assembles the serializable image of everything the
// daemon would need to come back: engine + scheduler aggregates, the
// active policy descriptor, and the adaptive loop (config + state) if
// one is attached.
func (sv *server) buildSnapshot() (*durable.Snapshot, error) {
	snap := &durable.Snapshot{
		Init:       sv.init,
		PolicyName: sv.policyName,
		PolicyExpr: sv.policyExpr,
	}
	if err := sv.s.ExportState(&snap.Sched); err != nil {
		return nil, err
	}
	if sv.ad != nil {
		snap.Adapt = &durable.AdaptState{Config: *sv.adCfg, State: *sv.ad.ExportState()}
	}
	return snap, nil
}

// startAdapt attaches the adaptive loop described by ac. Called from
// apply with sv.mu held, both for live /v1/adapt starts and replayed
// ones.
func (sv *server) startAdapt(ac *durable.AdaptConfig) error {
	if ac == nil {
		return fmt.Errorf("adapt-start record without config")
	}
	if sv.ad != nil {
		return fmt.Errorf("adaptive loop already running; stop it first")
	}
	ctrl, err := adaptive.New(sv.adaptiveConfig(ac))
	if err != nil {
		return badRequest(err)
	}
	cfg := *ac
	sv.ad = ctrl
	sv.adCfg = &cfg
	sv.adErr = nil
	return nil
}

// adaptiveConfig expands a journaled sizing into the full adaptive
// config: machine shape from the scheduler, sizing from the record.
func (sv *server) adaptiveConfig(ac *durable.AdaptConfig) adaptive.Config {
	opt := sv.s.Options()
	return adaptive.Config{
		Cores:         sv.cores,
		Now:           sv.s.Clock(),
		Backfill:      opt.Backfill,
		BackfillOrder: opt.BackfillOrder,
		UseEstimates:  opt.UseEstimates,
		Tau:           opt.Tau,
		Window:        ac.Window,
		MinWindow:     ac.MinWindow,
		Interval:      ac.Interval,
		MinDrift:      ac.MinDrift,
		SSize:         ac.SSize,
		QSize:         ac.QSize,
		Tuples:        ac.Tuples,
		Trials:        ac.Trials,
		TopK:          ac.TopK,
		Margin:        ac.Margin,
		Cooldown:      ac.Cooldown,
		Workers:       ac.Workers,
		Seed:          ac.Seed,
		// Runs inside adaptStep, under sv.mu.
		Queue: sv.s.QueuedJobs,
		// Nil until enableTelemetry; a controller started before that
		// (recovery replay) is attached there instead.
		Telemetry: sv.tel,
	}
}

// --- boot ----------------------------------------------------------------

// buildServer constructs a fresh scheduler+server from an InitState.
func buildServer(init durable.InitState, realClock, check bool) (*server, error) {
	p, err := resolvePolicy(init.PolicyName, init.PolicyExpr)
	if err != nil {
		return nil, err
	}
	s, err := online.New(init.Cores, online.Options{
		Policy:       p,
		UseEstimates: init.UseEstimates,
		Backfill:     sim.BackfillMode(init.Backfill),
		Tau:          init.Tau,
		Check:        check,
	})
	if err != nil {
		return nil, err
	}
	sv := newServer(s, init.Cores, realClock)
	sv.init = init
	sv.policyName, sv.policyExpr = init.PolicyName, init.PolicyExpr
	return sv, nil
}

// restoreServer rebuilds the scheduler+server from a checkpoint.
func restoreServer(snap *durable.Snapshot, realClock, check bool) (*server, error) {
	p, err := resolvePolicy(snap.PolicyName, snap.PolicyExpr)
	if err != nil {
		return nil, fmt.Errorf("snapshot policy: %w", err)
	}
	s, err := online.Restore(snap.Init.Cores, online.Options{
		Policy:       p,
		UseEstimates: snap.Init.UseEstimates,
		Backfill:     sim.BackfillMode(snap.Init.Backfill),
		Tau:          snap.Init.Tau,
		Check:        check,
	}, &snap.Sched)
	if err != nil {
		return nil, err
	}
	sv := newServer(s, snap.Init.Cores, realClock)
	sv.init = snap.Init
	sv.policyName, sv.policyExpr = snap.PolicyName, snap.PolicyExpr
	if snap.Adapt != nil {
		ac := snap.Adapt.Config
		ctrl, err := adaptive.Restore(sv.adaptiveConfig(&ac), &snap.Adapt.State)
		if err != nil {
			return nil, fmt.Errorf("snapshot adaptive loop: %w", err)
		}
		sv.ad = ctrl
		sv.adCfg = &ac
	}
	return sv, nil
}

// checkInit refuses to bind a journal recorded against one machine shape
// to different flags — replaying it would produce garbage. The policy
// descriptor is exempt: the journal's history governs the active policy,
// and the -policy flag only matters for a fresh directory.
func checkInit(flags, recorded durable.InitState) error {
	type field struct {
		name string
		flag any
		rec  any
	}
	for _, f := range []field{
		{"cores", flags.Cores, recorded.Cores},
		{"backfill", flags.Backfill, recorded.Backfill},
		{"estimates", flags.UseEstimates, recorded.UseEstimates},
		{"tau", flags.Tau, recorded.Tau},
	} {
		if f.flag != f.rec {
			return fmt.Errorf("data directory was recorded with %s=%v, flags say %v", f.name, f.rec, f.flag)
		}
	}
	return nil
}

// openDurable opens the data directory and rebuilds the server from
// whatever is there: a fresh directory gets a genesis record; an
// existing one is validated against the flags, restored from its
// snapshot (if any) and replayed to the end of its journal.
func openDurable(dataDir string, syncEvery int, ckptEvery float64, init durable.InitState, realClock, check bool) (*server, error) {
	store, rec, err := durable.Open(dataDir, durable.Options{SyncEvery: syncEvery})
	if err != nil {
		return nil, err
	}
	sv, err := recoverServer(store, rec, init, realClock, check)
	if err != nil {
		_ = store.Close() // cleanup; the recovery error is already being reported
		return nil, err
	}
	sv.ckptEvery = ckptEvery
	return sv, nil
}

func recoverServer(store *durable.Store, rec *durable.Recovered, init durable.InitState, realClock, check bool) (*server, error) {
	if rec.Snapshot == nil && len(rec.Records) == 0 {
		// Fresh directory: journal the genesis record so every later boot
		// can validate its flags and replay from nothing.
		sv, err := buildServer(init, realClock, check)
		if err != nil {
			return nil, err
		}
		sv.recov.Segments = rec.Segments
		sv.store = store
		if err := store.Append(&durable.Record{Op: durable.OpInit, Init: &init}); err != nil {
			return nil, err
		}
		if err := store.Sync(); err != nil {
			return nil, err
		}
		return sv, nil
	}

	records := rec.Records
	var recInit durable.InitState
	var sv *server
	var err error
	if rec.Snapshot != nil {
		recInit = rec.Snapshot.Init
		sv, err = restoreServer(rec.Snapshot, realClock, check)
	} else {
		if records[0].Op != durable.OpInit {
			return nil, fmt.Errorf("journal does not begin with an init record")
		}
		recInit = *records[0].Init
		records = records[1:]
		sv, err = buildServer(recInit, realClock, check)
	}
	if err != nil {
		return nil, err
	}
	if err := checkInit(init, recInit); err != nil {
		return nil, err
	}
	sv.recov = recoveryInfo{
		Recovered: true,
		Replayed:  len(records),
		Segments:  rec.Segments,
	}
	if rec.Snapshot != nil {
		sv.recov.FromSnapshot = true
		sv.recov.SnapshotSeq = rec.Snapshot.Seq
		sv.recov.SnapshotClock = sv.s.Clock() // clock as restored, before replay
	}
	sv.store = store
	for i := range records {
		r := &records[i]
		if r.Op == durable.OpInit {
			return nil, fmt.Errorf("unexpected init record mid-journal")
		}
		if _, err := sv.apply(r); err != nil {
			return nil, fmt.Errorf("journal replay: record %d (%v): %w", i, r.Op, err)
		}
	}
	sv.lastCkpt = sv.s.Clock()
	if realClock {
		// Continue wall time from the recovered clock instead of
		// restarting at zero, which would stall every stamp until wall
		// time caught up with the recovered state.
		sv.epoch = time.Now().Add(-time.Duration(sv.s.Clock() * float64(time.Second)))
	}
	return sv, nil
}

// drainStore is the graceful-shutdown drain gate, invoked on
// SIGINT/SIGTERM BEFORE the HTTP listener finishes draining. Taking
// sv.mu waits out the final in-flight mutation (every mutation holds the
// mutex through apply+journal); setting draining refuses later ones with
// 503; then the journal is checkpointed, flushed and closed. Ordering is
// the point: a drain-time fsync failure latches storeErr while /healthz
// is still being served — probes see 503 for the rest of the grace
// window — and the error propagates to a nonzero exit, instead of the
// daemon reporting drained and exiting 0 with unsynced state.
func (sv *server) drainStore() error {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	sv.draining = true
	return sv.closeStoreLocked()
}

// shutdownStore checkpoints and closes the journal; the safety net for
// exit paths that never ran the drain gate (listener setup errors).
// Idempotent: after drainStore it only re-reports the latched error.
func (sv *server) shutdownStore() error {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.closeStoreLocked()
}

// closeStoreLocked writes the final checkpoint (graceful shutdowns
// recover instantly, with an empty journal) and closes the journal,
// once; every failure latches storeErr. Called with sv.mu held — the
// mutex is what orders the close after the final in-flight mutation.
func (sv *server) closeStoreLocked() error {
	if sv.store == nil {
		return nil
	}
	if sv.storeClosed {
		return sv.storeErr
	}
	sv.storeClosed = true
	if sv.storeErr == nil {
		sv.checkpointNow() // latches storeErr on failure
	}
	if cerr := sv.store.Close(); sv.storeErr == nil && cerr != nil {
		// A poisoned store reports "journal is failed" from Close; keep
		// the earlier, more precise error when there is one.
		sv.storeErr = cerr
	}
	return sv.storeErr
}
