package main

// Daemon-surface telemetry tests: the /metrics exposition is linted
// against the Prometheus text-format rules over a live scrape, /v1/trace
// round-trips the decision ring in both formats, /healthz goes non-200
// the moment the journal latches a failure, and /v1/status carries the
// recovery provenance across a restart.

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/hpcsched/gensched/internal/durable"
	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
)

// newTelemetryServer is newTestServer with telemetry enabled, returning
// the server value too so tests can reach inside.
func newTelemetryServer(t *testing.T, cores, traceCap int) (*server, *httptest.Server) {
	t.Helper()
	s, err := online.New(cores, online.Options{
		Policy:   sched.FCFS(),
		Backfill: sim.BackfillEASY,
		Check:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sv := newServer(s, cores, false)
	sv.enableTelemetry(traceCap)
	ts := httptest.NewServer(sv.handler())
	t.Cleanup(ts.Close)
	return sv, ts
}

// driveTraffic pushes the submit/backfill/complete flow from
// TestScheddSubmitCompleteFlow through the server so every telemetry
// family has something to show.
func driveTraffic(t *testing.T, ts *httptest.Server) {
	t.Helper()
	for _, req := range []struct{ path, body string }{
		{"/v1/submit", `{"id":1,"cores":3,"runtime":100,"estimate":100}`},
		{"/v1/submit", `{"id":2,"cores":4,"runtime":40,"estimate":40,"now":1}`},
		{"/v1/submit", `{"id":3,"cores":1,"runtime":10,"estimate":10,"now":2}`},
		{"/v1/complete", `{"id":3,"now":12}`},
		{"/v1/complete", `{"id":1,"now":100}`},
		{"/v1/complete", `{"id":2,"now":140}`},
	} {
		if code, r := post(t, ts, req.path, req.body); code != 200 {
			t.Fatalf("POST %s %s: code=%d reply=%+v", req.path, req.body, code, r)
		}
	}
}

func TestScheddHealthzStoreFailure(t *testing.T) {
	sv, ts := newTelemetryServer(t, 4, 64)

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy daemon: /healthz = %d, want 200", resp.StatusCode)
	}

	// Latch a journal failure: the daemon is alive but must stop taking
	// traffic, and the probe has to say so.
	sv.mu.Lock()
	sv.storeErr = errors.New("write wal-000001.log: disk gone")
	sv.mu.Unlock()

	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("failed-store daemon: /healthz = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "durable store failed") {
		t.Fatalf("/healthz body does not name the failure: %s", body)
	}
}

// statusDurable fetches /v1/status and returns its durable block.
func statusDurable(t *testing.T, ts *httptest.Server) *durableStatus {
	t.Helper()
	var st struct {
		Durable *durableStatus `json:"durable"`
	}
	get(t, ts, "/v1/status", &st)
	return st.Durable
}

func TestScheddStatusDurableProvenance(t *testing.T) {
	dir := t.TempDir()
	init := durable.InitState{Cores: 4, Backfill: int(sim.BackfillEASY), PolicyName: "FCFS"}

	// Boot 1: fresh directory. Provenance says "not recovered"; the
	// journal already holds the genesis record.
	sv, err := openDurable(dir, 1, 0, init, false, true)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv.handler())
	dur := statusDurable(t, ts)
	if dur == nil {
		t.Fatal("journaled daemon reported no durable block")
	}
	if dur.Recovered || dur.JournalSeq == 0 {
		t.Fatalf("fresh boot provenance: %+v", *dur)
	}
	driveTraffic(t, ts)
	ts.Close()
	// Graceful shutdown writes a final checkpoint.
	if err := sv.shutdownStore(); err != nil {
		t.Fatal(err)
	}

	// Boot 2: recovery from that checkpoint, empty journal tail.
	sv2, err := openDurable(dir, 1, 0, init, false, true)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(sv2.handler())
	dur = statusDurable(t, ts2)
	if dur == nil || !dur.Recovered || !dur.FromSnapshot {
		t.Fatalf("post-restart provenance: %+v", dur)
	}
	if dur.ReplayedRecords != 0 || dur.SnapshotSeq == 0 || dur.SnapshotClock != 140 {
		t.Fatalf("snapshot-only recovery provenance: %+v", *dur)
	}
	if dur.SegmentsScanned == 0 {
		t.Fatalf("recovery scanned no segments: %+v", *dur)
	}
	// More traffic lands in the journal after the snapshot...
	for _, body := range []string{
		`{"id":10,"cores":1,"runtime":5,"estimate":5,"now":150}`,
		`{"id":11,"cores":1,"runtime":5,"estimate":5,"now":151}`,
	} {
		if code, r := post(t, ts2, "/v1/submit", body); code != 200 {
			t.Fatalf("submit after recovery: code=%d reply=%+v", code, r)
		}
	}
	ts2.Close()
	// ...and this time the process dies without a checkpoint.
	if err := sv2.store.Close(); err != nil {
		t.Fatal(err)
	}

	// Boot 3: snapshot plus a journal tail to replay.
	sv3, err := openDurable(dir, 1, 0, init, false, true)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := sv3.shutdownStore(); err != nil {
			t.Error(err)
		}
	}()
	ts3 := httptest.NewServer(sv3.handler())
	defer ts3.Close()
	dur = statusDurable(t, ts3)
	if dur == nil || !dur.Recovered || !dur.FromSnapshot || dur.ReplayedRecords != 2 {
		t.Fatalf("snapshot+tail recovery provenance: %+v", dur)
	}
}

func TestScheddTraceEndpoint(t *testing.T) {
	_, ts := newTelemetryServer(t, 4, 1024)
	driveTraffic(t, ts)

	fetch := func(path string, wantCode int) []byte {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("GET %s: code=%d want %d (%s)", path, resp.StatusCode, wantCode, body)
		}
		return body
	}

	// JSONL: every line is an object with the fixed keys, sequences are
	// strictly increasing, and the drive's event kinds all appear.
	lines := strings.Split(strings.TrimSuffix(string(fetch("/v1/trace", 200)), "\n"), "\n")
	kinds := map[string]int{}
	lastSeq := -1
	for _, ln := range lines {
		var ev struct {
			Seq  *int    `json:"seq"`
			T    float64 `json:"t"`
			Kind string  `json:"kind"`
		}
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("trace line %q: %v", ln, err)
		}
		if ev.Seq == nil || *ev.Seq <= lastSeq {
			t.Fatalf("trace line %q: sequence not strictly increasing after %d", ln, lastSeq)
		}
		lastSeq = *ev.Seq
		kinds[ev.Kind]++
	}
	for _, k := range []string{"submit", "start", "backfill", "complete"} {
		if kinds[k] == 0 {
			t.Errorf("trace has no %q events; kinds seen: %v", k, kinds)
		}
	}

	// Sampling and limiting compose: at most 2 events, all with seq % 3 == 0.
	sampled := strings.TrimSuffix(string(fetch("/v1/trace?sample=3&limit=2", 200)), "\n")
	if sampled != "" {
		ls := strings.Split(sampled, "\n")
		if len(ls) > 2 {
			t.Fatalf("limit=2 returned %d lines", len(ls))
		}
		for _, ln := range ls {
			var ev struct {
				Seq int `json:"seq"`
			}
			if err := json.Unmarshal([]byte(ln), &ev); err != nil || ev.Seq%3 != 0 {
				t.Fatalf("sample=3 kept seq %d (err %v)", ev.Seq, err)
			}
		}
	}

	// Chrome format parses as one JSON document with instant events.
	var chrome struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(fetch("/v1/trace?format=chrome", 200), &chrome); err != nil {
		t.Fatalf("chrome trace: %v", err)
	}
	if len(chrome.TraceEvents) != len(lines) {
		t.Fatalf("chrome trace has %d events, JSONL had %d", len(chrome.TraceEvents), len(lines))
	}
	for _, e := range chrome.TraceEvents {
		if e.Ph != "i" {
			t.Fatalf("chrome event %+v is not an instant event", e)
		}
	}

	fetch("/v1/trace?sample=0", http.StatusBadRequest)
	fetch("/v1/trace?limit=-1", http.StatusBadRequest)
	fetch("/v1/trace?format=svg", http.StatusBadRequest)

	// Telemetry off: the endpoint does not exist, and neither does /metrics.
	bare := newTestServer(t, 4)
	resp, err := bare.Client().Get(bare.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled telemetry: /v1/trace = %d, want 404", resp.StatusCode)
	}
	resp, err = bare.Client().Get(bare.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled telemetry: /metrics = %d, want 404", resp.StatusCode)
	}
}

// --- Prometheus text-exposition lint ------------------------------------

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe      = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
	helpRe       = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.+)$`)
	typeRe       = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
)

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// lintExposition is a hand-rolled checker for the Prometheus text
// exposition format 0.0.4, strict about the rules a real scraper relies
// on: names and labels well-formed, HELP/TYPE once per family and before
// its samples, families contiguous, histogram buckets cumulative with
// le="+Inf" equal to _count, and _sum/_count present per series.
func lintExposition(t *testing.T, body string) map[string][]promSample {
	t.Helper()
	types := map[string]string{}
	helps := map[string]bool{}
	samples := map[string][]promSample{}
	var familyOrder []string
	closed := map[string]bool{} // families that may not reappear

	family := func(name string) string {
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name && types[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		return base
	}
	openFamily := func(fam string) {
		if closed[fam] {
			t.Fatalf("family %q reappears after another family started", fam)
		}
		if len(familyOrder) > 0 && familyOrder[len(familyOrder)-1] == fam {
			return
		}
		for _, f := range familyOrder {
			closed[f] = true
		}
		if closed[fam] {
			t.Fatalf("family %q reappears after another family started", fam)
		}
		familyOrder = append(familyOrder, fam)
	}

	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if m := helpRe.FindStringSubmatch(line); m != nil {
			if helps[m[1]] {
				t.Fatalf("duplicate HELP for %q", m[1])
			}
			helps[m[1]] = true
			openFamily(m[1])
			continue
		}
		if m := typeRe.FindStringSubmatch(line); m != nil {
			if _, dup := types[m[1]]; dup {
				t.Fatalf("duplicate TYPE for %q", m[1])
			}
			if len(samples[m[1]]) > 0 {
				t.Fatalf("TYPE for %q after its samples", m[1])
			}
			types[m[1]] = m[2]
			openFamily(m[1])
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("malformed comment line: %q", line)
		}

		// Sample line: name[{labels}] value
		labels := map[string]string{}
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.IndexByte(line, '}')
			if j < i {
				t.Fatalf("malformed sample line: %q", line)
			}
			name := line[:i]
			for _, pair := range splitLabels(line[i+1 : j]) {
				m := labelRe.FindStringSubmatch(pair)
				if m == nil {
					t.Fatalf("malformed label %q in line %q", pair, line)
				}
				if _, dup := labels[m[1]]; dup {
					t.Fatalf("duplicate label %q in line %q", m[1], line)
				}
				labels[m[1]] = m[2]
			}
			line = name + line[j+1:]
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("sample line must be `name value`: %q", fields)
		}
		name := fields[0]
		if !metricNameRe.MatchString(name) {
			t.Fatalf("bad metric name %q", name)
		}
		val, err := parsePromValue(fields[1])
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", fields, err)
		}
		fam := family(name)
		if types[fam] == "" {
			t.Fatalf("sample %q has no TYPE for family %q", name, fam)
		}
		if !helps[fam] {
			t.Fatalf("sample %q has no HELP for family %q", name, fam)
		}
		openFamily(fam)
		samples[fam] = append(samples[fam], promSample{name: name, labels: labels, value: val})
	}

	// Histogram-specific rules, per label set (ignoring le).
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		type series struct {
			buckets []promSample
			sum     *promSample
			count   *promSample
		}
		bySeries := map[string]*series{}
		keyOf := func(s promSample) string {
			ks := make([]string, 0, len(s.labels))
			for k, v := range s.labels {
				if k != "le" {
					ks = append(ks, k+"="+v)
				}
			}
			sort.Strings(ks)
			return strings.Join(ks, ",")
		}
		for i := range samples[fam] {
			s := samples[fam][i]
			sr := bySeries[keyOf(s)]
			if sr == nil {
				sr = &series{}
				bySeries[keyOf(s)] = sr
			}
			switch s.name {
			case fam + "_bucket":
				sr.buckets = append(sr.buckets, s)
			case fam + "_sum":
				sr.sum = &samples[fam][i]
			case fam + "_count":
				sr.count = &samples[fam][i]
			default:
				t.Fatalf("histogram %q has stray sample %q", fam, s.name)
			}
		}
		if len(bySeries) == 0 {
			t.Fatalf("histogram %q has no series", fam)
		}
		for key, sr := range bySeries {
			if sr.sum == nil || sr.count == nil {
				t.Fatalf("histogram %q series %q lacks _sum or _count", fam, key)
			}
			if len(sr.buckets) == 0 {
				t.Fatalf("histogram %q series %q has no buckets", fam, key)
			}
			prevLe := -1.0
			prevCum := -1.0
			for _, b := range sr.buckets {
				le, err := parsePromValue(b.labels["le"])
				if err != nil {
					t.Fatalf("histogram %q: bad le %q", fam, b.labels["le"])
				}
				if le <= prevLe {
					t.Fatalf("histogram %q series %q: le not increasing (%v after %v)", fam, key, le, prevLe)
				}
				if b.value < prevCum {
					t.Fatalf("histogram %q series %q: bucket counts not cumulative (%v after %v)", fam, key, b.value, prevCum)
				}
				prevLe, prevCum = le, b.value
			}
			last := sr.buckets[len(sr.buckets)-1]
			if last.labels["le"] != "+Inf" {
				t.Fatalf("histogram %q series %q: last bucket le=%q, want +Inf", fam, key, last.labels["le"])
			}
			if last.value != sr.count.value {
				t.Fatalf("histogram %q series %q: +Inf bucket %v != _count %v", fam, key, last.value, sr.count.value)
			}
		}
	}
	return samples
}

// splitLabels splits `a="x",b="y"` on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// parsePromValue parses a sample value; strconv accepts the +Inf/-Inf/
// NaN literals the format allows.
func parsePromValue(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}

func TestScheddMetricsExpositionLint(t *testing.T) {
	_, ts := newTelemetryServer(t, 4, 1024)
	driveTraffic(t, ts)
	// Cold-path reads travel the timed() wrapper too.
	var st struct{}
	get(t, ts, "/v1/status", &st)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: code=%d body=%s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics Content-Type %q is not text exposition 0.0.4", ct)
	}

	samples := lintExposition(t, string(body))

	// The families the README documents must be present with live values.
	want := func(fam string) []promSample {
		t.Helper()
		ss := samples[fam]
		if len(ss) == 0 {
			t.Fatalf("family %q missing from scrape", fam)
		}
		return ss
	}
	if v := want("gensched_jobs_submitted_total")[0].value; v != 3 {
		t.Errorf("gensched_jobs_submitted_total = %v, want 3", v)
	}
	if v := want("gensched_jobs_completed_total")[0].value; v != 3 {
		t.Errorf("gensched_jobs_completed_total = %v, want 3", v)
	}
	if v := want("gensched_jobs_backfilled_total")[0].value; v != 1 {
		t.Errorf("gensched_jobs_backfilled_total = %v, want 1", v)
	}
	want("gensched_clock_seconds")
	want("gensched_queued_jobs")
	want("gensched_job_wait_seconds")
	want("gensched_job_bounded_slowdown")
	want("gensched_queue_depth")
	want("gensched_trace_events_total")

	// Edge latency histograms carry the endpoint label and have seen the
	// driven requests.
	var submitCount float64
	for _, s := range want("gensched_http_request_duration_seconds") {
		if s.name == "gensched_http_request_duration_seconds_count" && s.labels["endpoint"] == "submit" {
			submitCount = s.value
		}
	}
	if submitCount != 3 {
		t.Errorf("edge histogram saw %v submits, want 3", submitCount)
	}

	// A method other than GET is rejected.
	postResp, err := ts.Client().Post(ts.URL+"/metrics", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, postResp.Body)
	_ = postResp.Body.Close()
	if postResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", postResp.StatusCode)
	}
}
