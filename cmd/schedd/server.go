package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/hpcsched/gensched/internal/adaptive"
	"github.com/hpcsched/gensched/internal/durable"
	"github.com/hpcsched/gensched/internal/fed"
	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/telemetry"
	"github.com/hpcsched/gensched/internal/workload"
)

// server wraps one online.Scheduler behind HTTP handlers. One mutex
// serializes every scheduler interaction; responses are rendered into
// pooled buffers while the lock is held (the scheduler's start slices are
// scratch) and written after it is released, so a slow client never
// stalls the scheduling core.
//
// The steady-state hot path allocates only what request decoding needs:
// scheduler operations are allocation-free and the response bytes come
// from the pool.
type server struct {
	mu        sync.Mutex
	s         *online.Scheduler
	cores     int
	realClock bool
	epoch     time.Time

	// ad is the attached adaptive retraining loop, if /v1/adapt started
	// one (see adapt.go); adErr records its last failure; adCfg is the
	// journaled sizing that started the loop (carried into snapshots).
	// All guarded by mu like every other scheduler interaction.
	ad    *adaptive.Controller
	adErr error
	adCfg *durable.AdaptConfig

	// Durability (see durable.go). store is nil without -data-dir.
	// policyName/policyExpr track the descriptor of the active policy so
	// a snapshot can rebuild it through resolvePolicy. storeErr latches
	// the first journal failure: the in-memory state is then ahead of the
	// durable state, so further mutations are refused rather than
	// widening the gap.
	store       *durable.Store
	storeErr    error
	storeClosed bool // the journal was checkpointed and closed (shutdown ran)
	draining    bool // SIGTERM drain began: refuse new mutations with 503
	init        durable.InitState
	policyName  string
	policyExpr  string
	ckptEvery   float64 // logical seconds between checkpoints (0 = off)
	lastCkpt    float64

	// Telemetry (see telemetry.go). tel instruments the scheduler stack
	// on the logical clock; edge holds the wall-clock per-endpoint
	// latency histograms fed only at the HTTP boundary; recov is the
	// recovery provenance /v1/status reports. tel and edge are set once
	// by enableTelemetry before the daemon serves, never swapped after.
	tel     *telemetry.Sink
	edge    *telemetry.Edge
	recov   recoveryInfo
	pprofOn bool

	bufs sync.Pool // *[]byte response buffers
}

func newServer(s *online.Scheduler, cores int, realClock bool) *server {
	return &server{
		s:         s,
		cores:     cores,
		realClock: realClock,
		epoch:     time.Now(),
		bufs:      sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }},
	}
}

// statusError pins an HTTP status to an error. Handler errors default to
// 409 Conflict (the request was well-formed but the scheduler state
// refuses it: duplicate ID, backward clock, loop already running);
// validation failures wrap in 400 via badRequest.
type statusError struct {
	code int
	err  error
}

func (e *statusError) Error() string { return e.err.Error() }
func (e *statusError) Unwrap() error { return e.err }

func httpError(code int, err error) error { return &statusError{code: code, err: err} }
func badRequest(err error) error          { return httpError(http.StatusBadRequest, err) }

// errStatus maps a handler error to its HTTP status. Federation
// degradation errors carry their own mapping: a quarantined shard or a
// drain in progress refuses before applying (503, retryable), while a
// journal failure after the mutation applied is a 500, exactly like the
// single engine's latched-store refusal.
func errStatus(err error) int {
	var se *statusError
	if errors.As(err, &se) {
		return se.code
	}
	var down *fed.ShardDownError
	if errors.As(err, &down) || errors.Is(err, fed.ErrDraining) {
		return http.StatusServiceUnavailable
	}
	var broken *fed.ShardBrokenError
	if errors.As(err, &broken) {
		return http.StatusInternalServerError
	}
	return http.StatusConflict
}

// retryAfterSecs is the Retry-After value on every retryable 503: long
// enough that a polite client's backoff dominates, short enough that a
// drain-then-restart rolls through quickly.
const retryAfterSecs = "1"

// errRetryable reports whether a handler error is a refused-before-apply
// condition the client may simply resend: the fed package's retryable
// set, plus any 503-classed statusError (drain in progress, shutdown).
func errRetryable(err error) bool {
	if fed.Retryable(err) {
		return true
	}
	var se *statusError
	return errors.As(err, &se) && se.code == http.StatusServiceUnavailable
}

// writeHandlerErr renders a handler error, attaching Retry-After to
// retryable refusals so polite clients back off instead of hammering a
// draining or degraded daemon.
func writeHandlerErr(w http.ResponseWriter, err error) {
	if errRetryable(err) {
		w.Header().Set("Retry-After", retryAfterSecs)
	}
	writeErr(w, errStatus(err), err.Error())
}

func (sv *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/submit", sv.timed("submit", sv.post(sv.submit)))
	mux.HandleFunc("/v1/complete", sv.timed("complete", sv.post(sv.complete)))
	mux.HandleFunc("/v1/advance", sv.timed("advance", sv.post(sv.advance)))
	mux.HandleFunc("/v1/policy", sv.timed("policy", sv.post(sv.policy)))
	mux.HandleFunc("/v1/adapt", sv.timed("adapt", sv.adapt))
	mux.HandleFunc("/v1/status", sv.timed("status", sv.get(sv.status)))
	mux.HandleFunc("/v1/metrics", sv.timed("metrics", sv.get(sv.metrics)))
	mux.HandleFunc("/v1/trace", sv.trace)
	mux.HandleFunc("/metrics", sv.promMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			writeErr(w, http.StatusMethodNotAllowed, "GET or HEAD only")
			return
		}
		// A daemon whose journal has failed is alive but must not take
		// traffic: its memory is ahead of disk and every further mutation
		// is refused with a 500. Report non-200 so a load balancer drains
		// it instead of routing submits into guaranteed failures.
		sv.mu.Lock()
		err := sv.storeErr
		sv.mu.Unlock()
		if err != nil {
			w.Header().Set("Retry-After", retryAfterSecs)
			writeErr(w, http.StatusServiceUnavailable, "durable store failed: "+err.Error())
			return
		}
		_, _ = w.Write([]byte("ok\n")) // a probe that hung up is its own problem
	})
	registerPprof(mux, sv.pprofOn)
	return mux
}

// request is the body every mutating endpoint accepts; endpoints read the
// fields they need. Now is a pointer so an explicit "now":0 — a real
// instant on the logical clock — is distinguishable from an omitted
// field.
type request struct {
	ID       int      `json:"id"`
	Cores    int      `json:"cores"`
	Runtime  float64  `json:"runtime"`
	Estimate float64  `json:"estimate"`
	Submit   float64  `json:"submit"`
	Now      *float64 `json:"now"`
	Name     string   `json:"name"`
	Expr     string   `json:"expr"`
}

func (sv *server) post(h func(http.ResponseWriter, *request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		if err := r.Context().Err(); err != nil {
			// Shutting down or the client is gone: say so rather than
			// letting net/http emit an empty 200 for an unapplied mutation.
			writeErr(w, http.StatusServiceUnavailable, "request cancelled before processing")
			return
		}
		var req request
		r.Body = http.MaxBytesReader(w, r.Body, 1<<16)
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		if err := h(w, &req); err != nil {
			writeHandlerErr(w, err)
		}
	}
}

func (sv *server) get(h func(http.ResponseWriter)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		h(w)
	}
}

// now resolves the effective clock for a request: wall time since boot
// under -clock real, the request's "now" (never backward; omitted means
// "at the current clock", and an explicit 0 IS instant zero) under the
// logical clock. Called with sv.mu held — it reads the clock.
func (sv *server) now(req *request) float64 {
	if sv.realClock {
		return time.Since(sv.epoch).Seconds()
	}
	if req.Now != nil {
		return *req.Now
	}
	if req.Submit > 0 {
		return req.Submit
	}
	return sv.s.Clock()
}

// mutate runs one mutating operation through the full path — build its
// journal record under the lock (the resolved clock lives in the
// record), apply, journal, checkpoint if due — and renders the start
// notifications. The op must leave the clock untouched when it fails
// (the online composite operations guarantee this), so a rejected
// request can never wedge the stream by stranding the clock in the
// future.
func (sv *server) mutate(w http.ResponseWriter, build func() durable.Record) error {
	bp := sv.bufs.Get().(*[]byte)
	buf := append((*bp)[:0], `{"started":[`...)
	sv.mu.Lock()
	rec := build()
	starts, err := sv.applyJournal(&rec)
	if err == nil {
		n := 0
		buf = appendStarts(buf, &n, starts)
		buf = append(buf, `],"now":`...)
		buf = strconv.AppendFloat(buf, sv.s.Clock(), 'g', -1, 64)
		buf = append(buf, '}', '\n')
	}
	sv.mu.Unlock()
	if err == nil {
		writeJSON(w, buf)
	}
	*bp = buf
	sv.bufs.Put(bp)
	return err
}

func (sv *server) submit(w http.ResponseWriter, req *request) error {
	job := workload.Job{
		ID:       req.ID,
		Submit:   req.Submit,
		Runtime:  req.Runtime,
		Estimate: req.Estimate,
		Cores:    req.Cores,
	}
	// Shape problems — nonpositive cores or runtime, oversized for the
	// platform — are the client's fault: 400, before anything mutates.
	// What remains for SubmitAt are state conflicts (duplicate ID, future
	// submit), which stay 409.
	if err := job.Validate(sv.cores); err != nil {
		return badRequest(err)
	}
	return sv.mutate(w, func() durable.Record {
		return durable.Record{Op: durable.OpSubmit, Now: sv.now(req), Job: job}
	})
}

func (sv *server) complete(w http.ResponseWriter, req *request) error {
	return sv.mutate(w, func() durable.Record {
		return durable.Record{Op: durable.OpComplete, Now: sv.now(req), ID: req.ID}
	})
}

func (sv *server) advance(w http.ResponseWriter, req *request) error {
	return sv.mutate(w, func() durable.Record {
		return durable.Record{Op: durable.OpAdvance, Now: sv.now(req)}
	})
}

func (sv *server) policy(w http.ResponseWriter, req *request) error {
	p, err := resolvePolicy(req.Name, req.Expr)
	if err != nil {
		return badRequest(err)
	}
	rec := durable.Record{Op: durable.OpPolicy, Name: req.Name, Expr: req.Expr}
	sv.mu.Lock()
	_, err = sv.applyJournal(&rec)
	sv.mu.Unlock()
	if err != nil {
		return err
	}
	writeJSON(w, []byte(`{"policy":`+strconv.Quote(p.Name())+"}\n"))
	return nil
}

// status and metrics are occasional diagnostics, not the hot path, so
// they go through encoding/json on tagged structs — no hand-maintained
// field lists to drift from online.Status/Metrics.

// durableStatus is the recovery-provenance block /v1/status reports for
// a journaled daemon: where the journal stands now, and how the current
// process came back (snapshot vs replay) — previously invisible after a
// crash-restart.
type durableStatus struct {
	JournalSeq          uint64  `json:"journal_seq"`
	LastCheckpointClock float64 `json:"last_checkpoint_clock"`
	Recovered           bool    `json:"recovered"`
	FromSnapshot        bool    `json:"from_snapshot,omitempty"`
	SnapshotSeq         uint64  `json:"snapshot_seq,omitempty"`
	SnapshotClock       float64 `json:"snapshot_clock,omitempty"`
	ReplayedRecords     int     `json:"replayed_records,omitempty"`
	SegmentsScanned     int     `json:"segments_scanned,omitempty"`
	StoreError          string  `json:"store_error,omitempty"`
}

func (sv *server) status(w http.ResponseWriter) {
	sv.mu.Lock()
	st := sv.s.Status()
	err := sv.s.Err()
	var dur *durableStatus
	if sv.store != nil {
		dur = &durableStatus{
			JournalSeq:          sv.store.Seq(),
			LastCheckpointClock: sv.lastCkpt,
			Recovered:           sv.recov.Recovered,
			FromSnapshot:        sv.recov.FromSnapshot,
			SnapshotSeq:         sv.recov.SnapshotSeq,
			SnapshotClock:       sv.recov.SnapshotClock,
			ReplayedRecords:     sv.recov.Replayed,
			SegmentsScanned:     sv.recov.Segments,
		}
		if sv.storeErr != nil {
			dur.StoreError = sv.storeErr.Error()
		}
	}
	sv.mu.Unlock()
	resp := struct {
		Now                float64        `json:"now"`
		Cores              int            `json:"cores"`
		FreeCores          int            `json:"free_cores"`
		Queued             int            `json:"queued"`
		Running            int            `json:"running"`
		Submitted          int            `json:"submitted"`
		Completed          int            `json:"completed"`
		Policy             string         `json:"policy"`
		InvariantViolation string         `json:"invariant_violation,omitempty"`
		Durable            *durableStatus `json:"durable,omitempty"`
	}{
		Now: st.Now, Cores: st.Cores, FreeCores: st.FreeCores,
		Queued: st.Queued, Running: st.Running,
		Submitted: st.Submitted, Completed: st.Completed, Policy: st.Policy,
		Durable: dur,
	}
	if err != nil {
		resp.InvariantViolation = err.Error()
	}
	marshalJSON(w, resp)
}

func (sv *server) metrics(w http.ResponseWriter) {
	sv.mu.Lock()
	m := sv.s.Metrics()
	sv.mu.Unlock()
	marshalJSON(w, struct {
		Submitted   int     `json:"submitted"`
		Completed   int     `json:"completed"`
		Backfilled  int     `json:"backfilled"`
		MaxQueueLen int     `json:"max_queue_len"`
		AveBsld     float64 `json:"ave_bsld"`
		MeanWait    float64 `json:"mean_wait"`
		MaxBSLD     float64 `json:"max_bsld"`
		MaxWait     float64 `json:"max_wait"`
		Utilization float64 `json:"utilization"`
	}{
		Submitted: m.Submitted, Completed: m.Completed, Backfilled: m.Backfilled,
		MaxQueueLen: m.MaxQueueLen, AveBsld: m.AveBsld, MeanWait: m.MeanWait,
		MaxBSLD: m.MaxBSLD, MaxWait: m.MaxWait, Utilization: m.Utilization,
	})
}

// marshalJSON renders a cold-path response through encoding/json.
func marshalJSON(w http.ResponseWriter, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, append(buf, '\n'))
}

// appendStarts renders start notifications into the response buffer.
func appendStarts(buf []byte, n *int, starts []online.Start) []byte {
	for _, st := range starts {
		if *n > 0 {
			buf = append(buf, ',')
		}
		*n++
		buf = append(buf, `{"id":`...)
		buf = strconv.AppendInt(buf, int64(st.ID), 10)
		buf = append(buf, `,"time":`...)
		buf = strconv.AppendFloat(buf, st.Time, 'g', -1, 64)
		buf = append(buf, `,"wait":`...)
		buf = strconv.AppendFloat(buf, st.Wait, 'g', -1, 64)
		buf = append(buf, `,"backfilled":`...)
		buf = strconv.AppendBool(buf, st.Backfilled)
		buf = append(buf, '}')
	}
	return buf
}

// Response-body write errors mean the client went away mid-reply; the
// mutation (if any) already applied and there is nothing actionable
// server-side, so the discard is deliberate and explicit.

func writeJSON(w http.ResponseWriter, buf []byte) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write([]byte(`{"error":` + strconv.Quote(msg) + "}\n"))
}
