package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
)

func newTestServer(t *testing.T, cores int) *httptest.Server {
	t.Helper()
	s, err := online.New(cores, online.Options{
		Policy:   sched.FCFS(),
		Backfill: sim.BackfillEASY,
		Check:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(s, cores, false).handler())
	t.Cleanup(ts.Close)
	return ts
}

type reply struct {
	Now     float64 `json:"now"`
	Policy  string  `json:"policy"`
	Error   string  `json:"error"`
	Started []struct {
		ID         int     `json:"id"`
		Time       float64 `json:"time"`
		Wait       float64 `json:"wait"`
		Backfilled bool    `json:"backfilled"`
	} `json:"started"`
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, reply) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var r reply
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatalf("%s: decoding reply: %v", path, err)
	}
	return resp.StatusCode, r
}

func get(t *testing.T, ts *httptest.Server, path string, into any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
}

func TestScheddSubmitCompleteFlow(t *testing.T) {
	ts := newTestServer(t, 4)

	code, r := post(t, ts, "/v1/submit", `{"id":1,"cores":3,"runtime":100,"estimate":100}`)
	if code != 200 || len(r.Started) != 1 || r.Started[0].ID != 1 {
		t.Fatalf("submit 1: code=%d reply=%+v", code, r)
	}
	// Job 2 wants the whole machine: queued as the blocked head.
	code, r = post(t, ts, "/v1/submit", `{"id":2,"cores":4,"runtime":40,"estimate":40,"now":1}`)
	if code != 200 || len(r.Started) != 0 || r.Now != 1 {
		t.Fatalf("submit 2: code=%d reply=%+v", code, r)
	}
	// Job 3 is small and short: backfills beside job 1 at t=2.
	code, r = post(t, ts, "/v1/submit", `{"id":3,"cores":1,"runtime":10,"estimate":10,"now":2}`)
	if code != 200 || len(r.Started) != 1 || r.Started[0].ID != 3 || !r.Started[0].Backfilled {
		t.Fatalf("submit 3: code=%d reply=%+v", code, r)
	}

	var st struct {
		Queued, Running, Completed int
		Policy                     string
	}
	get(t, ts, "/v1/status", &st)
	if st.Running != 2 || st.Queued != 1 || st.Policy != "FCFS" {
		t.Fatalf("status: %+v", st)
	}

	// Complete 3 and 1; the head (2) starts once the machine can hold it.
	if code, r = post(t, ts, "/v1/complete", `{"id":3,"now":12}`); code != 200 || len(r.Started) != 0 {
		t.Fatalf("complete 3: code=%d reply=%+v", code, r)
	}
	if code, r = post(t, ts, "/v1/complete", `{"id":1,"now":100}`); code != 200 ||
		len(r.Started) != 1 || r.Started[0].ID != 2 || r.Started[0].Wait != 99 {
		t.Fatalf("complete 1: code=%d reply=%+v", code, r)
	}
	if code, r = post(t, ts, "/v1/complete", `{"id":2,"now":140}`); code != 200 {
		t.Fatalf("complete 2: code=%d reply=%+v", code, r)
	}

	var m struct {
		Completed  int     `json:"completed"`
		Backfilled int     `json:"backfilled"`
		AveBsld    float64 `json:"ave_bsld"`
	}
	get(t, ts, "/v1/metrics", &m)
	if m.Completed != 3 || m.Backfilled != 1 || m.AveBsld <= 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestScheddErrors(t *testing.T) {
	ts := newTestServer(t, 4)
	if code, r := post(t, ts, "/v1/submit", `{"id":1,"cores":9,"runtime":10}`); code != http.StatusBadRequest || r.Error == "" {
		t.Errorf("oversized job: code=%d reply=%+v", code, r)
	}
	if code, _ := post(t, ts, "/v1/submit", `{"id":1,"cores":1,"runtime":10}`); code != 200 {
		t.Fatalf("submit: code=%d", code)
	}
	if code, r := post(t, ts, "/v1/submit", `{"id":1,"cores":1,"runtime":10}`); code != http.StatusConflict ||
		!strings.Contains(r.Error, "already active") {
		t.Errorf("duplicate: code=%d reply=%+v", code, r)
	}
	if code, r := post(t, ts, "/v1/complete", `{"id":77}`); code != http.StatusConflict ||
		!strings.Contains(r.Error, "not active") {
		t.Errorf("unknown completion: code=%d reply=%+v", code, r)
	}
	if code, _ := post(t, ts, "/v1/submit", `{not json`); code != http.StatusBadRequest {
		t.Errorf("bad body: code=%d", code)
	}
	// A rejected request must not advance the clock: after a typo'd
	// completion far in the future, a submit at the present still works.
	if code, _ := post(t, ts, "/v1/complete", `{"id":999,"now":1e9}`); code != http.StatusConflict {
		t.Fatal("expected rejection")
	}
	if code, r := post(t, ts, "/v1/submit", `{"id":2,"cores":1,"runtime":10,"now":5}`); code != 200 || r.Now != 5 {
		t.Errorf("clock wedged by rejected request: code=%d reply=%+v", code, r)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/submit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on POST endpoint: code=%d", resp.StatusCode)
	}
	if code, r := post(t, ts, "/v1/policy", `{"name":"NOPE?!"}`); code != http.StatusBadRequest || r.Error == "" {
		t.Errorf("unknown policy: code=%d reply=%+v", code, r)
	}
}

func TestScheddPolicySwap(t *testing.T) {
	ts := newTestServer(t, 1)
	post(t, ts, "/v1/submit", `{"id":1,"cores":1,"runtime":100,"estimate":100}`)
	post(t, ts, "/v1/submit", `{"id":2,"cores":1,"runtime":90,"estimate":90,"now":1}`)
	post(t, ts, "/v1/submit", `{"id":3,"cores":1,"runtime":5,"estimate":5,"now":2}`)

	// Swap to a learned policy shipped as an expression (an area-ordered
	// fit: r·n, no submit term).
	code, r := post(t, ts, "/v1/policy", `{"name":"L1","expr":"r * n + 0*log10(s)"}`)
	if code != 200 || r.Policy != "L1" {
		t.Fatalf("policy swap: code=%d reply=%+v", code, r)
	}
	var st struct{ Policy string }
	get(t, ts, "/v1/status", &st)
	if st.Policy != "L1" {
		t.Fatalf("status after swap: %+v", st)
	}
	// Under the r·n order the 5s job ranks before the 90s job; FCFS would
	// have picked the 90s one.
	code, r = post(t, ts, "/v1/complete", `{"id":1,"now":100}`)
	if code != 200 || len(r.Started) != 1 || r.Started[0].ID != 3 {
		t.Fatalf("post-swap pass: code=%d reply=%+v", code, r)
	}
}

func TestScheddAdvanceEndpointFlushesPendingPass(t *testing.T) {
	ts := newTestServer(t, 2)
	post(t, ts, "/v1/submit", `{"id":1,"cores":2,"runtime":50,"estimate":50}`)
	post(t, ts, "/v1/complete", `{"id":1,"now":50}`)
	// Submit at the completion instant: the pass is pending until advance.
	code, r := post(t, ts, "/v1/advance", `{"now":60}`)
	if code != 200 || r.Now != 60 {
		t.Fatalf("advance: code=%d reply=%+v", code, r)
	}
	var st struct{ Completed int }
	get(t, ts, "/v1/status", &st)
	if st.Completed != 1 {
		t.Fatalf("status: %+v", st)
	}
}

// TestScheddGracefulShutdown boots the real serve loop on an ephemeral
// port, verifies it answers, cancels the context (the SIGTERM path) and
// requires a clean drain.
func TestScheddGracefulShutdown(t *testing.T) {
	s, err := online.New(8, online.Options{Policy: sched.FCFS()})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	srv := newServer(s, 64, false)
	go func() { done <- serve(ctx, l, srv.handler(), srv.drainStore) }()

	url := fmt.Sprintf("http://%s", l.Addr())
	var lastErr error
	for i := 0; i < 50; i++ { // wait for the listener to come up
		resp, err := http.Post(url+"/v1/submit", "application/json",
			strings.NewReader(`{"id":1,"cores":1,"runtime":10}`))
		if err == nil {
			resp.Body.Close()
			lastErr = nil
			break
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	if lastErr != nil {
		t.Fatalf("server never came up: %v", lastErr)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after shutdown, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not drain within 5s of cancellation")
	}
	// The port is released: requests now fail.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("server still answering after shutdown")
	}
}

func TestResolvePolicy(t *testing.T) {
	for _, tc := range []struct {
		name, expr, want string
	}{
		{"FCFS", "", "FCFS"},
		{"EASY", "", "FCFS"}, // paper alias
		{"", "sqrt(r)*n + 1*log10(s)", "CUSTOM"},
		{"L9", "r*n + 5e5*log10(s)", "L9"},
		{"log10(r)*n + 870*log10(s)", "", "CUSTOM"}, // bare expression as name
	} {
		p, err := resolvePolicy(tc.name, tc.expr)
		if err != nil {
			t.Errorf("resolvePolicy(%q, %q): %v", tc.name, tc.expr, err)
			continue
		}
		if p.Name() != tc.want {
			t.Errorf("resolvePolicy(%q, %q) = %s, want %s", tc.name, tc.expr, p.Name(), tc.want)
		}
	}
	if _, err := resolvePolicy("NOPE?!", ""); err == nil {
		t.Error("garbage policy accepted")
	}
}
