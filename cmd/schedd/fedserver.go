// The federated daemon (-shards N, N > 1): N independent shard
// schedulers behind the deterministic router in internal/fed, serving
// the same HTTP/JSON API as the single engine plus merged observability
// — /v1/status and /v1/metrics carry the aggregate AND the per-shard
// breakdown, /metrics exposes the merged sink, and /v1/trace exports the
// shard traces merged into the canonical (clock, shard, seq) order with
// each JSONL line tagged by shard.
//
// With -data-dir each shard journals to its own WAL+snapshot store
// under <data-dir>/shard-NNNN/ and the federation recovers per shard on
// boot (a pre-federation flat layout is adopted as shard 0). A shard
// whose store fails is quarantined — mutations targeting it return 503
// with Retry-After while healthy shards keep serving — and /healthz +
// /v1/status report per-shard health. The adaptive loop (/v1/adapt)
// remains a single-engine feature.

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"github.com/hpcsched/gensched/internal/durable"
	"github.com/hpcsched/gensched/internal/fed"
	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/telemetry"
	"github.com/hpcsched/gensched/internal/workload"
)

// runFederated is run()'s -shards > 1 path.
func runFederated(cfg daemonConfig, p sched.Policy, bf sim.BackfillMode, realClock bool) error {
	fcfg := fed.Config{
		Shards:     cfg.shards,
		ShardCores: cfg.cores,
		Opt: online.Options{
			Policy:       p,
			UseEstimates: cfg.estimates,
			Backfill:     bf,
			Tau:          cfg.tau,
			Check:        cfg.check,
		},
		Seed: cfg.fedSeed,
	}
	if cfg.telemetry {
		fcfg.TraceBuf = cfg.traceBuf
	}
	fd, err := fed.Open(fcfg, fed.DurableConfig{
		Dir:           cfg.dataDir,
		SyncEvery:     cfg.fsync,
		CkptEvery:     cfg.ckptEvery,
		PolicyName:    cfg.policy,
		ResolvePolicy: resolvePolicy,
	})
	if err != nil {
		return err
	}
	fs := newFedServer(fd, realClock)
	if cfg.telemetry {
		fs.edge = telemetry.NewEdge(edgeEndpoints...)
	}
	fs.pprofOn = cfg.pprofFlag

	l, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	var bin *binServer
	if cfg.binaryAddr != "" {
		bl, berr := net.Listen("tcp", cfg.binaryAddr)
		if berr != nil {
			_ = l.Close()
			return berr
		}
		bin = newBinServer(bl, fs)
		bin.start()
		fmt.Fprintf(os.Stderr, "schedd: binary protocol on %s\n", bl.Addr())
	}
	fmt.Fprintf(os.Stderr, "schedd: federating %d shards × %d cores under %s+%s on %s (clock: %s, seed %d)\n",
		cfg.shards, cfg.cores, p.Name(), bf, l.Addr(), cfg.clock, cfg.fedSeed)
	if cfg.dataDir != "" {
		fmt.Fprintf(os.Stderr, "schedd: journaling per shard under %s (fsync every %d, checkpoint every %gs, recovered to t=%g)\n",
			cfg.dataDir, cfg.fsync, cfg.ckptEvery, fd.Clock())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = serve(ctx, l, fs.handler(), func() error {
		// Binary connections stop first so the federation's drain — which
		// waits out in-flight mutations shard by shard and then checkpoints
		// and closes every shard store — is the last word.
		if bin != nil {
			bin.stop()
		}
		return fd.Drain()
	})
	// Safety net for the non-drain exit paths; Drain is idempotent.
	if derr := fd.Drain(); err == nil {
		err = derr
	}
	if bin != nil {
		bin.stop()
	}
	return err
}

// fedServer wraps a fed.Federation behind the daemon's HTTP surface.
// The federation does its own locking (router under one mutex, each
// shard under its own), so unlike the single server there is no global
// handler mutex — requests for different shards run concurrently.
type fedServer struct {
	fd        *fed.Federation
	realClock bool
	epoch     time.Time

	edge    *telemetry.Edge
	pprofOn bool

	bufs   sync.Pool  // *[]byte response buffers
	starts sync.Pool  // *[]online.Start scratch
	polMu  sync.Mutex // serializes SetPolicy fan-out so swaps don't interleave
}

func newFedServer(fd *fed.Federation, realClock bool) *fedServer {
	return &fedServer{
		fd:        fd,
		realClock: realClock,
		epoch:     time.Now(),
		bufs:      sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }},
		starts:    sync.Pool{New: func() any { s := make([]online.Start, 0, 64); return &s }},
	}
}

func (fs *fedServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/submit", fs.timed("submit", fs.post(fs.submit)))
	mux.HandleFunc("/v1/complete", fs.timed("complete", fs.post(fs.complete)))
	mux.HandleFunc("/v1/advance", fs.timed("advance", fs.post(fs.advance)))
	mux.HandleFunc("/v1/policy", fs.timed("policy", fs.post(fs.policy)))
	mux.HandleFunc("/v1/adapt", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotImplemented,
			"the adaptive loop requires a single engine; run -shards 1")
	})
	mux.HandleFunc("/v1/status", fs.timed("status", fs.getOnly(fs.status)))
	mux.HandleFunc("/v1/metrics", fs.timed("metrics", fs.getOnly(fs.metrics)))
	mux.HandleFunc("/v1/trace", fs.trace)
	mux.HandleFunc("/metrics", fs.promMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			writeErr(w, http.StatusMethodNotAllowed, "GET or HEAD only")
			return
		}
		if fs.fd.Draining() {
			w.Header().Set("Retry-After", retryAfterSecs)
			writeErr(w, http.StatusServiceUnavailable, "draining")
			return
		}
		health := fs.fd.Health()
		down := 0
		for _, h := range health {
			if h.Quarantined {
				down++
			}
		}
		switch {
		case down == 0:
			_, _ = w.Write([]byte("ok\n")) // a probe that hung up is its own problem
		case down < len(health):
			// Degraded but serving: healthy shards still take their
			// substreams, so stay in the load balancer rotation and let the
			// per-request 503s steer clients off the dead shard.
			fmt.Fprintf(w, "degraded (%d/%d shards quarantined)\n", down, len(health))
		default:
			w.Header().Set("Retry-After", retryAfterSecs)
			writeErr(w, http.StatusServiceUnavailable,
				fmt.Sprintf("all %d shards quarantined (durable stores failed)", len(health)))
		}
	})
	registerPprof(mux, fs.pprofOn)
	return mux
}

func (fs *fedServer) timed(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if fs.edge == nil {
			h(w, r)
			return
		}
		t0 := time.Now()
		h(w, r)
		fs.edge.Observe(name, time.Since(t0).Seconds())
	}
}

// post mirrors server.post: decode the shared request body, dispatch.
func (fs *fedServer) post(h func(http.ResponseWriter, *request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		if err := r.Context().Err(); err != nil {
			writeErr(w, http.StatusServiceUnavailable, "request cancelled before processing")
			return
		}
		var req request
		r.Body = http.MaxBytesReader(w, r.Body, 1<<16)
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		if err := h(w, &req); err != nil {
			writeHandlerErr(w, err)
		}
	}
}

func (fs *fedServer) getOnly(h func(http.ResponseWriter)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		h(w)
	}
}

// now resolves the effective clock for a request, mirroring server.now:
// wall time since boot under -clock real; otherwise the request's "now"
// (explicit 0 IS instant zero), then "submit" when positive, then the
// federation clock (the maximum shard clock — per-shard clamping in
// Submit/AdvanceTo keeps every shard monotonic regardless).
func (fs *fedServer) now(req *request) float64 {
	if fs.realClock {
		return time.Since(fs.epoch).Seconds()
	}
	if req.Now != nil {
		return *req.Now
	}
	if req.Submit > 0 {
		return req.Submit
	}
	return fs.fd.Clock()
}

// respond renders the {"started":[...],"now":..} mutation response from
// pooled buffers, with the landing shard when one applies (shard >= 0).
func (fs *fedServer) respond(w http.ResponseWriter, shard int, starts []online.Start, clock float64) {
	bp := fs.bufs.Get().(*[]byte)
	buf := append((*bp)[:0], `{"started":[`...)
	n := 0
	buf = appendStarts(buf, &n, starts)
	buf = append(buf, `],"now":`...)
	buf = strconv.AppendFloat(buf, clock, 'g', -1, 64)
	if shard >= 0 {
		buf = append(buf, `,"shard":`...)
		buf = strconv.AppendInt(buf, int64(shard), 10)
	}
	buf = append(buf, '}', '\n')
	writeJSON(w, buf)
	*bp = buf
	fs.bufs.Put(bp)
}

func (fs *fedServer) submit(w http.ResponseWriter, req *request) error {
	job := workload.Job{
		ID:       req.ID,
		Submit:   req.Submit,
		Runtime:  req.Runtime,
		Estimate: req.Estimate,
		Cores:    req.Cores,
	}
	// One job must fit on one shard: validate against the per-shard
	// machine size, exactly as the single engine validates against -cores.
	if err := job.Validate(fs.fd.ShardCores()); err != nil {
		return badRequest(err)
	}
	sp := fs.starts.Get().(*[]online.Start)
	shard, starts, clock, err := fs.fd.Submit(fs.now(req), job, (*sp)[:0])
	*sp = starts
	if err == nil {
		fs.respond(w, shard, starts, clock)
	}
	fs.starts.Put(sp)
	return err
}

func (fs *fedServer) complete(w http.ResponseWriter, req *request) error {
	sp := fs.starts.Get().(*[]online.Start)
	starts, clock, err := fs.fd.Complete(fs.now(req), req.ID, (*sp)[:0])
	*sp = starts
	if err == nil {
		fs.respond(w, -1, starts, clock)
	}
	fs.starts.Put(sp)
	return err
}

func (fs *fedServer) advance(w http.ResponseWriter, req *request) error {
	sp := fs.starts.Get().(*[]online.Start)
	starts, clock, err := fs.fd.AdvanceTo(fs.now(req), (*sp)[:0])
	*sp = starts
	if err == nil {
		fs.respond(w, -1, starts, clock)
	}
	fs.starts.Put(sp)
	return err
}

func (fs *fedServer) policy(w http.ResponseWriter, req *request) error {
	p, err := resolvePolicy(req.Name, req.Expr)
	if err != nil {
		return badRequest(err)
	}
	fs.polMu.Lock()
	err = fs.setPolicy(p, req.Name, req.Expr)
	fs.polMu.Unlock()
	if err != nil {
		return err
	}
	writeJSON(w, []byte(`{"policy":`+strconv.Quote(p.Name())+"}\n"))
	return nil
}

// setPolicy dispatches a swap through the journaling path when the
// federation is durable (the journal records the descriptor, not the
// value). Callers hold polMu.
func (fs *fedServer) setPolicy(p sched.Policy, name, expr string) error {
	if fs.fd.Durable() {
		return fs.fd.SetPolicyNamed(p, name, expr)
	}
	return fs.fd.SetPolicy(p)
}

// applyWire implements binaryHandler: records dispatch through the
// federation exactly as their HTTP equivalents would, in order.
func (fs *fedServer) applyWire(recs []durable.Record, buf []online.Start) (float64, []online.Start, error) {
	var clock float64
	for i := range recs {
		rec := &recs[i]
		if err := checkWireOp(rec.Op); err != nil {
			return clock, buf, err
		}
		var err error
		switch rec.Op {
		case durable.OpSubmit:
			if verr := rec.Job.Validate(fs.fd.ShardCores()); verr != nil {
				return clock, buf, badRequest(verr)
			}
			_, buf, clock, err = fs.fd.Submit(rec.Now, rec.Job, buf)
		case durable.OpComplete:
			buf, clock, err = fs.fd.Complete(rec.Now, rec.ID, buf)
		case durable.OpAdvance:
			buf, clock, err = fs.fd.AdvanceTo(rec.Now, buf)
		case durable.OpPolicy:
			var p sched.Policy
			if p, err = resolvePolicy(rec.Name, rec.Expr); err != nil {
				return clock, buf, badRequest(err)
			}
			fs.polMu.Lock()
			err = fs.setPolicy(p, rec.Name, rec.Expr)
			fs.polMu.Unlock()
		}
		if err != nil {
			return clock, buf, err
		}
	}
	return clock, buf, nil
}

// fedShardStatus is one shard's block in /v1/status. The durability
// fields appear only on a journaled federation: quarantined + store
// error report degradation, the rest is recovery provenance.
type fedShardStatus struct {
	Now          float64 `json:"now"`
	Cores        int     `json:"cores"`
	FreeCores    int     `json:"free_cores"`
	Queued       int     `json:"queued"`
	Running      int     `json:"running"`
	Submitted    int     `json:"submitted"`
	Completed    int     `json:"completed"`
	Quarantined  bool    `json:"quarantined,omitempty"`
	StoreError   string  `json:"store_error,omitempty"`
	JournalSeq   uint64  `json:"journal_seq,omitempty"`
	Recovered    bool    `json:"recovered,omitempty"`
	FromSnapshot bool    `json:"from_snapshot,omitempty"`
	Replayed     int     `json:"replayed_records,omitempty"`
	Segments     int     `json:"segments_scanned,omitempty"`
}

func (fs *fedServer) status(w http.ResponseWriter) {
	st := fs.fd.Status()
	per := make([]fedShardStatus, len(st.PerShard))
	for i, s := range st.PerShard {
		per[i] = fedShardStatus{
			Now: s.Now, Cores: s.Cores, FreeCores: s.FreeCores,
			Queued: s.Queued, Running: s.Running,
			Submitted: s.Submitted, Completed: s.Completed,
		}
	}
	healthy := len(per)
	if fs.fd.Durable() {
		for i, h := range fs.fd.Health() {
			per[i].Quarantined = h.Quarantined
			per[i].StoreError = h.StoreErr
			per[i].JournalSeq = h.Seq
			per[i].Recovered = h.Recovered
			per[i].FromSnapshot = h.FromSnapshot
			per[i].Replayed = h.Replayed
			per[i].Segments = h.Segments
			if h.Quarantined {
				healthy--
			}
		}
	}
	marshalJSON(w, struct {
		Now           float64          `json:"now"`
		Shards        int              `json:"shards"`
		HealthyShards int              `json:"healthy_shards"`
		Draining      bool             `json:"draining,omitempty"`
		Durable       bool             `json:"durable,omitempty"`
		Cores         int              `json:"cores"`
		FreeCores     int              `json:"free_cores"`
		Queued        int              `json:"queued"`
		Running       int              `json:"running"`
		Submitted     int              `json:"submitted"`
		Completed     int              `json:"completed"`
		Stolen        int              `json:"stolen"`
		Policy        string           `json:"policy"`
		PerShard      []fedShardStatus `json:"per_shard"`
	}{
		Now: st.Now, Shards: st.Shards, HealthyShards: healthy,
		Draining: fs.fd.Draining(), Durable: fs.fd.Durable(),
		Cores: st.Cores, FreeCores: st.FreeCores,
		Queued: st.Queued, Running: st.Running,
		Submitted: st.Submitted, Completed: st.Completed,
		Stolen: st.Stolen, Policy: st.Policy, PerShard: per,
	})
}

// fedMetrics is the tagged rendering of online.Metrics shared by the
// merged block and the per-shard list.
type fedMetrics struct {
	Submitted   int     `json:"submitted"`
	Completed   int     `json:"completed"`
	Backfilled  int     `json:"backfilled"`
	MaxQueueLen int     `json:"max_queue_len"`
	AveBsld     float64 `json:"ave_bsld"`
	MeanWait    float64 `json:"mean_wait"`
	MaxBSLD     float64 `json:"max_bsld"`
	MaxWait     float64 `json:"max_wait"`
	Utilization float64 `json:"utilization"`
}

func toFedMetrics(m online.Metrics) fedMetrics {
	return fedMetrics{
		Submitted: m.Submitted, Completed: m.Completed, Backfilled: m.Backfilled,
		MaxQueueLen: m.MaxQueueLen, AveBsld: m.AveBsld, MeanWait: m.MeanWait,
		MaxBSLD: m.MaxBSLD, MaxWait: m.MaxWait, Utilization: m.Utilization,
	}
}

func (fs *fedServer) metrics(w http.ResponseWriter) {
	merged, per := fs.fd.Metrics()
	out := struct {
		fedMetrics
		PerShard []fedMetrics `json:"per_shard"`
	}{fedMetrics: toFedMetrics(merged), PerShard: make([]fedMetrics, len(per))}
	for i, m := range per {
		out.PerShard[i] = toFedMetrics(m)
	}
	marshalJSON(w, out)
}

// promMetrics serves the merged federation view in Prometheus text
// exposition format: federation-level gauges plus the per-shard sinks
// folded into one via Sink.Merge (counters sum, histograms merge
// bucket-wise), then the daemon-edge latency histograms.
func (fs *fedServer) promMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	merged := fs.fd.MergedSink()
	if merged == nil {
		writeErr(w, http.StatusNotFound, "telemetry is disabled (-telemetry=false)")
		return
	}
	var ew telemetry.ExpositionWriter
	st := fs.fd.Status()
	ew.Gauge("gensched_clock_seconds", "Maximum shard logical clock.", st.Now)
	ew.Gauge("gensched_shards", "Federated shard count.", float64(st.Shards))
	ew.Gauge("gensched_cores", "Total federated cores.", float64(st.Cores))
	ew.Gauge("gensched_free_cores", "Cores currently idle across shards.", float64(st.FreeCores))
	ew.Gauge("gensched_queued_jobs", "Jobs currently waiting across shards.", float64(st.Queued))
	ew.Gauge("gensched_running_jobs", "Jobs currently running across shards.", float64(st.Running))
	ew.Gauge("gensched_fed_stolen_placements", "Placements diverted off their hash-primary shard.", float64(st.Stolen))
	telemetry.WriteSink(&ew, merged)
	if fs.edge != nil {
		fs.edge.WriteExposition(&ew)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = ew.WriteTo(w) // a scraper that hung up mid-body is its own problem
}

// trace serves the merged federation decision trace. Sampling and limit
// follow the same sample-then-limit contract as the single engine (see
// parseTraceQuery); sampling applies per shard by sequence, the limit
// caps the MERGED (clock, shard, seq)-ordered stream. JSONL lines carry
// a leading "shard" field spliced onto the event encoding; the Chrome
// rendering drops the shard tag (the viewer's timeline has no lane for
// it) but keeps the merged order.
func (fs *fedServer) trace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	sample, limit, format, errMsg := parseTraceQuery(r.URL.Query())
	if errMsg != "" {
		writeErr(w, http.StatusBadRequest, errMsg)
		return
	}
	evs := fs.fd.MergedTrace(sample, limit)
	if evs == nil && fs.fd.MergedSink() == nil {
		writeErr(w, http.StatusNotFound, "telemetry is disabled (-telemetry=false)")
		return
	}
	if format == "chrome" {
		plain := make([]telemetry.Event, len(evs))
		for i, e := range evs {
			plain[i] = e.Event
		}
		w.Header().Set("Content-Type", "application/json")
		_ = telemetry.WriteEventsChrome(w, plain) // client went away mid-stream; nothing actionable
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	var line, ej []byte
	for _, e := range evs {
		line = append(line[:0], `{"shard":`...)
		line = strconv.AppendInt(line, int64(e.Shard), 10)
		line = append(line, ',')
		ej = telemetry.AppendEventJSON(ej[:0], e.Event)
		line = append(line, ej[1:]...) // splice past the event's '{'
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return // client went away mid-stream; nothing actionable
		}
	}
}
