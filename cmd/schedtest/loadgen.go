package main

// Load-generator mode (-daemon): instead of running a simulation grid
// in-process, schedtest streams the generated (or SWF-loaded) workload at
// a running schedd daemon over HTTP as fast as the daemon accepts it —
// submitting each job at its logical arrival instant and reporting each
// completion when the job's runtime has elapsed after the start the
// daemon announced — then reports sustained throughput and the daemon's
// own final metrics.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/hpcsched/gensched/internal/schedcore"
	"github.com/hpcsched/gensched/internal/workload"
)

type startedReply struct {
	Error   string `json:"error"`
	Started []struct {
		ID   int     `json:"id"`
		Time float64 `json:"time"`
	} `json:"started"`
}

// runLoadgen streams jobs at the daemon and prints a throughput report.
func runLoadgen(ctx context.Context, baseURL string, jobs []workload.Job) error {
	if len(jobs) == 0 {
		return fmt.Errorf("loadgen: no jobs to stream")
	}
	runtimeOf := make(map[int]float64, len(jobs))
	var h schedcore.EventHeap
	for i := range jobs {
		if _, dup := runtimeOf[jobs[i].ID]; dup {
			return fmt.Errorf("loadgen: duplicate job ID %d", jobs[i].ID)
		}
		runtimeOf[jobs[i].ID] = jobs[i].Runtime
		h.Push(schedcore.Event{Time: jobs[i].Submit, Kind: schedcore.KindArrival, Ref: i})
	}

	client := &http.Client{}
	var buf bytes.Buffer
	events := 0
	post := func(path string, body func(*bytes.Buffer)) (*startedReply, error) {
		buf.Reset()
		body(&buf)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+path, &buf)
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		var r startedReply
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			return nil, fmt.Errorf("loadgen: decoding %s reply: %w", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("loadgen: %s: %s (%d)", path, r.Error, resp.StatusCode)
		}
		return &r, nil
	}
	schedule := func(r *startedReply) {
		for _, st := range r.Started {
			h.Push(schedcore.Event{
				Time: st.Time + runtimeOf[st.ID],
				Kind: schedcore.KindCompletion,
				Ref:  st.ID,
			})
		}
	}

	fmt.Printf("loadgen: streaming %d jobs at %s\n", len(jobs), baseURL)
	wall := time.Now()
	for h.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		ev := h.Pop()
		var r *startedReply
		var err error
		switch ev.Kind {
		case schedcore.KindCompletion:
			r, err = post("/v1/complete", func(b *bytes.Buffer) {
				b.WriteString(`{"id":`)
				b.WriteString(strconv.Itoa(ev.Ref))
				b.WriteString(`,"now":`)
				b.WriteString(strconv.FormatFloat(ev.Time, 'g', -1, 64))
				b.WriteString("}")
			})
		case schedcore.KindArrival:
			j := jobs[ev.Ref]
			r, err = post("/v1/submit", func(b *bytes.Buffer) {
				fmt.Fprintf(b, `{"id":%d,"cores":%d,"runtime":%s,"estimate":%s,"submit":%s,"now":%s}`,
					j.ID, j.Cores,
					strconv.FormatFloat(j.Runtime, 'g', -1, 64),
					strconv.FormatFloat(j.Estimate, 'g', -1, 64),
					strconv.FormatFloat(j.Submit, 'g', -1, 64),
					strconv.FormatFloat(j.Submit, 'g', -1, 64))
			})
		}
		if err != nil {
			return err
		}
		events++
		schedule(r)
	}
	elapsed := time.Since(wall)
	fmt.Printf("loadgen: %d events in %v (%.0f events/sec over HTTP)\n",
		events, elapsed.Round(time.Millisecond), float64(events)/elapsed.Seconds())

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Printf("daemon metrics: %s", raw)
	return nil
}
