// Command schedtest is workflow 3 of the paper's artifact
// (sched-performance-tester): it runs a dynamic scheduling experiment —
// ten (configurable) disjoint fifteen-day sequences scheduled with each
// policy — and prints medians, means and standard deviations of the
// average bounded slowdown in the artifact's output format, plus an ASCII
// boxplot standing in for the paper's figure panels.
//
// Workloads come either from the Lublin model (default), from one of the
// synthetic platform stand-ins, or from an SWF file.
//
// Usage:
//
//	schedtest -cores 256 -sequences 10 -days 15
//	schedtest -platform curie -estimates -backfill easy
//	schedtest -swf trace.swf -policies FCFS,SPT,F1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/hpcsched/gensched/internal/experiments"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/traces"
	"github.com/hpcsched/gensched/internal/workload"
)

func main() {
	var (
		cores     = flag.Int("cores", 256, "machine size (Lublin workloads; SWF files carry their own)")
		sequences = flag.Int("sequences", 10, "number of disjoint sequences")
		days      = flag.Float64("days", 15, "sequence length in days")
		load      = flag.Float64("load", 1.05, "offered load for Lublin workloads")
		platform  = flag.String("platform", "", "platform stand-in: curie | intrepid | sdsc-blue | ctc-sp2")
		swf       = flag.String("swf", "", "schedule an SWF trace file instead of a generated workload")
		policies  = flag.String("policies", "", "comma-separated policy names (default: the paper's eight)")
		custom    = flag.String("custom", "", "additional custom policy as a function, e.g. 'log10(r)*n + 870*log10(s)'")
		estimates = flag.Bool("estimates", false, "schedule on user estimates instead of actual runtimes")
		backfill  = flag.String("backfill", "none", "backfilling: none | easy | conservative")
		seed      = flag.Uint64("seed", 20171112, "random seed")
		workers   = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if err := run(*cores, *sequences, *days, *load, *platform, *swf, *policies, *custom,
		*estimates, *backfill, *seed, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "schedtest:", err)
		os.Exit(1)
	}
}

func run(cores, sequences int, days, load float64, platform, swf, policyList, custom string,
	estimates bool, backfill string, seed uint64, workers int) error {

	cfg := experiments.Config{
		Seed: seed, Sequences: sequences, WindowDays: days,
		ModelLoad: load, Workers: workers,
	}
	bf, err := parseBackfill(backfill)
	if err != nil {
		return err
	}
	pols, err := parsePolicies(policyList)
	if err != nil {
		return err
	}
	if custom != "" {
		p, err := sched.ParseExpr("CUSTOM", custom)
		if err != nil {
			return err
		}
		pols = append(pols, p)
	}

	var windows [][]workload.Job
	name := fmt.Sprintf("lublin_%d", cores)
	switch {
	case swf != "":
		f, err := os.Open(swf)
		if err != nil {
			return err
		}
		tr, err := workload.ParseSWF(f)
		f.Close()
		if err != nil {
			return err
		}
		if fixed := tr.Repair(); fixed > 0 {
			fmt.Fprintf(os.Stderr, "schedtest: repaired %d jobs (oversized or missing estimates)\n", fixed)
		}
		cores = tr.MaxProcs
		name = swf
		windows, err = workload.Windows(tr, days*24*3600, sequences, 1)
		if err != nil {
			return err
		}
	case platform != "":
		spec, err := platformSpec(platform)
		if err != nil {
			return err
		}
		cores = spec.Cores
		name = spec.Name
		windows, err = experiments.TraceWindows(cfg, spec)
		if err != nil {
			return err
		}
	default:
		windows, err = experiments.ModelWindows(cfg, cores)
		if err != nil {
			return err
		}
	}

	sc := experiments.Scenario{
		ID: "schedtest", Name: name, Cores: cores,
		UseEstimates: estimates, Backfill: bf, Windows: windows,
	}
	res, err := experiments.RunDynamic(sc, pols, workers)
	if err != nil {
		return err
	}
	fmt.Print(res.ArtifactReport())
	return nil
}

func parseBackfill(s string) (sim.BackfillMode, error) {
	switch strings.ToLower(s) {
	case "none", "":
		return sim.BackfillNone, nil
	case "easy", "aggressive":
		return sim.BackfillEASY, nil
	case "conservative":
		return sim.BackfillConservative, nil
	}
	return 0, fmt.Errorf("unknown backfill mode %q", s)
}

func parsePolicies(list string) ([]sched.Policy, error) {
	if list == "" {
		return sched.Registry(), nil
	}
	var out []sched.Policy
	for _, name := range strings.Split(list, ",") {
		p, err := sched.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func platformSpec(name string) (traces.PlatformSpec, error) {
	switch strings.ToLower(name) {
	case "curie":
		return traces.Curie, nil
	case "intrepid":
		return traces.Intrepid, nil
	case "sdsc-blue", "sdsc":
		return traces.SDSCBlue, nil
	case "ctc-sp2", "ctc":
		return traces.CTCSP2, nil
	}
	return traces.PlatformSpec{}, fmt.Errorf("unknown platform %q", name)
}
