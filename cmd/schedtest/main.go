// Command schedtest is workflow 3 of the paper's artifact
// (sched-performance-tester): it runs a dynamic scheduling experiment —
// ten (configurable) disjoint fifteen-day sequences scheduled with each
// policy — and prints medians, means and standard deviations of the
// average bounded slowdown in the artifact's output format, plus an ASCII
// boxplot standing in for the paper's figure panels.
//
// The experiment is declared as a gensched Scenario with a policy-axis
// Grid and executed by the Runner; Ctrl-C cancels the grid cleanly.
// Workloads come either from the Lublin model (default), from one of the
// synthetic platform stand-ins, or from an SWF file.
//
// Usage:
//
//	schedtest -cores 256 -sequences 10 -days 15
//	schedtest -platform curie -estimates -backfill easy
//	schedtest -swf trace.swf -policies FCFS,SPT,F1
//
// With -daemon it becomes a load generator instead: the workload (one
// continuous -days trace from the Lublin model, or the -swf file) is
// streamed at a running schedd daemon over HTTP — submits at arrival
// instants, completions as the daemon announces starts — and the
// sustained event throughput plus the daemon's final metrics are printed:
//
//	schedtest -daemon http://localhost:8080 -cores 256 -days 1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	gensched "github.com/hpcsched/gensched"
	"github.com/hpcsched/gensched/internal/lublin"
	"github.com/hpcsched/gensched/internal/profiling"
	"github.com/hpcsched/gensched/internal/tsafrir"
	"github.com/hpcsched/gensched/internal/workload"
)

func main() {
	var (
		cores      = flag.Int("cores", 256, "machine size (Lublin workloads; SWF files carry their own)")
		sequences  = flag.Int("sequences", 10, "number of disjoint sequences")
		days       = flag.Float64("days", 15, "sequence length in days")
		load       = flag.Float64("load", 1.05, "offered load for Lublin workloads")
		platform   = flag.String("platform", "", "platform stand-in: curie | intrepid | sdsc-blue | ctc-sp2")
		swf        = flag.String("swf", "", "schedule an SWF trace file instead of a generated workload")
		policies   = flag.String("policies", "", "comma-separated policy names (default: the paper's eight)")
		custom     = flag.String("custom", "", "additional custom policy as a function, e.g. 'log10(r)*n + 870*log10(s)'")
		estimates  = flag.Bool("estimates", false, "schedule on user estimates instead of actual runtimes")
		backfill   = flag.String("backfill", "none", "backfilling: none | easy | conservative")
		seed       = flag.Uint64("seed", 20171112, "random seed")
		workers    = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		daemon     = flag.String("daemon", "", "load-generator mode: stream the workload at this schedd base URL")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on successful exit")
	)
	flag.Parse()
	stopProfiles, perr := profiling.Start("schedtest", *cpuprofile, *memprofile)
	if perr != nil {
		fmt.Fprintln(os.Stderr, "schedtest:", perr)
		os.Exit(1)
	}
	defer stopProfiles()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *daemon != "" {
		jobs, err := loadgenJobs(*cores, *days, *load, *swf, *estimates, *seed)
		if err == nil {
			err = runLoadgen(ctx, strings.TrimRight(*daemon, "/"), jobs)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedtest:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(ctx, *cores, *sequences, *days, *load, *platform, *swf, *policies, *custom,
		*estimates, *backfill, *seed, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "schedtest:", err)
		os.Exit(1)
	}
}

// loadgenJobs builds the stream for -daemon mode: the -swf trace when
// given, otherwise one continuous Lublin trace of the requested length.
func loadgenJobs(cores int, days, load float64, swf string, estimates bool, seed uint64) ([]workload.Job, error) {
	if swf != "" {
		f, err := os.Open(swf)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, err := workload.ParseSWF(f)
		if err != nil {
			return nil, err
		}
		if fixed := tr.Repair(); fixed > 0 {
			fmt.Fprintf(os.Stderr, "schedtest: repaired %d jobs (oversized or missing estimates)\n", fixed)
		}
		return tr.Jobs, nil
	}
	gen, err := lublin.NewGenerator(lublin.DefaultParams(cores), cores, seed)
	if err != nil {
		return nil, err
	}
	jobs := gen.Until(days * 24 * 3600)
	if load > 0 {
		lublin.CalibrateLoad(jobs, cores, load)
	}
	if estimates {
		if err := tsafrir.Apply(tsafrir.Default(), jobs, seed+1); err != nil {
			return nil, err
		}
	}
	return jobs, nil
}

func run(ctx context.Context, cores, sequences int, days, load float64, platform, swf, policyList, custom string,
	estimates bool, backfill string, seed uint64, workers int) error {

	bf, err := parseBackfill(backfill)
	if err != nil {
		return err
	}

	// Declare the scenario: workload source first, then the conditions.
	opts := []gensched.Option{
		gensched.WithSeed(seed),
		gensched.WithBackfill(bf),
	}
	switch {
	case swf != "":
		f, err := os.Open(swf)
		if err != nil {
			return err
		}
		tr, err := gensched.ReadSWF(f)
		_ = f.Close() // opened read-only; close cannot lose data
		if err != nil {
			return err
		}
		if fixed := tr.Repair(); fixed > 0 {
			fmt.Fprintf(os.Stderr, "schedtest: repaired %d jobs (oversized or missing estimates)\n", fixed)
		}
		tr.Name = swf
		opts = append(opts, gensched.WithTrace(tr), gensched.WithWindows(days, sequences))
	case platform != "":
		opts = append(opts, gensched.WithPlatform(platform), gensched.WithWindows(days, sequences))
	default:
		opts = append(opts,
			gensched.WithCores(cores),
			gensched.WithLublin(days, load),
			gensched.WithSequences(sequences))
	}
	if estimates {
		opts = append(opts, gensched.WithEstimates())
	}
	sc, err := gensched.NewScenario(opts...)
	if err != nil {
		return err
	}

	// The policy list is the grid's only axis.
	axis, err := policyAxis(policyList, custom)
	if err != nil {
		return err
	}
	g, err := gensched.NewGrid(sc, axis...)
	if err != nil {
		return err
	}
	res, err := (&gensched.Runner{Workers: workers}).Run(ctx, g)
	if err != nil {
		return err
	}
	fmt.Print(res.ArtifactReport())
	return nil
}

func parseBackfill(s string) (gensched.BackfillMode, error) {
	switch strings.ToLower(s) {
	case "none", "":
		return gensched.BackfillNone, nil
	case "easy", "aggressive":
		return gensched.BackfillEASY, nil
	case "conservative":
		return gensched.BackfillConservative, nil
	}
	return 0, fmt.Errorf("unknown backfill mode %q", s)
}

func policyAxis(list, custom string) ([]gensched.Axis, error) {
	var axes []gensched.Axis
	if list == "" {
		axes = append(axes, gensched.OverPolicies()) // the paper's eight
	} else {
		var names []string
		for _, name := range strings.Split(list, ",") {
			names = append(names, strings.TrimSpace(name))
		}
		axes = append(axes, gensched.OverPolicies(names...))
	}
	if custom != "" {
		p, err := gensched.ParsePolicy("CUSTOM", custom)
		if err != nil {
			return nil, err
		}
		axes = append(axes, gensched.OverPolicySet(p))
	}
	return axes, nil
}
