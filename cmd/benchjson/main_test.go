package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/hpcsched/gensched
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMicroSimulatorEASY-8   	     295	   3933101 ns/op	      5000 jobs/op	  430409 B/op	     424 allocs/op
BenchmarkOnlineThroughput 	      45	   5080988 ns/op	     10000 events/op	   1968121 events/sec	 1674351 B/op	      96 allocs/op
BenchmarkMicroSWFParse-8  	     100	   1200000 ns/op	  95.5 MB/s
--- BENCH: BenchmarkSomethingVerbose
    bench_test.go:92: fig6a medians: FCFS=211.73
PASS
ok  	github.com/hpcsched/gensched	12.3s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	easy := rep.Benchmarks[0]
	if easy.Name != "MicroSimulatorEASY" {
		t.Errorf("name = %q (GOMAXPROCS suffix must be stripped)", easy.Name)
	}
	if easy.Iterations != 295 || easy.NsPerOp != 3933101 || easy.AllocsPerOp != 424 || easy.BytesPerOp != 430409 {
		t.Errorf("easy = %+v", easy)
	}
	if easy.Metrics["jobs/op"] != 5000 {
		t.Errorf("custom metric jobs/op = %v", easy.Metrics["jobs/op"])
	}
	online := rep.Benchmarks[1]
	if online.Name != "OnlineThroughput" || online.Metrics["events/sec"] != 1968121 {
		t.Errorf("online = %+v", online)
	}
	swf := rep.Benchmarks[2]
	if swf.MBPerSec != 95.5 {
		t.Errorf("MB/s = %v", swf.MBPerSec)
	}
	if rep.GoVersion == "" {
		t.Error("go version missing")
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	github.com/hpcsched/gensched	12.3s",
		"BenchmarkBroken abc",
		"--- BENCH: BenchmarkFoo",
		"goos: linux",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted", line)
		}
	}
}
