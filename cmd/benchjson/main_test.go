package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/hpcsched/gensched
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMicroSimulatorEASY-8   	     295	   3933101 ns/op	      5000 jobs/op	  430409 B/op	     424 allocs/op
BenchmarkOnlineThroughput 	      45	   5080988 ns/op	     10000 events/op	   1968121 events/sec	 1674351 B/op	      96 allocs/op
BenchmarkMicroSWFParse-8  	     100	   1200000 ns/op	  95.5 MB/s
--- BENCH: BenchmarkSomethingVerbose
    bench_test.go:92: fig6a medians: FCFS=211.73
PASS
ok  	github.com/hpcsched/gensched	12.3s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	easy := rep.Benchmarks[0]
	if easy.Name != "MicroSimulatorEASY" {
		t.Errorf("name = %q (GOMAXPROCS suffix must be stripped)", easy.Name)
	}
	if easy.Iterations != 295 || easy.NsPerOp != 3933101 || easy.AllocsPerOp != 424 || easy.BytesPerOp != 430409 {
		t.Errorf("easy = %+v", easy)
	}
	if easy.Metrics["jobs/op"] != 5000 {
		t.Errorf("custom metric jobs/op = %v", easy.Metrics["jobs/op"])
	}
	online := rep.Benchmarks[1]
	if online.Name != "OnlineThroughput" || online.Metrics["events/sec"] != 1968121 {
		t.Errorf("online = %+v", online)
	}
	swf := rep.Benchmarks[2]
	if swf.MBPerSec != 95.5 {
		t.Errorf("MB/s = %v", swf.MBPerSec)
	}
	if rep.GoVersion == "" {
		t.Error("go version missing")
	}
}

func gateReport(names []string, ns []float64) *Report {
	rep := &Report{}
	for i, n := range names {
		rep.Benchmarks = append(rep.Benchmarks, Benchmark{Name: n, Iterations: 1, NsPerOp: ns[i]})
	}
	return rep
}

func TestCompareReportsPassAndFail(t *testing.T) {
	base := gateReport([]string{"FitAll", "ScoreTuple", "CompiledEval"}, []float64{1000, 2000, 100})
	cases := []struct {
		name  string
		fresh *Report
		ok    bool
	}{
		{"identical", gateReport([]string{"FitAll", "ScoreTuple", "CompiledEval"}, []float64{1000, 2000, 100}), true},
		{"within-tolerance", gateReport([]string{"FitAll", "ScoreTuple", "CompiledEval"}, []float64{1240, 2490, 124}), true},
		{"faster", gateReport([]string{"FitAll", "ScoreTuple", "CompiledEval"}, []float64{300, 700, 50}), true},
		{"one-regressed", gateReport([]string{"FitAll", "ScoreTuple", "CompiledEval"}, []float64{1000, 2600, 100}), false},
		{"tracked-missing", gateReport([]string{"FitAll", "ScoreTuple"}, []float64{1000, 2000}), false},
		{"extra-untracked", gateReport([]string{"FitAll", "ScoreTuple", "CompiledEval", "New"}, []float64{1000, 2000, 100, 9e9}), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			got, err := compareReports(&sb, tc.fresh, base, 0.25, 2.0)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.ok {
				t.Fatalf("ok = %v, want %v; output:\n%s", got, tc.ok, sb.String())
			}
		})
	}
}

func TestCompareReportsIgnoresMetricsOnlyBaseline(t *testing.T) {
	// A baseline entry without timing but WITH custom metrics (a
	// paired-ratio benchmark gated by -floor) must not be ns/op-tracked —
	// there is nothing to regress against — and must not fail the gate.
	base := gateReport([]string{"FitAll"}, []float64{1000})
	base.Benchmarks = append(base.Benchmarks, Benchmark{
		Name: "MetricsOnly", Iterations: 1, Metrics: map[string]float64{"overhead_ratio": 0.99},
	})
	fresh := gateReport([]string{"FitAll"}, []float64{1100})
	var sb strings.Builder
	ok, err := compareReports(&sb, fresh, base, 0.25, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("metrics-only baseline entry failed the gate:\n%s", sb.String())
	}
}

// TestCompareReportsRefusesHollowBaselines pins the anti-silent-pass
// contract: a gate that cannot evaluate anything must error (exit 2 in
// main), never report "gate passed (0 benchmarks)".
func TestCompareReportsRefusesHollowBaselines(t *testing.T) {
	fresh := gateReport([]string{"FitAll"}, []float64{1000})
	cases := []struct {
		name string
		base *Report
	}{
		{"empty-baseline", &Report{}},
		{"malformed-entry", gateReport([]string{"FitAll", "NoNsNoMetrics"}, []float64{1000, 0})},
		{"all-untracked", &Report{Benchmarks: []Benchmark{
			{Name: "MetricsOnly", Iterations: 1, Metrics: map[string]float64{"x": 1}},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			ok, err := compareReports(&sb, fresh, tc.base, 0.25, 2.0)
			if err == nil {
				t.Fatalf("ok=%v with no error; a hollow baseline must be refused:\n%s", ok, sb.String())
			}
		})
	}
}

func TestCompareReportsAllocGate(t *testing.T) {
	withAllocs := func(ns, allocs float64) *Report {
		return &Report{Benchmarks: []Benchmark{{Name: "FitAll", Iterations: 1, NsPerOp: ns, AllocsPerOp: allocs}}}
	}
	base := withAllocs(1000, 28)
	compare := func(fresh *Report, allocFactor float64) (bool, string) {
		var sb strings.Builder
		ok, err := compareReports(&sb, fresh, base, 0.25, allocFactor)
		if err != nil {
			t.Fatal(err)
		}
		return ok, sb.String()
	}
	// Timing identical but allocations exploded past the factor: fail —
	// this is the hardware-independent regression signal.
	if ok, out := compare(withAllocs(1000, 7498), 2.0); ok {
		t.Fatalf("10x alloc growth passed the gate:\n%s", out)
	}
	// Modest alloc growth (GOMAXPROCS scaling of per-worker scratch)
	// stays within the loose factor.
	if ok, out := compare(withAllocs(1000, 50), 2.0); !ok {
		t.Fatalf("within-factor alloc growth failed the gate:\n%s", out)
	}
	// Factor 0 disables the alloc gate entirely.
	if ok, out := compare(withAllocs(1000, 7498), 0); !ok {
		t.Fatalf("disabled alloc gate still failed:\n%s", out)
	}
}

func TestCheckRatio(t *testing.T) {
	withMetric := func(name string, v float64) Benchmark {
		return Benchmark{Name: name, Iterations: 1, NsPerOp: 100, Metrics: map[string]float64{"events/sec": v}}
	}
	fresh := &Report{Benchmarks: []Benchmark{
		withMetric("JournalAppend", 900e3),
		withMetric("OnlineThroughput", 1000e3),
		{Name: "NoMetric", Iterations: 1, NsPerOp: 100},
	}}
	cases := []struct {
		name    string
		spec    string
		metric  string
		min     float64
		ok      bool
		wantErr bool
	}{
		{"above-floor", "JournalAppend/OnlineThroughput", "events/sec", 0.85, true, false},
		{"exactly-at-floor", "JournalAppend/OnlineThroughput", "events/sec", 0.90, true, false},
		{"below-floor", "JournalAppend/OnlineThroughput", "events/sec", 0.95, false, false},
		{"missing-numerator", "Nope/OnlineThroughput", "events/sec", 0.85, false, true},
		{"missing-denominator", "JournalAppend/Nope", "events/sec", 0.85, false, true},
		{"missing-metric", "NoMetric/OnlineThroughput", "events/sec", 0.85, false, true},
		{"bad-spec", "JournalAppend", "events/sec", 0.85, false, true},
		{"no-metric-flag", "JournalAppend/OnlineThroughput", "", 0.85, false, true},
		{"suffix-overrides-pass", "JournalAppend/OnlineThroughput:0.85", "events/sec", 0.99, true, false},
		{"suffix-overrides-fail", "JournalAppend/OnlineThroughput:0.95", "events/sec", 0.50, false, false},
		{"suffix-malformed", "JournalAppend/OnlineThroughput:fast", "events/sec", 0.85, false, true},
		{"suffix-nonpositive", "JournalAppend/OnlineThroughput:0", "events/sec", 0.85, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			ok, err := checkRatio(&sb, fresh, tc.spec, tc.metric, tc.min)
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tc.wantErr)
			}
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v; output:\n%s", ok, tc.ok, sb.String())
			}
		})
	}
}

func TestCheckFloor(t *testing.T) {
	fresh := &Report{Benchmarks: []Benchmark{
		{Name: "OnlineThroughputTelemetry", Iterations: 1, NsPerOp: 100,
			Metrics: map[string]float64{"overhead_ratio": 0.97, "events/sec": 1.5e6}},
		{Name: "NoMetric", Iterations: 1, NsPerOp: 100},
	}}
	cases := []struct {
		name    string
		spec    string
		ok      bool
		wantErr bool
	}{
		{"above-floor", "OnlineThroughputTelemetry:overhead_ratio:0.95", true, false},
		{"exactly-at-floor", "OnlineThroughputTelemetry:overhead_ratio:0.97", true, false},
		{"below-floor", "OnlineThroughputTelemetry:overhead_ratio:0.99", false, false},
		{"metric-with-slash", "OnlineThroughputTelemetry:events/sec:1000", true, false},
		{"missing-benchmark", "Nope:overhead_ratio:0.95", false, true},
		{"missing-metric", "NoMetric:overhead_ratio:0.95", false, true},
		{"bad-spec", "OnlineThroughputTelemetry:overhead_ratio", false, true},
		{"bad-min", "OnlineThroughputTelemetry:overhead_ratio:fast", false, true},
		{"nonpositive-min", "OnlineThroughputTelemetry:overhead_ratio:0", false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			ok, err := checkFloor(&sb, fresh, tc.spec)
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tc.wantErr)
			}
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v; output:\n%s", ok, tc.ok, sb.String())
			}
		})
	}
}

func TestRunGateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep *Report) string {
		path := filepath.Join(dir, name)
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	basePath := write("base.json", gateReport([]string{"FitAll"}, []float64{1000}))
	okPath := write("ok.json", gateReport([]string{"FitAll"}, []float64{1100}))
	badPath := write("bad.json", gateReport([]string{"FitAll"}, []float64{2000}))

	var sb strings.Builder
	ok, err := runGate(&sb, okPath, basePath, 0.25, 2.0)
	if err != nil || !ok {
		t.Fatalf("ok gate: ok=%v err=%v\n%s", ok, err, sb.String())
	}
	sb.Reset()
	ok, err = runGate(&sb, badPath, basePath, 0.25, 2.0)
	if err != nil || ok {
		t.Fatalf("bad gate: ok=%v err=%v\n%s", ok, err, sb.String())
	}
	if _, err := runGate(&sb, filepath.Join(dir, "missing.json"), basePath, 0.25, 2.0); err == nil {
		t.Fatal("missing fresh report accepted")
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	github.com/hpcsched/gensched	12.3s",
		"BenchmarkBroken abc",
		"--- BENCH: BenchmarkFoo",
		"goos: linux",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted", line)
		}
	}
}
