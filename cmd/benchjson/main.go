// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON benchmark report — the BENCH_sim.json artifact CI
// publishes so the performance trajectory of the simulator and the online
// scheduling subsystem is tracked across commits.
//
// Usage:
//
//	go test -run='^$' -bench='MicroSimulator|Fig6|OnlineThroughput' \
//	    -benchmem -benchtime=1x . | go run ./cmd/benchjson -out BENCH_sim.json
//
// Standard columns (ns/op, B/op, allocs/op, MB/s) become top-level
// fields; custom b.ReportMetric units (events/sec, jobs/op, ...) land in
// "metrics". Non-benchmark lines are ignored, so the full `go test`
// stream can be piped through unfiltered.
//
// With -gate it becomes the CI perf-regression gate instead: compare a
// fresh report against the committed baseline and fail when any benchmark
// tracked by the baseline slowed down beyond the tolerance:
//
//	go run ./cmd/benchjson -gate BENCH_sim.json -baseline BENCH_baseline.json -max-regress 0.25
//
// Gate mode can additionally enforce cross-benchmark ratios within the
// fresh report itself with -ratio/-ratio-metric/-min-ratio. Both sides
// of a ratio come from the same run on the same hardware, so unlike
// the baseline comparison it bounds *relative* overhead — e.g. the
// journaled submit path must sustain at least 85% of the bare online
// throughput:
//
//	go run ./cmd/benchjson -gate BENCH_sim.json -baseline BENCH_baseline.json \
//	    -ratio JournalAppend/OnlineThroughput -ratio-metric events/sec -min-ratio 0.85
//
// -ratio repeats, and each spec may carry its own minimum as a :MIN
// suffix (overriding -min-ratio), so one gate invocation can hold
// several overhead bounds at once:
//
//	-ratio JournalAppend/OnlineThroughput:0.85 -ratio-metric events/sec
//
// -floor gates a single benchmark's own metric against a minimum,
// NAME:METRIC:MIN — for benchmarks that measure a ratio internally
// (a paired overhead measurement immune to cross-benchmark machine
// drift) and report it via b.ReportMetric:
//
//	-floor OnlineThroughputTelemetry:overhead_ratio:0.95
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	MBPerSec    float64            `json:"mb_per_sec,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_sim.json document.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (empty = stdout)")
	gate := flag.String("gate", "", "gate mode: fresh report JSON to compare against -baseline")
	baseline := flag.String("baseline", "", "gate mode: committed baseline report JSON")
	maxRegress := flag.Float64("max-regress", 0.25, "gate mode: maximum tolerated ns/op slowdown (0.25 = +25%)")
	maxAllocFactor := flag.Float64("max-alloc-factor", 2.0, "gate mode: maximum tolerated allocs/op growth factor (0 disables); loose because GOMAXPROCS scales per-worker allocations")
	var ratios []string
	flag.Func("ratio", "gate mode: cross-benchmark ratio check NUM/DEN[:MIN] evaluated on the fresh report (repeatable)", func(s string) error {
		if s == "" {
			return fmt.Errorf("empty -ratio spec")
		}
		ratios = append(ratios, s)
		return nil
	})
	ratioMetric := flag.String("ratio-metric", "", "gate mode: custom metric unit the -ratio benchmarks are compared on (e.g. events/sec)")
	minRatio := flag.Float64("min-ratio", 0.85, "gate mode: minimum tolerated NUM/DEN value of -ratio-metric for specs without their own :MIN")
	var floors []string
	flag.Func("floor", "gate mode: per-benchmark metric floor NAME:METRIC:MIN evaluated on the fresh report (repeatable)", func(s string) error {
		if s == "" {
			return fmt.Errorf("empty -floor spec")
		}
		floors = append(floors, s)
		return nil
	})
	flag.Parse()
	if *gate != "" || *baseline != "" {
		if *gate == "" || *baseline == "" {
			fmt.Fprintln(os.Stderr, "benchjson: gate mode needs both -gate and -baseline")
			os.Exit(2)
		}
		pass, err := runGate(os.Stdout, *gate, *baseline, *maxRegress, *maxAllocFactor)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if len(ratios) > 0 || len(floors) > 0 {
			fresh, err := readReport(*gate)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(2)
			}
			for _, spec := range ratios {
				rok, err := checkRatio(os.Stdout, fresh, spec, *ratioMetric, *minRatio)
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchjson:", err)
					os.Exit(2)
				}
				pass = pass && rok
			}
			for _, spec := range floors {
				fok, err := checkFloor(os.Stdout, fresh, spec)
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchjson:", err)
					os.Exit(2)
				}
				pass = pass && fok
			}
		}
		if !pass {
			os.Exit(1)
		}
		return
	}
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		w = f
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks\n", len(rep.Benchmarks))
}

// runGate compares the fresh report against the baseline and reports
// pass/fail. Every benchmark named by the baseline with a positive ns/op
// is tracked; a tracked benchmark missing from the fresh report fails the
// gate (a silently dropped benchmark must not pass as "no regression").
// ok is false when any tracked benchmark regressed beyond maxRegress on
// ns/op, or grew its allocs/op beyond allocFactor — the allocation count
// is hardware-independent, so it catches the O(work) regression class
// even when timings are noisy.
//
// A baseline that tracks nothing — empty, or only malformed entries — is
// an error, not a pass: "gate passed (0 benchmarks)" is how a renamed
// benchmark or a truncated baseline file silently turns the gate off.
func runGate(w io.Writer, freshPath, basePath string, maxRegress, allocFactor float64) (ok bool, err error) {
	fresh, err := readReport(freshPath)
	if err != nil {
		return false, err
	}
	base, err := readReport(basePath)
	if err != nil {
		return false, err
	}
	return compareReports(w, fresh, base, maxRegress, allocFactor)
}

func readReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// compareReports prints the per-benchmark comparison and returns whether
// every tracked benchmark stayed within the tolerances. The error return
// is for a baseline the gate cannot honestly evaluate: an entry with
// neither a positive ns/op nor custom metrics (malformed — it gates
// nothing and floors nothing), or a baseline tracking zero benchmarks.
func compareReports(w io.Writer, fresh, base *Report, maxRegress, allocFactor float64) (bool, error) {
	freshBy := make(map[string]Benchmark, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		freshBy[b.Name] = b
	}
	tracked := make([]Benchmark, 0, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		switch {
		case b.NsPerOp > 0:
			tracked = append(tracked, b)
		case len(b.Metrics) > 0:
			// Metrics-only entries (paired-ratio benchmarks) are gated by
			// -floor/-ratio, not the ns/op comparison: legitimately untracked.
		default:
			return false, fmt.Errorf("baseline entry %q has neither a positive ns/op nor metrics; nothing to gate against — regenerate the baseline", b.Name)
		}
	}
	if len(tracked) == 0 {
		return false, fmt.Errorf("baseline tracks no benchmarks (no entry has a positive ns/op); refusing to pass an empty gate")
	}
	sort.Slice(tracked, func(i, j int) bool { return tracked[i].Name < tracked[j].Name })
	ok := true
	fmt.Fprintf(w, "%-32s %14s %14s %8s %12s\n", "benchmark", "baseline ns/op", "fresh ns/op", "delta", "allocs")
	for _, b := range tracked {
		f, present := freshBy[b.Name]
		if !present || f.NsPerOp <= 0 {
			ok = false
			fmt.Fprintf(w, "%-32s %14.0f %14s %8s %12s  FAIL (missing from fresh report)\n", b.Name, b.NsPerOp, "-", "-", "-")
			continue
		}
		delta := f.NsPerOp/b.NsPerOp - 1
		verdict := "ok"
		if delta > maxRegress {
			ok = false
			verdict = fmt.Sprintf("FAIL (> +%.0f%%)", maxRegress*100)
		}
		allocs := fmt.Sprintf("%.0f->%.0f", b.AllocsPerOp, f.AllocsPerOp)
		if allocFactor > 0 && b.AllocsPerOp > 0 && f.AllocsPerOp > b.AllocsPerOp*allocFactor {
			ok = false
			verdict = fmt.Sprintf("FAIL (allocs > %.1fx)", allocFactor)
		}
		fmt.Fprintf(w, "%-32s %14.0f %14.0f %+7.1f%% %12s  %s\n", b.Name, b.NsPerOp, f.NsPerOp, delta*100, allocs, verdict)
	}
	if ok {
		fmt.Fprintf(w, "benchjson: gate passed (%d benchmarks within +%.0f%% and allocs within %.1fx)\n", len(tracked), maxRegress*100, allocFactor)
	} else {
		fmt.Fprintf(w, "benchjson: gate FAILED (tolerances: +%.0f%% ns/op, %.1fx allocs)\n", maxRegress*100, allocFactor)
	}
	return ok, nil
}

// checkRatio enforces a cross-benchmark ratio within one report:
// metric(num) / metric(den) must be at least minRatio, or the spec's own
// :MIN suffix when present. Both sides come from the same run on the
// same hardware, so the check is hardware-independent — it bounds
// relative overhead (a wrapped or instrumented path against its bare
// counterpart), which is exactly the property an absolute baseline
// cannot gate. A missing benchmark or metric fails hard: a dropped
// measurement must not pass as "no overhead".
func checkRatio(w io.Writer, fresh *Report, spec, metric string, minRatio float64) (bool, error) {
	names := spec
	if pair, min, found := strings.Cut(spec, ":"); found {
		v, err := strconv.ParseFloat(min, 64)
		if err != nil || v <= 0 {
			return false, fmt.Errorf("-ratio %q: bad :MIN suffix %q", spec, min)
		}
		names, minRatio = pair, v
	}
	numName, denName, found := strings.Cut(names, "/")
	if !found || numName == "" || denName == "" {
		return false, fmt.Errorf("-ratio %q: want NUMERATOR/DENOMINATOR[:MIN] benchmark names", spec)
	}
	if metric == "" {
		return false, fmt.Errorf("-ratio needs -ratio-metric")
	}
	lookup := func(name string) (float64, error) {
		for _, b := range fresh.Benchmarks {
			if b.Name == name {
				if v := b.Metrics[metric]; v > 0 {
					return v, nil
				}
				return 0, fmt.Errorf("benchmark %s has no positive %q metric", name, metric)
			}
		}
		return 0, fmt.Errorf("benchmark %s missing from fresh report", name)
	}
	num, err := lookup(numName)
	if err != nil {
		return false, err
	}
	den, err := lookup(denName)
	if err != nil {
		return false, err
	}
	r := num / den
	verdict := "ok"
	ok := r >= minRatio
	if !ok {
		verdict = fmt.Sprintf("FAIL (< %.2f)", minRatio)
	}
	fmt.Fprintf(w, "benchjson: ratio %s on %s: %.0f / %.0f = %.3f (min %.2f)  %s\n",
		spec, metric, num, den, r, minRatio, verdict)
	return ok, nil
}

// checkFloor enforces a per-benchmark metric floor, spec NAME:METRIC:MIN
// (colon-separated because metric units like events/sec contain a
// slash). It gates benchmarks that measure a ratio internally — e.g. a
// paired overhead measurement whose both sides share one measurement
// window, immune to the machine drift a cross-benchmark -ratio is
// exposed to. A missing benchmark or metric fails hard, like -ratio.
func checkFloor(w io.Writer, fresh *Report, spec string) (bool, error) {
	parts := strings.SplitN(spec, ":", 3)
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" {
		return false, fmt.Errorf("-floor %q: want NAME:METRIC:MIN", spec)
	}
	name, metric := parts[0], parts[1]
	min, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || min <= 0 {
		return false, fmt.Errorf("-floor %q: bad MIN %q", spec, parts[2])
	}
	for _, b := range fresh.Benchmarks {
		if b.Name != name {
			continue
		}
		v, present := b.Metrics[metric]
		if !present {
			return false, fmt.Errorf("benchmark %s has no %q metric", name, metric)
		}
		ok := v >= min
		verdict := "ok"
		if !ok {
			verdict = fmt.Sprintf("FAIL (< %g)", min)
		}
		fmt.Fprintf(w, "benchjson: floor %s: %s = %.3f (min %g)  %s\n", name, metric, v, min, verdict)
		return ok, nil
	}
	return false, fmt.Errorf("benchmark %s missing from fresh report", name)
}

// parse scans `go test -bench` output for benchmark result lines.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	return rep, sc.Err()
}

// parseLine parses one `Benchmark<Name>[-P]  N  value unit  value unit...`
// line; ok is false for anything else.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the GOMAXPROCS suffix (BenchmarkFoo-8 → BenchmarkFoo).
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: strings.TrimPrefix(name, "Benchmark"), Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "MB/s":
			b.MBPerSec = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}
