// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON benchmark report — the BENCH_sim.json artifact CI
// publishes so the performance trajectory of the simulator and the online
// scheduling subsystem is tracked across commits.
//
// Usage:
//
//	go test -run='^$' -bench='MicroSimulator|Fig6|OnlineThroughput' \
//	    -benchmem -benchtime=1x . | go run ./cmd/benchjson -out BENCH_sim.json
//
// Standard columns (ns/op, B/op, allocs/op, MB/s) become top-level
// fields; custom b.ReportMetric units (events/sec, jobs/op, ...) land in
// "metrics". Non-benchmark lines are ignored, so the full `go test`
// stream can be piped through unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	MBPerSec    float64            `json:"mb_per_sec,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_sim.json document.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (empty = stdout)")
	flag.Parse()
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		w = f
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks\n", len(rep.Benchmarks))
}

// parse scans `go test -bench` output for benchmark result lines.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	return rep, sc.Err()
}

// parseLine parses one `Benchmark<Name>[-P]  N  value unit  value unit...`
// line; ok is false for anything else.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the GOMAXPROCS suffix (BenchmarkFoo-8 → BenchmarkFoo).
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: strings.TrimPrefix(name, "Benchmark"), Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "MB/s":
			b.MBPerSec = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}
