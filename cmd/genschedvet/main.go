// Command genschedvet runs gensched's determinism-and-discipline
// analyzer suite (detlint, maporder, errlint, seedlint) over the
// module's packages and reports every contract violation as
// file:line:col diagnostics. It is pure stdlib, walks and type-checks
// packages itself, and is wired into CI as a hard gate:
//
//	go run ./cmd/genschedvet ./...          # human-readable
//	go run ./cmd/genschedvet -json ./...    # machine-readable, for CI
//
// Exit status: 0 clean, 1 diagnostics found, 2 load/type-check failure.
// See DESIGN.md "Static analysis & determinism contracts" for the zone
// table and the escape-hatch policy.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/hpcsched/gensched/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: genschedvet [-json] [packages]\n\npackages follow the go tool's shape: ./..., ./cmd/..., ./internal/sim\n(default ./...)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.Load(cwd, patterns)
	if err != nil {
		fatal(err)
	}
	diags := analysis.Run(pkgs, analysis.All())

	// Diagnostics print module-relative paths so output is stable
	// across checkouts and clickable from the repo root.
	if root, err := analysis.ModuleRoot(cwd); err == nil {
		for i := range diags {
			if rel, err := filepath.Rel(root, diags[i].File); err == nil {
				diags[i].File = filepath.ToSlash(rel)
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "genschedvet: %d violation(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genschedvet:", err)
	os.Exit(2)
}
