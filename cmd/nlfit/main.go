// Command nlfit is workflow 2 of the paper's artifact
// (nonlinear-regression): it reads a score distribution CSV (the output of
// traindata), enumerates all 576 candidate nonlinear functions
// f = (c1·α(r)) op1 (c2·β(n)) op2 (c3·γ(s)), fits each by weighted
// least squares (Eq. 4, weight r·n), and prints them in decreasing order
// of fitness (Eq. 5) in the artifact's output style.
//
// Usage:
//
//	nlfit score-distribution.csv
//	nlfit -top 4 -unweighted score-distribution.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hpcsched/gensched/internal/mlfit"
	"github.com/hpcsched/gensched/internal/trainer"
)

func main() {
	var (
		top        = flag.Int("top", 10, "how many fitted functions to print (0 = all 576)")
		distinct   = flag.Bool("distinct", true, "collapse algebraically equivalent functions")
		unweighted = flag.Bool("unweighted", false, "drop the Eq. 4 r*n weighting (ablation)")
		polish     = flag.Bool("polish", false, "refine with Levenberg-Marquardt after the closed-form solve")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: nlfit [flags] score-distribution.csv")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *top, *distinct, *unweighted, *polish); err != nil {
		fmt.Fprintln(os.Stderr, "nlfit:", err)
		os.Exit(1)
	}
}

func run(path string, top int, distinct, unweighted, polish bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	samples, err := trainer.ReadScoreCSV(f)
	if err != nil {
		return err
	}
	opt := mlfit.Options{Polish: polish}
	if unweighted {
		opt.Weight = func(mlfit.Sample) float64 { return 1 }
	}
	ranked, err := mlfit.FitAll(samples, opt)
	if err != nil {
		return err
	}
	fmt.Printf("# %d samples, %d candidate functions\n", len(samples), len(ranked))
	show := ranked
	if distinct {
		if top <= 0 {
			top = len(ranked)
		}
		show = mlfit.TopDistinct(ranked, top)
	} else if top > 0 && top < len(show) {
		show = show[:top]
	}
	for i, r := range show {
		simp, ok := r.Func.Simplified()
		fmt.Printf("%3d. %s,\n     fitness=%.7g\n", i+1, r.Func, r.Rank)
		if ok {
			fmt.Printf("     simplified: %s\n", simp.Compact())
		}
	}
	return nil
}
