// Command swfstat inspects a trace in Standard Workload Format: platform
// size, job count, utilization, size and runtime distributions — the
// numbers Table 5 of the paper reports per log — plus optional ASCII
// histograms.
//
// Usage:
//
//	swfstat trace.swf
//	swfstat -hist trace.swf
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"github.com/hpcsched/gensched/internal/stats"
	"github.com/hpcsched/gensched/internal/workload"
)

func main() {
	hist := flag.Bool("hist", false, "print log2(size) and log10(runtime) histograms")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: swfstat [-hist] trace.swf")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *hist); err != nil {
		fmt.Fprintln(os.Stderr, "swfstat:", err)
		os.Exit(1)
	}
}

func run(path string, hist bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := workload.ParseSWF(f)
	if err != nil {
		return err
	}
	st := tr.ComputeStats()
	fmt.Printf("trace:        %s\n", orUnknown(tr.Name))
	fmt.Printf("max procs:    %d\n", tr.MaxProcs)
	fmt.Printf("jobs:         %d (skipped: %s)\n", st.Jobs, tr.Header[";gensched-skipped"])
	fmt.Printf("duration:     %.1f days\n", st.DurationSec/86400)
	fmt.Printf("utilization:  %.1f%%\n", 100*st.Utilization)
	fmt.Printf("mean size:    %.1f cores (max %d)\n", st.MeanCores, st.MaxCores)
	fmt.Printf("mean runtime: %.0f s\n", st.MeanRuntime)

	runtimes := make([]float64, len(tr.Jobs))
	sizes := make([]float64, len(tr.Jobs))
	accs := make([]float64, 0, len(tr.Jobs))
	for i, j := range tr.Jobs {
		runtimes[i] = j.Runtime
		sizes[i] = float64(j.Cores)
		if j.Estimate > 0 {
			accs = append(accs, j.Runtime/j.Estimate)
		}
	}
	fmt.Printf("runtime p50/p90/p99: %.0f / %.0f / %.0f s\n",
		stats.Quantile(runtimes, 0.5), stats.Quantile(runtimes, 0.9), stats.Quantile(runtimes, 0.99))
	fmt.Printf("size p50/p90/p99:    %.0f / %.0f / %.0f cores\n",
		stats.Quantile(sizes, 0.5), stats.Quantile(sizes, 0.9), stats.Quantile(sizes, 0.99))
	if len(accs) > 0 {
		fmt.Printf("estimate accuracy r/e p50: %.2f\n", stats.Quantile(accs, 0.5))
	}

	if hist {
		fmt.Println("\nlog10(runtime) histogram:")
		h := stats.NewHistogram(0, math.Log10(stats.Max(runtimes))+0.1, 12)
		for _, r := range runtimes {
			h.Add(math.Log10(math.Max(r, 1)))
		}
		fmt.Print(h.Render(50))
		fmt.Println("\nlog2(size) histogram:")
		h2 := stats.NewHistogram(0, math.Log2(stats.Max(sizes))+0.1, 12)
		for _, s := range sizes {
			h2.Add(math.Log2(math.Max(s, 1)))
		}
		fmt.Print(h2.Render(50))
	}
	return nil
}

func orUnknown(s string) string {
	if s == "" {
		return "(unnamed)"
	}
	return s
}
