// Command paperrepro regenerates every table and figure of the paper and
// writes the series as CSV files plus a human-readable report.
//
// The training-side experiments (Figures 1–3, Table 3) drive the
// internal experiments package; the evaluation scenarios (Figures 4–9,
// Table 4) are declared as gensched Scenarios — one policy-axis Grid per
// scenario over the suite's shared workloads — and executed by the
// public Runner, with Ctrl-C cancelling the run cleanly.
//
// Usage:
//
//	paperrepro -out out/              # reduced scale (minutes)
//	paperrepro -full -out out/        # paper scale (expect hours)
//	paperrepro -only scenarios,table3 # a subset of experiments
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	gensched "github.com/hpcsched/gensched"
	"github.com/hpcsched/gensched/internal/experiments"
	"github.com/hpcsched/gensched/internal/expr"
	"github.com/hpcsched/gensched/internal/trainer"
)

func main() {
	var (
		out  = flag.String("out", "out", "output directory")
		full = flag.Bool("full", false, "run at the paper's full scale")
		only = flag.String("only", "", "comma-separated experiment ids (fig1,fig2,fig3,table3,table4,table5,scenarios)")
	)
	flag.Parse()
	cfg := experiments.QuickConfig()
	if *full {
		cfg = experiments.DefaultConfig()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, cfg, *out, *only); err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg experiments.Config, outDir, only string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	want := map[string]bool{}
	for _, id := range strings.Split(only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }
	report, err := os.Create(filepath.Join(outDir, "report.txt"))
	if err != nil {
		return err
	}
	defer report.Close()
	logf := func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
		fmt.Fprintf(report, format+"\n", args...)
	}
	start := time.Now()

	if selected("fig1") {
		res, err := experiments.Fig1(cfg, 2)
		if err != nil {
			return err
		}
		for i, ts := range res {
			path := filepath.Join(outDir, fmt.Sprintf("fig1%c.csv", 'a'+i))
			if err := writeFile(path, func(w io.Writer) error {
				fmt.Fprintln(w, "task,score")
				for ti, s := range ts.Scores {
					fmt.Fprintf(w, "%d,%g\n", ti, s)
				}
				return nil
			}); err != nil {
				return err
			}
			logf("fig1%c: %d trial scores -> %s (mean line %.4f)", 'a'+i, len(ts.Scores), path, 1.0/float64(len(ts.Scores)))
		}
	}

	if selected("fig2") {
		res, err := experiments.Fig2(cfg)
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, "fig2.csv")
		if err := writeFile(path, func(w io.Writer) error {
			fmt.Fprintln(w, "trials,normalized_stddev")
			for i, c := range res.Counts {
				fmt.Fprintf(w, "%d,%g\n", c, res.Normalized[i])
			}
			return nil
		}); err != nil {
			return err
		}
		logf("fig2 -> %s\n%s", path, experiments.FormatFig2(res))
	}

	var learned []expr.Func
	if selected("table3") {
		res, err := experiments.Table3(cfg)
		if err != nil {
			return err
		}
		samples, err := trainer.ScoreDistribution(1, trainer.DefaultSpec(),
			trainer.TrialConfig{Trials: min(cfg.Trials, 1024)}, cfg.Seed)
		if err == nil && len(samples) > 0 {
			// Also persist a small sample of the training distribution;
			// best-effort, but a failure is reported, not swallowed.
			samplePath := filepath.Join(outDir, "score-distribution-sample.csv")
			if err := writeFile(samplePath, func(w io.Writer) error {
				return trainer.WriteScoreCSV(w, samples)
			}); err != nil {
				logf("warning: %v", err)
			}
		}
		logf("table3:\n%s", experiments.FormatTable3(res))
		for _, b := range res.Best {
			s, _ := b.Func.Simplified()
			learned = append(learned, s)
		}
		// Persist the learned policies as parseable strings: each line
		// loads back via `schedtest -custom "<line>"`.
		if err := writeFile(filepath.Join(outDir, "learned-policies.txt"), func(w io.Writer) error {
			for _, fn := range learned {
				fmt.Fprintln(w, fn.Compact())
			}
			return nil
		}); err != nil {
			return err
		}
		logf("learned policies -> %s", filepath.Join(outDir, "learned-policies.txt"))
	}

	if selected("fig3") {
		funcs := []expr.Func{
			{Form: expr.Form{A: expr.BaseLog, B: expr.BaseID, C: expr.BaseLog, Op1: expr.OpMul, Op2: expr.OpAdd}, C: [3]float64{1, 1, 8.70e2}},
			{Form: expr.Form{A: expr.BaseSqrt, B: expr.BaseID, C: expr.BaseLog, Op1: expr.OpMul, Op2: expr.OpAdd}, C: [3]float64{1, 1, 2.56e4}},
			{Form: expr.Form{A: expr.BaseID, B: expr.BaseID, C: expr.BaseLog, Op1: expr.OpMul, Op2: expr.OpAdd}, C: [3]float64{1, 1, 6.86e6}},
			{Form: expr.Form{A: expr.BaseID, B: expr.BaseSqrt, C: expr.BaseLog, Op1: expr.OpMul, Op2: expr.OpAdd}, C: [3]float64{1, 1, 5.30e5}},
		}
		maps, err := experiments.Fig3(funcs, []string{"F1", "F2", "F3", "F4"}, 64)
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, "fig3.csv")
		if err := writeFile(path, func(w io.Writer) error {
			fmt.Fprintln(w, "policy,panel,x,y,z")
			for _, h := range maps {
				panel := h.XLabel + "|" + h.YLabel
				for yi, y := range h.Ys {
					for xi, x := range h.Xs {
						fmt.Fprintf(w, "%s,%s,%g,%g,%g\n", h.Policy, panel, x, y, h.Z[yi][xi])
					}
				}
			}
			return nil
		}); err != nil {
			return err
		}
		logf("fig3: %d panels -> %s", len(maps), path)
	}

	if selected("table5") {
		rows, err := experiments.Table5(cfg)
		if err != nil {
			return err
		}
		logf("table5:\n%s", experiments.FormatTable5(rows))
	}

	if selected("table4") || selected("scenarios") {
		// The suite builds every workload once (fig4a/5a/6a share their
		// sequences, as the paper re-schedules the same windows under
		// each condition); each scenario then becomes one policy-axis
		// grid executed by the public Runner.
		suite, err := experiments.BuildSuite(cfg)
		if err != nil {
			return err
		}
		t4 := &experiments.Table4Result{}
		for _, p := range gensched.Policies() {
			t4.Policies = append(t4.Policies, p.Name())
		}
		r := &gensched.Runner{Workers: cfg.Workers}
		for _, esc := range suite.Scenarios() {
			opts := []gensched.Option{
				gensched.WithName(esc.ID),
				gensched.WithSeed(cfg.Seed),
				gensched.WithBackfill(esc.Backfill),
			}
			if esc.UseEstimates {
				opts = append(opts, gensched.WithEstimates())
			}
			sc, err := gensched.NewScenario(opts...)
			if err != nil {
				return err
			}
			g, err := gensched.NewGrid(sc,
				gensched.OverSources(gensched.FixedWindows(esc.Name, esc.Cores, esc.Windows)),
				gensched.OverPolicies())
			if err != nil {
				return err
			}
			res, err := r.Run(ctx, g)
			if err != nil {
				return err
			}
			path := filepath.Join(outDir, esc.ID+".csv")
			if err := writeFile(path, res.WriteCSV); err != nil {
				return err
			}
			logf("%s (%s) -> %s", esc.ID, esc.Name, path)
			logf("%s", res.ArtifactReport())
			row := experiments.Table4Row{Label: esc.Name}
			for _, c := range res.Cells {
				row.Medians = append(row.Medians, c.Median())
			}
			t4.Rows = append(t4.Rows, row)
		}
		logf("table4:\n%s", t4.Format())
	}

	logf("paperrepro: done in %v", time.Since(start).Round(time.Second))
	// The deferred close backstops early returns; on success the explicit
	// close surfaces any write-out error instead of dropping it.
	return report.Close()
}

// writeFile writes one report artifact, surfacing every write and close
// error — a silently truncated CSV is worse than a crash.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := write(bw); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := bw.Flush(); err != nil {
		_ = f.Close() // the flush error is the one worth reporting
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}
