// The wire codec: hand-rolled, fixed-layout little-endian encoding for
// records and snapshots. encoding/gob and encoding/json are deliberately
// avoided — both walk maps and neither guarantees a canonical byte
// stream, and the snapshot contract is exactly canonicality: encoding the
// same state twice yields the same bytes (the serialization-idempotence
// property test pins snapshot→restore→snapshot byte-identical). Floats
// are carried as IEEE-754 bit patterns, so ±Inf sentinels and every
// accumulated rounding survive a round trip untouched.

package durable

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/hpcsched/gensched/internal/adaptive"
	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/schedcore"
	"github.com/hpcsched/gensched/internal/workload"
)

// --- append primitives ---------------------------------------------------

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendInt(b []byte, v int) []byte    { return appendU64(b, uint64(int64(v))) }
func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}
func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}
func appendInts(b []byte, v []int) []byte {
	b = appendU32(b, uint32(len(v)))
	for _, x := range v {
		b = appendInt(b, x)
	}
	return b
}

func appendJob(b []byte, j workload.Job) []byte {
	b = appendInt(b, j.ID)
	b = appendF64(b, j.Submit)
	b = appendF64(b, j.Runtime)
	b = appendF64(b, j.Estimate)
	return appendInt(b, j.Cores)
}

func appendJobs(b []byte, js []workload.Job) []byte {
	b = appendU32(b, uint32(len(js)))
	for _, j := range js {
		b = appendJob(b, j)
	}
	return b
}

// --- decoder -------------------------------------------------------------

// decoder consumes a payload with a sticky error: after the first
// malformed read every subsequent read returns zero values, and finish
// reports the failure (or leftover bytes) once.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("durable: truncated payload reading %s", what)
	}
}

func (d *decoder) u32(what string) uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *decoder) u64(what string) uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *decoder) int(what string) int     { return int(int64(d.u64(what))) }
func (d *decoder) f64(what string) float64 { return math.Float64frombits(d.u64(what)) }
func (d *decoder) bool(what string) bool {
	if d.err != nil || len(d.b) < 1 {
		d.fail(what)
		return false
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v != 0
}

func (d *decoder) str(what string) string {
	n := int(d.u32(what))
	if d.err != nil || len(d.b) < n {
		d.fail(what)
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// count reads a collection length and bounds it by the bytes that remain
// (elemSize is the minimum encoding of one element), so corrupt payloads
// cannot demand absurd allocations.
func (d *decoder) count(what string, elemSize int) int {
	n := int(d.u32(what))
	if d.err == nil && n*elemSize > len(d.b) {
		d.err = fmt.Errorf("durable: %s count %d exceeds remaining payload", what, n)
		return 0
	}
	return n
}

func (d *decoder) ints(what string) []int {
	n := d.count(what, 8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.int(what)
	}
	return out
}

func (d *decoder) job(what string) workload.Job {
	var j workload.Job
	j.ID = d.int(what)
	j.Submit = d.f64(what)
	j.Runtime = d.f64(what)
	j.Estimate = d.f64(what)
	j.Cores = d.int(what)
	return j
}

func (d *decoder) jobs(what string) []workload.Job {
	n := d.count(what, 5*8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]workload.Job, n)
	for i := range out {
		out[i] = d.job(what)
	}
	return out
}

func (d *decoder) finish(what string) error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("durable: %s payload has %d trailing bytes", what, len(d.b))
	}
	return nil
}

// --- record codec --------------------------------------------------------

// AppendRecord encodes r's payload (no framing) onto dst. The encoding is
// the journal's: op byte followed by the op's fixed-width LE fields. It is
// exported for the federation wire protocol (internal/fed), which carries
// the same record payloads inside length-prefixed frames — one codec, one
// set of golden vectors, whether a record is bound for disk or a socket.
func AppendRecord(dst []byte, r *Record) ([]byte, error) {
	return appendRecord(dst, r)
}

// DecodeRecord parses one record payload produced by AppendRecord.
func DecodeRecord(payload []byte) (Record, error) {
	return decodeRecord(payload)
}

// appendRecord encodes r's payload (no framing) onto dst.
func appendRecord(dst []byte, r *Record) ([]byte, error) {
	dst = append(dst, byte(r.Op))
	switch r.Op {
	case OpInit:
		if r.Init == nil {
			return nil, fmt.Errorf("durable: init record without init state")
		}
		dst = appendInitState(dst, r.Init)
	case OpSubmit:
		dst = appendF64(dst, r.Now)
		dst = appendJob(dst, r.Job)
	case OpComplete:
		dst = appendF64(dst, r.Now)
		dst = appendInt(dst, r.ID)
	case OpAdvance:
		dst = appendF64(dst, r.Now)
	case OpPolicy:
		dst = appendStr(dst, r.Name)
		dst = appendStr(dst, r.Expr)
	case OpAdaptStart:
		if r.Adapt == nil {
			return nil, fmt.Errorf("durable: adapt-start record without config")
		}
		dst = appendAdaptConfig(dst, r.Adapt)
	case OpAdaptStop:
	default:
		return nil, fmt.Errorf("durable: cannot encode unknown op %d", r.Op)
	}
	return dst, nil
}

// decodeRecord parses one record payload.
func decodeRecord(payload []byte) (Record, error) {
	if len(payload) == 0 {
		return Record{}, fmt.Errorf("durable: empty record payload")
	}
	r := Record{Op: Op(payload[0])}
	d := &decoder{b: payload[1:]}
	switch r.Op {
	case OpInit:
		ini := decodeInitState(d)
		r.Init = &ini
	case OpSubmit:
		r.Now = d.f64("submit now")
		r.Job = d.job("submit job")
	case OpComplete:
		r.Now = d.f64("complete now")
		r.ID = d.int("complete id")
	case OpAdvance:
		r.Now = d.f64("advance now")
	case OpPolicy:
		r.Name = d.str("policy name")
		r.Expr = d.str("policy expr")
	case OpAdaptStart:
		ac := decodeAdaptConfig(d)
		r.Adapt = &ac
	case OpAdaptStop:
	default:
		return Record{}, fmt.Errorf("durable: unknown record op %d", r.Op)
	}
	return r, d.finish(r.Op.String())
}

func appendInitState(b []byte, ini *InitState) []byte {
	b = appendInt(b, ini.Cores)
	b = appendInt(b, ini.Backfill)
	b = appendBool(b, ini.UseEstimates)
	b = appendF64(b, ini.Tau)
	b = appendStr(b, ini.PolicyName)
	return appendStr(b, ini.PolicyExpr)
}

func decodeInitState(d *decoder) InitState {
	var ini InitState
	ini.Cores = d.int("init cores")
	ini.Backfill = d.int("init backfill")
	ini.UseEstimates = d.bool("init estimates")
	ini.Tau = d.f64("init tau")
	ini.PolicyName = d.str("init policy name")
	ini.PolicyExpr = d.str("init policy expr")
	return ini
}

func appendAdaptConfig(b []byte, ac *AdaptConfig) []byte {
	b = appendInt(b, ac.Window)
	b = appendInt(b, ac.MinWindow)
	b = appendF64(b, ac.Interval)
	b = appendF64(b, ac.MinDrift)
	b = appendInt(b, ac.SSize)
	b = appendInt(b, ac.QSize)
	b = appendInt(b, ac.Tuples)
	b = appendInt(b, ac.Trials)
	b = appendInt(b, ac.TopK)
	b = appendF64(b, ac.Margin)
	b = appendF64(b, ac.Cooldown)
	b = appendInt(b, ac.Workers)
	return appendU64(b, ac.Seed)
}

func decodeAdaptConfig(d *decoder) AdaptConfig {
	var ac AdaptConfig
	ac.Window = d.int("adapt window")
	ac.MinWindow = d.int("adapt min window")
	ac.Interval = d.f64("adapt interval")
	ac.MinDrift = d.f64("adapt min drift")
	ac.SSize = d.int("adapt ssize")
	ac.QSize = d.int("adapt qsize")
	ac.Tuples = d.int("adapt tuples")
	ac.Trials = d.int("adapt trials")
	ac.TopK = d.int("adapt topk")
	ac.Margin = d.f64("adapt margin")
	ac.Cooldown = d.f64("adapt cooldown")
	ac.Workers = d.int("adapt workers")
	ac.Seed = d.u64("adapt seed")
	return ac
}

// --- snapshot codec ------------------------------------------------------

// AdaptState is the adaptive loop's part of a snapshot: the start request
// that attached it plus the controller's serialized state.
type AdaptState struct {
	Config AdaptConfig
	State  adaptive.ControllerState
}

// FedState tags a shard's snapshot with its place in a federation. It
// exists so per-shard recovery can refuse a snapshot moved between
// shards or federations, and so the router's cumulative steal count —
// which completed jobs no longer witness — survives a restart: each
// shard carries the diversions onto itself, and the recovered total is
// the sum plus whatever per-record replay re-derives.
type FedState struct {
	Shard  int
	Shards int
	Seed   uint64
	// StolenOnto is the cumulative count of placements the router
	// diverted onto this shard off their hash-primary, as of Seq.
	StolenOnto int
	// VT is the router's fluid-model virtual completion time for this
	// shard as of Seq. Placements after recovery depend on it, so it must
	// survive the restart for routing to stay bit-identical.
	VT float64
}

// Snapshot is one checkpoint: the full scheduler image at journal
// sequence Seq. Recovery loads it and replays only records >= Seq.
type Snapshot struct {
	Seq  uint64
	Init InitState
	// PolicyName/PolicyExpr is the descriptor of the policy active at the
	// checkpoint (it differs from Init's after swaps and promotions).
	PolicyName string
	PolicyExpr string
	Sched      online.SchedulerState
	Adapt      *AdaptState
	// Fed is nil for a single-engine snapshot — in which case the
	// encoding is bit-for-bit the pre-federation format — and set for a
	// federated shard's snapshot, as a trailing section.
	Fed *FedState
}

// EncodeSnapshot renders the snapshot payload (no framing). The encoding
// is canonical: equal states produce equal bytes.
func EncodeSnapshot(snap *Snapshot) []byte {
	b := make([]byte, 0, 1024)
	b = appendU64(b, snap.Seq)
	b = appendInitState(b, &snap.Init)
	b = appendStr(b, snap.PolicyName)
	b = appendStr(b, snap.PolicyExpr)
	b = appendSchedulerState(b, &snap.Sched)
	if snap.Adapt == nil {
		b = appendBool(b, false)
	} else {
		b = appendBool(b, true)
		b = appendAdaptConfig(b, &snap.Adapt.Config)
		b = appendControllerState(b, &snap.Adapt.State)
	}
	// The fed section is strictly trailing and written only when present,
	// so single-engine snapshots keep the pre-federation byte format.
	if snap.Fed != nil {
		b = appendBool(b, true)
		b = appendInt(b, snap.Fed.Shard)
		b = appendInt(b, snap.Fed.Shards)
		b = appendU64(b, snap.Fed.Seed)
		b = appendInt(b, snap.Fed.StolenOnto)
		b = appendF64(b, snap.Fed.VT)
	}
	return b
}

// DecodeSnapshot parses a snapshot payload.
func DecodeSnapshot(payload []byte) (*Snapshot, error) {
	d := &decoder{b: payload}
	snap := &Snapshot{}
	snap.Seq = d.u64("snapshot seq")
	snap.Init = decodeInitState(d)
	snap.PolicyName = d.str("snapshot policy name")
	snap.PolicyExpr = d.str("snapshot policy expr")
	decodeSchedulerState(d, &snap.Sched)
	if d.bool("snapshot adapt flag") {
		snap.Adapt = &AdaptState{}
		snap.Adapt.Config = decodeAdaptConfig(d)
		decodeControllerState(d, &snap.Adapt.State)
	}
	// Bytes past the adapt section are the optional fed block; its
	// absence (the pre-federation format) leaves Fed nil.
	if d.err == nil && len(d.b) > 0 {
		if d.bool("snapshot fed flag") {
			snap.Fed = &FedState{}
			snap.Fed.Shard = d.int("snapshot fed shard")
			snap.Fed.Shards = d.int("snapshot fed shards")
			snap.Fed.Seed = d.u64("snapshot fed seed")
			snap.Fed.StolenOnto = d.int("snapshot fed stolen")
			snap.Fed.VT = d.f64("snapshot fed vt")
		}
	}
	if err := d.finish("snapshot"); err != nil {
		return nil, err
	}
	return snap, nil
}

func appendSchedulerState(b []byte, st *online.SchedulerState) []byte {
	b = appendEngineState(b, &st.Eng)
	b = appendU32(b, uint32(len(st.Active)))
	for _, a := range st.Active {
		b = appendInt(b, a.ID)
		b = appendInt(b, a.Slot)
	}
	b = appendBool(b, st.Dirty)
	b = appendInt(b, st.Submitted)
	b = appendInt(b, st.Completed)
	b = appendF64(b, st.SumB)
	b = appendF64(b, st.SumW)
	b = appendF64(b, st.Busy)
	b = appendF64(b, st.MaxB)
	b = appendF64(b, st.MaxW)
	b = appendF64(b, st.FirstSubmit)
	return appendF64(b, st.LastFinish)
}

func decodeSchedulerState(d *decoder, st *online.SchedulerState) {
	decodeEngineState(d, &st.Eng)
	n := d.count("scheduler index", 16)
	st.Active = nil
	if n > 0 && d.err == nil {
		st.Active = make([]online.ActiveJob, n)
		for i := range st.Active {
			st.Active[i].ID = d.int("scheduler index id")
			st.Active[i].Slot = d.int("scheduler index slot")
		}
	}
	st.Dirty = d.bool("scheduler dirty")
	st.Submitted = d.int("scheduler submitted")
	st.Completed = d.int("scheduler completed")
	st.SumB = d.f64("scheduler sumB")
	st.SumW = d.f64("scheduler sumW")
	st.Busy = d.f64("scheduler busy")
	st.MaxB = d.f64("scheduler maxB")
	st.MaxW = d.f64("scheduler maxW")
	st.FirstSubmit = d.f64("scheduler first submit")
	st.LastFinish = d.f64("scheduler last finish")
}

func appendEngineState(b []byte, st *schedcore.EngineState) []byte {
	b = appendInt(b, st.Free)
	b = appendF64(b, st.Now)
	b = appendInt(b, st.MaxQueueLen)
	b = appendInt(b, st.Backfilled)
	b = appendU32(b, uint32(len(st.Tasks)))
	for i := range st.Tasks {
		t := &st.Tasks[i]
		b = appendJob(b, t.Job)
		b = appendF64(b, t.Perceived)
		b = appendF64(b, t.Execution)
		b = appendF64(b, t.Start)
		b = appendF64(b, t.Finish)
		b = appendBool(b, t.Started)
		b = appendBool(b, t.Done)
		b = appendBool(b, t.Backfill)
	}
	b = appendInts(b, st.FreeSlots)
	b = appendInts(b, st.Queue)
	return appendInts(b, st.Running)
}

func decodeEngineState(d *decoder, st *schedcore.EngineState) {
	st.Free = d.int("engine free")
	st.Now = d.f64("engine now")
	st.MaxQueueLen = d.int("engine max queue")
	st.Backfilled = d.int("engine backfilled")
	n := d.count("engine tasks", 5*8+4*8+3)
	st.Tasks = nil
	if n > 0 && d.err == nil {
		st.Tasks = make([]schedcore.TaskState, n)
		for i := range st.Tasks {
			t := &st.Tasks[i]
			t.Job = d.job("engine task job")
			t.Perceived = d.f64("engine task perceived")
			t.Execution = d.f64("engine task execution")
			t.Start = d.f64("engine task start")
			t.Finish = d.f64("engine task finish")
			t.Started = d.bool("engine task started")
			t.Done = d.bool("engine task done")
			t.Backfill = d.bool("engine task backfill")
		}
	}
	st.FreeSlots = d.ints("engine free slots")
	st.Queue = d.ints("engine queue")
	st.Running = d.ints("engine running")
}

func appendControllerState(b []byte, st *adaptive.ControllerState) []byte {
	b = appendJobs(b, st.Window)
	b = appendF64(b, st.Anchor)
	b = appendF64(b, st.NextCheck)
	b = appendF64(b, st.LastPromote)
	if st.LastChar == nil {
		b = appendBool(b, false)
	} else {
		b = appendBool(b, true)
		b = appendCharacterization(b, st.LastChar)
	}
	b = appendInt(b, st.Rounds)
	return appendInt(b, st.Promotions)
}

func decodeControllerState(d *decoder, st *adaptive.ControllerState) {
	st.Window = d.jobs("controller window")
	st.Anchor = d.f64("controller anchor")
	st.NextCheck = d.f64("controller next check")
	st.LastPromote = d.f64("controller last promote")
	st.LastChar = nil
	if d.bool("controller char flag") {
		var ch adaptive.Characterization
		decodeCharacterization(d, &ch)
		st.LastChar = &ch
	}
	st.Rounds = d.int("controller rounds")
	st.Promotions = d.int("controller promotions")
}

func appendCharacterization(b []byte, ch *adaptive.Characterization) []byte {
	b = appendInt(b, ch.Jobs)
	b = appendF64(b, ch.MeanLogRuntime)
	b = appendF64(b, ch.MeanLogCores)
	b = appendF64(b, ch.MeanLogGap)
	b = appendF64(b, ch.MeanCores)
	b = appendF64(b, ch.Span)
	b = appendF64(b, ch.Utilization)
	return appendInt(b, ch.AllocUnit)
}

func decodeCharacterization(d *decoder, ch *adaptive.Characterization) {
	ch.Jobs = d.int("char jobs")
	ch.MeanLogRuntime = d.f64("char mean log runtime")
	ch.MeanLogCores = d.f64("char mean log cores")
	ch.MeanLogGap = d.f64("char mean log gap")
	ch.MeanCores = d.f64("char mean cores")
	ch.Span = d.f64("char span")
	ch.Utilization = d.f64("char utilization")
	ch.AllocUnit = d.int("char alloc unit")
}
