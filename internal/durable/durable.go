// Package durable is cmd/schedd's persistence subsystem: a write-ahead
// log of every mutating operation plus periodic snapshots of the full
// scheduler state, so a daemon killed at any instant recovers to exactly
// the state it would have had — recovery is snapshot-load followed by a
// bounded replay of the records journaled after it, and the crash-point
// test (cmd/schedd) pins the result bit-identical to an uninterrupted
// run.
//
// # On-disk layout
//
// A data directory holds journal segments and at most one snapshot:
//
//	wal-<seq 16hex>.log   journal segment; records <seq>, <seq>+1, ...
//	snapshot              latest checkpoint (atomic tmp+rename)
//
// Every record and the snapshot payload are framed identically:
// [length u32le][crc32c u32le][payload]. A segment file starts with an
// 8-byte magic and the u64le sequence number of its first record; record
// sequence numbers are implicit (base + index), which is what makes a
// torn tail detectable purely from framing. Reading stops at the first
// frame whose length or checksum does not hold: in the newest segment
// that is the torn tail of an interrupted append and is truncated away on
// recovery; anywhere else it is corruption and recovery refuses.
//
// A checkpoint writes the snapshot (tmp + rename + directory sync),
// rotates the journal to a fresh segment based at the snapshot's
// sequence, and deletes the older segments oldest-first — every crash
// window between those steps leaves either the old snapshot with a
// longer journal or the new snapshot with a journal suffix, both of
// which recovery handles by skipping records below the snapshot
// sequence.
//
// # Durability vs. throughput
//
// Appends go through a buffered writer; Options.SyncEvery controls how
// many records may share one flush+fsync (1 = group of one, every record
// durable before its response). Larger batches amortize the fsync at the
// cost of the tail: a crash can lose up to SyncEvery-1 acknowledged
// records. The daemon's recovery stays correct either way — the journal
// prefix that survived is a valid history, just a shorter one.
//
// The package is inside the determinism boundary (genschedvet's zone
// table): it performs file I/O but reads no wall clock and spawns no
// goroutines — fsync batching is record-counted, checkpoint cadence is
// the daemon's logical clock — so recovery replay is a pure function of
// the bytes on disk.
package durable

import (
	"github.com/hpcsched/gensched/internal/workload"
)

// Op identifies one journaled mutating operation.
type Op uint8

const (
	// OpInit is the genesis record of a fresh data directory: the
	// configuration the daemon booted with. Replay from an empty snapshot
	// starts by rebuilding this scheduler.
	OpInit Op = 1 + iota
	// OpSubmit is a job submission at Record.Now.
	OpSubmit
	// OpComplete is a completion report for Record.ID at Record.Now.
	OpComplete
	// OpAdvance moves the logical clock to Record.Now.
	OpAdvance
	// OpPolicy hot-swaps the queue policy to the (Name, Expr) descriptor.
	OpPolicy
	// OpAdaptStart attaches the adaptive retraining loop with
	// Record.Adapt's sizing. The loop's own decisions are NOT journaled:
	// they are a deterministic function of the scheduler history, so
	// replay re-derives every retraining round and promotion.
	OpAdaptStart
	// OpAdaptStop detaches the adaptive loop.
	OpAdaptStop
)

// String names the op for diagnostics.
func (op Op) String() string {
	switch op {
	case OpInit:
		return "init"
	case OpSubmit:
		return "submit"
	case OpComplete:
		return "complete"
	case OpAdvance:
		return "advance"
	case OpPolicy:
		return "policy"
	case OpAdaptStart:
		return "adapt-start"
	case OpAdaptStop:
		return "adapt-stop"
	}
	return "op(" + string('0'+byte(op)) + ")"
}

// InitState is the boot configuration journaled as the genesis record and
// embedded in every snapshot. On recovery the daemon's flags must agree
// with it — silently rebinding a journal recorded against one machine
// shape to another would replay into garbage.
type InitState struct {
	Cores        int
	Backfill     int // sim.BackfillMode
	UseEstimates bool
	Tau          float64
	PolicyName   string // initial policy descriptor, resolvePolicy form
	PolicyExpr   string
}

// AdaptConfig is the sanitized sizing of an adaptive-loop start request,
// journaled so replay re-attaches an identical loop.
type AdaptConfig struct {
	Window    int
	MinWindow int
	Interval  float64
	MinDrift  float64
	SSize     int
	QSize     int
	Tuples    int
	Trials    int
	TopK      int
	Margin    float64
	Cooldown  float64
	Workers   int
	Seed      uint64
}

// Record is one journaled mutating operation. Only the fields the Op
// reads are encoded; see the codec for the exact wire layout.
type Record struct {
	Op    Op
	Now   float64      // resolved request instant (submit/complete/advance)
	Job   workload.Job // OpSubmit
	ID    int          // OpComplete
	Name  string       // OpPolicy descriptor
	Expr  string
	Init  *InitState   // OpInit
	Adapt *AdaptConfig // OpAdaptStart
}
