package durable

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/hpcsched/gensched/internal/adaptive"
	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/schedcore"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/simtest"
	"github.com/hpcsched/gensched/internal/workload"
)

// TestSnapshotRoundTripIdempotent is the serialization property test:
// for mid-stream scheduler states across adversarial workloads and every
// backfill mode, snapshot → decode → restore → snapshot must reproduce
// the exact bytes. Byte-level idempotence is what makes the crash-point
// test's fingerprint comparison meaningful: if encoding lost or mangled
// anything, a second generation of snapshots would drift.
func TestSnapshotRoundTripIdempotent(t *testing.T) {
	seeds := []uint64{3, 17, 99}
	n := 70
	if testing.Short() {
		seeds = seeds[:1]
		n = 40
	}
	for _, seed := range seeds {
		for _, mode := range simtest.Modes {
			for _, withAdapt := range []bool{false, true} {
				name := fmt.Sprintf("seed=%d/%s/adapt=%v", seed, mode, withAdapt)
				t.Run(name, func(t *testing.T) {
					runSnapshotTrip(t, seed, n, mode, withAdapt)
				})
			}
		}
	}
}

func runSnapshotTrip(t *testing.T, seed uint64, n int, mode sim.BackfillMode, withAdapt bool) {
	const cores = 24
	jobs := simtest.RandomJobs(dist.New(seed), n, cores)
	opt := online.Options{
		Policy:       sched.F1(),
		UseEstimates: true,
		Backfill:     mode,
		Check:        true,
	}
	init := InitState{Cores: cores, Backfill: int(mode), UseEstimates: true, PolicyName: "F1"}
	s, err := online.New(cores, opt)
	if err != nil {
		t.Fatal(err)
	}
	var ad *adaptive.Controller
	ac := AdaptConfig{Window: 48, MinWindow: 6, Interval: 120, SSize: 8, QSize: 12,
		Tuples: 1, Trials: 6, TopK: 1, Workers: 1, Seed: seed}
	if withAdapt {
		ad, err = adaptive.New(adaptCfg(&ac, cores, 0, opt, s))
		if err != nil {
			t.Fatal(err)
		}
	}

	var h schedcore.EventHeap
	for i := range jobs {
		h.Push(schedcore.Event{Time: jobs[i].Submit, Kind: schedcore.KindArrival, Ref: i})
	}
	events := 0
	for h.Len() > 0 {
		ev := h.Pop()
		var starts []online.Start
		switch ev.Kind {
		case schedcore.KindArrival:
			starts, err = s.SubmitAt(ev.Time, jobs[ev.Ref])
			if err == nil && ad != nil {
				ad.Observe(jobs[ev.Ref])
			}
		case schedcore.KindCompletion:
			starts, err = s.CompleteAt(ev.Time, jobs[ev.Ref].ID)
		}
		if err != nil {
			t.Fatalf("event %d: %v", events, err)
		}
		if ad != nil {
			if _, err := ad.Tick(s.Clock(), s.Policy()); err != nil {
				t.Fatalf("event %d: tick: %v", events, err)
			}
		}
		for _, st := range starts {
			var i int
			for i = range jobs {
				if jobs[i].ID == st.ID {
					break
				}
			}
			h.Push(schedcore.Event{Time: st.Time + jobs[i].Runtime, Kind: schedcore.KindCompletion, Ref: i})
		}
		events++
		if events%17 == 0 || h.Len() == 0 {
			checkTrip(t, events, cores, init, opt, s, ad, &ac)
		}
	}
}

func adaptCfg(ac *AdaptConfig, cores int, now float64, opt online.Options, s *online.Scheduler) adaptive.Config {
	return adaptive.Config{
		Cores: cores, Now: now,
		Backfill: opt.Backfill, BackfillOrder: opt.BackfillOrder,
		UseEstimates: opt.UseEstimates, Tau: opt.Tau,
		Window: ac.Window, MinWindow: ac.MinWindow, Interval: ac.Interval,
		MinDrift: ac.MinDrift, SSize: ac.SSize, QSize: ac.QSize,
		Tuples: ac.Tuples, Trials: ac.Trials, TopK: ac.TopK,
		Margin: ac.Margin, Cooldown: ac.Cooldown, Workers: ac.Workers,
		Seed: ac.Seed, Queue: s.QueuedJobs,
	}
}

// checkTrip snapshots the live state, round-trips it through the codec
// and a full restore, and requires the second-generation snapshot to be
// byte-identical.
func checkTrip(t *testing.T, at, cores int, init InitState, opt online.Options, s *online.Scheduler, ad *adaptive.Controller, ac *AdaptConfig) {
	t.Helper()
	snap := &Snapshot{Seq: uint64(at), Init: init, PolicyName: "F1"}
	if err := s.ExportState(&snap.Sched); err != nil {
		t.Fatalf("event %d: export: %v", at, err)
	}
	if ad != nil {
		snap.Adapt = &AdaptState{Config: *ac, State: *ad.ExportState()}
	}
	enc := EncodeSnapshot(snap)

	dec, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatalf("event %d: decode: %v", at, err)
	}
	s2, err := online.Restore(cores, opt, &dec.Sched)
	if err != nil {
		t.Fatalf("event %d: restore: %v", at, err)
	}
	snap2 := &Snapshot{Seq: dec.Seq, Init: dec.Init, PolicyName: dec.PolicyName, PolicyExpr: dec.PolicyExpr}
	if err := s2.ExportState(&snap2.Sched); err != nil {
		t.Fatalf("event %d: re-export: %v", at, err)
	}
	if dec.Adapt != nil {
		ad2, err := adaptive.Restore(adaptCfg(&dec.Adapt.Config, cores, s2.Clock(), opt, s2), &dec.Adapt.State)
		if err != nil {
			t.Fatalf("event %d: adaptive restore: %v", at, err)
		}
		snap2.Adapt = &AdaptState{Config: dec.Adapt.Config, State: *ad2.ExportState()}
	}
	enc2 := EncodeSnapshot(snap2)
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("event %d: snapshot not idempotent: %d vs %d bytes (first difference at %d)",
			at, len(enc), len(enc2), firstDiff(enc, enc2))
	}

	// Fed-tagged variant: a federated shard's snapshot carries a trailing
	// FedState block. The same decode → restore → re-export loop must
	// reproduce its bytes exactly (the federated crash suite's oracle
	// rides on this), and the untagged encoding must be a strict prefix —
	// the block is trailing, so single-engine snapshots keep the
	// pre-federation byte format.
	fed := &FedState{Shard: at % 7, Shards: 8, Seed: 42, StolenOnto: at, VT: float64(at) * 1.5}
	fsnap := &Snapshot{Seq: snap.Seq, Init: snap.Init, PolicyName: snap.PolicyName,
		PolicyExpr: snap.PolicyExpr, Sched: snap.Sched, Adapt: snap.Adapt, Fed: fed}
	fenc := EncodeSnapshot(fsnap)
	if !bytes.HasPrefix(fenc, enc) {
		t.Fatalf("event %d: fed block is not strictly trailing (first difference at %d)",
			at, firstDiff(fenc, enc))
	}
	fdec, err := DecodeSnapshot(fenc)
	if err != nil {
		t.Fatalf("event %d: fed decode: %v", at, err)
	}
	if fdec.Fed == nil || *fdec.Fed != *fed {
		t.Fatalf("event %d: fed state changed in round trip: %+v vs %+v", at, fdec.Fed, fed)
	}
	s3, err := online.Restore(cores, opt, &fdec.Sched)
	if err != nil {
		t.Fatalf("event %d: fed restore: %v", at, err)
	}
	fsnap2 := &Snapshot{Seq: fdec.Seq, Init: fdec.Init, PolicyName: fdec.PolicyName,
		PolicyExpr: fdec.PolicyExpr, Adapt: fdec.Adapt, Fed: fdec.Fed}
	if err := s3.ExportState(&fsnap2.Sched); err != nil {
		t.Fatalf("event %d: fed re-export: %v", at, err)
	}
	if fenc2 := EncodeSnapshot(fsnap2); !bytes.Equal(fenc, fenc2) {
		t.Fatalf("event %d: fed snapshot not idempotent: %d vs %d bytes (first difference at %d)",
			at, len(fenc), len(fenc2), firstDiff(fenc, fenc2))
	}
}

// FuzzDecodeSnapshot hammers the snapshot decoder — the recovery
// surface a corrupted checkpoint reaches — with mutated payloads seeded
// from golden encodings, untagged and shard-tagged. The decoder must
// never panic, and anything it accepts must re-encode canonically:
// encode(decode(x)) is a fixed point of decode∘encode.
func FuzzDecodeSnapshot(f *testing.F) {
	base := Snapshot{
		Seq:  7,
		Init: InitState{Cores: 128, Backfill: 1, UseEstimates: true, Tau: 10, PolicyName: "F1"},
	}
	f.Add(EncodeSnapshot(&base))
	tagged := base
	tagged.Fed = &FedState{Shard: 3, Shards: 8, Seed: 42, StolenOnto: 17, VT: 12345.5}
	f.Add(EncodeSnapshot(&tagged))
	adapt := base
	adapt.Adapt = &AdaptState{Config: AdaptConfig{Window: 48, MinWindow: 6, Interval: 120,
		SSize: 8, QSize: 12, Tuples: 1, Trials: 6, TopK: 1, Workers: 1, Seed: 9}}
	f.Add(EncodeSnapshot(&adapt))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		snap, err := DecodeSnapshot(payload)
		if err != nil {
			return
		}
		enc := EncodeSnapshot(snap)
		back, err := DecodeSnapshot(enc)
		if err != nil {
			t.Fatalf("re-encoded snapshot fails to decode: %v", err)
		}
		if enc2 := EncodeSnapshot(back); !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding is not canonical: %d vs %d bytes (first difference at %d)",
				len(enc), len(enc2), firstDiff(enc, enc2))
		}
		if (snap.Fed == nil) != (back.Fed == nil) || (snap.Fed != nil && *snap.Fed != *back.Fed) {
			t.Fatalf("fed tag changed across re-decode: %+v vs %+v", snap.Fed, back.Fed)
		}
	})
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestRecordRoundTrip pins the record codec field-for-field, including
// the t=0 instant and every op shape.
func TestRecordRoundTrip(t *testing.T) {
	now := 0.0
	recs := []Record{
		{Op: OpInit, Init: &InitState{Cores: 128, Backfill: 2, UseEstimates: true, Tau: 10,
			PolicyName: "L1", PolicyExpr: "log10(r)*n"}},
		{Op: OpSubmit, Now: now, Job: workload.Job{ID: 1, Submit: 0, Runtime: 5, Estimate: 9, Cores: 2}},
		{Op: OpComplete, Now: 5, ID: 1},
		{Op: OpAdvance, Now: 123.456},
		{Op: OpPolicy, Name: "CUSTOM", Expr: "log10(r)*n + 870*log10(s)"},
		{Op: OpAdaptStart, Adapt: &AdaptConfig{Window: 64, MinWindow: 8, Interval: 200,
			MinDrift: 0.1, SSize: 8, QSize: 16, Tuples: 2, Trials: 8, TopK: 1,
			Margin: 0.05, Cooldown: 400, Workers: 3, Seed: 99}},
		{Op: OpAdaptStop},
	}
	for _, r := range recs {
		payload, err := appendRecord(nil, &r)
		if err != nil {
			t.Fatalf("%v: encode: %v", r.Op, err)
		}
		got, err := decodeRecord(payload)
		if err != nil {
			t.Fatalf("%v: decode: %v", r.Op, err)
		}
		want := r
		if want.Init != nil {
			ini := *want.Init
			want.Init = &ini
		}
		if got.Op != want.Op || got.Now != want.Now || got.Job != want.Job ||
			got.ID != want.ID || got.Name != want.Name || got.Expr != want.Expr {
			t.Fatalf("%v: round trip changed scalars: %+v vs %+v", r.Op, got, r)
		}
		if (got.Init == nil) != (r.Init == nil) || (got.Init != nil && *got.Init != *r.Init) {
			t.Fatalf("%v: init state changed", r.Op)
		}
		if (got.Adapt == nil) != (r.Adapt == nil) || (got.Adapt != nil && *got.Adapt != *r.Adapt) {
			t.Fatalf("%v: adapt config changed", r.Op)
		}
	}
}
