// Store: the append path and the recovery scan. One Store owns a data
// directory; at any moment exactly one segment is active for appends,
// the rest are the immutable history between the last snapshot and now.

package durable

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/hpcsched/gensched/internal/telemetry"
)

// Options tunes a Store.
type Options struct {
	// SyncEvery is the number of appended records that may share one
	// flush+fsync. 1 (the default for values < 1) makes every record
	// durable before Append returns; N > 1 amortizes the fsync and risks
	// the last N-1 acknowledged records on a crash.
	SyncEvery int

	// FS is the filesystem the store runs on; nil means the real one
	// (OS()). Tests substitute a faultfs.FS to exercise failure paths on
	// a deterministic schedule.
	FS FS
}

// Recovered is what Open found on disk: the latest snapshot (nil for a
// fresh or never-checkpointed directory) and the journal records at or
// after its sequence, in order. Replaying Records on top of the snapshot
// reproduces the pre-crash state. Segments counts the journal segments
// scanned — recovery provenance the daemon reports in /v1/status.
type Recovered struct {
	Snapshot *Snapshot
	Records  []Record
	Segments int
}

// Store is an open journal. Methods are not safe for concurrent use; the
// daemon serializes them under its server mutex.
type Store struct {
	dir       string
	syncEvery int
	fs        FS

	f        File // active segment (nil after Close, or mid-rotation failure)
	w        *bufio.Writer
	seq      uint64 // sequence of the next record to append
	unsynced int
	closed   bool
	scratch  []byte

	// broken latches the first write/sync failure: after it, every
	// mutation fails with the original cause, because the on-disk suffix
	// is in an unknown state and appending past it could corrupt history.
	broken error

	// tel, when non-nil, observes appends, fsync batches and
	// checkpoints. Events ride the logical clock of the records
	// themselves (lastNow), never a wall clock — the store stays inside
	// the determinism boundary.
	tel     *telemetry.Sink
	lastNow float64
}

const snapshotName = "snapshot"

// journalBufSize is the append buffer: large enough that a batched
// (SyncEvery > 1) workload pays one write syscall per hundreds of
// records, not one per bufio default-buffer fill.
const journalBufSize = 1 << 18

// Open opens (or initializes) the data directory and returns the store
// positioned for appends plus everything needed to rebuild state. A torn
// final frame in the newest segment — an append interrupted by the crash
// — is truncated away; any other inconsistency is corruption and Open
// refuses rather than guess.
func Open(dir string, opt Options) (*Store, *Recovered, error) {
	if opt.SyncEvery < 1 {
		opt.SyncEvery = 1
	}
	fsys := opt.FS
	if fsys == nil {
		fsys = OS()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var segNames []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A checkpoint died before its rename; the file is garbage.
			if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
				return nil, nil, err
			}
			continue
		}
		if _, ok := parseSegmentName(name); ok {
			segNames = append(segNames, name)
		}
	}
	// Fixed-width hex names make lexical order sequence order.
	sort.Strings(segNames)

	rec := &Recovered{}
	if data, err := fsys.ReadFile(filepath.Join(dir, snapshotName)); err == nil {
		rec.Snapshot, err = decodeSnapshotFile(data)
		if err != nil {
			return nil, nil, fmt.Errorf("durable: %s: %w", filepath.Join(dir, snapshotName), err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, err
	}

	segs := make([]*segment, len(segNames))
	for i, name := range segNames {
		s, err := readSegment(fsys, filepath.Join(dir, name))
		if err != nil {
			return nil, nil, err
		}
		if s.torn && i != len(segNames)-1 {
			return nil, nil, fmt.Errorf("durable: %s: corrupt frame in a non-final segment", s.path)
		}
		if i > 0 {
			prev := segs[i-1]
			if want := prev.base + uint64(len(prev.records)); s.base != want {
				return nil, nil, fmt.Errorf("durable: journal gap: %s ends at record %d but %s starts at %d", prev.path, want, s.path, s.base)
			}
		}
		segs[i] = s
	}

	var startSeq uint64
	if rec.Snapshot != nil {
		startSeq = rec.Snapshot.Seq
	}
	if len(segs) == 0 {
		if startSeq != 0 {
			return nil, nil, fmt.Errorf("durable: snapshot at record %d but no journal segments", startSeq)
		}
	} else {
		if segs[0].base > startSeq {
			return nil, nil, fmt.Errorf("durable: journal starts at record %d, need %d (missing segments?)", segs[0].base, startSeq)
		}
		last := segs[len(segs)-1]
		if end := last.base + uint64(len(last.records)); startSeq > end {
			return nil, nil, fmt.Errorf("durable: snapshot at record %d but journal ends at %d", startSeq, end)
		}
	}
	rec.Segments = len(segs)
	for _, s := range segs {
		for i, r := range s.records {
			if s.base+uint64(i) >= startSeq {
				rec.Records = append(rec.Records, r)
			}
		}
	}

	st := &Store{dir: dir, syncEvery: opt.SyncEvery, fs: fsys, seq: startSeq + uint64(len(rec.Records))}
	if len(segs) == 0 {
		if err := st.newSegment(0); err != nil {
			return nil, nil, err
		}
	} else {
		last := segs[len(segs)-1]
		f, err := fsys.OpenFile(last.path, os.O_RDWR, 0)
		if err != nil {
			return nil, nil, err
		}
		if last.torn {
			if err := f.Truncate(last.validLen); err != nil {
				_ = f.Close() // cleanup; the truncate error is already being reported
				return nil, nil, err
			}
			if err := f.Sync(); err != nil {
				_ = f.Close() // cleanup; the sync error is already being reported
				return nil, nil, err
			}
		}
		if _, err := f.Seek(last.validLen, 0); err != nil {
			_ = f.Close() // cleanup; the seek error is already being reported
			return nil, nil, err
		}
		st.f = f
		st.w = bufio.NewWriterSize(f, journalBufSize)
	}
	return st, rec, nil
}

// decodeSnapshotFile unwraps a snapshot file: magic plus one frame.
func decodeSnapshotFile(data []byte) (*Snapshot, error) {
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("bad snapshot magic")
	}
	payload, rest, ok := nextFrame(data[len(snapMagic):])
	if !ok {
		return nil, fmt.Errorf("snapshot frame corrupt")
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("snapshot has %d trailing bytes", len(rest))
	}
	return DecodeSnapshot(payload)
}

// newSegment atomically creates the segment based at base and makes it
// the active append target. The atomic create means a crash can never
// leave a segment with a partial header.
func (s *Store) newSegment(base uint64) error {
	hdr := make([]byte, 0, segHeaderLen)
	hdr = append(hdr, segMagic...)
	hdr = appendU64(hdr, base)
	name := segmentName(base)
	if err := createFileAtomic(s.fs, s.dir, name, hdr); err != nil {
		return err
	}
	f, err := s.fs.OpenFile(filepath.Join(s.dir, name), os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	if _, err := f.Seek(int64(segHeaderLen), 0); err != nil {
		_ = f.Close() // cleanup; the seek error is already being reported
		return err
	}
	s.f = f
	s.w = bufio.NewWriterSize(f, journalBufSize)
	return nil
}

// Seq is the sequence number the next Append will get.
func (s *Store) Seq() uint64 { return s.seq }

// SetTelemetry attaches (or, with nil, detaches) a telemetry sink
// observing the append/sync/checkpoint path.
func (s *Store) SetTelemetry(t *telemetry.Sink) { s.tel = t }

// Append journals one record. The record is durable when Append returns
// only if this append completed a SyncEvery batch; call Sync to force a
// partial batch down.
func (s *Store) Append(r *Record) error {
	if s.closed {
		return fmt.Errorf("durable: store is closed")
	}
	if s.broken != nil {
		return fmt.Errorf("durable: journal is failed: %w", s.broken)
	}
	// Build the whole frame — header plus payload — in the reusable
	// scratch buffer so the hot path is one buffered write and zero
	// allocations.
	buf := append(s.scratch[:0], 0, 0, 0, 0, 0, 0, 0, 0)[:frameHeader]
	buf, err := appendRecord(buf, r)
	if err != nil {
		return err
	}
	s.scratch = buf // keep the grown buffer
	payload := buf[frameHeader:]
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, crcTable))
	if _, err := s.w.Write(buf); err != nil {
		s.broken = err
		return err
	}
	if r.Now > s.lastNow {
		s.lastNow = r.Now
	}
	s.tel.WALAppend(s.lastNow, s.seq, len(buf))
	s.seq++
	s.unsynced++
	if s.unsynced >= s.syncEvery {
		return s.Sync()
	}
	return nil
}

// Sync flushes buffered appends and fsyncs the active segment. A failure
// latches: the buffer may be half-drained, so the store refuses further
// mutation.
func (s *Store) Sync() error {
	if s.closed {
		return fmt.Errorf("durable: store is closed")
	}
	if s.broken != nil {
		return fmt.Errorf("durable: journal is failed: %w", s.broken)
	}
	if err := s.w.Flush(); err != nil {
		s.broken = err
		return err
	}
	if err := s.f.Sync(); err != nil {
		s.broken = err
		return err
	}
	s.tel.WALSync(s.lastNow, s.unsynced)
	s.unsynced = 0
	return nil
}

// Checkpoint makes snap the recovery base: it stamps snap.Seq with the
// current sequence, syncs the journal (the snapshot must never be ahead
// of durable records), writes the snapshot atomically, rotates appends to
// a fresh segment based at snap.Seq, and deletes the superseded
// segments. Deletion goes oldest-first so a crash mid-loop leaves the
// surviving segments a contiguous suffix, which recovery accepts.
func (s *Store) Checkpoint(snap *Snapshot) error {
	snap.Seq = s.seq
	if err := s.Sync(); err != nil {
		return err
	}
	enc := EncodeSnapshot(snap)
	content := make([]byte, 0, len(enc)+len(snapMagic)+frameHeader)
	content = append(content, snapMagic...)
	content = appendFrame(content, enc)
	if err := createFileAtomic(s.fs, s.dir, snapshotName, content); err != nil {
		s.broken = err
		return err
	}
	// The active segment is nil between a successful close and a
	// successful rotation, so a failure in this window cannot lead Close
	// to double-close the old handle.
	err := s.f.Close()
	s.f = nil
	if err != nil {
		s.broken = err
		return err
	}
	if err := s.newSegment(snap.Seq); err != nil {
		s.broken = err
		return err
	}
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		s.broken = err
		return err
	}
	var old []string
	for _, e := range entries {
		if base, ok := parseSegmentName(e.Name()); ok && base < snap.Seq {
			old = append(old, e.Name())
		}
	}
	sort.Strings(old) // oldest first
	for _, name := range old {
		if err := s.fs.Remove(filepath.Join(s.dir, name)); err != nil {
			s.broken = err
			return err
		}
	}
	if err := syncDir(s.fs, s.dir); err != nil {
		return err
	}
	s.tel.WALCheckpoint(s.lastNow, snap.Seq, len(enc))
	return nil
}

// Close flushes, fsyncs and closes the active segment. A store that
// already failed closes the file without masking the original error, and
// a second Close reports the first outcome instead of re-closing a dead
// handle (the Close-after-failure double-close, pinned by a faultfs
// regression test).
func (s *Store) Close() error {
	if s.closed {
		if s.broken != nil {
			return fmt.Errorf("durable: journal is failed: %w", s.broken)
		}
		return fmt.Errorf("durable: store is already closed")
	}
	if s.broken != nil {
		s.closed = true
		if s.f != nil {
			_ = s.f.Close() // cleanup; the store already failed with s.broken
			s.f = nil
		}
		return fmt.Errorf("durable: journal is failed: %w", s.broken)
	}
	if err := s.Sync(); err != nil {
		s.closed = true
		_ = s.f.Close() // cleanup; the sync error is already being reported
		s.f = nil
		return err
	}
	s.closed = true
	err := s.f.Close()
	s.f = nil
	return err
}

// Broken reports the latched failure, nil while the store is healthy.
// The federation's quarantine decision keys off it.
func (s *Store) Broken() error { return s.broken }
