package durable

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/hpcsched/gensched/internal/workload"
)

func testRecords(n int) []Record {
	recs := make([]Record, 0, n)
	recs = append(recs, Record{Op: OpInit, Init: &InitState{
		Cores: 64, Backfill: 1, UseEstimates: true, Tau: 10, PolicyName: "f1",
	}})
	for i := 1; i < n; i++ {
		switch i % 4 {
		case 0:
			recs = append(recs, Record{Op: OpAdvance, Now: float64(i)})
		case 1:
			recs = append(recs, Record{Op: OpSubmit, Now: float64(i), Job: workload.Job{
				ID: i, Submit: float64(i), Runtime: 30, Estimate: 60, Cores: 4,
			}})
		case 2:
			recs = append(recs, Record{Op: OpComplete, Now: float64(i), ID: i - 1})
		case 3:
			recs = append(recs, Record{Op: OpPolicy, Name: "expr", Expr: "log2(p)*q"})
		}
	}
	return recs
}

func appendAll(t *testing.T, s *Store, recs []Record) {
	t.Helper()
	for i := range recs {
		if err := s.Append(&recs[i]); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
}

func TestStoreAppendReopen(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(25)

	s, rec, err := Open(dir, Options{SyncEvery: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered snapshot=%v records=%d", rec.Snapshot, len(rec.Records))
	}
	appendAll(t, s, recs)
	if s.Seq() != uint64(len(recs)) {
		t.Fatalf("Seq() = %d, want %d", s.Seq(), len(recs))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if rec2.Snapshot != nil {
		t.Fatalf("unexpected snapshot")
	}
	if !reflect.DeepEqual(rec2.Records, recs) {
		t.Fatalf("recovered records differ:\n got %+v\nwant %+v", rec2.Records, recs)
	}
	if s2.Seq() != uint64(len(recs)) {
		t.Fatalf("reopened Seq() = %d, want %d", s2.Seq(), len(recs))
	}
}

func TestStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(10)

	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendAll(t, s, recs)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Chop bytes off the tail one at a time; every prefix must recover to
	// some prefix of the appended records.
	path := filepath.Join(dir, segmentName(0))
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prev := len(recs) + 1
	for cut := len(full) - 1; cut >= segHeaderLen; cut -= 7 {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, rec2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		n := len(rec2.Records)
		if n > prev {
			t.Fatalf("cut=%d: recovered %d records after %d at a longer prefix", cut, n, prev)
		}
		prev = n
		if n > 0 && !reflect.DeepEqual(rec2.Records, recs[:n]) {
			t.Fatalf("cut=%d: recovered records are not a prefix", cut)
		}
		// The torn tail must be gone: append and reopen must work.
		extra := Record{Op: OpAdvance, Now: 999}
		if err := s2.Append(&extra); err != nil {
			t.Fatalf("cut=%d: append after truncate: %v", cut, err)
		}
		if err := s2.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
		s3, rec3, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: reopen after append: %v", cut, err)
		}
		if len(rec3.Records) != n+1 || !reflect.DeepEqual(rec3.Records[n], extra) {
			t.Fatalf("cut=%d: post-truncate append not recovered", cut)
		}
		if err := s3.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreCheckpointRotation(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(20)

	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendAll(t, s, recs[:12])
	snap := &Snapshot{
		Init:       InitState{Cores: 64, Backfill: 1, UseEstimates: true, Tau: 10, PolicyName: "f1"},
		PolicyName: "expr", PolicyExpr: "log2(p)*q",
	}
	if err := s.Checkpoint(snap); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if snap.Seq != 12 {
		t.Fatalf("snapshot seq = %d, want 12", snap.Seq)
	}
	appendAll(t, s, recs[12:])
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The pre-checkpoint segment must be gone.
	if _, err := os.Stat(filepath.Join(dir, segmentName(0))); !os.IsNotExist(err) {
		t.Fatalf("old segment still present (err=%v)", err)
	}

	s2, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if rec2.Snapshot == nil || rec2.Snapshot.Seq != 12 {
		t.Fatalf("snapshot not recovered: %+v", rec2.Snapshot)
	}
	if rec2.Snapshot.PolicyExpr != "log2(p)*q" {
		t.Fatalf("snapshot policy expr = %q", rec2.Snapshot.PolicyExpr)
	}
	if !reflect.DeepEqual(rec2.Records, recs[12:]) {
		t.Fatalf("post-snapshot records differ:\n got %+v\nwant %+v", rec2.Records, recs[12:])
	}
	if s2.Seq() != 20 {
		t.Fatalf("Seq() = %d, want 20", s2.Seq())
	}
}

func TestStoreRefusesGapsAndCorruption(t *testing.T) {
	// A snapshot pointing past the journal end must be refused.
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(5)
	appendAll(t, s, recs)
	snap := &Snapshot{Init: InitState{Cores: 4}}
	if err := s.Checkpoint(snap); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Replace the active segment with one based before the snapshot end,
	// leaving a gap between snapshot coverage and journal start... easier:
	// delete the active segment entirely; snapshot seq 5 with no segments.
	if err := os.Remove(filepath.Join(dir, segmentName(5))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatalf("Open accepted snapshot without journal coverage")
	}

	// Corruption in a non-final segment must be refused.
	dir2 := t.TempDir()
	s2, _, err := Open(dir2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s2, recs)
	if err := s2.Checkpoint(&Snapshot{Init: InitState{Cores: 4}}); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s2, recs[1:3])
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	// Fabricate an older segment with a corrupt frame plus a newer one, by
	// copying the active segment to a lower base and flipping a byte.
	active := filepath.Join(dir2, segmentName(5))
	data, err := os.ReadFile(active)
	if err != nil {
		t.Fatal(err)
	}
	forged := append([]byte(nil), data...)
	copy(forged[len(segMagic):], []byte{3, 0, 0, 0, 0, 0, 0, 0}) // base 3
	forged[len(forged)-1] ^= 0xff                                // corrupt last frame
	if err := os.WriteFile(filepath.Join(dir2, segmentName(3)), forged, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir2, Options{}); err == nil {
		t.Fatalf("Open accepted corruption in a non-final segment")
	}
}
