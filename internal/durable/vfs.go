// The VFS seam: every filesystem touch the store makes goes through the
// FS interface, with the real os.* implementation as the default. The
// seam exists for fault injection — internal/faultfs wraps an FS and
// fails the Nth sync or tears the Nth write on a deterministic schedule
// — so every store error path is reachable, reproducible, and pinned by
// tests, not just reasoned about.

package durable

import (
	"io"
	"io/fs"
	"os"
)

// FS is the narrow filesystem surface a Store needs. Implementations
// must behave like the POSIX operations they are named after; the
// contract the store relies on is exactly the one it relies on from the
// OS (atomic rename within a directory, fsync barriers, ReadDir in
// unspecified order — the store sorts).
type FS interface {
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// ReadDir lists a directory.
	ReadDir(dir string) ([]fs.DirEntry, error)
	// ReadFile reads a whole file. A missing file must report an error
	// satisfying errors.Is(err, fs.ErrNotExist).
	ReadFile(path string) ([]byte, error)
	// OpenFile opens a file with os.OpenFile semantics.
	OpenFile(path string, flag int, perm fs.FileMode) (File, error)
	// OpenDir opens a directory for fsync.
	OpenDir(path string) (File, error)
	// Rename atomically replaces newPath with oldPath.
	Rename(oldPath, newPath string) error
	// Remove deletes a file.
	Remove(path string) error
}

// File is an open file (or directory) handle: the subset of *os.File
// the store's append, truncate-on-recovery and fsync paths use.
type File interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Close() error
}

// OS returns the real filesystem, the default when Options.FS is nil.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(path string, perm fs.FileMode) error  { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(dir string) ([]fs.DirEntry, error)     { return os.ReadDir(dir) }
func (osFS) ReadFile(path string) ([]byte, error)          { return os.ReadFile(path) }
func (osFS) Rename(oldPath, newPath string) error          { return os.Rename(oldPath, newPath) }
func (osFS) Remove(path string) error                      { return os.Remove(path) }
func (osFS) OpenDir(path string) (File, error)             { return os.Open(path) }
func (osFS) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}
