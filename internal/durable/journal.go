// Framing and segment files. One frame is [length u32le][crc32c u32le]
// [payload]; a segment file is an 8-byte magic, the u64le base sequence
// of its first record, then frames. The CRC (Castagnoli) covers the
// payload only — the length field is validated by bounds, and any
// mismatch of either marks the end of the valid prefix.

package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

const (
	segMagic  = "GSWAL001"
	snapMagic = "GSSNAP01"
	// segHeaderLen is magic + base sequence.
	segHeaderLen = len(segMagic) + 8
	frameHeader  = 8
	// maxFrame bounds one record or snapshot payload; a length field
	// beyond it is treated as corruption, not an allocation request.
	maxFrame = 1 << 26
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame wraps payload in a frame onto dst.
func appendFrame(dst, payload []byte) []byte {
	dst = appendU32(dst, uint32(len(payload)))
	dst = appendU32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// nextFrame extracts the frame starting at b. ok is false when no intact
// frame starts there — a torn or corrupt tail.
func nextFrame(b []byte) (payload, rest []byte, ok bool) {
	if len(b) < frameHeader {
		return nil, nil, false
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n > maxFrame || len(b) < frameHeader+n {
		return nil, nil, false
	}
	payload = b[frameHeader : frameHeader+n]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(b[4:]) {
		return nil, nil, false
	}
	return payload, b[frameHeader+n:], true
}

// segmentName renders the canonical file name for a segment based at seq.
// Fixed-width hex keeps lexical directory order equal to sequence order.
func segmentName(seq uint64) string {
	return fmt.Sprintf("wal-%016x.log", seq)
}

// parseSegmentName inverts segmentName.
func parseSegmentName(name string) (uint64, bool) {
	var seq uint64
	if n, err := fmt.Sscanf(name, "wal-%016x.log", &seq); n != 1 || err != nil {
		return 0, false
	}
	if name != segmentName(seq) {
		return 0, false
	}
	return seq, true
}

// segment is one journal file as read back at recovery.
type segment struct {
	path    string
	base    uint64   // sequence of the first record
	records []Record // decoded records, in order
	// validLen is the byte offset of the end of the last intact frame;
	// torn reports whether bytes beyond it exist (an interrupted append).
	validLen int64
	torn     bool
}

// readSegment reads and decodes one segment file. Framing failures mark
// the torn tail; a decode failure inside an intact frame is real
// corruption and fails the read.
func readSegment(fsys FS, path string) (*segment, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < segHeaderLen || string(data[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("durable: %s: not a journal segment", path)
	}
	s := &segment{
		path:     path,
		base:     binary.LittleEndian.Uint64(data[len(segMagic):]),
		validLen: int64(segHeaderLen),
	}
	rest := data[segHeaderLen:]
	for len(rest) > 0 {
		payload, next, ok := nextFrame(rest)
		if !ok {
			s.torn = true
			break
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return nil, fmt.Errorf("durable: %s: record %d: %w", path, s.base+uint64(len(s.records)), err)
		}
		s.records = append(s.records, rec)
		s.validLen += int64(frameHeader + len(payload))
		rest = next
	}
	return s, nil
}

// createFileAtomic writes content to dir/name via a temp file, fsync,
// rename, and directory fsync, so the name either holds the full content
// or does not exist. Any failure removes the temp file — a failed
// checkpoint must not leak a .tmp that sits in the directory until the
// next Open sweeps it (pinned by a faultfs regression test).
func createFileAtomic(fsys FS, dir, name string, content []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(content); err != nil {
		_ = f.Close()        // cleanup; the write error is already being reported
		_ = fsys.Remove(tmp) // best-effort; Open sweeps leftovers anyway
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()        // cleanup; the sync error is already being reported
		_ = fsys.Remove(tmp) // best-effort; Open sweeps leftovers anyway
		return err
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp) // best-effort; Open sweeps leftovers anyway
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, name)); err != nil {
		_ = fsys.Remove(tmp) // best-effort; Open sweeps leftovers anyway
		return err
	}
	return syncDir(fsys, dir)
}

// syncDir fsyncs a directory so a rename or create within it is durable.
func syncDir(fsys FS, dir string) error {
	d, err := fsys.OpenDir(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close() // cleanup; the sync error is already being reported
		return err
	}
	return d.Close()
}
