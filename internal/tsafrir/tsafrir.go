// Package tsafrir generates user runtime estimates following the model of
// Tsafrir, Etsion and Feitelson ("Modeling user runtime estimates", JSSPP
// 2005), which the paper uses for every user-estimate experiment (§4.2.2).
//
// The model's two load-bearing observations, both preserved here, are:
//
//  1. Estimates are drawn from a small menu of "round" canonical values
//     (15 minutes, 1 hour, 4 hours, ...), so many jobs share the same
//     estimate and the scheduler cannot distinguish them by length.
//  2. Estimates over-state runtimes by a large multiplicative factor with
//     roughly uniform accuracy r/e (the Mu'alem–Feitelson observation that
//     Tsafrir et al. refined), and e >= r because production resource
//     managers kill jobs at their requested time.
//
// See DESIGN.md for how this substitutes for the original model code.
package tsafrir

import (
	"fmt"
	"math"
	"sort"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/workload"
)

// Model parameterizes estimate generation.
type Model struct {
	// Canonical is the ascending menu of allowed estimate values in
	// seconds. Estimates are rounded up to the nearest canonical value.
	Canonical []float64
	// PerfectFrac is the fraction of jobs whose users estimate tightly:
	// the estimate is the smallest canonical value covering the runtime.
	PerfectFrac float64
}

// Default returns the 20-value canonical menu observed by Tsafrir et al.
// (their "mode" estimates: minutes for short jobs, round hours beyond) and
// a 10% tight-estimator fraction.
func Default() Model {
	return Model{
		Canonical: []float64{
			60, 300, 600, 900, 1200, 1800, 2700, 3600, // 1 min .. 1 h
			2 * 3600, 3 * 3600, 4 * 3600, 5 * 3600, 6 * 3600, 8 * 3600,
			10 * 3600, 12 * 3600, 18 * 3600, 24 * 3600, 36 * 3600, 48 * 3600,
		},
		PerfectFrac: 0.10,
	}
}

// Validate reports the first problem with the model, if any.
func (m Model) Validate() error {
	if len(m.Canonical) == 0 {
		return fmt.Errorf("tsafrir: empty canonical menu")
	}
	if !sort.Float64sAreSorted(m.Canonical) {
		return fmt.Errorf("tsafrir: canonical menu must be ascending")
	}
	if m.Canonical[0] <= 0 {
		return fmt.Errorf("tsafrir: canonical values must be positive")
	}
	if m.PerfectFrac < 0 || m.PerfectFrac > 1 {
		return fmt.Errorf("tsafrir: PerfectFrac %v outside [0,1]", m.PerfectFrac)
	}
	return nil
}

// roundUp returns the smallest canonical value >= x. Runtimes beyond the
// menu are rounded up to the next whole hour so e >= r always holds.
func (m Model) roundUp(x float64) float64 {
	i := sort.SearchFloat64s(m.Canonical, x)
	if i < len(m.Canonical) {
		return m.Canonical[i]
	}
	return math.Ceil(x/3600) * 3600
}

// Estimate draws a user estimate for a job with the given actual runtime.
// The result is always >= runtime and always a canonical value, except for
// runtimes beyond the menu, which are rounded up to a whole hour. Inflated
// estimates clamp at the menu maximum, the way production queues cap
// wallclock requests.
func (m Model) Estimate(rng *dist.RNG, runtime float64) float64 {
	if runtime <= 0 {
		runtime = 1
	}
	if rng.Float64() < m.PerfectFrac {
		return m.roundUp(runtime)
	}
	// Uniform accuracy: r/e ~ U(0,1], so e = r/phi.
	phi := rng.Open01()
	e := m.roundUp(runtime / phi)
	if max := m.Canonical[len(m.Canonical)-1]; e > max {
		e = max
	}
	if e < runtime {
		e = m.roundUp(runtime)
	}
	return e
}

// Apply overwrites the Estimate of every job, deterministically from seed.
func Apply(m Model, jobs []workload.Job, seed uint64) error {
	if err := m.Validate(); err != nil {
		return err
	}
	rng := dist.New(seed)
	for i := range jobs {
		jobs[i].Estimate = m.Estimate(rng, jobs[i].Runtime)
	}
	return nil
}
