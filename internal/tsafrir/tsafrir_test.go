package tsafrir

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/workload"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	cases := []Model{
		{},
		{Canonical: []float64{600, 60}},
		{Canonical: []float64{-1, 60}},
		{Canonical: []float64{60}, PerfectFrac: 2},
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: bad model accepted", i)
		}
	}
}

func TestEstimateAlwaysCoversRuntime(t *testing.T) {
	m := Default()
	rng := dist.New(8)
	if err := quick.Check(func(rRaw uint32) bool {
		r := float64(rRaw%200000) + 1
		e := m.Estimate(rng, r)
		return e >= r
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestEstimateIsCanonicalWithinMenu(t *testing.T) {
	m := Default()
	rng := dist.New(9)
	menu := make(map[float64]bool, len(m.Canonical))
	for _, v := range m.Canonical {
		menu[v] = true
	}
	maxMenu := m.Canonical[len(m.Canonical)-1]
	for i := 0; i < 5000; i++ {
		r := 1 + rng.Float64()*90000
		e := m.Estimate(rng, r)
		if e <= maxMenu && !menu[e] {
			t.Fatalf("estimate %v for runtime %v is not canonical", e, r)
		}
		if e > maxMenu && math.Mod(e, 3600) != 0 {
			t.Fatalf("overflow estimate %v is not a round hour", e)
		}
	}
}

func TestEstimatesAreFewValued(t *testing.T) {
	// The whole point of the model: thousands of jobs share a small menu.
	m := Default()
	rng := dist.New(10)
	values := make(map[float64]int)
	for i := 0; i < 10000; i++ {
		r := math.Exp(rng.Float64() * 10) // runtimes 1s .. ~6h
		values[m.Estimate(rng, r)]++
	}
	if len(values) > len(m.Canonical)+5 {
		t.Errorf("estimates took %d distinct values, want about %d", len(values), len(m.Canonical))
	}
}

func TestPerfectFraction(t *testing.T) {
	m := Default()
	m.PerfectFrac = 1
	rng := dist.New(11)
	// With PerfectFrac = 1 every estimate is the tightest canonical cover.
	for i := 0; i < 1000; i++ {
		r := 1 + rng.Float64()*10000
		e := m.Estimate(rng, r)
		if e < r {
			t.Fatal("estimate below runtime")
		}
		// No canonical value may fit strictly between r and e.
		for _, c := range m.Canonical {
			if c >= r && c < e {
				t.Fatalf("estimate %v not tight for runtime %v (canonical %v fits)", e, r, c)
			}
		}
	}
}

func TestAccuracyRoughlyUniform(t *testing.T) {
	// r/e should spread broadly over (0, 1], not concentrate at 1.
	m := Default()
	m.PerfectFrac = 0
	rng := dist.New(12)
	buckets := make([]int, 4)
	const n = 20000
	for i := 0; i < n; i++ {
		r := 100 + rng.Float64()*30000
		e := m.Estimate(rng, r)
		acc := r / e
		idx := int(acc * 4)
		if idx > 3 {
			idx = 3
		}
		buckets[idx]++
	}
	for b, c := range buckets {
		frac := float64(c) / n
		if frac < 0.10 {
			t.Errorf("accuracy bucket %d holds %.3f of jobs; distribution too concentrated", b, frac)
		}
	}
}

func TestApply(t *testing.T) {
	jobs := []workload.Job{
		{ID: 1, Runtime: 100},
		{ID: 2, Runtime: 5000},
		{ID: 3, Runtime: 90000},
	}
	if err := Apply(Default(), jobs, 99); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Estimate < j.Runtime {
			t.Errorf("job %d: estimate %v < runtime %v", j.ID, j.Estimate, j.Runtime)
		}
	}
	// Deterministic.
	again := []workload.Job{
		{ID: 1, Runtime: 100},
		{ID: 2, Runtime: 5000},
		{ID: 3, Runtime: 90000},
	}
	if err := Apply(Default(), again, 99); err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Estimate != again[i].Estimate {
			t.Error("Apply not deterministic")
		}
	}
	// Invalid model rejected.
	if err := Apply(Model{}, jobs, 1); err == nil {
		t.Error("invalid model accepted")
	}
}
