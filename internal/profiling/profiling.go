// Package profiling implements the -cpuprofile/-memprofile flag pair the
// perf-sensitive commands (traindata, schedtest) share, so the training
// and serving paths can be profiled without code edits.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile and arranges a heap profile per the given
// file paths (empty = disabled). The returned stop function ends the CPU
// profile and writes the heap profile; callers defer it on the successful
// exit paths (error paths that os.Exit intentionally skip profiling
// output). prefix labels any profile I/O errors, which are reported to
// stderr rather than failing the run.
func Start(prefix, cpu, mem string) (stop func(), err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: cpuprofile: %v\n", prefix, err)
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: memprofile: %v\n", prefix, err)
				return
			}
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "%s: memprofile: %v\n", prefix, err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: memprofile: %v\n", prefix, err)
			}
		}
	}, nil
}
