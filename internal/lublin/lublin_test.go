package lublin

import (
	"math"
	"testing"

	"github.com/hpcsched/gensched/internal/workload"
)

func TestDefaultParamsValidate(t *testing.T) {
	for _, cores := range []int{2, 256, 1024, 93312, 163840} {
		p := DefaultParams(cores)
		if err := p.Validate(); err != nil {
			t.Errorf("DefaultParams(%d): %v", cores, err)
		}
		if math.Abs(p.UHi-math.Log2(float64(cores))) > 1e-9 {
			t.Errorf("UHi for %d cores = %v", cores, p.UHi)
		}
	}
	// Cycle weights normalized to mean 1.
	p := DefaultParams(256)
	var sum float64
	for _, w := range p.CycleWeights {
		sum += w
	}
	if math.Abs(sum/24-1) > 1e-9 {
		t.Errorf("cycle weight mean = %v, want 1", sum/24)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	base := DefaultParams(256)
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"serial prob", func(p *Params) { p.SerialProb = 1.5 }},
		{"pow2 prob", func(p *Params) { p.Pow2Prob = -0.1 }},
		{"size dist", func(p *Params) { p.UMed = p.UHi + 1 }},
		{"runtime gamma", func(p *Params) { p.A1 = 0 }},
		{"arrival gamma", func(p *Params) { p.BArr = -1 }},
		{"runtime clamp", func(p *Params) { p.MaxRuntime = 0.5 }},
	}
	for _, c := range cases {
		p := base
		c.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: bad params accepted", c.name)
		}
	}
}

func TestNewGeneratorErrors(t *testing.T) {
	p := DefaultParams(256)
	p.A1 = -1
	if _, err := NewGenerator(p, 256, 1); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := NewGenerator(DefaultParams(256), 0, 1); err == nil {
		t.Error("zero cores accepted")
	}
}

func genJobs(t *testing.T, cores, n int, seed uint64) []workload.Job {
	t.Helper()
	g, err := NewGenerator(DefaultParams(cores), cores, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g.Jobs(n)
}

func TestJobsShape(t *testing.T) {
	const cores = 256
	jobs := genJobs(t, cores, 5000, 42)
	if len(jobs) != 5000 {
		t.Fatalf("got %d jobs", len(jobs))
	}
	serial, pow2, parallel := 0, 0, 0
	prev := 0.0
	for _, j := range jobs {
		if err := j.Validate(cores); err != nil {
			t.Fatal(err)
		}
		if j.Submit < prev {
			t.Fatal("arrivals not monotone")
		}
		prev = j.Submit
		if j.Cores == 1 {
			serial++
		} else {
			parallel++
			if j.Cores&(j.Cores-1) == 0 {
				pow2++
			}
		}
		if j.Runtime < 1 || j.Runtime > DefaultParams(cores).MaxRuntime {
			t.Fatalf("runtime %v outside clamp", j.Runtime)
		}
		if j.Estimate != j.Runtime {
			t.Fatal("generator must default to perfect estimates")
		}
	}
	serialFrac := float64(serial) / float64(len(jobs))
	if math.Abs(serialFrac-0.244) > 0.03 {
		t.Errorf("serial fraction = %.3f, want about 0.244", serialFrac)
	}
	// Power-of-two jobs include the explicit 57.6% plus rounding accidents.
	pow2Frac := float64(pow2) / float64(parallel)
	if pow2Frac < 0.55 {
		t.Errorf("power-of-two fraction = %.3f, want > 0.55", pow2Frac)
	}
}

func TestSizeRuntimeCorrelation(t *testing.T) {
	// The hyper-gamma mixture weight makes big jobs run longer on average
	// (in log space). Compare mean ln-runtime of small vs large jobs.
	jobs := genJobs(t, 1024, 8000, 7)
	var smallSum, largeSum float64
	var smallN, largeN int
	for _, j := range jobs {
		if j.Cores <= 2 {
			smallSum += math.Log(j.Runtime)
			smallN++
		} else if j.Cores >= 64 {
			largeSum += math.Log(j.Runtime)
			largeN++
		}
	}
	if smallN == 0 || largeN == 0 {
		t.Fatal("degenerate size split")
	}
	if smallSum/float64(smallN) >= largeSum/float64(largeN) {
		t.Errorf("small jobs (%d) mean ln r %.2f not below large jobs (%d) %.2f",
			smallN, smallSum/float64(smallN), largeN, largeSum/float64(largeN))
	}
}

func TestDailyCycleShapesArrivals(t *testing.T) {
	g, err := NewGenerator(DefaultParams(256), 256, 11)
	if err != nil {
		t.Fatal(err)
	}
	jobs := g.Until(30 * 24 * 3600)
	if len(jobs) < 500 {
		t.Fatalf("only %d jobs in 30 days", len(jobs))
	}
	day := make([]int, 24)
	for _, j := range jobs {
		day[int(math.Mod(j.Submit/3600, 24))]++
	}
	night := day[0] + day[1] + day[2] + day[3] + day[4] + day[5]
	noon := day[10] + day[11] + day[12] + day[13] + day[14] + day[15]
	if noon <= 2*night {
		t.Errorf("daytime arrivals (%d) not dominating nighttime (%d)", noon, night)
	}
}

func TestDeterminism(t *testing.T) {
	a := genJobs(t, 256, 500, 123)
	b := genJobs(t, 256, 500, 123)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs across same-seed runs", i)
		}
	}
	c := genJobs(t, 256, 500, 124)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestOfferedLoadAndCalibration(t *testing.T) {
	jobs := genJobs(t, 256, 4000, 5)
	for _, target := range []float64{0.6, 0.85, 1.05} {
		cp := append([]workload.Job(nil), jobs...)
		factor := CalibrateLoad(cp, 256, target)
		if factor <= 0 {
			t.Fatalf("factor = %v", factor)
		}
		got := OfferedLoad(cp, 256)
		if math.Abs(got-target) > 0.01*target {
			t.Errorf("calibrated load = %.4f, want %.4f", got, target)
		}
		// Order preserved.
		for i := 1; i < len(cp); i++ {
			if cp[i].Submit < cp[i-1].Submit {
				t.Fatal("calibration broke arrival order")
			}
		}
		// Runtimes and sizes untouched.
		for i := range cp {
			if cp[i].Runtime != jobs[i].Runtime || cp[i].Cores != jobs[i].Cores {
				t.Fatal("calibration changed job shapes")
			}
		}
	}
}

func TestOfferedLoadEdgeCases(t *testing.T) {
	if got := OfferedLoad(nil, 256); got != 0 {
		t.Errorf("empty load = %v", got)
	}
	one := []workload.Job{{Submit: 0, Runtime: 10, Cores: 1}}
	if got := OfferedLoad(one, 256); got != 0 {
		t.Errorf("single-job load = %v", got)
	}
	if f := CalibrateLoad(one, 256, 1); f != 1 {
		t.Errorf("degenerate calibration factor = %v", f)
	}
}

func TestUntilRespectsDuration(t *testing.T) {
	g, _ := NewGenerator(DefaultParams(64), 64, 3)
	jobs := g.Until(24 * 3600)
	for _, j := range jobs {
		if j.Submit > 24*3600 {
			t.Fatalf("job at %v beyond duration", j.Submit)
		}
	}
}
