// Package lublin implements the Lublin–Feitelson workload model ("The
// workload on parallel supercomputers: modeling the characteristics of
// rigid jobs", JPDC 2003), the generator the paper trains its scheduling
// policies on and evaluates them with (§4.2).
//
// The model has three coupled parts, all reproduced here:
//
//   - Job size (cores): a fraction of jobs are serial; parallel jobs draw
//     log2(size) from a two-stage uniform distribution, with a bias toward
//     powers of two.
//   - Runtime: ln(runtime) follows a hyper-gamma distribution whose mixture
//     weight depends linearly on the job size, so bigger jobs run longer.
//   - Arrivals: ln(inter-arrival gap) follows a gamma distribution,
//     modulated by a daily cycle (few arrivals at night, peak during
//     working hours).
//
// Constants are transcribed from the published batch-partition fit; the
// daily-cycle weight table is a documented qualitative approximation (see
// DESIGN.md). Because absolute load levels matter more to scheduling
// experiments than the raw constants, CalibrateLoad rescales arrival gaps
// to hit a target offered load exactly.
package lublin

import (
	"fmt"
	"math"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/workload"
)

// Params are the model parameters. The zero value is not useful; start
// from DefaultParams.
type Params struct {
	// Size model.
	SerialProb float64 // fraction of serial (1-core) jobs
	Pow2Prob   float64 // among parallel jobs, fraction with power-of-two size
	ULow       float64 // two-stage uniform low bound, in log2(cores)
	UMed       float64 // two-stage uniform break point
	UHi        float64 // two-stage uniform high bound = log2(machine size)
	UProb      float64 // probability of the [ULow, UMed] stage

	// Runtime model: ln(runtime) ~ hyper-gamma.
	A1, B1 float64 // short-job component
	A2, B2 float64 // long-job component
	PA, PB float64 // mixture weight p(n) = PA·n + PB, clamped to [0,1]

	// Arrival model: ln(gap) ~ gamma, modulated by the daily cycle.
	AArr, BArr   float64
	CycleWeights [24]float64 // hourly arrival-rate multipliers (mean 1)

	MaxRuntime float64 // clamp on runtimes, seconds
	MinRuntime float64 // clamp on runtimes, seconds
}

// defaultCycle approximates the daily arrival cycle of the Lublin model:
// quiet nights, a morning ramp, a broad daytime peak, and an evening tail.
// DefaultParams normalizes it to mean 1 so load calibration is unaffected.
var defaultCycle = [24]float64{
	0.30, 0.25, 0.22, 0.20, 0.20, 0.25, // 00-05
	0.35, 0.50, 0.90, 1.40, 1.70, 1.80, // 06-11
	1.75, 1.75, 1.80, 1.75, 1.65, 1.50, // 12-17
	1.30, 1.10, 0.90, 0.70, 0.50, 0.40, // 18-23
}

// DefaultParams returns the published batch-job parameters for a machine
// with the given number of cores. UHi tracks the machine size (log2) and
// UMed sits 2.5 below it, as the model prescribes.
func DefaultParams(cores int) Params {
	if cores < 2 {
		cores = 2
	}
	uhi := math.Log2(float64(cores))
	umed := uhi - 2.5
	if umed < 0.8 {
		umed = (0.8 + uhi) / 2
	}
	p := Params{
		SerialProb: 0.244,
		Pow2Prob:   0.576,
		ULow:       0.8,
		UMed:       umed,
		UHi:        uhi,
		UProb:      0.86,
		A1:         4.2, B1: 0.94,
		A2: 312, B2: 0.03,
		PA: -0.0054, PB: 0.78,
		AArr: 10.23, BArr: 0.4871,
		MaxRuntime: 2.7e4, // 7.5 h (the paper's Fig. 3 processing-time range)
		MinRuntime: 1,
	}
	var sum float64
	for _, w := range defaultCycle {
		sum += w
	}
	for i, w := range defaultCycle {
		p.CycleWeights[i] = w * 24 / sum
	}
	return p
}

// Validate reports the first parameter problem, if any.
func (p Params) Validate() error {
	switch {
	case p.SerialProb < 0 || p.SerialProb > 1:
		return fmt.Errorf("lublin: SerialProb %v outside [0,1]", p.SerialProb)
	case p.Pow2Prob < 0 || p.Pow2Prob > 1:
		return fmt.Errorf("lublin: Pow2Prob %v outside [0,1]", p.Pow2Prob)
	case !(dist.TwoStageUniform{Low: p.ULow, Med: p.UMed, High: p.UHi, Prob: p.UProb}).Valid():
		return fmt.Errorf("lublin: invalid size distribution (low=%v med=%v hi=%v prob=%v)",
			p.ULow, p.UMed, p.UHi, p.UProb)
	case p.A1 <= 0 || p.B1 <= 0 || p.A2 <= 0 || p.B2 <= 0:
		return fmt.Errorf("lublin: non-positive runtime gamma parameters")
	case p.AArr <= 0 || p.BArr <= 0:
		return fmt.Errorf("lublin: non-positive arrival gamma parameters")
	case p.MaxRuntime < p.MinRuntime || p.MinRuntime <= 0:
		return fmt.Errorf("lublin: bad runtime clamp [%v, %v]", p.MinRuntime, p.MaxRuntime)
	}
	return nil
}

// Generator produces an endless stream of jobs for one simulated machine.
type Generator struct {
	p      Params
	cores  int
	rng    *dist.RNG
	now    float64
	nextID int
}

// NewGenerator builds a generator for a machine with the given core count.
// Jobs never request more cores than the machine has.
func NewGenerator(p Params, cores int, seed uint64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cores < 1 {
		return nil, fmt.Errorf("lublin: machine needs at least one core, got %d", cores)
	}
	return &Generator{p: p, cores: cores, rng: dist.New(seed), nextID: 1}, nil
}

// sampleCores draws a job size.
func (g *Generator) sampleCores() int {
	if g.rng.Float64() < g.p.SerialProb {
		return 1
	}
	ts := dist.TwoStageUniform{Low: g.p.ULow, Med: g.p.UMed, High: g.p.UHi, Prob: g.p.UProb}
	x := ts.Sample(g.rng)
	var n int
	if g.rng.Float64() < g.p.Pow2Prob {
		n = 1 << int(math.Round(x)) // power-of-two bias
	} else {
		n = int(math.Round(math.Pow(2, x)))
	}
	if n < 1 {
		n = 1
	}
	if n > g.cores {
		n = g.cores
	}
	return n
}

// sampleRuntime draws a runtime (seconds) for a job of the given size:
// e^X with X hyper-gamma, mixture weight p(n) = PA·n + PB.
func (g *Generator) sampleRuntime(cores int) float64 {
	prob := g.p.PA*float64(cores) + g.p.PB
	if prob < 0 {
		prob = 0
	}
	if prob > 1 {
		prob = 1
	}
	hg := dist.HyperGamma{A1: g.p.A1, B1: g.p.B1, A2: g.p.A2, B2: g.p.B2, P: prob}
	r := math.Exp(hg.Sample(g.rng))
	if r < g.p.MinRuntime {
		r = g.p.MinRuntime
	}
	if r > g.p.MaxRuntime {
		r = g.p.MaxRuntime
	}
	return math.Round(r) // SWF stores integer seconds
}

// sampleGap draws the next inter-arrival gap (seconds), modulated by the
// daily cycle at the current simulated clock: gaps shrink during the
// daytime peak and stretch at night.
func (g *Generator) sampleGap() float64 {
	base := math.Exp(dist.Gamma(g.rng, g.p.AArr, g.p.BArr))
	hour := int(math.Mod(g.now/3600, 24))
	if hour < 0 {
		hour += 24
	}
	w := g.p.CycleWeights[hour]
	if w <= 0 {
		w = 1e-3
	}
	gap := base / w
	if gap < 1 {
		gap = 1
	}
	return math.Round(gap)
}

// Next generates the next job in arrival order.
func (g *Generator) Next() workload.Job {
	g.now += g.sampleGap()
	cores := g.sampleCores()
	r := g.sampleRuntime(cores)
	j := workload.Job{
		ID:       g.nextID,
		Submit:   g.now,
		Runtime:  r,
		Estimate: r, // perfect by default; tsafrir.Apply overwrites
		Cores:    cores,
	}
	g.nextID++
	return j
}

// Jobs generates count jobs.
func (g *Generator) Jobs(count int) []workload.Job {
	out := make([]workload.Job, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, g.Next())
	}
	return out
}

// Until generates jobs until the arrival clock passes duration seconds.
func (g *Generator) Until(duration float64) []workload.Job {
	var out []workload.Job
	for {
		j := g.Next()
		if j.Submit > duration {
			return out
		}
		out = append(out, j)
	}
}

// OfferedLoad computes Σ r·n / (cores · span): the offered load of a job
// stream against a machine size. Loads near 1 saturate the machine, which
// is the regime where scheduling policy differences dominate.
func OfferedLoad(jobs []workload.Job, cores int) float64 {
	if len(jobs) < 2 || cores <= 0 {
		return 0
	}
	var area float64
	for _, j := range jobs {
		area += j.Area()
	}
	span := jobs[len(jobs)-1].Submit - jobs[0].Submit
	if span <= 0 {
		return 0
	}
	return area / (float64(cores) * span)
}

// CalibrateLoad rescales the arrival gaps of jobs (in place) so the
// offered load against the machine equals target. The relative arrival
// pattern, sizes and runtimes are untouched; only the clock dilates.
// It returns the scale factor applied to the gaps.
func CalibrateLoad(jobs []workload.Job, cores int, target float64) float64 {
	if target <= 0 || len(jobs) < 2 {
		return 1
	}
	current := OfferedLoad(jobs, cores)
	if current <= 0 {
		return 1
	}
	factor := current / target
	origin := jobs[0].Submit
	for i := range jobs {
		jobs[i].Submit = origin + (jobs[i].Submit-origin)*factor
	}
	return factor
}
