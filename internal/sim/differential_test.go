package sim_test

// The differential harness: the optimized engine must produce schedules
// bit-identical to the internal/simref oracle on hundreds of randomized
// adversarial workloads, across every backfill mode, with actual runtimes
// and with user estimates (including underestimates, which exercise the
// clamped perceived-finish paths), under both static and time-varying
// policies, with and without an EASY candidate-order policy, and with
// KillAtEstimate. Invariant checking (Options.Check) is on for every
// engine run, so the online checker is exercised on the same corpus.

import (
	"testing"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/simref"
	"github.com/hpcsched/gensched/internal/simtest"
)

func TestDifferentialOracle(t *testing.T) {
	workloads := 500
	if testing.Short() {
		workloads = 60
	}
	policies := []sched.Policy{sched.FCFS(), sched.SPT(), sched.F1(), sched.WFP3(), sched.UNICEF(), sched.SAF()}
	root := dist.New(20260729)
	for wi := 0; wi < workloads; wi++ {
		rng := root.Split(uint64(wi))
		n := 20 + rng.IntN(41)    // 20..60 jobs
		cores := 4 + rng.IntN(29) // 4..32 cores
		jobs := simtest.RandomJobs(rng, n, cores)
		policy := policies[wi%len(policies)]
		var order sched.Policy
		if wi%5 == 0 {
			order = sched.SPT() // EASY-SJBF candidate order on a fifth of the corpus
		}
		kill := wi%7 == 0
		for _, mode := range simtest.Modes {
			for _, est := range []bool{false, true} {
				err := simtest.Differential(cores, jobs, sim.Options{
					Policy:         policy,
					Backfill:       mode,
					BackfillOrder:  order,
					UseEstimates:   est,
					KillAtEstimate: kill,
				})
				if err != nil {
					t.Fatalf("workload %d (%s, n=%d, cores=%d): %v", wi, policy.Name(), n, cores, err)
				}
			}
		}
	}
}

// TestDifferentialOracleFixedOrder covers the PolicyWithID path (the
// trial engine's FixedOrder permutations) against the oracle.
func TestDifferentialOracleFixedOrder(t *testing.T) {
	root := dist.New(77)
	for wi := 0; wi < 20; wi++ {
		rng := root.Split(uint64(wi))
		jobs := simtest.RandomJobs(rng, 30, 8)
		rank := make(map[int]int, len(jobs))
		for i := range jobs { // a deterministic shuffle of priorities
			rank[jobs[i].ID] = int(rng.Uint64() % 1000)
		}
		for _, mode := range simtest.Modes {
			if err := simtest.Differential(8, jobs, sim.Options{
				Policy:   sched.FixedOrder(rank),
				Backfill: mode,
			}); err != nil {
				t.Fatalf("workload %d: %v", wi, err)
			}
		}
	}
}

// TestCheckCatchesCorruptedSchedule makes sure the auditor is not
// vacuous: a hand-corrupted schedule must be rejected.
func TestCheckCatchesCorruptedSchedule(t *testing.T) {
	jobs := simtest.RandomJobs(dist.New(5), 40, 8)
	res, err := sim.Run(sim.Platform{Cores: 8}, jobs, sim.Options{Policy: sched.FCFS()})
	if err != nil {
		t.Fatal(err)
	}
	// Start a job before its submission.
	early := simtest.Placements(res)
	early[3].Start = early[3].Job.Submit - 10
	if err := simref.CheckSchedule(8, early); err == nil {
		t.Error("start-before-submit accepted")
	}
	// Oversubscribe: squash every job onto its submission instant on a
	// machine too small to hold them all.
	squash := simtest.Placements(res)
	for i := range squash {
		squash[i].Start = squash[i].Job.Submit
		squash[i].Finish = squash[i].Start + squash[i].Job.Runtime
	}
	if err := simref.CheckSchedule(2, squash); err == nil {
		t.Error("oversubscribed schedule accepted on a 2-core machine")
	}
	// The untouched schedule passes.
	if err := simref.CheckSchedule(8, simtest.Placements(res)); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}
