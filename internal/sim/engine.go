package sim

import (
	"container/heap"
	"math"
	"sort"

	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/stats"
	"github.com/hpcsched/gensched/internal/workload"
)

// task is the engine's mutable view of one job.
type task struct {
	job       workload.Job
	perceived float64 // runtime the scheduler sees (r or e)
	execution float64 // runtime execution actually takes
	score     float64 // cached policy score (static policies)
	start     float64
	finish    float64
	started   bool
	done      bool
	backfill  bool
}

// event kinds, ordered so completions at a timestamp are applied before
// arrivals: released cores must be visible to the scheduling pass that
// also sees the new arrivals.
const (
	evCompletion = iota
	evArrival
)

type event struct {
	time float64
	kind int
	task int // task index
	seq  int // tie-break for determinism
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)     { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)       { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any         { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }
func (h eventHeap) peekTime() float64 { return h[0].time }

type engine struct {
	cores int
	free  int
	opt   Options
	tau   float64

	policy      sched.Policy
	withID      sched.PolicyWithID // non-nil if policy scores by job ID
	timeVarying bool

	tasks   []task
	queue   []int // waiting task indices; kept score-sorted for static policies
	running []int // running task indices
	events  eventHeap
	seq     int
	now     float64

	maxQueueLen int
	backfilled  int
	timeline    []TimelinePoint
}

func newEngine(p Platform, jobs []workload.Job, opt Options) *engine {
	tau := opt.Tau
	if tau <= 0 {
		tau = DefaultTau
	}
	e := &engine{
		cores:       p.Cores,
		free:        p.Cores,
		opt:         opt,
		tau:         tau,
		policy:      opt.Policy,
		timeVarying: opt.Policy.TimeVarying(),
	}
	if w, ok := opt.Policy.(sched.PolicyWithID); ok {
		e.withID = w
	}
	e.tasks = make([]task, len(jobs))
	for i, j := range jobs {
		perceived := j.Runtime
		if opt.UseEstimates && j.Estimate > 0 {
			perceived = j.Estimate
		}
		execution := j.Runtime
		if opt.KillAtEstimate && j.Estimate > 0 && j.Estimate < execution {
			execution = j.Estimate
		}
		e.tasks[i] = task{job: j, perceived: perceived, execution: execution}
		e.push(event{time: j.Submit, kind: evArrival, task: i})
	}
	heap.Init(&e.events)
	return e
}

func (e *engine) push(ev event) {
	ev.seq = e.seq
	e.seq++
	e.events = append(e.events, ev)
}

func (e *engine) pushHeap(ev event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.events, ev)
}

// view builds the policy's JobView of a task at the current time.
func (e *engine) view(ti int) sched.JobView {
	t := &e.tasks[ti]
	wait := e.now - t.job.Submit
	if wait < 0 {
		wait = 0
	}
	return sched.JobView{
		Runtime: t.perceived,
		Cores:   float64(t.job.Cores),
		Submit:  t.job.Submit,
		Wait:    wait,
	}
}

// staticScore computes and caches the score of a task under a
// non-time-varying policy (Wait plays no role, so it is evaluated as 0).
func (e *engine) staticScore(ti int) float64 {
	v := e.view(ti)
	v.Wait = 0
	if e.withID != nil {
		return e.withID.ScoreID(e.tasks[ti].job.ID, v)
	}
	return e.policy.Score(v)
}

// enqueue inserts an arrived task into the waiting queue. For static
// policies the queue stays sorted by (score, submit, id) via binary
// insertion; time-varying policies re-sort at each scheduling pass.
func (e *engine) enqueue(ti int) {
	if e.timeVarying {
		e.queue = append(e.queue, ti)
		return
	}
	e.tasks[ti].score = e.staticScore(ti)
	lo, hi := 0, len(e.queue)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.queueLess(e.queue[mid], ti) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	e.queue = append(e.queue, 0)
	copy(e.queue[lo+1:], e.queue[lo:])
	e.queue[lo] = ti
}

// queueLess orders tasks by (score, submit, id) — the deterministic order
// every experiment uses.
func (e *engine) queueLess(a, b int) bool {
	ta, tb := &e.tasks[a], &e.tasks[b]
	if ta.score != tb.score {
		return ta.score < tb.score
	}
	if ta.job.Submit != tb.job.Submit {
		return ta.job.Submit < tb.job.Submit
	}
	return ta.job.ID < tb.job.ID
}

// resortQueue refreshes scores at the current time and re-sorts; only
// needed for time-varying policies.
func (e *engine) resortQueue() {
	for _, ti := range e.queue {
		if e.withID != nil {
			e.tasks[ti].score = e.withID.ScoreID(e.tasks[ti].job.ID, e.view(ti))
		} else {
			e.tasks[ti].score = e.policy.Score(e.view(ti))
		}
	}
	sort.SliceStable(e.queue, func(i, j int) bool { return e.queueLess(e.queue[i], e.queue[j]) })
}

// startTask launches a waiting task now.
func (e *engine) startTask(ti int, backfillStart bool) {
	t := &e.tasks[ti]
	t.started = true
	t.backfill = backfillStart
	t.start = e.now
	t.finish = e.now + t.execution
	e.free -= t.job.Cores
	e.running = append(e.running, ti)
	e.pushHeap(event{time: t.finish, kind: evCompletion, task: ti})
	if backfillStart {
		e.backfilled++
	}
}

// completeTask retires a finished task.
func (e *engine) completeTask(ti int) {
	t := &e.tasks[ti]
	t.done = true
	e.free += t.job.Cores
	for i, ri := range e.running {
		if ri == ti {
			e.running[i] = e.running[len(e.running)-1]
			e.running = e.running[:len(e.running)-1]
			break
		}
	}
}

// run executes the event loop: drain all events at a timestamp, then hold
// one scheduling pass (the paper's rescheduling events are exactly task
// arrivals and resource releases).
func (e *engine) run() {
	for e.events.Len() > 0 {
		now := e.events.peekTime()
		e.now = now
		for e.events.Len() > 0 && e.events.peekTime() == now {
			ev := heap.Pop(&e.events).(event)
			switch ev.kind {
			case evArrival:
				e.enqueue(ev.task)
			case evCompletion:
				e.completeTask(ev.task)
			}
		}
		if len(e.queue) > e.maxQueueLen {
			e.maxQueueLen = len(e.queue)
		}
		e.schedulePass()
		if e.opt.RecordTimeline {
			e.timeline = append(e.timeline, TimelinePoint{
				Time:     now,
				QueueLen: len(e.queue),
				CoresUse: e.cores - e.free,
			})
		}
	}
}

// schedulePass starts every task the policy and backfilling rules allow.
func (e *engine) schedulePass() {
	if len(e.queue) == 0 || e.free == 0 {
		return
	}
	if e.timeVarying {
		e.resortQueue()
	}
	// Start from the head while it fits.
	for len(e.queue) > 0 && e.tasks[e.queue[0]].job.Cores <= e.free {
		e.startTask(e.queue[0], false)
		e.queue = e.queue[1:]
	}
	if len(e.queue) == 0 || e.free == 0 {
		return
	}
	switch e.opt.Backfill {
	case BackfillEASY:
		e.easyBackfill()
	case BackfillConservative:
		e.conservativeBackfill()
	}
}

// result assembles metrics after the event loop drains.
func (e *engine) result() *Result {
	res := &Result{
		Stats:       make([]JobStats, len(e.tasks)),
		MaxQueueLen: e.maxQueueLen,
		Backfilled:  e.backfilled,
		Timeline:    e.timeline,
	}
	if len(e.tasks) == 0 {
		return res
	}
	firstSubmit := math.Inf(1)
	lastFinish := math.Inf(-1)
	var sumB, sumW, busy float64
	for i := range e.tasks {
		t := &e.tasks[i]
		wait := t.start - t.job.Submit
		b := Bsld(wait, t.job.Runtime, e.tau)
		res.Stats[i] = JobStats{
			Job:        t.job,
			Start:      t.start,
			Finish:     t.finish,
			Wait:       wait,
			BSLD:       b,
			Backfilled: t.backfill,
		}
		sumB += b
		sumW += wait
		busy += t.execution * float64(t.job.Cores)
		if t.job.Submit < firstSubmit {
			firstSubmit = t.job.Submit
		}
		if t.finish > lastFinish {
			lastFinish = t.finish
		}
		if b > res.MaxBSLD {
			res.MaxBSLD = b
		}
		if wait > res.MaxWait {
			res.MaxWait = wait
		}
	}
	n := float64(len(e.tasks))
	res.AVEbsld = sumB / n
	res.MeanWait = sumW / n
	res.Makespan = lastFinish - firstSubmit
	if res.Makespan > 0 {
		res.Utilization = busy / (float64(e.cores) * res.Makespan)
	}
	bslds := make([]float64, len(res.Stats))
	waits := make([]float64, len(res.Stats))
	for i, s := range res.Stats {
		bslds[i], waits[i] = s.BSLD, s.Wait
	}
	res.MedianBSLD = stats.Median(bslds)
	res.P95BSLD = stats.Quantile(bslds, 0.95)
	res.P95Wait = stats.Quantile(waits, 0.95)
	return res
}
