package sim

import (
	"math"
	"sort"

	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/stats"
	"github.com/hpcsched/gensched/internal/workload"
)

// task is the engine's mutable view of one job.
type task struct {
	job       workload.Job
	perceived float64 // runtime the scheduler sees (r or e)
	execution float64 // runtime execution actually takes
	score     float64 // cached policy score (static policies)
	start     float64
	finish    float64
	started   bool
	done      bool
	backfill  bool
}

// event kinds, ordered so completions at a timestamp are applied before
// arrivals: released cores must be visible to the scheduling pass that
// also sees the new arrivals.
const (
	evCompletion = iota
	evArrival
)

type event struct {
	time float64
	kind int
	task int // task index
	seq  int // tie-break for determinism
}

// less is the deterministic event order: time, then kind (completions
// before arrivals), then insertion sequence.
func (a event) less(b event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.seq < b.seq
}

// eventHeap is a binary min-heap of events. It is hand-rolled rather than
// built on container/heap because the interface-based API boxes every
// pushed and popped event into an `any`, which costs two heap allocations
// per simulated completion — the single largest allocation source in the
// event loop.
type eventHeap []event

func (h eventHeap) peekTime() float64 { return h[0].time }

func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && h[right].less(h[left]) {
			least = right
		}
		if !h[least].less(h[i]) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

func (h eventHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

type engine struct {
	cores int
	free  int
	opt   Options
	tau   float64

	policy      sched.Policy
	withID      sched.PolicyWithID // non-nil if policy scores by job ID
	timeVarying bool

	tasks []task
	queue []int // waiting task indices; kept score-sorted for static policies
	// running holds the running task indices sorted by ascending
	// (start+perceived, job ID): the perceived-finish order every backfill
	// reservation scans. The order is maintained incrementally (binary
	// insert on start, binary remove on completion) so no scheduling pass
	// ever sorts the running set.
	running []int
	events  eventHeap
	seq     int
	now     float64

	maxQueueLen int
	backfilled  int
	timeline    []TimelinePoint

	// Scratch buffers reused across scheduling passes so the hot paths
	// (EASY candidate ordering, the conservative availability profile)
	// allocate only on high-water-mark growth.
	orderBuf []int
	keysBuf  []float64
	prof     profile

	// checkErr records the first invariant violation when Options.Check
	// is set; nil otherwise. See check.go.
	checkErr error
}

func newEngine(p Platform, jobs []workload.Job, opt Options) *engine {
	tau := opt.Tau
	if tau <= 0 {
		tau = DefaultTau
	}
	e := &engine{
		cores:       p.Cores,
		free:        p.Cores,
		opt:         opt,
		tau:         tau,
		policy:      opt.Policy,
		timeVarying: opt.Policy.TimeVarying(),
	}
	if w, ok := opt.Policy.(sched.PolicyWithID); ok {
		e.withID = w
	}
	e.tasks = make([]task, len(jobs))
	e.events = make(eventHeap, 0, 2*len(jobs))
	for i, j := range jobs {
		perceived := j.Runtime
		if opt.UseEstimates && j.Estimate > 0 {
			perceived = j.Estimate
		}
		execution := j.Runtime
		if opt.KillAtEstimate && j.Estimate > 0 && j.Estimate < execution {
			execution = j.Estimate
		}
		e.tasks[i] = task{job: j, perceived: perceived, execution: execution}
		e.events = append(e.events, event{time: j.Submit, kind: evArrival, task: i, seq: e.seq})
		e.seq++
	}
	e.events.init()
	return e
}

func (e *engine) pushHeap(ev event) {
	ev.seq = e.seq
	e.seq++
	e.events = append(e.events, ev)
	e.events.siftUp(len(e.events) - 1)
}

func (e *engine) popHeap() event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	e.events = h[:n]
	e.events.siftDown(0)
	return top
}

// view builds the policy's JobView of a task at the current time.
func (e *engine) view(ti int) sched.JobView {
	t := &e.tasks[ti]
	wait := e.now - t.job.Submit
	if wait < 0 {
		wait = 0
	}
	return sched.JobView{
		Runtime: t.perceived,
		Cores:   float64(t.job.Cores),
		Submit:  t.job.Submit,
		Wait:    wait,
	}
}

// staticScore computes and caches the score of a task under a
// non-time-varying policy (Wait plays no role, so it is evaluated as 0).
func (e *engine) staticScore(ti int) float64 {
	v := e.view(ti)
	v.Wait = 0
	if e.withID != nil {
		return e.withID.ScoreID(e.tasks[ti].job.ID, v)
	}
	return e.policy.Score(v)
}

// enqueue inserts an arrived task into the waiting queue. For static
// policies the queue stays sorted by (score, submit, id) via binary
// insertion; time-varying policies re-sort at each scheduling pass.
func (e *engine) enqueue(ti int) {
	if e.timeVarying {
		e.queue = append(e.queue, ti)
		return
	}
	e.tasks[ti].score = e.staticScore(ti)
	lo, hi := 0, len(e.queue)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.queueLess(e.queue[mid], ti) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	e.queue = append(e.queue, 0)
	copy(e.queue[lo+1:], e.queue[lo:])
	e.queue[lo] = ti
}

// queueLess orders tasks by (score, submit, id) — the deterministic order
// every experiment uses.
func (e *engine) queueLess(a, b int) bool {
	ta, tb := &e.tasks[a], &e.tasks[b]
	if ta.score != tb.score {
		return ta.score < tb.score
	}
	if ta.job.Submit != tb.job.Submit {
		return ta.job.Submit < tb.job.Submit
	}
	return ta.job.ID < tb.job.ID
}

// resortQueue refreshes scores at the current time and re-sorts; only
// needed for time-varying policies.
func (e *engine) resortQueue() {
	for _, ti := range e.queue {
		if e.withID != nil {
			e.tasks[ti].score = e.withID.ScoreID(e.tasks[ti].job.ID, e.view(ti))
		} else {
			e.tasks[ti].score = e.policy.Score(e.view(ti))
		}
	}
	sort.SliceStable(e.queue, func(i, j int) bool { return e.queueLess(e.queue[i], e.queue[j]) })
}

// rawPF is a task's unclamped perceived finish time, the running-set sort
// key. It is fixed at start time (start and perceived never change), so
// the incremental order in e.running stays valid as the clock advances.
func (e *engine) rawPF(ti int) float64 {
	t := &e.tasks[ti]
	return t.start + t.perceived
}

// runningLess is the running-set order: ascending unclamped perceived
// finish, ties by job ID. Clamping to `now` (perceivedFinish) preserves
// this order, so scans over e.running see nondecreasing release times.
func (e *engine) runningLess(a, b int) bool {
	pa, pb := e.rawPF(a), e.rawPF(b)
	if pa != pb {
		return pa < pb
	}
	return e.tasks[a].job.ID < e.tasks[b].job.ID
}

// runningRank binary-searches the sorted running set for the first
// position not ordered before task ti — its insertion point on start and
// the head of its equal-key run on completion.
func (e *engine) runningRank(ti int) int {
	lo, hi := 0, len(e.running)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.runningLess(e.running[mid], ti) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// startTask launches a waiting task now, inserting it into the running
// set at its perceived-finish position.
func (e *engine) startTask(ti int, backfillStart bool) {
	t := &e.tasks[ti]
	t.started = true
	t.backfill = backfillStart
	t.start = e.now
	t.finish = e.now + t.execution
	e.free -= t.job.Cores
	lo := e.runningRank(ti)
	e.running = append(e.running, 0)
	copy(e.running[lo+1:], e.running[lo:])
	e.running[lo] = ti
	e.pushHeap(event{time: t.finish, kind: evCompletion, task: ti})
	if backfillStart {
		e.backfilled++
	}
	if e.opt.Check {
		e.checkStart(ti)
	}
}

// completeTask retires a finished task, removing it from the sorted
// running set by binary search.
func (e *engine) completeTask(ti int) {
	t := &e.tasks[ti]
	t.done = true
	e.free += t.job.Cores
	for i := e.runningRank(ti); i < len(e.running); i++ {
		if e.running[i] == ti {
			copy(e.running[i:], e.running[i+1:])
			e.running = e.running[:len(e.running)-1]
			break
		}
	}
	if e.opt.Check && e.free > e.cores {
		e.failf("completion of job %d released more cores than the platform has (%d free of %d)",
			t.job.ID, e.free, e.cores)
	}
}

// run executes the event loop: drain all events at a timestamp, then hold
// one scheduling pass (the paper's rescheduling events are exactly task
// arrivals and resource releases).
func (e *engine) run() {
	for len(e.events) > 0 {
		now := e.events.peekTime()
		e.now = now
		for len(e.events) > 0 && e.events.peekTime() == now {
			ev := e.popHeap()
			switch ev.kind {
			case evArrival:
				e.enqueue(ev.task)
			case evCompletion:
				e.completeTask(ev.task)
			}
		}
		if len(e.queue) > e.maxQueueLen {
			e.maxQueueLen = len(e.queue)
		}
		e.schedulePass()
		if e.opt.RecordTimeline {
			e.timeline = append(e.timeline, TimelinePoint{
				Time:     now,
				QueueLen: len(e.queue),
				CoresUse: e.cores - e.free,
			})
		}
	}
}

// schedulePass starts every task the policy and backfilling rules allow.
func (e *engine) schedulePass() {
	if len(e.queue) == 0 || e.free == 0 {
		return
	}
	if e.timeVarying {
		e.resortQueue()
	}
	if e.opt.Check {
		e.checkQueueOrder()
	}
	// Start from the head while it fits.
	for len(e.queue) > 0 && e.tasks[e.queue[0]].job.Cores <= e.free {
		e.startTask(e.queue[0], false)
		e.queue = e.queue[1:]
	}
	if len(e.queue) == 0 || e.free == 0 {
		return
	}
	switch e.opt.Backfill {
	case BackfillEASY:
		e.easyBackfill()
	case BackfillConservative:
		e.conservativeBackfill()
	}
}

// result assembles metrics after the event loop drains.
func (e *engine) result() *Result {
	res := &Result{
		Stats:       make([]JobStats, len(e.tasks)),
		MaxQueueLen: e.maxQueueLen,
		Backfilled:  e.backfilled,
		Timeline:    e.timeline,
	}
	if len(e.tasks) == 0 {
		return res
	}
	firstSubmit := math.Inf(1)
	lastFinish := math.Inf(-1)
	var sumB, sumW, busy float64
	for i := range e.tasks {
		t := &e.tasks[i]
		wait := t.start - t.job.Submit
		b := Bsld(wait, t.job.Runtime, e.tau)
		res.Stats[i] = JobStats{
			Job:        t.job,
			Start:      t.start,
			Finish:     t.finish,
			Wait:       wait,
			BSLD:       b,
			Backfilled: t.backfill,
		}
		sumB += b
		sumW += wait
		busy += t.execution * float64(t.job.Cores)
		if t.job.Submit < firstSubmit {
			firstSubmit = t.job.Submit
		}
		if t.finish > lastFinish {
			lastFinish = t.finish
		}
		if b > res.MaxBSLD {
			res.MaxBSLD = b
		}
		if wait > res.MaxWait {
			res.MaxWait = wait
		}
	}
	n := float64(len(e.tasks))
	res.AVEbsld = sumB / n
	res.MeanWait = sumW / n
	res.Makespan = lastFinish - firstSubmit
	if res.Makespan > 0 {
		res.Utilization = busy / (float64(e.cores) * res.Makespan)
	}
	bslds := make([]float64, len(res.Stats))
	waits := make([]float64, len(res.Stats))
	for i, s := range res.Stats {
		bslds[i], waits[i] = s.BSLD, s.Wait
	}
	res.MedianBSLD = stats.Median(bslds)
	res.P95BSLD = stats.Quantile(bslds, 0.95)
	res.P95Wait = stats.Quantile(waits, 0.95)
	return res
}
