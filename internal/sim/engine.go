package sim

import (
	"math"

	"github.com/hpcsched/gensched/internal/schedcore"
	"github.com/hpcsched/gensched/internal/stats"
	"github.com/hpcsched/gensched/internal/workload"
)

// The scheduling core — the typed event heap, the incrementally sorted
// running set, and the EASY/conservative backfilling passes — lives in
// internal/schedcore, shared with the incremental online scheduler
// (internal/online). This file is the batch driver: it registers every
// job up front, drains the core's event loop, and assembles the Result.

// newCore builds a schedcore engine configured for one batch run and
// preloads every job's arrival event.
func newCore(p Platform, jobs []workload.Job, opt Options) *schedcore.Engine {
	e := schedcore.NewEngine(p.Cores, schedcore.Config{
		Policy:         opt.Policy,
		UseEstimates:   opt.UseEstimates,
		Backfill:       opt.Backfill,
		BackfillOrder:  opt.BackfillOrder,
		KillAtEstimate: opt.KillAtEstimate,
		RecordTimeline: opt.RecordTimeline,
		Check:          opt.Check,
	})
	for i := range jobs {
		e.PushArrival(e.AddTask(jobs[i]))
	}
	return e
}

// Outcome is the per-task scheduling verdict AssembleResult consumes:
// where the task ran and for how long. Execution is the time the task
// actually occupied its cores (the actual runtime, or the estimate under
// KillAtEstimate); it is carried explicitly rather than recomputed as
// Finish-Start so aggregate metrics are bit-identical no matter which
// engine produced the placement.
type Outcome struct {
	Start      float64
	Finish     float64
	Execution  float64
	Backfilled bool
}

// AssembleResult computes per-job statistics and aggregate metrics from
// placements in input order, with exactly the floating-point expressions
// and accumulation order the batch engine has always used — the batch
// result and the online replay result are assembled by this one routine,
// so a bit-identical schedule yields a bit-identical Result. The caller
// fills MaxQueueLen, Backfilled and Timeline afterward.
func AssembleResult(jobs []workload.Job, outs []Outcome, cores int, tau float64) *Result {
	if tau <= 0 {
		tau = DefaultTau
	}
	res := &Result{Stats: make([]JobStats, len(jobs))}
	if len(jobs) == 0 {
		return res
	}
	firstSubmit := math.Inf(1)
	lastFinish := math.Inf(-1)
	var sumB, sumW, busy float64
	for i := range jobs {
		j := &jobs[i]
		o := &outs[i]
		wait := o.Start - j.Submit
		b := Bsld(wait, j.Runtime, tau)
		res.Stats[i] = JobStats{
			Job:        *j,
			Start:      o.Start,
			Finish:     o.Finish,
			Wait:       wait,
			BSLD:       b,
			Backfilled: o.Backfilled,
		}
		sumB += b
		sumW += wait
		busy += o.Execution * float64(j.Cores)
		if j.Submit < firstSubmit {
			firstSubmit = j.Submit
		}
		if o.Finish > lastFinish {
			lastFinish = o.Finish
		}
		if b > res.MaxBSLD {
			res.MaxBSLD = b
		}
		if wait > res.MaxWait {
			res.MaxWait = wait
		}
	}
	n := float64(len(jobs))
	res.AVEbsld = sumB / n
	res.MeanWait = sumW / n
	res.Makespan = lastFinish - firstSubmit
	if res.Makespan > 0 {
		res.Utilization = busy / (float64(cores) * res.Makespan)
	}
	bslds := make([]float64, len(res.Stats))
	waits := make([]float64, len(res.Stats))
	for i, s := range res.Stats {
		bslds[i], waits[i] = s.BSLD, s.Wait
	}
	res.MedianBSLD = stats.Median(bslds)
	res.P95BSLD = stats.Quantile(bslds, 0.95)
	res.P95Wait = stats.Quantile(waits, 0.95)
	return res
}

// assemble reads the drained core back into a Result.
func assemble(e *schedcore.Engine, jobs []workload.Job, p Platform, opt Options) *Result {
	outs := make([]Outcome, len(jobs))
	for i := range jobs {
		t := e.Task(i)
		outs[i] = Outcome{Start: t.Start, Finish: t.Finish, Execution: t.Execution, Backfilled: t.Backfill}
	}
	res := AssembleResult(jobs, outs, p.Cores, opt.Tau)
	res.MaxQueueLen = e.MaxQueueLen()
	res.Backfilled = e.BackfilledCount()
	res.Timeline = e.Timeline()
	return res
}
