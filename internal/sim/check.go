package sim

import (
	"fmt"

	"github.com/hpcsched/gensched/internal/schedcore"
	"github.com/hpcsched/gensched/internal/simref"
)

// The per-decision invariant checks (oversubscription, start-before-
// submit, queue order, EASY no-delay, conservative profile non-negativity)
// live in internal/schedcore with the engine they guard; this file keeps
// the batch driver's post-run audit (invariant 6): every task ran exactly
// once, for exactly its execution time, and the global start/finish
// envelope never exceeds the platform size.

// verify returns the first invariant violation the run recorded, then
// audits the assembled schedule against simref.CheckSchedule.
func verify(e *schedcore.Engine, res *Result) error {
	if err := e.CheckErr(); err != nil {
		return err
	}
	for i := range res.Stats {
		if !e.Task(i).Done {
			return fmt.Errorf("sim: invariant violated: job %d never completed", res.Stats[i].Job.ID)
		}
	}
	pls := make([]simref.Placement, len(res.Stats))
	for i, s := range res.Stats {
		pls[i] = simref.Placement{Job: s.Job, Start: s.Start, Finish: s.Finish, Backfilled: s.Backfilled}
	}
	if err := simref.CheckSchedule(e.Cores(), pls); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	return nil
}
