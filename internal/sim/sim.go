// Package sim is gensched's discrete-event simulator for on-line scheduling
// of rigid parallel tasks on a homogeneous cluster — the role SimGrid plays
// in the paper. It implements exactly the abstraction §3.1–§3.2 and §4.2
// describe: tasks arrive into a centralized queue; the scheduler reorders
// the queue with a policy at every rescheduling event (a task arrival or a
// resource release); the queue head starts when enough cores are free and
// blocks otherwise; optionally, aggressive (EASY) backfilling lets tasks
// further back start if they do not delay the head, using user-perceived
// processing times for all decisions while actual runtimes drive execution.
package sim

import (
	"errors"
	"fmt"
	"math"

	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/schedcore"
	"github.com/hpcsched/gensched/internal/workload"
)

// DefaultTau is the paper's bounded-slowdown constant τ (Eq. 1): 10 seconds.
const DefaultTau = 10.0

// timeEps is the shared schedule-time comparison epsilon.
const timeEps = schedcore.TimeEps

// BackfillMode selects the backfilling algorithm. It is the schedcore
// mode, re-exported so sim callers never import the core package:
//
//   - BackfillNone: strict policy order; the queue head blocks (§4.2).
//   - BackfillEASY: aggressive backfilling — only the queue head holds a
//     reservation; any later task may jump ahead if it does not delay the
//     head (Mu'alem & Feitelson). FCFS+EASY is the EASY algorithm.
//   - BackfillConservative: every queued task holds a reservation; a task
//     may jump ahead only if it delays no task before it. Included as an
//     ablation; the paper evaluates aggressive backfilling.
type BackfillMode = schedcore.BackfillMode

const (
	BackfillNone         = schedcore.BackfillNone
	BackfillEASY         = schedcore.BackfillEASY
	BackfillConservative = schedcore.BackfillConservative
)

// Options configures one simulation run.
type Options struct {
	// Policy orders the waiting queue (required).
	Policy sched.Policy
	// UseEstimates makes every scheduling decision (queue ordering and
	// backfilling reservations) see the user estimate e instead of the
	// actual runtime r. Execution always takes the actual runtime.
	UseEstimates bool
	// Backfill selects the backfilling algorithm (default none).
	Backfill BackfillMode
	// BackfillOrder optionally reorders EASY backfill *candidates* by a
	// secondary policy instead of queue priority order — e.g. SPT gives
	// the EASY-SJBF ("shortest job backfilled first") variant from the
	// backfilling literature. Only the choice among safe candidates
	// changes; the head's no-delay guarantee is untouched. Ignored unless
	// Backfill is BackfillEASY.
	BackfillOrder sched.Policy
	// Tau is the bounded-slowdown constant; 0 means DefaultTau.
	Tau float64
	// KillAtEstimate truncates execution at the user estimate, the way
	// production resource managers enforce wallclock requests. Off in all
	// paper experiments (their simulator runs tasks to completion).
	KillAtEstimate bool
	// RecordTimeline collects a (time, queue length, cores in use) point
	// after every event batch, for schedule visualization and debugging.
	RecordTimeline bool
	// Check enables runtime invariant checking: cores never
	// oversubscribed, no start before submission, deterministic queue
	// order, the EASY head never delayed past its reservation,
	// conservative reservations never oversubscribing the future machine,
	// plus a post-run schedule audit (simref.CheckSchedule). Run returns
	// the first violation as an error. The checks cost a small constant
	// factor; they exist so every engine refactor can be exercised
	// against the reference oracle and the fuzzer. See check.go.
	Check bool
}

// TimelinePoint is one sample of the cluster state.
type TimelinePoint = schedcore.TimelinePoint

// JobStats records the outcome of one task.
type JobStats struct {
	Job        workload.Job
	Start      float64
	Finish     float64
	Wait       float64 // Start - Submit
	BSLD       float64 // bounded slowdown, Eq. 1
	Backfilled bool    // started ahead of a blocked higher-priority task
}

// Result is the outcome of a simulation run.
type Result struct {
	Stats []JobStats // one per input job, in input order

	AVEbsld     float64 // average bounded slowdown over all tasks (Eq. 2)
	MedianBSLD  float64
	P95BSLD     float64
	MaxBSLD     float64
	MeanWait    float64
	P95Wait     float64
	MaxWait     float64
	Makespan    float64 // last finish - first submit
	Utilization float64 // busy core-seconds / (cores * makespan)
	MaxQueueLen int
	Backfilled  int // number of tasks that started via backfilling

	// Timeline holds per-event cluster-state samples when
	// Options.RecordTimeline is set; nil otherwise.
	Timeline []TimelinePoint
}

// Errors returned by Run.
var (
	ErrNoPolicy = errors.New("sim: options require a policy")
	ErrNoCores  = errors.New("sim: platform needs at least one core")
)

// Platform is the homogeneous cluster: nmax identical cores, any
// interconnection topology (topology never enters the model, §3.1).
type Platform struct {
	Cores int
}

// Run simulates the on-line scheduling of jobs on the platform and returns
// per-job statistics and aggregate metrics. Jobs may be in any order; they
// are released at their submit times. Run never mutates jobs.
func Run(p Platform, jobs []workload.Job, opt Options) (*Result, error) {
	if opt.Policy == nil {
		return nil, ErrNoPolicy
	}
	if p.Cores <= 0 {
		return nil, ErrNoCores
	}
	for i := range jobs {
		if err := jobs[i].Validate(p.Cores); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	e := newCore(p, jobs, opt)
	e.RunBatch()
	res := assemble(e, jobs, p, opt)
	if opt.Check {
		if err := verify(e, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// AveBsld computes the average bounded slowdown over the stats for which
// keep returns true (Eq. 2 restricted to a task subset, as the trial engine
// needs: trials measure only the tasks of Q). A nil keep averages over all.
func AveBsld(stats []JobStats, keep func(JobStats) bool) float64 {
	var sum float64
	var n int
	for _, s := range stats {
		if keep == nil || keep(s) {
			sum += s.BSLD
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Accounting exports the schedule as resource-manager accounting records,
// ready for workload.WriteAccountingSWF.
func (r *Result) Accounting() []workload.AccountingRecord {
	out := make([]workload.AccountingRecord, len(r.Stats))
	for i, s := range r.Stats {
		out[i] = workload.AccountingRecord{Job: s.Job, Wait: s.Wait}
	}
	return out
}

// Bsld computes the bounded slowdown of a single task (Eq. 1).
func Bsld(wait, runtime, tau float64) float64 {
	if tau <= 0 {
		tau = DefaultTau
	}
	v := (wait + runtime) / math.Max(runtime, tau)
	if v < 1 {
		return 1
	}
	return v
}
