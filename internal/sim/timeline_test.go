package sim

import (
	"testing"

	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/workload"
)

func TestTimelineRecording(t *testing.T) {
	jobs := []workload.Job{
		job(1, 0, 100, 4),
		job(2, 10, 50, 2),
		job(3, 20, 50, 2),
	}
	res := mustRun(t, Platform{Cores: 4}, jobs,
		Options{Policy: sched.FCFS(), RecordTimeline: true})
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline recorded")
	}
	// Times are nondecreasing; cores in use stay within the platform.
	prev := res.Timeline[0].Time
	for _, p := range res.Timeline {
		if p.Time < prev {
			t.Fatalf("timeline not ordered: %v after %v", p.Time, prev)
		}
		prev = p.Time
		if p.CoresUse < 0 || p.CoresUse > 4 {
			t.Fatalf("cores in use %d outside [0,4]", p.CoresUse)
		}
		if p.QueueLen < 0 {
			t.Fatalf("negative queue length")
		}
	}
	// The first event (arrival of job 1) must show the machine filled.
	if res.Timeline[0].CoresUse != 4 {
		t.Errorf("first point cores = %d, want 4", res.Timeline[0].CoresUse)
	}
	// Final point: everything drained.
	last := res.Timeline[len(res.Timeline)-1]
	if last.CoresUse != 0 || last.QueueLen != 0 {
		t.Errorf("final point = %+v, want drained cluster", last)
	}
}

func TestTimelineOffByDefault(t *testing.T) {
	res := mustRun(t, Platform{Cores: 4}, []workload.Job{job(1, 0, 10, 1)},
		Options{Policy: sched.FCFS()})
	if res.Timeline != nil {
		t.Error("timeline recorded without opt-in")
	}
}

func TestTimelineQueuePeak(t *testing.T) {
	// Three jobs queue behind a blocker; the timeline must capture the
	// peak matching MaxQueueLen.
	jobs := []workload.Job{
		job(1, 0, 100, 4),
		job(2, 1, 10, 4),
		job(3, 2, 10, 4),
		job(4, 3, 10, 4),
	}
	res := mustRun(t, Platform{Cores: 4}, jobs,
		Options{Policy: sched.FCFS(), RecordTimeline: true})
	peak := 0
	for _, p := range res.Timeline {
		if p.QueueLen > peak {
			peak = p.QueueLen
		}
	}
	if peak != res.MaxQueueLen {
		t.Errorf("timeline peak %d != MaxQueueLen %d", peak, res.MaxQueueLen)
	}
}

func TestAccountingExport(t *testing.T) {
	jobs := []workload.Job{
		job(1, 0, 100, 4),
		job(2, 10, 50, 4),
	}
	res := mustRun(t, Platform{Cores: 4}, jobs, Options{Policy: sched.FCFS()})
	recs := res.Accounting()
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[1].Wait != 90 {
		t.Errorf("job 2 wait = %v, want 90", recs[1].Wait)
	}
	if recs[0].Job != jobs[0] {
		t.Errorf("record 0 job = %+v", recs[0].Job)
	}
}
