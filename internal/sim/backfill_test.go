package sim

import (
	"math"
	"testing"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/workload"
)

// --- profile (conservative backfilling availability structure) -----------

func newTestProfile(now float64, free int) *profile {
	return &profile{times: []float64{now}, avail: []int{free}}
}

func TestProfileEnsureBreakSplits(t *testing.T) {
	p := newTestProfile(0, 4)
	p.times = append(p.times, 100)
	p.avail = append(p.avail, 8)
	i := p.ensureBreak(50)
	if i != 1 {
		t.Fatalf("break index = %d, want 1", i)
	}
	if len(p.times) != 3 || p.times[1] != 50 || p.avail[1] != 4 {
		t.Fatalf("profile after split: times=%v avail=%v", p.times, p.avail)
	}
	// Existing breakpoint is reused, not duplicated.
	if j := p.ensureBreak(50); j != 1 || len(p.times) != 3 {
		t.Fatalf("re-break: index=%d times=%v", j, p.times)
	}
	// Before-origin clamps to 0.
	if j := p.ensureBreak(-5); j != 0 {
		t.Fatalf("pre-origin break = %d", j)
	}
}

func TestProfileReserveAndRelease(t *testing.T) {
	p := newTestProfile(0, 4)
	p.reserve(10, 20, 3) // [10, 30): 1 core left
	// A 15s 2-core job starting now would overlap the reservation.
	if got := p.earliestStart(2, 15); got != 30 {
		t.Errorf("earliestStart(2,15) = %v, want 30", got)
	}
	// A 5s 2-core job finishes before the reservation begins.
	if got := p.earliestStart(2, 5); got != 0 {
		t.Errorf("earliestStart(2,5) = %v, want 0", got)
	}
	if got := p.earliestStart(1, 5); got != 0 {
		t.Errorf("earliestStart(1,5) = %v, want 0 (fits beside reservation)", got)
	}
	// After the reservation ends, full capacity returns.
	if got := p.earliestStart(4, 100); got != 30 {
		t.Errorf("earliestStart(4,100) = %v, want 30", got)
	}
}

func TestProfileReserveAtOrigin(t *testing.T) {
	p := newTestProfile(5, 4)
	p.reserve(5, 10, 4)
	if got := p.earliestStart(1, 1); got != 15 {
		t.Errorf("earliestStart = %v, want 15", got)
	}
}

func TestProfileGapTooShort(t *testing.T) {
	// Two reservations with a 10s hole; a 20s job cannot use the hole.
	p := newTestProfile(0, 4)
	p.reserve(0, 10, 4)  // busy [0,10)
	p.reserve(20, 30, 4) // busy [20,50)
	if got := p.earliestStart(1, 20); got != 50 {
		t.Errorf("earliestStart(1,20) = %v, want 50 (hole too short)", got)
	}
	if got := p.earliestStart(1, 10); got != 10 {
		t.Errorf("earliestStart(1,10) = %v, want 10 (hole fits exactly)", got)
	}
}

func TestBuildProfileCoalescesSimultaneousReleases(t *testing.T) {
	e := &engine{cores: 8, free: 2, now: 100}
	e.tasks = []task{
		{job: workload.Job{ID: 1, Cores: 3}, perceived: 50, start: 100},
		{job: workload.Job{ID: 2, Cores: 3}, perceived: 50, start: 100},
	}
	e.running = []int{0, 1}
	p := e.buildProfile()
	if len(p.times) != 2 {
		t.Fatalf("times = %v, want coalesced 2 points", p.times)
	}
	if p.avail[0] != 2 || p.avail[1] != 8 {
		t.Fatalf("avail = %v", p.avail)
	}
}

// --- EASY reservation arithmetic -----------------------------------------

func TestHeadReservationShadowAndExtra(t *testing.T) {
	// 8 cores; running: A(3 cores until 100), B(2 cores until 200).
	// free = 3. Head wants 5: shadow = 100 (3+3=6 >= 5), extra = 1.
	e := &engine{cores: 8, free: 3, now: 50}
	e.tasks = []task{
		{job: workload.Job{ID: 1, Cores: 3}, perceived: 50, start: 50},  // ends 100
		{job: workload.Job{ID: 2, Cores: 2}, perceived: 150, start: 50}, // ends 200
		{job: workload.Job{ID: 3, Cores: 5}},                            // head
	}
	e.running = []int{0, 1}
	e.queue = []int{2}
	shadow, extra := e.headReservation()
	if shadow != 100 || extra != 1 {
		t.Errorf("reservation = (%v, %d), want (100, 1)", shadow, extra)
	}
}

func TestHeadReservationOverranEstimate(t *testing.T) {
	// A running task whose perceived finish is in the past counts as
	// releasing "now": the head's shadow is the current time.
	e := &engine{cores: 4, free: 0, now: 500}
	e.tasks = []task{
		{job: workload.Job{ID: 1, Cores: 4}, perceived: 100, start: 100}, // believed done at 200 < now
		{job: workload.Job{ID: 2, Cores: 4}},
	}
	e.running = []int{0}
	e.queue = []int{1}
	shadow, extra := e.headReservation()
	if shadow != 500 || extra != 0 {
		t.Errorf("reservation = (%v, %d), want (500, 0)", shadow, extra)
	}
}

// --- end-to-end backfilling edge cases ------------------------------------

func TestEASYWithUnderestimatedRuntimes(t *testing.T) {
	// Job A underestimates its runtime (e < r). EASY believes cores free
	// earlier than they are; the schedule must stay feasible regardless.
	jobs := []workload.Job{
		{ID: 1, Submit: 0, Runtime: 200, Estimate: 50, Cores: 3},
		{ID: 2, Submit: 10, Runtime: 100, Estimate: 100, Cores: 4},
		{ID: 3, Submit: 20, Runtime: 30, Estimate: 30, Cores: 1},
	}
	res := mustRun(t, Platform{Cores: 4}, jobs,
		Options{Policy: sched.FCFS(), Backfill: BackfillEASY, UseEstimates: true})
	checkNoOversubscription(t, 4, res.Stats)
	// Job 3 fits beside job 1 (1 core free) and is believed to finish by
	// the (stale) shadow; it must backfill at its arrival.
	if res.Stats[2].Start != 20 {
		t.Errorf("job 3 start = %v, want 20", res.Stats[2].Start)
	}
	// Job 2 can only start when job 1 actually ends.
	if res.Stats[1].Start != 200 {
		t.Errorf("job 2 start = %v, want 200", res.Stats[1].Start)
	}
}

func TestConservativeManyReservations(t *testing.T) {
	// A chain of full-machine jobs all get reservations; a stream of small
	// jobs may only run in the gaps that delay nobody.
	jobs := []workload.Job{
		{ID: 1, Submit: 0, Runtime: 100, Estimate: 100, Cores: 4},
		{ID: 2, Submit: 1, Runtime: 100, Estimate: 100, Cores: 4},
		{ID: 3, Submit: 2, Runtime: 100, Estimate: 100, Cores: 4},
		{ID: 4, Submit: 3, Runtime: 5, Estimate: 5, Cores: 1},
	}
	res := mustRun(t, Platform{Cores: 4}, jobs,
		Options{Policy: sched.FCFS(), Backfill: BackfillConservative})
	// No gaps exist (full-machine jobs back to back): job 4 runs last.
	if res.Stats[3].Start != 300 {
		t.Errorf("small job start = %v, want 300", res.Stats[3].Start)
	}
	for i, wantStart := range []float64{0, 100, 200} {
		if res.Stats[i].Start != wantStart {
			t.Errorf("job %d start = %v, want %v", i+1, res.Stats[i].Start, wantStart)
		}
	}
}

func TestConservativeNeverDelaysEarlierReservations(t *testing.T) {
	// Property-style check on random workloads: under conservative
	// backfilling with exact estimates, every job must start no later
	// than it would under plain FCFS (conservative backfilling dominates
	// no-backfilling for each job when estimates are exact and priorities
	// are FCFS).
	for seed := uint64(0); seed < 4; seed++ {
		jobs := randomJobs(dist.New(seed), 120, 16)
		plain := mustRun(t, Platform{Cores: 16}, jobs, Options{Policy: sched.FCFS()})
		cons := mustRun(t, Platform{Cores: 16}, jobs,
			Options{Policy: sched.FCFS(), Backfill: BackfillConservative})
		for i := range jobs {
			if cons.Stats[i].Start > plain.Stats[i].Start+timeEps {
				t.Fatalf("seed %d: job %d delayed by conservative backfilling: %v > %v",
					seed, i, cons.Stats[i].Start, plain.Stats[i].Start)
			}
		}
	}
}

func TestEASYSJBFOrder(t *testing.T) {
	// Two safe backfill candidates are waiting when cores first free up at
	// t=50; only one fits. Classic EASY takes them in queue (FCFS) order
	// and picks C; SJBF (BackfillOrder = SPT) picks the shorter D.
	jobs := []workload.Job{
		job(1, 0, 50, 2),  // A1: machine half busy until 50
		job(2, 0, 120, 2), // A2: other half until 120
		job(3, 5, 100, 4), // B: blocked head, shadow = 120, extra = 0
		job(4, 10, 70, 2), // C: safe (50+70 = 120 <= shadow), queued first
		job(5, 11, 30, 2), // D: safe (50+30 = 80), shorter
	}
	classic := mustRun(t, Platform{Cores: 4}, jobs,
		Options{Policy: sched.FCFS(), Backfill: BackfillEASY})
	if classic.Stats[3].Start != 50 || !classic.Stats[3].Backfilled {
		t.Errorf("classic EASY: C start = %v, want 50 (queue order)", classic.Stats[3].Start)
	}
	if classic.Stats[4].Start <= 50 {
		t.Errorf("classic EASY: D start = %v, want after C", classic.Stats[4].Start)
	}
	sjbf := mustRun(t, Platform{Cores: 4}, jobs,
		Options{Policy: sched.FCFS(), Backfill: BackfillEASY, BackfillOrder: sched.SPT()})
	if sjbf.Stats[4].Start != 50 || !sjbf.Stats[4].Backfilled {
		t.Errorf("SJBF: D start = %v, want 50 (shortest safe candidate)", sjbf.Stats[4].Start)
	}
	if sjbf.Stats[3].Start <= 50 {
		t.Errorf("SJBF: C start = %v, want after D", sjbf.Stats[3].Start)
	}
	// The head must not be delayed under either variant.
	if classic.Stats[2].Start != 120 || sjbf.Stats[2].Start != 120 {
		t.Errorf("head delayed: classic %v, sjbf %v", classic.Stats[2].Start, sjbf.Stats[2].Start)
	}
	checkNoOversubscription(t, 4, classic.Stats)
	checkNoOversubscription(t, 4, sjbf.Stats)
}

func TestSJBFInvariantsOnRandomWorkloads(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		jobs := randomJobs(dist.New(400+seed), 150, 16)
		res := mustRun(t, Platform{Cores: 16}, jobs, Options{
			Policy: sched.FCFS(), Backfill: BackfillEASY,
			BackfillOrder: sched.SPT(), UseEstimates: true,
		})
		checkNoOversubscription(t, 16, res.Stats)
		for i, s := range res.Stats {
			if s.Start < s.Job.Submit {
				t.Fatalf("seed %d: job %d started before submit", seed, i)
			}
		}
	}
}

func TestBackfillModeString(t *testing.T) {
	if BackfillNone.String() != "none" || BackfillEASY.String() != "easy" ||
		BackfillConservative.String() != "conservative" {
		t.Error("mode names wrong")
	}
	if BackfillMode(9).String() == "" {
		t.Error("unknown mode must still render")
	}
}

func TestEASYZeroFreeNoPass(t *testing.T) {
	// When the machine is completely full, arrivals must not trigger
	// backfilling work (fast path); behavior must still be correct.
	jobs := []workload.Job{
		{ID: 1, Submit: 0, Runtime: 100, Estimate: 100, Cores: 4},
		{ID: 2, Submit: 1, Runtime: 10, Estimate: 10, Cores: 1},
	}
	res := mustRun(t, Platform{Cores: 4}, jobs, Options{Policy: sched.FCFS(), Backfill: BackfillEASY})
	if res.Stats[1].Start != 100 {
		t.Errorf("job 2 start = %v, want 100", res.Stats[1].Start)
	}
}

func TestPerceivedFinishClamp(t *testing.T) {
	e := &engine{now: 1000}
	e.tasks = []task{{job: workload.Job{ID: 1}, perceived: 10, start: 0}}
	if got := e.perceivedFinish(0); got != 1000 {
		t.Errorf("perceivedFinish = %v, want clamped to now", got)
	}
	e.now = 5
	if got := e.perceivedFinish(0); got != 10 {
		t.Errorf("perceivedFinish = %v, want 10", got)
	}
}

func TestBsldNaNSafety(t *testing.T) {
	if v := Bsld(math.Inf(1), 10, 10); !math.IsInf(v, 1) {
		t.Errorf("Bsld(inf) = %v", v)
	}
}
