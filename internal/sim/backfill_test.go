package sim

import (
	"math"
	"testing"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/workload"
)

// --- end-to-end backfilling edge cases ------------------------------------

func TestEASYWithUnderestimatedRuntimes(t *testing.T) {
	// Job A underestimates its runtime (e < r). EASY believes cores free
	// earlier than they are; the schedule must stay feasible regardless.
	jobs := []workload.Job{
		{ID: 1, Submit: 0, Runtime: 200, Estimate: 50, Cores: 3},
		{ID: 2, Submit: 10, Runtime: 100, Estimate: 100, Cores: 4},
		{ID: 3, Submit: 20, Runtime: 30, Estimate: 30, Cores: 1},
	}
	res := mustRun(t, Platform{Cores: 4}, jobs,
		Options{Policy: sched.FCFS(), Backfill: BackfillEASY, UseEstimates: true})
	checkNoOversubscription(t, 4, res.Stats)
	// Job 3 fits beside job 1 (1 core free) and is believed to finish by
	// the (stale) shadow; it must backfill at its arrival.
	if res.Stats[2].Start != 20 {
		t.Errorf("job 3 start = %v, want 20", res.Stats[2].Start)
	}
	// Job 2 can only start when job 1 actually ends.
	if res.Stats[1].Start != 200 {
		t.Errorf("job 2 start = %v, want 200", res.Stats[1].Start)
	}
}

func TestConservativeManyReservations(t *testing.T) {
	// A chain of full-machine jobs all get reservations; a stream of small
	// jobs may only run in the gaps that delay nobody.
	jobs := []workload.Job{
		{ID: 1, Submit: 0, Runtime: 100, Estimate: 100, Cores: 4},
		{ID: 2, Submit: 1, Runtime: 100, Estimate: 100, Cores: 4},
		{ID: 3, Submit: 2, Runtime: 100, Estimate: 100, Cores: 4},
		{ID: 4, Submit: 3, Runtime: 5, Estimate: 5, Cores: 1},
	}
	res := mustRun(t, Platform{Cores: 4}, jobs,
		Options{Policy: sched.FCFS(), Backfill: BackfillConservative})
	// No gaps exist (full-machine jobs back to back): job 4 runs last.
	if res.Stats[3].Start != 300 {
		t.Errorf("small job start = %v, want 300", res.Stats[3].Start)
	}
	for i, wantStart := range []float64{0, 100, 200} {
		if res.Stats[i].Start != wantStart {
			t.Errorf("job %d start = %v, want %v", i+1, res.Stats[i].Start, wantStart)
		}
	}
}

func TestConservativeNeverDelaysEarlierReservations(t *testing.T) {
	// Property-style check on random workloads: under conservative
	// backfilling with exact estimates, every job must start no later
	// than it would under plain FCFS (conservative backfilling dominates
	// no-backfilling for each job when estimates are exact and priorities
	// are FCFS).
	for seed := uint64(0); seed < 4; seed++ {
		jobs := randomJobs(dist.New(seed), 120, 16)
		plain := mustRun(t, Platform{Cores: 16}, jobs, Options{Policy: sched.FCFS()})
		cons := mustRun(t, Platform{Cores: 16}, jobs,
			Options{Policy: sched.FCFS(), Backfill: BackfillConservative})
		for i := range jobs {
			if cons.Stats[i].Start > plain.Stats[i].Start+timeEps {
				t.Fatalf("seed %d: job %d delayed by conservative backfilling: %v > %v",
					seed, i, cons.Stats[i].Start, plain.Stats[i].Start)
			}
		}
	}
}

func TestEASYSJBFOrder(t *testing.T) {
	// Two safe backfill candidates are waiting when cores first free up at
	// t=50; only one fits. Classic EASY takes them in queue (FCFS) order
	// and picks C; SJBF (BackfillOrder = SPT) picks the shorter D.
	jobs := []workload.Job{
		job(1, 0, 50, 2),  // A1: machine half busy until 50
		job(2, 0, 120, 2), // A2: other half until 120
		job(3, 5, 100, 4), // B: blocked head, shadow = 120, extra = 0
		job(4, 10, 70, 2), // C: safe (50+70 = 120 <= shadow), queued first
		job(5, 11, 30, 2), // D: safe (50+30 = 80), shorter
	}
	classic := mustRun(t, Platform{Cores: 4}, jobs,
		Options{Policy: sched.FCFS(), Backfill: BackfillEASY})
	if classic.Stats[3].Start != 50 || !classic.Stats[3].Backfilled {
		t.Errorf("classic EASY: C start = %v, want 50 (queue order)", classic.Stats[3].Start)
	}
	if classic.Stats[4].Start <= 50 {
		t.Errorf("classic EASY: D start = %v, want after C", classic.Stats[4].Start)
	}
	sjbf := mustRun(t, Platform{Cores: 4}, jobs,
		Options{Policy: sched.FCFS(), Backfill: BackfillEASY, BackfillOrder: sched.SPT()})
	if sjbf.Stats[4].Start != 50 || !sjbf.Stats[4].Backfilled {
		t.Errorf("SJBF: D start = %v, want 50 (shortest safe candidate)", sjbf.Stats[4].Start)
	}
	if sjbf.Stats[3].Start <= 50 {
		t.Errorf("SJBF: C start = %v, want after D", sjbf.Stats[3].Start)
	}
	// The head must not be delayed under either variant.
	if classic.Stats[2].Start != 120 || sjbf.Stats[2].Start != 120 {
		t.Errorf("head delayed: classic %v, sjbf %v", classic.Stats[2].Start, sjbf.Stats[2].Start)
	}
	checkNoOversubscription(t, 4, classic.Stats)
	checkNoOversubscription(t, 4, sjbf.Stats)
}

func TestSJBFInvariantsOnRandomWorkloads(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		jobs := randomJobs(dist.New(400+seed), 150, 16)
		res := mustRun(t, Platform{Cores: 16}, jobs, Options{
			Policy: sched.FCFS(), Backfill: BackfillEASY,
			BackfillOrder: sched.SPT(), UseEstimates: true,
		})
		checkNoOversubscription(t, 16, res.Stats)
		for i, s := range res.Stats {
			if s.Start < s.Job.Submit {
				t.Fatalf("seed %d: job %d started before submit", seed, i)
			}
		}
	}
}

func TestBackfillModeString(t *testing.T) {
	if BackfillNone.String() != "none" || BackfillEASY.String() != "easy" ||
		BackfillConservative.String() != "conservative" {
		t.Error("mode names wrong")
	}
	if BackfillMode(9).String() == "" {
		t.Error("unknown mode must still render")
	}
}

func TestEASYZeroFreeNoPass(t *testing.T) {
	// When the machine is completely full, arrivals must not trigger
	// backfilling work (fast path); behavior must still be correct.
	jobs := []workload.Job{
		{ID: 1, Submit: 0, Runtime: 100, Estimate: 100, Cores: 4},
		{ID: 2, Submit: 1, Runtime: 10, Estimate: 10, Cores: 1},
	}
	res := mustRun(t, Platform{Cores: 4}, jobs, Options{Policy: sched.FCFS(), Backfill: BackfillEASY})
	if res.Stats[1].Start != 100 {
		t.Errorf("job 2 start = %v, want 100", res.Stats[1].Start)
	}
}

func TestBsldNaNSafety(t *testing.T) {
	if v := Bsld(math.Inf(1), 10, 10); !math.IsInf(v, 1) {
		t.Errorf("Bsld(inf) = %v", v)
	}
}
