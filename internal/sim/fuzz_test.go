package sim_test

import (
	"testing"

	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/simtest"
	"github.com/hpcsched/gensched/internal/workload"
)

// fuzzCores is the machine size every fuzz case schedules onto.
const fuzzCores = 16

// jobsFromBytes decodes a fuzz input into a bounded job list: five bytes
// per job (inter-arrival gap, runtime, estimate skew, cores, flags).
// Underestimates, zero gaps (simultaneous arrivals) and duplicate
// runtimes all arise naturally from the byte ranges.
func jobsFromBytes(data []byte) []workload.Job {
	const maxJobs = 48
	n := len(data) / 5
	if n > maxJobs {
		n = maxJobs
	}
	jobs := make([]workload.Job, 0, n)
	now := 0.0
	for i := 0; i < n; i++ {
		b := data[i*5 : i*5+5]
		now += float64(b[0]) // 0 gap = burst arrival
		runtime := 1 + float64(b[1])*4
		// Estimate from skew byte: below 128 scales down (underestimate),
		// above scales up; exactly 128 is exact.
		est := runtime * (float64(b[2]) + 1) / 129
		if est < 1 {
			est = 1
		}
		cores := 1 + int(b[3])%fuzzCores
		jobs = append(jobs, workload.Job{
			ID:       i + 1,
			Submit:   now,
			Runtime:  runtime,
			Estimate: est,
			Cores:    cores,
		})
	}
	return jobs
}

// FuzzEngine feeds arbitrary job sets through every backfill mode with
// invariant checking on and the simref oracle as ground truth: any
// schedule the engine produces must pass the checker and match the
// oracle bit-for-bit.
func FuzzEngine(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 10, 128, 3, 0, 0, 10, 128, 3, 0})                   // identical twins at t=0
	f.Add([]byte{5, 200, 10, 15, 0, 0, 3, 255, 0, 0, 1, 50, 128, 7, 0}) // under/overestimates
	f.Add([]byte{0, 255, 1, 15, 0, 0, 1, 255, 15, 0, 0, 1, 1, 0, 0})    // full-machine + tiny
	seed := make([]byte, 48*5)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		jobs := jobsFromBytes(data)
		if len(jobs) == 0 {
			return
		}
		for _, mode := range simtest.Modes {
			for _, est := range []bool{false, true} {
				err := simtest.Differential(fuzzCores, jobs, sim.Options{
					Policy:       sched.FCFS(),
					Backfill:     mode,
					UseEstimates: est,
				})
				if err != nil {
					t.Fatalf("%d jobs, %s, estimates=%v: %v", len(jobs), mode, est, err)
				}
			}
		}
		// One non-FCFS pass: score ties under SPT with quantized runtimes.
		if err := simtest.Differential(fuzzCores, jobs, sim.Options{
			Policy:        sched.SPT(),
			Backfill:      sim.BackfillEASY,
			BackfillOrder: sched.SPT(),
			UseEstimates:  true,
		}); err != nil {
			t.Fatalf("%d jobs, SPT+SJBF: %v", len(jobs), err)
		}
	})
}
