package sim_test

// Golden regression fixtures: a fixed-seed Lublin workload with Tsafrir
// estimates, scheduled under F1 in all three backfill modes, pinned to
// exact Result metrics. Every comparison is == on float64, locking
// bit-level determinism of the engine across refactors: a change that
// reorders any tie-break, alters any floating-point expression, or
// perturbs the event loop shows up here immediately.
//
// If a semantics change is ever *intended*, regenerate the table by
// printing the six fields (%v roundtrips float64 exactly) and justify the
// diff in the PR — do not loosen the comparisons.

import (
	"testing"

	"github.com/hpcsched/gensched/internal/lublin"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/tsafrir"
)

type goldenRow struct {
	AVEbsld     float64
	MeanWait    float64
	Makespan    float64
	Utilization float64
	Backfilled  int
	MaxQueueLen int
}

var goldenRows = map[sim.BackfillMode]goldenRow{
	sim.BackfillNone: {
		AVEbsld: 363.37993053356104, MeanWait: 11857.416666666666,
		Makespan: 244097, Utilization: 0.46958118852341485,
		Backfilled: 0, MaxQueueLen: 71,
	},
	sim.BackfillEASY: {
		AVEbsld: 68.12883155944762, MeanWait: 4844.17,
		Makespan: 244097, Utilization: 0.46958118852341485,
		Backfilled: 192, MaxQueueLen: 50,
	},
	sim.BackfillConservative: {
		AVEbsld: 60.779475606577385, MeanWait: 4727.843333333333,
		Makespan: 244097, Utilization: 0.46958118852341485,
		Backfilled: 192, MaxQueueLen: 50,
	},
}

// TestGoldenLublinFixture schedules the fixture workload — 300 Lublin
// jobs on a 64-core machine, generator seed 12345, Tsafrir estimate seed
// 67890 — and compares every metric exactly.
func TestGoldenLublinFixture(t *testing.T) {
	gen, err := lublin.NewGenerator(lublin.DefaultParams(64), 64, 12345)
	if err != nil {
		t.Fatal(err)
	}
	jobs := gen.Jobs(300)
	if err := tsafrir.Apply(tsafrir.Default(), jobs, 67890); err != nil {
		t.Fatal(err)
	}
	for mode, want := range goldenRows {
		res, err := sim.Run(sim.Platform{Cores: 64}, jobs, sim.Options{
			Policy:       sched.F1(),
			Backfill:     mode,
			UseEstimates: true,
			Check:        true,
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		got := goldenRow{
			AVEbsld:     res.AVEbsld,
			MeanWait:    res.MeanWait,
			Makespan:    res.Makespan,
			Utilization: res.Utilization,
			Backfilled:  res.Backfilled,
			MaxQueueLen: res.MaxQueueLen,
		}
		if got != want {
			t.Errorf("%v:\n got  %+v\n want %+v", mode, got, want)
		}
	}
}
