package sim

import (
	"math"
	"sort"
)

// timeEps absorbs floating-point noise when comparing schedule times.
const timeEps = 1e-9

// perceivedFinish is when the scheduler believes a running task will end:
// its start plus the perceived runtime, clamped to now (a task that outran
// its estimate is believed to end imminently, the standard EASY treatment).
func (e *engine) perceivedFinish(ti int) float64 {
	t := &e.tasks[ti]
	pf := t.start + t.perceived
	if pf < e.now {
		pf = e.now
	}
	return pf
}

// headReservation computes the EASY reservation for the queue head: the
// shadow time (earliest moment enough cores are believed free for it) and
// the number of extra cores (free at the shadow time beyond what the head
// needs). Backfill candidates must either finish by the shadow time or fit
// within the extra cores.
func (e *engine) headReservation() (shadow float64, extra int) {
	head := &e.tasks[e.queue[0]]
	type rel struct {
		at    float64
		cores int
	}
	rels := make([]rel, 0, len(e.running))
	for _, ri := range e.running {
		rels = append(rels, rel{at: e.perceivedFinish(ri), cores: e.tasks[ri].job.Cores})
	}
	sort.Slice(rels, func(i, j int) bool { return rels[i].at < rels[j].at })
	free := e.free
	for _, r := range rels {
		free += r.cores
		if free >= head.job.Cores {
			return r.at, free - head.job.Cores
		}
	}
	// Unreachable when job sizes are validated against the platform, but
	// degrade gracefully: no extra cores, head never starts.
	return math.Inf(1), 0
}

// easyBackfill implements aggressive (EASY) backfilling: scan the queue
// behind the blocked head and start any task that fits now and cannot
// delay the head's reservation. Candidates are visited in queue priority
// order, or in the order induced by opt.BackfillOrder when set (EASY-SJBF
// style variants). After each start the reservation is recomputed against
// the enlarged running set, which keeps the no-delay guarantee exact with
// respect to perceived runtimes.
func (e *engine) easyBackfill() {
	for e.free > 0 && len(e.queue) > 1 {
		shadow, extra := e.headReservation()
		order := e.backfillOrder()
		started := false
		for _, i := range order {
			ti := e.queue[i]
			t := &e.tasks[ti]
			if t.job.Cores > e.free {
				continue
			}
			finishesBeforeShadow := e.now+t.perceived <= shadow+timeEps
			fitsExtra := t.job.Cores <= extra
			if finishesBeforeShadow || fitsExtra {
				e.startTask(ti, true)
				e.queue = append(e.queue[:i], e.queue[i+1:]...)
				started = true
				break
			}
		}
		if !started {
			return
		}
	}
}

// backfillOrder returns the queue indices (excluding the head) in the
// order backfill candidates should be considered.
func (e *engine) backfillOrder() []int {
	n := len(e.queue) - 1
	order := make([]int, n)
	for i := range order {
		order[i] = i + 1
	}
	p := e.opt.BackfillOrder
	if p == nil {
		return order // queue priority order: classic EASY
	}
	keys := make([]float64, len(e.queue))
	for _, i := range order {
		keys[i] = p.Score(e.view(e.queue[i]))
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if keys[ia] != keys[ib] {
			return keys[ia] < keys[ib]
		}
		ta, tb := &e.tasks[e.queue[ia]], &e.tasks[e.queue[ib]]
		if ta.job.Submit != tb.job.Submit {
			return ta.job.Submit < tb.job.Submit
		}
		return ta.job.ID < tb.job.ID
	})
	return order
}

// profile tracks future core availability as a step function over time
// intervals [times[i], times[i+1]), with the final interval extending to
// infinity. Conservative backfilling reserves every queued task in it.
type profile struct {
	times []float64
	avail []int
}

// buildProfile seeds the availability profile from the running set.
func (e *engine) buildProfile() *profile {
	p := &profile{times: []float64{e.now}, avail: []int{e.free}}
	type rel struct {
		at    float64
		cores int
	}
	rels := make([]rel, 0, len(e.running))
	for _, ri := range e.running {
		rels = append(rels, rel{at: e.perceivedFinish(ri), cores: e.tasks[ri].job.Cores})
	}
	sort.Slice(rels, func(i, j int) bool { return rels[i].at < rels[j].at })
	for _, r := range rels {
		last := len(p.times) - 1
		if r.at <= p.times[last]+timeEps {
			// Coalesce releases at (numerically) the same instant.
			p.avail[last] += r.cores
			continue
		}
		p.times = append(p.times, r.at)
		p.avail = append(p.avail, p.avail[last]+r.cores)
	}
	return p
}

// ensureBreak splits the profile so that t is a breakpoint and returns its
// index. Times before the first breakpoint are clamped to it.
func (p *profile) ensureBreak(t float64) int {
	if t <= p.times[0] {
		return 0
	}
	i := sort.SearchFloat64s(p.times, t)
	if i < len(p.times) && p.times[i] == t {
		return i
	}
	// t falls inside interval i-1; split it.
	p.times = append(p.times, 0)
	p.avail = append(p.avail, 0)
	copy(p.times[i+1:], p.times[i:])
	copy(p.avail[i+1:], p.avail[i:])
	p.times[i] = t
	p.avail[i] = p.avail[i-1]
	return i
}

// earliestStart returns the earliest time >= the profile origin at which
// cores are available continuously for the given duration.
func (p *profile) earliestStart(cores int, duration float64) float64 {
	for i := 0; i < len(p.times); i++ {
		if p.avail[i] < cores {
			continue
		}
		t := p.times[i]
		end := t + duration
		ok := true
		for j := i; j < len(p.times) && p.times[j] < end-timeEps; j++ {
			if p.avail[j] < cores {
				ok = false
				break
			}
		}
		if ok {
			return t
		}
	}
	// The final interval always has the whole machine; validated jobs fit.
	return p.times[len(p.times)-1]
}

// ensureBreakExtend is ensureBreak that also handles times beyond the last
// breakpoint by appending a new final interval (inheriting the previous
// final availability, which is the fully free machine).
func (p *profile) ensureBreakExtend(t float64) int {
	last := len(p.times) - 1
	if t > p.times[last] {
		p.times = append(p.times, t)
		p.avail = append(p.avail, p.avail[last])
		return len(p.times) - 1
	}
	return p.ensureBreak(t)
}

// reserve subtracts cores over [t, t+duration) in the profile.
func (p *profile) reserve(t, duration float64, cores int) {
	start := p.ensureBreakExtend(t)
	end := p.ensureBreakExtend(t + duration)
	for i := start; i < end; i++ {
		p.avail[i] -= cores
	}
}

// conservativeBackfill gives every queued task a reservation in priority
// order; a task starts now only when its reservation is immediate, which
// guarantees no task before it in the queue is delayed.
func (e *engine) conservativeBackfill() {
	p := e.buildProfile()
	for i := 0; i < len(e.queue); {
		ti := e.queue[i]
		t := &e.tasks[ti]
		st := p.earliestStart(t.job.Cores, t.perceived)
		p.reserve(st, t.perceived, t.job.Cores)
		if st <= e.now+timeEps && t.job.Cores <= e.free {
			e.startTask(ti, true)
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			continue
		}
		i++
	}
}
