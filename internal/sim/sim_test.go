package sim

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/workload"
)

func job(id int, submit, runtime float64, cores int) workload.Job {
	return workload.Job{ID: id, Submit: submit, Runtime: runtime, Estimate: runtime, Cores: cores}
}

func mustRun(t *testing.T, p Platform, jobs []workload.Job, opt Options) *Result {
	t.Helper()
	res, err := Run(p, jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Platform{Cores: 4}, nil, Options{}); err != ErrNoPolicy {
		t.Errorf("missing policy: err = %v", err)
	}
	if _, err := Run(Platform{}, nil, Options{Policy: sched.FCFS()}); err != ErrNoCores {
		t.Errorf("no cores: err = %v", err)
	}
	bad := []workload.Job{job(1, 0, 10, 8)}
	if _, err := Run(Platform{Cores: 4}, bad, Options{Policy: sched.FCFS()}); err == nil {
		t.Error("oversized job accepted")
	}
}

func TestSingleJobRunsImmediately(t *testing.T) {
	res := mustRun(t, Platform{Cores: 4}, []workload.Job{job(1, 5, 100, 2)}, Options{Policy: sched.FCFS()})
	s := res.Stats[0]
	if s.Start != 5 || s.Finish != 105 || s.Wait != 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.BSLD != 1 {
		t.Errorf("BSLD = %v, want 1", s.BSLD)
	}
	if res.AVEbsld != 1 {
		t.Errorf("AVEbsld = %v, want 1", res.AVEbsld)
	}
}

func TestBsldFormula(t *testing.T) {
	// wait=90, r=10: (90+10)/max(10,10) = 10.
	if got := Bsld(90, 10, 10); got != 10 {
		t.Errorf("Bsld = %v, want 10", got)
	}
	// Tiny runtime bounded by tau: wait=90, r=1: (90+1)/10 = 9.1, not 91.
	if got := Bsld(90, 1, 10); math.Abs(got-9.1) > 1e-12 {
		t.Errorf("Bsld = %v, want 9.1", got)
	}
	// Never below 1.
	if got := Bsld(0, 1, 10); got != 1 {
		t.Errorf("Bsld = %v, want 1", got)
	}
	// Zero tau falls back to the default.
	if got := Bsld(90, 1, 0); math.Abs(got-9.1) > 1e-12 {
		t.Errorf("Bsld(tau=0) = %v, want 9.1", got)
	}
}

func TestHeadOfQueueBlocks(t *testing.T) {
	// FCFS without backfilling: B (4 cores) blocks C even though C fits.
	jobs := []workload.Job{
		job(1, 0, 100, 2),  // A
		job(2, 10, 50, 4),  // B - blocked head
		job(3, 20, 80, 2),  // C - would fit but must not pass B
		job(4, 25, 200, 2), // D
	}
	res := mustRun(t, Platform{Cores: 4}, jobs, Options{Policy: sched.FCFS()})
	if got := res.Stats[1].Start; got != 100 {
		t.Errorf("B start = %v, want 100", got)
	}
	if got := res.Stats[2].Start; got != 150 {
		t.Errorf("C start = %v, want 150 (head blocking)", got)
	}
	if got := res.Stats[3].Start; got != 150 {
		t.Errorf("D start = %v, want 150", got)
	}
	if res.Backfilled != 0 {
		t.Errorf("Backfilled = %d, want 0", res.Backfilled)
	}
}

func TestEASYBackfill(t *testing.T) {
	jobs := []workload.Job{
		job(1, 0, 100, 2),  // A
		job(2, 10, 50, 4),  // B - blocked head, shadow = 100
		job(3, 20, 80, 2),  // C - finishes by shadow: backfills
		job(4, 25, 200, 2), // D - would overrun shadow, no extra cores
	}
	res := mustRun(t, Platform{Cores: 4}, jobs, Options{Policy: sched.FCFS(), Backfill: BackfillEASY})
	if got := res.Stats[2].Start; got != 20 {
		t.Errorf("C start = %v, want 20 (backfilled)", got)
	}
	if !res.Stats[2].Backfilled {
		t.Error("C not marked backfilled")
	}
	if got := res.Stats[1].Start; got != 100 {
		t.Errorf("B start = %v, want 100 (backfill must not delay the head)", got)
	}
	if got := res.Stats[3].Start; got != 150 {
		t.Errorf("D start = %v, want 150", got)
	}
	if res.Backfilled != 1 {
		t.Errorf("Backfilled = %d, want 1", res.Backfilled)
	}
}

func TestEASYExtraCores(t *testing.T) {
	// Head needs 3 of 4 cores; at shadow time 3 cores free, extra = 0...
	// so give it a case with extra: A holds 1 core until 100, head needs 2,
	// free now 3 - wait, head would start. Craft: A(3 cores, until 100),
	// head B needs 2 -> shadow 100, free at shadow 4, extra = 2. C needs 1
	// core for 1000s: fits extra, backfills at its arrival despite
	// overrunning the shadow.
	jobs := []workload.Job{
		job(1, 0, 100, 3),   // A
		job(2, 10, 50, 2),   // B - head: needs 2, free 1 -> blocked
		job(3, 20, 1000, 1), // C - 1 core <= extra(2): backfills
	}
	res := mustRun(t, Platform{Cores: 4}, jobs, Options{Policy: sched.FCFS(), Backfill: BackfillEASY})
	if got := res.Stats[2].Start; got != 20 {
		t.Errorf("C start = %v, want 20 (fits in extra cores)", got)
	}
	if got := res.Stats[1].Start; got != 100 {
		t.Errorf("B start = %v, want 100", got)
	}
}

func TestConservativeBackfill(t *testing.T) {
	jobs := []workload.Job{
		job(1, 0, 100, 2),  // A
		job(2, 10, 50, 4),  // B - blocked, reserved at 100
		job(3, 20, 80, 2),  // C - fits before B's reservation
		job(4, 25, 200, 2), // D - would delay B: reserved later
	}
	res := mustRun(t, Platform{Cores: 4}, jobs, Options{Policy: sched.FCFS(), Backfill: BackfillConservative})
	if got := res.Stats[2].Start; got != 20 {
		t.Errorf("C start = %v, want 20", got)
	}
	if got := res.Stats[1].Start; got != 100 {
		t.Errorf("B start = %v, want 100", got)
	}
	if got := res.Stats[3].Start; got != 150 {
		t.Errorf("D start = %v, want 150", got)
	}
}

func TestPolicyOrderRespected(t *testing.T) {
	// Machine busy until 100; three queued jobs with distinct runtimes.
	jobs := []workload.Job{
		job(1, 0, 100, 4),
		job(2, 1, 300, 4),
		job(3, 2, 10, 4),
		job(4, 3, 50, 4),
	}
	res := mustRun(t, Platform{Cores: 4}, jobs, Options{Policy: sched.SPT()})
	// SPT order after the blocker: 3 (10s), 4 (50s), 2 (300s).
	if res.Stats[2].Start != 100 || res.Stats[3].Start != 110 || res.Stats[1].Start != 160 {
		t.Errorf("starts = %v, %v, %v; want 100, 110, 160",
			res.Stats[2].Start, res.Stats[3].Start, res.Stats[1].Start)
	}
}

func TestEstimatesDriveDecisionsNotExecution(t *testing.T) {
	blocker := job(1, 0, 100, 4)
	j2 := workload.Job{ID: 2, Submit: 1, Runtime: 100, Estimate: 10, Cores: 4}  // looks short
	j3 := workload.Job{ID: 3, Submit: 2, Runtime: 10, Estimate: 2000, Cores: 4} // looks long
	res := mustRun(t, Platform{Cores: 4}, []workload.Job{blocker, j2, j3},
		Options{Policy: sched.SPT(), UseEstimates: true})
	// SPT on estimates picks j2 first even though it actually runs longer.
	if res.Stats[1].Start != 100 {
		t.Errorf("j2 start = %v, want 100", res.Stats[1].Start)
	}
	// j2 executes its *actual* 100s runtime.
	if res.Stats[1].Finish != 200 {
		t.Errorf("j2 finish = %v, want 200 (actual runtime)", res.Stats[1].Finish)
	}
	if res.Stats[2].Start != 200 {
		t.Errorf("j3 start = %v, want 200", res.Stats[2].Start)
	}
}

func TestKillAtEstimate(t *testing.T) {
	j := workload.Job{ID: 1, Submit: 0, Runtime: 100, Estimate: 40, Cores: 1}
	res := mustRun(t, Platform{Cores: 1}, []workload.Job{j},
		Options{Policy: sched.FCFS(), KillAtEstimate: true})
	if res.Stats[0].Finish != 40 {
		t.Errorf("finish = %v, want 40 (killed at estimate)", res.Stats[0].Finish)
	}
}

func TestSimultaneousReleaseAndArrival(t *testing.T) {
	// A releases exactly when B arrives; B must start immediately because
	// completions are applied before arrivals at the same timestamp.
	jobs := []workload.Job{
		job(1, 0, 50, 4),
		job(2, 50, 10, 4),
	}
	res := mustRun(t, Platform{Cores: 4}, jobs, Options{Policy: sched.FCFS()})
	if res.Stats[1].Start != 50 || res.Stats[1].Wait != 0 {
		t.Errorf("B start = %v wait = %v; want 50, 0", res.Stats[1].Start, res.Stats[1].Wait)
	}
}

func TestDeterminism(t *testing.T) {
	jobs := randomJobs(dist.New(7), 200, 64)
	for _, mode := range []BackfillMode{BackfillNone, BackfillEASY, BackfillConservative} {
		a := mustRun(t, Platform{Cores: 64}, jobs, Options{Policy: sched.WFP3(), Backfill: mode})
		b := mustRun(t, Platform{Cores: 64}, jobs, Options{Policy: sched.WFP3(), Backfill: mode})
		if !reflect.DeepEqual(a, b) {
			t.Errorf("mode %v: non-deterministic result", mode)
		}
	}
}

func randomJobs(rng *dist.RNG, n, maxCores int) []workload.Job {
	jobs := make([]workload.Job, n)
	now := 0.0
	for i := range jobs {
		now += rng.Float64() * 30
		r := 1 + rng.Float64()*500
		e := r * (1 + rng.Float64()*3)
		jobs[i] = workload.Job{
			ID:       i + 1,
			Submit:   now,
			Runtime:  r,
			Estimate: e,
			Cores:    1 + rng.IntN(maxCores),
		}
	}
	return jobs
}

// checkNoOversubscription sweeps start/finish events and verifies the
// core-in-use envelope never exceeds the platform size.
func checkNoOversubscription(t *testing.T, cores int, stats []JobStats) {
	t.Helper()
	type ev struct {
		at    float64
		delta int
	}
	evs := make([]ev, 0, 2*len(stats))
	for _, s := range stats {
		evs = append(evs, ev{s.Start, s.Job.Cores}, ev{s.Finish, -s.Job.Cores})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].delta < evs[j].delta // releases first
	})
	used := 0
	for _, e := range evs {
		used += e.delta
		if used > cores {
			t.Fatalf("oversubscription: %d cores in use at t=%v (platform %d)", used, e.at, cores)
		}
	}
	if used != 0 {
		t.Fatalf("unbalanced start/finish events: residual %d", used)
	}
}

func TestInvariantsAcrossPoliciesAndModes(t *testing.T) {
	const cores = 32
	rng := dist.New(99)
	jobs := randomJobs(rng, 300, cores)
	policies := append(sched.Registry(), sched.LPT(), sched.SAF())
	for _, p := range policies {
		for _, mode := range []BackfillMode{BackfillNone, BackfillEASY, BackfillConservative} {
			for _, est := range []bool{false, true} {
				res := mustRun(t, Platform{Cores: cores}, jobs,
					Options{Policy: p, Backfill: mode, UseEstimates: est})
				checkNoOversubscription(t, cores, res.Stats)
				for i, s := range res.Stats {
					if !almost(s.Finish, s.Start+s.Job.Runtime) {
						t.Fatalf("%s/%v: job %d finish %v != start+runtime %v",
							p.Name(), mode, i, s.Finish, s.Start+s.Job.Runtime)
					}
					if s.Start < s.Job.Submit {
						t.Fatalf("%s/%v: job %d started before submission", p.Name(), mode, i)
					}
					if s.BSLD < 1 {
						t.Fatalf("%s/%v: job %d BSLD %v < 1", p.Name(), mode, i, s.BSLD)
					}
				}
				if res.Utilization > 1+1e-9 {
					t.Fatalf("%s/%v: utilization %v > 1", p.Name(), mode, res.Utilization)
				}
				if res.AVEbsld < 1 {
					t.Fatalf("%s/%v: AVEbsld %v < 1", p.Name(), mode, res.AVEbsld)
				}
			}
		}
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestQuickResourceSafety(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(func(seed uint64, nRaw uint8, backRaw uint8) bool {
		n := int(nRaw%60) + 1
		mode := BackfillMode(backRaw % 3)
		jobs := randomJobs(dist.New(seed), n, 16)
		res, err := Run(Platform{Cores: 16}, jobs, Options{Policy: sched.UNICEF(), Backfill: mode, UseEstimates: true})
		if err != nil {
			return false
		}
		type ev struct {
			at    float64
			delta int
		}
		evs := make([]ev, 0, 2*len(res.Stats))
		for _, s := range res.Stats {
			if !s.Backfilled && false {
				continue
			}
			evs = append(evs, ev{s.Start, s.Job.Cores}, ev{s.Finish, -s.Job.Cores})
		}
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].at != evs[j].at {
				return evs[i].at < evs[j].at
			}
			return evs[i].delta < evs[j].delta
		})
		used := 0
		for _, e := range evs {
			used += e.delta
			if used > 16 {
				return false
			}
		}
		return used == 0
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestEASYNeverDelaysHeadVersusNoBackfill(t *testing.T) {
	// With accurate perceived runtimes, the completion makespan under EASY
	// must not exceed no-backfill by more than numeric noise, and total
	// wait should not increase for the FCFS-first job of any busy period.
	// We check the aggregate: EASY's mean wait <= no-backfill's mean wait
	// on FCFS (a classical property of EASY with exact estimates on these
	// workloads; violations would indicate a reservation bug).
	rng := dist.New(1234)
	for trial := 0; trial < 5; trial++ {
		jobs := randomJobs(rng.Split(uint64(trial)), 150, 32)
		plain := mustRun(t, Platform{Cores: 32}, jobs, Options{Policy: sched.FCFS()})
		easy := mustRun(t, Platform{Cores: 32}, jobs, Options{Policy: sched.FCFS(), Backfill: BackfillEASY})
		if easy.MeanWait > plain.MeanWait+1e-6 {
			t.Errorf("trial %d: EASY mean wait %.3f > plain %.3f", trial, easy.MeanWait, plain.MeanWait)
		}
	}
}

func TestAveBsldSubset(t *testing.T) {
	stats := []JobStats{
		{Job: workload.Job{ID: 1}, BSLD: 1},
		{Job: workload.Job{ID: 2}, BSLD: 3},
		{Job: workload.Job{ID: 3}, BSLD: 5},
	}
	if got := AveBsld(stats, nil); got != 3 {
		t.Errorf("AveBsld all = %v, want 3", got)
	}
	keep := func(s JobStats) bool { return s.Job.ID >= 2 }
	if got := AveBsld(stats, keep); got != 4 {
		t.Errorf("AveBsld subset = %v, want 4", got)
	}
	if got := AveBsld(nil, nil); !math.IsNaN(got) {
		t.Errorf("AveBsld empty = %v, want NaN", got)
	}
}

func TestTimeVaryingPolicyResortsBetweenEvents(t *testing.T) {
	// Under WFP3 the score is -(wait/runtime)^3 * cores. At arrival both
	// waiting jobs score 0 (tie broken by submit: B first). By the time
	// the blocker finishes at t=100, the short job C has aged much faster
	// relative to its runtime, so a correct engine re-sorts and runs C
	// first; an engine that cached arrival-time scores would run B first.
	jobs := []workload.Job{
		job(1, 0, 100, 2),  // blocker
		job(2, 1, 1000, 2), // B: long
		job(3, 2, 10, 2),   // C: short, ages fast in WFP terms
	}
	res := mustRun(t, Platform{Cores: 2}, jobs, Options{Policy: sched.WFP3()})
	if res.Stats[2].Start != 100 {
		t.Errorf("C start = %v, want 100 (aging must reorder the queue)", res.Stats[2].Start)
	}
	if res.Stats[1].Start != 110 {
		t.Errorf("B start = %v, want 110", res.Stats[1].Start)
	}
}

func TestPercentileMetrics(t *testing.T) {
	jobs := []workload.Job{
		job(1, 0, 100, 4),
		job(2, 1, 10, 4),
		job(3, 2, 10, 4),
	}
	res := mustRun(t, Platform{Cores: 4}, jobs, Options{Policy: sched.FCFS()})
	if res.MedianBSLD < 1 || res.P95BSLD < res.MedianBSLD {
		t.Errorf("percentiles inconsistent: median %v p95 %v", res.MedianBSLD, res.P95BSLD)
	}
	if res.P95BSLD > res.MaxBSLD+1e-12 {
		t.Errorf("p95 %v above max %v", res.P95BSLD, res.MaxBSLD)
	}
	if res.P95Wait > res.MaxWait+1e-12 {
		t.Errorf("p95 wait %v above max wait %v", res.P95Wait, res.MaxWait)
	}
}

func TestMaxQueueLenAndMetrics(t *testing.T) {
	jobs := []workload.Job{
		job(1, 0, 100, 4),
		job(2, 1, 10, 1),
		job(3, 2, 10, 1),
		job(4, 3, 10, 1),
	}
	res := mustRun(t, Platform{Cores: 4}, jobs, Options{Policy: sched.FCFS()})
	if res.MaxQueueLen != 3 {
		t.Errorf("MaxQueueLen = %d, want 3", res.MaxQueueLen)
	}
	if res.Makespan <= 0 || res.Utilization <= 0 {
		t.Errorf("metrics = %+v", res)
	}
}
