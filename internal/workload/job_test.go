package workload

import (
	"math"
	"testing"
)

func validJob() Job {
	return Job{ID: 1, Submit: 10, Runtime: 100, Estimate: 200, Cores: 4}
}

func TestJobValidate(t *testing.T) {
	if err := validJob().Validate(8); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Job)
	}{
		{"negative submit", func(j *Job) { j.Submit = -1 }},
		{"zero runtime", func(j *Job) { j.Runtime = 0 }},
		{"zero cores", func(j *Job) { j.Cores = 0 }},
		{"too many cores", func(j *Job) { j.Cores = 9 }},
		{"negative estimate", func(j *Job) { j.Estimate = -5 }},
	}
	for _, c := range cases {
		j := validJob()
		c.mutate(&j)
		if err := j.Validate(8); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// maxCores <= 0 disables the capacity check.
	j := validJob()
	j.Cores = 10000
	if err := j.Validate(0); err != nil {
		t.Errorf("capacity check not disabled: %v", err)
	}
}

func TestJobArea(t *testing.T) {
	j := Job{Runtime: 50, Cores: 3}
	if got := j.Area(); got != 150 {
		t.Errorf("Area = %v, want 150", got)
	}
}

func TestTraceSortAndValidate(t *testing.T) {
	tr := &Trace{MaxProcs: 16, Jobs: []Job{
		{ID: 2, Submit: 20, Runtime: 5, Cores: 1},
		{ID: 1, Submit: 10, Runtime: 5, Cores: 2},
		{ID: 3, Submit: 10, Runtime: 5, Cores: 4},
	}}
	if err := tr.Validate(); err == nil {
		t.Error("unsorted trace passed validation")
	}
	tr.SortBySubmit()
	if err := tr.Validate(); err != nil {
		t.Errorf("sorted trace failed validation: %v", err)
	}
	if tr.Jobs[0].ID != 1 || tr.Jobs[1].ID != 3 || tr.Jobs[2].ID != 2 {
		t.Errorf("sort order wrong: %v", tr.Jobs)
	}
}

func TestTraceValidateEmpty(t *testing.T) {
	tr := &Trace{}
	if err := tr.Validate(); err != ErrNoJobs {
		t.Errorf("err = %v, want ErrNoJobs", err)
	}
}

func TestComputeStats(t *testing.T) {
	tr := &Trace{MaxProcs: 10, Jobs: []Job{
		{ID: 1, Submit: 0, Runtime: 100, Cores: 5},
		{ID: 2, Submit: 100, Runtime: 100, Cores: 5},
	}}
	s := tr.ComputeStats()
	if s.Jobs != 2 || s.Cores != 10 {
		t.Errorf("stats = %+v", s)
	}
	if s.DurationSec != 100 {
		t.Errorf("duration = %v, want 100", s.DurationSec)
	}
	// area = 2*500 = 1000; cores*duration = 1000.
	if math.Abs(s.Utilization-1.0) > 1e-12 {
		t.Errorf("utilization = %v, want 1", s.Utilization)
	}
	if s.MeanRuntime != 100 || s.MeanCores != 5 || s.MaxCores != 5 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRepair(t *testing.T) {
	tr := &Trace{MaxProcs: 8, Jobs: []Job{
		{ID: 1, Submit: 0, Runtime: 10, Estimate: 20, Cores: 4},  // fine
		{ID: 2, Submit: 1, Runtime: 10, Estimate: 20, Cores: 64}, // oversized
		{ID: 3, Submit: 2, Runtime: 10, Estimate: 0, Cores: 2},   // no estimate
	}}
	if fixed := tr.Repair(); fixed != 2 {
		t.Errorf("Repair fixed %d jobs, want 2", fixed)
	}
	if tr.Jobs[1].Cores != 8 {
		t.Errorf("oversized job clamped to %d, want 8", tr.Jobs[1].Cores)
	}
	if tr.Jobs[2].Estimate != 10 {
		t.Errorf("missing estimate repaired to %v, want 10", tr.Jobs[2].Estimate)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("repaired trace still invalid: %v", err)
	}
	// Second pass is a no-op.
	if fixed := tr.Repair(); fixed != 0 {
		t.Errorf("second Repair fixed %d jobs, want 0", fixed)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := (&Trace{MaxProcs: 4}).ComputeStats()
	if s.Jobs != 0 || s.Utilization != 0 {
		t.Errorf("stats = %+v", s)
	}
}
