package workload

// The SWF round-trip property: ReadSWF(WriteSWF(t)) preserves every job
// field exactly (including fractional times), the trace name and platform
// size, and every header field — randomized traces, many iterations.

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/hpcsched/gensched/internal/dist"
)

// randomTrace draws a valid trace with adversarial fields: fractional and
// integer times, 1-core and full-machine jobs, estimates above and below
// the runtime, plus arbitrary header entries.
func randomTrace(rng *dist.RNG) *Trace {
	cores := 1 + rng.IntN(512)
	n := 1 + rng.IntN(60)
	t := &Trace{
		Name:     fmt.Sprintf("machine-%d", rng.IntN(100)),
		MaxProcs: cores,
		Header: map[string]string{
			"Version":       "2.2",
			"UnixStartTime": fmt.Sprint(rng.IntN(1 << 30)),
			"Note":          "synthetic round-trip fixture",
		},
	}
	now := 0.0
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.5 {
			now += rng.Float64() * 1e4 // fractional arrivals
		} else {
			now += float64(rng.IntN(10000)) // integer arrivals
		}
		r := 1 + rng.Float64()*1e5
		if rng.Float64() < 0.3 {
			r = float64(1 + rng.IntN(100000))
		}
		e := r * (0.25 + rng.Float64()*3)
		if e < 1 {
			e = 1
		}
		t.Jobs = append(t.Jobs, Job{
			ID:       i + 1,
			Submit:   now,
			Runtime:  r,
			Estimate: e,
			Cores:    1 + rng.IntN(cores),
		})
	}
	return t
}

func roundTrip(t *testing.T, tr *Trace) *Trace {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSWF(&buf, tr); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ParseSWF(&buf)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return got
}

func TestSWFRoundTripPreservesHeaderAndFractions(t *testing.T) {
	root := dist.New(20260730)
	for iter := 0; iter < 60; iter++ {
		tr := randomTrace(root.Split(uint64(iter)))
		got := roundTrip(t, tr)
		if got.Name != tr.Name {
			t.Fatalf("iter %d: name %q != %q", iter, got.Name, tr.Name)
		}
		if got.MaxProcs != tr.MaxProcs {
			t.Fatalf("iter %d: maxprocs %d != %d", iter, got.MaxProcs, tr.MaxProcs)
		}
		if len(got.Jobs) != len(tr.Jobs) {
			t.Fatalf("iter %d: %d jobs != %d", iter, len(got.Jobs), len(tr.Jobs))
		}
		for i := range tr.Jobs {
			// ParseSWF sorts by (submit, id); randomTrace generates in
			// nondecreasing submit order with ascending IDs, so input
			// order is preserved. Every field must round-trip exactly.
			if got.Jobs[i] != tr.Jobs[i] {
				t.Fatalf("iter %d: job %d: %+v != %+v", iter, i, got.Jobs[i], tr.Jobs[i])
			}
		}
		for k, v := range tr.Header {
			if got.Header[k] != v {
				t.Fatalf("iter %d: header %q = %q, want %q (header dropped by writer)",
					iter, k, got.Header[k], v)
			}
		}
	}
}

// TestSWFRoundTripIdempotent: a second round trip is byte-identical — the
// writer's output re-parses into exactly the state that reproduces it.
func TestSWFRoundTripIdempotent(t *testing.T) {
	tr := randomTrace(dist.New(7))
	var first, second bytes.Buffer
	if err := WriteSWF(&first, tr); err != nil {
		t.Fatal(err)
	}
	re, err := ParseSWF(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSWF(&second, re); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("second write differs from first: the writer drops or reorders state")
	}
}

// TestSWFRoundTripExtremeTimes pins exact float64 round-tripping of times
// that need full precision.
func TestSWFRoundTripExtremeTimes(t *testing.T) {
	tr := &Trace{
		Name:     "edge",
		MaxProcs: 8,
		Jobs: []Job{
			{ID: 1, Submit: 0, Runtime: 1.0 / 3.0, Estimate: math.Pi, Cores: 1},
			{ID: 2, Submit: 0.1 + 0.2, Runtime: 86400.000001, Estimate: 86400.000001, Cores: 8},
			{ID: 3, Submit: 1e9, Runtime: 1, Estimate: 1, Cores: 1},
		},
	}
	got := roundTrip(t, tr)
	for i := range tr.Jobs {
		if got.Jobs[i] != tr.Jobs[i] {
			t.Errorf("job %d: %+v != %+v", i, got.Jobs[i], tr.Jobs[i])
		}
	}
}

// TestSWFWriterSkipsInternalKeys: gensched's own bookkeeping header keys
// describe one parse and must not leak into written traces.
func TestSWFWriterSkipsInternalKeys(t *testing.T) {
	tr := &Trace{
		MaxProcs: 4,
		Header: map[string]string{
			";gensched-skipped": "17",
			"Acknowledge":       "the archive",
		},
		Jobs: []Job{{ID: 1, Submit: 0, Runtime: 1, Estimate: 1, Cores: 1}},
	}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "gensched-skipped") {
		t.Errorf("internal key leaked into output:\n%s", out)
	}
	if !strings.Contains(out, "; Acknowledge: the archive") {
		t.Errorf("real header dropped:\n%s", out)
	}
}
