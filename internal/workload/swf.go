package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The Standard Workload Format (Feitelson, Tsafrir, Krakov: "Experience
// with using the Parallel Workloads Archive") stores one job per line with
// 18 whitespace-separated fields; header lines start with ';'. The fields
// gensched uses are:
//
//	 1  job number
//	 2  submit time (s)
//	 4  run time (s)
//	 5  allocated processors
//	 8  requested processors (fallback when field 5 is -1)
//	 9  requested time = user estimate (s)
//
// Missing values are encoded as -1.

const swfFields = 18

// ParseSWF reads a trace in Standard Workload Format. Jobs with unknown
// (-1) or zero runtime or processor counts are skipped, mirroring how the
// paper's prototypes clean the archive logs; the number skipped is
// reported through the trace header key ";gensched-skipped".
func ParseSWF(r io.Reader) (*Trace, error) {
	t := &Trace{Header: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	skipped := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			parseHeaderLine(t, line)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 5 {
			return nil, fmt.Errorf("workload: swf line %d: %d fields, want at least 5", lineNo, len(fields))
		}
		job, ok, err := parseJobLine(fields)
		if err != nil {
			return nil, fmt.Errorf("workload: swf line %d: %w", lineNo, err)
		}
		if !ok {
			skipped++
			continue
		}
		t.Jobs = append(t.Jobs, job)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading swf: %w", err)
	}
	t.Header[";gensched-skipped"] = strconv.Itoa(skipped)
	if v, ok := t.Header["MaxProcs"]; ok {
		if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil {
			t.MaxProcs = n
		}
	}
	if v, ok := t.Header["Computer"]; ok {
		t.Name = v
	}
	if t.MaxProcs == 0 {
		for _, j := range t.Jobs {
			if j.Cores > t.MaxProcs {
				t.MaxProcs = j.Cores
			}
		}
	}
	t.SortBySubmit()
	return t, nil
}

func parseHeaderLine(t *Trace, line string) {
	body := strings.TrimLeft(line, "; ")
	if k, v, found := strings.Cut(body, ":"); found {
		// Header is a map, so a key repeated across header lines (archive
		// logs sometimes carry several "; Note:" or per-queue lines) keeps
		// only the last value. WriteSWF can therefore round-trip exactly
		// the fields that survive parsing, not duplicate lines.
		t.Header[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
}

// parseJobLine converts one SWF record. ok is false when the record lacks
// the data the simulator needs (unknown runtime or processors).
func parseJobLine(fields []string) (Job, bool, error) {
	get := func(i int) (float64, error) {
		if i >= len(fields) {
			return -1, nil
		}
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return 0, fmt.Errorf("field %d %q: %w", i+1, fields[i], err)
		}
		return v, nil
	}
	id, err := get(0)
	if err != nil {
		return Job{}, false, err
	}
	submit, err := get(1)
	if err != nil {
		return Job{}, false, err
	}
	runtime, err := get(3)
	if err != nil {
		return Job{}, false, err
	}
	procs, err := get(4)
	if err != nil {
		return Job{}, false, err
	}
	reqProcs, err := get(7)
	if err != nil {
		return Job{}, false, err
	}
	estimate, err := get(8)
	if err != nil {
		return Job{}, false, err
	}
	if procs <= 0 {
		procs = reqProcs
	}
	// Processor counts are integral in SWF; junk fractional values below 1
	// would otherwise coerce to zero cores.
	cores := int(procs)
	if runtime <= 0 || cores < 1 || submit < 0 {
		return Job{}, false, nil
	}
	if estimate <= 0 {
		estimate = runtime // archive convention: fall back to actual
	}
	return Job{
		ID:       int(id),
		Submit:   submit,
		Runtime:  runtime,
		Estimate: estimate,
		Cores:    cores,
	}, true, nil
}

// WriteSWF writes the trace in Standard Workload Format. Fields gensched
// does not model are emitted as -1, and both "allocated" and "requested"
// processor fields carry the job's core count so any SWF consumer reads
// the same size. Every parsed header field is written back out (after the
// fields gensched derives itself), so ReadSWF → WriteSWF → ReadSWF
// preserves jobs, Name, MaxProcs and every header field that survived
// parsing — the round-trip property the workload tests pin. (Repeated
// header keys collapse to their last value at parse time, since Header is
// a map; see parseHeaderLine.)
func WriteSWF(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "; SWF trace written by gensched\n")
	if t.Name != "" {
		fmt.Fprintf(bw, "; Computer: %s\n", t.Name)
	}
	fmt.Fprintf(bw, "; MaxProcs: %d\n", t.MaxProcs)
	fmt.Fprintf(bw, "; MaxJobs: %d\n", len(t.Jobs))
	for _, k := range sortedHeaderKeys(t.Header) {
		fmt.Fprintf(bw, "; %s: %s\n", k, t.Header[k])
	}
	for _, j := range t.Jobs {
		rec := make([]string, swfFields)
		for i := range rec {
			rec[i] = "-1"
		}
		rec[0] = strconv.Itoa(j.ID)
		rec[1] = formatSeconds(j.Submit)
		rec[2] = "-1" // wait time: an output of scheduling, not an input
		rec[3] = formatSeconds(j.Runtime)
		rec[4] = strconv.Itoa(j.Cores)
		rec[7] = strconv.Itoa(j.Cores)
		rec[8] = formatSeconds(j.Estimate)
		rec[10] = "1" // status: completed
		if _, err := fmt.Fprintln(bw, strings.Join(rec, " ")); err != nil {
			return fmt.Errorf("workload: writing swf: %w", err)
		}
	}
	return bw.Flush()
}

// sortedHeaderKeys lists the header fields WriteSWF must carry through,
// in deterministic order: every parsed key except the ones the writer
// emits itself (Computer, MaxProcs, MaxJobs — regenerated from the
// struct) and gensched's internal bookkeeping keys (";gensched-*", which
// describe one parse, not the trace).
func sortedHeaderKeys(header map[string]string) []string {
	keys := make([]string, 0, len(header))
	//gensched:orderinvariant keys are accumulated and sorted before use, so map order cannot reach the written header
	for k := range header {
		switch k {
		case "Computer", "MaxProcs", "MaxJobs":
			continue
		}
		if strings.HasPrefix(k, ";") {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// formatSeconds renders times compactly: integers without a decimal point
// (the common SWF convention), fractional values with enough precision to
// round-trip.
func formatSeconds(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 17, 64)
}
