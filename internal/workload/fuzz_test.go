package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseSWF feeds arbitrary bytes to the SWF parser: it must never
// panic, and any trace it accepts must survive a write/parse round trip.
func FuzzParseSWF(f *testing.F) {
	f.Add(sampleSWF)
	f.Add("")
	f.Add("; MaxProcs: abc\n")
	f.Add("1 0 3 100 4 -1 -1 4 120 -1 1 -1 -1 -1 -1 -1 -1 -1\n")
	f.Add("1 0 3 100 4\n1 0 3 100 4\n")
	f.Add("-1 -1 -1 -1 -1\n")
	f.Add("9e999 0 0 1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseSWF(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteSWF(&buf, tr); err != nil {
			t.Fatalf("accepted trace does not serialize: %v", err)
		}
		back, err := ParseSWF(&buf)
		if err != nil {
			t.Fatalf("serialized trace does not re-parse: %v", err)
		}
		if len(back.Jobs) != len(tr.Jobs) {
			t.Fatalf("round trip changed job count: %d -> %d", len(tr.Jobs), len(back.Jobs))
		}
	})
}

// FuzzParseAccountingSWF exercises the accounting-log parser the same way.
func FuzzParseAccountingSWF(f *testing.F) {
	f.Add("1 0 5 10 1 -1 -1 1 10 -1 1\n")
	f.Add("; header only\n")
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := ParseAccountingSWF(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, r := range recs {
			if r.Wait < 0 {
				t.Fatal("negative wait accepted")
			}
			if r.Job.Runtime <= 0 || r.Job.Cores <= 0 {
				t.Fatal("incomplete job accepted")
			}
		}
	})
}
