package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestAccountingRoundTrip(t *testing.T) {
	recs := []AccountingRecord{
		{Job: Job{ID: 1, Submit: 0, Runtime: 100, Estimate: 120, Cores: 4}, Wait: 0},
		{Job: Job{ID: 2, Submit: 50, Runtime: 10, Estimate: 60, Cores: 8}, Wait: 125.5},
	}
	var buf bytes.Buffer
	if err := WriteAccountingSWF(&buf, "testbox", 64, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ParseAccountingSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip length %d, want %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i].Job != recs[i].Job || back[i].Wait != recs[i].Wait {
			t.Errorf("record %d: got %+v, want %+v", i, back[i], recs[i])
		}
	}
}

func TestAccountingParsableByPlainParser(t *testing.T) {
	// An accounting log is still a valid SWF trace for the plain parser.
	recs := []AccountingRecord{
		{Job: Job{ID: 1, Submit: 10, Runtime: 100, Estimate: 100, Cores: 2}, Wait: 5},
	}
	var buf bytes.Buffer
	if err := WriteAccountingSWF(&buf, "x", 16, recs); err != nil {
		t.Fatal(err)
	}
	tr, err := ParseSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 1 || tr.Jobs[0] != recs[0].Job {
		t.Errorf("plain parse = %+v", tr.Jobs)
	}
	if tr.MaxProcs != 16 {
		t.Errorf("MaxProcs = %d", tr.MaxProcs)
	}
}

func TestParseAccountingSkipsJunk(t *testing.T) {
	in := "; header\n\n1 0 5 10 1 -1 -1 1 10 -1 1\n2 0 -1 -1 -1 -1 -1 -1 -1 -1 0\n"
	recs, err := ParseAccountingSWF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1 (incomplete job skipped)", len(recs))
	}
	if recs[0].Wait != 5 {
		t.Errorf("wait = %v, want 5", recs[0].Wait)
	}
}
