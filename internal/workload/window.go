package workload

import "fmt"

// FifteenDays is the sequence length the paper's dynamic scheduling
// experiments use: "Each sequence contains all tasks submissions over a
// period of fifteen days and we made sure that there was no overlap
// between the sequences."
const FifteenDays = 15 * 24 * 3600.0

// Windows slices the trace into count disjoint consecutive windows of
// length windowSec (by submit time), rebasing each window's submit times
// to start at rebase seconds. Rebasing to a small positive origin keeps
// log10(s) in the range the learned policies were trained on. Windows with
// no jobs are returned empty rather than skipped so callers can detect
// under-long traces.
func Windows(t *Trace, windowSec float64, count int, rebase float64) ([][]Job, error) {
	if count <= 0 {
		return nil, fmt.Errorf("workload: non-positive window count %d", count)
	}
	if windowSec <= 0 {
		return nil, fmt.Errorf("workload: non-positive window length %g", windowSec)
	}
	if len(t.Jobs) == 0 {
		return nil, ErrNoJobs
	}
	// The trace must at least reach into the last window; otherwise the
	// caller asked for more sequences than the log contains.
	if t.Duration() < windowSec*float64(count-1) {
		return nil, fmt.Errorf("workload: trace spans %.0fs, need %.0fs to reach %d windows of %.0fs",
			t.Duration(), windowSec*float64(count-1), count, windowSec)
	}
	origin := t.Jobs[0].Submit
	out := make([][]Job, count)
	for _, j := range t.Jobs {
		w := int((j.Submit - origin) / windowSec)
		if w < 0 || w >= count {
			continue
		}
		jj := j
		jj.Submit = j.Submit - origin - float64(w)*windowSec + rebase
		out[w] = append(out[w], jj)
	}
	return out, nil
}
