// Package workload defines the rigid-task model the paper schedules (§3.1):
// each task has an arrival time s, an actual processing time r, a
// user-estimated processing time e, and a core requirement n. The package
// also reads and writes the Standard Workload Format (SWF) used by the
// Parallel Workloads Archive, and slices traces into the disjoint
// fifteen-day sequences the dynamic scheduling experiments use.
package workload

import (
	"errors"
	"fmt"
	"sort"
)

// Job is one rigid task. Times are in seconds; Submit is relative to the
// trace epoch. Estimate is what the user requested (SWF "requested time");
// schedulers must not look at Runtime when an experiment runs in
// user-estimate mode.
type Job struct {
	ID       int     // 1-based job identifier (SWF job number)
	Submit   float64 // arrival time s_t
	Runtime  float64 // actual processing time r_t (known only after completion)
	Estimate float64 // user-estimated processing time e_t
	Cores    int     // resource requirement n_t
}

// Validate reports the first structural problem with the job, if any.
// maxCores <= 0 disables the platform-capacity check.
func (j Job) Validate(maxCores int) error {
	switch {
	case j.Submit < 0:
		return fmt.Errorf("job %d: negative submit time %g", j.ID, j.Submit)
	case j.Runtime <= 0:
		return fmt.Errorf("job %d: non-positive runtime %g", j.ID, j.Runtime)
	case j.Cores <= 0:
		return fmt.Errorf("job %d: non-positive cores %d", j.ID, j.Cores)
	case maxCores > 0 && j.Cores > maxCores:
		return fmt.Errorf("job %d: requires %d cores, platform has %d", j.ID, j.Cores, maxCores)
	case j.Estimate < 0:
		return fmt.Errorf("job %d: negative estimate %g", j.ID, j.Estimate)
	}
	return nil
}

// Area returns the resource consumption r·n of the job in core-seconds,
// the weight the paper's regression gives each training sample (Eq. 4).
func (j Job) Area() float64 { return j.Runtime * float64(j.Cores) }

// Trace is an ordered collection of jobs plus the platform size it was
// recorded (or generated) for.
type Trace struct {
	Name     string
	MaxProcs int
	Jobs     []Job
	Header   map[string]string // SWF header fields, if parsed
}

// ErrNoJobs indicates an operation that needs at least one job.
var ErrNoJobs = errors.New("workload: trace has no jobs")

// SortBySubmit orders jobs by arrival time (stable, ties by ID), the order
// every online scheduling experiment assumes.
func (t *Trace) SortBySubmit() {
	sort.SliceStable(t.Jobs, func(i, k int) bool {
		if t.Jobs[i].Submit != t.Jobs[k].Submit {
			return t.Jobs[i].Submit < t.Jobs[k].Submit
		}
		return t.Jobs[i].ID < t.Jobs[k].ID
	})
}

// Validate checks every job against the trace's platform size and that
// submissions are sorted.
func (t *Trace) Validate() error {
	if len(t.Jobs) == 0 {
		return ErrNoJobs
	}
	prev := t.Jobs[0].Submit
	for i, j := range t.Jobs {
		if err := j.Validate(t.MaxProcs); err != nil {
			return err
		}
		if j.Submit < prev {
			return fmt.Errorf("job at index %d out of submit order", i)
		}
		prev = j.Submit
	}
	return nil
}

// Duration returns the span from the first to the last submission.
func (t *Trace) Duration() float64 {
	if len(t.Jobs) == 0 {
		return 0
	}
	return t.Jobs[len(t.Jobs)-1].Submit - t.Jobs[0].Submit
}

// Repair makes every job schedulable on the trace's platform, the way the
// paper's prototypes sanitize archive logs: jobs requesting more cores
// than the machine has are clamped to the machine size (archive logs
// contain such records when the header understates special partitions),
// and estimates below 1s are raised to the runtime. It returns the number
// of jobs modified.
func (t *Trace) Repair() int {
	fixed := 0
	for i := range t.Jobs {
		j := &t.Jobs[i]
		changed := false
		if t.MaxProcs > 0 && j.Cores > t.MaxProcs {
			j.Cores = t.MaxProcs
			changed = true
		}
		if j.Estimate < 1 {
			j.Estimate = j.Runtime
			changed = true
		}
		if changed {
			fixed++
		}
	}
	return fixed
}

// Stats summarizes a trace the way the paper's Table 5 reports platforms.
type Stats struct {
	Jobs        int
	Cores       int
	DurationSec float64
	Utilization float64 // offered load: Σ r·n / (cores · duration)
	MeanRuntime float64
	MeanCores   float64
	MaxCores    int
}

// ComputeStats derives Stats from the trace. Utilization is the offered
// load over the submission span, which approximates the logged machine
// utilization for long traces.
func (t *Trace) ComputeStats() Stats {
	s := Stats{Jobs: len(t.Jobs), Cores: t.MaxProcs}
	if len(t.Jobs) == 0 {
		return s
	}
	var area, rsum, nsum float64
	for _, j := range t.Jobs {
		area += j.Area()
		rsum += j.Runtime
		nsum += float64(j.Cores)
		if j.Cores > s.MaxCores {
			s.MaxCores = j.Cores
		}
	}
	s.DurationSec = t.Duration()
	if s.DurationSec > 0 && t.MaxProcs > 0 {
		s.Utilization = area / (float64(t.MaxProcs) * s.DurationSec)
	}
	s.MeanRuntime = rsum / float64(len(t.Jobs))
	s.MeanCores = nsum / float64(len(t.Jobs))
	return s
}
