package workload

import (
	"testing"
)

func mkTrace(submits ...float64) *Trace {
	tr := &Trace{MaxProcs: 8}
	for i, s := range submits {
		tr.Jobs = append(tr.Jobs, Job{ID: i + 1, Submit: s, Runtime: 10, Estimate: 10, Cores: 1})
	}
	return tr
}

func TestWindowsBasic(t *testing.T) {
	tr := mkTrace(0, 50, 99, 100, 150, 250)
	ws, err := Windows(tr, 100, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("got %d windows, want 2", len(ws))
	}
	if len(ws[0]) != 3 || len(ws[1]) != 2 {
		t.Fatalf("window sizes = %d, %d; want 3, 2", len(ws[0]), len(ws[1]))
	}
	// Rebased submit times: window 0 starts at 1.
	if ws[0][0].Submit != 1 || ws[0][1].Submit != 51 {
		t.Errorf("window 0 submits = %v, %v; want 1, 51", ws[0][0].Submit, ws[0][1].Submit)
	}
	// Window 1: original 100 becomes 1, 150 becomes 51.
	if ws[1][0].Submit != 1 || ws[1][1].Submit != 51 {
		t.Errorf("window 1 submits = %v, %v; want 1, 51", ws[1][0].Submit, ws[1][1].Submit)
	}
}

func TestWindowsNonZeroOrigin(t *testing.T) {
	tr := mkTrace(1000, 1050, 1150)
	ws, err := Windows(tr, 100, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws[0]) != 2 || len(ws[1]) != 1 {
		t.Fatalf("window sizes = %d, %d", len(ws[0]), len(ws[1]))
	}
	if ws[0][0].Submit != 0 || ws[1][0].Submit != 50 {
		t.Errorf("rebased submits wrong: %v, %v", ws[0][0].Submit, ws[1][0].Submit)
	}
}

func TestWindowsErrors(t *testing.T) {
	tr := mkTrace(0, 10)
	if _, err := Windows(tr, 100, 0, 0); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := Windows(tr, 0, 1, 0); err == nil {
		t.Error("zero window length accepted")
	}
	if _, err := Windows(&Trace{}, 100, 1, 0); err != ErrNoJobs {
		t.Error("empty trace accepted")
	}
	// Trace too short for the requested windows.
	if _, err := Windows(tr, 100, 5, 0); err == nil {
		t.Error("short trace accepted")
	}
}

func TestWindowsDisjointAndComplete(t *testing.T) {
	// Every job in range appears in exactly one window.
	submits := make([]float64, 0, 200)
	for i := 0; i < 200; i++ {
		submits = append(submits, float64(i*7%1000))
	}
	tr := mkTrace(submits...)
	tr.SortBySubmit()
	ws, err := Windows(tr, 250, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for wi, w := range ws {
		total += len(w)
		for _, j := range w {
			if j.Submit < 0 || j.Submit >= 250 {
				t.Errorf("window %d: rebased submit %v outside [0, 250)", wi, j.Submit)
			}
		}
	}
	if total != len(tr.Jobs) {
		t.Errorf("windows hold %d jobs, trace has %d", total, len(tr.Jobs))
	}
}
