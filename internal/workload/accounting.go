package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// AccountingRecord is one completed job as a resource manager's accounting
// log would report it: the job plus its scheduling outcome. It is what a
// simulation result exports so downstream SWF tooling (including this
// package's parser) can analyze a simulated schedule like a real log.
type AccountingRecord struct {
	Job  Job
	Wait float64 // seconds between submission and start
}

// WriteAccountingSWF writes completed-job records in Standard Workload
// Format with the wait-time field (field 3) populated — the full
// accounting view, unlike WriteSWF which writes a submission-only trace.
func WriteAccountingSWF(w io.Writer, name string, maxProcs int, recs []AccountingRecord) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "; SWF accounting log written by gensched\n")
	if name != "" {
		fmt.Fprintf(bw, "; Computer: %s\n", name)
	}
	fmt.Fprintf(bw, "; MaxProcs: %d\n", maxProcs)
	fmt.Fprintf(bw, "; MaxJobs: %d\n", len(recs))
	for _, r := range recs {
		fields := make([]string, swfFields)
		for i := range fields {
			fields[i] = "-1"
		}
		fields[0] = strconv.Itoa(r.Job.ID)
		fields[1] = formatSeconds(r.Job.Submit)
		fields[2] = formatSeconds(r.Wait)
		fields[3] = formatSeconds(r.Job.Runtime)
		fields[4] = strconv.Itoa(r.Job.Cores)
		fields[7] = strconv.Itoa(r.Job.Cores)
		fields[8] = formatSeconds(r.Job.Estimate)
		fields[10] = "1"
		if _, err := fmt.Fprintln(bw, strings.Join(fields, " ")); err != nil {
			return fmt.Errorf("workload: writing accounting swf: %w", err)
		}
	}
	return bw.Flush()
}

// ParseAccountingSWF reads an SWF stream keeping the wait-time field, so
// simulated schedules can be round-tripped and re-analyzed.
func ParseAccountingSWF(r io.Reader) ([]AccountingRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []AccountingRecord
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		fields := strings.Fields(line)
		job, ok, err := parseJobLine(fields)
		if err != nil {
			return nil, fmt.Errorf("workload: accounting swf line %d: %w", lineNo, err)
		}
		if !ok {
			continue
		}
		wait := 0.0
		if len(fields) > 2 {
			if v, err := strconv.ParseFloat(fields[2], 64); err == nil && v >= 0 {
				wait = v
			}
		}
		out = append(out, AccountingRecord{Job: job, Wait: wait})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading accounting swf: %w", err)
	}
	return out, nil
}
