package workload

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

const sampleSWF = `; Computer: Test Machine
; MaxProcs: 128
; UnixStartTime: 0
1 0 3 100 4 -1 -1 4 120 -1 1 -1 -1 -1 -1 -1 -1 -1
2 50 -1 200 -1 -1 -1 8 300 -1 1 -1 -1 -1 -1 -1 -1 -1
3 60 -1 -1 4 -1 -1 4 60 -1 0 -1 -1 -1 -1 -1 -1 -1
4 70 -1 10 2 -1 -1 2 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
`

func TestParseSWF(t *testing.T) {
	tr, err := ParseSWF(strings.NewReader(sampleSWF))
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxProcs != 128 {
		t.Errorf("MaxProcs = %d, want 128 (from header)", tr.MaxProcs)
	}
	if tr.Name != "Test Machine" {
		t.Errorf("Name = %q, want from Computer header", tr.Name)
	}
	// Job 3 has unknown runtime and must be skipped.
	if len(tr.Jobs) != 3 {
		t.Fatalf("parsed %d jobs, want 3", len(tr.Jobs))
	}
	j := tr.Jobs[0]
	if j.ID != 1 || j.Submit != 0 || j.Runtime != 100 || j.Cores != 4 || j.Estimate != 120 {
		t.Errorf("job 1 = %+v", j)
	}
	// Job 2: allocated procs is -1, falls back to requested procs (8).
	if tr.Jobs[1].Cores != 8 {
		t.Errorf("job 2 cores = %d, want 8 (requested fallback)", tr.Jobs[1].Cores)
	}
	// Job 4: estimate -1 falls back to runtime.
	if tr.Jobs[2].Estimate != 10 {
		t.Errorf("job 4 estimate = %v, want 10 (runtime fallback)", tr.Jobs[2].Estimate)
	}
	if tr.Header[";gensched-skipped"] != "1" {
		t.Errorf("skipped = %q, want 1", tr.Header[";gensched-skipped"])
	}
}

func TestParseSWFNoHeaderDerivesMaxProcs(t *testing.T) {
	tr, err := ParseSWF(strings.NewReader("1 0 -1 10 16 -1 -1 16 20 -1 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxProcs != 16 {
		t.Errorf("MaxProcs = %d, want 16 (derived)", tr.MaxProcs)
	}
}

func TestParseSWFBadLine(t *testing.T) {
	if _, err := ParseSWF(strings.NewReader("1 2 3\n")); err == nil {
		t.Error("short line accepted")
	}
	if _, err := ParseSWF(strings.NewReader("a b c d e f g h i\n")); err == nil {
		t.Error("non-numeric line accepted")
	}
}

func TestParseSWFSortsBySubmit(t *testing.T) {
	in := "2 100 -1 10 1 -1 -1 1 10 -1 1\n1 50 -1 10 1 -1 -1 1 10 -1 1\n"
	tr, err := ParseSWF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Jobs[0].ID != 1 {
		t.Error("jobs not sorted by submit time")
	}
}

func TestSWFRoundTrip(t *testing.T) {
	orig := &Trace{Name: "roundtrip", MaxProcs: 64, Jobs: []Job{
		{ID: 1, Submit: 0, Runtime: 10, Estimate: 20, Cores: 4},
		{ID: 2, Submit: 5.5, Runtime: 123.25, Estimate: 150, Cores: 64},
		{ID: 3, Submit: 99, Runtime: 1, Estimate: 1, Cores: 1},
	}}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.MaxProcs != orig.MaxProcs {
		t.Errorf("MaxProcs = %d, want %d", back.MaxProcs, orig.MaxProcs)
	}
	if len(back.Jobs) != len(orig.Jobs) {
		t.Fatalf("round-trip job count %d, want %d", len(back.Jobs), len(orig.Jobs))
	}
	for i := range orig.Jobs {
		if back.Jobs[i] != orig.Jobs[i] {
			t.Errorf("job %d: got %+v, want %+v", i, back.Jobs[i], orig.Jobs[i])
		}
	}
}

func TestSWFRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(ids []uint16, seeds []uint32) bool {
		n := len(ids)
		if len(seeds) < n {
			n = len(seeds)
		}
		if n == 0 {
			return true
		}
		tr := &Trace{MaxProcs: 1 << 20}
		for i := 0; i < n; i++ {
			tr.Jobs = append(tr.Jobs, Job{
				ID:       i + 1,
				Submit:   float64(seeds[i] % 100000),
				Runtime:  float64(seeds[i]%9999) + 1,
				Estimate: float64(seeds[i]%99999) + 1,
				Cores:    int(ids[i]%512) + 1,
			})
		}
		tr.SortBySubmit()
		var buf bytes.Buffer
		if err := WriteSWF(&buf, tr); err != nil {
			return false
		}
		back, err := ParseSWF(&buf)
		if err != nil {
			return false
		}
		if len(back.Jobs) != len(tr.Jobs) {
			return false
		}
		for i := range tr.Jobs {
			if back.Jobs[i] != tr.Jobs[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}
