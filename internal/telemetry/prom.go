package telemetry

import (
	"io"
	"math"
	"sort"
	"strconv"
)

// ExpositionWriter renders metrics in the Prometheus text exposition
// format (version 0.0.4). Families are emitted in the order they are
// added and label sets in sorted order, so a scrape of a quiesced
// server is byte-deterministic — which is what lets the exposition
// lint test diff a live scrape against format rules instead of
// eyeballing it.
type ExpositionWriter struct {
	buf []byte
	err error
}

func (w *ExpositionWriter) header(name, help, typ string) {
	w.buf = append(w.buf, "# HELP "...)
	w.buf = append(w.buf, name...)
	w.buf = append(w.buf, ' ')
	w.buf = append(w.buf, help...)
	w.buf = append(w.buf, "\n# TYPE "...)
	w.buf = append(w.buf, name...)
	w.buf = append(w.buf, ' ')
	w.buf = append(w.buf, typ...)
	w.buf = append(w.buf, '\n')
}

// appendValue renders a sample value. Prometheus accepts +Inf/-Inf/NaN
// literals, unlike JSON.
func appendValue(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	case math.IsNaN(v):
		return append(b, "NaN"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// Counter emits one counter family with a single unlabeled sample.
func (w *ExpositionWriter) Counter(name, help string, v uint64) {
	w.header(name, help, "counter")
	w.buf = append(w.buf, name...)
	w.buf = append(w.buf, ' ')
	w.buf = strconv.AppendUint(w.buf, v, 10)
	w.buf = append(w.buf, '\n')
}

// Gauge emits one gauge family with a single unlabeled sample.
func (w *ExpositionWriter) Gauge(name, help string, v float64) {
	w.header(name, help, "gauge")
	w.buf = append(w.buf, name...)
	w.buf = append(w.buf, ' ')
	w.buf = appendValue(w.buf, v)
	w.buf = append(w.buf, '\n')
}

// histSamples emits the _bucket/_sum/_count samples for one snapshot
// under the family name, with extraLabel (`key="value"` form, may be
// empty) spliced before the le label. Buckets are cumulative; empty
// leading buckets are elided but the +Inf bucket always appears and
// always equals _count.
func (w *ExpositionWriter) histSamples(name, extraLabel string, s HistSnapshot) {
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		last := i == len(s.Counts)-1
		if c == 0 && !last {
			// Empty buckets repeat the previous cumulative value; the
			// format permits sparse le sets as long as they stay sorted,
			// so skip them to keep scrapes compact. The +Inf bucket is
			// always emitted and always equals _count.
			continue
		}
		w.buf = append(w.buf, name...)
		w.buf = append(w.buf, "_bucket{"...)
		if extraLabel != "" {
			w.buf = append(w.buf, extraLabel...)
			w.buf = append(w.buf, ',')
		}
		w.buf = append(w.buf, `le="`...)
		if last {
			w.buf = append(w.buf, "+Inf"...)
		} else {
			w.buf = appendValue(w.buf, BucketUpper(i))
		}
		w.buf = append(w.buf, `"} `...)
		w.buf = strconv.AppendUint(w.buf, cum, 10)
		w.buf = append(w.buf, '\n')
	}
	lbl := ""
	if extraLabel != "" {
		lbl = "{" + extraLabel + "}"
	}
	w.buf = append(w.buf, name...)
	w.buf = append(w.buf, "_sum"...)
	w.buf = append(w.buf, lbl...)
	w.buf = append(w.buf, ' ')
	w.buf = appendValue(w.buf, s.Sum)
	w.buf = append(w.buf, '\n')
	w.buf = append(w.buf, name...)
	w.buf = append(w.buf, "_count"...)
	w.buf = append(w.buf, lbl...)
	w.buf = append(w.buf, ' ')
	w.buf = strconv.AppendUint(w.buf, cum, 10)
	w.buf = append(w.buf, '\n')
}

// Histogram emits one unlabeled histogram family.
func (w *ExpositionWriter) Histogram(name, help string, h *Histogram) {
	w.header(name, help, "histogram")
	w.histSamples(name, "", h.Snapshot())
}

// HistogramVec emits one histogram family partitioned by a label.
// Label values are emitted in sorted order for deterministic scrapes.
func (w *ExpositionWriter) HistogramVec(name, help, label string, series map[string]*Histogram) {
	w.header(name, help, "histogram")
	keys := make([]string, 0, len(series))
	//gensched:orderinvariant keys are sorted before any series is rendered
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.histSamples(name, label+`="`+k+`"`, series[k].Snapshot())
	}
}

// WriteTo flushes the rendered exposition to dst.
func (w *ExpositionWriter) WriteTo(dst io.Writer) (int64, error) {
	if w.err != nil {
		return 0, w.err
	}
	n, err := dst.Write(w.buf)
	return int64(n), err
}

// Bytes returns the rendered exposition.
func (w *ExpositionWriter) Bytes() []byte { return w.buf }

// WriteSink renders every metric in s under the gensched_ namespace.
// The family order is fixed; adding a family means appending here and
// to the README metric table.
func WriteSink(w *ExpositionWriter, s *Sink) {
	if s == nil {
		return
	}
	w.Counter("gensched_jobs_submitted_total", "Jobs accepted into the queue.", s.Submitted.Load())
	w.Counter("gensched_jobs_started_total", "Jobs started (head-of-queue and backfill).", s.Started.Load())
	w.Counter("gensched_jobs_backfilled_total", "Jobs started by backfilling past the queue head.", s.Backfilled.Load())
	w.Counter("gensched_jobs_completed_total", "Jobs finished.", s.Completed.Load())
	w.Counter("gensched_policy_swaps_total", "Hot policy swaps applied.", s.PolicySwaps.Load())
	w.Counter("gensched_adapt_rounds_total", "Adaptive rounds that reached a verdict.", s.AdaptRounds.Load())
	w.Counter("gensched_adapt_promotions_total", "Adaptive rounds that promoted a candidate policy.", s.Promotions.Load())
	w.Counter("gensched_wal_records_total", "Records appended to the write-ahead log.", s.WALRecords.Load())
	w.Counter("gensched_wal_bytes_total", "Frame bytes appended to the write-ahead log.", s.WALBytes.Load())
	w.Counter("gensched_wal_syncs_total", "Write-ahead log fsync batches.", s.WALSyncs.Load())
	w.Counter("gensched_wal_checkpoints_total", "Snapshot checkpoints written.", s.Checkpoints.Load())
	w.Counter("gensched_sched_passes_total", "Scheduling passes run.", s.Passes())
	w.Histogram("gensched_job_wait_seconds", "Logical seconds queued before start.", &s.Wait)
	w.Histogram("gensched_job_bounded_slowdown", "Bounded slowdown at completion.", &s.Slowdown)
	w.Histogram("gensched_queue_depth", "Queue length, sampled every 8th scheduling pass.", &s.QueueDepth)
	w.Histogram("gensched_adapt_drift_nats", "Adaptive KL drift per round (finite rounds).", &s.Drift)
	w.Histogram("gensched_wal_sync_batch_records", "Records covered per fsync batch.", &s.SyncBatch)
	if s.Trace != nil {
		w.Counter("gensched_trace_events_total", "Decision-trace events recorded.", s.Trace.Total())
		w.Counter("gensched_trace_events_dropped_total", "Decision-trace events overwritten before export.", s.Trace.Dropped())
	}
}
