package telemetry

import "testing"

// BenchmarkSinkJobLifecycle is the per-job instrumentation cost the
// online scheduler pays with telemetry enabled: one submit, one start,
// one completion and two queue passes. The OnlineThroughputTelemetry/
// OnlineThroughput CI ratio gate bounds the same cost end to end; this
// bench localizes it.
func BenchmarkSinkJobLifecycle(b *testing.B) {
	s := NewSink(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := float64(i)
		s.JobSubmitted(now, i)
		s.Pass(now, 3)
		s.JobStarted(now+30, i, 30, i%8 == 0)
		s.Pass(now+30, 2)
		s.JobCompleted(now+90, i, 30, 1.5)
	}
}

// BenchmarkSinkDisabled is the same call pattern through a nil sink —
// the contract that disabled telemetry costs one nil check per hook.
func BenchmarkSinkDisabled(b *testing.B) {
	var s *Sink
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := float64(i)
		s.JobSubmitted(now, i)
		s.Pass(now, 3)
		s.JobStarted(now+30, i, 30, i%8 == 0)
		s.Pass(now+30, 2)
		s.JobCompleted(now+90, i, 30, 1.5)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) + 0.5)
	}
}

func BenchmarkTracerRecord(b *testing.B) {
	tr := NewTracer(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Record(Event{Time: float64(i), Kind: EvSubmit, Job: int64(i), A: 1})
	}
}
