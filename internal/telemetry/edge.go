package telemetry

import "sync"

// Edge holds the per-endpoint latency histograms a daemon feeds at its
// HTTP boundary. The durations it records are WALL-CLOCK seconds —
// measured by the caller, at the edge, with time.Since — which is
// exactly why this type is quarantined: genschedvet's detlint forbids
// NewEdge and Edge methods inside deterministic zones, so a wall-clock
// latency can never leak into a schedule, a trace, or a journal.
// Everything else in this package is logical-clock only.
//
// Unlike the Sink, Edge is written by concurrent HTTP handler
// goroutines outside the server mutex, so it carries its own lock —
// the edge path can afford one; the scheduler hot path cannot. The
// endpoint set is fixed at construction, so the map itself is never
// mutated and a scrape never observes a half-built series.
type Edge struct {
	mu        sync.Mutex
	endpoints []string // sorted, fixed at construction
	series    map[string]*Histogram
}

// NewEdge returns an Edge tracking exactly the given endpoints.
// Observations for unknown endpoints are dropped.
func NewEdge(endpoints ...string) *Edge {
	e := &Edge{series: make(map[string]*Histogram, len(endpoints))}
	for _, ep := range endpoints {
		if _, dup := e.series[ep]; dup {
			continue
		}
		e.series[ep] = &Histogram{}
		e.endpoints = append(e.endpoints, ep)
	}
	return e
}

// Observe records one request's wall-clock latency in seconds for the
// endpoint. Nil-receiver safe, like the Sink hooks.
func (e *Edge) Observe(endpoint string, seconds float64) {
	if e == nil {
		return
	}
	if h := e.series[endpoint]; h != nil {
		e.mu.Lock()
		h.Observe(seconds)
		e.mu.Unlock()
	}
}

// WriteExposition emits the per-endpoint latency family.
func (e *Edge) WriteExposition(w *ExpositionWriter) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	w.HistogramVec("gensched_http_request_duration_seconds",
		"Wall-clock request latency measured at the daemon edge.",
		"endpoint", e.series)
}
