package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestBucketBoundaries pins the exact power-of-two bucketing: an upper
// bound is inclusive, the next representable value above it belongs to
// the next bucket, and the degenerate inputs (zero, negative, NaN, Inf)
// land where documented.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{-3, 0},
		{math.NaN(), 0},
		{math.Ldexp(1, histMinExp), 0}, // 2^-20: inclusive bound of bucket 0
		{math.Nextafter(math.Ldexp(1, histMinExp), 2), 1}, // just above it
		{math.Ldexp(1, histMinExp-5), 0},                  // below the smallest bound
		{1, 20},                                           // 2^0 → bucket with upper bound 1
		{math.Nextafter(1, 2), 21},                        // just above 1
		{0.75, 20},                                        // (0.5, 1]
		{0.5, 19},                                         // exactly 2^-1
		{1024, 30},                                        // 2^10
		{math.Ldexp(1, histMaxExp), HistBuckets - 2},                              // largest finite bound, inclusive
		{math.Nextafter(math.Ldexp(1, histMaxExp), math.Inf(1)), HistBuckets - 1}, // overflows
		{math.Inf(1), HistBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every finite bucket's upper bound must classify into its own
	// bucket (inclusive upper bounds), and the value just above into the
	// next.
	for i := 0; i < HistBuckets-1; i++ {
		ub := BucketUpper(i)
		if got := bucketIndex(ub); got != i {
			t.Errorf("bucketIndex(BucketUpper(%d)=%g) = %d, want %d", i, ub, got, i)
		}
		if got := bucketIndex(math.Nextafter(ub, math.Inf(1))); got != i+1 {
			t.Errorf("bucketIndex(just above BucketUpper(%d)) = %d, want %d", i, got, i+1)
		}
	}
	if !math.IsInf(BucketUpper(HistBuckets-1), 1) {
		t.Errorf("last bucket upper bound = %g, want +Inf", BucketUpper(HistBuckets-1))
	}
}

func TestHistogramObserveAndSum(t *testing.T) {
	var h Histogram
	for _, v := range []float64{0.25, 0.25, 1, 30, 1e6} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got, want := h.Sum(), 0.25+0.25+1+30+1e6; got != want {
		t.Fatalf("Sum = %g, want %g", got, want)
	}
	// Non-finite observations count but do not poison the sum.
	h.Observe(math.Inf(1))
	h.Observe(math.NaN())
	if got := h.Count(); got != 7 {
		t.Fatalf("Count after non-finite = %d, want 7", got)
	}
	if got := h.Sum(); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("Sum poisoned by non-finite observation: %g", got)
	}
	s := h.Snapshot()
	if s.Total() != h.Count() {
		t.Fatalf("Snapshot.Total %d != Count %d", s.Total(), h.Count())
	}
}

// TestHistogramMerge pins that merging is exact: the merged histogram
// equals one that observed both streams directly, bucket for bucket and
// in the sum.
func TestHistogramMerge(t *testing.T) {
	a, b, both := &Histogram{}, &Histogram{}, &Histogram{}
	va := []float64{0.001, 3, 3, 900, 1e9}
	vb := []float64{0.5, 64, 1e-7, 7e12}
	for _, v := range va {
		a.Observe(v)
		both.Observe(v)
	}
	for _, v := range vb {
		b.Observe(v)
		both.Observe(v)
	}
	a.Merge(b)
	sa, sb := a.Snapshot(), both.Snapshot()
	if sa.Counts != sb.Counts {
		t.Fatalf("merged buckets diverge:\n merged: %v\n direct: %v", sa.Counts, sb.Counts)
	}
	if sa.Total() != uint64(len(va)+len(vb)) {
		t.Fatalf("merged Total = %d, want %d", sa.Total(), len(va)+len(vb))
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Time: float64(i), Kind: EvSubmit, Job: int64(i)})
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := tr.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := tr.Events(1, 0)
	if len(evs) != 4 {
		t.Fatalf("Events len = %d, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(6 + i); e.Seq != want {
			t.Errorf("event %d: Seq = %d, want %d (oldest-first after wrap)", i, e.Seq, want)
		}
	}
	// Sampling keeps multiples of K; limit caps to the most recent.
	evs = tr.Events(2, 0)
	for _, e := range evs {
		if e.Seq%2 != 0 {
			t.Errorf("sample=2 returned Seq %d", e.Seq)
		}
	}
	evs = tr.Events(1, 2)
	if len(evs) != 2 || evs[0].Seq != 8 || evs[1].Seq != 9 {
		t.Errorf("limit=2 returned %+v, want seqs 8,9", evs)
	}
}

// TestTracerJobKindPacking pins the slot packing: the kind and the
// signed job share one word (meta = job<<8 | kind), so every job value
// within the documented 56-bit range — including negative ones — must
// round-trip exactly alongside its kind.
func TestTracerJobKindPacking(t *testing.T) {
	jobs := []int64{0, 1, -1, 42, -42, 1<<55 - 1, -(1 << 55)}
	kinds := []EventKind{EvSubmit, EvComplete, EvWALCheckpoint}
	tr := NewTracer(len(jobs) * len(kinds))
	for _, j := range jobs {
		for _, k := range kinds {
			tr.Record(Event{Time: 1, Kind: k, Job: j})
		}
	}
	evs := tr.Events(1, 0)
	if len(evs) != len(jobs)*len(kinds) {
		t.Fatalf("Events len = %d, want %d", len(evs), len(jobs)*len(kinds))
	}
	for i, e := range evs {
		wantJob, wantKind := jobs[i/len(kinds)], kinds[i%len(kinds)]
		if e.Job != wantJob || e.Kind != wantKind {
			t.Errorf("event %d: (job, kind) = (%d, %v), want (%d, %v)", i, e.Job, e.Kind, wantJob, wantKind)
		}
	}
}

// TestJSONLDeterministic pins the wire format: identical event streams
// render to identical bytes, floats use shortest round-trip formatting,
// and non-finite payloads render as null.
func TestJSONLDeterministic(t *testing.T) {
	build := func() *Tracer {
		tr := NewTracer(16)
		tr.Record(Event{Time: 0, Kind: EvSubmit, Job: 1, A: 0})
		tr.Record(Event{Time: 1.5, Kind: EvStart, Job: 1, A: 1.5})
		tr.Record(Event{Time: 3600, Kind: EvAdapt, Job: 1, A: 1, B: math.Inf(1), Str: "promoted"})
		tr.Record(Event{Time: 7200, Kind: EvComplete, Job: 1, A: 33.25, B: 2.5})
		return tr
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteJSONL(&b1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSONL(&b2, 1, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("identical streams rendered differently:\n%s\n---\n%s", b1.Bytes(), b2.Bytes())
	}
	lines := strings.Split(strings.TrimSpace(b1.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), b1.String())
	}
	for _, ln := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("line is not valid JSON: %q: %v", ln, err)
		}
	}
	if !strings.Contains(lines[2], `"kind":"adapt"`) || strings.Contains(lines[2], "Inf") {
		t.Fatalf("adapt line must carry kind and render +Inf as null: %q", lines[2])
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Event{Time: 1, Kind: EvStart, Job: 7, A: 0.5})
	tr.Record(Event{Time: 2, Kind: EvWALSync, A: 3})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, 1, 0); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(doc.TraceEvents) != 2 || doc.TraceEvents[0].Name != "start" || doc.TraceEvents[0].Ph != "i" {
		t.Fatalf("unexpected trace events: %+v", doc.TraceEvents)
	}
	if doc.TraceEvents[0].Ts != 1e6 {
		t.Fatalf("logical seconds must map to microseconds: ts = %g", doc.TraceEvents[0].Ts)
	}
}

// TestNilSink pins the disabled-telemetry contract: every hook on a nil
// sink is a no-op, not a panic.
func TestNilSink(t *testing.T) {
	var s *Sink
	s.JobSubmitted(0, 1)
	s.JobStarted(1, 1, 1, true)
	s.JobCompleted(2, 1, 1, 1)
	s.Pass(2, 3)
	s.PolicySwapped(2, "F1")
	s.AdaptRound(3, 1, "promoted", 0.5, true)
	s.WALAppend(3, 0, 64)
	s.WALSync(3, 1)
	s.WALCheckpoint(3, 5, 128)
	var e *Edge
	e.Observe("submit", 0.1)
	var w ExpositionWriter
	e.WriteExposition(&w)
	WriteSink(&w, nil)
	if len(w.Bytes()) != 0 {
		t.Fatalf("nil sink/edge rendered %d bytes", len(w.Bytes()))
	}
}

// TestConcurrentScrape exercises the documented concurrency discipline
// under -race: the Sink is plain single-writer state, so the writer (a
// stand-in for the scheduler thread) and the scrapers synchronize on
// one shared mutex — exactly how the daemon guards the sink with its
// server mutex. The Edge, by contrast, is hammered from several
// goroutines with NO external lock, because its contract is internal
// locking. The scrape checks also pin internal monotonicity: a
// snapshot's +Inf cumulative always equals its own total.
func TestConcurrentScrape(t *testing.T) {
	s := NewSink(256)
	e := NewEdge("submit", "status")
	var mu sync.Mutex // plays the daemon's server mutex
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			now := float64(i)
			mu.Lock()
			s.JobSubmitted(now, i)
			s.JobStarted(now, i, float64(i%97), i%3 == 0)
			s.JobCompleted(now, i, float64(i%97), 1+float64(i%11))
			s.Pass(now, i%13)
			s.WALAppend(now, uint64(i), 64)
			mu.Unlock()
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				e.Observe("submit", float64(i%7)/100)
				e.Observe("status", 0.001)
			}
		}(w)
	}
	for scrape := 0; scrape < 50; scrape++ {
		mu.Lock()
		snap := s.Wait.Snapshot()
		var ew ExpositionWriter
		WriteSink(&ew, s)
		var buf bytes.Buffer
		err := s.Trace.WriteJSONL(&buf, 4, 32)
		mu.Unlock()
		var cum uint64
		for _, c := range snap.Counts {
			cum += c
		}
		if cum != snap.Total() {
			t.Errorf("scrape %d: cumulative %d != total %d", scrape, cum, snap.Total())
		}
		if len(ew.Bytes()) == 0 {
			t.Errorf("scrape %d: empty exposition", scrape)
		}
		if err != nil {
			t.Errorf("scrape %d: %v", scrape, err)
		}
		var edgeW ExpositionWriter
		e.WriteExposition(&edgeW)
		if len(edgeW.Bytes()) == 0 {
			t.Errorf("scrape %d: empty edge exposition", scrape)
		}
	}
	close(stop)
	wg.Wait()
}

// TestExpositionFormat pins the histogram rendering rules: cumulative
// buckets are monotone, the +Inf bucket equals _count, and vec labels
// come out sorted.
func TestExpositionFormat(t *testing.T) {
	var h Histogram
	for _, v := range []float64{0.5, 0.5, 3, 1e9} {
		h.Observe(v)
	}
	var w ExpositionWriter
	w.Histogram("test_hist", "help text", &h)
	out := string(w.Bytes())
	if !strings.Contains(out, "# HELP test_hist help text\n# TYPE test_hist histogram\n") {
		t.Fatalf("missing HELP/TYPE header:\n%s", out)
	}
	if !strings.Contains(out, `test_hist_bucket{le="+Inf"} 4`) {
		t.Fatalf("+Inf bucket must equal the observation count:\n%s", out)
	}
	if !strings.Contains(out, "test_hist_count 4") || !strings.Contains(out, "test_hist_sum 1.000000004e+09") {
		t.Fatalf("missing _count/_sum samples:\n%s", out)
	}

	var wv ExpositionWriter
	wv.HistogramVec("lat", "l", "endpoint", map[string]*Histogram{
		"zeta": {}, "alpha": {},
	})
	out = string(wv.Bytes())
	if strings.Index(out, `endpoint="alpha"`) > strings.Index(out, `endpoint="zeta"`) {
		t.Fatalf("vec labels must render sorted:\n%s", out)
	}
}

func TestEdgeFixedEndpoints(t *testing.T) {
	e := NewEdge("submit", "status", "submit") // duplicate collapses
	e.Observe("submit", 0.25)
	e.Observe("unknown", 99) // dropped, not a panic or a new series
	var w ExpositionWriter
	e.WriteExposition(&w)
	out := string(w.Bytes())
	if !strings.Contains(out, `endpoint="submit"`) || strings.Contains(out, "unknown") {
		t.Fatalf("unexpected exposition:\n%s", out)
	}
	if strings.Count(out, `endpoint="submit"`) == 0 {
		t.Fatalf("submit series missing:\n%s", out)
	}
}
