package telemetry

import "math"

// Sink bundles the counters, histograms and tracer one scheduler
// instance reports into. Every method is nil-receiver safe: an
// uninstrumented scheduler holds a nil *Sink and each hook costs one
// nil check — no allocation, no atomic, no branch on a config struct —
// which is what lets the differential suites pin that attaching
// telemetry changes no output bit.
//
// An enabled hook is plain arithmetic on single-writer state: the
// scheduler thread is the only writer, and readers synchronize on the
// writer's external lock (the daemon's server mutex) — see the package
// comment for why the hot path carries no atomics of its own.
type Sink struct {
	// Counters.
	Submitted   Counter // jobs accepted into the queue
	Started     Counter // jobs started, head-of-queue and backfill alike
	Backfilled  Counter // subset of Started that jumped the queue head
	Completed   Counter // jobs finished
	PolicySwaps Counter // hot policy swaps applied
	AdaptRounds Counter // adaptive rounds that reached a verdict
	Promotions  Counter // adaptive rounds that promoted a candidate
	WALRecords  Counter // records appended to the write-ahead log
	WALBytes    Counter // frame bytes appended to the write-ahead log
	WALSyncs    Counter // fsync batches
	Checkpoints Counter // snapshot checkpoints written

	// Histograms over logical-clock quantities.
	Wait       Histogram // seconds queued before start
	Slowdown   Histogram // bounded slowdown at completion
	QueueDepth Histogram // queue length, sampled every 8th scheduling pass
	Drift      Histogram // adaptive KL drift (nats), finite rounds only
	SyncBatch  Histogram // records per fsync batch

	Trace *Tracer

	passes uint64 // scheduling passes observed (drives QueueDepth sampling)
}

// NewSink returns a sink whose tracer retains traceCap events.
func NewSink(traceCap int) *Sink {
	return &Sink{Trace: NewTracer(traceCap)}
}

// Merge folds another sink's counters, histograms and pass count into s.
// The federation layer uses it to render one aggregate /metrics view over
// per-shard sinks: summing in fixed shard order keeps the merged values
// deterministic. Traces are NOT merged here — event streams interleave by
// (clock, shard, seq), which is the federation's job, not a sum.
func (s *Sink) Merge(o *Sink) {
	if s == nil || o == nil {
		return
	}
	s.Submitted.Add(o.Submitted.Load())
	s.Started.Add(o.Started.Load())
	s.Backfilled.Add(o.Backfilled.Load())
	s.Completed.Add(o.Completed.Load())
	s.PolicySwaps.Add(o.PolicySwaps.Load())
	s.AdaptRounds.Add(o.AdaptRounds.Load())
	s.Promotions.Add(o.Promotions.Load())
	s.WALRecords.Add(o.WALRecords.Load())
	s.WALBytes.Add(o.WALBytes.Load())
	s.WALSyncs.Add(o.WALSyncs.Load())
	s.Checkpoints.Add(o.Checkpoints.Load())
	s.Wait.Merge(&o.Wait)
	s.Slowdown.Merge(&o.Slowdown)
	s.QueueDepth.Merge(&o.QueueDepth)
	s.Drift.Merge(&o.Drift)
	s.SyncBatch.Merge(&o.SyncBatch)
	s.passes += o.passes
}

// trace records an event if tracing is on. Only the rare
// string-carrying hooks (policy swaps, adapt verdicts) go through
// here; the per-job hooks use traceFast.
func (s *Sink) trace(e Event) {
	if s.Trace != nil {
		s.Trace.Record(e)
	}
}

// traceFast records a string-free event if tracing is on. It passes
// scalars instead of an Event so the whole path — nil check, slot
// store, sequence increment — inlines into each hot hook with no
// 64-byte struct construction or copy.
func (s *Sink) traceFast(time float64, kind EventKind, job int64, a, b float64) {
	if tr := s.Trace; tr != nil {
		tr.record(time, kind, job, a, b)
	}
}

// JobSubmitted records a job entering the queue at logical time now.
func (s *Sink) JobSubmitted(now float64, id int) {
	if s == nil {
		return
	}
	s.Submitted.Inc()
	s.traceFast(now, EvSubmit, int64(id), now, 0)
}

// JobStarted records a job start. backfilled distinguishes a queue-head
// start from a backfill start.
func (s *Sink) JobStarted(now float64, id int, wait float64, backfilled bool) {
	if s == nil {
		return
	}
	s.Started.Inc()
	s.Wait.Observe(wait)
	kind := EvStart
	if backfilled {
		s.Backfilled.Inc()
		kind = EvBackfill
	}
	s.traceFast(now, kind, int64(id), wait, 0)
}

// JobCompleted records a job finishing with its wait and bounded
// slowdown.
func (s *Sink) JobCompleted(now float64, id int, wait, bsld float64) {
	if s == nil {
		return
	}
	s.Completed.Inc()
	s.Slowdown.Observe(bsld)
	s.traceFast(now, EvComplete, int64(id), wait, bsld)
}

// Pass records one scheduling pass over the queue. Queue depth enters
// the histogram every 8th pass: passes are the highest-frequency hook
// on the submit path, the depth distribution is statistically the same
// at an eighth the cost, and the sampling is deterministic — the pass
// count is a function of the workload, not of timing.
func (s *Sink) Pass(now float64, queued int) {
	if s == nil {
		return
	}
	if s.passes&7 == 0 {
		s.sampleQueueDepth(queued)
	}
	s.passes++
}

// sampleQueueDepth is the 1-in-8 cold path of Pass, held out of the
// inliner so that Pass itself — nil check, mask test, increment —
// stays within the inline budget at every scheduling pass.
//
//go:noinline
func (s *Sink) sampleQueueDepth(queued int) {
	s.QueueDepth.Observe(float64(queued))
}

// Passes returns the number of scheduling passes observed.
func (s *Sink) Passes() uint64 { return s.passes }

// PolicySwapped records a hot policy swap.
func (s *Sink) PolicySwapped(now float64, expr string) {
	if s == nil {
		return
	}
	s.PolicySwaps.Inc()
	s.trace(Event{Time: now, Kind: EvPolicy, Str: expr})
}

// AdaptRound records an adaptive round verdict. drift may be +Inf on
// the first round; only finite drifts enter the histogram, but the
// trace event always carries the round.
func (s *Sink) AdaptRound(now float64, round int, reason string, drift float64, promoted bool) {
	if s == nil {
		return
	}
	s.AdaptRounds.Inc()
	if !math.IsNaN(drift) && !math.IsInf(drift, 0) {
		s.Drift.Observe(drift)
	}
	var p int64
	if promoted {
		s.Promotions.Inc()
		p = 1
	}
	s.trace(Event{Time: now, Kind: EvAdapt, Job: p, A: float64(round), B: drift, Str: reason})
}

// WALAppend records one journal append of frameBytes at journal
// sequence seq.
func (s *Sink) WALAppend(now float64, seq uint64, frameBytes int) {
	if s == nil {
		return
	}
	s.WALRecords.Inc()
	s.WALBytes.Add(uint64(frameBytes))
	s.traceFast(now, EvWALAppend, int64(seq), float64(frameBytes), 0)
}

// WALSync records one fsync covering batch records.
func (s *Sink) WALSync(now float64, batch int) {
	if s == nil {
		return
	}
	s.WALSyncs.Inc()
	s.SyncBatch.Observe(float64(batch))
	s.traceFast(now, EvWALSync, 0, float64(batch), 0)
}

// WALCheckpoint records a snapshot checkpoint at journal sequence seq
// with the encoded snapshot size.
func (s *Sink) WALCheckpoint(now float64, seq uint64, snapBytes int) {
	if s == nil {
		return
	}
	s.Checkpoints.Inc()
	s.traceFast(now, EvWALCheckpoint, int64(seq), float64(snapBytes), 0)
}
