package telemetry

import (
	"io"
	"math"
	"strconv"
)

// EventKind identifies what a trace event records.
type EventKind uint8

const (
	// EvSubmit: a job entered the queue. Job = id, A = submit time.
	EvSubmit EventKind = iota
	// EvStart: a job started at the head of the queue. Job = id,
	// A = wait, B = queue position is not recorded (always head).
	EvStart
	// EvBackfill: a job started by backfilling past the queue head.
	// Job = id, A = wait.
	EvBackfill
	// EvComplete: a job finished. Job = id, A = wait, B = bounded
	// slowdown.
	EvComplete
	// EvPolicy: the scoring policy was hot-swapped. Str = expression.
	EvPolicy
	// EvAdapt: an adaptive round reached a verdict. A = round number,
	// B = observed drift in nats (omitted when non-finite), Str =
	// verdict reason, Job = 1 if a candidate was promoted else 0.
	EvAdapt
	// EvWALAppend: a record was appended to the write-ahead log.
	// Job = journal sequence, A = frame bytes.
	EvWALAppend
	// EvWALSync: the WAL was fsynced. A = records in the batch.
	EvWALSync
	// EvWALCheckpoint: a snapshot checkpoint was written and old
	// segments rotated out. Job = snapshot sequence, A = snapshot bytes.
	EvWALCheckpoint

	numEventKinds
)

// eventNames are the stable wire names; index = EventKind.
var eventNames = [numEventKinds]string{
	"submit", "start", "backfill", "complete",
	"policy", "adapt", "wal_append", "wal_sync", "wal_checkpoint",
}

// String returns the stable wire name of the kind.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return "unknown"
}

// Event is one decision-trace record. Time is the scheduler's logical
// clock, never a wall clock; Seq is a monotonic per-tracer sequence
// that totally orders events sharing a logical instant.
type Event struct {
	Seq  uint64
	Time float64
	Kind EventKind
	Job  int64   // job id / journal seq / promoted flag, per kind
	A    float64 // first numeric payload, per kind
	B    float64 // second numeric payload, per kind
	Str  string  // expression or verdict reason, per kind
}

// slot is an Event as stored in the ring: 32 bytes against Event's 64,
// two slots per cache line. Seq is implicit (a retained slot at ring
// position p holds sequence p modulo wraparound), Str lives in a
// seq-keyed side list — the hot event kinds (submit, start, backfill,
// complete, WAL appends) never carry a string — and the kind is packed
// into the job word's low byte: meta = job<<8 | kind, with the signed
// job recovered by an arithmetic shift. Job values (job ids, journal
// sequences, a promoted flag) therefore live in 56 bits, |job| < 2^55 —
// a journal would need to append at a million records a second for a
// millennium to overflow that. The ring is the telemetry hot path's
// main cache load: Record streams one dirtied slot per event through
// the ring, so every byte shaved here is submit-path throughput.
type slot struct {
	time float64
	a    float64
	b    float64
	meta uint64 // job<<8 | kind
}

// strEntry associates a rare event's string payload with its sequence.
type strEntry struct {
	seq uint64
	str string
}

// Tracer is a bounded ring buffer of Events. When full, the oldest
// events are overwritten and Dropped counts them; Seq keeps advancing,
// so consumers can detect gaps. Like the rest of the Sink, the tracer
// is plain single-writer state: Record runs on the scheduler thread,
// a hot path where it must cost one compact store, and any concurrent
// reader holds the writer's external lock (the daemon's server mutex).
type Tracer struct {
	ring []slot
	mask uint64     // len(ring)-1; the ring length is a power of two
	next uint64     // next sequence to assign; also total events ever recorded
	strs []strEntry // string payloads of retained rare events, seq-ascending
}

// NewTracer returns a tracer holding at least capacity events; the
// ring is sized to the next power of two so Record indexes with a mask
// instead of a division. capacity < 1 is clamped to 1.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Tracer{ring: make([]slot, n), mask: uint64(n - 1)}
}

// Record appends one event, assigning its sequence number. The e.Seq
// field is ignored — sequences are the tracer's to assign. Record is
// the general entry point and is too big to inline; the per-job hooks
// in sink.go bypass it through record, the call-free scalar core.
func (tr *Tracer) Record(e Event) {
	if e.Str != "" {
		tr.recordWithStr(e)
		return
	}
	tr.record(e.Time, e.Kind, e.Job, e.A, e.B)
}

// record appends a string-free event's payload: one compact store and
// an increment, no Event construction, no calls — small enough that it
// inlines into every hot hook, which is what keeps an instrumented
// submit within the CI overhead gate.
func (tr *Tracer) record(time float64, kind EventKind, job int64, a, b float64) {
	tr.ring[tr.next&tr.mask] = slot{time: time, a: a, b: b, meta: uint64(job)<<8 | uint64(kind)}
	tr.next++
}

// recordWithStr records an event that carries a string payload, storing
// the string in the seq-keyed side list and pruning entries whose
// events have been overwritten. Only the rare kinds (policy swaps,
// adapt verdicts) carry strings, so this path stays off the per-job hot
// path and the list stays short.
func (tr *Tracer) recordWithStr(e Event) {
	cap64 := uint64(len(tr.ring))
	if tr.next+1 > cap64 {
		low := tr.next + 1 - cap64 // oldest seq still retained once this event lands
		i := 0
		for i < len(tr.strs) && tr.strs[i].seq < low {
			i++
		}
		if i > 0 {
			tr.strs = append(tr.strs[:0], tr.strs[i:]...)
		}
	}
	tr.strs = append(tr.strs, strEntry{seq: tr.next, str: e.Str})
	tr.record(e.Time, e.Kind, e.Job, e.A, e.B)
}

// Len returns the number of events currently retained.
func (tr *Tracer) Len() int {
	if tr.next < uint64(len(tr.ring)) {
		return int(tr.next)
	}
	return len(tr.ring)
}

// Dropped returns how many events were overwritten before they could
// be read.
func (tr *Tracer) Dropped() uint64 {
	if n := uint64(len(tr.ring)); tr.next > n {
		return tr.next - n
	}
	return 0
}

// Total returns how many events were ever recorded.
func (tr *Tracer) Total() uint64 { return tr.next }

// Events returns the retained events oldest-first, reconstructing each
// Event from its compact slot (sequence from ring position, string
// payload from the side list). sample > 1 keeps only events whose Seq
// is a multiple of sample; limit > 0 caps the result to the most
// recent limit events after sampling.
func (tr *Tracer) Events(sample int, limit int) []Event {
	n := tr.next
	cap64 := uint64(len(tr.ring))
	start := uint64(0)
	if n > cap64 {
		start = n - cap64
	}
	out := make([]Event, 0, n-start)
	si := 0 // walks tr.strs in step with the ascending seq scan
	for s := start; s < n; s++ {
		for si < len(tr.strs) && tr.strs[si].seq < s {
			si++
		}
		if sample > 1 && s%uint64(sample) != 0 {
			continue
		}
		sl := tr.ring[s&tr.mask]
		e := Event{Seq: s, Time: sl.time, Kind: EventKind(sl.meta), Job: int64(sl.meta) >> 8, A: sl.a, B: sl.b}
		if si < len(tr.strs) && tr.strs[si].seq == s {
			e.Str = tr.strs[si].str
		}
		out = append(out, e)
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// appendFloat renders f deterministically: shortest round-trip 'g'
// formatting, with non-finite values rendered as JSON null (JSON has
// no Inf/NaN literals, and the adaptive loop's first-round drift is
// +Inf by construction).
func appendFloat(b []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(b, "null"...)
	}
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}

// AppendEventJSON renders one event as a single-line JSON object with
// keys in fixed order, without the trailing newline. Exported so the
// federation layer can splice per-shard fields into the same canonical
// rendering instead of growing a second, drifting formatter.
func AppendEventJSON(b []byte, e Event) []byte { return appendEventJSON(b, e) }

// appendEventJSON renders one event as a single-line JSON object with
// keys in fixed order. Hand-rolled rather than encoding/json so the
// byte stream is reproducible by construction and allocation-light.
func appendEventJSON(b []byte, e Event) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, e.Seq, 10)
	b = append(b, `,"t":`...)
	b = appendFloat(b, e.Time)
	b = append(b, `,"kind":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, '"')
	if e.Job != 0 || e.Kind == EvSubmit || e.Kind == EvStart || e.Kind == EvBackfill || e.Kind == EvComplete {
		b = append(b, `,"job":`...)
		b = strconv.AppendInt(b, e.Job, 10)
	}
	if e.A != 0 {
		b = append(b, `,"a":`...)
		b = appendFloat(b, e.A)
	}
	if e.B != 0 && !math.IsNaN(e.B) && !math.IsInf(e.B, 0) {
		b = append(b, `,"b":`...)
		b = appendFloat(b, e.B)
	}
	if e.Str != "" {
		b = append(b, `,"str":`...)
		b = strconv.AppendQuote(b, e.Str)
	}
	b = append(b, '}')
	return b
}

// WriteEventsJSONL writes events as one JSON object per line, oldest
// first. The byte stream is deterministic for a deterministic event
// stream. Split from the Tracer so a daemon can copy the ring under
// its lock and render to a slow client after releasing it.
func WriteEventsJSONL(w io.Writer, events []Event) error {
	var buf []byte
	for _, e := range events {
		buf = appendEventJSON(buf[:0], e)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL writes the retained events as one JSON object per line,
// oldest first.
func (tr *Tracer) WriteJSONL(w io.Writer, sample, limit int) error {
	return WriteEventsJSONL(w, tr.Events(sample, limit))
}

// WriteEventsChrome writes events in the Chrome trace-event JSON
// format (instant events, ph "i"), loadable in chrome://tracing and
// Perfetto. Logical seconds map to microseconds on the trace timeline.
func WriteEventsChrome(w io.Writer, events []Event) error {
	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	var buf []byte
	for i, e := range events {
		buf = buf[:0]
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"name":"`...)
		buf = append(buf, e.Kind.String()...)
		buf = append(buf, `","ph":"i","s":"g","pid":1,"tid":1,"ts":`...)
		buf = appendFloat(buf, e.Time*1e6)
		buf = append(buf, `,"args":{"seq":`...)
		buf = strconv.AppendUint(buf, e.Seq, 10)
		buf = append(buf, `,"job":`...)
		buf = strconv.AppendInt(buf, e.Job, 10)
		buf = append(buf, `,"a":`...)
		buf = appendFloat(buf, e.A)
		buf = append(buf, `,"b":`...)
		buf = appendFloat(buf, e.B)
		if e.Str != "" {
			buf = append(buf, `,"str":`...)
			buf = strconv.AppendQuote(buf, e.Str)
		}
		buf = append(buf, `}}`...)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// WriteChromeTrace writes the retained events in the Chrome
// trace-event JSON format.
func (tr *Tracer) WriteChromeTrace(w io.Writer, sample, limit int) error {
	return WriteEventsChrome(w, tr.Events(sample, limit))
}
