// Package telemetry is the determinism-safe instrumentation layer for
// the online scheduling subsystem: event counters, fixed-log-bucket
// histograms, and a ring-buffer decision tracer, all stamped with the
// LOGICAL clock the scheduler already runs on — the package never reads
// a wall clock, spawns a goroutine, or consults the environment, so it
// lives inside the determinism boundary (genschedvet's zone table) and
// attaching it to a scheduler changes no output bit.
//
// The one deliberately wall-clock-adjacent type is Edge (edge.go): the
// per-endpoint latency histograms a daemon feeds with durations it
// measured itself at its HTTP boundary. Edge still performs no clock
// reads — the caller passes elapsed seconds in — but because any value
// fed to it is meaningless off the daemon edge, detlint forbids the
// Edge API inside deterministic zones outright.
//
// # Concurrency and determinism
//
// Counter, Histogram, Tracer and Sink are PLAIN, SINGLE-WRITER state:
// no atomics, no internal locks. Every instrumented event is emitted
// from the single scheduler thread (the daemon serializes all scheduler
// mutations under one server mutex; the adaptive loop's internal worker
// pools emit nothing), and readers — /metrics scrapes, /v1/trace
// exports — synchronize on that same external mutex. The replay and
// differential suites are single-goroutine, so they need no lock at
// all. This is what keeps a hook down to a few nanoseconds of plain
// arithmetic — the CI ratio gate bounds the instrumented submit path to
// ≥ 95% of bare throughput, a budget per-hook atomics cannot meet — and
// it is also what makes the recorded state bit-deterministic: for a
// fixed seed the trace and the final counter/histogram values are
// identical across worker counts, which the golden-trace tests pin.
//
// Edge is the exception: HTTP handlers record latencies concurrently,
// outside the server mutex, so Edge carries its own internal lock.
package telemetry

import "math"

// Counter is a monotonically increasing event count. Plain state:
// writes come from the single scheduler thread, and concurrent readers
// must hold the same external lock as the writer (see the package
// comment).
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v }

// Histogram bucket layout: fixed power-of-two boundaries, identical on
// every platform. Bucket i covers (2^(minExp+i-1), 2^(minExp+i)] for
// i in [1, finiteBuckets); bucket 0 additionally absorbs everything at
// or below 2^minExp (including zero and negative observations), and the
// last bucket is the +Inf overflow. Classification reads the float's
// exponent bits directly — exact bit manipulation, no logarithm — so a
// value can never land in a different bucket on a different libm, and
// an Observe on the scheduler hot path costs a few integer ops.
const (
	histMinExp = -20 // smallest finite upper bound: 2^-20 s ≈ 0.95 µs
	histMaxExp = 40  // largest finite upper bound: 2^40 s ≈ 35000 years
	// HistBuckets is the total bucket count: one bucket per finite
	// upper bound 2^minExp..2^maxExp, plus the +Inf overflow.
	HistBuckets = histMaxExp - histMinExp + 2
)

// Histogram is a fixed-log-bucket histogram. The zero value is ready.
// Observations are exact-bucketed (Frexp, not log). Like Counter it is
// plain single-writer state — one thread observes, readers share its
// lock — which makes Observe one bucket increment plus one float add,
// and the sum bit-deterministic by construction.
type Histogram struct {
	counts [HistBuckets]uint64
	sum    float64
}

// bucketIndex classifies v. Exact powers of two belong to the bucket
// they bound: v ∈ (2^(e-1), 2^e] maps to upper bound 2^e. Equivalent
// to classifying with math.Frexp (the boundary test pins this), but on
// the raw exponent bits: a subnormal's computed exponent lands far
// below histMinExp and clamps to bucket 0 like every other tiny value.
func bucketIndex(v float64) int {
	if !(v > 0) {
		return 0 // zero, negative, NaN
	}
	bits := math.Float64bits(v)
	exp := int(bits>>52) - 1023 // unbiased exponent; the sign bit is clear since v > 0
	if bits&(1<<52-1) != 0 {
		exp++ // not an exact power of two: v ∈ (2^exp, 2^(exp+1)), the bucket above
	}
	// Now v ∈ (2^(exp-1), 2^exp]: the bucket whose upper bound is 2^exp.
	i := exp - histMinExp
	if i < 0 {
		return 0
	}
	if i >= HistBuckets-1 {
		return HistBuckets - 1 // +Inf's exponent (1024) lands here too — no separate check
	}
	return i
}

// BucketUpper returns bucket i's inclusive upper bound (+Inf for the
// overflow bucket).
func BucketUpper(i int) float64 {
	if i >= HistBuckets-1 {
		return math.Inf(1)
	}
	return math.Ldexp(1, histMinExp+i)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[bucketIndex(v)]++
	// v-v is 0 exactly for finite v and NaN otherwise (Inf-Inf = NaN),
	// so one subtraction keeps a non-finite value from poisoning the
	// sum while staying within the inlining budget — Observe sits on
	// the scheduler hot path.
	if v-v == 0 {
		h.sum += v
	}
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Counts [HistBuckets]uint64
	Sum    float64
}

// Total returns the observation count (the sum of all buckets).
func (s *HistSnapshot) Total() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Snapshot copies the histogram. The total is computed from the
// buckets, never from a separate counter, so a snapshot's cumulative
// view is always internally monotone.
func (h *Histogram) Snapshot() HistSnapshot {
	return HistSnapshot{Counts: h.counts, Sum: h.sum}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for _, c := range h.counts {
		n += c
	}
	return n
}

// Sum returns the sum of all finite observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Merge adds o's observations into h. Because the buckets are fixed
// and identical across every Histogram, merging is exact: bucket
// counts add, sums add, and no observation is re-bucketed.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.sum += o.sum
}
