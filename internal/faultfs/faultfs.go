// Package faultfs is a deterministic filesystem fault injector for the
// durable store's VFS seam (durable.FS). It wraps a real (or fake)
// filesystem and fails operations on a fixed schedule driven by
// operation counters — fail the Nth fsync, tear the Nth write after a
// prefix, error the Nth rename or remove — so every crash-consistency
// and degraded-mode path can be exercised by ordinary tests and
// reproduced exactly, on any machine, at any worker count.
//
// Schedules are either written by hand (a Schedule literal) or derived
// from a seed with Plan, which draws from the same dist.Split RNG stack
// as the rest of the system: Plan(seed, stream, span) is a pure
// function, so a chaos sweep over shards i=0..N-1 using stream=i sees
// the same faults whether the shards run sequentially or on eight
// goroutines. The injected error is a *Fault carrying the operation
// class and count, distinguishable from real I/O errors with errors.As.
//
// faultfs sits inside the determinism boundary (genschedvet's zone
// table): no wall clocks, no goroutines, no global randomness — the
// counters are plain state guarded by a mutex only because the durable
// store's owner may be called from different goroutines over its life.
package faultfs

import (
	"fmt"
	"io/fs"
	"sync"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/durable"
)

// Op is the class of filesystem operation a fault targets.
type Op string

const (
	OpSync   Op = "sync"
	OpWrite  Op = "write"
	OpRename Op = "rename"
	OpRemove Op = "remove"
)

// Fault is the injected error: which operation class failed and which
// occurrence (1-based) of that class it was.
type Fault struct {
	Op Op
	N  int
}

func (f *Fault) Error() string {
	return fmt.Sprintf("faultfs: injected %s failure (occurrence %d)", f.Op, f.N)
}

// Schedule declares which occurrence of each operation class fails.
// Zero means "never". Counts are 1-based and count operations on the
// whole FS (all files opened through it), in call order.
type Schedule struct {
	// FailSyncAt fails the Nth Sync call — file or directory fsync.
	FailSyncAt int
	// TornWriteAt tears the Nth Write call: the first half of the buffer
	// reaches the underlying file, then the write reports a *Fault. This
	// models a crash mid-append: a torn final frame recovery must
	// truncate away.
	TornWriteAt int
	// FailRenameAt fails the Nth Rename call (atomic snapshot/segment
	// publication).
	FailRenameAt int
	// FailRemoveAt fails the Nth Remove call (segment garbage
	// collection).
	FailRemoveAt int
}

// Zero reports whether the schedule injects nothing.
func (s Schedule) Zero() bool {
	return s.FailSyncAt == 0 && s.TornWriteAt == 0 && s.FailRenameAt == 0 && s.FailRemoveAt == 0
}

// Plan derives a fault schedule from a seed, deterministically. stream
// distinguishes independent draws (shard index, trial number) exactly
// like dist.Split streams everywhere else; span bounds the operation
// count at which the fault fires (1..span). One operation class is
// picked per plan — chaos tests want one first-failure per store,
// because the store latches after it anyway.
func Plan(seed, stream uint64, span int) Schedule {
	if span < 1 {
		span = 1
	}
	r := dist.New(dist.Split(seed, stream))
	at := 1 + r.IntN(span)
	switch r.IntN(4) {
	case 0:
		return Schedule{FailSyncAt: at}
	case 1:
		return Schedule{TornWriteAt: at}
	case 2:
		return Schedule{FailRenameAt: at}
	default:
		return Schedule{FailRemoveAt: at}
	}
}

// FS wraps an inner durable.FS and injects the scheduled faults.
// Counters are per-FS, so a store under test owns its own FS.
type FS struct {
	inner durable.FS
	sched Schedule

	mu      sync.Mutex
	syncs   int
	writes  int
	renames int
	removes int
}

// New wraps inner (nil means the real filesystem) with a fault schedule.
func New(inner durable.FS, sched Schedule) *FS {
	if inner == nil {
		inner = durable.OS()
	}
	return &FS{inner: inner, sched: sched}
}

// Counts returns the operation counters observed so far, for asserting
// that two runs of the same schedule took identical paths.
func (f *FS) Counts() (syncs, writes, renames, removes int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs, f.writes, f.renames, f.removes
}

// MkdirAll passes through; directory creation is not a fault target.
func (f *FS) MkdirAll(path string, perm fs.FileMode) error { return f.inner.MkdirAll(path, perm) }

// ReadDir passes through; the read side is not a fault target.
func (f *FS) ReadDir(dir string) ([]fs.DirEntry, error) { return f.inner.ReadDir(dir) }

// ReadFile passes through; the read side is not a fault target.
func (f *FS) ReadFile(path string) ([]byte, error) { return f.inner.ReadFile(path) }

// Rename fails on the scheduled occurrence, before touching the inner
// filesystem — the rename never happened, as a full disk or quota error
// leaves it.
func (f *FS) Rename(oldPath, newPath string) error {
	f.mu.Lock()
	f.renames++
	n := f.renames
	f.mu.Unlock()
	if n == f.sched.FailRenameAt {
		return &Fault{Op: OpRename, N: n}
	}
	return f.inner.Rename(oldPath, newPath)
}

// Remove fails on the scheduled occurrence without removing.
func (f *FS) Remove(path string) error {
	f.mu.Lock()
	f.removes++
	n := f.removes
	f.mu.Unlock()
	if n == f.sched.FailRemoveAt {
		return &Fault{Op: OpRemove, N: n}
	}
	return f.inner.Remove(path)
}

// OpenDir wraps the directory handle so its fsync counts toward the
// sync schedule, like a file's.
func (f *FS) OpenDir(path string) (durable.File, error) {
	d, err := f.inner.OpenDir(path)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: d}, nil
}

// OpenFile wraps the file handle so writes and syncs count.
func (f *FS) OpenFile(path string, flag int, perm fs.FileMode) (durable.File, error) {
	h, err := f.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: h}, nil
}

// file is a handle that routes writes and syncs through the injector.
type file struct {
	fs    *FS
	inner durable.File
}

// Write tears on the scheduled occurrence: half the buffer reaches the
// inner file, then the call fails.
func (h *file) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	h.fs.writes++
	n := h.fs.writes
	h.fs.mu.Unlock()
	if n == h.fs.sched.TornWriteAt {
		written, err := h.inner.Write(p[:len(p)/2])
		if err != nil {
			return written, err
		}
		return written, &Fault{Op: OpWrite, N: n}
	}
	return h.inner.Write(p)
}

// Sync fails on the scheduled occurrence without syncing.
func (h *file) Sync() error {
	h.fs.mu.Lock()
	h.fs.syncs++
	n := h.fs.syncs
	h.fs.mu.Unlock()
	if n == h.fs.sched.FailSyncAt {
		return &Fault{Op: OpSync, N: n}
	}
	return h.inner.Sync()
}

func (h *file) Truncate(size int64) error                 { return h.inner.Truncate(size) }
func (h *file) Seek(off int64, whence int) (int64, error) { return h.inner.Seek(off, whence) }
func (h *file) Close() error                              { return h.inner.Close() }
