package faultfs

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/hpcsched/gensched/internal/durable"
	"github.com/hpcsched/gensched/internal/workload"
)

func testRecords(n int) []durable.Record {
	recs := make([]durable.Record, 0, n)
	recs = append(recs, durable.Record{Op: durable.OpInit, Init: &durable.InitState{
		Cores: 64, Backfill: 1, Tau: 10, PolicyName: "f1",
	}})
	for i := 1; i < n; i++ {
		recs = append(recs, durable.Record{Op: durable.OpSubmit, Now: float64(i), Job: workload.Job{
			ID: i, Submit: float64(i), Runtime: 30, Estimate: 60, Cores: 4,
		}})
	}
	return recs
}

func TestPlanDeterministic(t *testing.T) {
	for stream := uint64(0); stream < 32; stream++ {
		a := Plan(42, stream, 10)
		b := Plan(42, stream, 10)
		if a != b {
			t.Fatalf("stream %d: Plan not deterministic: %+v vs %+v", stream, a, b)
		}
		if a.Zero() {
			t.Fatalf("stream %d: Plan produced an empty schedule", stream)
		}
	}
	// Distinct streams must not all collapse onto one schedule.
	distinct := map[Schedule]bool{}
	for stream := uint64(0); stream < 32; stream++ {
		distinct[Plan(42, stream, 10)] = true
	}
	if len(distinct) < 4 {
		t.Fatalf("32 streams produced only %d distinct schedules", len(distinct))
	}
}

func TestFailSyncLatchesStore(t *testing.T) {
	dir := t.TempDir()
	// The fresh-directory Open costs two syncs (segment file + dir); the
	// third is the first record's fsync.
	ffs := New(nil, Schedule{FailSyncAt: 3})
	s, _, err := durable.Open(dir, durable.Options{SyncEvery: 1, FS: ffs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	recs := testRecords(3)
	err = s.Append(&recs[0])
	var f *Fault
	if !errors.As(err, &f) || f.Op != OpSync {
		t.Fatalf("Append = %v, want injected sync fault", err)
	}
	if s.Broken() == nil {
		t.Fatalf("store did not latch after injected sync failure")
	}
	if err := s.Append(&recs[1]); err == nil || !strings.Contains(err.Error(), "journal is failed") {
		t.Fatalf("append after latch = %v, want latched refusal", err)
	}
	if err := s.Close(); !errors.As(err, &f) {
		t.Fatalf("Close after latch = %v, want the original fault", err)
	}
}

func TestTornWriteTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	// Write #1 is the segment header; #2 is the batched flush of the
	// appends — tear it so half the frame bytes land.
	ffs := New(nil, Schedule{TornWriteAt: 2})
	s, _, err := durable.Open(dir, durable.Options{SyncEvery: 1 << 20, FS: ffs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	recs := testRecords(6)
	for i := range recs {
		if err := s.Append(&recs[i]); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	err = s.Sync()
	var f *Fault
	if !errors.As(err, &f) || f.Op != OpWrite {
		t.Fatalf("Sync = %v, want injected torn write", err)
	}
	_ = s.Close() // latched; reports the fault

	// Recovery on a clean filesystem truncates the torn tail and keeps
	// the intact prefix.
	s2, rec, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer s2.Close()
	if len(rec.Records) >= len(recs) {
		t.Fatalf("recovered %d records from a torn flush of %d", len(rec.Records), len(recs))
	}
	for i, r := range rec.Records {
		if r.Op != recs[i].Op || r.Now != recs[i].Now {
			t.Fatalf("recovered record %d differs: %+v vs %+v", i, r, recs[i])
		}
	}
	// The store must be appendable past the truncation.
	tail := testRecords(2)
	if err := s2.Append(&tail[1]); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
}

// TestFailedRenameLeavesNoTmp pins the tmp-file leak: a checkpoint whose
// snapshot rename fails must remove the temp file instead of leaving it
// until the next Open sweeps it.
func TestFailedRenameLeavesNoTmp(t *testing.T) {
	dir := t.TempDir()
	// Rename #1 publishes the first segment at Open; #2 is the snapshot.
	ffs := New(nil, Schedule{FailRenameAt: 2})
	s, _, err := durable.Open(dir, durable.Options{SyncEvery: 1, FS: ffs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	recs := testRecords(4)
	for i := range recs {
		if err := s.Append(&recs[i]); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	err = s.Checkpoint(&durable.Snapshot{Init: durable.InitState{Cores: 64}})
	var f *Fault
	if !errors.As(err, &f) || f.Op != OpRename {
		t.Fatalf("Checkpoint = %v, want injected rename fault", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("failed rename leaked %s", filepath.Join(dir, e.Name()))
		}
	}
	// The journal survives the failed checkpoint: a clean reopen still
	// recovers every record.
	_ = s.Close()
	_, rec, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatalf("reopen after failed checkpoint: %v", err)
	}
	if len(rec.Records) != len(recs) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(recs))
	}
}

// countingFS counts Close calls on every handle, to pin the
// Close-after-failure double-close.
type countingFS struct {
	durable.FS
	mu     sync.Mutex
	closes int
}

func (c *countingFS) OpenFile(path string, flag int, perm fs.FileMode) (durable.File, error) {
	f, err := c.FS.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, c: c}, nil
}

type countingFile struct {
	durable.File
	c      *countingFS
	closed bool
}

func (f *countingFile) Close() error {
	f.c.mu.Lock()
	f.c.closes++
	double := f.closed
	f.closed = true
	f.c.mu.Unlock()
	if double {
		return errors.New("double close of file handle")
	}
	return f.File.Close()
}

// TestCloseAfterFailureClosesOnce pins the double-close: a latched store
// closed twice must close the underlying segment handle exactly once and
// keep reporting the original cause.
func TestCloseAfterFailureClosesOnce(t *testing.T) {
	dir := t.TempDir()
	counter := &countingFS{FS: durable.OS()}
	ffs := New(counter, Schedule{FailSyncAt: 3})
	s, _, err := durable.Open(dir, durable.Options{SyncEvery: 1, FS: ffs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	recs := testRecords(2)
	if err := s.Append(&recs[0]); err == nil {
		t.Fatalf("append did not hit the injected sync fault")
	}
	before := counter.closes
	var f *Fault
	if err := s.Close(); !errors.As(err, &f) {
		t.Fatalf("first Close = %v, want the latched fault", err)
	}
	if err := s.Close(); !errors.As(err, &f) {
		t.Fatalf("second Close = %v, want the latched fault", err)
	}
	if got := counter.closes - before; got != 1 {
		t.Fatalf("Close after failure closed the handle %d times, want 1", got)
	}
}

// TestCheckpointRotationFailureClosesOnce covers the rotation window: if
// the new segment cannot be published, the old handle is already closed
// and Close must not touch it again.
func TestCheckpointRotationFailureClosesOnce(t *testing.T) {
	dir := t.TempDir()
	counter := &countingFS{FS: durable.OS()}
	// Rename #1: first segment at Open. #2: the snapshot. #3: the rotated
	// segment — fail there, after the old segment handle was closed.
	ffs := New(counter, Schedule{FailRenameAt: 3})
	s, _, err := durable.Open(dir, durable.Options{SyncEvery: 1, FS: ffs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	recs := testRecords(4)
	for i := range recs {
		if err := s.Append(&recs[i]); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	err = s.Checkpoint(&durable.Snapshot{Init: durable.InitState{Cores: 64}})
	var f *Fault
	if !errors.As(err, &f) || f.Op != OpRename {
		t.Fatalf("Checkpoint = %v, want injected rename fault", err)
	}
	before := counter.closes
	if err := s.Close(); err == nil {
		t.Fatalf("Close after rotation failure = nil, want the latched fault")
	}
	if got := counter.closes - before; got != 0 {
		t.Fatalf("Close re-closed a handle already closed during rotation (%d extra closes)", got)
	}
	// Recovery still works: the snapshot was published before the
	// rotation failed, so a clean reopen finds a consistent directory.
	_, rec, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatalf("reopen after rotation failure: %v", err)
	}
	if rec.Snapshot == nil {
		t.Fatalf("snapshot missing after failed rotation")
	}
}

func TestRemoveAndCountsDeterminism(t *testing.T) {
	// The same schedule over the same workload takes the same path: run
	// twice, compare counters.
	run := func() (int, int, int, int) {
		dir := t.TempDir()
		ffs := New(nil, Schedule{FailRemoveAt: 1})
		s, _, err := durable.Open(dir, durable.Options{SyncEvery: 1, FS: ffs})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		recs := testRecords(4)
		for i := range recs {
			if err := s.Append(&recs[i]); err != nil {
				t.Fatalf("Append(%d): %v", i, err)
			}
		}
		// Checkpoint deletes the superseded segment: the injected remove
		// failure latches the store.
		err = s.Checkpoint(&durable.Snapshot{Init: durable.InitState{Cores: 64}})
		var f *Fault
		if !errors.As(err, &f) || f.Op != OpRemove {
			t.Fatalf("Checkpoint = %v, want injected remove fault", err)
		}
		_ = s.Close()
		return ffs.Counts()
	}
	s1, w1, rn1, rm1 := run()
	s2, w2, rn2, rm2 := run()
	if s1 != s2 || w1 != w2 || rn1 != rn2 || rm1 != rm2 {
		t.Fatalf("two identical runs diverged: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			s1, w1, rn1, rm1, s2, w2, rn2, rm2)
	}
}
