// Package simtest is the differential test harness shared by the sim
// package's oracle tests, the engine fuzzer and any future engine
// refactor: it generates adversarial random workloads, runs the optimized
// engine and the simref oracle on identical inputs, and reports the first
// divergence.
package simtest

import (
	"fmt"
	"math"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/simref"
	"github.com/hpcsched/gensched/internal/workload"
)

// RandomJobs draws a workload designed to exercise the engine's edge
// paths, not to look realistic: bursty arrivals (identical submit times),
// quantized runtimes (policy-score ties), underestimates (perceived-finish
// clamping), overestimates, exact estimates, and occasional full-machine
// jobs (head reservations that drain the whole running set).
func RandomJobs(rng *dist.RNG, n, maxCores int) []workload.Job {
	jobs := make([]workload.Job, n)
	now := 0.0
	for i := range jobs {
		if rng.Float64() >= 0.3 { // 30%: burst arrival at the same instant
			now += rng.Float64() * 40
		}
		var r float64
		if rng.Float64() < 0.25 {
			r = float64(1+rng.IntN(8)) * 25 // quantized: forces score and finish ties
		} else {
			r = 1 + rng.Float64()*600
		}
		e := r
		switch rng.IntN(3) {
		case 0:
			e = r * (1 + rng.Float64()*2) // overestimate, the common case
		case 1:
			e = math.Max(1, r*rng.Float64()) // underestimate: clamped perceived finishes
		}
		c := 1 + rng.IntN(maxCores)
		if rng.Float64() < 0.05 {
			c = maxCores // full-machine job: shadow needs every release
		}
		jobs[i] = workload.Job{ID: i + 1, Submit: now, Runtime: r, Estimate: e, Cores: c}
	}
	return jobs
}

// IntegerJobs is RandomJobs with every time drawn on the integer grid:
// submits, runtimes and estimates are whole seconds, so every schedule
// time any engine derives (starts, shadow times, perceived finishes) is an
// exactly-representable integer sum. Tie densities go up — many equal
// scores and simultaneous releases — and time arithmetic becomes exact,
// which is what the mid-stream policy-swap differential needs: a swap at
// a half-integer instant T falls strictly between any two event times, so
// "before T" and "after T" are unambiguous in floating point.
func IntegerJobs(rng *dist.RNG, n, maxCores int) []workload.Job {
	jobs := RandomJobs(rng, n, maxCores)
	for i := range jobs {
		jobs[i].Submit = math.Floor(jobs[i].Submit)
		jobs[i].Runtime = math.Max(1, math.Floor(jobs[i].Runtime))
		jobs[i].Estimate = math.Max(1, math.Floor(jobs[i].Estimate))
	}
	return jobs
}

// SwitchPolicy builds the batch-engine reference for a mid-stream policy
// hot-swap: a time-varying policy that ranks with `before` at scheduling
// passes strictly earlier than `at` and with `after` from `at` on. Both
// wrapped policies must be static (their scores ignore Wait): the wrapper
// reconstructs the pass time as Submit+Wait, which is exact whenever event
// times are exactly representable (see IntegerJobs). Replaying a stream
// through the online scheduler with a SetPolicy(after) call at time `at`
// must match a batch run under SwitchPolicy — the swap-validation
// differential.
func SwitchPolicy(at float64, before, after sched.Policy) sched.Policy {
	name := fmt.Sprintf("SWITCH(%s->%s@%g)", before.Name(), after.Name(), at)
	return sched.New(name, true, func(v sched.JobView) float64 {
		if v.Submit+v.Wait >= at {
			return after.Score(v)
		}
		return before.Score(v)
	})
}

// Modes is the backfill matrix every differential sweep covers.
var Modes = []sim.BackfillMode{sim.BackfillNone, sim.BackfillEASY, sim.BackfillConservative}

// RefMode translates a sim backfill mode for the oracle.
func RefMode(m sim.BackfillMode) simref.Mode {
	switch m {
	case sim.BackfillEASY:
		return simref.ModeEASY
	case sim.BackfillConservative:
		return simref.ModeConservative
	default:
		return simref.ModeNone
	}
}

// Placements converts an engine result for simref.Compare/CheckSchedule.
func Placements(res *sim.Result) []simref.Placement {
	out := make([]simref.Placement, len(res.Stats))
	for i, s := range res.Stats {
		out[i] = simref.Placement{Job: s.Job, Start: s.Start, Finish: s.Finish, Backfilled: s.Backfilled}
	}
	return out
}

// Differential runs the optimized engine (with invariant checking on) and
// the reference oracle on the same input and requires bit-identical
// schedules. The sim options' Backfill field selects the oracle mode.
func Differential(cores int, jobs []workload.Job, opt sim.Options) error {
	opt.Check = true
	res, err := sim.Run(sim.Platform{Cores: cores}, jobs, opt)
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	ref, err := simref.Run(cores, jobs, simref.Options{
		Policy:         opt.Policy,
		BackfillOrder:  opt.BackfillOrder,
		Mode:           RefMode(opt.Backfill),
		UseEstimates:   opt.UseEstimates,
		KillAtEstimate: opt.KillAtEstimate,
	})
	if err != nil {
		return fmt.Errorf("oracle: %w", err)
	}
	if err := simref.CheckSchedule(cores, ref); err != nil {
		return fmt.Errorf("oracle schedule: %w", err)
	}
	if err := simref.Compare(Placements(res), ref); err != nil {
		return fmt.Errorf("engine diverged from oracle (%s, estimates=%v, kill=%v): %w",
			opt.Backfill, opt.UseEstimates, opt.KillAtEstimate, err)
	}
	return nil
}
