// Package schedcore is the scheduling core shared by the batch simulator
// (internal/sim) and the incremental online scheduler (internal/online):
// the typed event heap, the policy-ordered waiting queue, the running set
// kept incrementally sorted by perceived finish, and the EASY and
// conservative backfilling algorithms, plus the runtime invariant checks.
//
// The package has two driving modes over one Engine:
//
//   - Batch: every task is registered up front (AddTask + PushArrival) and
//     RunBatch drains the internal event loop, scheduling completions from
//     the known execution times. internal/sim wraps this mode.
//   - External completions (Config.ExternalCompletions): arrivals and
//     completions are applied by the caller (Arrive, CompleteNow) against a
//     caller-advanced clock (SetNow), and scheduling passes run when the
//     caller asks (Pass). The engine never predicts a completion; decisions
//     use perceived runtimes only, exactly as in batch mode. internal/online
//     wraps this mode.
//
// Both modes share every scheduling decision path, so a differential test
// of one exercises the other. The scheduling semantics are the shared
// contract spelled out in internal/simref.
package schedcore

import (
	"sort"
	"strconv"

	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/workload"
)

// TimeEps absorbs floating-point noise when comparing schedule times. It
// is intentionally identical in internal/sim and internal/simref so the
// optimized engines and the oracle produce the same floating-point
// results.
const TimeEps = 1e-9

// BackfillMode selects the backfilling algorithm.
type BackfillMode int

const (
	// BackfillNone: strict policy order; the queue head blocks.
	BackfillNone BackfillMode = iota
	// BackfillEASY: aggressive backfilling — only the queue head holds a
	// reservation; any later task may jump ahead if it does not delay the
	// head (Mu'alem & Feitelson).
	BackfillEASY
	// BackfillConservative: every queued task holds a reservation; a task
	// may jump ahead only if it delays no task before it.
	BackfillConservative
)

// String names the mode for reports.
func (m BackfillMode) String() string {
	switch m {
	case BackfillNone:
		return "none"
	case BackfillEASY:
		return "easy"
	case BackfillConservative:
		return "conservative"
	default:
		return "backfill(" + strconv.Itoa(int(m)) + ")"
	}
}

// Task is the engine's mutable view of one job. Pointers returned by
// Engine.Task stay valid only until the next AddTask or Release.
type Task struct {
	Job       workload.Job
	Perceived float64 // runtime the scheduler sees (r or e)
	Execution float64 // runtime execution actually takes (batch mode)
	score     float64 // cached policy score (static policies)
	Start     float64
	Finish    float64
	Started   bool
	Done      bool
	Backfill  bool
}

// Config parameterizes an Engine.
type Config struct {
	// Policy orders the waiting queue (required).
	Policy sched.Policy
	// UseEstimates makes every scheduling decision see the user estimate e
	// instead of the actual runtime r.
	UseEstimates bool
	// Backfill selects the backfilling algorithm (default none).
	Backfill BackfillMode
	// BackfillOrder optionally reorders EASY backfill candidates by a
	// secondary policy (EASY-SJBF style variants).
	BackfillOrder sched.Policy
	// KillAtEstimate truncates execution at the user estimate (batch mode).
	KillAtEstimate bool
	// ExternalCompletions: the caller reports completions (CompleteNow)
	// instead of the engine scheduling them from execution times; the
	// engine never touches the event heap.
	ExternalCompletions bool
	// RecordTimeline collects a cluster-state point after every pass.
	RecordTimeline bool
	// Check enables the runtime invariant checks (see check.go).
	Check bool
	// OnStart, when set, is invoked for every task the engine starts,
	// immediately after the start is applied. Incremental drivers use it
	// to observe starts without any per-pass allocation.
	OnStart func(ti int)
	// OnPass, when set, is invoked once per scheduling pass with the
	// logical clock and the post-pass queue length. Telemetry samples
	// queue depth through it without the engine importing anything.
	OnPass func(now float64, queued int)
}

// TimelinePoint is one sample of the cluster state.
type TimelinePoint struct {
	Time     float64
	QueueLen int
	CoresUse int
}

// Engine is the scheduling core. See the package comment for the two
// driving modes.
type Engine struct {
	cores int
	free  int
	cfg   Config

	policy      sched.Policy
	withID      sched.PolicyWithID // non-nil if policy scores by job ID
	timeVarying bool

	tasks     []Task
	freeSlots []int // recycled task indices (external-completion drivers)
	queue     []int // waiting task indices; kept score-sorted for static policies
	// running holds the running task indices sorted by ascending
	// (start+perceived, job ID): the perceived-finish order every backfill
	// reservation scans. The order is maintained incrementally (binary
	// insert on start, binary remove on completion) so no scheduling pass
	// ever sorts the running set.
	running []int
	events  EventHeap
	now     float64

	maxQueueLen int
	backfilled  int
	timeline    []TimelinePoint

	// Scratch buffers reused across scheduling passes so the hot paths
	// (EASY candidate ordering, the conservative availability profile)
	// allocate only on high-water-mark growth.
	orderBuf []int
	keysBuf  []float64
	prof     profile

	// checkErr records the first invariant violation when Config.Check
	// is set; nil otherwise. See check.go.
	checkErr error
}

// NewEngine builds an engine for a machine with the given core count. The
// caller is responsible for validating jobs against the machine size.
func NewEngine(cores int, cfg Config) *Engine {
	e := &Engine{cores: cores, free: cores, cfg: cfg}
	e.SetPolicy(cfg.Policy)
	return e
}

// Reset returns the engine to the state NewEngine(cores, cfg) would build
// while keeping every internal buffer's capacity — the task table, queue,
// running set, event heap and backfill scratch are emptied, not freed.
// Drivers that run many short simulations back to back (the trial engine
// of the training pipeline) reset a pooled engine instead of allocating a
// fresh one per run; a reset engine's schedule is bit-identical to a
// fresh engine's because every decision input is re-established from
// scratch.
func (e *Engine) Reset(cores int, cfg Config) {
	e.cores = cores
	e.free = cores
	e.cfg = cfg
	e.tasks = e.tasks[:0]
	e.freeSlots = e.freeSlots[:0]
	e.queue = e.queue[:0]
	e.running = e.running[:0]
	e.events.Reset()
	e.now = 0
	e.maxQueueLen = 0
	e.backfilled = 0
	e.timeline = nil
	e.checkErr = nil
	e.SetPolicy(cfg.Policy)
}

// AddTask registers a job and returns its task index, reusing a released
// slot when one is free. The task is not yet visible to the scheduler;
// batch drivers follow with PushArrival, incremental drivers with Arrive.
func (e *Engine) AddTask(j workload.Job) int {
	perceived := j.Runtime
	if e.cfg.UseEstimates && j.Estimate > 0 {
		perceived = j.Estimate
	}
	execution := j.Runtime
	if e.cfg.KillAtEstimate && j.Estimate > 0 && j.Estimate < execution {
		execution = j.Estimate
	}
	t := Task{Job: j, Perceived: perceived, Execution: execution}
	if n := len(e.freeSlots); n > 0 {
		ti := e.freeSlots[n-1]
		e.freeSlots = e.freeSlots[:n-1]
		e.tasks[ti] = t
		return ti
	}
	e.tasks = append(e.tasks, t)
	return len(e.tasks) - 1
}

// Release recycles a completed task's slot for a future AddTask. Only
// external-completion drivers call it; batch results read tasks after the
// run, so the batch driver never releases.
func (e *Engine) Release(ti int) {
	e.tasks[ti] = Task{}
	e.freeSlots = append(e.freeSlots, ti)
}

// PushArrival schedules the task's arrival event at its submit time
// (batch mode).
func (e *Engine) PushArrival(ti int) {
	e.events.Push(Event{Time: e.tasks[ti].Job.Submit, Kind: KindArrival, Ref: ti})
}

// Arrive applies a task arrival at the current clock (external mode): the
// task joins the waiting queue. The caller runs Pass when the instant's
// event batch is complete.
func (e *Engine) Arrive(ti int) { e.enqueue(ti) }

// CompleteNow applies an external completion at the current clock: the
// task's cores are released and its finish time is recorded as now.
func (e *Engine) CompleteNow(ti int) {
	e.tasks[ti].Finish = e.now
	e.completeTask(ti)
}

// Now returns the engine clock.
func (e *Engine) Now() float64 { return e.now }

// SetNow advances the engine clock (external mode). The caller must run
// any pending Pass for the current instant first.
func (e *Engine) SetNow(t float64) { e.now = t }

// SetPolicy replaces the queue-ordering policy. Tasks already running are
// unaffected; the waiting queue is re-scored and re-ranked immediately for
// static policies (time-varying policies re-rank at every pass anyway), so
// no queue state is dropped. Takes effect at the next scheduling pass.
func (e *Engine) SetPolicy(p sched.Policy) {
	e.policy = p
	e.withID, _ = p.(sched.PolicyWithID)
	e.timeVarying = p.TimeVarying()
	if !e.timeVarying && len(e.queue) > 0 {
		for _, ti := range e.queue {
			e.tasks[ti].score = e.staticScore(ti)
		}
		sort.SliceStable(e.queue, func(i, j int) bool { return e.queueLess(e.queue[i], e.queue[j]) })
	}
}

// Accessors for drivers and result assembly.

// Cores returns the machine size.
func (e *Engine) Cores() int { return e.cores }

// FreeCores returns the currently idle core count.
func (e *Engine) FreeCores() int { return e.free }

// NumTasks returns the size of the task table (including released slots).
func (e *Engine) NumTasks() int { return len(e.tasks) }

// Task returns the engine's view of task ti; the pointer is valid only
// until the next AddTask or Release.
func (e *Engine) Task(ti int) *Task { return &e.tasks[ti] }

// QueueLen returns the number of waiting tasks.
func (e *Engine) QueueLen() int { return len(e.queue) }

// QueuedJobs appends a copy of every waiting (not yet started) task's job
// to buf, in queue priority order, and returns the extended slice. The
// adaptive loop's shadow evaluation replays them so its digital twin
// starts from the cluster's real backlog.
func (e *Engine) QueuedJobs(buf []workload.Job) []workload.Job {
	for _, ti := range e.queue {
		if t := &e.tasks[ti]; !t.Started && !t.Done {
			buf = append(buf, t.Job)
		}
	}
	return buf
}

// RunningLen returns the number of running tasks.
func (e *Engine) RunningLen() int { return len(e.running) }

// MaxQueueLen returns the high-water mark of the waiting queue.
func (e *Engine) MaxQueueLen() int { return e.maxQueueLen }

// BackfilledCount returns how many tasks started via backfilling.
func (e *Engine) BackfilledCount() int { return e.backfilled }

// Timeline returns the recorded cluster-state samples (nil unless
// Config.RecordTimeline).
func (e *Engine) Timeline() []TimelinePoint { return e.timeline }

// CheckErr returns the first invariant violation recorded under
// Config.Check, or nil.
func (e *Engine) CheckErr() error { return e.checkErr }

// view builds the policy's JobView of a task at the current time.
func (e *Engine) view(ti int) sched.JobView {
	t := &e.tasks[ti]
	wait := e.now - t.Job.Submit
	if wait < 0 {
		wait = 0
	}
	return sched.JobView{
		Runtime: t.Perceived,
		Cores:   float64(t.Job.Cores),
		Submit:  t.Job.Submit,
		Wait:    wait,
	}
}

// staticScore computes and caches the score of a task under a
// non-time-varying policy (Wait plays no role, so it is evaluated as 0).
func (e *Engine) staticScore(ti int) float64 {
	v := e.view(ti)
	v.Wait = 0
	if e.withID != nil {
		return e.withID.ScoreID(e.tasks[ti].Job.ID, v)
	}
	return e.policy.Score(v)
}

// enqueue inserts an arrived task into the waiting queue. For static
// policies the queue stays sorted by (score, submit, id) via binary
// insertion; time-varying policies re-sort at each scheduling pass.
func (e *Engine) enqueue(ti int) {
	if e.timeVarying {
		e.queue = append(e.queue, ti)
		return
	}
	e.tasks[ti].score = e.staticScore(ti)
	lo, hi := 0, len(e.queue)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.queueLess(e.queue[mid], ti) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	e.queue = append(e.queue, 0)
	copy(e.queue[lo+1:], e.queue[lo:])
	e.queue[lo] = ti
}

// queueLess orders tasks by (score, submit, id) — the deterministic order
// every experiment uses.
func (e *Engine) queueLess(a, b int) bool {
	ta, tb := &e.tasks[a], &e.tasks[b]
	if ta.score != tb.score {
		return ta.score < tb.score
	}
	if ta.Job.Submit != tb.Job.Submit {
		return ta.Job.Submit < tb.Job.Submit
	}
	return ta.Job.ID < tb.Job.ID
}

// resortQueue refreshes scores at the current time and re-sorts; only
// needed for time-varying policies.
func (e *Engine) resortQueue() {
	for _, ti := range e.queue {
		if e.withID != nil {
			e.tasks[ti].score = e.withID.ScoreID(e.tasks[ti].Job.ID, e.view(ti))
		} else {
			e.tasks[ti].score = e.policy.Score(e.view(ti))
		}
	}
	sort.SliceStable(e.queue, func(i, j int) bool { return e.queueLess(e.queue[i], e.queue[j]) })
}

// rawPF is a task's unclamped perceived finish time, the running-set sort
// key. It is fixed at start time (start and perceived never change), so
// the incremental order in e.running stays valid as the clock advances.
func (e *Engine) rawPF(ti int) float64 {
	t := &e.tasks[ti]
	return t.Start + t.Perceived
}

// runningLess is the running-set order: ascending unclamped perceived
// finish, ties by job ID. Clamping to `now` (perceivedFinish) preserves
// this order, so scans over e.running see nondecreasing release times.
func (e *Engine) runningLess(a, b int) bool {
	pa, pb := e.rawPF(a), e.rawPF(b)
	if pa != pb {
		return pa < pb
	}
	return e.tasks[a].Job.ID < e.tasks[b].Job.ID
}

// runningRank binary-searches the sorted running set for the first
// position not ordered before task ti — its insertion point on start and
// the head of its equal-key run on completion.
func (e *Engine) runningRank(ti int) int {
	lo, hi := 0, len(e.running)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.runningLess(e.running[mid], ti) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// startTask launches a waiting task now, inserting it into the running
// set at its perceived-finish position.
func (e *Engine) startTask(ti int, backfillStart bool) {
	t := &e.tasks[ti]
	t.Started = true
	t.Backfill = backfillStart
	t.Start = e.now
	e.free -= t.Job.Cores
	lo := e.runningRank(ti)
	e.running = append(e.running, 0)
	copy(e.running[lo+1:], e.running[lo:])
	e.running[lo] = ti
	if !e.cfg.ExternalCompletions {
		t.Finish = e.now + t.Execution
		e.events.Push(Event{Time: t.Finish, Kind: KindCompletion, Ref: ti})
	}
	if backfillStart {
		e.backfilled++
	}
	if e.cfg.Check {
		e.checkStart(ti)
	}
	if e.cfg.OnStart != nil {
		e.cfg.OnStart(ti)
	}
}

// completeTask retires a finished task, removing it from the sorted
// running set by binary search.
func (e *Engine) completeTask(ti int) {
	t := &e.tasks[ti]
	t.Done = true
	e.free += t.Job.Cores
	for i := e.runningRank(ti); i < len(e.running); i++ {
		if e.running[i] == ti {
			copy(e.running[i:], e.running[i+1:])
			e.running = e.running[:len(e.running)-1]
			break
		}
	}
	if e.cfg.Check && e.free > e.cores {
		e.failf("completion of job %d released more cores than the platform has (%d free of %d)",
			t.Job.ID, e.free, e.cores)
	}
}

// RunBatch executes the batch event loop: drain all events at a
// timestamp, then hold one scheduling pass (the paper's rescheduling
// events are exactly task arrivals and resource releases).
func (e *Engine) RunBatch() {
	for e.events.Len() > 0 {
		now := e.events.PeekTime()
		e.now = now
		for e.events.Len() > 0 && e.events.PeekTime() == now {
			ev := e.events.Pop()
			switch ev.Kind {
			case KindArrival:
				e.enqueue(ev.Ref)
			case KindCompletion:
				e.completeTask(ev.Ref)
			}
		}
		e.Pass()
	}
}

// Pass holds one scheduling pass at the current clock: record the queue
// high-water mark, start every task the policy and backfilling rules
// allow, and sample the timeline when recording. Batch mode calls it per
// event batch; external drivers call it once per instant after applying
// that instant's arrivals and completions.
func (e *Engine) Pass() {
	if len(e.queue) > e.maxQueueLen {
		e.maxQueueLen = len(e.queue)
	}
	e.schedulePass()
	if e.cfg.RecordTimeline {
		e.timeline = append(e.timeline, TimelinePoint{
			Time:     e.now,
			QueueLen: len(e.queue),
			CoresUse: e.cores - e.free,
		})
	}
	if e.cfg.OnPass != nil {
		e.cfg.OnPass(e.now, len(e.queue))
	}
}

// schedulePass starts every task the policy and backfilling rules allow.
func (e *Engine) schedulePass() {
	if len(e.queue) == 0 || e.free == 0 {
		return
	}
	if e.timeVarying {
		e.resortQueue()
	}
	if e.cfg.Check {
		e.checkQueueOrder()
	}
	// Start from the head while it fits. The started prefix is shifted out
	// in place (rather than re-slicing the head off) so the queue keeps its
	// backing capacity — re-slicing would shrink the capacity by one per
	// start until every enqueue reallocates, the lone allocation on the
	// online scheduler's steady-state path.
	h := 0
	for h < len(e.queue) && e.tasks[e.queue[h]].Job.Cores <= e.free {
		e.startTask(e.queue[h], false)
		h++
	}
	if h > 0 {
		n := copy(e.queue, e.queue[h:])
		e.queue = e.queue[:n]
	}
	if len(e.queue) == 0 || e.free == 0 {
		return
	}
	switch e.cfg.Backfill {
	case BackfillEASY:
		e.easyBackfill()
	case BackfillConservative:
		e.conservativeBackfill()
	}
}
