package schedcore

// Event is one timestamped scheduling event. Ref identifies the subject
// (a task index for the engine's own events; drivers may store any
// handle). Events order by (Time, Kind, insertion sequence), so callers
// control same-instant ordering through Kind: the engine uses
// KindCompletion < KindArrival so released cores are visible to the
// scheduling pass that also sees the new arrivals.
type Event struct {
	Time float64
	Kind int
	Ref  int
	seq  int // tie-break for determinism, assigned by Push
}

// Engine event kinds. Drivers layering their own events (policy swaps,
// trace markers) may use any other ints; smaller kinds apply first within
// a timestamp.
const (
	KindCompletion = 0
	KindArrival    = 1
)

// less is the deterministic event order: time, then kind, then insertion
// sequence.
func (a Event) less(b Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.seq < b.seq
}

// EventHeap is a binary min-heap of events. It is hand-rolled rather than
// built on container/heap because the interface-based API boxes every
// pushed and popped event into an `any`, which costs two heap allocations
// per simulated completion — the single largest allocation source in the
// event loop. The zero value is ready to use.
type EventHeap struct {
	evs []Event
	seq int
}

// Len reports the number of queued events.
func (h *EventHeap) Len() int { return len(h.evs) }

// Reset empties the heap, keeping its backing capacity, and restarts the
// insertion sequence — the state of a zero EventHeap.
func (h *EventHeap) Reset() {
	h.evs = h.evs[:0]
	h.seq = 0
}

// PeekTime returns the earliest event time; the heap must be non-empty.
func (h *EventHeap) PeekTime() float64 { return h.evs[0].Time }

// Push inserts an event, assigning it the next insertion sequence.
func (h *EventHeap) Push(ev Event) {
	ev.seq = h.seq
	h.seq++
	h.evs = append(h.evs, ev)
	h.siftUp(len(h.evs) - 1)
}

// Pop removes and returns the earliest event.
func (h *EventHeap) Pop() Event {
	top := h.evs[0]
	n := len(h.evs) - 1
	h.evs[0] = h.evs[n]
	h.evs = h.evs[:n]
	h.siftDown(0)
	return top
}

func (h *EventHeap) siftUp(i int) {
	evs := h.evs
	for i > 0 {
		parent := (i - 1) / 2
		if !evs[i].less(evs[parent]) {
			return
		}
		evs[i], evs[parent] = evs[parent], evs[i]
		i = parent
	}
}

func (h *EventHeap) siftDown(i int) {
	evs := h.evs
	n := len(evs)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && evs[right].less(evs[left]) {
			least = right
		}
		if !evs[least].less(evs[i]) {
			return
		}
		evs[i], evs[least] = evs[least], evs[i]
		i = least
	}
}
