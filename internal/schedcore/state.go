// Engine state export/import: the serializable image of an
// external-completions engine, placed next to Reset because the two share
// a contract — ImportState is Reset followed by an exact re-establishment
// of every decision input, so a restored engine is observationally the
// engine that was exported (the durable subsystem's crash-point test pins
// this bit for bit).
//
// Cached policy scores are deliberately not part of the image: they are a
// pure function of (task, policy), recomputed by SetPolicy on import. For
// static policies the exported queue order is already the (score, submit,
// id) order, and SetPolicy's stable sort is the identity on it; for
// time-varying policies every pass re-sorts anyway.

package schedcore

import (
	"fmt"

	"github.com/hpcsched/gensched/internal/workload"
)

// TaskState is the serializable image of one task-table slot.
type TaskState struct {
	Job       workload.Job
	Perceived float64
	Execution float64
	Start     float64
	Finish    float64
	Started   bool
	Done      bool
	Backfill  bool
}

// EngineState is the serializable image of an external-completions Engine:
// the task table with its free list, the policy-ordered waiting queue and
// the perceived-finish-ordered running set (both as task indices), the
// logical clock and the counters. The event heap is not part of the image
// because external-completions engines never use it — ExportState refuses
// any engine that does.
type EngineState struct {
	Free        int
	Now         float64
	MaxQueueLen int
	Backfilled  int
	Tasks       []TaskState
	FreeSlots   []int
	Queue       []int
	Running     []int
}

// ExportState writes the engine's serializable image into st, reusing its
// slices. Only external-completions engines are exportable: batch engines
// carry a pending event heap whose replay would need the original
// workload, not a state image.
func (e *Engine) ExportState(st *EngineState) error {
	if !e.cfg.ExternalCompletions {
		return fmt.Errorf("schedcore: only external-completions engines are exportable")
	}
	if e.events.Len() > 0 {
		return fmt.Errorf("schedcore: engine has %d pending events; not exportable", e.events.Len())
	}
	st.Free = e.free
	st.Now = e.now
	st.MaxQueueLen = e.maxQueueLen
	st.Backfilled = e.backfilled
	st.Tasks = st.Tasks[:0]
	for i := range e.tasks {
		t := &e.tasks[i]
		st.Tasks = append(st.Tasks, TaskState{
			Job: t.Job, Perceived: t.Perceived, Execution: t.Execution,
			Start: t.Start, Finish: t.Finish,
			Started: t.Started, Done: t.Done, Backfill: t.Backfill,
		})
	}
	st.FreeSlots = append(st.FreeSlots[:0], e.freeSlots...)
	st.Queue = append(st.Queue[:0], e.queue...)
	st.Running = append(st.Running[:0], e.running...)
	return nil
}

// ImportState rebuilds the engine from an exported image: Reset, then
// restore the task table, free list, queue and running set, and re-score
// the queue under cfg.Policy. The image is validated structurally (index
// bounds, slot disjointness, core accounting) so a corrupt snapshot fails
// loudly instead of scheduling garbage.
func (e *Engine) ImportState(cores int, cfg Config, st *EngineState) error {
	if !cfg.ExternalCompletions {
		return fmt.Errorf("schedcore: state imports require an external-completions config")
	}
	if err := validateState(cores, st); err != nil {
		return err
	}
	e.Reset(cores, cfg)
	e.tasks = e.tasks[:0]
	for i := range st.Tasks {
		ts := &st.Tasks[i]
		e.tasks = append(e.tasks, Task{
			Job: ts.Job, Perceived: ts.Perceived, Execution: ts.Execution,
			Start: ts.Start, Finish: ts.Finish,
			Started: ts.Started, Done: ts.Done, Backfill: ts.Backfill,
		})
	}
	e.freeSlots = append(e.freeSlots[:0], st.FreeSlots...)
	e.queue = append(e.queue[:0], st.Queue...)
	e.running = append(e.running[:0], st.Running...)
	e.free = st.Free
	e.now = st.Now
	e.maxQueueLen = st.MaxQueueLen
	e.backfilled = st.Backfilled
	// Recompute cached scores and restore the queue order invariant; a
	// stable sort of the already-sorted exported order is the identity.
	e.SetPolicy(cfg.Policy)
	return nil
}

// validateState checks the structural invariants of an engine image.
func validateState(cores int, st *EngineState) error {
	n := len(st.Tasks)
	seen := make([]byte, n)
	mark := func(list []int, kind string, tag byte) error {
		for _, ti := range list {
			if ti < 0 || ti >= n {
				return fmt.Errorf("schedcore: state %s index %d outside task table of %d", kind, ti, n)
			}
			if seen[ti] != 0 {
				return fmt.Errorf("schedcore: state task %d appears in more than one of queue/running/free list", ti)
			}
			seen[ti] = tag
		}
		return nil
	}
	if err := mark(st.Queue, "queue", 1); err != nil {
		return err
	}
	if err := mark(st.Running, "running", 2); err != nil {
		return err
	}
	if err := mark(st.FreeSlots, "free-slot", 3); err != nil {
		return err
	}
	used := 0
	for _, ti := range st.Queue {
		if t := &st.Tasks[ti]; t.Started || t.Done {
			return fmt.Errorf("schedcore: state queued task %d already started or done", ti)
		}
	}
	for _, ti := range st.Running {
		t := &st.Tasks[ti]
		if !t.Started || t.Done {
			return fmt.Errorf("schedcore: state running task %d not in the running phase", ti)
		}
		used += t.Job.Cores
	}
	if st.Free != cores-used {
		return fmt.Errorf("schedcore: state free cores %d inconsistent with %d cores and %d in use", st.Free, cores, used)
	}
	return nil
}
