package schedcore

import "fmt"

// Runtime invariant checking, enabled by Config.Check. The checks cost a
// small constant factor per scheduling decision and nothing when off, so
// grids can turn them on wholesale (gensched.WithCheck) during engine
// development and fuzzing.
//
// The invariants, in the order they can trip:
//
//  1. Cores are never oversubscribed: the free-core counter stays within
//     [0, cores] across every start and completion.
//  2. No task starts before its submission time.
//  3. The waiting queue is always in (score, submit, id) order when a
//     scheduling pass reads it.
//  4. EASY: a backfill start never pushes the head's shadow time later —
//     the no-delay guarantee with respect to perceived runtimes.
//  5. Conservative: after every pass the availability profile is
//     non-negative everywhere — reservations never oversubscribe the
//     future machine.
//
// The post-run schedule audit (invariant 6, simref.CheckSchedule) lives
// with the drivers: internal/sim runs it from Options.Check, and the
// online replay harness runs it after a drained stream.

// failf records the first invariant violation; later ones are dropped so
// the root cause surfaces rather than its knock-on effects.
func (e *Engine) failf(format string, args ...any) {
	if e.checkErr == nil {
		e.checkErr = fmt.Errorf("sim: invariant violated at t=%g: %s", e.now, fmt.Sprintf(format, args...))
	}
}

// checkStart validates a task launch (invariants 1 and 2).
func (e *Engine) checkStart(ti int) {
	t := &e.tasks[ti]
	if t.Start < t.Job.Submit-TimeEps {
		e.failf("job %d started at %g before its submission at %g", t.Job.ID, t.Start, t.Job.Submit)
	}
	if e.free < 0 {
		e.failf("starting job %d oversubscribed the machine: %d cores free", t.Job.ID, e.free)
	}
}

// checkQueueOrder verifies invariant 3 on the queue a pass is about to
// serve.
func (e *Engine) checkQueueOrder() {
	for i := 1; i < len(e.queue); i++ {
		if e.queueLess(e.queue[i], e.queue[i-1]) {
			a, b := &e.tasks[e.queue[i-1]], &e.tasks[e.queue[i]]
			e.failf("queue out of (score, submit, id) order: job %d (score %g) before job %d (score %g)",
				a.Job.ID, a.score, b.Job.ID, b.score)
			return
		}
	}
}

// checkHeadNotDelayed verifies invariant 4: recompute the head's shadow
// after a backfill start and compare against the shadow that justified it.
func (e *Engine) checkHeadNotDelayed(shadowBefore float64) {
	shadowAfter, _ := e.headReservation()
	if shadowAfter > shadowBefore+TimeEps {
		e.failf("EASY backfill delayed the head job %d: shadow moved %g -> %g",
			e.tasks[e.queue[0]].Job.ID, shadowBefore, shadowAfter)
	}
}

// checkProfile verifies invariant 5 after a conservative pass.
func (e *Engine) checkProfile(p *profile) {
	for i, a := range p.avail {
		if a < 0 {
			e.failf("conservative reservations oversubscribe the machine: %d cores at t=%g", a, p.times[i])
			return
		}
	}
}
