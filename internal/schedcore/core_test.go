package schedcore

// White-box tests of the core's backfilling arithmetic: the conservative
// availability profile and the EASY head-reservation scan. End-to-end
// behavior is covered black-box through internal/sim (golden fixtures,
// oracle differentials, fuzzing) and internal/online (replay
// differentials).

import (
	"testing"

	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/workload"
)

// --- profile (conservative backfilling availability structure) -----------

func newTestProfile(now float64, free int) *profile {
	return &profile{times: []float64{now}, avail: []int{free}}
}

func TestProfileEnsureBreakSplits(t *testing.T) {
	p := newTestProfile(0, 4)
	p.times = append(p.times, 100)
	p.avail = append(p.avail, 8)
	i := p.ensureBreak(50)
	if i != 1 {
		t.Fatalf("break index = %d, want 1", i)
	}
	if len(p.times) != 3 || p.times[1] != 50 || p.avail[1] != 4 {
		t.Fatalf("profile after split: times=%v avail=%v", p.times, p.avail)
	}
	// Existing breakpoint is reused, not duplicated.
	if j := p.ensureBreak(50); j != 1 || len(p.times) != 3 {
		t.Fatalf("re-break: index=%d times=%v", j, p.times)
	}
	// Before-origin clamps to 0.
	if j := p.ensureBreak(-5); j != 0 {
		t.Fatalf("pre-origin break = %d", j)
	}
}

func TestProfileReserveAndRelease(t *testing.T) {
	p := newTestProfile(0, 4)
	p.reserve(10, 20, 3) // [10, 30): 1 core left
	// A 15s 2-core job starting now would overlap the reservation.
	if got := p.earliestStart(2, 15); got != 30 {
		t.Errorf("earliestStart(2,15) = %v, want 30", got)
	}
	// A 5s 2-core job finishes before the reservation begins.
	if got := p.earliestStart(2, 5); got != 0 {
		t.Errorf("earliestStart(2,5) = %v, want 0", got)
	}
	if got := p.earliestStart(1, 5); got != 0 {
		t.Errorf("earliestStart(1,5) = %v, want 0 (fits beside reservation)", got)
	}
	// After the reservation ends, full capacity returns.
	if got := p.earliestStart(4, 100); got != 30 {
		t.Errorf("earliestStart(4,100) = %v, want 30", got)
	}
}

func TestProfileReserveAtOrigin(t *testing.T) {
	p := newTestProfile(5, 4)
	p.reserve(5, 10, 4)
	if got := p.earliestStart(1, 1); got != 15 {
		t.Errorf("earliestStart = %v, want 15", got)
	}
}

func TestProfileGapTooShort(t *testing.T) {
	// Two reservations with a 10s hole; a 20s job cannot use the hole.
	p := newTestProfile(0, 4)
	p.reserve(0, 10, 4)  // busy [0,10)
	p.reserve(20, 30, 4) // busy [20,50)
	if got := p.earliestStart(1, 20); got != 50 {
		t.Errorf("earliestStart(1,20) = %v, want 50 (hole too short)", got)
	}
	if got := p.earliestStart(1, 10); got != 10 {
		t.Errorf("earliestStart(1,10) = %v, want 10 (hole fits exactly)", got)
	}
}

func TestBuildProfileCoalescesSimultaneousReleases(t *testing.T) {
	e := &Engine{cores: 8, free: 2, now: 100}
	e.tasks = []Task{
		{Job: workload.Job{ID: 1, Cores: 3}, Perceived: 50, Start: 100},
		{Job: workload.Job{ID: 2, Cores: 3}, Perceived: 50, Start: 100},
	}
	e.running = []int{0, 1}
	p := e.buildProfile()
	if len(p.times) != 2 {
		t.Fatalf("times = %v, want coalesced 2 points", p.times)
	}
	if p.avail[0] != 2 || p.avail[1] != 8 {
		t.Fatalf("avail = %v", p.avail)
	}
}

// --- EASY reservation arithmetic -----------------------------------------

func TestHeadReservationShadowAndExtra(t *testing.T) {
	// 8 cores; running: A(3 cores until 100), B(2 cores until 200).
	// free = 3. Head wants 5: shadow = 100 (3+3=6 >= 5), extra = 1.
	e := &Engine{cores: 8, free: 3, now: 50}
	e.tasks = []Task{
		{Job: workload.Job{ID: 1, Cores: 3}, Perceived: 50, Start: 50},  // ends 100
		{Job: workload.Job{ID: 2, Cores: 2}, Perceived: 150, Start: 50}, // ends 200
		{Job: workload.Job{ID: 3, Cores: 5}},                            // head
	}
	e.running = []int{0, 1}
	e.queue = []int{2}
	shadow, extra := e.headReservation()
	if shadow != 100 || extra != 1 {
		t.Errorf("reservation = (%v, %d), want (100, 1)", shadow, extra)
	}
}

func TestHeadReservationOverranEstimate(t *testing.T) {
	// A running task whose perceived finish is in the past counts as
	// releasing "now": the head's shadow is the current time.
	e := &Engine{cores: 4, free: 0, now: 500}
	e.tasks = []Task{
		{Job: workload.Job{ID: 1, Cores: 4}, Perceived: 100, Start: 100}, // believed done at 200 < now
		{Job: workload.Job{ID: 2, Cores: 4}},
	}
	e.running = []int{0}
	e.queue = []int{1}
	shadow, extra := e.headReservation()
	if shadow != 500 || extra != 0 {
		t.Errorf("reservation = (%v, %d), want (500, 0)", shadow, extra)
	}
}

func TestPerceivedFinishClamp(t *testing.T) {
	e := &Engine{now: 1000}
	e.tasks = []Task{{Job: workload.Job{ID: 1}, Perceived: 10, Start: 0}}
	if got := e.perceivedFinish(0); got != 1000 {
		t.Errorf("perceivedFinish = %v, want clamped to now", got)
	}
	e.now = 5
	if got := e.perceivedFinish(0); got != 10 {
		t.Errorf("perceivedFinish = %v, want 10", got)
	}
}

// --- task slot recycling ---------------------------------------------------

func TestAddTaskReusesReleasedSlots(t *testing.T) {
	e := NewEngine(4, Config{Policy: sched.FCFS(), ExternalCompletions: true})
	a := e.AddTask(workload.Job{ID: 1, Runtime: 10, Estimate: 10, Cores: 1})
	b := e.AddTask(workload.Job{ID: 2, Runtime: 10, Estimate: 10, Cores: 1})
	if a == b {
		t.Fatalf("distinct tasks share a slot: %d", a)
	}
	e.Release(a)
	c := e.AddTask(workload.Job{ID: 3, Runtime: 5, Estimate: 5, Cores: 1})
	if c != a {
		t.Errorf("AddTask after Release = slot %d, want recycled slot %d", c, a)
	}
	if e.NumTasks() != 2 {
		t.Errorf("task table grew to %d slots, want 2", e.NumTasks())
	}
	if got := e.Task(c).Job.ID; got != 3 {
		t.Errorf("recycled slot holds job %d, want 3", got)
	}
}

// --- event heap ------------------------------------------------------------

func TestEventHeapOrder(t *testing.T) {
	var h EventHeap
	// Same instant: completions (kind 0) before arrivals (kind 1), then
	// insertion order within a kind.
	h.Push(Event{Time: 5, Kind: KindArrival, Ref: 1})
	h.Push(Event{Time: 3, Kind: KindArrival, Ref: 2})
	h.Push(Event{Time: 5, Kind: KindCompletion, Ref: 3})
	h.Push(Event{Time: 5, Kind: KindArrival, Ref: 4})
	h.Push(Event{Time: 3, Kind: KindCompletion, Ref: 5})
	want := []int{5, 2, 3, 1, 4}
	for i, w := range want {
		if h.Len() != len(want)-i {
			t.Fatalf("len = %d at pop %d", h.Len(), i)
		}
		if got := h.Pop().Ref; got != w {
			t.Fatalf("pop %d = ref %d, want %d", i, got, w)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("heap not drained: %d left", h.Len())
	}
}
