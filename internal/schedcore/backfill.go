package schedcore

import (
	"math"
	"sort"
)

// perceivedFinish is when the scheduler believes a running task will end:
// its start plus the perceived runtime, clamped to now (a task that outran
// its estimate is believed to end imminently, the standard EASY treatment).
func (e *Engine) perceivedFinish(ti int) float64 {
	pf := e.rawPF(ti)
	if pf < e.now {
		pf = e.now
	}
	return pf
}

// headReservation computes the EASY reservation for the queue head: the
// shadow time (earliest moment enough cores are believed free for it) and
// the number of extra cores (free at the shadow time beyond what the head
// needs). Backfill candidates must either finish by the shadow time or fit
// within the extra cores.
//
// The running set is kept sorted by perceived finish (see Engine.running),
// so the scan needs no sort and no scratch slice: it walks releases in
// order, accumulating freed cores until the head fits.
func (e *Engine) headReservation() (shadow float64, extra int) {
	need := e.tasks[e.queue[0]].Job.Cores
	free := e.free
	for _, ri := range e.running {
		free += e.tasks[ri].Job.Cores
		if free >= need {
			return e.perceivedFinish(ri), free - need
		}
	}
	// Unreachable for validated inputs: the drivers reject jobs larger
	// than the platform, so the full machine always satisfies the head.
	// Degrade gracefully regardless — no extra cores, the head never
	// starts — and record the violation when invariant checking is on.
	if e.cfg.Check {
		e.failf("EASY head job %d requires %d cores but the whole platform frees only %d",
			e.tasks[e.queue[0]].Job.ID, need, free)
	}
	return math.Inf(1), 0
}

// easyBackfill implements aggressive (EASY) backfilling: scan the queue
// behind the blocked head and start any task that fits now and cannot
// delay the head's reservation. Candidates are visited in queue priority
// order, or in the order induced by cfg.BackfillOrder when set (EASY-SJBF
// style variants). After each start the reservation is recomputed against
// the enlarged running set, which keeps the no-delay guarantee exact with
// respect to perceived runtimes.
//
// Started candidates are tombstoned in place (Task.Started) and the queue
// is compacted once at the end of the pass, replacing the former O(n)
// splice per start with one O(n) sweep per pass.
func (e *Engine) easyBackfill() {
	nStarted := 0
	for e.free > 0 && len(e.queue)-nStarted > 1 {
		shadow, extra := e.headReservation()
		started := false
		if e.cfg.BackfillOrder == nil {
			// Queue priority order: classic EASY. Scan positions directly,
			// skipping tasks already started this pass.
			for i := 1; i < len(e.queue); i++ {
				ti := e.queue[i]
				if e.tasks[ti].Started {
					continue
				}
				if e.tryBackfill(ti, shadow, extra) {
					started = true
					break
				}
			}
		} else {
			for _, i := range e.backfillOrder() {
				if e.tryBackfill(e.queue[i], shadow, extra) {
					started = true
					break
				}
			}
		}
		if !started {
			break
		}
		nStarted++
		if e.cfg.Check {
			e.checkHeadNotDelayed(shadow)
		}
	}
	if nStarted > 0 {
		e.compactQueue()
	}
}

// tryBackfill starts candidate task ti if it fits now and cannot delay
// the head: it must finish by the shadow time or fit within the extra
// cores. Both easyBackfill candidate orders share this acceptance test so
// the safety condition cannot drift between them.
func (e *Engine) tryBackfill(ti int, shadow float64, extra int) bool {
	t := &e.tasks[ti]
	if t.Job.Cores > e.free {
		return false
	}
	if e.now+t.Perceived <= shadow+TimeEps || t.Job.Cores <= extra {
		e.startTask(ti, true)
		return true
	}
	return false
}

// compactQueue removes tombstoned (started) entries from the waiting
// queue in one pass, preserving the order of the remainder.
func (e *Engine) compactQueue() {
	w := 0
	for _, ti := range e.queue {
		if !e.tasks[ti].Started {
			e.queue[w] = ti
			w++
		}
	}
	e.queue = e.queue[:w]
}

// backfillOrder returns the queue indices (excluding the head and any
// tombstoned entries) in the order backfill candidates should be
// considered under cfg.BackfillOrder. The index and key slices are engine
// scratch, reused across passes.
func (e *Engine) backfillOrder() []int {
	order := e.orderBuf[:0]
	for i := 1; i < len(e.queue); i++ {
		if !e.tasks[e.queue[i]].Started {
			order = append(order, i)
		}
	}
	e.orderBuf = order
	keys := e.keysBuf
	if cap(keys) < len(e.queue) {
		keys = make([]float64, len(e.queue))
	}
	keys = keys[:len(e.queue)]
	e.keysBuf = keys
	p := e.cfg.BackfillOrder
	for _, i := range order {
		keys[i] = p.Score(e.view(e.queue[i]))
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if keys[ia] != keys[ib] {
			return keys[ia] < keys[ib]
		}
		ta, tb := &e.tasks[e.queue[ia]], &e.tasks[e.queue[ib]]
		if ta.Job.Submit != tb.Job.Submit {
			return ta.Job.Submit < tb.Job.Submit
		}
		return ta.Job.ID < tb.Job.ID
	})
	return order
}

// profile tracks future core availability as a step function over time
// intervals [times[i], times[i+1]), with the final interval extending to
// infinity. Conservative backfilling reserves every queued task in it.
type profile struct {
	times []float64
	avail []int
}

// buildProfile seeds the engine's scratch availability profile from the
// running set. The running set is already in perceived-finish order, so
// releases append in one sorted pass with no scratch slice and no sort.
func (e *Engine) buildProfile() *profile {
	p := &e.prof
	p.times = append(p.times[:0], e.now)
	p.avail = append(p.avail[:0], e.free)
	for _, ri := range e.running {
		at := e.perceivedFinish(ri)
		cores := e.tasks[ri].Job.Cores
		last := len(p.times) - 1
		if at <= p.times[last]+TimeEps {
			// Coalesce releases at (numerically) the same instant.
			p.avail[last] += cores
			continue
		}
		p.times = append(p.times, at)
		p.avail = append(p.avail, p.avail[last]+cores)
	}
	return p
}

// ensureBreak splits the profile so that t is a breakpoint and returns its
// index. Times before the first breakpoint are clamped to it.
func (p *profile) ensureBreak(t float64) int {
	if t <= p.times[0] {
		return 0
	}
	i := sort.SearchFloat64s(p.times, t)
	if i < len(p.times) && p.times[i] == t {
		return i
	}
	// t falls inside interval i-1; split it.
	p.times = append(p.times, 0)
	p.avail = append(p.avail, 0)
	copy(p.times[i+1:], p.times[i:])
	copy(p.avail[i+1:], p.avail[i:])
	p.times[i] = t
	p.avail[i] = p.avail[i-1]
	return i
}

// earliestStart returns the earliest time >= the profile origin at which
// cores are available continuously for the given duration.
func (p *profile) earliestStart(cores int, duration float64) float64 {
	for i := 0; i < len(p.times); i++ {
		if p.avail[i] < cores {
			continue
		}
		t := p.times[i]
		end := t + duration
		ok := true
		for j := i; j < len(p.times) && p.times[j] < end-TimeEps; j++ {
			if p.avail[j] < cores {
				ok = false
				break
			}
		}
		if ok {
			return t
		}
	}
	// The final interval always has the whole machine; validated jobs fit.
	return p.times[len(p.times)-1]
}

// ensureBreakExtend is ensureBreak that also handles times beyond the last
// breakpoint by appending a new final interval (inheriting the previous
// final availability, which is the fully free machine).
func (p *profile) ensureBreakExtend(t float64) int {
	last := len(p.times) - 1
	if t > p.times[last] {
		p.times = append(p.times, t)
		p.avail = append(p.avail, p.avail[last])
		return len(p.times) - 1
	}
	return p.ensureBreak(t)
}

// reserve subtracts cores over [t, t+duration) in the profile.
func (p *profile) reserve(t, duration float64, cores int) {
	start := p.ensureBreakExtend(t)
	end := p.ensureBreakExtend(t + duration)
	for i := start; i < end; i++ {
		p.avail[i] -= cores
	}
}

// conservativeBackfill gives every queued task a reservation in priority
// order; a task starts now only when its reservation is immediate, which
// guarantees no task before it in the queue is delayed. The availability
// profile lives on the engine and is rebuilt in place each pass; started
// tasks are tombstoned and compacted once at the end, like easyBackfill.
func (e *Engine) conservativeBackfill() {
	p := e.buildProfile()
	nStarted := 0
	for _, ti := range e.queue {
		t := &e.tasks[ti]
		st := p.earliestStart(t.Job.Cores, t.Perceived)
		p.reserve(st, t.Perceived, t.Job.Cores)
		if st <= e.now+TimeEps && t.Job.Cores <= e.free {
			e.startTask(ti, true)
			nStarted++
		}
	}
	if e.cfg.Check {
		e.checkProfile(p)
	}
	if nStarted > 0 {
		e.compactQueue()
	}
}
