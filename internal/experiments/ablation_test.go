package experiments

import (
	"strings"
	"testing"

	"github.com/hpcsched/gensched/internal/sched"
)

func TestLoadSweep(t *testing.T) {
	cfg := testConfig()
	cfg.Sequences = 2
	pols := []sched.Policy{sched.FCFS(), sched.F1()}
	res, err := LoadSweep(cfg, 256, []float64{0.7, 1.1}, pols)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Medians) != 2 || len(res.Medians[0]) != 2 {
		t.Fatalf("medians shape = %dx%d", len(res.Medians), len(res.Medians[0]))
	}
	// FCFS must degrade sharply from light to saturated load.
	if res.Medians[1][0] <= res.Medians[0][0] {
		t.Errorf("FCFS did not degrade with load: %v -> %v", res.Medians[0][0], res.Medians[1][0])
	}
	// F1 stays far below FCFS when saturated.
	if res.Medians[1][1] >= res.Medians[1][0]/5 {
		t.Errorf("F1 (%v) not well below FCFS (%v) at load 1.1", res.Medians[1][1], res.Medians[1][0])
	}
	if out := res.Format(); !strings.Contains(out, "load") || !strings.Contains(out, "FCFS") {
		t.Errorf("sweep format:\n%s", out)
	}
	if _, err := LoadSweep(cfg, 256, nil, pols); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestCrossovers(t *testing.T) {
	r := &LoadSweepResult{
		Loads:    []float64{0.5, 1.0, 1.5},
		Policies: []string{"A", "B"},
		Medians: [][]float64{
			{1, 2}, // A below B
			{3, 2}, // flipped
			{4, 2}, // stays flipped
		},
	}
	xs := r.Crossovers()
	if len(xs) != 1 || !strings.Contains(xs[0], "A/B between load 0.50 and 1.00") {
		t.Errorf("crossovers = %v", xs)
	}
}

func TestBackfillGain(t *testing.T) {
	cfg := testConfig()
	cfg.Sequences = 2
	ws, err := ModelWindows(cfg, 256)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{ID: "gain", Name: "gain", Cores: 256, UseEstimates: true, Windows: ws}
	gains, err := BackfillGain(sc, []sched.Policy{sched.FCFS(), sched.F1()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's §4.2.3 observation: FCFS gains far more than F1.
	if gains["FCFS"] <= gains["F1"] {
		t.Errorf("FCFS gain %.2f not above F1 gain %.2f", gains["FCFS"], gains["F1"])
	}
	if gains["FCFS"] < 2 {
		t.Errorf("FCFS gain %.2f implausibly small", gains["FCFS"])
	}
}
