package experiments

import (
	"fmt"
	"math"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/expr"
	"github.com/hpcsched/gensched/internal/mlfit"
	"github.com/hpcsched/gensched/internal/trainer"
)

// trainingSpec is the paper's training configuration, shared by the
// Figure 1, Figure 2 and Table 3 experiments.
func trainingSpec() trainer.TupleSpec { return trainer.DefaultSpec() }

// Fig1 reproduces Figure 1: trial score distributions of example tuples
// (|S|=16, |Q|=32, 256 cores). It returns one TupleScores per requested
// example; the paper shows two. The mean line sits at 1/|Q|.
func Fig1(cfg Config, examples int) ([]*trainer.TupleScores, error) {
	if examples <= 0 {
		examples = 2
	}
	out := make([]*trainer.TupleScores, 0, examples)
	for i := 0; i < examples; i++ {
		tuple, err := trainer.GenerateTuple(trainingSpec(), dist.Split(cfg.Seed, uint64(i)))
		if err != nil {
			return nil, err
		}
		ts, err := trainer.ScoreTuple(tuple, trainer.TrialConfig{
			Trials:  cfg.Trials,
			Workers: cfg.workers(),
			Seed:    dist.Split(cfg.Seed, uint64(1000+i)),
		})
		if err != nil {
			return nil, err
		}
		out = append(out, ts)
	}
	return out, nil
}

// Fig2Result is the Figure 2 series: per trial count, the normalized
// standard deviation of the estimated scores across repetitions.
type Fig2Result struct {
	Counts     []int
	Normalized []float64
}

// Fig2 reproduces the convergence study of Figure 2.
func Fig2(cfg Config) (*Fig2Result, error) {
	tuple, err := trainer.GenerateTuple(trainingSpec(), dist.Split(cfg.Seed, 42))
	if err != nil {
		return nil, err
	}
	series, err := trainer.Convergence(tuple, cfg.ConvergenceCounts, cfg.ConvergenceReps,
		trainer.TrialConfig{Workers: cfg.workers(), Seed: dist.Split(cfg.Seed, 43)})
	if err != nil {
		return nil, err
	}
	return &Fig2Result{Counts: cfg.ConvergenceCounts, Normalized: series}, nil
}

// Table3Result is the regression outcome: the score distribution size and
// the four best-ranked distinct nonlinear functions.
type Table3Result struct {
	Samples int
	Best    []mlfit.Result
}

// Table3 reproduces Table 3: generate the score distribution from
// cfg.Tuples tuples × cfg.Trials trials, fit all 576 candidate functions
// with the Eq. 4 weighting, and keep the four best distinct ones.
func Table3(cfg Config) (*Table3Result, error) {
	samples, err := trainer.ScoreDistribution(cfg.Tuples, trainingSpec(),
		trainer.TrialConfig{Trials: cfg.Trials, Workers: cfg.workers()},
		dist.Split(cfg.Seed, 7))
	if err != nil {
		return nil, err
	}
	ranked, err := mlfit.FitAll(samples, mlfit.Options{Workers: cfg.workers()})
	if err != nil {
		return nil, err
	}
	return &Table3Result{Samples: len(samples), Best: mlfit.TopDistinct(ranked, 4)}, nil
}

// Heatmap is one panel of Figure 3: a normalized score grid over two task
// dimensions with the third held fixed. Lower values (darker in the
// paper) mean higher scheduling priority.
type Heatmap struct {
	Policy   string
	XLabel   string
	YLabel   string
	Xs, Ys   []float64
	Z        [][]float64 // Z[yi][xi], normalized to [0,1]
	FixedVar string
	FixedVal float64
}

// Fig3 reproduces Figure 3 for the four Table 3 policies: three panels
// (r×n, r×s, n×s) per policy, each normalized to [0,1] over the grid.
func Fig3(funcs []expr.Func, names []string, gridSize int) ([]Heatmap, error) {
	if len(funcs) != len(names) {
		return nil, fmt.Errorf("experiments: %d functions, %d names", len(funcs), len(names))
	}
	if gridSize < 2 {
		gridSize = 32
	}
	linspace := func(lo, hi float64) []float64 {
		out := make([]float64, gridSize)
		for i := range out {
			out[i] = lo + (hi-lo)*float64(i)/float64(gridSize-1)
		}
		return out
	}
	rs := linspace(1, 2.7e4) // processing time axis of the paper's panels
	ns := linspace(1, 256)   // cores axis
	ss := linspace(1, 86400) // submit time axis (first day)
	const fixedS = 43200.0   // noon
	const fixedN = 128.0     // half machine
	const fixedR = 1.35e4    // mid runtime
	var out []Heatmap
	for i, f := range funcs {
		panels := []struct {
			xl, yl, fv string
			xs, ys     []float64
			fixed      float64
			eval       func(x, y float64) float64
		}{
			{"processing time (s)", "cores", "s", rs, ns, fixedS,
				func(x, y float64) float64 { return f.Eval(x, y, fixedS) }},
			{"processing time (s)", "submit time (s)", "n", rs, ss, fixedN,
				func(x, y float64) float64 { return f.Eval(x, fixedN, y) }},
			{"cores", "submit time (s)", "r", ns, ss, fixedR,
				func(x, y float64) float64 { return f.Eval(fixedR, x, y) }},
		}
		for _, p := range panels {
			h := Heatmap{
				Policy: names[i], XLabel: p.xl, YLabel: p.yl,
				Xs: p.xs, Ys: p.ys, FixedVar: p.fv, FixedVal: p.fixed,
				Z: make([][]float64, len(p.ys)),
			}
			lo, hi := math.Inf(1), math.Inf(-1)
			for yi, y := range p.ys {
				h.Z[yi] = make([]float64, len(p.xs))
				for xi, x := range p.xs {
					v := p.eval(x, y)
					h.Z[yi][xi] = v
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
			}
			span := hi - lo
			if span <= 0 {
				span = 1
			}
			for yi := range h.Z {
				for xi := range h.Z[yi] {
					h.Z[yi][xi] = (h.Z[yi][xi] - lo) / span
				}
			}
			out = append(out, h)
		}
	}
	return out, nil
}
