package experiments

import (
	"fmt"
	"strings"

	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/stats"
)

// LoadSweepResult maps offered load to per-policy median AVEbsld. It
// extends the paper's fixed-load evaluation with the question operators
// actually ask: at what load does policy choice start to matter, and do
// the learned policies ever lose their lead?
type LoadSweepResult struct {
	Loads    []float64
	Policies []string
	Medians  [][]float64 // [load][policy]
}

// LoadSweep runs the model scenario at each offered load.
func LoadSweep(cfg Config, cores int, loads []float64, policies []sched.Policy) (*LoadSweepResult, error) {
	if len(loads) == 0 {
		return nil, fmt.Errorf("experiments: load sweep needs at least one load")
	}
	out := &LoadSweepResult{Loads: loads, Policies: sched.Names(policies)}
	for _, load := range loads {
		c := cfg
		c.ModelLoad = load
		ws, err := ModelWindows(c, cores)
		if err != nil {
			return nil, fmt.Errorf("experiments: load %.2f: %w", load, err)
		}
		sc := Scenario{
			ID:    fmt.Sprintf("loadsweep-%.2f", load),
			Name:  fmt.Sprintf("Lublin model, load %.2f", load),
			Cores: cores, Windows: ws,
		}
		res, err := RunDynamic(sc, policies, cfg.workers())
		if err != nil {
			return nil, err
		}
		out.Medians = append(out.Medians, res.Medians())
	}
	return out, nil
}

// Crossovers reports, per pair of policies (a, b), the loads where their
// median ordering flips between consecutive sweep points — the "where
// crossovers fall" series of the reproduction brief.
func (r *LoadSweepResult) Crossovers() []string {
	var out []string
	for a := 0; a < len(r.Policies); a++ {
		for b := a + 1; b < len(r.Policies); b++ {
			for li := 1; li < len(r.Loads); li++ {
				prev := r.Medians[li-1][a] - r.Medians[li-1][b]
				cur := r.Medians[li][a] - r.Medians[li][b]
				if prev*cur < 0 {
					out = append(out, fmt.Sprintf("%s/%s between load %.2f and %.2f",
						r.Policies[a], r.Policies[b], r.Loads[li-1], r.Loads[li]))
				}
			}
		}
	}
	return out
}

// Format renders the sweep as a table, loads down, policies across.
func (r *LoadSweepResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%6s", "load")
	for _, p := range r.Policies {
		fmt.Fprintf(&sb, " %10s", p)
	}
	sb.WriteString("\n")
	for li, load := range r.Loads {
		fmt.Fprintf(&sb, "%6.2f", load)
		for _, v := range r.Medians[li] {
			fmt.Fprintf(&sb, " %10.2f", v)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// BackfillGain quantifies how much each policy benefits from EASY
// backfilling on the same windows: the ratio of no-backfill to EASY
// median AVEbsld (the paper's §4.2.3 observation that FCFS gains most and
// the learned functions least).
func BackfillGain(sc Scenario, policies []sched.Policy, workers int) (map[string]float64, error) {
	plain := sc
	plain.Backfill = sim.BackfillNone
	easy := sc
	easy.Backfill = sim.BackfillEASY
	a, err := RunDynamic(plain, policies, workers)
	if err != nil {
		return nil, err
	}
	b, err := RunDynamic(easy, policies, workers)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(policies))
	for i, name := range a.Policies {
		ma, mb := stats.Median(a.PerSeq[i]), stats.Median(b.PerSeq[i])
		if mb > 0 {
			out[name] = ma / mb
		}
	}
	return out, nil
}
