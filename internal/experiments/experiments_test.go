package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/hpcsched/gensched/internal/expr"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/traces"
	"github.com/hpcsched/gensched/internal/workload"
)

// testConfig is even smaller than QuickConfig: unit tests must stay fast.
func testConfig() Config {
	cfg := QuickConfig()
	cfg.Sequences = 3
	cfg.WindowDays = 1
	cfg.Trials = 512
	cfg.Tuples = 3
	cfg.ConvergenceCounts = []int{64, 256}
	cfg.ConvergenceReps = 3
	return cfg
}

func TestModelWindows(t *testing.T) {
	cfg := testConfig()
	ws, err := ModelWindows(cfg, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != cfg.Sequences {
		t.Fatalf("got %d windows, want %d", len(ws), cfg.Sequences)
	}
	for wi, w := range ws {
		if len(w) == 0 {
			t.Fatalf("window %d empty", wi)
		}
		for _, j := range w {
			if j.Submit < 1 || j.Submit > cfg.windowSec()+1 {
				t.Fatalf("window %d: submit %v outside rebased range", wi, j.Submit)
			}
			if j.Estimate < j.Runtime {
				t.Fatalf("window %d: estimate below runtime", wi)
			}
			if j.Cores > 256 {
				t.Fatalf("window %d: %d cores", wi, j.Cores)
			}
		}
	}
}

func TestRunDynamicShape(t *testing.T) {
	// The headline qualitative result: on a saturated Lublin workload, F1
	// must beat FCFS by a wide margin, and the learned policies must beat
	// the ad-hoc ones.
	cfg := testConfig()
	ws, err := ModelWindows(cfg, 256)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{ID: "test", Name: "test", Cores: 256, Windows: ws}
	policies := []sched.Policy{sched.FCFS(), sched.WFP3(), sched.F1()}
	res, err := RunDynamic(sc, policies, 0)
	if err != nil {
		t.Fatal(err)
	}
	med := res.Medians()
	fcfs, wfp, f1 := med[0], med[1], med[2]
	// At this reduced scale (1-day windows) the starvation effects that
	// separate F1 from SPT in the paper's 15-day sequences cannot build
	// up, so assert the robust orderings: F1 crushes FCFS and beats WFP3.
	// The full-scale comparison lives in the benchmark harness and
	// EXPERIMENTS.md.
	if f1 >= fcfs/10 {
		t.Errorf("F1 median %.1f not far below FCFS %.1f", f1, fcfs)
	}
	if f1 >= wfp {
		t.Errorf("F1 median %.1f not below WFP3 %.1f", f1, wfp)
	}
	t.Logf("medians: FCFS=%.1f WFP3=%.1f F1=%.1f", fcfs, wfp, f1)
}

func TestRunDynamicDeterministicAcrossWorkers(t *testing.T) {
	cfg := testConfig()
	cfg.Sequences = 2
	ws, err := ModelWindows(cfg, 256)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{ID: "det", Name: "det", Cores: 256, Windows: ws}
	pol := []sched.Policy{sched.FCFS(), sched.F1()}
	a, err := RunDynamic(sc, pol, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDynamic(sc, pol, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.PerSeq {
		for j := range a.PerSeq[i] {
			if a.PerSeq[i][j] != b.PerSeq[i][j] {
				t.Fatalf("cell (%d,%d) differs across worker counts", i, j)
			}
		}
	}
}

func TestRunDynamicErrors(t *testing.T) {
	if _, err := RunDynamic(Scenario{}, []sched.Policy{sched.FCFS()}, 1); err != ErrNoWindows {
		t.Errorf("err = %v, want ErrNoWindows", err)
	}
}

// dummyWindows builds a minimal stand-in workload for wiring tests.
func dummyWindows() [][]workload.Job {
	return [][]workload.Job{{{ID: 1, Submit: 1, Runtime: 10, Estimate: 10, Cores: 1}}}
}

func TestSuiteScenarios(t *testing.T) {
	// Build a minimal fake suite; scenario wiring must match the paper.
	suite := &Suite{
		Config:    testConfig(),
		Model256:  dummyWindows(),
		Model1024: dummyWindows(),
	}
	for _, spec := range traces.All() {
		suite.Traces = append(suite.Traces, TraceWorkload{Spec: spec, Windows: dummyWindows()})
	}
	scs := suite.Scenarios()
	if len(scs) != 18 {
		t.Fatalf("got %d scenarios, want 18", len(scs))
	}
	if scs[0].ID != "fig4a" || scs[5].ID != "fig6b" || scs[6].ID != "fig7a" || scs[17].ID != "fig9d" {
		t.Errorf("scenario order wrong: %s %s %s %s", scs[0].ID, scs[5].ID, scs[6].ID, scs[17].ID)
	}
	if scs[0].UseEstimates || scs[0].Backfill != sim.BackfillNone {
		t.Error("fig4a conditions wrong")
	}
	if !scs[2].UseEstimates || scs[2].Backfill != sim.BackfillNone {
		t.Error("fig5a conditions wrong")
	}
	if !scs[4].UseEstimates || scs[4].Backfill != sim.BackfillEASY {
		t.Error("fig6a conditions wrong")
	}
	if scs[6].UseEstimates {
		t.Error("fig7a must use actual runtimes")
	}
	if scs[17].Backfill != sim.BackfillEASY {
		t.Error("fig9d must backfill")
	}
}

func TestFig1(t *testing.T) {
	cfg := testConfig()
	res, err := Fig1(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d examples", len(res))
	}
	for _, ts := range res {
		if len(ts.Scores) != 32 {
			t.Fatalf("got %d scores, want 32", len(ts.Scores))
		}
		var sum float64
		for _, s := range ts.Scores {
			sum += s
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("scores sum to %v", sum)
		}
	}
}

func TestFig2(t *testing.T) {
	cfg := testConfig()
	res, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Normalized) != len(cfg.ConvergenceCounts) {
		t.Fatal("series length mismatch")
	}
	if math.Abs(res.Normalized[0]-1) > 1e-12 {
		t.Errorf("series must be normalized to its first point, got %v", res.Normalized[0])
	}
	last := res.Normalized[len(res.Normalized)-1]
	if last >= 1 {
		t.Errorf("stddev did not shrink with more trials: %v", res.Normalized)
	}
}

func TestTable3(t *testing.T) {
	cfg := testConfig()
	res, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != cfg.Tuples*32 {
		t.Errorf("samples = %d, want %d", res.Samples, cfg.Tuples*32)
	}
	if len(res.Best) != 4 {
		t.Fatalf("got %d best functions, want 4", len(res.Best))
	}
	for i := 1; i < len(res.Best); i++ {
		if res.Best[i].Rank < res.Best[i-1].Rank {
			t.Error("best functions not rank-ordered")
		}
	}
	out := FormatTable3(res)
	if !strings.Contains(out, "F1:") || !strings.Contains(out, "fitness=") {
		t.Errorf("report missing sections:\n%s", out)
	}
}

func TestFig3(t *testing.T) {
	funcs := []expr.Func{
		{Form: expr.Form{A: expr.BaseLog, B: expr.BaseID, C: expr.BaseLog, Op1: expr.OpMul, Op2: expr.OpAdd}, C: [3]float64{1, 1, 870}},
		{Form: expr.Form{A: expr.BaseID, B: expr.BaseID, C: expr.BaseLog, Op1: expr.OpMul, Op2: expr.OpAdd}, C: [3]float64{1, 1, 6.86e6}},
	}
	maps, err := Fig3(funcs, []string{"F1", "F3"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) != 6 { // 3 panels x 2 functions
		t.Fatalf("got %d heatmaps, want 6", len(maps))
	}
	for _, h := range maps {
		for _, row := range h.Z {
			for _, v := range row {
				if v < 0 || v > 1 || math.IsNaN(v) {
					t.Fatalf("unnormalized Z value %v", v)
				}
			}
		}
	}
	// The r×s panel must show priority increasing (Z decreasing) with
	// earlier submission: top row (late) has higher mean than bottom (early).
	var rxs Heatmap
	for _, h := range maps {
		if h.Policy == "F1" && h.YLabel == "submit time (s)" {
			rxs = h
			break
		}
	}
	botMean, topMean := 0.0, 0.0
	for xi := range rxs.Xs {
		botMean += rxs.Z[0][xi]
		topMean += rxs.Z[len(rxs.Ys)-1][xi]
	}
	if botMean >= topMean {
		t.Error("F1 heatmap does not prioritize earlier submissions")
	}
	if _, err := Fig3(funcs, []string{"only-one"}, 8); err == nil {
		t.Error("mismatched names accepted")
	}
	if out := RenderHeatmap(rxs, 40); !strings.Contains(out, "F1") {
		t.Error("heatmap render missing label")
	}
}

func TestTable5(t *testing.T) {
	cfg := testConfig()
	rows, err := Table5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	wantUtil := []float64{0.620, 0.596, 0.767, 0.852}
	for i, r := range rows {
		if math.Abs(r.Utilization-wantUtil[i]) > 0.03 {
			t.Errorf("%s utilization = %.3f, want %.3f", r.Name, r.Utilization, wantUtil[i])
		}
	}
	out := FormatTable5(rows)
	if !strings.Contains(out, "Curie") || !strings.Contains(out, "CTC SP2") {
		t.Errorf("table 5 render:\n%s", out)
	}
}

func TestReportsRender(t *testing.T) {
	cfg := testConfig()
	cfg.Sequences = 2
	ws, err := ModelWindows(cfg, 256)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{ID: "fig4a", Name: "lublin_256", Cores: 256, Windows: ws}
	res, err := RunDynamic(sc, []sched.Policy{sched.FCFS(), sched.F1()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.ArtifactReport()
	for _, want := range []string{"Medians", "Means", "Standard Deviations", "FCFS=", "F1="} {
		if !strings.Contains(rep, want) {
			t.Errorf("artifact report missing %q", want)
		}
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + 2 policies
		t.Errorf("csv has %d lines:\n%s", len(lines), buf.String())
	}
	t4 := &Table4Result{
		Policies: []string{"FCFS", "F1"},
		Rows:     []Table4Row{{Label: sc.Name, Medians: res.Medians()}},
	}
	if out := t4.Format(); !strings.Contains(out, "lublin_256") {
		t.Errorf("table 4 render:\n%s", out)
	}
}
