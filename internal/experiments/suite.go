package experiments

import (
	"fmt"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/traces"
	"github.com/hpcsched/gensched/internal/workload"
)

// Suite holds the workloads for all 18 evaluation scenarios (Figures 4–9,
// summarized by Table 4). Workloads are built once and shared across the
// three conditions (actual runtimes, estimates, backfilling), exactly as
// the paper re-schedules the same sequences under each condition.
type Suite struct {
	Config    Config
	Model256  [][]workload.Job
	Model1024 [][]workload.Job
	Traces    []TraceWorkload
}

// TraceWorkload is one synthetic platform's windows.
type TraceWorkload struct {
	Spec    traces.PlatformSpec
	Windows [][]workload.Job
}

// BuildSuite generates every workload of the evaluation.
func BuildSuite(cfg Config) (*Suite, error) {
	s := &Suite{Config: cfg}
	var err error
	if s.Model256, err = ModelWindows(cfg, 256); err != nil {
		return nil, err
	}
	if s.Model1024, err = ModelWindows(cfg, 1024); err != nil {
		return nil, err
	}
	for _, spec := range traces.All() {
		w, err := TraceWindows(cfg, spec)
		if err != nil {
			return nil, err
		}
		s.Traces = append(s.Traces, TraceWorkload{Spec: spec, Windows: w})
	}
	return s, nil
}

// Scenarios lists all 18 scenarios in the paper's Table 4 row order.
func (s *Suite) Scenarios() []Scenario {
	mk := func(id, name string, cores int, w [][]workload.Job, est bool, bf sim.BackfillMode) Scenario {
		return Scenario{ID: id, Name: name, Cores: cores, UseEstimates: est, Backfill: bf, Windows: w}
	}
	out := []Scenario{
		mk("fig4a", "Workload model, nmax=256, actual runtimes r", 256, s.Model256, false, sim.BackfillNone),
		mk("fig4b", "Workload model, nmax=1024, actual runtimes r", 1024, s.Model1024, false, sim.BackfillNone),
		mk("fig5a", "Workload model, nmax=256, runtime estimates e", 256, s.Model256, true, sim.BackfillNone),
		mk("fig5b", "Workload model, nmax=1024, runtime estimates e", 1024, s.Model1024, true, sim.BackfillNone),
		mk("fig6a", "Workload model, nmax=256, aggressive backfilling", 256, s.Model256, true, sim.BackfillEASY),
		mk("fig6b", "Workload model, nmax=1024, aggressive backfilling", 1024, s.Model1024, true, sim.BackfillEASY),
	}
	figs := []struct {
		fig  string
		est  bool
		bf   sim.BackfillMode
		cond string
	}{
		{"fig7", false, sim.BackfillNone, "actual runtimes r"},
		{"fig8", true, sim.BackfillNone, "runtime estimates e"},
		{"fig9", true, sim.BackfillEASY, "aggressive backfilling"},
	}
	for _, f := range figs {
		for ti, tw := range s.Traces {
			id := fmt.Sprintf("%s%c", f.fig, 'a'+ti)
			name := fmt.Sprintf("%s workload trace, %s", tw.Spec.Name, f.cond)
			out = append(out, mk(id, name, tw.Spec.Cores, tw.Windows, f.est, f.bf))
		}
	}
	return out
}

// Table5Row is one row of Table 5: the platform inventory of the traces.
type Table5Row struct {
	Name        string
	Year        int
	Cores       int
	Jobs        int
	Utilization float64
	Days        float64
}

// Table5 reproduces Table 5 against the synthetic traces: the platform
// characteristics the substitution preserves (machine size, utilization)
// and those it scales down (job count, duration — documented in
// DESIGN.md).
func Table5(cfg Config) ([]Table5Row, error) {
	days := cfg.WindowDays*float64(cfg.Sequences) + cfg.WindowDays
	rows := make([]Table5Row, 0, 4)
	for _, spec := range traces.All() {
		tr, err := traces.Generate(spec, days, dist.Split(cfg.Seed, uint64(spec.Cores)))
		if err != nil {
			return nil, err
		}
		st := tr.ComputeStats()
		rows = append(rows, Table5Row{
			Name:        spec.Name,
			Year:        spec.Year,
			Cores:       spec.Cores,
			Jobs:        st.Jobs,
			Utilization: st.Utilization,
			Days:        st.DurationSec / 86400,
		})
	}
	return rows, nil
}

// Table4Row is one row of Table 4: scenario label plus the per-policy
// medians of the average bounded slowdown.
type Table4Row struct {
	Label   string
	Medians []float64 // in Policies order
}

// Table4Result carries all rows plus the policy header.
type Table4Result struct {
	Policies []string
	Rows     []Table4Row
	Results  []*DynamicResult // full per-scenario results, same order
}

// Table4 reproduces Table 4 by running every scenario of the suite with
// the given policies (the paper's eight: FCFS, WFP, UNI, SPT, F4–F1).
func (s *Suite) Table4(policies []sched.Policy) (*Table4Result, error) {
	out := &Table4Result{Policies: sched.Names(policies)}
	for _, sc := range s.Scenarios() {
		res, err := RunDynamic(sc, policies, s.Config.workers())
		if err != nil {
			return nil, err
		}
		out.Results = append(out.Results, res)
		out.Rows = append(out.Rows, Table4Row{Label: sc.Name, Medians: res.Medians()})
	}
	return out, nil
}
