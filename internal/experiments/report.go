package experiments

import (
	"fmt"
	"io"
	"strings"

	"github.com/hpcsched/gensched/internal/stats"
)

// ArtifactReport renders a DynamicResult in the format of the paper
// artifact's sched-performance-tester output (Appendix A.5.3): medians,
// means and standard deviations per policy, plus an ASCII boxplot standing
// in for the PDF the Python prototype saves.
func (d *DynamicResult) ArtifactReport() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Performing scheduling performance test for the workload %s.\n", d.Scenario.Name)
	est := "actual runtimes"
	if d.Scenario.UseEstimates {
		est = "runtime estimates"
	}
	fmt.Fprintf(&sb, "Configuration:\nUsing %s, backfilling %s\n", est, d.Scenario.Backfill)
	sb.WriteString("Experiment Statistics:\n")
	line := func(label string, f func([]float64) float64) {
		fmt.Fprintf(&sb, "%s:\n", label)
		for i, name := range d.Policies {
			if i > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%s=%.2f", name, f(d.PerSeq[i]))
		}
		sb.WriteString("\n")
	}
	line("Medians", stats.Median)
	line("Means", stats.Mean)
	line("Standard Deviations", stats.StdDev)
	sb.WriteString(stats.RenderBoxplots(d.Policies, d.Boxes, 60))
	return sb.String()
}

// WriteCSV emits the per-sequence AVEbsld matrix: one row per policy, one
// column per sequence — the raw series behind one boxplot figure panel.
func (d *DynamicResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "policy"); err != nil {
		return err
	}
	for si := range d.PerSeq[0] {
		if _, err := fmt.Fprintf(w, ",seq%d", si+1); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i, name := range d.Policies {
		if _, err := fmt.Fprintf(w, "%s", name); err != nil {
			return err
		}
		for _, v := range d.PerSeq[i] {
			if _, err := fmt.Fprintf(w, ",%g", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// Format renders Table 4 in the paper's layout: one row per experiment,
// one column per policy, medians of the average bounded slowdowns.
func (t *Table4Result) Format() string {
	var sb strings.Builder
	labelW := len("Experiment")
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	fmt.Fprintf(&sb, "%-*s", labelW, "Experiment")
	for _, p := range t.Policies {
		fmt.Fprintf(&sb, " %10s", p)
	}
	sb.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-*s", labelW, r.Label)
		for _, v := range r.Medians {
			fmt.Fprintf(&sb, " %10.2f", v)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// FormatTable5 renders the trace inventory like the paper's Table 5.
func FormatTable5(rows []Table5Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %6s %9s %8s %7s %9s\n", "Name", "Year", "# CPUs", "# Jobs", "Util %", "Duration")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %6d %9d %8d %7.1f %7.1f d\n",
			r.Name, r.Year, r.Cores, r.Jobs, 100*r.Utilization, r.Days)
	}
	return sb.String()
}

// FormatFig2 renders the convergence series as a two-column table.
func FormatFig2(r *Fig2Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%12s %12s\n", "trials", "norm stddev")
	for i, c := range r.Counts {
		fmt.Fprintf(&sb, "%12d %12.4f\n", c, r.Normalized[i])
	}
	return sb.String()
}

// FormatTable3 renders the fitted functions like the paper's Table 3,
// both raw (artifact style) and simplified (paper style).
func FormatTable3(r *Table3Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "score distribution: %d samples; top %d distinct functions\n", r.Samples, len(r.Best))
	for i, res := range r.Best {
		simp, _ := res.Func.Simplified()
		fmt.Fprintf(&sb, "F%d: %s\n    raw: %s\n    fitness=%.7g\n",
			i+1, simp.Compact(), res.Func.String(), res.Rank)
	}
	return sb.String()
}

// RenderHeatmap draws one Figure 3 panel as ASCII art, darker characters
// meaning higher priority (lower normalized score), like the paper's
// colormap.
func RenderHeatmap(h Heatmap, width int) string {
	shades := []byte("@#*+=-:. ") // dark (high priority) to light
	if width <= 0 || width > len(h.Xs) {
		width = len(h.Xs)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s vs %s (fixed %s=%.3g)\n", h.Policy, h.YLabel, h.XLabel, h.FixedVar, h.FixedVal)
	stepX := len(h.Xs) / width
	if stepX < 1 {
		stepX = 1
	}
	for yi := len(h.Ys) - 1; yi >= 0; yi -= 2 {
		for xi := 0; xi < len(h.Xs); xi += stepX {
			v := h.Z[yi][xi]
			idx := int(v * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			sb.WriteByte(shades[idx])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
