package experiments

import (
	"strings"
	"testing"

	"github.com/hpcsched/gensched/internal/sched"
)

// microConfig keeps BuildSuite affordable in unit tests: tiny windows,
// few sequences.
func microConfig() Config {
	cfg := testConfig()
	cfg.Sequences = 2
	cfg.WindowDays = 0.5
	return cfg
}

func TestBuildSuiteAndTable4(t *testing.T) {
	if testing.Short() {
		t.Skip("suite build is seconds of work")
	}
	suite, err := BuildSuite(microConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Traces) != 4 {
		t.Fatalf("suite has %d traces, want 4", len(suite.Traces))
	}
	scs := suite.Scenarios()
	if len(scs) != 18 {
		t.Fatalf("suite has %d scenarios, want 18", len(scs))
	}
	pols := []sched.Policy{sched.FCFS(), sched.F1()}
	res, err := suite.Table4(pols)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 18 || len(res.Results) != 18 {
		t.Fatalf("table4 has %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.Medians) != 2 {
			t.Fatalf("row %q has %d medians", row.Label, len(row.Medians))
		}
		for _, m := range row.Medians {
			if m < 1 {
				t.Fatalf("row %q has median %v < 1", row.Label, m)
			}
		}
	}
	out := res.Format()
	for _, want := range []string{"Workload model, nmax=256", "Curie", "aggressive backfilling"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 4 output missing %q", want)
		}
	}
}

func TestSuiteSharesWindowsAcrossConditions(t *testing.T) {
	suite := &Suite{
		Config:    microConfig(),
		Model256:  dummyWindows(),
		Model1024: dummyWindows(),
	}
	scs := suite.Scenarios()
	// fig4a, fig5a, fig6a must reference the same windows slice (the
	// paper re-schedules the same sequences under each condition).
	if &scs[0].Windows[0][0] != &scs[2].Windows[0][0] || &scs[0].Windows[0][0] != &scs[4].Windows[0][0] {
		t.Error("model-256 conditions do not share their workload")
	}
}
