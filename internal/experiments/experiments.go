// Package experiments reproduces every table and figure of the paper's
// evaluation (§4). Each experiment is a pure function of a Config, so the
// benchmark harness, the CLI tools and the tests all share one
// implementation. DESIGN.md carries the experiment index mapping figure
// and table numbers to the functions here.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/lublin"
	"github.com/hpcsched/gensched/internal/runner"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/stats"
	"github.com/hpcsched/gensched/internal/traces"
	"github.com/hpcsched/gensched/internal/tsafrir"
	"github.com/hpcsched/gensched/internal/workload"
)

// Config scales the experiments. DefaultConfig reproduces the paper's
// dimensions; QuickConfig shrinks everything to seconds of CPU for tests
// and default benchmark runs.
type Config struct {
	Seed       uint64
	Sequences  int     // dynamic scheduling sequences per scenario (paper: 10)
	WindowDays float64 // sequence length in days (paper: 15)
	Workers    int     // 0 = GOMAXPROCS
	ModelLoad  float64 // offered load for the Lublin scenarios (near saturation)

	// Training-side dimensions (Figures 1-2, Table 3).
	Trials            int   // permutation trials per tuple (paper: 256k)
	Tuples            int   // tuples in the score distribution
	ConvergenceCounts []int // trial counts for Figure 2
	ConvergenceReps   int   // repetitions per count (paper: 10)
}

// DefaultConfig is the paper-scale configuration (expect minutes to hours).
func DefaultConfig() Config {
	return Config{
		Seed:       20171112, // SC'17 week
		Sequences:  10,
		WindowDays: 15,
		ModelLoad:  1.05,
		Trials:     256 * 1024,
		Tuples:     64,
		ConvergenceCounts: []int{
			1024, 2048, 4096, 8192, 16384, 32768,
			65536, 131072, 262144, 524288,
		},
		ConvergenceReps: 10,
	}
}

// QuickConfig is the reduced configuration used by tests and default
// benchmark runs (seconds of CPU, same code paths).
func QuickConfig() Config {
	return Config{
		Seed:              20171112,
		Sequences:         4,
		WindowDays:        2,
		ModelLoad:         1.05,
		Trials:            2048,
		Tuples:            6,
		ConvergenceCounts: []int{128, 256, 512, 1024},
		ConvergenceReps:   4,
	}
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) windowSec() float64 { return c.WindowDays * 24 * 3600 }

// Scenario is one evaluation setting: a workload cut into sequences plus
// the scheduling conditions.
type Scenario struct {
	ID           string // experiment id, e.g. "fig4a"
	Name         string // human description
	Cores        int
	UseEstimates bool
	Backfill     sim.BackfillMode
	Tau          float64 // bounded-slowdown constant; 0 = the paper's 10s
	Windows      [][]workload.Job
}

// DynamicResult is the outcome of one dynamic scheduling experiment
// (§4.2): per-policy AVEbsld across the sequences, plus boxplot summaries.
type DynamicResult struct {
	Scenario Scenario
	Policies []string
	PerSeq   [][]float64 // [policy][sequence] AVEbsld
	Boxes    []stats.Boxplot
}

// Medians returns the per-policy medians — the rows of Table 4.
func (d *DynamicResult) Medians() []float64 {
	out := make([]float64, len(d.PerSeq))
	for i, xs := range d.PerSeq {
		out[i] = stats.Median(xs)
	}
	return out
}

// ErrNoWindows indicates a scenario with no job sequences.
var ErrNoWindows = errors.New("experiments: scenario has no sequences")

// RunDynamic executes the dynamic scheduling experiment: every policy
// schedules every sequence; the (policy, sequence) grid fans out over the
// shared runner pool with deterministic assembly.
func RunDynamic(sc Scenario, policies []sched.Policy, workers int) (*DynamicResult, error) {
	if len(sc.Windows) == 0 {
		return nil, ErrNoWindows
	}
	if i := emptyWindow(sc.Windows); i >= 0 {
		return nil, fmt.Errorf("experiments: %s: sequence %d has no jobs", sc.ID, i)
	}
	res := &DynamicResult{
		Scenario: sc,
		Policies: sched.Names(policies),
		PerSeq:   make([][]float64, len(policies)),
	}
	for i := range res.PerSeq {
		res.PerSeq[i] = make([]float64, len(sc.Windows))
	}
	nSeq := len(sc.Windows)
	err := runner.Run(context.Background(), workers, len(policies)*nSeq, func(_ context.Context, i int) error {
		pi, si := i/nSeq, i%nSeq
		r, err := sim.Run(sim.Platform{Cores: sc.Cores}, sc.Windows[si], sim.Options{
			Policy:       policies[pi],
			UseEstimates: sc.UseEstimates,
			Backfill:     sc.Backfill,
			Tau:          sc.Tau,
		})
		if err != nil {
			return fmt.Errorf("experiments: %s/%s seq %d: %w", sc.ID, policies[pi].Name(), si, err)
		}
		res.PerSeq[pi][si] = r.AVEbsld
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Boxes = make([]stats.Boxplot, len(policies))
	for i, xs := range res.PerSeq {
		b, err := stats.NewBoxplot(xs)
		if err != nil {
			return nil, err
		}
		res.Boxes[i] = b
	}
	return res, nil
}

// ModelWindows builds the Lublin-model workload for Figures 4–6: a stream
// for a machine of the given size, calibrated to cfg.ModelLoad, with
// Tsafrir estimates attached, cut into cfg.Sequences windows. The same
// windows serve the actual-runtime, estimate and backfilling conditions,
// as in the paper.
func ModelWindows(cfg Config, cores int) ([][]workload.Job, error) {
	params := lublin.DefaultParams(cores)
	need := cfg.windowSec() * float64(cfg.Sequences)
	// Two iteration controls keep this robust at every scale:
	//  - Calibration dilates the clock by an a-priori unknown factor (the
	//    stream's natural load is heavy-tail dominated and cannot be
	//    probed reliably from a short prefix), so on a span shortfall the
	//    generation span grows and the same stream is extended.
	//  - The model's log-gamma inter-arrival gaps can produce day-long
	//    lulls, so a window can come out empty at small scales; that
	//    cannot be fixed by generating longer, so the stream is redrawn
	//    from the next sub-seed.
	var lastErr error
	for draw := 0; draw < 4; draw++ {
		seed := dist.Split(cfg.Seed, uint64(cores)+uint64(draw)*7919)
		span := need * 1.05
		for attempt := 0; attempt < 8; attempt++ {
			gen, err := lublin.NewGenerator(params, cores, seed)
			if err != nil {
				return nil, err
			}
			jobs := gen.Until(span)
			if len(jobs) < 2 {
				span *= 4
				continue
			}
			lublin.CalibrateLoad(jobs, cores, cfg.ModelLoad)
			if err := tsafrir.Apply(tsafrir.Default(), jobs, dist.Split(seed, 1)); err != nil {
				return nil, err
			}
			tr := &workload.Trace{Name: fmt.Sprintf("lublin_%d", cores), MaxProcs: cores, Jobs: jobs}
			windows, err := workload.Windows(tr, cfg.windowSec(), cfg.Sequences, 1)
			if err == nil {
				if i := emptyWindow(windows); i >= 0 {
					lastErr = fmt.Errorf("experiments: model %d cores: window %d empty (arrival lull)", cores, i)
					break // redraw from the next sub-seed
				}
				return windows, nil
			}
			lastErr = err
			got := jobs[len(jobs)-1].Submit - jobs[0].Submit
			grow := 1.6
			if got > 0 && need/got > grow {
				grow = need / got * 1.25
			}
			span *= grow
		}
	}
	return nil, fmt.Errorf("experiments: model %d cores: %w", cores, lastErr)
}

// emptyWindow returns the index of the first empty window, or -1.
func emptyWindow(windows [][]workload.Job) int {
	for i, w := range windows {
		if len(w) == 0 {
			return i
		}
	}
	return -1
}

// TraceWindows builds the synthetic-trace workload for one Table 5
// platform (Figures 7–9), cut into cfg.Sequences windows. Arrival lulls
// can leave a window empty at small scales; the stream is then redrawn
// from the next sub-seed, as in ModelWindows.
func TraceWindows(cfg Config, spec traces.PlatformSpec) ([][]workload.Job, error) {
	days := cfg.WindowDays*float64(cfg.Sequences) + cfg.WindowDays
	var lastErr error
	for draw := 0; draw < 4; draw++ {
		tr, err := traces.Generate(spec, days, dist.Split(cfg.Seed, uint64(spec.Cores)+uint64(draw)*7919))
		if err != nil {
			return nil, err
		}
		windows, err := workload.Windows(tr, cfg.windowSec(), cfg.Sequences, 1)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", spec.Name, err)
		}
		if i := emptyWindow(windows); i >= 0 {
			lastErr = fmt.Errorf("experiments: %s: window %d empty (arrival lull)", spec.Name, i)
			continue
		}
		return windows, nil
	}
	return nil, lastErr
}
