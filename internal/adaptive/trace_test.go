package adaptive

// The golden trace differential: the telemetry a fixed-seed closed-loop
// run emits must be byte-identical however the loop's internal fan-outs
// are parallelized, and attaching the telemetry must not move a single
// bit of the schedule itself. Together these pin the two halves of the
// observability contract — the trace is deterministic, and observing is
// free of observer effects.

import (
	"bytes"
	"strconv"
	"testing"

	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/telemetry"
)

// tracedCfg is the drifting-stream configuration both golden-trace runs
// share; only Workers differs between them.
func tracedCfg(workers int) Config {
	cfg := testConfig(13)
	cfg.Interval = 21600
	cfg.MinDrift = 0.2
	cfg.Backfill = sim.BackfillEASY
	cfg.Workers = workers
	return cfg
}

// TestGoldenTraceAcrossWorkers runs the full closed loop at Workers=1
// and Workers=8 with an attached sink and requires the rendered JSONL
// and Chrome trace streams to be byte-identical: every event, in the
// same order, with the same sequence numbers, logical timestamps and
// payloads. This is the wire-level counterpart of
// TestLoopDeterministicAcrossWorkers.
func TestGoldenTraceAcrossWorkers(t *testing.T) {
	jobs := driftingJobs(97)
	run := func(workers int) (*telemetry.Sink, []byte, []byte) {
		sink := telemetry.NewSink(1 << 16)
		driveLoop(t, jobs, stale(t), tracedCfg(workers), sink)
		var jsonl, chrome bytes.Buffer
		if err := sink.Trace.WriteJSONL(&jsonl, 0, 0); err != nil {
			t.Fatal(err)
		}
		if err := sink.Trace.WriteChromeTrace(&chrome, 0, 0); err != nil {
			t.Fatal(err)
		}
		return sink, jsonl.Bytes(), chrome.Bytes()
	}
	sa, ja, ca := run(1)
	sb, jb, cb := run(8)

	if sa.Trace.Total() == 0 {
		t.Fatal("the instrumented loop recorded no trace events")
	}
	if sa.Trace.Dropped() != 0 {
		t.Fatalf("trace ring overflowed (%d dropped); grow the test capacity", sa.Trace.Dropped())
	}
	if !bytes.Equal(ja, jb) {
		t.Errorf("JSONL traces differ across worker counts:\n%s", firstDiffLine(ja, jb))
	}
	if !bytes.Equal(ca, cb) {
		t.Error("Chrome traces differ across worker counts")
	}

	// The aggregate view must agree too: every counter and every
	// histogram bucket.
	type pair struct {
		name string
		a, b uint64
	}
	for _, p := range []pair{
		{"submitted", sa.Submitted.Load(), sb.Submitted.Load()},
		{"started", sa.Started.Load(), sb.Started.Load()},
		{"backfilled", sa.Backfilled.Load(), sb.Backfilled.Load()},
		{"completed", sa.Completed.Load(), sb.Completed.Load()},
		{"policy swaps", sa.PolicySwaps.Load(), sb.PolicySwaps.Load()},
		{"adapt rounds", sa.AdaptRounds.Load(), sb.AdaptRounds.Load()},
		{"promotions", sa.Promotions.Load(), sb.Promotions.Load()},
	} {
		if p.a != p.b {
			t.Errorf("%s counter differs: %d vs %d", p.name, p.a, p.b)
		}
	}
	for _, h := range []struct {
		name string
		a, b telemetry.HistSnapshot
	}{
		{"wait", sa.Wait.Snapshot(), sb.Wait.Snapshot()},
		{"slowdown", sa.Slowdown.Snapshot(), sb.Slowdown.Snapshot()},
		{"queue depth", sa.QueueDepth.Snapshot(), sb.QueueDepth.Snapshot()},
		{"drift", sa.Drift.Snapshot(), sb.Drift.Snapshot()},
	} {
		if h.a != h.b {
			t.Errorf("%s histogram differs:\n%+v\n%+v", h.name, h.a, h.b)
		}
	}

	// The run must have exercised the interesting event kinds, or the
	// byte-compare proves little.
	kinds := make(map[telemetry.EventKind]int)
	for _, e := range sa.Trace.Events(0, 0) {
		kinds[e.Kind]++
	}
	for _, k := range []telemetry.EventKind{
		telemetry.EvSubmit, telemetry.EvStart, telemetry.EvBackfill,
		telemetry.EvComplete, telemetry.EvPolicy, telemetry.EvAdapt,
	} {
		if kinds[k] == 0 {
			t.Errorf("trace has no %s events; the differential exercised nothing interesting", k)
		}
	}
	if sa.PolicySwaps.Load() == 0 {
		t.Error("the drifting stream never swapped a policy; the trace misses the hot-swap path")
	}
}

// TestTelemetryObserverFree pins that attaching a sink changes no output
// bit of the closed loop: decisions and final schedule metrics from an
// instrumented run must equal the uninstrumented run's exactly.
func TestTelemetryObserverFree(t *testing.T) {
	jobs := driftingJobs(97)
	bare := driveLoop(t, jobs, stale(t), tracedCfg(4), nil)
	sink := telemetry.NewSink(1 << 16)
	traced := driveLoop(t, jobs, stale(t), tracedCfg(4), sink)

	if bare.metrics != traced.metrics {
		t.Fatalf("telemetry changed the schedule metrics:\n%+v\n%+v", bare.metrics, traced.metrics)
	}
	if len(bare.decisions) != len(traced.decisions) {
		t.Fatalf("telemetry changed the decision count: %d vs %d", len(bare.decisions), len(traced.decisions))
	}
	for i := range bare.decisions {
		da, db := bare.decisions[i], traced.decisions[i]
		if da.At != db.At || da.Round != db.Round || da.Reason != db.Reason ||
			da.Promoted != db.Promoted || da.PolicyExpr != db.PolicyExpr ||
			!sameFloat(da.Drift, db.Drift) {
			t.Fatalf("telemetry changed decision %d:\n%+v\n%+v", i, da, db)
		}
	}
	if sink.Trace.Total() == 0 {
		t.Fatal("the instrumented run recorded nothing; the comparison proves little")
	}
}

// firstDiffLine renders the first differing line of two JSONL streams
// for a readable failure message.
func firstDiffLine(a, b []byte) string {
	la := bytes.Split(a, []byte("\n"))
	lb := bytes.Split(b, []byte("\n"))
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return "line " + strconv.Itoa(i) + " differs:\n" + string(la[i]) + "\n" + string(lb[i])
		}
	}
	return "streams differ in length only"
}
