// Package adaptive closes the loop the paper leaves open: the offline
// pipeline (simulate → score → regress, §3.2–3.3) produces a policy once,
// from a workload model fixed in advance, and the policy stays frozen no
// matter what the cluster actually serves. The adaptive Controller
// re-runs that same pipeline continuously, from observed traffic:
//
//  1. it maintains a sliding window of recently observed jobs from an
//     online scheduler's stream (Observe),
//  2. characterizes the window — empirical r/n/s marginals, offered
//     load, allocation granularity — and measures drift since the last
//     retraining round (Characterize/DriftFrom),
//  3. regenerates window-matched training tuples via the trainer's trial
//     machinery, sampling S and Q from the window instead of the raw
//     Lublin model (trainer.SampleTuple + trainer.ScoreTuple),
//  4. refits the full 576-candidate function family under the paper's
//     Eq. 4 weighting (mlfit.FitAll) and keeps the top-k behaviorally
//     distinct fits,
//  5. shadow-evaluates the candidates against the incumbent policy by
//     replaying the window through the batch simulator (a digital-twin
//     replay, parallel over the shared runner pool), and
//  6. recommends promoting the best candidate only when it beats the
//     incumbent's window AveBsld by a configurable margin, with a
//     cool-down between promotions to prevent thrash.
//
// The Controller is passive and single-threaded by design: Observe
// records arrivals, Tick is called whenever the logical clock advances
// and runs at most one adaptation round per configured interval. Every
// stochastic step derives from explicit split seeds — (Seed, round,
// tuple) — and every parallel stage reduces deterministically, so the
// whole loop is reproducible bit for bit for any worker count (the
// differential test pins this). Callers that need concurrency wrap the
// Controller in their own lock, exactly like online.Scheduler.
package adaptive

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/mlfit"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/telemetry"
	"github.com/hpcsched/gensched/internal/trainer"
	"github.com/hpcsched/gensched/internal/workload"
)

// Config configures a Controller. The zero value of every sizing field
// selects a default; at the default sizing one adaptation round costs a
// few hundred milliseconds (BenchmarkAdaptiveLoop tracks it) — rounds
// run inline on the scheduler thread, so shrink Tuples/Trials if that
// stall matters more than fit quality.
type Config struct {
	// Cores is the machine size jobs are observed on; retraining tuples
	// and shadow replays use the same size (required).
	Cores int
	// Backfill, BackfillOrder, UseEstimates and Tau describe how the live
	// cluster schedules; shadow replays reproduce them so the comparison
	// measures the policy, not a configuration difference.
	Backfill      sim.BackfillMode
	BackfillOrder sched.Policy
	UseEstimates  bool
	Tau           float64

	// Window is the sliding-window capacity in jobs (default 512).
	Window int
	// MinWindow is the fewest observed jobs a retraining round needs;
	// rounds before that are skipped (default 64).
	MinWindow int
	// Interval is the logical-clock seconds between adaptation rounds
	// (required > 0). Tick runs at most one round per interval.
	Interval float64
	// Now is the clock at which the loop attaches; the first round comes
	// due at Now + Interval. Zero for a fresh cluster. Without it a loop
	// attached to a long-running scheduler would see its first
	// opportunity centuries overdue and fire on the very next request.
	Now float64
	// MinDrift skips retraining when the window's characterization has
	// moved less than this many nats since the last round — the loop
	// idles while traffic is stationary. 0 retrains every round.
	MinDrift float64

	// SSize, QSize, Tuples and Trials size the window-matched training
	// set: Tuples (S,Q) draws of |S|=SSize, |Q|=QSize jobs, scored with
	// Trials balanced permutation trials each (Tuples and Trials default
	// to 4 and 256). SSize and QSize default to 0 = auto: each round
	// sizes the tuples from the window's mean core request so the trials
	// see real contention whatever the observed mix (see autoTupleSize);
	// a flood of narrow jobs needs far larger task sets than the paper's
	// 16/32 to congest the machine at all.
	SSize, QSize, Tuples, Trials int
	// TopK is how many behaviorally distinct fitted candidates are
	// shadow-evaluated (default 3).
	TopK int
	// Margin is the relative window-AveBsld improvement a candidate must
	// show over the incumbent to be promoted (default 0.05 = 5%).
	Margin float64
	// Cooldown is the minimum logical time between promotions; rounds
	// inside it skip retraining entirely (default: two Intervals, so the
	// round immediately after a promotion always sits out).
	Cooldown float64
	// Workers bounds the parallelism of trial scoring, candidate fitting
	// and shadow replay (0 = GOMAXPROCS). The result never depends on it.
	Workers int
	// Seed drives every stochastic choice of the loop.
	Seed uint64

	// Queue optionally probes the live cluster's waiting queue at
	// retraining time. When set, shadow replays merge the waiting jobs
	// into the observed window (deduplicated by job ID), so the digital
	// twin reproduces the cluster's actual backlog. Without it the twin
	// replays recent arrivals onto an empty machine, and a deeply
	// backlogged cluster can shadow-evaluate a stale incumbent as
	// healthy: the damage lives in the queue, not in the last hour of
	// arrivals. The callback runs inside Tick, under whatever lock the
	// caller serializes the scheduler with.
	Queue func() []workload.Job

	// Telemetry, when non-nil, observes every round verdict (drift nats,
	// skip reason, promotions). The sink is only ever written from Tick —
	// the worker pools inside a round emit nothing — so the recorded
	// stream is identical for any Workers value. Nil disables
	// instrumentation at the cost of one nil check per round.
	Telemetry *telemetry.Sink
}

// Errors returned by the Controller.
var (
	ErrNoCores    = errors.New("adaptive: config requires a positive core count")
	ErrNoInterval = errors.New("adaptive: config requires a positive interval")
	ErrNoPolicy   = errors.New("adaptive: tick requires the incumbent policy")
)

func (cfg Config) withDefaults() Config {
	if cfg.Window <= 0 {
		cfg.Window = 512
	}
	if cfg.MinWindow <= 0 {
		cfg.MinWindow = 64
	}
	if cfg.MinWindow < 2 {
		cfg.MinWindow = 2
	}
	if cfg.MinWindow > cfg.Window {
		// A threshold the ring can never reach would idle the loop
		// forever with nothing but "window too small" skips to show for
		// it; retraining on a full window is the closest honest reading.
		cfg.MinWindow = cfg.Window
	}
	if cfg.Tuples <= 0 {
		cfg.Tuples = 4
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 256
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 3
	}
	if cfg.Margin <= 0 {
		cfg.Margin = 0.05
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2 * cfg.Interval
	}
	return cfg
}

// Candidate is one fitted function after shadow evaluation.
type Candidate struct {
	Expr    string  // compact textual form, ready for sched.ParseExpr
	Rank    float64 // Eq. 5 fit rank (mean absolute error)
	AveBsld float64 // window-replay average bounded slowdown
}

// Decision records one adaptation round. The sequence of decisions —
// retrain instants, fitted expressions, promotion choices — is the loop's
// observable behavior, and is deterministic for a fixed seed and stream.
type Decision struct {
	At float64 // logical-clock instant of the round
	// Round is the 1-based retraining round; it is 0 when the
	// opportunity was skipped before retraining began (window too small,
	// cooling down, stationary) and nonzero whenever training ran, even
	// if the round then produced nothing to promote.
	Round      int
	Window     int // jobs in the window at the time
	ShadowJobs int // jobs in the shadow replay (window ∪ live queue)

	Char  Characterization
	Drift float64 // nats since the last retraining round (+Inf on the first)

	// Skipped rounds did not retrain; Reason says why ("window too
	// small", "stationary", "cooling down"). Retrained rounds carry the
	// candidates and the promotion outcome, with Reason "promoted" or
	// "margin not met".
	Skipped bool
	Reason  string

	// SSize and QSize are the tuple sizes the round trained with (the
	// auto-sized values when Config left them 0).
	SSize, QSize int

	Incumbent     string  // incumbent policy name
	IncumbentBsld float64 // incumbent's window-replay AveBsld
	Candidates    []Candidate

	Promoted   bool
	PolicyExpr string       // compact form of the promoted policy
	Policy     sched.Policy // the promoted policy, ready to swap in
}

// Best returns the index of the strongest candidate (lowest shadow
// AveBsld, ties to the better fit rank), or -1 if there are none.
func (d *Decision) Best() int {
	best := -1
	for i, c := range d.Candidates {
		if best < 0 || c.AveBsld < d.Candidates[best].AveBsld {
			best = i
		}
	}
	return best
}

// Controller is the closed-loop retraining state machine. It is not safe
// for concurrent use; callers serialize Observe and Tick the same way
// they serialize the scheduler the observations come from.
type Controller struct {
	cfg Config
	win *window

	anchor      float64 // attach-time clock; round grid is anchor + k·Interval
	nextCheck   float64
	lastChar    *Characterization
	lastPromote float64
	rounds      int // completed (non-skipped) retraining rounds
	promotions  int
	history     []Decision
}

// New builds a Controller. The first adaptation round is due once the
// logical clock reaches Config.Now + Interval.
func New(cfg Config) (*Controller, error) {
	if cfg.Cores <= 0 {
		return nil, ErrNoCores
	}
	if cfg.Interval <= 0 {
		return nil, ErrNoInterval
	}
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:         cfg,
		win:         newWindow(cfg.Window),
		anchor:      cfg.Now,
		nextCheck:   cfg.Now + cfg.Interval,
		lastPromote: math.Inf(-1),
	}, nil
}

// SetTelemetry attaches (or, with nil, detaches) a telemetry sink; see
// Config.Telemetry. A daemon that enables telemetry after recovery
// replay uses this to instrument a controller rebuilt from the journal.
func (c *Controller) SetTelemetry(t *telemetry.Sink) { c.cfg.Telemetry = t }

// Observe records one observed job arrival into the sliding window. In
// this reproduction the job carries its runtime, so observation at
// arrival is exact; a production deployment would observe at completion
// instead, once the runtime is known, with no other change to the loop.
func (c *Controller) Observe(j workload.Job) { c.win.add(j) }

// Due reports whether an adaptation round would run at the given clock.
func (c *Controller) Due(now float64) bool { return now >= c.nextCheck }

// Tick runs at most one adaptation round: if the clock has not reached
// the next scheduled round, it returns (nil, nil); otherwise it evaluates
// the window against the incumbent policy and returns the Decision. The
// caller applies a promoted Decision.Policy to its scheduler — the
// Controller never touches the scheduler itself, which is what keeps the
// loop deterministic and testable.
//
// Round instants are a deterministic function of the clock sequence: the
// k-th opportunity is at k·Interval, and opportunities the clock jumped
// over collapse into one round.
func (c *Controller) Tick(now float64, incumbent sched.Policy) (*Decision, error) {
	if incumbent == nil {
		return nil, ErrNoPolicy
	}
	if now < c.nextCheck {
		return nil, nil
	}
	// Closed form, not a catch-up loop: a clock jump of any size (a
	// daemon advanced far into the future) must not cost one iteration
	// per skipped opportunity.
	c.nextCheck = c.anchor + (math.Floor((now-c.anchor)/c.cfg.Interval)+1)*c.cfg.Interval
	d, err := c.round(now, incumbent)
	if err != nil {
		return nil, err
	}
	drift := d.Drift
	if drift == 0 {
		// Early skips ("window too small", "cooling down") never compute
		// a drift; keep the zero out of the drift histogram. A computed
		// drift of exactly 0 nats is indistinguishable and equally
		// uninformative.
		drift = math.NaN()
	}
	c.cfg.Telemetry.AdaptRound(now, d.Round, d.Reason, drift, d.Promoted)
	c.history = append(c.history, *d)
	if len(c.history) > maxHistory {
		c.history = append(c.history[:0], c.history[len(c.history)-maxHistory:]...)
	}
	return d, nil
}

// maxHistory bounds the retained decision log: a daemon ticking every
// interval for months must not leak one Decision per round forever.
const maxHistory = 512

// round evaluates one adaptation opportunity.
func (c *Controller) round(now float64, incumbent sched.Policy) (*Decision, error) {
	d := &Decision{At: now, Window: c.win.len(), Incumbent: incumbent.Name()}
	skip := func(reason string) *Decision {
		d.Skipped = true
		d.Reason = reason
		return d
	}
	if c.win.len() < c.cfg.MinWindow {
		return skip("window too small"), nil
	}
	if c.promotions > 0 && now-c.lastPromote < c.cfg.Cooldown {
		return skip("cooling down"), nil
	}
	win := c.win.snapshot()
	d.Char = Characterize(win, c.cfg.Cores)
	d.Drift = math.Inf(1)
	if c.lastChar != nil {
		d.Drift = d.Char.DriftFrom(*c.lastChar)
		if c.cfg.MinDrift > 0 && d.Drift < c.cfg.MinDrift {
			return skip("stationary"), nil
		}
	}

	// Retrain: window-matched tuples, scored with the paper's trial
	// machinery, fitted across the whole candidate family.
	roundSeed := dist.Split(c.cfg.Seed, uint64(c.rounds))
	c.rounds++
	d.Round = c.rounds
	d.SSize, d.QSize = c.cfg.SSize, c.cfg.QSize
	if d.SSize <= 0 || d.QSize <= 0 {
		s, q := autoTupleSize(d.Char, c.cfg.Cores)
		if d.SSize <= 0 {
			d.SSize = s
		}
		if d.QSize <= 0 {
			d.QSize = q
		}
	}
	var samples []mlfit.Sample
	for i := 0; i < c.cfg.Tuples; i++ {
		sub := dist.Split(roundSeed, uint64(i))
		tuple, err := trainer.SampleTuple(win, d.SSize, d.QSize, c.cfg.Cores, sub)
		if err != nil {
			return nil, fmt.Errorf("adaptive: round %d: %w", d.Round, err)
		}
		ts, err := trainer.ScoreTuple(tuple, trainer.TrialConfig{
			Trials:  c.cfg.Trials,
			Tau:     c.cfg.Tau,
			Workers: c.cfg.Workers,
			Seed:    dist.Split(sub, 1),
		})
		if err != nil {
			return nil, fmt.Errorf("adaptive: round %d: %w", d.Round, err)
		}
		samples = append(samples, ts.Samples...)
	}
	ranked, err := mlfit.FitAll(samples, mlfit.Options{Workers: c.cfg.Workers})
	if err != nil {
		return nil, fmt.Errorf("adaptive: round %d: %w", d.Round, err)
	}
	top := mlfit.TopDistinct(ranked, c.cfg.TopK)

	// Shadow evaluation: candidates and incumbent replay the recent
	// traffic — the observed window merged with the live backlog — on a
	// digital twin of the cluster.
	policies := make([]sched.Policy, 0, len(top)+1)
	policies = append(policies, incumbent)
	d.Candidates = make([]Candidate, 0, len(top))
	for i, r := range top {
		f, _ := r.Func.Simplified()
		policies = append(policies, sched.Expr(fmt.Sprintf("A%d.%d", d.Round, i+1), f))
		d.Candidates = append(d.Candidates, Candidate{Expr: f.Compact(), Rank: r.Rank})
	}
	shadowWin := c.shadowWorkload(win)
	d.ShadowJobs = len(shadowWin)
	bslds, err := c.shadow(shadowWin, policies)
	if err != nil {
		return nil, fmt.Errorf("adaptive: round %d: %w", d.Round, err)
	}
	d.IncumbentBsld = bslds[0]
	for i := range d.Candidates {
		d.Candidates[i].AveBsld = bslds[i+1]
	}

	// Promotion: the strongest candidate must beat the incumbent's
	// window AveBsld by the margin.
	c.lastChar = &d.Char
	best := d.Best()
	if best < 0 {
		return skip("no candidates"), nil
	}
	if bc := d.Candidates[best]; bc.AveBsld < d.IncumbentBsld*(1-c.cfg.Margin) {
		d.Promoted = true
		d.Reason = "promoted"
		d.PolicyExpr = bc.Expr
		d.Policy = policies[best+1]
		c.promotions++
		c.lastPromote = now
	} else {
		d.Reason = "margin not met"
	}
	return d, nil
}

// shadow replays the workload through the batch simulator under each
// policy in parallel and returns their AveBsld values in policy order.
// The replays share no state and each lands in its own slot, so the
// result is identical for any worker count.
func (c *Controller) shadow(win []workload.Job, policies []sched.Policy) ([]float64, error) {
	return shadowEval(context.Background(), win, c.cfg, policies)
}

// shadowWorkload assembles the digital twin's workload: the observed
// window, plus every job still waiting in the live queue that the window
// has already rotated past (or that arrived before it began), in one
// submit-ordered stream. Replaying the backlog is what lets the twin see
// the congestion the incumbent actually caused.
func (c *Controller) shadowWorkload(win []workload.Job) []workload.Job {
	if c.cfg.Queue == nil {
		return win
	}
	queued := c.cfg.Queue()
	if len(queued) == 0 {
		return win
	}
	// Dedup by (ID, Submit), not ID alone: the online scheduler permits
	// reusing the ID of a completed job, so a recycled ID can denote a
	// waiting job distinct from the window entry that shares its number.
	type jobKey struct {
		id     int
		submit float64
	}
	seen := make(map[jobKey]bool, len(win))
	for _, j := range win {
		seen[jobKey{j.ID, j.Submit}] = true
	}
	merged := append(make([]workload.Job, 0, len(win)+len(queued)), win...)
	for _, j := range queued {
		if !seen[jobKey{j.ID, j.Submit}] {
			merged = append(merged, j)
		}
	}
	sort.SliceStable(merged, func(i, k int) bool {
		if merged[i].Submit != merged[k].Submit {
			return merged[i].Submit < merged[k].Submit
		}
		return merged[i].ID < merged[k].ID
	})
	return merged
}

// Decisions returns the adaptation history (the most recent maxHistory
// rounds), oldest first. The slice is shared; callers must not mutate it.
func (c *Controller) Decisions() []Decision { return c.history }

// LastDecision returns the most recent adaptation round, or nil.
func (c *Controller) LastDecision() *Decision {
	if len(c.history) == 0 {
		return nil
	}
	return &c.history[len(c.history)-1]
}

// Promotions returns how many rounds promoted a new policy.
func (c *Controller) Promotions() int { return c.promotions }

// Rounds returns how many rounds actually retrained (skips excluded).
func (c *Controller) Rounds() int { return c.rounds }

// WindowLen returns the current number of observed jobs in the window.
func (c *Controller) WindowLen() int { return c.win.len() }

// NextCheck returns the logical instant of the next adaptation round.
func (c *Controller) NextCheck() float64 { return c.nextCheck }
