// Controller state export/restore for the durable daemon. The serialized
// image is exactly the state the loop's future decisions depend on: the
// observation window (oldest first), the round grid (anchor/nextCheck),
// the drift reference, the promotion clock and the round counter that
// seeds each round's RNG stream (dist.Split(Seed, rounds)). The decision
// history is a diagnostic ring, not decision state, and is deliberately
// not serialized — after a restore, /v1/adapt reports no "last" decision
// until the next round runs.

package adaptive

import (
	"fmt"

	"github.com/hpcsched/gensched/internal/workload"
)

// ControllerState is the serializable image of a Controller.
type ControllerState struct {
	Window      []workload.Job // observed jobs, oldest first
	Anchor      float64
	NextCheck   float64
	LastPromote float64
	LastChar    *Characterization
	Rounds      int
	Promotions  int
}

// ExportState returns the controller's serializable image. The window is
// copied (via snapshot), so later Observes do not mutate it.
func (c *Controller) ExportState() *ControllerState {
	st := &ControllerState{
		Window:      c.win.snapshot(),
		Anchor:      c.anchor,
		NextCheck:   c.nextCheck,
		LastPromote: c.lastPromote,
		Rounds:      c.rounds,
		Promotions:  c.promotions,
	}
	if c.lastChar != nil {
		ch := *c.lastChar
		st.LastChar = &ch
	}
	return st
}

// Restore builds a Controller from an exported image under cfg, which
// must carry the same sizing the exporting controller ran with (the
// durable layer journals and replays the original start request, so this
// holds by construction). Re-adding the window oldest-first reproduces the
// exported ring's observable content exactly.
func Restore(cfg Config, st *ControllerState) (*Controller, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if len(st.Window) > len(c.win.buf) {
		return nil, fmt.Errorf("adaptive: state window holds %d jobs, capacity is %d", len(st.Window), len(c.win.buf))
	}
	for _, j := range st.Window {
		c.win.add(j)
	}
	c.anchor = st.Anchor
	c.nextCheck = st.NextCheck
	c.lastPromote = st.LastPromote
	if st.LastChar != nil {
		ch := *st.LastChar
		c.lastChar = &ch
	}
	c.rounds = st.Rounds
	c.promotions = st.Promotions
	return c, nil
}
