package adaptive

import (
	"math"

	"github.com/hpcsched/gensched/internal/workload"
)

// window is a fixed-capacity sliding window over the observed job stream,
// kept in arrival order. It is a plain ring buffer: Observe is O(1) and
// allocation-free once the buffer has filled.
type window struct {
	buf   []workload.Job
	next  int
	count int
}

func newWindow(capacity int) *window {
	return &window{buf: make([]workload.Job, capacity)}
}

func (w *window) add(j workload.Job) {
	w.buf[w.next] = j
	w.next = (w.next + 1) % len(w.buf)
	if w.count < len(w.buf) {
		w.count++
	}
}

func (w *window) len() int { return w.count }

// snapshot copies the window's jobs oldest-first. The copy is what the
// retraining pipeline works on, so a later Observe never mutates a
// characterization or shadow replay in flight.
func (w *window) snapshot() []workload.Job {
	out := make([]workload.Job, 0, w.count)
	start := w.next - w.count
	if start < 0 {
		start += len(w.buf)
	}
	for i := 0; i < w.count; i++ {
		out = append(out, w.buf[(start+i)%len(w.buf)])
	}
	return out
}

// Characterization summarizes a window of observed traffic: the empirical
// marginals of the task features the policies score (runtime r, cores n,
// and the arrival process behind s), the offered load, and the allocation
// granularity. The adaptive loop compares characterizations across
// retraining rounds to decide whether the workload has drifted.
type Characterization struct {
	Jobs int
	// Log-domain feature means: the Lublin model (and every heavy-tailed
	// workload) is natural in ln r, and log-domain means make the drift
	// metric scale-free.
	MeanLogRuntime float64 // mean ln r
	MeanLogCores   float64 // mean ln n
	MeanLogGap     float64 // mean ln(1 + inter-arrival gap)
	MeanCores      float64 // arithmetic mean core request
	Span           float64 // last submit - first submit
	Utilization    float64 // offered load: Σ r·n / (cores · span)
	AllocUnit      int     // gcd of observed core requests
}

// Characterize summarizes a job window (in submit order) against a
// machine of the given size.
func Characterize(win []workload.Job, cores int) Characterization {
	c := Characterization{Jobs: len(win), AllocUnit: 1}
	if len(win) == 0 {
		return c
	}
	var sumR, sumN, sumGap, cores64, area float64
	unit := 0
	for i, j := range win {
		sumR += math.Log(math.Max(j.Runtime, 1))
		sumN += math.Log(math.Max(float64(j.Cores), 1))
		cores64 += float64(j.Cores)
		area += j.Runtime * float64(j.Cores)
		unit = gcd(unit, j.Cores)
		if i > 0 {
			sumGap += math.Log(1 + math.Max(win[i].Submit-win[i-1].Submit, 0))
		}
	}
	n := float64(len(win))
	c.MeanLogRuntime = sumR / n
	c.MeanLogCores = sumN / n
	c.MeanCores = cores64 / n
	if len(win) > 1 {
		c.MeanLogGap = sumGap / (n - 1)
	}
	c.AllocUnit = unit
	c.Span = win[len(win)-1].Submit - win[0].Submit
	if c.Span > 0 && cores > 0 {
		c.Utilization = area / (float64(cores) * c.Span)
	}
	return c
}

// DriftFrom measures how far the workload has moved since a previous
// characterization: the summed absolute shift of the log-domain feature
// means, in nats. Zero means identical marginals; a regime change (small
// jobs to large jobs, flood to trickle) shows up as a shift of one or
// more nats in at least one feature.
func (c Characterization) DriftFrom(prev Characterization) float64 {
	return math.Abs(c.MeanLogRuntime-prev.MeanLogRuntime) +
		math.Abs(c.MeanLogCores-prev.MeanLogCores) +
		math.Abs(c.MeanLogGap-prev.MeanLogGap)
}

// autoTupleSize derives window-matched (|S|, |Q|) from the observed mean
// core request: |S| is sized so the initial task set oversubscribes the
// machine about twice over (the paper's |S|=16 does exactly that for the
// Lublin mix on 256 cores) and |Q| doubles it again, so permutation
// trials see real contention. Without contention every serving order
// starts every task immediately, the Eq. 3 scores flatten, and the
// regression fits noise — the failure mode that makes fixed paper-scale
// tuple sizes useless on a flood of narrow jobs. Bounds keep the trial
// cost predictable on extreme mixes.
func autoTupleSize(char Characterization, cores int) (sSize, qSize int) {
	mean := char.MeanCores
	if mean < 1 {
		mean = 1
	}
	s := int(math.Ceil(2 * float64(cores) / mean))
	if s < 8 {
		s = 8
	}
	if s > 128 {
		s = 128
	}
	return s, 2 * s
}

func gcd(a, b int) int {
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}
