package adaptive

import (
	"math"
	"testing"

	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/telemetry"
	"github.com/hpcsched/gensched/internal/workload"
)

// loopTrace is the observable behavior of one full closed-loop run: every
// adaptation decision plus the final schedule metrics. Two runs that
// differ only in worker count must produce identical traces, bit for bit
// — the adaptive counterpart of the Runner's KeepSims bit-identity test.
type loopTrace struct {
	decisions []Decision
	metrics   online.Metrics
}

// driveLoop streams a drifting workload through a live online.Scheduler
// with a Controller closing the loop end to end: arrivals feed the
// observation window, completions come back as the scheduler starts jobs,
// adaptation rounds fire as the clock crosses each interval, and
// promotions hot-swap the scheduler's policy mid-stream — which in turn
// changes the schedule the next rounds observe. A non-nil sink
// instruments both the scheduler and the controller, feeding the golden
// trace differential.
func driveLoop(t *testing.T, jobs []workload.Job, incumbent sched.Policy, cfg Config, sink *telemetry.Sink) loopTrace {
	t.Helper()
	s, err := online.New(cfg.Cores, online.Options{
		Policy:   incumbent,
		Backfill: cfg.Backfill,
		Check:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetTelemetry(sink)
	cfg.Telemetry = sink
	cfg.Queue = s.QueuedJobs // the digital twin replays the live backlog
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	type completion struct {
		at float64
		id int
	}
	var pending []completion
	runtimeOf := make(map[int]float64, len(jobs))
	for _, j := range jobs {
		runtimeOf[j.ID] = j.Runtime
	}
	schedule := func(starts []online.Start) {
		for _, st := range starts {
			pending = append(pending, completion{at: st.Time + runtimeOf[st.ID], id: st.ID})
		}
	}

	next := 0
	for next < len(jobs) || len(pending) > 0 {
		tNext := math.Inf(1)
		if next < len(jobs) {
			tNext = jobs[next].Submit
		}
		for i := range pending {
			if pending[i].at < tNext {
				tNext = pending[i].at
			}
		}
		starts, err := s.AdvanceTo(tNext)
		if err != nil {
			t.Fatal(err)
		}
		schedule(starts)
		if d, err := ctrl.Tick(tNext, s.Policy()); err != nil {
			t.Fatal(err)
		} else if d != nil && d.Promoted {
			if err := s.SetPolicy(d.Policy); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < len(pending); i++ {
			if pending[i].at == tNext {
				if err := s.Complete(pending[i].id); err != nil {
					t.Fatal(err)
				}
				pending[i] = pending[len(pending)-1]
				pending = pending[:len(pending)-1]
				i--
			}
		}
		for next < len(jobs) && jobs[next].Submit == tNext {
			if err := s.Submit(jobs[next]); err != nil {
				t.Fatal(err)
			}
			ctrl.Observe(jobs[next])
			next++
		}
		schedule(s.Flush())
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	return loopTrace{decisions: ctrl.Decisions(), metrics: s.Metrics()}
}

// driftingJobs is big-job traffic for the first half and a small-job
// flood after, re-IDed into one stream.
func driftingJobs(seed uint64) []workload.Job {
	big := stream(seed, 96, 0, false)
	small := stream(seed+1, 512, big[len(big)-1].Submit, true)
	all := append(big, small...)
	for i := range all {
		all[i].ID = i + 1
	}
	return all
}

// TestLoopDeterministicAcrossWorkers is the end-to-end determinism
// differential: a fixed seed must yield the identical sequence of retrain
// instants, fitted expression strings and promotion decisions — and the
// identical final schedule — whether the loop's internal fan-outs run on
// one worker or eight.
func TestLoopDeterministicAcrossWorkers(t *testing.T) {
	jobs := driftingJobs(97)
	mkCfg := func(workers int) Config {
		cfg := testConfig(13)
		cfg.Interval = 21600
		cfg.MinDrift = 0.2
		cfg.Backfill = sim.BackfillEASY
		cfg.Workers = workers
		return cfg
	}
	a := driveLoop(t, jobs, stale(t), mkCfg(1), nil)
	b := driveLoop(t, jobs, stale(t), mkCfg(8), nil)

	if len(a.decisions) == 0 {
		t.Fatal("the loop never ran an adaptation round")
	}
	if len(a.decisions) != len(b.decisions) {
		t.Fatalf("decision counts differ: %d vs %d", len(a.decisions), len(b.decisions))
	}
	promoted := 0
	for i := range a.decisions {
		da, db := a.decisions[i], b.decisions[i]
		if da.At != db.At || da.Round != db.Round || da.Window != db.Window {
			t.Fatalf("decision %d instants differ: %+v vs %+v", i, da, db)
		}
		if da.Skipped != db.Skipped || da.Reason != db.Reason {
			t.Fatalf("decision %d outcomes differ: %q vs %q", i, da.Reason, db.Reason)
		}
		if da.Char != db.Char || !sameFloat(da.Drift, db.Drift) {
			t.Fatalf("decision %d characterizations differ:\n%+v\n%+v", i, da.Char, db.Char)
		}
		if da.Incumbent != db.Incumbent || da.IncumbentBsld != db.IncumbentBsld {
			t.Fatalf("decision %d incumbents differ: %s %.17g vs %s %.17g",
				i, da.Incumbent, da.IncumbentBsld, db.Incumbent, db.IncumbentBsld)
		}
		if len(da.Candidates) != len(db.Candidates) {
			t.Fatalf("decision %d candidate counts differ", i)
		}
		for k := range da.Candidates {
			if da.Candidates[k] != db.Candidates[k] {
				t.Fatalf("decision %d candidate %d differs:\n%+v\n%+v",
					i, k, da.Candidates[k], db.Candidates[k])
			}
		}
		if da.Promoted != db.Promoted || da.PolicyExpr != db.PolicyExpr {
			t.Fatalf("decision %d promotions differ: (%v %q) vs (%v %q)",
				i, da.Promoted, da.PolicyExpr, db.Promoted, db.PolicyExpr)
		}
		if da.Promoted {
			promoted++
		}
	}
	if promoted == 0 {
		t.Fatal("the drifting stream never promoted a policy; the differential exercised nothing interesting")
	}
	if a.metrics != b.metrics {
		t.Fatalf("final schedule metrics differ:\n%+v\n%+v", a.metrics, b.metrics)
	}
}

// sameFloat is float equality that also matches +Inf against +Inf (the
// first round's drift).
func sameFloat(a, b float64) bool {
	return a == b || (math.IsInf(a, 1) && math.IsInf(b, 1))
}
