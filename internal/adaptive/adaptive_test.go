package adaptive

import (
	"math"
	"strings"
	"testing"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/workload"
)

// stream generates n synthetic jobs starting at t0: the "big" regime is a
// trickle of long wide jobs (the traffic an offline-trained incumbent
// saw), the "small" regime an overloaded flood of short narrow jobs with
// heterogeneous areas — the mix where area-ordering beats FCFS-like
// aging, so a policy carrying a large s-coefficient goes stale.
func stream(seed uint64, n int, t0 float64, small bool) []workload.Job {
	rng := dist.New(seed)
	jobs := make([]workload.Job, 0, n)
	at := t0
	for i := 0; i < n; i++ {
		var j workload.Job
		if small {
			// ~1.6x offered load on 256 cores: the queue builds, so the
			// policy order matters and a stale incumbent costs real AveBsld.
			at += 8 + 8*rng.Float64()
			j = workload.Job{
				Submit:  at,
				Runtime: math.Exp(math.Log(30) + rng.Float64()*math.Log(100)), // 30s .. 3000s
				Cores:   []int{2, 4, 8, 16}[rng.IntN(4)],
			}
		} else {
			at += 1800 + 1800*rng.Float64()
			j = workload.Job{
				Submit:  at,
				Runtime: 3600 * (1 + 4*rng.Float64()),
				Cores:   []int{32, 64, 128, 256}[rng.IntN(4)],
			}
		}
		j.ID = i + 1
		j.Estimate = j.Runtime
		jobs = append(jobs, j)
	}
	return jobs
}

// stale is the incumbent the drift scenarios start from: the paper's F3
// shape, whose huge s-coefficient is calibrated to big-job areas; on a
// small-job flood it degenerates to near-FCFS.
func stale(t *testing.T) sched.Policy {
	t.Helper()
	p, err := sched.ParseExpr("STALE", "r*n + 6.86e6*log10(s)")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func testConfig(seed uint64) Config {
	return Config{
		Cores:     256,
		Interval:  43200,
		Window:    192,
		MinWindow: 64,
		SSize:     6,
		QSize:     12,
		Tuples:    2,
		Trials:    48,
		TopK:      2,
		Margin:    0.05,
		Seed:      seed,
	}
}

func TestWindowRing(t *testing.T) {
	w := newWindow(4)
	for i := 1; i <= 6; i++ {
		w.add(workload.Job{ID: i})
	}
	if w.len() != 4 {
		t.Fatalf("len = %d, want 4", w.len())
	}
	snap := w.snapshot()
	for i, want := range []int{3, 4, 5, 6} {
		if snap[i].ID != want {
			t.Fatalf("snapshot[%d].ID = %d, want %d (snapshot %v)", i, snap[i].ID, want, snap)
		}
	}
	// The snapshot is a copy: later adds must not mutate it.
	w.add(workload.Job{ID: 99})
	if snap[0].ID != 3 {
		t.Fatal("snapshot aliased the ring buffer")
	}
}

func TestCharacterize(t *testing.T) {
	win := []workload.Job{
		{ID: 1, Submit: 0, Runtime: 100, Cores: 512},
		{ID: 2, Submit: 100, Runtime: 200, Cores: 1024},
		{ID: 3, Submit: 300, Runtime: 400, Cores: 1536},
	}
	c := Characterize(win, 4096)
	if c.Jobs != 3 {
		t.Fatalf("Jobs = %d", c.Jobs)
	}
	if c.AllocUnit != 512 {
		t.Fatalf("AllocUnit = %d, want 512 (gcd of 512,1024,1536)", c.AllocUnit)
	}
	if c.Span != 300 {
		t.Fatalf("Span = %g", c.Span)
	}
	wantUtil := (100*512 + 200*1024 + 400*1536) / (4096.0 * 300)
	if math.Abs(c.Utilization-wantUtil) > 1e-12 {
		t.Fatalf("Utilization = %g, want %g", c.Utilization, wantUtil)
	}
	if d := c.DriftFrom(c); d != 0 {
		t.Fatalf("self-drift = %g, want 0", d)
	}

	// Regime change shows up as large drift; a reseeded draw of the same
	// regime shows up as small drift.
	big1 := Characterize(stream(1, 128, 0, false), 256)
	big2 := Characterize(stream(2, 128, 0, false), 256)
	small := Characterize(stream(3, 128, 0, true), 256)
	within, across := big1.DriftFrom(big2), big1.DriftFrom(small)
	if across < 4*within {
		t.Fatalf("regime drift %.3f not well above within-regime drift %.3f", across, within)
	}
	if across < 1 {
		t.Fatalf("regime change drift = %.3f nats, expected >= 1", across)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Interval: 1}); err != ErrNoCores {
		t.Fatalf("missing cores: err = %v", err)
	}
	if _, err := New(Config{Cores: 4}); err != ErrNoInterval {
		t.Fatalf("missing interval: err = %v", err)
	}
	c, err := New(Config{Cores: 4, Interval: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Tick(100, nil); err != ErrNoPolicy {
		t.Fatalf("nil incumbent: err = %v", err)
	}
}

func TestAttachTimeAnchor(t *testing.T) {
	// A loop attached to a long-running scheduler schedules its first
	// round one interval after the attach-time clock, not centuries
	// overdue at k·Interval from zero.
	c, err := New(Config{Cores: 4, Interval: 100, Now: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if c.NextCheck() != 1e6+100 {
		t.Fatalf("next check = %g, want %g", c.NextCheck(), 1e6+100.0)
	}
	if d, err := c.Tick(1e6+50, sched.FCFS()); err != nil || d != nil {
		t.Fatalf("round fired before one interval elapsed: d=%v err=%v", d, err)
	}
	d, err := c.Tick(1e6+100, sched.FCFS())
	if err != nil || d == nil {
		t.Fatalf("first round did not fire on schedule: d=%v err=%v", d, err)
	}
}

func TestTickNotDueReturnsNil(t *testing.T) {
	c, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Tick(c.NextCheck()-1, sched.FCFS())
	if err != nil || d != nil {
		t.Fatalf("before the interval: d=%v err=%v", d, err)
	}
}

func TestMinWindowClampedToWindow(t *testing.T) {
	// MinWindow above the ring capacity would idle the loop forever; it
	// clamps so a full window retrains.
	cfg := testConfig(1)
	cfg.Window = 32
	cfg.MinWindow = 64
	cfg.Tuples, cfg.Trials, cfg.QSize, cfg.SSize = 1, 16, 8, 4
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range stream(1, 48, 0, true) {
		c.Observe(j)
	}
	d, err := c.Tick(c.NextCheck(), sched.FCFS())
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || d.Reason == "window too small" {
		t.Fatalf("full 32-job window did not retrain: %+v", d)
	}
}

func TestTickSurvivesHugeClockJump(t *testing.T) {
	// A daemon may legally advance its logical clock by an enormous
	// amount in one request; rescheduling the next round must be O(1),
	// not one step per skipped interval.
	c, err := New(Config{Cores: 4, Interval: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Tick(1e12, sched.FCFS())
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || !d.Skipped {
		t.Fatalf("decision = %+v", d)
	}
	if c.NextCheck() != 1e12+1 {
		t.Fatalf("next check = %g, want %g", c.NextCheck(), 1e12+1.0)
	}
}

func TestTickSkipsSmallWindow(t *testing.T) {
	c, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range stream(1, 8, 0, true) {
		c.Observe(j)
	}
	d, err := c.Tick(c.NextCheck(), sched.FCFS())
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || !d.Skipped || d.Reason != "window too small" {
		t.Fatalf("decision = %+v, want skip for small window", d)
	}
	if c.Rounds() != 0 {
		t.Fatalf("rounds = %d after a skip", c.Rounds())
	}
	// Skipped opportunities still advance the schedule.
	if d2, _ := c.Tick(d.At, sched.FCFS()); d2 != nil {
		t.Fatal("second tick at the same instant ran again")
	}
}

func TestLoopPromotesAwayFromStalePolicy(t *testing.T) {
	cfg := testConfig(7)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inc := stale(t)
	for _, j := range stream(11, 256, 0, true) {
		c.Observe(j)
	}
	d, err := c.Tick(cfg.Interval, inc)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || d.Skipped {
		t.Fatalf("decision = %+v, want a retraining round", d)
	}
	if !d.Promoted {
		t.Fatalf("loop did not promote away from the stale policy: %+v", d)
	}
	best := d.Best()
	if got, inc := d.Candidates[best].AveBsld, d.IncumbentBsld; got >= inc*(1-cfg.Margin) {
		t.Fatalf("promoted candidate AveBsld %.3f does not beat incumbent %.3f by the margin", got, inc)
	}
	if d.Policy == nil || d.PolicyExpr == "" {
		t.Fatalf("promoted decision carries no policy: %+v", d)
	}
	if !strings.HasPrefix(d.Policy.Name(), "A1.") {
		t.Fatalf("promoted policy name = %q", d.Policy.Name())
	}
	// The promoted expression round-trips through the policy parser, so
	// it can be deployed through /v1/policy or a config file.
	if _, err := sched.ParseExpr("X", d.PolicyExpr); err != nil {
		t.Fatalf("promoted expression %q does not parse: %v", d.PolicyExpr, err)
	}
	if c.Promotions() != 1 {
		t.Fatalf("promotions = %d", c.Promotions())
	}

	// Immediately afterwards the loop is cooling down.
	d2, err := c.Tick(c.NextCheck(), d.Policy)
	if err != nil {
		t.Fatal(err)
	}
	if d2 == nil || !d2.Skipped || d2.Reason != "cooling down" {
		t.Fatalf("post-promotion round = %+v, want cooling down", d2)
	}
}

func TestStationaryTrafficSkipsAfterFirstRound(t *testing.T) {
	cfg := testConfig(3)
	cfg.Interval = 1800 // the small-job stream spans ~3.5 hours
	cfg.MinDrift = 0.25
	cfg.Cooldown = 1 // isolate the drift gate from the promotion gate
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := stream(21, 1024, 0, true)
	inc := stale(t)
	next := c.NextCheck()
	var decisions []*Decision
	for _, j := range jobs {
		c.Observe(j)
		if j.Submit >= next {
			d, err := c.Tick(j.Submit, inc)
			if err != nil {
				t.Fatal(err)
			}
			if d != nil {
				decisions = append(decisions, d)
				if d.Promoted {
					inc = d.Policy
				}
			}
			next = c.NextCheck()
		}
	}
	if len(decisions) < 2 {
		t.Fatalf("only %d adaptation rounds over the stream", len(decisions))
	}
	if c.Rounds() != 1 {
		t.Fatalf("rounds = %d, want exactly 1 (stationary traffic retrains once)", c.Rounds())
	}
	for _, d := range decisions[1:] {
		if !d.Skipped || d.Reason != "stationary" {
			t.Fatalf("stationary round = %+v, want drift skip", d)
		}
		if d.Drift >= cfg.MinDrift {
			t.Fatalf("drift %.3f not below threshold %.3f", d.Drift, cfg.MinDrift)
		}
	}
}

func TestTrainWindow(t *testing.T) {
	cfg := testConfig(5)
	win := stream(31, 128, 0, false)
	cands, pols, err := TrainWindow(win, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 || len(cands) != len(pols) {
		t.Fatalf("got %d candidates, %d policies", len(cands), len(pols))
	}
	for i, cand := range cands {
		if pols[i].Name() != trainedName(i) {
			t.Fatalf("policy %d name = %q", i, pols[i].Name())
		}
		if cand.AveBsld < 1 || math.IsNaN(cand.AveBsld) {
			t.Fatalf("candidate %d AveBsld = %g", i, cand.AveBsld)
		}
		// The candidate's shadow score is reproducible: replaying the
		// window under the parsed policy yields the same AveBsld.
		res, err := sim.Run(sim.Platform{Cores: cfg.Cores}, win, sim.Options{Policy: pols[i]})
		if err != nil {
			t.Fatal(err)
		}
		if res.AVEbsld != cand.AveBsld {
			t.Fatalf("candidate %d: shadow %.6f vs replay %.6f", i, cand.AveBsld, res.AVEbsld)
		}
	}
	// Too small a window is a typed error.
	if _, _, err := TrainWindow(win[:4], cfg); err == nil {
		t.Fatal("tiny window accepted")
	} else if _, ok := err.(*SkipError); !ok {
		t.Fatalf("err = %T(%v), want *SkipError", err, err)
	}
}
