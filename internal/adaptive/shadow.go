package adaptive

import (
	"context"
	"fmt"

	"github.com/hpcsched/gensched/internal/runner"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/workload"
)

// shadowEval replays the observed window through the batch simulator once
// per policy — a digital-twin replay: the same jobs, the same machine,
// the same backfilling and estimate regime as the live cluster, with only
// the queue policy varied — and returns each policy's AveBsld over the
// window, in policy order.
//
// The replays fan out over the shared runner pool. Each one is a pure
// function of (window, policy, config) landing in its own slot, so the
// result is bit-identical for any worker count.
func shadowEval(ctx context.Context, win []workload.Job, cfg Config, policies []sched.Policy) ([]float64, error) {
	return runner.Map(ctx, cfg.Workers, len(policies), func(_ context.Context, i int) (float64, error) {
		res, err := sim.Run(sim.Platform{Cores: cfg.Cores}, win, sim.Options{
			Policy:        policies[i],
			UseEstimates:  cfg.UseEstimates,
			Backfill:      cfg.Backfill,
			BackfillOrder: cfg.BackfillOrder,
			Tau:           cfg.Tau,
		})
		if err != nil {
			return 0, err
		}
		return res.AVEbsld, nil
	})
}

// TrainWindow runs one retraining cycle on a fixed window outside any
// controller — the offline entry point the examples and tools use to fit
// an initial incumbent from historical traffic. It returns the shadow-
// evaluated candidates (in fit-rank order) and the matching ready-to-use
// policies, named W.1, W.2, ... Promotion logic does not apply; the
// caller picks (typically Decision-style, the lowest AveBsld).
func TrainWindow(win []workload.Job, cfg Config) ([]Candidate, []sched.Policy, error) {
	if cfg.Cores <= 0 {
		return nil, nil, ErrNoCores
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 1 // unused by a one-shot cycle, but New requires it
	}
	if cfg.Window < len(win) {
		cfg.Window = len(win) // keep the whole supplied window
	}
	c, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	for _, j := range win {
		c.Observe(j)
	}
	// A throwaway incumbent that never wins lets round() run unchanged;
	// its shadow result is discarded.
	d, err := c.round(0, sched.FCFS())
	if err != nil {
		return nil, nil, err
	}
	if d.Skipped {
		return nil, nil, &SkipError{Reason: d.Reason, Window: d.Window}
	}
	policies := make([]sched.Policy, len(d.Candidates))
	for i, cand := range d.Candidates {
		p, err := sched.ParseExpr(trainedName(i), cand.Expr)
		if err != nil {
			return nil, nil, err
		}
		policies[i] = p
	}
	return d.Candidates, policies, nil
}

func trainedName(i int) string { return fmt.Sprintf("W.%d", i+1) }

// SkipError reports that a one-shot TrainWindow could not retrain.
type SkipError struct {
	Reason string
	Window int
}

func (e *SkipError) Error() string {
	return "adaptive: window not trainable (" + e.Reason + ")"
}
