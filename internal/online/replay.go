package online

import (
	"fmt"
	"sort"

	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/schedcore"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/simref"
	"github.com/hpcsched/gensched/internal/telemetry"
	"github.com/hpcsched/gensched/internal/workload"
)

// Swap is a scheduled policy hot-swap: from time At on, every scheduling
// pass ranks the queue with Policy.
type Swap struct {
	At     float64
	Policy sched.Policy
}

// ReplayOptions configures a Replay run. Policy, UseEstimates, Backfill,
// BackfillOrder, Tau and Check mean exactly what they mean in sim.Options;
// KillAtEstimate truncates the execution times the replay driver derives,
// the way the batch engine truncates them.
type ReplayOptions struct {
	Policy         sched.Policy
	UseEstimates   bool
	Backfill       sim.BackfillMode
	BackfillOrder  sched.Policy
	KillAtEstimate bool
	Tau            float64
	Check          bool
	// Swaps applies policy hot-swaps at the given times, in order.
	Swaps []Swap
	// Telemetry, when non-nil, is attached to the replay scheduler: the
	// replay fills the sink's counters, histograms and decision trace
	// exactly as a live daemon serving the same stream would. The
	// schedule itself is unaffected.
	Telemetry *telemetry.Sink
}

// Replay event kinds: policy swaps apply first at an instant (a swap at
// time T governs the pass at T), then completions, then arrivals — the
// batch engine's order.
const kindSwap = -1

// Replay streams a whole workload through an incremental Scheduler the
// way a live cluster would experience it: each job is submitted at its
// submit time, and its completion is reported when its execution time has
// elapsed after the start the scheduler chose. It returns a Result
// assembled with the batch engine's exact arithmetic, so a correct
// Scheduler yields a Result bit-identical to sim.Run on the same jobs and
// options — the property the differential tests enforce.
//
// Job IDs must be unique across the workload (they key the stream's
// completion events).
func Replay(cores int, jobs []workload.Job, opt ReplayOptions) (*sim.Result, error) {
	if opt.Policy == nil {
		return nil, ErrNoPolicy
	}
	byID := make(map[int]int, len(jobs))
	for i := range jobs {
		if prev, dup := byID[jobs[i].ID]; dup {
			return nil, fmt.Errorf("online: replay needs unique job IDs; %d appears at inputs %d and %d",
				jobs[i].ID, prev, i)
		}
		byID[jobs[i].ID] = i
	}
	if !sort.SliceIsSorted(opt.Swaps, func(a, b int) bool { return opt.Swaps[a].At < opt.Swaps[b].At }) {
		return nil, fmt.Errorf("online: replay swaps must be in time order")
	}

	s, err := New(cores, Options{
		Policy:        opt.Policy,
		UseEstimates:  opt.UseEstimates,
		Backfill:      opt.Backfill,
		BackfillOrder: opt.BackfillOrder,
		Tau:           opt.Tau,
		Check:         opt.Check,
	})
	if err != nil {
		return nil, err
	}
	s.SetTelemetry(opt.Telemetry)

	// The stream: arrivals are known up front; completions are pushed as
	// the scheduler starts jobs; swaps ride along as their own events.
	var h schedcore.EventHeap
	for i := range jobs {
		if err := jobs[i].Validate(cores); err != nil {
			return nil, fmt.Errorf("online: %w", err)
		}
		h.Push(schedcore.Event{Time: jobs[i].Submit, Kind: schedcore.KindArrival, Ref: i})
	}
	for si, sw := range opt.Swaps {
		if sw.Policy == nil {
			return nil, ErrNoPolicy
		}
		h.Push(schedcore.Event{Time: sw.At, Kind: kindSwap, Ref: si})
	}

	outs := make([]sim.Outcome, len(jobs))
	execution := func(i int) float64 {
		e := jobs[i].Runtime
		if opt.KillAtEstimate && jobs[i].Estimate > 0 && jobs[i].Estimate < e {
			e = jobs[i].Estimate
		}
		return e
	}
	// flush drains the pending pass, records where the started jobs will
	// run, and schedules their completion events.
	flush := func() {
		for _, st := range s.Flush() {
			i := byID[st.ID]
			exec := execution(i)
			outs[i] = sim.Outcome{
				Start:      st.Time,
				Finish:     st.Time + exec,
				Execution:  exec,
				Backfilled: st.Backfilled,
			}
			h.Push(schedcore.Event{Time: outs[i].Finish, Kind: schedcore.KindCompletion, Ref: i})
		}
	}
	for {
		flush()
		if h.Len() == 0 {
			break
		}
		t := h.PeekTime()
		if _, err := s.AdvanceTo(t); err != nil {
			return nil, err
		}
		for h.Len() > 0 && h.PeekTime() == t {
			ev := h.Pop()
			switch ev.Kind {
			case kindSwap:
				if err := s.SetPolicy(opt.Swaps[ev.Ref].Policy); err != nil {
					return nil, err
				}
			case schedcore.KindCompletion:
				if err := s.Complete(jobs[ev.Ref].ID); err != nil {
					return nil, err
				}
			case schedcore.KindArrival:
				if err := s.Submit(jobs[ev.Ref]); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	if s.completed != len(jobs) {
		return nil, fmt.Errorf("online: replay drained with %d of %d jobs completed", s.completed, len(jobs))
	}

	res := sim.AssembleResult(jobs, outs, cores, opt.Tau)
	res.MaxQueueLen = s.MaxQueueLen()
	res.Backfilled = s.BackfilledCount()
	if opt.Check {
		pls := make([]simref.Placement, len(res.Stats))
		for i, st := range res.Stats {
			pls[i] = simref.Placement{Job: st.Job, Start: st.Start, Finish: st.Finish, Backfilled: st.Backfilled}
		}
		if err := simref.CheckSchedule(cores, pls); err != nil {
			return nil, fmt.Errorf("online: %w", err)
		}
	}
	return res, nil
}
