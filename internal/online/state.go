// Scheduler state export/restore: the serializable image of a Scheduler —
// the engine image plus the ID index and the incrementally maintained
// metric aggregates — for the durable daemon's snapshots. Restore is the
// inverse constructor: New, then an exact re-establishment of every field,
// so a restored scheduler's future behavior and metrics are bit-identical
// to the exported one's (the crash-point test pins this).

package online

import (
	"fmt"
	"sort"

	"github.com/hpcsched/gensched/internal/schedcore"
)

// ActiveJob is one (job ID → task slot) entry of the scheduler's index,
// in the serializable image.
type ActiveJob struct {
	ID   int
	Slot int
}

// SchedulerState is the serializable image of a Scheduler. Float
// aggregates are state, not derived values — they accumulate in completion
// order — so they are carried verbatim (including the ±Inf first/last
// sentinels) rather than recomputed.
type SchedulerState struct {
	Eng    schedcore.EngineState
	Active []ActiveJob // sorted by job ID
	Dirty  bool

	Submitted   int
	Completed   int
	SumB, SumW  float64
	Busy        float64
	MaxB, MaxW  float64
	FirstSubmit float64
	LastFinish  float64
}

// ExportState writes the scheduler's serializable image into st, reusing
// its slices.
func (s *Scheduler) ExportState(st *SchedulerState) error {
	if err := s.eng.ExportState(&st.Eng); err != nil {
		return err
	}
	st.Active = st.Active[:0]
	for id, ti := range s.byID { //gensched:orderinvariant entries are sorted by ID below before anything reads them
		st.Active = append(st.Active, ActiveJob{ID: id, Slot: ti})
	}
	sort.Slice(st.Active, func(i, j int) bool { return st.Active[i].ID < st.Active[j].ID })
	st.Dirty = s.dirty
	st.Submitted = s.submitted
	st.Completed = s.completed
	st.SumB, st.SumW = s.sumB, s.sumW
	st.Busy = s.busy
	st.MaxB, st.MaxW = s.maxB, s.maxW
	st.FirstSubmit = s.firstSubmit
	st.LastFinish = s.lastFinish
	return nil
}

// Restore builds a Scheduler from an exported image, under the given
// options (whose Policy must be the policy that was active at export — the
// snapshot carries its descriptor). The ID index is validated against the
// engine image so a corrupt snapshot cannot alias two jobs onto one slot.
func Restore(cores int, opt Options, st *SchedulerState) (*Scheduler, error) {
	s, err := New(cores, opt)
	if err != nil {
		return nil, err
	}
	if err := s.eng.ImportState(cores, s.engineConfig(), &st.Eng); err != nil {
		return nil, err
	}
	for i, a := range st.Active {
		if i > 0 && st.Active[i-1].ID >= a.ID {
			return nil, fmt.Errorf("online: state index not strictly ID-sorted at entry %d", i)
		}
		if a.Slot < 0 || a.Slot >= len(st.Eng.Tasks) {
			return nil, fmt.Errorf("online: state index slot %d outside task table", a.Slot)
		}
		t := s.eng.Task(a.Slot)
		if t.Done {
			return nil, fmt.Errorf("online: state index maps job %d to completed slot %d", a.ID, a.Slot)
		}
		if t.Job.ID != a.ID {
			return nil, fmt.Errorf("online: state index maps job %d to slot %d holding job %d", a.ID, a.Slot, t.Job.ID)
		}
		s.byID[a.ID] = a.Slot
	}
	s.dirty = st.Dirty
	s.submitted = st.Submitted
	s.completed = st.Completed
	s.sumB, s.sumW = st.SumB, st.SumW
	s.busy = st.Busy
	s.maxB, s.maxW = st.MaxB, st.MaxW
	s.firstSubmit = st.FirstSubmit
	s.lastFinish = st.LastFinish
	return s, nil
}
