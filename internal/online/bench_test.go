package online_test

import (
	"testing"

	"github.com/hpcsched/gensched/internal/lublin"
	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/workload"
)

func benchJobs(b *testing.B, n int) []workload.Job {
	b.Helper()
	gen, err := lublin.NewGenerator(lublin.DefaultParams(256), 256, 4242)
	if err != nil {
		b.Fatal(err)
	}
	return gen.Jobs(n)
}

// BenchmarkReplayEASY measures full-stream replay throughput (one submit
// event plus one completion event per job) under EASY backfilling — the
// configuration cmd/schedd serves.
func BenchmarkReplayEASY(b *testing.B) {
	jobs := benchJobs(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := online.Replay(256, jobs, online.ReplayOptions{
			Policy: sched.F1(), Backfill: sim.BackfillEASY, UseEstimates: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(2*len(jobs)), "events/op")
}

// BenchmarkSchedulerSteadyState measures the daemon's hot path — advance,
// submit, flush, advance, complete, flush — on a warm scheduler. The
// allocs/op column is the zero-allocation contract.
func BenchmarkSchedulerSteadyState(b *testing.B) {
	s, err := online.New(64, online.Options{Policy: sched.F1(), Backfill: sim.BackfillEASY})
	if err != nil {
		b.Fatal(err)
	}
	clock := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock++
		if _, err := s.AdvanceTo(clock); err != nil {
			b.Fatal(err)
		}
		if err := s.Submit(workload.Job{ID: 1, Submit: clock, Runtime: 100, Estimate: 120, Cores: 8}); err != nil {
			b.Fatal(err)
		}
		s.Flush()
		clock++
		if _, err := s.AdvanceTo(clock); err != nil {
			b.Fatal(err)
		}
		if err := s.Complete(1); err != nil {
			b.Fatal(err)
		}
		s.Flush()
	}
	b.ReportMetric(2, "events/op")
}
