// Package online is the incremental, event-driven scheduler: the same
// scheduling core the batch simulator (internal/sim) drives over a
// preloaded job list, driven instead by streaming calls — Submit a job,
// Complete a running job, Advance the clock — so it can sit inside a live
// service (cmd/schedd) that does not know the future.
//
// The Scheduler maintains full cluster state across calls: the waiting
// queue in policy order, the running set in perceived-finish order, and
// the EASY/conservative backfill structures, all incrementally. It never
// looks at a job's actual runtime to make a decision (completions are
// reported from outside), uses perceived runtimes exactly as the batch
// engine does, and supports hot-swapping the queue policy (SetPolicy)
// without dropping any queued or running state.
//
// # Event batching and Flush
//
// The batch engine applies every event at a timestamp — completions
// before arrivals — and then holds exactly one scheduling pass. The
// Scheduler reproduces that contract with deferred passes: Submit and
// Complete record events at the current clock without scheduling, and the
// pending pass runs when the instant is over — on Flush, or automatically
// when AdvanceTo moves the clock. Replaying a trace this way is
// bit-identical to the batch engine (see Replay and the differential
// tests); a live daemon simply calls Flush after every request.
//
// The steady-state hot path — Submit, Flush, Complete, Flush — performs
// no heap allocations once the scheduler's internal buffers have reached
// their high-water marks: task slots are recycled through a free list and
// the start notifications reuse one scratch slice.
//
// Scheduler is not safe for concurrent use; the public gensched.Cluster
// wrapper adds the lock.
package online

import (
	"errors"
	"fmt"
	"math"

	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/schedcore"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/telemetry"
	"github.com/hpcsched/gensched/internal/workload"
)

// Options configures a Scheduler. The scheduling-relevant fields mirror
// sim.Options: a stream replayed through the Scheduler schedules exactly
// like a batch run with the same options.
type Options struct {
	// Policy orders the waiting queue (required); swap it later with
	// SetPolicy.
	Policy sched.Policy
	// UseEstimates makes every scheduling decision see the user estimate
	// instead of the submitted runtime.
	UseEstimates bool
	// Backfill selects the backfilling algorithm (default none).
	Backfill sim.BackfillMode
	// BackfillOrder optionally reorders EASY backfill candidates (SJBF
	// style); ignored unless Backfill is BackfillEASY.
	BackfillOrder sched.Policy
	// Tau is the bounded-slowdown constant for live metrics; 0 means
	// sim.DefaultTau.
	Tau float64
	// Check enables the core's runtime invariant checking; the first
	// violation is reported by Err.
	Check bool
}

// Start notifies the caller that a job began running. Slices of Start
// returned by Flush and AdvanceTo are scratch, valid until the next call
// on the Scheduler.
type Start struct {
	ID         int
	Time       float64
	Wait       float64 // Time - submit
	Backfilled bool    // started ahead of a blocked higher-priority job
}

// Status is a point-in-time snapshot of the cluster.
type Status struct {
	Now       float64
	Cores     int
	FreeCores int
	Queued    int
	Running   int
	Submitted int // total jobs ever submitted
	Completed int // total jobs ever completed
	Policy    string
}

// Metrics aggregates the schedule so far. Per-job terms are accumulated
// in completion order as jobs retire, so a stream can be watched live
// with O(1) memory; for a drained replay the values match the batch
// engine's up to float summation order (Replay assembles bit-identical
// metrics the batch way instead).
type Metrics struct {
	Submitted   int
	Completed   int
	Backfilled  int
	MaxQueueLen int
	AveBsld     float64 // mean bounded slowdown over completed jobs
	MeanWait    float64
	MaxBSLD     float64
	MaxWait     float64
	Utilization float64 // busy core-seconds / (cores · (last finish - first submit))
}

// Errors returned by the Scheduler.
var (
	ErrNoPolicy = errors.New("online: options require a policy")
	ErrNoCores  = errors.New("online: cluster needs at least one core")
)

// Scheduler is the incremental scheduler. Create one with New; drive it
// with Submit/Complete/AdvanceTo/Flush.
type Scheduler struct {
	eng    *schedcore.Engine
	opt    Options // current configuration; Policy tracks SetPolicy swaps
	policy sched.Policy
	tau    float64

	byID   map[int]int // active (queued or running) job ID → task slot
	dirty  bool        // events recorded at the current instant, pass pending
	starts []Start     // scratch for Flush results

	// tel, when non-nil, observes submits, starts, completions, passes
	// and policy swaps. Every Sink method is nil-receiver safe, so the
	// hooks below call unconditionally: disabled telemetry costs one nil
	// check per event and changes no output bit (pinned by the
	// differential suites).
	tel *telemetry.Sink

	// Aggregates, maintained incrementally.
	submitted   int
	completed   int
	sumB, sumW  float64
	busy        float64
	maxB, maxW  float64
	firstSubmit float64
	lastFinish  float64
}

// New builds an empty cluster with the given core count. The clock starts
// at zero.
func New(cores int, opt Options) (*Scheduler, error) {
	if opt.Policy == nil {
		return nil, ErrNoPolicy
	}
	if cores <= 0 {
		return nil, ErrNoCores
	}
	tau := opt.Tau
	if tau <= 0 {
		tau = sim.DefaultTau
	}
	s := &Scheduler{
		opt:         opt,
		policy:      opt.Policy,
		tau:         tau,
		byID:        make(map[int]int),
		firstSubmit: math.Inf(1),
		lastFinish:  math.Inf(-1),
	}
	s.opt.Tau = tau
	s.eng = schedcore.NewEngine(cores, s.engineConfig())
	return s, nil
}

// engineConfig is the core configuration a Scheduler drives its engine
// with; New and Restore (state.go) build engines from the same source of
// truth so a restored scheduler cannot drift from a fresh one.
func (s *Scheduler) engineConfig() schedcore.Config {
	return schedcore.Config{
		Policy:              s.opt.Policy,
		UseEstimates:        s.opt.UseEstimates,
		Backfill:            s.opt.Backfill,
		BackfillOrder:       s.opt.BackfillOrder,
		Check:               s.opt.Check,
		ExternalCompletions: true,
		OnStart:             s.onStart,
		OnPass:              s.onPass,
	}
}

// SetTelemetry attaches (or, with nil, detaches) a telemetry sink.
// Attaching telemetry never alters a scheduling decision: the sink only
// observes.
func (s *Scheduler) SetTelemetry(t *telemetry.Sink) { s.tel = t }

// Telemetry returns the attached sink, nil when disabled.
func (s *Scheduler) Telemetry() *telemetry.Sink { return s.tel }

// onPass observes every scheduling pass (for queue-depth sampling).
func (s *Scheduler) onPass(now float64, queued int) {
	s.tel.Pass(now, queued)
}

// onStart observes every task the core starts during a pass.
func (s *Scheduler) onStart(ti int) {
	t := s.eng.Task(ti)
	wait := t.Start - t.Job.Submit
	s.starts = append(s.starts, Start{
		ID:         t.Job.ID,
		Time:       t.Start,
		Wait:       wait,
		Backfilled: t.Backfill,
	})
	s.tel.JobStarted(t.Start, t.Job.ID, wait, t.Backfill)
}

// Clock returns the scheduler's current time.
func (s *Scheduler) Clock() float64 { return s.eng.Now() }

// Submit records the arrival of a job at the current instant. The job's
// Submit field is what policies score (it must not lie in the future); a
// zero Submit on a nonzero clock is stamped with the current time, the
// convenience live clients expect. The scheduling pass is deferred to the
// next Flush or AdvanceTo so every arrival and completion of the instant
// is scheduled together, as in the batch engine.
func (s *Scheduler) Submit(j workload.Job) error {
	if j.Submit == 0 && s.eng.Now() > 0 {
		j.Submit = s.eng.Now()
	}
	if err := j.Validate(s.eng.Cores()); err != nil {
		return fmt.Errorf("online: %w", err)
	}
	if j.Submit > s.eng.Now()+schedcore.TimeEps {
		return fmt.Errorf("online: job %d submitted at %g, after the clock %g", j.ID, j.Submit, s.eng.Now())
	}
	if _, ok := s.byID[j.ID]; ok {
		return fmt.Errorf("online: job ID %d is already active", j.ID)
	}
	ti := s.eng.AddTask(j)
	s.eng.Arrive(ti)
	s.byID[j.ID] = ti
	s.submitted++
	if j.Submit < s.firstSubmit {
		s.firstSubmit = j.Submit
	}
	s.dirty = true
	s.tel.JobSubmitted(j.Submit, j.ID)
	return nil
}

// Complete reports that a running job finished at the current instant,
// releasing its cores. Like Submit, the scheduling pass is deferred.
func (s *Scheduler) Complete(id int) error {
	ti, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("online: job %d is not active", id)
	}
	t := s.eng.Task(ti)
	if !t.Started {
		return fmt.Errorf("online: job %d has not started", id)
	}
	s.eng.CompleteNow(ti)

	wait := t.Start - t.Job.Submit
	b := sim.Bsld(wait, t.Job.Runtime, s.tau)
	s.sumB += b
	s.sumW += wait
	if b > s.maxB {
		s.maxB = b
	}
	if wait > s.maxW {
		s.maxW = wait
	}
	s.busy += (t.Finish - t.Start) * float64(t.Job.Cores)
	if t.Finish > s.lastFinish {
		s.lastFinish = t.Finish
	}
	s.completed++

	delete(s.byID, id)
	s.eng.Release(ti)
	s.dirty = true
	s.tel.JobCompleted(t.Finish, id, wait, b)
	return nil
}

// Flush runs the pending scheduling pass for the current instant, if any,
// and returns the jobs it started. The returned slice is scratch, valid
// until the next call on the Scheduler.
func (s *Scheduler) Flush() []Start {
	s.starts = s.starts[:0]
	s.flushInto()
	return s.starts
}

// flushInto runs the pending pass, appending its starts to the current
// scratch without resetting it — the composite operations accumulate the
// starts of several flushes into one notification batch.
func (s *Scheduler) flushInto() {
	if !s.dirty {
		return
	}
	s.dirty = false
	s.eng.Pass()
}

// AdvanceTo moves the clock forward to t, first flushing any pass pending
// at the current instant (whose starts are returned, stamped with the old
// time — they happened before the clock moved). Going backward is an
// error.
func (s *Scheduler) AdvanceTo(t float64) ([]Start, error) {
	now := s.eng.Now()
	if t < now {
		return nil, fmt.Errorf("online: cannot advance the clock backward (%g < %g)", t, now)
	}
	started := s.Flush()
	s.eng.SetNow(t)
	return started, nil
}

// SubmitAt is the live-service composite a daemon request maps to:
// advance the clock to t (clamped so it never moves backward), record the
// arrival, and run the instant's scheduling pass. On error the clock is
// restored to where it was, so one rejected request (duplicate ID,
// oversized job, typo'd timestamp) cannot wedge the stream by stranding
// the clock in the future. The returned slice is scratch, valid until the
// next call; on error it still carries any starts the pending pass
// produced before the rejection.
func (s *Scheduler) SubmitAt(t float64, j workload.Job) ([]Start, error) {
	prev := s.eng.Now()
	if t < prev {
		t = prev
	}
	s.starts = s.starts[:0]
	s.flushInto() // the pass pending at prev, if any
	s.eng.SetNow(t)
	if err := s.Submit(j); err != nil {
		s.eng.SetNow(prev)
		return s.starts, err
	}
	s.flushInto()
	return s.starts, nil
}

// CompleteAt is SubmitAt's counterpart for completion reports: advance
// (clamped), complete, pass — with the clock restored on error.
func (s *Scheduler) CompleteAt(t float64, id int) ([]Start, error) {
	prev := s.eng.Now()
	if t < prev {
		t = prev
	}
	s.starts = s.starts[:0]
	s.flushInto()
	s.eng.SetNow(t)
	if err := s.Complete(id); err != nil {
		s.eng.SetNow(prev)
		return s.starts, err
	}
	s.flushInto()
	return s.starts, nil
}

// SetPolicy hot-swaps the queue-ordering policy without dropping state:
// the waiting queue is re-scored and re-ranked under the new policy, and
// the swap governs every scheduling pass from the next one on. Running
// jobs are unaffected. No pass is triggered — like any other change to
// the instant, it takes effect when the instant is flushed.
func (s *Scheduler) SetPolicy(p sched.Policy) error {
	if p == nil {
		return ErrNoPolicy
	}
	s.policy = p
	s.opt.Policy = p
	s.eng.SetPolicy(p)
	s.tel.PolicySwapped(s.eng.Now(), p.Name())
	return nil
}

// Policy returns the active queue-ordering policy.
func (s *Scheduler) Policy() sched.Policy { return s.policy }

// Options returns the scheduler's current configuration: the options it
// was built with, with Tau resolved and Policy tracking SetPolicy swaps.
// Digital-twin replays (the adaptive loop's shadow evaluation) use it to
// reproduce the live scheduling regime exactly.
func (s *Scheduler) Options() Options { return s.opt }

// Err returns the first invariant violation recorded under Options.Check,
// or nil.
func (s *Scheduler) Err() error { return s.eng.CheckErr() }

// Status snapshots the cluster state.
func (s *Scheduler) Status() Status {
	return Status{
		Now:       s.eng.Now(),
		Cores:     s.eng.Cores(),
		FreeCores: s.eng.FreeCores(),
		Queued:    s.eng.QueueLen(),
		Running:   s.eng.RunningLen(),
		Submitted: s.submitted,
		Completed: s.completed,
		Policy:    s.policy.Name(),
	}
}

// Metrics aggregates the schedule so far (completed jobs).
func (s *Scheduler) Metrics() Metrics {
	m := Metrics{
		Submitted:   s.submitted,
		Completed:   s.completed,
		Backfilled:  s.eng.BackfilledCount(),
		MaxQueueLen: s.eng.MaxQueueLen(),
		MaxBSLD:     s.maxB,
		MaxWait:     s.maxW,
	}
	if s.completed > 0 {
		n := float64(s.completed)
		m.AveBsld = s.sumB / n
		m.MeanWait = s.sumW / n
	}
	if span := s.lastFinish - s.firstSubmit; span > 0 {
		m.Utilization = s.busy / (float64(s.eng.Cores()) * span)
	}
	return m
}

// QueuedJobs returns copies of the jobs currently waiting, in queue
// priority order. The adaptive retraining loop replays them in its shadow
// evaluation so the digital twin reproduces the cluster's actual backlog.
func (s *Scheduler) QueuedJobs() []workload.Job { return s.eng.QueuedJobs(nil) }

// MaxQueueLen returns the waiting-queue high-water mark.
func (s *Scheduler) MaxQueueLen() int { return s.eng.MaxQueueLen() }

// BackfilledCount returns how many jobs started via backfilling.
func (s *Scheduler) BackfilledCount() int { return s.eng.BackfilledCount() }
