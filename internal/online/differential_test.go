package online_test

// The online differential harness: streaming a workload through the
// incremental Scheduler — arrivals, externally reported completions, and
// deferred per-instant passes — must produce start times, per-job stats
// and aggregate metrics bit-identical to the batch engine (internal/sim)
// and the reference oracle (internal/simref) on the adversarial simtest
// corpus, across every backfill mode, with actual runtimes and user
// estimates, and including mid-stream policy hot-swaps.

import (
	"fmt"
	"math"
	"testing"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/simref"
	"github.com/hpcsched/gensched/internal/simtest"
	"github.com/hpcsched/gensched/internal/workload"
)

// compareResults requires two engine Results to be bit-identical in every
// per-job and aggregate field the engines compute.
func compareResults(got, want *sim.Result) error {
	if len(got.Stats) != len(want.Stats) {
		return fmt.Errorf("stats length %d != %d", len(got.Stats), len(want.Stats))
	}
	for i := range got.Stats {
		g, w := got.Stats[i], want.Stats[i]
		if g.Start != w.Start || g.Finish != w.Finish || g.Wait != w.Wait ||
			g.BSLD != w.BSLD || g.Backfilled != w.Backfilled {
			return fmt.Errorf("job %d (input %d): got (start=%v finish=%v wait=%v bsld=%v bf=%v), want (start=%v finish=%v wait=%v bsld=%v bf=%v)",
				g.Job.ID, i, g.Start, g.Finish, g.Wait, g.BSLD, g.Backfilled,
				w.Start, w.Finish, w.Wait, w.BSLD, w.Backfilled)
		}
	}
	type agg struct {
		name     string
		got, wnt float64
	}
	for _, a := range []agg{
		{"AVEbsld", got.AVEbsld, want.AVEbsld},
		{"MedianBSLD", got.MedianBSLD, want.MedianBSLD},
		{"P95BSLD", got.P95BSLD, want.P95BSLD},
		{"MaxBSLD", got.MaxBSLD, want.MaxBSLD},
		{"MeanWait", got.MeanWait, want.MeanWait},
		{"P95Wait", got.P95Wait, want.P95Wait},
		{"MaxWait", got.MaxWait, want.MaxWait},
		{"Makespan", got.Makespan, want.Makespan},
		{"Utilization", got.Utilization, want.Utilization},
	} {
		if a.got != a.wnt {
			return fmt.Errorf("%s: %v != %v", a.name, a.got, a.wnt)
		}
	}
	if got.MaxQueueLen != want.MaxQueueLen {
		return fmt.Errorf("MaxQueueLen: %d != %d", got.MaxQueueLen, want.MaxQueueLen)
	}
	if got.Backfilled != want.Backfilled {
		return fmt.Errorf("Backfilled: %d != %d", got.Backfilled, want.Backfilled)
	}
	return nil
}

// differential replays the stream online and requires bit-identity with
// both the batch engine and the simref oracle.
func differential(cores int, jobs []workload.Job, opt online.ReplayOptions, batchPolicy sched.Policy) error {
	opt.Check = true
	res, err := online.Replay(cores, jobs, opt)
	if err != nil {
		return fmt.Errorf("online: %w", err)
	}
	batch, err := sim.Run(sim.Platform{Cores: cores}, jobs, sim.Options{
		Policy:         batchPolicy,
		UseEstimates:   opt.UseEstimates,
		Backfill:       opt.Backfill,
		BackfillOrder:  opt.BackfillOrder,
		KillAtEstimate: opt.KillAtEstimate,
		Tau:            opt.Tau,
		Check:          true,
	})
	if err != nil {
		return fmt.Errorf("batch: %w", err)
	}
	if err := compareResults(res, batch); err != nil {
		return fmt.Errorf("online diverged from batch (%s, estimates=%v): %w",
			opt.Backfill, opt.UseEstimates, err)
	}
	ref, err := simref.Run(cores, jobs, simref.Options{
		Policy:         batchPolicy,
		BackfillOrder:  opt.BackfillOrder,
		Mode:           simtest.RefMode(opt.Backfill),
		UseEstimates:   opt.UseEstimates,
		KillAtEstimate: opt.KillAtEstimate,
	})
	if err != nil {
		return fmt.Errorf("oracle: %w", err)
	}
	if err := simref.Compare(simtest.Placements(res), ref); err != nil {
		return fmt.Errorf("online diverged from oracle (%s, estimates=%v): %w",
			opt.Backfill, opt.UseEstimates, err)
	}
	return nil
}

// TestOnlineDifferential streams ≥200 randomized adversarial workloads
// through the incremental scheduler under every backfill mode, with
// actual runtimes and user estimates, static and time-varying policies,
// EASY candidate-order variants and KillAtEstimate, requiring
// bit-identical results against both references.
func TestOnlineDifferential(t *testing.T) {
	workloads := 240
	if testing.Short() {
		workloads = 40
	}
	policies := []sched.Policy{sched.FCFS(), sched.SPT(), sched.F1(), sched.WFP3(), sched.UNICEF(), sched.SAF()}
	root := dist.New(20260730)
	for wi := 0; wi < workloads; wi++ {
		rng := root.Split(uint64(wi))
		n := 20 + rng.IntN(41)    // 20..60 jobs
		cores := 4 + rng.IntN(29) // 4..32 cores
		jobs := simtest.RandomJobs(rng, n, cores)
		policy := policies[wi%len(policies)]
		var order sched.Policy
		if wi%5 == 0 {
			order = sched.SPT()
		}
		kill := wi%7 == 0
		for _, mode := range simtest.Modes {
			for _, est := range []bool{false, true} {
				err := differential(cores, jobs, online.ReplayOptions{
					Policy:         policy,
					Backfill:       mode,
					BackfillOrder:  order,
					UseEstimates:   est,
					KillAtEstimate: kill,
				}, policy)
				if err != nil {
					t.Fatalf("workload %d (%s, n=%d, cores=%d): %v", wi, policy.Name(), n, cores, err)
				}
			}
		}
	}
}

// TestOnlineSwapDifferential hot-swaps the policy mid-stream and validates
// against a batch re-run from the swap point: the batch reference runs
// under simtest.SwitchPolicy, which ranks with the old policy before the
// swap instant and the new one after it — exactly the schedule a batch
// engine restarted at the swap point from the online scheduler's state
// would produce. Workloads are drawn on the integer time grid so the
// half-integer swap instants are unambiguous in floating point; a third of
// the runs chain two swaps.
func TestOnlineSwapDifferential(t *testing.T) {
	workloads := 90
	if testing.Short() {
		workloads = 18
	}
	pairs := [][2]sched.Policy{
		{sched.FCFS(), sched.SPT()},
		{sched.SPT(), sched.F1()},
		{sched.F1(), sched.SAF()},
	}
	root := dist.New(777)
	for wi := 0; wi < workloads; wi++ {
		rng := root.Split(uint64(wi))
		n := 25 + rng.IntN(36)
		cores := 4 + rng.IntN(13)
		jobs := simtest.IntegerJobs(rng, n, cores)
		before, after := pairs[wi%len(pairs)][0], pairs[wi%len(pairs)][1]

		// Swap in the thick of the stream: between the submits of the
		// middle and the last job, on the half-integer grid.
		lo, hi := jobs[n/3].Submit, jobs[n-1].Submit
		at := math.Floor(lo+(hi-lo)*rng.Float64()) + 0.5
		swaps := []online.Swap{{At: at, Policy: after}}
		reference := simtest.SwitchPolicy(at, before, after)
		if wi%3 == 0 && hi > at+1 {
			// Chain a second swap, back to a third policy.
			third := pairs[(wi+1)%len(pairs)][1]
			at2 := math.Floor(at+(hi-at)*rng.Float64()) + 1.5
			swaps = append(swaps, online.Swap{At: at2, Policy: third})
			reference = simtest.SwitchPolicy(at2, reference, third)
		}
		for _, mode := range simtest.Modes {
			for _, est := range []bool{false, true} {
				err := differential(cores, jobs, online.ReplayOptions{
					Policy:       before,
					Backfill:     mode,
					UseEstimates: est,
					Swaps:        swaps,
				}, reference)
				if err != nil {
					t.Fatalf("workload %d (%s->%s at %g, n=%d, cores=%d): %v",
						wi, before.Name(), after.Name(), at, n, cores, err)
				}
			}
		}
	}
}

// TestOnlineSwapChangesSchedule guards the swap test against vacuity: the
// hot-swap must actually alter the schedule relative to never swapping
// (on a workload where the policies disagree).
func TestOnlineSwapChangesSchedule(t *testing.T) {
	rng := dist.New(4242)
	jobs := simtest.IntegerJobs(rng, 60, 4)
	at := jobs[20].Submit + 0.5
	swapped, err := online.Replay(4, jobs, online.ReplayOptions{
		Policy: sched.FCFS(),
		Swaps:  []online.Swap{{At: at, Policy: sched.SPT()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := online.Replay(4, jobs, online.ReplayOptions{Policy: sched.FCFS()})
	if err != nil {
		t.Fatal(err)
	}
	if compareResults(swapped, plain) == nil {
		t.Error("policy hot-swap produced a schedule identical to never swapping; swap tests are vacuous")
	}
}
