package online_test

import (
	"testing"

	"github.com/hpcsched/gensched/internal/lublin"
	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/telemetry"
)

// TestReplayTelemetryObserverFree replays the same stream with and
// without an attached sink and requires the two schedules to be
// bit-identical in every per-job and aggregate field — the pin behind
// the nil-guarded hook design: instrumentation is observation only,
// never an input to the schedule.
func TestReplayTelemetryObserverFree(t *testing.T) {
	gen, err := lublin.NewGenerator(lublin.DefaultParams(128), 128, 4242)
	if err != nil {
		t.Fatal(err)
	}
	jobs := gen.Jobs(2000)
	opt := online.ReplayOptions{
		Policy:       sched.F1(),
		Backfill:     sim.BackfillEASY,
		UseEstimates: true,
		Check:        true,
	}
	bare, err := online.Replay(128, jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	sink := telemetry.NewSink(4096)
	opt.Telemetry = sink
	traced, err := online.Replay(128, jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := compareResults(traced, bare); err != nil {
		t.Fatalf("attaching telemetry moved the schedule: %v", err)
	}

	// The sink must have seen the whole stream: one submit, one start
	// and one complete per job, and the backfill counter must match the
	// engine's own count.
	if got := sink.Submitted.Load(); got != uint64(len(jobs)) {
		t.Errorf("submitted counter %d, want %d", got, len(jobs))
	}
	if got := sink.Started.Load(); got != uint64(len(jobs)) {
		t.Errorf("started counter %d, want %d", got, len(jobs))
	}
	if got := sink.Completed.Load(); got != uint64(len(jobs)) {
		t.Errorf("completed counter %d, want %d", got, len(jobs))
	}
	if got := sink.Backfilled.Load(); got != uint64(bare.Backfilled) {
		t.Errorf("backfilled counter %d, want %d", got, bare.Backfilled)
	}
	if got := sink.Wait.Count(); got != uint64(len(jobs)) {
		t.Errorf("wait histogram count %d, want %d", got, len(jobs))
	}
	if sink.QueueDepth.Count() == 0 {
		t.Error("queue-depth histogram never sampled a pass")
	}
}
