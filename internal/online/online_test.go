package online_test

import (
	"strings"
	"testing"

	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/workload"
)

func job(id int, submit, runtime float64, cores int) workload.Job {
	return workload.Job{ID: id, Submit: submit, Runtime: runtime, Estimate: runtime, Cores: cores}
}

func newFCFS(t *testing.T, cores int) *online.Scheduler {
	t.Helper()
	s, err := online.New(cores, online.Options{Policy: sched.FCFS(), Check: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := online.New(4, online.Options{}); err != online.ErrNoPolicy {
		t.Errorf("no policy: err = %v", err)
	}
	if _, err := online.New(0, online.Options{Policy: sched.FCFS()}); err != online.ErrNoCores {
		t.Errorf("no cores: err = %v", err)
	}
}

func TestSubmitStartCompleteLifecycle(t *testing.T) {
	s := newFCFS(t, 4)
	if err := s.Submit(job(1, 0, 100, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(job(2, 0, 50, 3)); err != nil {
		t.Fatal(err)
	}
	started := s.Flush()
	if len(started) != 1 || started[0].ID != 1 || started[0].Time != 0 {
		t.Fatalf("flush at t=0 started %+v, want job 1 at 0", started)
	}
	st := s.Status()
	if st.Running != 1 || st.Queued != 1 || st.FreeCores != 1 {
		t.Fatalf("status after first pass: %+v", st)
	}
	if _, err := s.AdvanceTo(100); err != nil {
		t.Fatal(err)
	}
	if err := s.Complete(1); err != nil {
		t.Fatal(err)
	}
	started = s.Flush()
	if len(started) != 1 || started[0].ID != 2 || started[0].Time != 100 || started[0].Wait != 100 {
		t.Fatalf("flush at t=100 started %+v, want job 2 with wait 100", started)
	}
	if _, err := s.AdvanceTo(150); err != nil {
		t.Fatal(err)
	}
	if err := s.Complete(2); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	m := s.Metrics()
	if m.Completed != 2 || m.Submitted != 2 {
		t.Fatalf("metrics: %+v", m)
	}
	// Job 1: wait 0 → bsld 1. Job 2: wait 100, runtime 50 → (100+50)/50 = 3.
	if m.AveBsld != 2 {
		t.Errorf("AveBsld = %v, want 2", m.AveBsld)
	}
	if m.MeanWait != 50 || m.MaxWait != 100 || m.MaxBSLD != 3 {
		t.Errorf("wait metrics: %+v", m)
	}
	if err := s.Err(); err != nil {
		t.Errorf("invariant check tripped: %v", err)
	}
}

func TestSubmitErrors(t *testing.T) {
	s := newFCFS(t, 4)
	if _, err := s.AdvanceTo(10); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(job(1, 20, 5, 1)); err == nil || !strings.Contains(err.Error(), "after the clock") {
		t.Errorf("future submit: err = %v", err)
	}
	if err := s.Submit(job(1, 10, 5, 8)); err == nil {
		t.Error("oversized job accepted")
	}
	if err := s.Submit(job(1, 10, 5, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(job(1, 10, 5, 1)); err == nil || !strings.Contains(err.Error(), "already active") {
		t.Errorf("duplicate ID: err = %v", err)
	}
}

func TestSubmitStampsZeroSubmitTime(t *testing.T) {
	s := newFCFS(t, 4)
	if _, err := s.AdvanceTo(42); err != nil {
		t.Fatal(err)
	}
	j := workload.Job{ID: 7, Runtime: 5, Estimate: 5, Cores: 1} // Submit unset
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	started := s.Flush()
	if len(started) != 1 || started[0].Wait != 0 {
		t.Fatalf("stamped submit: started %+v, want wait 0 at t=42", started)
	}
}

func TestCompleteErrors(t *testing.T) {
	s := newFCFS(t, 2)
	if err := s.Complete(9); err == nil || !strings.Contains(err.Error(), "not active") {
		t.Errorf("unknown id: err = %v", err)
	}
	// A queued-but-never-started job cannot complete.
	if err := s.Submit(job(1, 0, 10, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(job(2, 0, 10, 2)); err != nil {
		t.Fatal(err)
	}
	s.Flush() // starts job 1 only
	if err := s.Complete(2); err == nil || !strings.Contains(err.Error(), "not started") {
		t.Errorf("queued job completion: err = %v", err)
	}
}

func TestAdvanceBackwardRejected(t *testing.T) {
	s := newFCFS(t, 1)
	if _, err := s.AdvanceTo(10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AdvanceTo(5); err == nil {
		t.Error("backward advance accepted")
	}
}

func TestSetPolicyRerankQueue(t *testing.T) {
	s := newFCFS(t, 1)
	// One job hogs the machine; two wait in FCFS order (3 before 4 by
	// submit). After swapping to SPT the short late job must run first.
	if err := s.Submit(job(1, 0, 100, 1)); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	if _, err := s.AdvanceTo(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(job(3, 1, 80, 1)); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	if _, err := s.AdvanceTo(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(job(4, 2, 5, 1)); err != nil {
		t.Fatal(err)
	}
	s.Flush()

	if err := s.SetPolicy(sched.SPT()); err != nil {
		t.Fatal(err)
	}
	if got := s.Policy().Name(); got != "SPT" {
		t.Errorf("policy = %s, want SPT", got)
	}
	if st := s.Status(); st.Queued != 2 || st.Policy != "SPT" {
		t.Fatalf("swap dropped queue state: %+v", st)
	}
	if _, err := s.AdvanceTo(100); err != nil {
		t.Fatal(err)
	}
	if err := s.Complete(1); err != nil {
		t.Fatal(err)
	}
	started := s.Flush()
	if len(started) != 1 || started[0].ID != 4 {
		t.Fatalf("after swap to SPT started %+v, want the short job 4", started)
	}
	if err := s.SetPolicy(nil); err != online.ErrNoPolicy {
		t.Errorf("nil policy: err = %v", err)
	}
}

func TestReplayInputValidation(t *testing.T) {
	jobs := []workload.Job{job(1, 0, 10, 1), job(1, 5, 10, 1)}
	if _, err := online.Replay(2, jobs, online.ReplayOptions{Policy: sched.FCFS()}); err == nil ||
		!strings.Contains(err.Error(), "unique job IDs") {
		t.Errorf("duplicate IDs: err = %v", err)
	}
	jobs2 := []workload.Job{job(1, 0, 10, 1)}
	_, err := online.Replay(2, jobs2, online.ReplayOptions{
		Policy: sched.FCFS(),
		Swaps:  []online.Swap{{At: 9, Policy: sched.SPT()}, {At: 3, Policy: sched.SAF()}},
	})
	if err == nil || !strings.Contains(err.Error(), "time order") {
		t.Errorf("unsorted swaps: err = %v", err)
	}
	if _, err := online.Replay(2, nil, online.ReplayOptions{}); err != online.ErrNoPolicy {
		t.Errorf("no policy: err = %v", err)
	}
	// Empty workload drains cleanly.
	res, err := online.Replay(2, nil, online.ReplayOptions{Policy: sched.FCFS()})
	if err != nil || len(res.Stats) != 0 {
		t.Errorf("empty replay: res=%+v err=%v", res, err)
	}
}

// TestSteadyStateZeroAlloc pins the zero-allocation contract of the hot
// path: once the scheduler's buffers are warm, a submit+flush+complete
// +flush cycle allocates nothing (task slots are recycled, the starts
// slice is reused, the queue/running sets are at high-water mark).
func TestSteadyStateZeroAlloc(t *testing.T) {
	s, err := online.New(4, online.Options{Policy: sched.F1()})
	if err != nil {
		t.Fatal(err)
	}
	clock := 0.0
	cycle := func() {
		clock++
		if _, err := s.AdvanceTo(clock); err != nil {
			panic(err)
		}
		if err := s.Submit(workload.Job{ID: 1, Submit: clock, Runtime: 10, Estimate: 12, Cores: 2}); err != nil {
			panic(err)
		}
		if n := len(s.Flush()); n != 1 {
			panic("job did not start")
		}
		clock++
		if _, err := s.AdvanceTo(clock); err != nil {
			panic(err)
		}
		if err := s.Complete(1); err != nil {
			panic(err)
		}
		s.Flush()
	}
	for i := 0; i < 64; i++ { // warm the buffers
		cycle()
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs > 0 {
		t.Errorf("steady-state submit+complete cycle allocates %.1f objects/op, want 0", allocs)
	}
}
