// Federated replay: route a whole workload deterministically, replay
// each shard's substream on its own engine+goroutine through the shard
// supervisor, and merge the outputs into the canonical (clock, shard,
// seq) order. The concurrency is output-invisible by construction —
// routing happens single-threaded before any shard runs, every shard
// owns its substream, and every merge is a deterministic sort — which
// is what the 1-vs-4-vs-8-shard differential tests pin bit-for-bit
// against sequential single-engine replays of the same substreams.

package fed

import (
	"fmt"
	"sort"

	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/telemetry"
	"github.com/hpcsched/gensched/internal/workload"
)

// ReplayConfig configures a federated replay.
type ReplayConfig struct {
	Shards      int
	ShardCores  int
	Seed        uint64
	StealFactor float64
	// Workers bounds concurrent shard goroutines (<= 0: one per shard).
	Workers int
	// TraceBuf, when > 0, attaches a per-shard telemetry sink with a
	// decision-trace ring of that capacity; the merged trace lands in
	// Result.Trace.
	TraceBuf int
	// Opt configures each shard's replay. Opt.Telemetry must be nil —
	// per-shard sinks are the federation's to create.
	Opt online.ReplayOptions
}

// ShardStart is a start notification tagged with its shard.
type ShardStart struct {
	Shard int
	online.Start
}

// Result is a drained federated replay.
type Result struct {
	Shards     int
	Placements []int // input job index → shard
	Stolen     int   // placements diverted off their hash-primary shard
	// PerShard holds each shard's batch-exact result over its substream
	// (substream job order = global submit order restricted to the shard).
	PerShard []*sim.Result
	// Merged aggregates the per-shard results in shard order.
	Merged online.Metrics
	// Starts is every job start, merged by (time, shard, substream order).
	Starts []ShardStart
	// Trace is the merged decision trace, ordered by (clock, shard, seq);
	// nil unless TraceBuf > 0.
	Trace []ShardEvent
}

// RouteJobs routes a workload without running it: the single-threaded
// phase of Replay, exported so differential tests can derive the exact
// substreams an independent sequential replay must reproduce. Jobs are
// routed in global submit order (stable on input order for ties), each
// at its own submit time. Returns the per-job placements (input order)
// and the per-shard substreams (submit order).
func RouteJobs(jobs []workload.Job, shards, shardCores int, seed uint64, useEstimates bool, stealFactor float64) (placements []int, subs [][]workload.Job, stolen int, err error) {
	router, err := NewRouter(shards, shardCores, seed, useEstimates, stealFactor)
	if err != nil {
		return nil, nil, 0, err
	}
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return jobs[order[a]].Submit < jobs[order[b]].Submit })
	placements = make([]int, len(jobs))
	subs = make([][]workload.Job, shards)
	for _, i := range order {
		s, err := router.Place(jobs[i].Submit, jobs[i])
		if err != nil {
			return nil, nil, 0, err
		}
		placements[i] = s
		subs[s] = append(subs[s], jobs[i])
	}
	return placements, subs, router.Stolen(), nil
}

// Replay routes jobs across cfg.Shards shard schedulers and replays
// every substream concurrently through the shard supervisor. The result
// is bit-identical to replaying each substream sequentially on a single
// engine and merging in (clock, shard, seq) order — concurrency changes
// no output bit.
func Replay(jobs []workload.Job, cfg ReplayConfig) (*Result, error) {
	if cfg.Opt.Telemetry != nil {
		return nil, fmt.Errorf("fed: ReplayConfig.Opt.Telemetry must be nil; per-shard sinks are created from TraceBuf")
	}
	placements, subs, stolen, err := RouteJobs(jobs, cfg.Shards, cfg.ShardCores, cfg.Seed, cfg.Opt.UseEstimates, cfg.StealFactor)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Shards:     cfg.Shards,
		Placements: placements,
		Stolen:     stolen,
		PerShard:   make([]*sim.Result, cfg.Shards),
	}
	sinks := make([]*telemetry.Sink, cfg.Shards)
	if cfg.TraceBuf > 0 {
		for i := range sinks {
			sinks[i] = telemetry.NewSink(cfg.TraceBuf)
		}
	}
	err = runShards(cfg.Workers, cfg.Shards, func(s int) error {
		opt := cfg.Opt
		opt.Telemetry = sinks[s]
		r, rerr := online.Replay(cfg.ShardCores, subs[s], opt)
		if rerr != nil {
			return fmt.Errorf("fed: shard %d: %w", s, rerr)
		}
		res.PerShard[s] = r
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Merge phase, all in fixed shard order.
	per := make([]online.Metrics, cfg.Shards)
	for s, r := range res.PerShard {
		per[s] = online.Metrics{
			Submitted:   len(r.Stats),
			Completed:   len(r.Stats),
			Backfilled:  r.Backfilled,
			MaxQueueLen: r.MaxQueueLen,
			AveBsld:     r.AVEbsld,
			MeanWait:    r.MeanWait,
			MaxBSLD:     r.MaxBSLD,
			MaxWait:     r.MaxWait,
			Utilization: r.Utilization,
		}
		for _, st := range r.Stats {
			res.Starts = append(res.Starts, ShardStart{Shard: s, Start: online.Start{
				ID: st.Job.ID, Time: st.Start, Wait: st.Wait, Backfilled: st.Backfilled,
			}})
		}
	}
	res.Merged = MergeMetrics(per)
	// Shards were appended in ascending order with substreams in submit
	// order, so a stable sort by start time completes the merge order.
	sort.SliceStable(res.Starts, func(i, j int) bool { return res.Starts[i].Time < res.Starts[j].Time })
	if cfg.TraceBuf > 0 {
		res.Trace = MergeTraces(sinks)
	}
	return res, nil
}

// MergeTraces exports the full per-shard decision traces (slice index =
// shard) merged into the canonical (clock, shard, seq) order. Nil sinks
// contribute nothing.
func MergeTraces(sinks []*telemetry.Sink) []ShardEvent {
	var evs []ShardEvent
	for s, sink := range sinks {
		if sink == nil || sink.Trace == nil {
			continue
		}
		for _, e := range sink.Trace.Events(1, 0) {
			evs = append(evs, ShardEvent{Shard: s, Event: e})
		}
	}
	return sortShardEvents(evs)
}
