package fed

import (
	"bytes"
	"encoding/hex"
	"reflect"
	"testing"

	"github.com/hpcsched/gensched/internal/durable"
	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/workload"
)

func wireRecords() []durable.Record {
	return []durable.Record{
		{Op: durable.OpSubmit, Now: 7.5, Job: workload.Job{ID: 42, Submit: 7.5, Runtime: 120, Estimate: 150, Cores: 8}},
		{Op: durable.OpComplete, Now: 127.5, ID: 42},
		{Op: durable.OpAdvance, Now: 200},
		{Op: durable.OpPolicy, Name: "L1", Expr: "log10(r)*n + 870*log10(s)"},
	}
}

func TestWireRecordRoundTrip(t *testing.T) {
	for _, rec := range wireRecords() {
		payload, err := AppendRecordMsg(nil, &rec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.Write(AppendFrame(nil, payload))
		got, err := ReadFrame(&buf, nil)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := DecodeMsg(got, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || !reflect.DeepEqual(recs[0], rec) {
			t.Fatalf("round trip: got %+v want %+v", recs, rec)
		}
	}
}

func TestWireBatchRoundTrip(t *testing.T) {
	recs := wireRecords()
	payload, err := AppendBatchMsg(nil, recs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.Write(AppendFrame(nil, payload))
	got, err := ReadFrame(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeMsg(got, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, recs) {
		t.Fatalf("batch round trip:\n got %+v\nwant %+v", out, recs)
	}
}

func TestWireRespRoundTrip(t *testing.T) {
	starts := []online.Start{
		{ID: 1, Time: 10, Wait: 2.5, Backfilled: false},
		{ID: 9, Time: 10, Wait: 0, Backfilled: true},
	}
	now, got, err := DecodeResp(AppendOKResp(nil, 321.25, starts), nil)
	if err != nil {
		t.Fatal(err)
	}
	if now != 321.25 || !reflect.DeepEqual(got, starts) {
		t.Fatalf("ok resp round trip: now=%g starts=%+v", now, got)
	}
	_, _, err = DecodeResp(AppendErrResp(nil, 409, false, "job ID 42 is already active"), nil)
	we, ok := err.(*WireError)
	if !ok || we.Code != 409 || we.Retryable || we.Msg != "job ID 42 is already active" {
		t.Fatalf("err resp round trip: %v", err)
	}
	_, _, err = DecodeResp(AppendErrResp(nil, 503, true, "shard 3 is quarantined"), nil)
	we, ok = err.(*WireError)
	if !ok || we.Code != 503 || !we.Retryable || we.Msg != "shard 3 is quarantined" {
		t.Fatalf("retryable err resp round trip: %v", err)
	}
}

// TestWireGoldenFrame freezes the wire format: a known record must
// produce these exact bytes, so any codec change that would break
// deployed peers (or the shared journal golden vectors) fails here
// first. Regenerate the constant ONLY for a deliberate, versioned
// format change.
func TestWireGoldenFrame(t *testing.T) {
	rec := durable.Record{Op: durable.OpComplete, Now: 127.5, ID: 42}
	payload, err := AppendRecordMsg(nil, &rec)
	if err != nil {
		t.Fatal(err)
	}
	frame := AppendFrame(nil, payload)
	const want = "1200000001030000000000e05f402a00000000000000"
	if got := hex.EncodeToString(frame); got != want {
		t.Fatalf("golden frame changed:\n got %s\nwant %s", got, want)
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty frame":      {0, 0, 0, 0},
		"oversized length": {0xff, 0xff, 0xff, 0xff},
		"truncated header": {1, 0},
		"truncated body":   {8, 0, 0, 0, 1, 2},
	}
	for name, raw := range cases {
		if _, err := ReadFrame(bytes.NewReader(raw), nil); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDecodeMsgRejectsGarbage(t *testing.T) {
	good, err := AppendBatchMsg(nil, wireRecords())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":            {},
		"unknown kind":     {0x7f, 1, 2, 3},
		"truncated count":  {MsgBatch, 1},
		"absurd count":     {MsgBatch, 0xff, 0xff, 0xff, 0xff, 0},
		"trailing bytes":   append(append([]byte{}, good...), 0),
		"truncated record": good[:len(good)-3],
	}
	for name, raw := range cases {
		if _, err := DecodeMsg(raw, nil); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// FuzzDecodeMsg hammers the request decoder with mutated frames, seeded
// with the golden encodings. The decoder must never panic, and anything
// it accepts must re-encode and re-decode to the same records (the
// codec is its own oracle).
func FuzzDecodeMsg(f *testing.F) {
	for _, rec := range wireRecords() {
		payload, err := AppendRecordMsg(nil, &rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	batch, err := AppendBatchMsg(nil, wireRecords())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(batch)
	f.Add([]byte{MsgBatch, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, payload []byte) {
		recs, err := DecodeMsg(payload, nil)
		if err != nil {
			return
		}
		re, err := AppendBatchMsg(nil, recs)
		if err != nil {
			t.Fatalf("accepted records fail to re-encode: %v", err)
		}
		back, err := DecodeMsg(re, nil)
		if err != nil {
			t.Fatalf("re-encoded batch fails to decode: %v", err)
		}
		if len(back) != len(recs) || (len(recs) > 0 && !reflect.DeepEqual(back, recs)) {
			t.Fatalf("re-decode diverges:\n got %+v\nwant %+v", back, recs)
		}
	})
}

// FuzzDecodeResp is the same contract for the response decoder.
func FuzzDecodeResp(f *testing.F) {
	f.Add(AppendOKResp(nil, 1.5, []online.Start{{ID: 3, Time: 1.5, Wait: 0.5, Backfilled: true}}))
	f.Add(AppendErrResp(nil, 400, false, "bad"))
	f.Add(AppendErrResp(nil, 503, true, "quarantined"))
	f.Fuzz(func(t *testing.T, payload []byte) {
		now, starts, err := DecodeResp(payload, nil)
		if err != nil {
			return
		}
		re := AppendOKResp(nil, now, starts)
		now2, starts2, err := DecodeResp(re, nil)
		if err != nil {
			t.Fatalf("re-encoded resp fails to decode: %v", err)
		}
		sameNow := now == now2 || (now != now && now2 != now2) // NaN survives
		if !sameNow || len(starts2) != len(starts) {
			t.Fatalf("re-decode diverges: %g/%d vs %g/%d", now, len(starts), now2, len(starts2))
		}
	})
}
