// The shard supervisor: the federation's ONLY goroutine spawn site.
// genschedvet blesses internal/fed for goroutines (like internal/runner)
// on the strength of this file's contract — every other file in the
// package must stay spawn-free, which detlint would flag.
//
// Determinism contract, mirroring internal/runner: each shard index is
// executed exactly once by exactly one goroutine, every result lands in
// shard-owned state or the caller's slot for that index, and when
// several shards fail the LOWEST shard's error wins — so a failing
// federated run reports the same error no matter how the goroutines
// interleaved, and a succeeding one produces output that cannot encode
// the interleaving at all.

package fed

import "sync"

// runShards runs fn(shard) for every shard in [0, n), one goroutine per
// shard ("one engine + goroutine each"), with at most workers of them
// admitted concurrently (workers <= 0 or >= n means all at once). It
// waits for every shard and returns the lowest-shard error, if any.
//
// fn must confine itself to shard-owned state; the supervisor provides
// the happens-before edges (goroutine start, WaitGroup join, semaphore
// handoff) but no other synchronization.
func runShards(workers, n int, fn func(shard int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 || workers > n {
		workers = n
	}
	errs := make([]error, n)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
