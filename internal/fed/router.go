// Package fed is the federation layer: N shard schedulers (one
// incremental engine each, per-shard logical clocks and seeds), a
// deterministic router that places jobs across them, and a compact
// binary wire codec for the hot submit/complete path — the scale-out
// story for the online scheduling subsystem, the way a production
// service outgrows one event loop.
//
// # Determinism contract
//
// Everything here is a pure function of the submit stream. The router
// places jobs by consistent hashing over per-shard seeds derived with
// dist.Split, with a least-loaded fallback driven by a fluid backlog
// model — no queue inspection, no timing, no randomness — so the same
// job stream yields the same placements for any worker count or
// interleaving of shard execution. Each shard then schedules its
// substream exactly as a standalone scheduler would, and merged outputs
// (traces, start notifications, aggregates) are ordered by the total
// order (clock, shard, seq). The differential tests pin that a
// concurrent federated replay is bit-identical to a sequential
// single-engine replay of each routed substream, for any shard count.
//
// fed is inside the determinism boundary (genschedvet's zone table) and
// is goroutine-blessed like internal/runner: the ONLY goroutine spawn
// site is the shard supervisor (supervisor.go), whose contract —
// shard-owned state, index-addressed results, lowest-shard error — is
// what keeps the fan-out invisible in every output.
package fed

import (
	"fmt"
	"sort"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/workload"
)

// vnodes is the number of virtual ring points per shard. 64 keeps the
// hash ring balanced to a few percent across shard counts while the
// whole ring still fits in a couple of cache lines per shard.
const vnodes = 64

// defaultStealFactor is the load-gap threshold, in units of the routed
// job's own occupancy, beyond which the least-loaded shard steals the
// job from its hash-primary shard.
const defaultStealFactor = 1.0

// ringPoint is one virtual node on the consistent-hash ring.
type ringPoint struct {
	hash  uint64
	shard int
}

// Router deterministically places jobs on shards. Placement is
// consistent hashing by job ID over per-shard seeds, with a least-loaded
// fallback: each shard carries a fluid-model backlog (a virtual
// completion time advanced by every placement's perceived occupancy),
// and when the hash-primary's backlog exceeds the least-loaded shard's
// by more than the job's own occupancy times StealFactor, the
// least-loaded shard steals the job — backfill slack migrating to where
// it exists. Both signals are functions of the placement stream alone,
// so placements never depend on shard execution order.
//
// A Router is single-writer state: the federation serializes Place and
// completion lookups under its own lock, and the replay path routes the
// whole stream single-threaded before any shard runs.
type Router struct {
	shards      int
	shardCores  int
	useEst      bool
	stealFactor float64

	ring       []ringPoint
	vt         []float64   // per-shard virtual completion time (fluid backlog)
	placed     map[int]int // active job ID → shard
	stolenOnto []int       // per-shard count of placements diverted onto it
	quar       []bool      // quarantined shards: no new placements
}

// ShardDownError reports a placement or lookup that targets a
// quarantined shard. It maps to 503 + Retry-After at the HTTP layer and
// to a retryable Err frame on the binary protocol: the shard may return
// after an operator restarts the daemon, so the client should back off
// and retry rather than give up.
type ShardDownError struct{ Shard int }

func (e *ShardDownError) Error() string {
	return fmt.Sprintf("fed: shard %d is quarantined (durable store failed)", e.Shard)
}

// NewRouter builds a router for the given shard count and per-shard
// machine size. seed derives the per-shard ring points via dist.Split,
// so distinct federation seeds lay out unrelated rings. useEstimates
// selects which runtime the fluid load model perceives, mirroring the
// scheduling options. stealFactor <= 0 means the default 1.0.
func NewRouter(shards, shardCores int, seed uint64, useEstimates bool, stealFactor float64) (*Router, error) {
	if shards < 1 {
		return nil, fmt.Errorf("fed: need at least one shard, got %d", shards)
	}
	if shardCores < 1 {
		return nil, fmt.Errorf("fed: shards need at least one core, got %d", shardCores)
	}
	if stealFactor <= 0 {
		stealFactor = defaultStealFactor
	}
	r := &Router{
		shards:      shards,
		shardCores:  shardCores,
		useEst:      useEstimates,
		stealFactor: stealFactor,
		ring:        make([]ringPoint, 0, shards*vnodes),
		vt:          make([]float64, shards),
		placed:      make(map[int]int),
		stolenOnto:  make([]int, shards),
		quar:        make([]bool, shards),
	}
	for s := 0; s < shards; s++ {
		shardSeed := dist.Split(seed, uint64(s))
		for v := 0; v < vnodes; v++ {
			r.ring = append(r.ring, ringPoint{hash: dist.Split(shardSeed, uint64(v)), shard: s})
		}
	}
	// Sort by hash; ties (cryptographically unlikely) break by shard so
	// the ring order is total and deterministic.
	sort.Slice(r.ring, func(i, j int) bool {
		if r.ring[i].hash != r.ring[j].hash {
			return r.ring[i].hash < r.ring[j].hash
		}
		return r.ring[i].shard < r.ring[j].shard
	})
	return r, nil
}

// Shards returns the shard count.
func (r *Router) Shards() int { return r.shards }

// Stolen returns how many placements were diverted off their
// hash-primary shard by the load fallback.
func (r *Router) Stolen() int {
	total := 0
	for _, n := range r.stolenOnto {
		total += n
	}
	return total
}

// StolenOnto returns the diversions onto one shard — the per-shard
// attribution a shard's durable snapshot carries.
func (r *Router) StolenOnto(s int) int { return r.stolenOnto[s] }

// VT returns the fluid-model virtual completion time of one shard, for
// the shard's durable snapshot.
func (r *Router) VT(s int) float64 { return r.vt[s] }

// RestoreShard seeds one shard's routing state from its recovered
// snapshot: the fluid clock and the steal attribution as of the
// snapshot. Records after the snapshot re-derive the rest via Adopt.
func (r *Router) RestoreShard(s int, vt float64, stolenOnto int) {
	r.vt[s] = vt
	r.stolenOnto[s] = stolenOnto
}

// Quarantine marks a shard down: Place never targets it again and
// lookups of jobs on it report ShardDownError. There is no un-quarantine
// short of a restart — the underlying store is latched broken.
func (r *Router) Quarantine(s int) { r.quar[s] = true }

// Quarantined reports whether a shard is down.
func (r *Router) Quarantined(s int) bool { return r.quar[s] }

// Healthy returns how many shards accept placements.
func (r *Router) Healthy() int {
	n := 0
	for _, q := range r.quar {
		if !q {
			n++
		}
	}
	return n
}

// Primary returns the consistent-hash shard for a job ID, ignoring load
// and quarantine — the pure ring lookup. Recovery uses it to re-derive
// whether a journaled placement was a steal.
func (r *Router) Primary(id int) int { return r.primary(id) }

// primary returns the consistent-hash shard for a job ID: the first ring
// point at or clockwise-after the ID's hash.
func (r *Router) primary(id int) int {
	h := dist.Split(uint64(int64(id)), 0)
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= h })
	if i == len(r.ring) {
		i = 0
	}
	return r.ring[i].shard
}

// Occupancy exposes the fluid model's perceived occupancy of a job — a
// pure function of the router's construction parameters — for the
// shard-local durable mirrors that track the fluid clock in journal
// order.
func (r *Router) Occupancy(j workload.Job) float64 { return r.occupancy(j) }

// occupancy is the fluid model's perceived whole-shard occupancy of a
// job, in seconds: perceived runtime scaled by the fraction of the shard
// the job holds.
func (r *Router) occupancy(j workload.Job) float64 {
	p := j.Runtime
	if r.useEst && j.Estimate > 0 {
		p = j.Estimate
	}
	return p * float64(j.Cores) / float64(r.shardCores)
}

// load is the shard's modeled backlog at time now: how far its virtual
// completion time runs ahead of the clock.
func (r *Router) load(s int, now float64) float64 {
	if l := r.vt[s] - now; l > 0 {
		return l
	}
	return 0
}

// Place routes one job at time now and records the placement. The
// decision depends only on the router's construction parameters and the
// stream of prior Place calls. A job ID already actively placed is
// rejected — the placement map is part of the deterministic state and
// must not be corrupted by a duplicate.
func (r *Router) Place(now float64, j workload.Job) (int, error) {
	if _, dup := r.placed[j.ID]; dup {
		return 0, fmt.Errorf("fed: job ID %d is already placed", j.ID)
	}
	s := r.primary(j.ID)
	// A quarantined primary refuses rather than diverts: healthy shards
	// must see exactly the substream they would have seen in a federation
	// that never received the down shard's traffic, so degraded-mode
	// output stays a deterministic function of the surviving stream.
	if r.quar[s] {
		return 0, &ShardDownError{Shard: s}
	}
	occ := r.occupancy(j)
	if r.shards > 1 {
		// Least-loaded fallback among healthy shards: lowest backlog,
		// ties to the lowest shard. With nothing quarantined this scan is
		// exactly the pre-degradation one, so placements are unchanged.
		min := -1
		for c := 0; c < r.shards; c++ {
			if r.quar[c] {
				continue
			}
			if min < 0 || r.load(c, now) < r.load(min, now) {
				min = c
			}
		}
		if min != s && r.load(s, now)-r.load(min, now) > occ*r.stealFactor {
			s = min
			r.stolenOnto[s]++
		}
	}
	if r.vt[s] < now {
		r.vt[s] = now
	}
	r.vt[s] += occ
	r.placed[j.ID] = s
	return s, nil
}

// Adopt replays one journaled placement during recovery: the job landed
// on shard s (its journal says so), the fluid clock advances exactly as
// the original Place did, and the steal attribution is re-derived from
// the ring — a placement off its hash-primary was a steal.
func (r *Router) Adopt(now float64, j workload.Job, s int) error {
	if _, dup := r.placed[j.ID]; dup {
		return fmt.Errorf("fed: job ID %d is already placed", j.ID)
	}
	if s != r.primary(j.ID) {
		r.stolenOnto[s]++
	}
	if r.vt[s] < now {
		r.vt[s] = now
	}
	r.vt[s] += r.occupancy(j)
	r.placed[j.ID] = s
	return nil
}

// AdoptActive registers a snapshot-restored active job's placement
// without touching the fluid clock or steal counts — the snapshot's
// FedState already accounts for it.
func (r *Router) AdoptActive(id, s int) error {
	if _, dup := r.placed[id]; dup {
		return fmt.Errorf("fed: job ID %d is already placed", id)
	}
	r.placed[id] = s
	return nil
}

// Locate returns the shard an active job was placed on.
func (r *Router) Locate(id int) (int, bool) {
	s, ok := r.placed[id]
	return s, ok
}

// Release forgets a completed job's placement.
func (r *Router) Release(id int) { delete(r.placed, id) }
