// The live federation: N shard schedulers behind one deterministic
// router, with per-shard locks so concurrent daemon requests targeting
// different shards proceed in parallel. Routing decisions are
// serialized under the federation lock — they are the deterministic
// state — while the scheduling work itself runs shard-local.

package fed

import (
	"fmt"
	"sort"
	"sync"

	"github.com/hpcsched/gensched/internal/durable"
	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/telemetry"
	"github.com/hpcsched/gensched/internal/workload"
)

// Config sizes a Federation.
type Config struct {
	// Shards is the number of shard schedulers (>= 1).
	Shards int
	// ShardCores is each shard's machine size; total federated capacity
	// is Shards × ShardCores, and one job must fit on one shard.
	ShardCores int
	// Opt configures every shard scheduler identically.
	Opt online.Options
	// Seed derives the router's per-shard ring seeds via dist.Split.
	Seed uint64
	// StealFactor tunes the router's least-loaded fallback; <= 0 means
	// the default.
	StealFactor float64
	// TraceBuf, when > 0, attaches a telemetry sink per shard with a
	// decision-trace ring of that capacity.
	TraceBuf int
	// Workers bounds concurrent shard goroutines in fan-out paths
	// (replay, drains); <= 0 means one per shard.
	Workers int
}

// shard is one engine plus its lock, sink and (in a durable federation)
// its journal. The scheduler, sink and store are shard-owned
// single-writer state: every interaction happens under mu, and the
// supervisor's goroutines touch one shard each.
type shard struct {
	mu  sync.Mutex
	s   *online.Scheduler
	tel *telemetry.Sink

	// Durability (nil/zero in a non-durable federation). storeErr latches
	// the first journaling failure; the shard is quarantined in the
	// router at the same moment and never serves a mutation again.
	store       *durable.Store
	storeErr    error
	storeClosed bool
	health      ShardHealth // recovery provenance (static after Open)
	init        durable.InitState
	policyName  string
	policyExpr  string
	lastCkpt    float64

	// Journal-order mirrors of the router's per-shard state: vt is the
	// fluid clock, stolenOnto the steal attribution, both advanced at
	// journal-append time so the shard's snapshot reflects exactly the
	// placements its journal holds — never a placement still in flight.
	vt         float64
	stolenOnto int
}

// Federation is N shard schedulers behind a deterministic router.
// Methods are safe for concurrent use; requests for different shards
// run concurrently, and the placement state is serialized so that the
// placement stream — and therefore every output — is a pure function of
// the request stream.
type Federation struct {
	cfg    Config
	mu     sync.Mutex // guards router, draining, drainErr
	router *Router
	shards []*shard

	// dur is non-nil for a durable federation (Open with a data dir).
	dur      *DurableConfig
	draining bool
	drainErr error
}

// New builds a federation of cfg.Shards identical shard schedulers.
func New(cfg Config) (*Federation, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("fed: need at least one shard, got %d", cfg.Shards)
	}
	router, err := NewRouter(cfg.Shards, cfg.ShardCores, cfg.Seed, cfg.Opt.UseEstimates, cfg.StealFactor)
	if err != nil {
		return nil, err
	}
	f := &Federation{cfg: cfg, router: router, shards: make([]*shard, cfg.Shards)}
	for i := range f.shards {
		s, err := online.New(cfg.ShardCores, cfg.Opt)
		if err != nil {
			return nil, err
		}
		sh := &shard{s: s}
		if cfg.TraceBuf > 0 {
			sh.tel = telemetry.NewSink(cfg.TraceBuf)
			s.SetTelemetry(sh.tel)
		}
		f.shards[i] = sh
	}
	return f, nil
}

// Shards returns the shard count.
func (f *Federation) Shards() int { return f.cfg.Shards }

// ShardCores returns each shard's machine size.
func (f *Federation) ShardCores() int { return f.cfg.ShardCores }

// Stolen returns how many placements the router diverted off their
// hash-primary shard.
func (f *Federation) Stolen() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.router.Stolen()
}

// Submit routes and submits one job at time now, returning the shard it
// landed on, the jobs that scheduling pass started (appended to buf, so
// callers can pool), and the owning shard's clock after the pass. On a
// scheduler rejection the placement is released, leaving the router as
// if the request never happened.
func (f *Federation) Submit(now float64, j workload.Job, buf []online.Start) (shardIdx int, starts []online.Start, clock float64, err error) {
	f.mu.Lock()
	if f.draining {
		f.mu.Unlock()
		return 0, buf, 0, ErrDraining
	}
	shardIdx, err = f.router.Place(now, j)
	f.mu.Unlock()
	if err != nil {
		return 0, buf, 0, err
	}
	sh := f.shards[shardIdx]
	sh.mu.Lock()
	// The shard may have latched between Place and here; a quarantined
	// shard never serves a mutation, so undo the placement and refuse.
	if sh.storeErr != nil {
		sh.mu.Unlock()
		f.mu.Lock()
		f.router.Release(j.ID)
		f.mu.Unlock()
		return shardIdx, buf, 0, &ShardDownError{Shard: shardIdx}
	}
	st, serr := sh.s.SubmitAt(now, j)
	starts = append(buf, st...) // copy out of the scheduler's scratch
	var jerr error
	if serr == nil {
		jerr = f.journalLocked(sh, shardIdx, &durable.Record{Op: durable.OpSubmit, Now: now, Job: j})
	}
	clock = sh.s.Clock()
	sh.mu.Unlock()
	if serr != nil {
		f.mu.Lock()
		f.router.Release(j.ID)
		f.mu.Unlock()
		return shardIdx, starts, clock, serr
	}
	// A journal failure is reported after the fact: the job IS placed and
	// queued in memory (the placement stands), it just is not durable —
	// the fatal condition ShardBrokenError describes.
	return shardIdx, starts, clock, jerr
}

// Complete reports a completion at time now to the shard the job was
// placed on.
func (f *Federation) Complete(now float64, id int, buf []online.Start) (starts []online.Start, clock float64, err error) {
	f.mu.Lock()
	if f.draining {
		f.mu.Unlock()
		return buf, 0, ErrDraining
	}
	shardIdx, ok := f.router.Locate(id)
	f.mu.Unlock()
	if !ok {
		return buf, 0, fmt.Errorf("fed: job %d is not placed on any shard", id)
	}
	sh := f.shards[shardIdx]
	sh.mu.Lock()
	if sh.storeErr != nil {
		sh.mu.Unlock()
		return buf, 0, &ShardDownError{Shard: shardIdx}
	}
	st, serr := sh.s.CompleteAt(now, id)
	starts = append(buf, st...)
	var jerr error
	if serr == nil {
		jerr = f.journalLocked(sh, shardIdx, &durable.Record{Op: durable.OpComplete, Now: now, ID: id})
	}
	clock = sh.s.Clock()
	sh.mu.Unlock()
	if serr != nil {
		return starts, clock, serr
	}
	// The completion is applied in memory either way; release the
	// placement and, on a journal failure, report the fatal latch.
	f.mu.Lock()
	f.router.Release(id)
	f.mu.Unlock()
	return starts, clock, jerr
}

// AdvanceTo moves every shard's clock forward to now (clamped per shard
// so no clock moves backward) and returns the merged starts, ordered by
// (time, shard, per-shard pass order). clock is the maximum shard clock
// after the advance.
func (f *Federation) AdvanceTo(now float64, buf []online.Start) (starts []online.Start, clock float64, err error) {
	f.mu.Lock()
	if f.draining {
		f.mu.Unlock()
		return buf, 0, ErrDraining
	}
	f.mu.Unlock()
	starts = buf
	for i, sh := range f.shards {
		sh.mu.Lock()
		// A latched shard is frozen: advancing its clock in memory without
		// a journal record would diverge its durable state.
		if sh.storeErr != nil {
			sh.mu.Unlock()
			continue
		}
		t := now
		if c := sh.s.Clock(); t < c {
			t = c
		}
		st, aerr := sh.s.AdvanceTo(t)
		starts = append(starts, st...)
		var jerr error
		if aerr == nil {
			// The unclamped request time is journaled; replay re-clamps
			// against the shard clock exactly as the live path did.
			jerr = f.journalLocked(sh, i, &durable.Record{Op: durable.OpAdvance, Now: now})
		}
		if c := sh.s.Clock(); c > clock {
			clock = c
		}
		sh.mu.Unlock()
		if aerr != nil {
			return starts, clock, aerr
		}
		if jerr != nil {
			return starts, clock, jerr
		}
	}
	// Shards were drained in ascending order, so a stable sort by time
	// yields the (time, shard, pass order) merge order.
	sort.SliceStable(starts, func(i, j int) bool { return starts[i].Time < starts[j].Time })
	return starts, clock, nil
}

// SetPolicy hot-swaps the queue policy on every shard, in shard order.
// A durable federation must use SetPolicyNamed — the journal records a
// policy by descriptor, not by value.
func (f *Federation) SetPolicy(p sched.Policy) error {
	if f.dur != nil {
		return fmt.Errorf("fed: a durable federation swaps policies by name (SetPolicyNamed)")
	}
	return f.setPolicy(p, "", "")
}

// SetPolicyNamed hot-swaps the queue policy on every shard, in shard
// order, journaling the swap per shard. It refuses unless every shard is
// healthy: a policy that lands on a strict subset of shards would make
// the federation's placement-to-schedule mapping depend on which shard
// failed when.
func (f *Federation) SetPolicyNamed(p sched.Policy, name, expr string) error {
	f.mu.Lock()
	if f.draining {
		f.mu.Unlock()
		return ErrDraining
	}
	if h := f.router.Healthy(); h < f.cfg.Shards {
		f.mu.Unlock()
		return fmt.Errorf("fed: refusing policy swap with %d/%d shards quarantined", f.cfg.Shards-h, f.cfg.Shards)
	}
	f.mu.Unlock()
	return f.setPolicy(p, name, expr)
}

func (f *Federation) setPolicy(p sched.Policy, name, expr string) error {
	for i, sh := range f.shards {
		sh.mu.Lock()
		if sh.storeErr != nil {
			sh.mu.Unlock()
			return &ShardDownError{Shard: i}
		}
		err := sh.s.SetPolicy(p)
		if err == nil {
			err = f.journalLocked(sh, i, &durable.Record{Op: durable.OpPolicy, Name: name, Expr: expr})
			if err == nil {
				sh.policyName, sh.policyExpr = name, expr
			}
		}
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Clock returns the maximum shard clock.
func (f *Federation) Clock() float64 {
	var c float64
	for _, sh := range f.shards {
		sh.mu.Lock()
		if n := sh.s.Clock(); n > c {
			c = n
		}
		sh.mu.Unlock()
	}
	return c
}

// Status is the merged federation view plus the per-shard snapshots.
type Status struct {
	Now       float64         // maximum shard clock
	Shards    int             //
	Cores     int             // total federated cores
	FreeCores int             //
	Queued    int             //
	Running   int             //
	Submitted int             //
	Completed int             //
	Stolen    int             // placements diverted by the load fallback
	Policy    string          //
	PerShard  []online.Status // indexed by shard
}

// Status snapshots every shard and merges, in shard order.
func (f *Federation) Status() Status {
	st := Status{Shards: f.cfg.Shards, Stolen: f.Stolen()}
	st.PerShard = make([]online.Status, f.cfg.Shards)
	for i, sh := range f.shards {
		sh.mu.Lock()
		s := sh.s.Status()
		sh.mu.Unlock()
		st.PerShard[i] = s
		if s.Now > st.Now {
			st.Now = s.Now
		}
		st.Cores += s.Cores
		st.FreeCores += s.FreeCores
		st.Queued += s.Queued
		st.Running += s.Running
		st.Submitted += s.Submitted
		st.Completed += s.Completed
		st.Policy = s.Policy
	}
	return st
}

// Metrics merges per-shard metrics in shard order: counts sum, means
// weight by each shard's completed jobs, maxima take the max, the queue
// high-water takes the max (shards queue independently), and
// utilization averages over shards (equal-size machines).
func (f *Federation) Metrics() (online.Metrics, []online.Metrics) {
	per := make([]online.Metrics, f.cfg.Shards)
	for i, sh := range f.shards {
		sh.mu.Lock()
		per[i] = sh.s.Metrics()
		sh.mu.Unlock()
	}
	return MergeMetrics(per), per
}

// MergeMetrics folds per-shard metrics into one aggregate, in slice
// order (deterministic for a deterministic input order).
func MergeMetrics(per []online.Metrics) online.Metrics {
	var m online.Metrics
	var sumB, sumW, sumU float64
	for _, p := range per {
		m.Submitted += p.Submitted
		m.Completed += p.Completed
		m.Backfilled += p.Backfilled
		if p.MaxQueueLen > m.MaxQueueLen {
			m.MaxQueueLen = p.MaxQueueLen
		}
		if p.MaxBSLD > m.MaxBSLD {
			m.MaxBSLD = p.MaxBSLD
		}
		if p.MaxWait > m.MaxWait {
			m.MaxWait = p.MaxWait
		}
		sumB += p.AveBsld * float64(p.Completed)
		sumW += p.MeanWait * float64(p.Completed)
		sumU += p.Utilization
	}
	if m.Completed > 0 {
		m.AveBsld = sumB / float64(m.Completed)
		m.MeanWait = sumW / float64(m.Completed)
	}
	if len(per) > 0 {
		m.Utilization = sumU / float64(len(per))
	}
	return m
}

// MergedSink folds every shard's counters and histograms into one sink
// (traces excluded — see MergedTrace). Nil when telemetry is off.
func (f *Federation) MergedSink() *telemetry.Sink {
	if f.cfg.TraceBuf <= 0 {
		return nil
	}
	m := &telemetry.Sink{}
	for _, sh := range f.shards {
		sh.mu.Lock()
		m.Merge(sh.tel)
		sh.mu.Unlock()
	}
	return m
}

// ShardSink returns shard i's sink (nil when telemetry is off). The
// caller must not mutate it; reads of a live federation race unless the
// shard is quiesced.
func (f *Federation) ShardSink(i int) *telemetry.Sink { return f.shards[i].tel }

// ShardEvent is a trace event tagged with the shard that recorded it.
type ShardEvent struct {
	Shard int
	Event telemetry.Event
}

// MergedTrace exports the federation's decision trace: per-shard rings
// sampled by sequence (sample > 1 keeps seq % sample == 0, per shard),
// merged into the total order (clock, shard, seq), with limit > 0
// capping to the most recent events AFTER sampling and merging — the
// same sample-then-limit order the single-scheduler /v1/trace endpoint
// documents.
func (f *Federation) MergedTrace(sample, limit int) []ShardEvent {
	if f.cfg.TraceBuf <= 0 {
		return nil
	}
	var out []ShardEvent
	for i, sh := range f.shards {
		sh.mu.Lock()
		evs := sh.tel.Trace.Events(sample, 0)
		sh.mu.Unlock()
		for _, e := range evs {
			out = append(out, ShardEvent{Shard: i, Event: e})
		}
	}
	out = sortShardEvents(out)
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// sortShardEvents establishes the canonical merged order: (clock,
// shard, seq). The input must hold each shard's events contiguously in
// seq order with shards ascending — which every producer in this
// package does — so a stable sort by time alone completes the order.
func sortShardEvents(evs []ShardEvent) []ShardEvent {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Event.Time < evs[j].Event.Time })
	return evs
}
