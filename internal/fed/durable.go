// Per-shard durability: each shard owns one WAL+snapshot store under
// <data-dir>/shard-NNNN/, journals its own mutations under its shard
// lock, and recovers independently — so federation recovery is N
// single-engine recoveries plus a deterministic router rebuild, and one
// bad disk latches one shard instead of killing the daemon.
//
// # Journal-order contract
//
// A shard's durable state reflects its journal order: the order records
// reached the shard lock, which for the deterministic request streams
// the oracles replay is exactly the placement order. The router's
// per-shard fluid clock and steal attribution are therefore mirrored
// shard-locally at journal time (shard.vt, shard.stolenOnto) rather
// than read from the router at checkpoint time — a checkpoint must not
// capture a placement whose record has not been journaled yet.
// Rejected submits are not journaled and leave no durable routing
// residue.
//
// # Quarantine
//
// The first append/sync/checkpoint failure on a shard latches the store
// (durable.Store latches itself) and quarantines the shard in the
// router: no new placements, and mutations targeting it fail with
// ShardDownError — retryable, the deploy may come back after a restart
// — while every healthy shard keeps serving its own substream
// untouched. The mutation that trips the latch is the exception: it was
// applied in memory but not journaled, which ShardBrokenError reports
// as a fatal (non-retryable) condition, exactly like the single-engine
// daemon's 500.

package fed

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"

	"github.com/hpcsched/gensched/internal/durable"
	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/telemetry"
	"github.com/hpcsched/gensched/internal/workload"
)

// ErrDraining is returned for mutations after Drain began. It maps to
// 503 + Retry-After at the HTTP layer and a retryable Err frame on the
// binary protocol.
var ErrDraining = errors.New("fed: draining, refusing mutations")

// ShardBrokenError is the mutation that tripped a shard's latch: it was
// applied in memory but its record did not reach the journal. Fatal —
// retrying cannot make the lost record durable.
type ShardBrokenError struct {
	Shard int
	Err   error
}

func (e *ShardBrokenError) Error() string {
	return fmt.Sprintf("fed: shard %d journal failed (mutation applied but not durable): %v", e.Shard, e.Err)
}

func (e *ShardBrokenError) Unwrap() error { return e.Err }

// DurableConfig wires per-shard stores under Dir.
type DurableConfig struct {
	// Dir is the federation data directory; each shard stores under
	// Dir/shard-NNNN/. Empty means no durability.
	Dir string
	// SyncEvery and CkptEvery carry the single-engine -fsync-every and
	// -checkpoint-every semantics, per shard (CkptEvery in logical
	// seconds of the shard's own clock; 0 checkpoints only on drain).
	SyncEvery int
	CkptEvery float64
	// PolicyName/PolicyExpr describe cfg.Opt.Policy for genesis records
	// and snapshots.
	PolicyName string
	PolicyExpr string
	// ResolvePolicy turns a journaled policy descriptor back into a
	// policy during recovery. Required.
	ResolvePolicy func(name, expr string) (sched.Policy, error)
	// FS, when non-nil, supplies each shard's filesystem — the fault
	// injection seam. Nil means the real filesystem for every shard.
	FS func(shard int) durable.FS
}

// ShardHealth is one shard's durability and degradation status.
type ShardHealth struct {
	Durable      bool
	Quarantined  bool
	StoreErr     string
	Seq          uint64 // next journal sequence
	Recovered    bool
	FromSnapshot bool
	Replayed     int
	Segments     int
}

// shardDirName is the canonical per-shard directory name.
func shardDirName(i int) string { return fmt.Sprintf("shard-%04d", i) }

// shardRecovery carries one shard's recovery result from its supervisor
// goroutine to the sequential router rebuild.
type shardRecovery struct {
	records    []durable.Record // replayed records (post-snapshot)
	snapActive []int            // active job IDs restored from the snapshot
	snapVT     float64
	snapStolen int
}

// shardInit is the genesis InitState every shard journals.
func shardInit(cfg Config, dur *DurableConfig) durable.InitState {
	return durable.InitState{
		Cores:        cfg.ShardCores,
		Backfill:     int(cfg.Opt.Backfill),
		UseEstimates: cfg.Opt.UseEstimates,
		Tau:          cfg.Opt.Tau,
		PolicyName:   dur.PolicyName,
		PolicyExpr:   dur.PolicyExpr,
	}
}

// checkShardInit refuses to bind a shard journal recorded against one
// machine shape to different flags. The policy descriptor is exempt:
// the journal's history governs the active policy.
func checkShardInit(flags, recorded durable.InitState) error {
	type field struct {
		name string
		flag any
		rec  any
	}
	for _, f := range []field{
		{"cores", flags.Cores, recorded.Cores},
		{"backfill", flags.Backfill, recorded.Backfill},
		{"estimates", flags.UseEstimates, recorded.UseEstimates},
		{"tau", flags.Tau, recorded.Tau},
	} {
		if f.flag != f.rec {
			return fmt.Errorf("shard recorded with %s=%v, flags say %v", f.name, f.rec, f.flag)
		}
	}
	return nil
}

// Open builds a durable federation: adopt any pre-federation layout,
// recover every shard (concurrently, bounded by cfg.Workers), then
// rebuild the router deterministically in shard order. With dur.Dir
// empty it is equivalent to New.
func Open(cfg Config, dur DurableConfig) (*Federation, error) {
	if dur.Dir == "" {
		return New(cfg)
	}
	if dur.ResolvePolicy == nil {
		return nil, fmt.Errorf("fed: durable federation needs a policy resolver")
	}
	if dur.SyncEvery < 1 {
		dur.SyncEvery = 1
	}
	if err := adoptLegacyLayout(dur.Dir); err != nil {
		return nil, err
	}
	router, err := NewRouter(cfg.Shards, cfg.ShardCores, cfg.Seed, cfg.Opt.UseEstimates, cfg.StealFactor)
	if err != nil {
		return nil, err
	}
	f := &Federation{cfg: cfg, router: router, shards: make([]*shard, cfg.Shards), dur: &dur}
	for i := range f.shards {
		f.shards[i] = &shard{}
	}
	recovs := make([]*shardRecovery, cfg.Shards)
	if err := runShards(cfg.Workers, cfg.Shards, func(i int) error {
		r, err := f.recoverShard(i)
		if err != nil {
			return fmt.Errorf("fed: shard %d: %w", i, err)
		}
		recovs[i] = r
		return nil
	}); err != nil {
		f.closeOpenedStores()
		return nil, err
	}
	// Router rebuild, sequential in shard order: snapshot state first,
	// then replayed records re-derive placements, diversions and the
	// fluid clock exactly as the original Place calls did.
	for i, r := range recovs {
		router.RestoreShard(i, r.snapVT, r.snapStolen)
		for _, id := range r.snapActive {
			if err := router.AdoptActive(id, i); err != nil {
				f.closeOpenedStores()
				return nil, fmt.Errorf("fed: shard %d snapshot: %w", i, err)
			}
		}
		for k := range r.records {
			rec := &r.records[k]
			switch rec.Op {
			case durable.OpSubmit:
				if err := router.Adopt(rec.Now, rec.Job, i); err != nil {
					f.closeOpenedStores()
					return nil, fmt.Errorf("fed: shard %d replay: %w", i, err)
				}
			case durable.OpComplete:
				router.Release(rec.ID)
			}
		}
		sh := f.shards[i]
		if router.VT(i) != sh.vt || router.StolenOnto(i) != sh.stolenOnto {
			f.closeOpenedStores()
			return nil, fmt.Errorf("fed: shard %d routing state diverged on recovery (vt %v vs %v, stolen %d vs %d)",
				i, router.VT(i), sh.vt, router.StolenOnto(i), sh.stolenOnto)
		}
	}
	return f, nil
}

// closeOpenedStores abandons stores opened by a failed Open. Best
// effort: the boot is already failing with a better error.
func (f *Federation) closeOpenedStores() {
	for _, sh := range f.shards {
		if sh != nil && sh.store != nil {
			_ = sh.store.Close() // cleanup; the boot error is already being reported
		}
	}
}

// recoverShard opens shard i's store and rebuilds its scheduler:
// genesis for a fresh directory, snapshot restore + bounded replay
// otherwise. Runs on the shard's supervisor goroutine; it touches only
// shard-owned state plus read-only router lookups (the ring is
// immutable after construction).
func (f *Federation) recoverShard(i int) (*shardRecovery, error) {
	dur := f.dur
	opt := durable.Options{SyncEvery: dur.SyncEvery}
	if dur.FS != nil {
		opt.FS = dur.FS(i)
	}
	store, rec, err := durable.Open(filepath.Join(dur.Dir, shardDirName(i)), opt)
	if err != nil {
		return nil, err
	}
	sh := f.shards[i]
	out, err := f.recoverShardFrom(i, sh, store, rec)
	if err != nil {
		_ = store.Close() // cleanup; the recovery error is already being reported
		return nil, err
	}
	return out, nil
}

func (f *Federation) recoverShardFrom(i int, sh *shard, store *durable.Store, rec *durable.Recovered) (*shardRecovery, error) {
	cfg, dur := f.cfg, f.dur
	flags := shardInit(cfg, dur)
	out := &shardRecovery{}

	if rec.Snapshot == nil && len(rec.Records) == 0 {
		// Fresh shard: genesis record, then an empty scheduler.
		s, err := online.New(cfg.ShardCores, cfg.Opt)
		if err != nil {
			return nil, err
		}
		sh.initShard(f, s, flags, dur.PolicyName, dur.PolicyExpr)
		sh.store = store
		sh.health.Segments = rec.Segments
		if err := store.Append(&durable.Record{Op: durable.OpInit, Init: &flags}); err != nil {
			return nil, err
		}
		if err := store.Sync(); err != nil {
			return nil, err
		}
		return out, nil
	}

	records := rec.Records
	var recInit durable.InitState
	var s *online.Scheduler
	polName, polExpr := dur.PolicyName, dur.PolicyExpr
	if snap := rec.Snapshot; snap != nil {
		if snap.Adapt != nil {
			return nil, fmt.Errorf("snapshot carries an adaptive loop; the federation does not run one")
		}
		switch {
		case snap.Fed != nil:
			if snap.Fed.Shard != i || snap.Fed.Shards != cfg.Shards || snap.Fed.Seed != cfg.Seed {
				return nil, fmt.Errorf("snapshot belongs to shard %d of a %d-shard federation (seed %d), not shard %d of %d (seed %d)",
					snap.Fed.Shard, snap.Fed.Shards, snap.Fed.Seed, i, cfg.Shards, cfg.Seed)
			}
			out.snapVT, out.snapStolen = snap.Fed.VT, snap.Fed.StolenOnto
		case i != 0:
			// Only shard 0 may adopt a pre-federation snapshot (the
			// single-engine migration); anywhere else it was moved by hand.
			return nil, fmt.Errorf("snapshot has no federation tag; only shard 0 adopts single-engine state")
		}
		recInit = snap.Init
		polName, polExpr = snap.PolicyName, snap.PolicyExpr
		p, err := dur.ResolvePolicy(polName, polExpr)
		if err != nil {
			return nil, fmt.Errorf("snapshot policy: %w", err)
		}
		opt := cfg.Opt
		opt.Policy = p
		s, err = online.Restore(recInit.Cores, opt, &snap.Sched)
		if err != nil {
			return nil, err
		}
		for _, a := range snap.Sched.Active {
			out.snapActive = append(out.snapActive, a.ID)
		}
		sh.health.FromSnapshot = true
	} else {
		if records[0].Op != durable.OpInit {
			return nil, fmt.Errorf("journal does not begin with an init record")
		}
		recInit = *records[0].Init
		records = records[1:]
		polName, polExpr = recInit.PolicyName, recInit.PolicyExpr
		p, err := dur.ResolvePolicy(polName, polExpr)
		if err != nil {
			return nil, fmt.Errorf("journal init policy: %w", err)
		}
		opt := cfg.Opt
		opt.Policy = p
		s, err = online.New(recInit.Cores, opt)
		if err != nil {
			return nil, err
		}
	}
	if err := checkShardInit(flags, recInit); err != nil {
		return nil, err
	}
	sh.initShard(f, s, recInit, polName, polExpr)
	sh.vt, sh.stolenOnto = out.snapVT, out.snapStolen
	sh.store = store
	sh.health.Recovered = true
	sh.health.Replayed = len(records)
	sh.health.Segments = rec.Segments

	// Bounded replay: the same apply path live mutations take, against
	// shard-owned state, re-deriving trace events and the routing
	// mirrors record by record.
	for k := range records {
		r := &records[k]
		if err := sh.applyRecord(f, i, r); err != nil {
			return nil, fmt.Errorf("journal replay: record %d (%v): %w", k, r.Op, err)
		}
	}
	sh.lastCkpt = s.Clock()
	out.records = records
	return out, nil
}

// initShard wires a shard's scheduler, telemetry sink and descriptors.
// The sink attaches before any replay so a recovered shard's trace ring
// is re-derived record by record, exactly as the live shard built it.
func (sh *shard) initShard(f *Federation, s *online.Scheduler, init durable.InitState, polName, polExpr string) {
	sh.s = s
	sh.init = init
	sh.policyName, sh.policyExpr = polName, polExpr
	if f.cfg.TraceBuf > 0 {
		sh.tel = telemetry.NewSink(f.cfg.TraceBuf)
		s.SetTelemetry(sh.tel)
	}
}

// applyRecord replays one journaled operation against shard-owned
// state, including the routing mirrors. Identical to the live mutation
// path minus the journaling itself.
func (sh *shard) applyRecord(f *Federation, i int, rec *durable.Record) error {
	switch rec.Op {
	case durable.OpSubmit:
		if _, err := sh.s.SubmitAt(rec.Now, rec.Job); err != nil {
			return err
		}
		sh.noteSubmitMirror(f, i, rec.Now, rec.Job)
		return nil
	case durable.OpComplete:
		_, err := sh.s.CompleteAt(rec.Now, rec.ID)
		return err
	case durable.OpAdvance:
		t := rec.Now
		if c := sh.s.Clock(); t < c {
			t = c
		}
		_, err := sh.s.AdvanceTo(t)
		return err
	case durable.OpPolicy:
		p, err := f.dur.ResolvePolicy(rec.Name, rec.Expr)
		if err != nil {
			return err
		}
		if err := sh.s.SetPolicy(p); err != nil {
			return err
		}
		sh.policyName, sh.policyExpr = rec.Name, rec.Expr
		return nil
	case durable.OpAdaptStart, durable.OpAdaptStop:
		return fmt.Errorf("adaptive-loop records are a single-engine feature")
	case durable.OpInit:
		return fmt.Errorf("unexpected init record mid-journal")
	}
	return fmt.Errorf("unexpected journal op %v", rec.Op)
}

// noteSubmitMirror advances the shard-local routing mirrors for one
// journaled placement, in journal order. Primary and Occupancy are pure
// lookups on router construction state (the ring is immutable), safe
// under sh.mu without the federation lock. The mirrors — not the live
// router — feed the shard's snapshot, so a checkpoint never captures a
// placement whose record has not been journaled.
func (sh *shard) noteSubmitMirror(f *Federation, i int, now float64, j workload.Job) {
	if i != f.router.Primary(j.ID) {
		sh.stolenOnto++
	}
	if sh.vt < now {
		sh.vt = now
	}
	sh.vt += f.router.Occupancy(j)
}

// journalLocked appends one applied record to the shard's journal and
// runs the checkpoint cadence. Called with sh.mu held. A failure
// latches the store, quarantines the shard and returns
// *ShardBrokenError.
func (f *Federation) journalLocked(sh *shard, i int, rec *durable.Record) error {
	if sh.store == nil {
		return nil
	}
	if err := sh.store.Append(rec); err != nil {
		f.latchShardLocked(sh, i, err)
		return &ShardBrokenError{Shard: i, Err: err}
	}
	if rec.Op == durable.OpSubmit {
		sh.noteSubmitMirror(f, i, rec.Now, rec.Job)
	}
	if f.dur != nil && f.dur.CkptEvery > 0 && sh.s.Clock()-sh.lastCkpt >= f.dur.CkptEvery {
		f.checkpointShardLocked(sh, i)
	}
	return nil
}

// latchShardLocked records a shard's first store failure and
// quarantines it in the router. Called with sh.mu held; takes f.mu —
// sh.mu may nest f.mu inside it, never the reverse (every router access
// on the request path releases f.mu before touching a shard).
func (f *Federation) latchShardLocked(sh *shard, i int, err error) {
	if sh.storeErr == nil {
		sh.storeErr = err
	}
	f.mu.Lock()
	f.router.Quarantine(i)
	f.mu.Unlock()
}

// shardSnapshotLocked builds one shard's checkpoint image from
// shard-owned state (scheduler, descriptors, routing mirrors). Called
// with sh.mu held; Seq is left for the store to stamp.
func (f *Federation) shardSnapshotLocked(sh *shard, i int) (*durable.Snapshot, error) {
	snap := &durable.Snapshot{
		Init:       sh.init,
		PolicyName: sh.policyName,
		PolicyExpr: sh.policyExpr,
		Fed: &durable.FedState{
			Shard:      i,
			Shards:     f.cfg.Shards,
			Seed:       f.cfg.Seed,
			StolenOnto: sh.stolenOnto,
			VT:         sh.vt,
		},
	}
	if err := sh.s.ExportState(&snap.Sched); err != nil {
		return nil, err
	}
	return snap, nil
}

// ShardSnapshot builds shard i's checkpoint image without writing it,
// Seq left zero — the crash suite's canonical byte oracle: two runs are
// in the same state iff their shard snapshots encode identically.
func (f *Federation) ShardSnapshot(i int) (*durable.Snapshot, error) {
	sh := f.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return f.shardSnapshotLocked(sh, i)
}

// checkpointShardLocked snapshots one shard and rotates its journal.
// Failures latch + quarantine rather than failing the request that
// tripped the cadence, mirroring the single-engine daemon.
func (f *Federation) checkpointShardLocked(sh *shard, i int) {
	snap, err := f.shardSnapshotLocked(sh, i)
	if err == nil {
		err = sh.store.Checkpoint(snap)
	}
	if err != nil {
		f.latchShardLocked(sh, i, err)
		return
	}
	sh.lastCkpt = sh.s.Clock()
}

// Drain refuses further mutations, then checkpoints and closes every
// shard store (concurrently, bounded by Workers; lowest-shard error
// wins). Idempotent: later calls re-report the first outcome.
func (f *Federation) Drain() error {
	f.mu.Lock()
	if f.draining {
		err := f.drainErr
		f.mu.Unlock()
		return err
	}
	f.draining = true
	f.mu.Unlock()
	err := runShards(f.cfg.Workers, f.cfg.Shards, func(i int) error {
		return f.closeShardStore(i)
	})
	f.mu.Lock()
	f.drainErr = err
	f.mu.Unlock()
	return err
}

// closeShardStore writes shard i's final checkpoint and closes its
// journal. Taking sh.mu waits out the final in-flight mutation; the
// draining flag (already set) refuses later ones.
func (f *Federation) closeShardStore(i int) error {
	sh := f.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.store == nil || sh.storeClosed {
		return sh.storeErr
	}
	sh.storeClosed = true
	if sh.storeErr == nil {
		f.checkpointShardLocked(sh, i) // latches on failure
	}
	if cerr := sh.store.Close(); sh.storeErr == nil && cerr != nil {
		sh.storeErr = cerr
	}
	if sh.storeErr != nil {
		return fmt.Errorf("fed: shard %d: %w", i, sh.storeErr)
	}
	return nil
}

// Durable reports whether the federation journals to disk.
func (f *Federation) Durable() bool { return f.dur != nil }

// Draining reports whether Drain has begun.
func (f *Federation) Draining() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.draining
}

// Health reports every shard's durability/degradation status, in shard
// order.
func (f *Federation) Health() []ShardHealth {
	out := make([]ShardHealth, f.cfg.Shards)
	for i, sh := range f.shards {
		sh.mu.Lock()
		h := sh.health
		h.Durable = sh.store != nil
		if sh.store != nil {
			h.Seq = sh.store.Seq()
		}
		if sh.storeErr != nil {
			h.StoreErr = sh.storeErr.Error()
		}
		sh.mu.Unlock()
		f.mu.Lock()
		h.Quarantined = f.router.Quarantined(i)
		f.mu.Unlock()
		out[i] = h
	}
	return out
}

// adoptLegacyLayout migrates a pre-federation single-engine data
// directory: wal segments and the snapshot sitting at the top level
// move into shard-0000/, whose recovery then adopts them (untagged
// snapshots are accepted for shard 0 only). Orphaned .tmp files are
// swept. Refuses a directory that has both layouts — that is not a
// migration, it is a mixup.
func adoptLegacyLayout(dir string) error {
	fsys := durable.OS()
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		// A directory that does not exist yet has nothing to migrate.
		return nil
	}
	var legacy []string
	hasShardDirs := false
	for _, e := range entries {
		name := e.Name()
		switch {
		case e.IsDir() && strings.HasPrefix(name, "shard-"):
			hasShardDirs = true
		case !e.IsDir() && (name == "snapshot" ||
			(strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log")) ||
			strings.HasSuffix(name, ".tmp")):
			legacy = append(legacy, name)
		}
	}
	if len(legacy) == 0 {
		return nil
	}
	if hasShardDirs {
		return fmt.Errorf("fed: %s mixes single-engine journal files with shard directories; move one aside", dir)
	}
	shard0 := filepath.Join(dir, shardDirName(0))
	if err := fsys.MkdirAll(shard0, 0o755); err != nil {
		return err
	}
	for _, name := range legacy {
		if strings.HasSuffix(name, ".tmp") {
			// Garbage by definition (an interrupted atomic create).
			if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
			continue
		}
		if err := fsys.Rename(filepath.Join(dir, name), filepath.Join(shard0, name)); err != nil {
			return err
		}
	}
	// Fsync both directories so the migration itself survives a crash.
	for _, d := range []string{shard0, dir} {
		h, err := fsys.OpenDir(d)
		if err != nil {
			return err
		}
		if err := h.Sync(); err != nil {
			_ = h.Close() // cleanup; the sync error is already being reported
			return err
		}
		if err := h.Close(); err != nil {
			return err
		}
	}
	return nil
}
