// Client-side retry policy for the degraded federation: which errors
// are worth resending, and how long to wait between attempts. The
// policy is pure — Backoff computes delays, it never sleeps — because
// fed sits inside the determinism boundary; the caller (schedtest's
// load generator, an operator script) owns the actual clock.

package fed

import (
	"errors"

	"github.com/hpcsched/gensched/internal/dist"
)

// Retryable reports whether an error from a federation mutation — local
// (ShardDownError, ErrDraining) or remote (a WireError with the
// retryable flag) — refused the request before applying it, so the same
// request may be resent after a backoff. Everything else is fatal:
// either the request is wrong, or it was applied without reaching the
// journal (ShardBrokenError) and resending would double-apply.
func Retryable(err error) bool {
	var down *ShardDownError
	if errors.As(err, &down) {
		return true
	}
	if errors.Is(err, ErrDraining) {
		return true
	}
	var we *WireError
	if errors.As(err, &we) {
		return we.Retryable
	}
	return false
}

// Backoff computes deterministic jittered-exponential retry delays.
// Attempt k (0-based) waits Base·2^k, capped at Max, scaled by a jitter
// factor in [0.5, 1.0) drawn from a dist.Split stream — so a load
// generator's retry schedule is as reproducible as the rest of its
// request stream, and a fleet of workers seeded with distinct streams
// does not stampede the daemon in lockstep.
type Backoff struct {
	// Base is attempt 0's nominal delay in seconds (pre-jitter).
	Base float64
	// Max caps the nominal delay; <= 0 means no cap.
	Max float64
	// Attempts bounds the retries; 0 means give up immediately.
	Attempts int

	rng *dist.RNG
}

// NewBackoff builds a policy with its jitter stream. seed/stream follow
// the dist.Split convention used everywhere else: one stream per
// independent retrying actor.
func NewBackoff(base, max float64, attempts int, seed, stream uint64) *Backoff {
	return &Backoff{Base: base, Max: max, Attempts: attempts, rng: dist.New(dist.Split(seed, stream))}
}

// Delay returns attempt's wait in seconds, or ok=false when the policy
// is exhausted (attempt >= Attempts) and the caller should surface the
// error. Each call draws one jitter variate, so calling Delay for
// attempts 0,1,2... in order yields the canonical schedule.
func (b *Backoff) Delay(attempt int) (seconds float64, ok bool) {
	if attempt < 0 || attempt >= b.Attempts {
		return 0, false
	}
	d := b.Base
	for i := 0; i < attempt; i++ {
		d *= 2
		if b.Max > 0 && d >= b.Max {
			d = b.Max
			break
		}
	}
	if b.Max > 0 && d > b.Max {
		d = b.Max
	}
	// Jitter in [0.5, 1.0): never more than the nominal delay, never
	// less than half of it.
	return d * (0.5 + 0.5*b.rng.Float64()), true
}
