// Durable-federation tests: the federated crash suite (kill -9 at
// every record boundary, for 1/4/8 shards, with and without checkpoint
// rotation), deterministic fault injection through the VFS seam
// (quarantine sequencing, healthy-substream equivalence, chaos plans),
// the single-engine → federation layout migration, and the client-side
// retry surface.

package fed

import (
	"bytes"
	"errors"
	"fmt"
	iofs "io/fs"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/hpcsched/gensched/internal/durable"
	"github.com/hpcsched/gensched/internal/faultfs"
	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/workload"
)

func durOpts() online.Options {
	return online.Options{Policy: sched.F1(), Backfill: sim.BackfillEASY, UseEstimates: true}
}

func durCfg(shards int) Config {
	return Config{Shards: shards, ShardCores: testCores, Seed: 1, TraceBuf: 4096, Opt: durOpts()}
}

func testResolvePolicy(name, expr string) (sched.Policy, error) {
	if expr != "" {
		return sched.ParseExpr(name, expr)
	}
	return sched.ByName(name)
}

func durDC(dir string) DurableConfig {
	return DurableConfig{Dir: dir, SyncEvery: 1, PolicyName: "F1", ResolvePolicy: testResolvePolicy}
}

// scriptFedOps drives a throwaway non-durable federation through the
// live-test request pattern (submit everything, then complete running
// jobs in ID order at clock+1 until drained) and records the client
// request stream it produced. The stream is a pure function of the
// inputs, so it can be replayed against durable federations — including
// partially recovered ones — as the canonical workload. With mutations
// true a policy swap is spliced into the submit phase and a clock
// advance between the phases; the fault tests leave them out so every
// op targets exactly one shard.
func scriptFedOps(t *testing.T, shards int, jobs []workload.Job, mutations bool) []durable.Record {
	t.Helper()
	f, err := New(durCfg(shards))
	if err != nil {
		t.Fatal(err)
	}
	var ops []durable.Record
	running := make(map[int]bool)
	addStarts := func(sts []online.Start) {
		for _, st := range sts {
			running[st.ID] = true
		}
	}
	apply := func(rec durable.Record) {
		t.Helper()
		ops = append(ops, rec)
		switch rec.Op {
		case durable.OpSubmit:
			_, sts, _, err := f.Submit(rec.Now, rec.Job, nil)
			if err != nil {
				t.Fatalf("script submit %d: %v", rec.Job.ID, err)
			}
			addStarts(sts)
		case durable.OpComplete:
			sts, _, err := f.Complete(rec.Now, rec.ID, nil)
			if err != nil {
				t.Fatalf("script complete %d: %v", rec.ID, err)
			}
			addStarts(sts)
		case durable.OpAdvance:
			sts, _, err := f.AdvanceTo(rec.Now, nil)
			if err != nil {
				t.Fatalf("script advance: %v", err)
			}
			addStarts(sts)
		case durable.OpPolicy:
			p, err := testResolvePolicy(rec.Name, rec.Expr)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.SetPolicyNamed(p, rec.Name, rec.Expr); err != nil {
				t.Fatalf("script policy: %v", err)
			}
		}
	}
	for k, j := range jobs {
		if mutations && k == len(jobs)/2 {
			apply(durable.Record{Op: durable.OpPolicy, Name: "LIN", Expr: "log10(r)*n + 870*log10(s)"})
		}
		apply(durable.Record{Op: durable.OpSubmit, Now: j.Submit, Job: j})
	}
	if mutations {
		apply(durable.Record{Op: durable.OpAdvance, Now: f.Clock() + 30})
	}
	for len(running) > 0 {
		ids := make([]int, 0, len(running))
		for id := range running {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			delete(running, id)
			apply(durable.Record{Op: durable.OpComplete, Now: f.Clock() + 1, ID: id})
		}
	}
	return ops
}

// applyFedOp replays one scripted client request against a federation.
func applyFedOp(f *Federation, rec *durable.Record) error {
	switch rec.Op {
	case durable.OpSubmit:
		_, _, _, err := f.Submit(rec.Now, rec.Job, nil)
		return err
	case durable.OpComplete:
		_, _, err := f.Complete(rec.Now, rec.ID, nil)
		return err
	case durable.OpAdvance:
		_, _, err := f.AdvanceTo(rec.Now, nil)
		return err
	case durable.OpPolicy:
		p, err := testResolvePolicy(rec.Name, rec.Expr)
		if err != nil {
			return err
		}
		return f.SetPolicyNamed(p, rec.Name, rec.Expr)
	}
	return fmt.Errorf("unscripted op %v", rec.Op)
}

// fedFingerprint canonicalizes a durable federation's observable state:
// merged status plus every shard's encoded snapshot image (the byte
// oracle — two runs are in the same state iff these bytes match),
// optionally the merged decision trace. Recovery provenance (Replayed,
// Segments, journal Seq) is deliberately excluded: a recovered twin
// differs there by construction.
func fedFingerprint(t testing.TB, f *Federation, withTrace bool) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "status %+v\n", f.Status())
	for i := 0; i < f.Shards(); i++ {
		snap, err := f.ShardSnapshot(i)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "shard %d %x\n", i, durable.EncodeSnapshot(snap))
	}
	if withTrace {
		fmt.Fprintf(&b, "trace %+v\n", f.MergedTrace(1, 0))
	}
	return b.String()
}

// copyTree clones a data directory recursively — the moral equivalent
// of kill -9 at an op boundary, shard subdirectories included.
func copyTree(t testing.TB, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(p string, d iofs.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		rel, rerr := filepath.Rel(src, p)
		if rerr != nil {
			return rerr
		}
		dest := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(dest, 0o755)
		}
		data, rerr := os.ReadFile(p)
		if rerr != nil {
			return rerr
		}
		return os.WriteFile(dest, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// treeHasSnapshot reports whether any shard under dir has published a
// snapshot — i.e. the checkpoint cadence actually fired.
func treeHasSnapshot(t testing.TB, dir string) bool {
	t.Helper()
	found := false
	err := filepath.WalkDir(dir, func(p string, d iofs.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if !d.IsDir() && d.Name() == "snapshot" {
			found = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return found
}

// TestFedCrashRecoveryEveryRecord is the federated crash suite: run a
// scripted request stream against a journaled federation, snapshot the
// whole data directory after EVERY op (kill -9 at every record
// boundary), and require that recovery from each cut plus a replay of
// the remaining requests lands in bit-identical state — merged status,
// merged decision trace, and every shard's snapshot bytes — for 1, 4
// and 8 shards. No checkpoint cadence here, so every cut recovers by
// pure journal replay and the trace ring is fully re-derived.
func TestFedCrashRecoveryEveryRecord(t *testing.T) {
	for _, shards := range []int{1, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			jobs := fedJobs(t, 24)
			ops := scriptFedOps(t, shards, jobs, true)
			base := t.TempDir()
			live := filepath.Join(base, "live")
			cfg := durCfg(shards)
			f, err := Open(cfg, durDC(live))
			if err != nil {
				t.Fatal(err)
			}
			cut := func(k int) string { return filepath.Join(base, fmt.Sprintf("cut-%04d", k)) }
			for k := range ops {
				if err := applyFedOp(f, &ops[k]); err != nil {
					t.Fatalf("op %d (%v): %v", k, ops[k].Op, err)
				}
				copyTree(t, live, cut(k))
			}
			want := fedFingerprint(t, f, true)
			wantQuiet := fedFingerprint(t, f, false)
			if err := f.Drain(); err != nil {
				t.Fatal(err)
			}
			// Graceful restart recovers from the shutdown checkpoints; the
			// trace ring predates a snapshot and is not serialized, so the
			// quiet fingerprint governs this comparison.
			g, err := Open(cfg, durDC(live))
			if err != nil {
				t.Fatal(err)
			}
			if got := fedFingerprint(t, g, false); got != wantQuiet {
				t.Fatalf("graceful restart diverges:\n got %s\nwant %s", got, wantQuiet)
			}
			if err := g.Drain(); err != nil {
				t.Fatal(err)
			}
			stride := 1
			if testing.Short() {
				stride = 5
			}
			for k := 0; k < len(ops); k += stride {
				r, err := Open(cfg, durDC(cut(k)))
				if err != nil {
					t.Fatalf("cut %d: reopen: %v", k, err)
				}
				for j := k + 1; j < len(ops); j++ {
					if err := applyFedOp(r, &ops[j]); err != nil {
						t.Fatalf("cut %d: replay op %d (%v): %v", k, j, ops[j].Op, err)
					}
				}
				if got := fedFingerprint(t, r, true); got != want {
					t.Fatalf("cut %d: recovered state diverges from the uninterrupted run:\n got %s\nwant %s", k, got, want)
				}
				if err := r.Drain(); err != nil {
					t.Fatalf("cut %d: drain: %v", k, err)
				}
			}
		})
	}
}

// opsSpan is the largest timestamp the scripted stream reaches, used to
// size the checkpoint cadence relative to the workload's own timescale.
func opsSpan(ops []durable.Record) float64 {
	var max float64
	for i := range ops {
		if ops[i].Now > max {
			max = ops[i].Now
		}
	}
	return max
}

// TestFedCrashRecoveryCheckpointRotation reruns the crash sweep with an
// aggressive checkpoint cadence so cuts land before, between and after
// snapshot rotations. Recovery restores from the newest snapshot plus a
// bounded replay; the pre-snapshot trace is gone by design, so the
// comparison is merged status + per-shard snapshot bytes.
func TestFedCrashRecoveryCheckpointRotation(t *testing.T) {
	const shards = 4
	jobs := fedJobs(t, 24)
	ops := scriptFedOps(t, shards, jobs, true)
	base := t.TempDir()
	live := filepath.Join(base, "live")
	cfg := durCfg(shards)
	dc := durDC(live)
	dc.CkptEvery = opsSpan(ops) / 8
	if dc.CkptEvery <= 0 {
		t.Fatal("scripted stream has no time span to checkpoint over")
	}
	f, err := Open(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}
	cut := func(k int) string { return filepath.Join(base, fmt.Sprintf("cut-%04d", k)) }
	for k := range ops {
		if err := applyFedOp(f, &ops[k]); err != nil {
			t.Fatalf("op %d (%v): %v", k, ops[k].Op, err)
		}
		copyTree(t, live, cut(k))
	}
	if !treeHasSnapshot(t, live) {
		t.Fatal("checkpoint cadence never fired; the rotation sweep tested nothing")
	}
	want := fedFingerprint(t, f, false)
	if err := f.Drain(); err != nil {
		t.Fatal(err)
	}
	stride := 1
	if testing.Short() {
		stride = 5
	}
	sawSnapshotRecovery := false
	for k := 0; k < len(ops); k += stride {
		dcr := durDC(cut(k))
		dcr.CkptEvery = dc.CkptEvery
		r, err := Open(cfg, dcr)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", k, err)
		}
		for _, h := range r.Health() {
			if h.FromSnapshot {
				sawSnapshotRecovery = true
			}
		}
		for j := k + 1; j < len(ops); j++ {
			if err := applyFedOp(r, &ops[j]); err != nil {
				t.Fatalf("cut %d: replay op %d (%v): %v", k, j, ops[j].Op, err)
			}
		}
		if got := fedFingerprint(t, r, false); got != want {
			t.Fatalf("cut %d: recovered state diverges from the uninterrupted run:\n got %s\nwant %s", k, got, want)
		}
		if err := r.Drain(); err != nil {
			t.Fatalf("cut %d: drain: %v", k, err)
		}
	}
	if !sawSnapshotRecovery {
		t.Fatal("no cut recovered from a snapshot; the rotation sweep tested nothing")
	}
}

// TestFedAdoptsLegacyLayout pins the single-engine → federation
// migration: a flat pre-federation data directory (wal segments at top
// level, stray .tmp junk from an interrupted atomic create) is moved
// under shard-0000/ and recovered as shard 0, the junk is swept, the
// remaining shards boot fresh — and a directory mixing both layouts is
// refused outright.
func TestFedAdoptsLegacyLayout(t *testing.T) {
	jobs := fedJobs(t, 12)
	dir := t.TempDir()
	store, rec, err := durable.Open(dir, durable.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh directory recovered state: %+v", rec)
	}
	init := durable.InitState{Cores: testCores, Backfill: int(sim.BackfillEASY), UseEstimates: true, PolicyName: "F1"}
	if err := store.Append(&durable.Record{Op: durable.OpInit, Init: &init}); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := store.Append(&durable.Record{Op: durable.OpSubmit, Now: j.Submit, Job: j}); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snapshot.tmp"), []byte("interrupted"), 0o644); err != nil {
		t.Fatal(err)
	}

	const shards = 4
	f, err := Open(durCfg(shards), durDC(dir))
	if err != nil {
		t.Fatal(err)
	}
	st := f.Status()
	if st.Submitted != len(jobs) {
		t.Fatalf("adopted federation submitted %d, want %d", st.Submitted, len(jobs))
	}
	if st.PerShard[0].Submitted != len(jobs) {
		t.Fatalf("legacy jobs did not all land on shard 0: %+v", st.PerShard)
	}
	h := f.Health()
	if !h[0].Recovered || h[0].Replayed != len(jobs) {
		t.Fatalf("shard 0 health after adoption: %+v", h[0])
	}
	for i := 1; i < shards; i++ {
		if h[i].Recovered {
			t.Fatalf("fresh shard %d claims recovery: %+v", i, h[i])
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			t.Fatalf("top-level file %q survived the migration", e.Name())
		}
	}
	if err := f.Drain(); err != nil {
		t.Fatal(err)
	}
	// Reopening finds a cleanly sharded layout, nothing left to adopt.
	g, err := Open(durCfg(shards), durDC(dir))
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Status(); got.Submitted != len(jobs) {
		t.Fatalf("re-adopted federation submitted %d, want %d", got.Submitted, len(jobs))
	}
	if err := g.Drain(); err != nil {
		t.Fatal(err)
	}

	mixed := t.TempDir()
	if err := os.MkdirAll(filepath.Join(mixed, shardDirName(0)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(mixed, "wal-0000000000000001.log"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(durCfg(shards), durDC(mixed)); err == nil {
		t.Fatal("a directory mixing flat and sharded layouts was accepted")
	}
}

// errClass canonicalizes an error for cross-run comparison without
// embedding filesystem paths (temp dirs differ between runs).
func errClass(err error) string {
	if err == nil {
		return "ok"
	}
	var broken *ShardBrokenError
	var down *ShardDownError
	var fault *faultfs.Fault
	switch {
	case errors.As(err, &broken):
		s := fmt.Sprintf("broken:%d", broken.Shard)
		if errors.As(err, &fault) {
			s += fmt.Sprintf(":%s@%d", fault.Op, fault.N)
		}
		return s
	case errors.As(err, &down):
		return fmt.Sprintf("down:%d", down.Shard)
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.As(err, &fault):
		return fmt.Sprintf("fault:%s@%d", fault.Op, fault.N)
	default:
		return "err:" + err.Error()
	}
}

// TestFedQuarantineDeterminism is the degraded-mode acceptance test: a
// fixed fault schedule on one shard's filesystem produces the same
// latch point, the same per-op error sequence and the same final merged
// state at any recovery worker count; the quarantined shard never
// serves another mutation after its latch; and the healthy shards end
// bit-identical to a federation that never received the victim's
// traffic from the latch on.
func TestFedQuarantineDeterminism(t *testing.T) {
	const shards, victim = 4, 2
	jobs := fedJobs(t, 120)
	ops := scriptFedOps(t, shards, jobs, false)
	plan := faultfs.Schedule{FailSyncAt: 12}

	type runOut struct {
		seq    []string
		frozen online.Status // victim's status the moment it latched
		latch  int           // op index that tripped the latch
		fp     string
		f      *Federation
	}
	run := func(workers int) runOut {
		cfg := durCfg(shards)
		cfg.Workers = workers
		dc := durDC(t.TempDir())
		dc.FS = func(shard int) durable.FS {
			if shard == victim {
				return faultfs.New(nil, plan)
			}
			return nil
		}
		f, err := Open(cfg, dc)
		if err != nil {
			t.Fatal(err)
		}
		out := runOut{latch: -1, f: f}
		for k := range ops {
			err := applyFedOp(f, &ops[k])
			out.seq = append(out.seq, errClass(err))
			var broken *ShardBrokenError
			if errors.As(err, &broken) {
				if out.latch >= 0 {
					t.Fatalf("latched twice: ops %d and %d", out.latch, k)
				}
				out.latch = k
				out.frozen = f.Status().PerShard[victim]
			}
		}
		out.fp = fedFingerprint(t, f, true)
		return out
	}
	a, b := run(1), run(8)
	if a.latch < 0 {
		t.Fatalf("fault schedule never fired; stream too short for FailSyncAt=%d", plan.FailSyncAt)
	}
	if !reflect.DeepEqual(a.seq, b.seq) {
		t.Fatalf("error sequences diverge across worker counts:\n 1: %v\n 8: %v", a.seq, b.seq)
	}
	if a.fp != b.fp {
		t.Fatalf("final state diverges across worker counts:\n 1: %s\n 8: %s", a.fp, b.fp)
	}

	h := a.f.Health()
	if !h[victim].Quarantined || h[victim].StoreErr == "" {
		t.Fatalf("victim not quarantined after its latch: %+v", h[victim])
	}
	for i, hh := range h {
		if i != victim && (hh.Quarantined || hh.StoreErr != "") {
			t.Fatalf("healthy shard %d caught the quarantine: %+v", i, hh)
		}
	}
	if got := a.f.Status().PerShard[victim]; !reflect.DeepEqual(got, a.frozen) {
		t.Fatalf("quarantined shard served mutations after its latch:\n at latch %+v\n at end   %+v", a.frozen, got)
	}
	for i, cls := range a.seq[a.latch+1:] {
		if strings.HasPrefix(cls, "broken:") {
			t.Fatalf("second fatal latch at op %d: %s", a.latch+1+i, cls)
		}
	}

	// Healthy-substream equivalence: quarantine the victim of a no-fault
	// federation at the same op index (dropping the latch-tripping
	// request, which only the victim saw) and replay; the healthy shards
	// must end bit-identical, status and snapshot bytes both.
	c, err := Open(durCfg(shards), durDC(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	for k := range ops {
		if k == a.latch {
			c.mu.Lock()
			c.router.Quarantine(victim)
			c.mu.Unlock()
			sh := c.shards[victim]
			sh.mu.Lock()
			sh.storeErr = errors.New("test: manual quarantine")
			sh.mu.Unlock()
			continue
		}
		_ = applyFedOp(c, &ops[k]) // victim-bound requests fail in both runs; ignore
	}
	for i := 0; i < shards; i++ {
		if i == victim {
			continue
		}
		if got, want := a.f.Status().PerShard[i], c.Status().PerShard[i]; !reflect.DeepEqual(got, want) {
			t.Fatalf("healthy shard %d diverges from the victimless federation:\n got %+v\nwant %+v", i, got, want)
		}
		gsnap, err := a.f.ShardSnapshot(i)
		if err != nil {
			t.Fatal(err)
		}
		wsnap, err := c.ShardSnapshot(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(durable.EncodeSnapshot(gsnap), durable.EncodeSnapshot(wsnap)) {
			t.Fatalf("healthy shard %d snapshot bytes diverge from the victimless federation", i)
		}
	}
}

// bootClass canonicalizes an Open failure: the injected fault if one is
// in the chain, otherwise just the fact of failure (real I/O error
// strings embed temp paths and cannot be compared across runs).
func bootClass(err error) string {
	var fault *faultfs.Fault
	if errors.As(err, &fault) {
		return fmt.Sprintf("open:fault:%s@%d", fault.Op, fault.N)
	}
	return "open:error"
}

// TestFedFaultPlanSweep is the chaos sweep: every shard draws a fault
// schedule from faultfs.Plan(seed, shard, span) — the same dist.Split
// stream discipline as the rest of the system — and the entire
// observable outcome (boot success or the exact injected boot fault,
// the per-op error-class sequence, the drain outcome, the final state)
// must be identical at 1 and 8 workers, for every seed. Faults may land
// anywhere: boot, append, sync, checkpoint rename, segment GC.
func TestFedFaultPlanSweep(t *testing.T) {
	const shards = 4
	jobs := fedJobs(t, 60)
	ops := scriptFedOps(t, shards, jobs, false)
	ckptEvery := opsSpan(ops) / 4
	for seed := uint64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			run := func(workers int) []string {
				cfg := durCfg(shards)
				cfg.Workers = workers
				dc := durDC(t.TempDir())
				dc.CkptEvery = ckptEvery
				dc.FS = func(shard int) durable.FS {
					return faultfs.New(nil, faultfs.Plan(seed, uint64(shard), 60))
				}
				f, err := Open(cfg, dc)
				if err != nil {
					return []string{bootClass(err)}
				}
				seq := make([]string, 0, len(ops)+2)
				for k := range ops {
					seq = append(seq, errClass(applyFedOp(f, &ops[k])))
				}
				seq = append(seq, "drain:"+errClass(f.Drain()))
				seq = append(seq, fedFingerprint(t, f, true))
				return seq
			}
			one, eight := run(1), run(8)
			if !reflect.DeepEqual(one, eight) {
				t.Fatalf("chaos outcome diverges across worker counts:\n 1 workers: %v\n 8 workers: %v", one, eight)
			}
		})
	}
}

// TestFedDrainRefusesMutations pins the drain contract: after Drain
// every mutation fails ErrDraining (retryable — the daemon is going
// down for a restart), Drain is idempotent and re-reports the first
// outcome, and the drained directory reopens cleanly.
func TestFedDrainRefusesMutations(t *testing.T) {
	jobs := fedJobs(t, 8)
	dir := t.TempDir()
	f, err := Open(durCfg(2), durDC(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if _, _, _, err := f.Submit(j.Submit, j, nil); err != nil {
			t.Fatal(err)
		}
	}
	want := fedFingerprint(t, f, false)
	if err := f.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := f.Submit(f.Clock()+1, workload.Job{ID: 9999, Runtime: 5, Estimate: 5, Cores: 1}, nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: %v", err)
	}
	if _, _, err := f.Complete(f.Clock()+1, jobs[0].ID, nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("complete after drain: %v", err)
	}
	if _, _, err := f.AdvanceTo(f.Clock()+1, nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("advance after drain: %v", err)
	}
	if err := f.SetPolicyNamed(sched.FCFS(), "FCFS", ""); !errors.Is(err, ErrDraining) {
		t.Fatalf("policy after drain: %v", err)
	}
	if !Retryable(ErrDraining) {
		t.Fatal("ErrDraining must be retryable")
	}
	if err := f.Drain(); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	g, err := Open(durCfg(2), durDC(dir))
	if err != nil {
		t.Fatal(err)
	}
	if got := fedFingerprint(t, g, false); got != want {
		t.Fatalf("reopen after drain diverges:\n got %s\nwant %s", got, want)
	}
	if err := g.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestRetryableAndBackoff pins the client-side retry surface: which
// errors are worth resending, and that the jittered exponential backoff
// is deterministic per (seed, stream), capped, and bounded in attempts.
func TestRetryableAndBackoff(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&ShardDownError{Shard: 1}, true},
		{ErrDraining, true},
		{fmt.Errorf("wrapped: %w", &ShardDownError{Shard: 3}), true},
		{&WireError{Code: 503, Retryable: true, Msg: "quarantined"}, true},
		{&WireError{Code: 400, Msg: "bad"}, false},
		{&ShardBrokenError{Shard: 0, Err: errors.New("disk")}, false},
		{errors.New("arbitrary"), false},
		{nil, false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	b1 := NewBackoff(0.5, 10, 8, 7, 3)
	b2 := NewBackoff(0.5, 10, 8, 7, 3)
	for k := 0; k < 8; k++ {
		d1, ok1 := b1.Delay(k)
		d2, ok2 := b2.Delay(k)
		if !ok1 || !ok2 {
			t.Fatalf("attempt %d refused before Attempts exhausted", k)
		}
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed/stream, different delays %g vs %g", k, d1, d2)
		}
		nominal := 0.5 * float64(int(1)<<uint(k))
		if nominal > 10 {
			nominal = 10
		}
		if d1 < nominal/2 || d1 >= nominal {
			t.Fatalf("attempt %d: delay %g outside jitter window [%g, %g)", k, d1, nominal/2, nominal)
		}
	}
	if _, ok := b1.Delay(8); ok {
		t.Fatal("backoff did not give up after Attempts")
	}
	// Distinct streams de-synchronize the fleet.
	x, _ := NewBackoff(0.5, 10, 8, 7, 1).Delay(0)
	y, _ := NewBackoff(0.5, 10, 8, 7, 2).Delay(0)
	if x == y {
		t.Fatal("distinct streams produced identical jitter (suspicious)")
	}
}
