// The federation wire protocol: length-prefixed binary frames carrying
// the SAME fixed-width little-endian record payloads the durable journal
// writes (durable.AppendRecord / durable.DecodeRecord), so the hot
// submit/complete path shares one codec and one set of golden vectors
// with the on-disk format. A frame is
//
//	[len u32le][kind u8][body...]
//
// where len counts the kind byte plus body. Requests are single records
// (MsgRecord) or batches (MsgBatch) amortizing one syscall over many
// submits; responses carry the scheduling outcome (RespOK: clock, then
// the started jobs) or an error (RespErr: HTTP-ish status code and
// message). The codec is allocation-light by construction: every
// encoder appends to a caller-owned buffer, and the frame reader reuses
// the caller's scratch.

package fed

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/hpcsched/gensched/internal/durable"
	"github.com/hpcsched/gensched/internal/online"
)

// Message kinds (first payload byte of a request frame).
const (
	// MsgRecord carries one durable record payload.
	MsgRecord byte = 0x01
	// MsgBatch carries u32 count, then count × (u32 len + record payload).
	MsgBatch byte = 0x02
)

// Response kinds (first payload byte of a response frame).
const (
	// RespOK carries f64 now, u32 n, then n starts
	// (i64 id, f64 time, f64 wait, u8 backfilled).
	RespOK byte = 0x00
	// RespErr carries u32 status code, u8 flags, u32 len, message bytes.
	// Flag bit 0 marks the error retryable: the request was refused
	// without being applied (drain in progress, shard quarantined) and
	// the same request may succeed after a backoff — the wire analogue of
	// HTTP 503 + Retry-After. Errors with the bit clear are fatal: the
	// request is malformed, or it was applied but could not be journaled,
	// and resending it would double-apply.
	RespErr byte = 0x01
)

// RespErr flag bits.
const (
	// ErrFlagRetryable marks a refused-before-apply error safe to resend.
	ErrFlagRetryable byte = 1 << 0
)

// MaxWireFrame bounds one frame's payload, mirroring the journal's
// frame cap: large enough for a many-thousand-job batch, small enough
// that a corrupt length prefix cannot demand an absurd allocation.
const MaxWireFrame = 1 << 26

// wireHeader is the length prefix size.
const wireHeader = 4

// AppendFrame frames a payload onto dst: u32le length, then the bytes.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// ReadFrame reads one length-prefixed frame from r into buf (grown as
// needed) and returns the payload. io.EOF cleanly between frames means
// the peer is done; a short read mid-frame is an error.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [wireHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("fed: truncated frame header")
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("fed: empty frame")
	}
	if n > MaxWireFrame {
		return nil, fmt.Errorf("fed: frame length %d exceeds cap %d", n, MaxWireFrame)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("fed: truncated frame body: %w", err)
	}
	return buf, nil
}

// AppendRecordMsg encodes a single-record request payload onto dst.
func AppendRecordMsg(dst []byte, rec *durable.Record) ([]byte, error) {
	return durable.AppendRecord(append(dst, MsgRecord), rec)
}

// AppendBatchMsg encodes a batch request payload onto dst. Records are
// applied by the receiver in order, so a batch behaves exactly like its
// records sent back to back — minus the per-record syscalls.
func AppendBatchMsg(dst []byte, recs []durable.Record) ([]byte, error) {
	dst = append(dst, MsgBatch)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(recs)))
	for i := range recs {
		// Length-prefix each record: record payloads are not
		// self-delimiting.
		lenAt := len(dst)
		dst = append(dst, 0, 0, 0, 0)
		var err error
		dst, err = durable.AppendRecord(dst, &recs[i])
		if err != nil {
			return nil, err
		}
		binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	}
	return dst, nil
}

// DecodeMsg parses a request payload into its records. A MsgRecord
// yields one record; a MsgBatch yields its records in order. scratch is
// appended to and returned to amortize allocation across frames.
func DecodeMsg(payload []byte, scratch []durable.Record) ([]durable.Record, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("fed: empty message")
	}
	kind, body := payload[0], payload[1:]
	switch kind {
	case MsgRecord:
		rec, err := durable.DecodeRecord(body)
		if err != nil {
			return nil, err
		}
		return append(scratch, rec), nil
	case MsgBatch:
		if len(body) < 4 {
			return nil, fmt.Errorf("fed: truncated batch count")
		}
		n := binary.LittleEndian.Uint32(body)
		body = body[4:]
		// Each record costs at least its length prefix plus an op byte.
		if uint64(n)*5 > uint64(len(body)) {
			return nil, fmt.Errorf("fed: batch count %d exceeds remaining payload", n)
		}
		for i := uint32(0); i < n; i++ {
			if len(body) < 4 {
				return nil, fmt.Errorf("fed: truncated batch record %d length", i)
			}
			rl := binary.LittleEndian.Uint32(body)
			body = body[4:]
			if uint64(rl) > uint64(len(body)) {
				return nil, fmt.Errorf("fed: batch record %d length %d exceeds remaining payload", i, rl)
			}
			rec, err := durable.DecodeRecord(body[:rl])
			if err != nil {
				return nil, fmt.Errorf("fed: batch record %d: %w", i, err)
			}
			scratch = append(scratch, rec)
			body = body[rl:]
		}
		if len(body) != 0 {
			return nil, fmt.Errorf("fed: batch has %d trailing bytes", len(body))
		}
		return scratch, nil
	}
	return nil, fmt.Errorf("fed: unknown message kind 0x%02x", kind)
}

// AppendOKResp encodes a success response payload onto dst.
func AppendOKResp(dst []byte, now float64, starts []online.Start) []byte {
	dst = append(dst, RespOK)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(now))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(starts)))
	for _, st := range starts {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(st.ID)))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(st.Time))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(st.Wait))
		if st.Backfilled {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// AppendErrResp encodes an error response payload onto dst. retryable
// sets the flag bit telling the client the request was refused before
// being applied and may be resent after a backoff.
func AppendErrResp(dst []byte, code int, retryable bool, msg string) []byte {
	dst = append(dst, RespErr)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(code))
	var flags byte
	if retryable {
		flags |= ErrFlagRetryable
	}
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(msg)))
	return append(dst, msg...)
}

// WireError is a decoded RespErr: the federation daemon's HTTP-ish
// status code and message, surfaced to binary clients as an error value.
// Retryable mirrors the frame's flag bit — see RespErr for the
// retryable-vs-fatal split.
type WireError struct {
	Code      int
	Retryable bool
	Msg       string
}

func (e *WireError) Error() string {
	return fmt.Sprintf("fed: remote error %d: %s", e.Code, e.Msg)
}

// DecodeResp parses a response payload. On RespOK it returns the clock
// and the started jobs (appended to scratch); on RespErr it returns a
// *WireError.
func DecodeResp(payload []byte, scratch []online.Start) (now float64, starts []online.Start, err error) {
	if len(payload) == 0 {
		return 0, nil, fmt.Errorf("fed: empty response")
	}
	kind, body := payload[0], payload[1:]
	switch kind {
	case RespOK:
		if len(body) < 12 {
			return 0, nil, fmt.Errorf("fed: truncated ok response")
		}
		now = math.Float64frombits(binary.LittleEndian.Uint64(body))
		n := binary.LittleEndian.Uint32(body[8:])
		body = body[12:]
		const startSize = 25 // 3×u64 + bool
		if uint64(n)*startSize != uint64(len(body)) {
			return 0, nil, fmt.Errorf("fed: ok response carries %d bytes for %d starts", len(body), n)
		}
		for i := uint32(0); i < n; i++ {
			st := online.Start{
				ID:         int(int64(binary.LittleEndian.Uint64(body))),
				Time:       math.Float64frombits(binary.LittleEndian.Uint64(body[8:])),
				Wait:       math.Float64frombits(binary.LittleEndian.Uint64(body[16:])),
				Backfilled: body[24] != 0,
			}
			scratch = append(scratch, st)
			body = body[startSize:]
		}
		return now, scratch, nil
	case RespErr:
		if len(body) < 9 {
			return 0, nil, fmt.Errorf("fed: truncated error response")
		}
		code := int(binary.LittleEndian.Uint32(body))
		flags := body[4]
		ml := binary.LittleEndian.Uint32(body[5:])
		body = body[9:]
		if uint64(ml) != uint64(len(body)) {
			return 0, nil, fmt.Errorf("fed: error response carries %d bytes for %d-byte message", len(body), ml)
		}
		return 0, nil, &WireError{Code: code, Retryable: flags&ErrFlagRetryable != 0, Msg: string(body)}
	}
	return 0, nil, fmt.Errorf("fed: unknown response kind 0x%02x", kind)
}
