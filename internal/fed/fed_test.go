package fed

import (
	"reflect"
	"sort"
	"testing"

	"github.com/hpcsched/gensched/internal/lublin"
	"github.com/hpcsched/gensched/internal/online"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/telemetry"
	"github.com/hpcsched/gensched/internal/workload"
)

const testCores = 256

func fedJobs(t testing.TB, n int) []workload.Job {
	t.Helper()
	gen, err := lublin.NewGenerator(lublin.DefaultParams(testCores), testCores, 4242)
	if err != nil {
		t.Fatal(err)
	}
	return gen.Jobs(n)
}

func replayOpts() online.ReplayOptions {
	return online.ReplayOptions{
		Policy: sched.F1(), Backfill: sim.BackfillEASY, UseEstimates: true,
	}
}

// oracleReplay is the sequential single-engine oracle: route the stream
// with the exact router the federation uses, replay each substream on
// one engine in shard order with no concurrency, and merge with the
// same deterministic rules. fed.Replay must match it bit for bit.
func oracleReplay(t *testing.T, jobs []workload.Job, shards int, traceBuf int) *Result {
	t.Helper()
	placements, subs, stolen, err := RouteJobs(jobs, shards, testCores, 1, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{Shards: shards, Placements: placements, Stolen: stolen, PerShard: make([]*sim.Result, shards)}
	sinks := make([]*telemetry.Sink, shards)
	per := make([]online.Metrics, shards)
	for s := 0; s < shards; s++ {
		opt := replayOpts()
		if traceBuf > 0 {
			sinks[s] = telemetry.NewSink(traceBuf)
			opt.Telemetry = sinks[s]
		}
		r, err := online.Replay(testCores, subs[s], opt)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		res.PerShard[s] = r
		per[s] = online.Metrics{
			Submitted: len(r.Stats), Completed: len(r.Stats), Backfilled: r.Backfilled,
			MaxQueueLen: r.MaxQueueLen, AveBsld: r.AVEbsld, MeanWait: r.MeanWait,
			MaxBSLD: r.MaxBSLD, MaxWait: r.MaxWait, Utilization: r.Utilization,
		}
		for _, st := range r.Stats {
			res.Starts = append(res.Starts, ShardStart{Shard: s, Start: online.Start{
				ID: st.Job.ID, Time: st.Start, Wait: st.Wait, Backfilled: st.Backfilled,
			}})
		}
	}
	res.Merged = MergeMetrics(per)
	sort.SliceStable(res.Starts, func(i, j int) bool { return res.Starts[i].Time < res.Starts[j].Time })
	if traceBuf > 0 {
		res.Trace = MergeTraces(sinks)
	}
	return res
}

// TestReplayDifferential pins the federation's determinism contract: for
// every shard count, the concurrent federated replay is bit-identical —
// placements, per-shard stats, merged metrics, merged starts, merged
// trace — to a sequential single-engine replay of the same substreams.
// Concurrency changes no output bit.
func TestReplayDifferential(t *testing.T) {
	jobs := fedJobs(t, 2000)
	for _, shards := range []int{1, 4, 8} {
		for _, workers := range []int{1, 2, 0} { // 0 = one goroutine per shard
			got, err := Replay(jobs, ReplayConfig{
				Shards: shards, ShardCores: testCores, Seed: 1,
				Workers: workers, TraceBuf: 4096, Opt: replayOpts(),
			})
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			want := oracleReplay(t, jobs, shards, 4096)
			if !reflect.DeepEqual(got.Placements, want.Placements) {
				t.Fatalf("shards=%d workers=%d: placements diverge", shards, workers)
			}
			if got.Stolen != want.Stolen {
				t.Fatalf("shards=%d workers=%d: stolen %d != %d", shards, workers, got.Stolen, want.Stolen)
			}
			for s := range want.PerShard {
				if !reflect.DeepEqual(got.PerShard[s].Stats, want.PerShard[s].Stats) {
					t.Fatalf("shards=%d workers=%d: shard %d stats diverge", shards, workers, s)
				}
			}
			if got.Merged != want.Merged {
				t.Fatalf("shards=%d workers=%d: merged metrics\n got %+v\nwant %+v", shards, workers, got.Merged, want.Merged)
			}
			if !reflect.DeepEqual(got.Starts, want.Starts) {
				t.Fatalf("shards=%d workers=%d: merged starts diverge", shards, workers)
			}
			if !reflect.DeepEqual(got.Trace, want.Trace) {
				t.Fatalf("shards=%d workers=%d: merged trace diverges", shards, workers)
			}
		}
	}
}

// TestReplaySingleShardMatchesPlainReplay pins the degenerate case: one
// shard IS the single engine, so a 1-shard federated replay must equal a
// plain online.Replay of the whole stream (in submit order) exactly.
func TestReplaySingleShardMatchesPlainReplay(t *testing.T) {
	jobs := fedJobs(t, 1500)
	fedRes, err := Replay(jobs, ReplayConfig{
		Shards: 1, ShardCores: testCores, Seed: 1, Opt: replayOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ordered := append([]workload.Job(nil), jobs...)
	sort.SliceStable(ordered, func(a, b int) bool { return ordered[a].Submit < ordered[b].Submit })
	plain, err := online.Replay(testCores, ordered, replayOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fedRes.PerShard[0].Stats, plain.Stats) {
		t.Fatal("1-shard federated stats diverge from the plain single-engine replay")
	}
	if fedRes.PerShard[0].AVEbsld != plain.AVEbsld || fedRes.PerShard[0].Utilization != plain.Utilization {
		t.Fatalf("1-shard summary metrics diverge: %+v vs %+v", fedRes.PerShard[0], plain)
	}
}

// TestRouterPlacementsDeterministic is the router property test: the
// same job stream yields the same placement sequence on every run, for
// any shard count, and placements are always in range.
func TestRouterPlacementsDeterministic(t *testing.T) {
	jobs := fedJobs(t, 3000)
	for _, shards := range []int{1, 2, 4, 8, 13} {
		var first []int
		for run := 0; run < 3; run++ {
			placements, _, _, err := RouteJobs(jobs, shards, testCores, 7, true, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range placements {
				if p < 0 || p >= shards {
					t.Fatalf("shards=%d: job %d placed on %d", shards, i, p)
				}
			}
			if run == 0 {
				first = placements
				continue
			}
			if !reflect.DeepEqual(placements, first) {
				t.Fatalf("shards=%d: run %d placements diverge", shards, run)
			}
		}
	}
}

// TestRouterSpreadsAndSteals checks the two routing mechanisms do real
// work on a realistic stream: every shard receives jobs (the hash ring
// spreads), and with stealing enabled a loaded primary diverts work
// (stolen > 0) while stealFactor = +Inf-like huge values pin jobs home.
func TestRouterSpreadsAndSteals(t *testing.T) {
	jobs := fedJobs(t, 3000)
	_, subs, stolen, err := RouteJobs(jobs, 8, testCores, 1, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	for s, sub := range subs {
		if len(sub) == 0 {
			t.Errorf("shard %d received no jobs", s)
		}
	}
	if stolen == 0 {
		t.Error("no placements stolen on a contended stream; the load fallback never fired")
	}
	// A huge steal threshold disables the fallback: every job lands on
	// its hash primary.
	_, _, pinned, err := RouteJobs(jobs, 8, testCores, 1, true, 1e18)
	if err != nil {
		t.Fatal(err)
	}
	if pinned != 0 {
		t.Errorf("stealFactor=1e18 still stole %d placements", pinned)
	}
}

func TestRouterRejectsDuplicateAndReleases(t *testing.T) {
	r, err := NewRouter(4, testCores, 1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	j := workload.Job{ID: 1, Runtime: 100, Estimate: 100, Cores: 8}
	s, err := r.Place(0, j)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := r.Locate(1); !ok || got != s {
		t.Fatalf("Locate(1) = %d,%v want %d,true", got, ok, s)
	}
	if _, err := r.Place(0, j); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	r.Release(1)
	if _, ok := r.Locate(1); ok {
		t.Fatal("Locate finds a released job")
	}
}

// TestFederationLiveDeterministic drives two identical live federations
// through the same request stream (submits, completions, advances) and
// requires bit-identical observable state: status, merged metrics,
// merged trace. The live path shares the router and merge rules with
// the replay path, so this pins the daemon-facing surface.
func TestFederationLiveDeterministic(t *testing.T) {
	jobs := fedJobs(t, 400)
	run := func() (Status, online.Metrics, []ShardEvent) {
		f, err := New(Config{
			Shards: 4, ShardCores: testCores, Seed: 1, TraceBuf: 4096,
			Opt: online.Options{Policy: sched.F1(), Backfill: sim.BackfillEASY, UseEstimates: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Track running jobs through the start notifications every
		// mutation returns, then complete them in ID order until the
		// federation drains.
		running := make(map[int]bool)
		addStarts := func(sts []online.Start) {
			for _, st := range sts {
				running[st.ID] = true
			}
		}
		for _, j := range jobs {
			_, sts, _, err := f.Submit(j.Submit, j, nil)
			if err != nil {
				t.Fatalf("submit %d: %v", j.ID, err)
			}
			addStarts(sts)
		}
		for len(running) > 0 {
			ids := make([]int, 0, len(running))
			for id := range running {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			for _, id := range ids {
				delete(running, id)
				sts, _, err := f.Complete(f.Clock()+1, id, nil)
				if err != nil {
					t.Fatalf("complete %d: %v", id, err)
				}
				addStarts(sts)
			}
		}
		m, _ := f.Metrics()
		return f.Status(), m, f.MergedTrace(1, 0)
	}
	st1, m1, tr1 := run()
	st2, m2, tr2 := run()
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("status diverges:\n%+v\n%+v", st1, st2)
	}
	if m1 != m2 {
		t.Fatalf("metrics diverge:\n%+v\n%+v", m1, m2)
	}
	if !reflect.DeepEqual(tr1, tr2) {
		t.Fatal("merged traces diverge")
	}
	if st1.Completed != len(jobs) {
		t.Fatalf("completed %d of %d jobs", st1.Completed, len(jobs))
	}
}

// TestMergedTraceSampleThenLimit pins the federated /v1/trace semantics:
// sampling thins each shard's stream by sequence FIRST, then the limit
// caps the most recent events of the merged (clock, shard, seq) stream.
func TestMergedTraceSampleThenLimit(t *testing.T) {
	jobs := fedJobs(t, 300)
	f, err := New(Config{
		Shards: 4, ShardCores: testCores, Seed: 1, TraceBuf: 8192,
		Opt: online.Options{Policy: sched.FCFS(), Backfill: sim.BackfillEASY, UseEstimates: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if _, _, _, err := f.Submit(j.Submit, j, nil); err != nil {
			t.Fatal(err)
		}
	}
	const sample, limit = 3, 25
	full := f.MergedTrace(sample, 0)
	if len(full) <= limit {
		t.Fatalf("need more than %d sampled events to test the cap, got %d", limit, len(full))
	}
	for _, e := range full {
		if e.Event.Seq%sample != 0 {
			t.Fatalf("sampled stream contains seq %d (sample %d)", e.Event.Seq, sample)
		}
	}
	got := f.MergedTrace(sample, limit)
	want := full[len(full)-limit:]
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("limit must cap the most recent events AFTER sampling: got %d events, want the last %d of the sampled stream", len(got), limit)
	}
	// Merge order is nondecreasing in time, shard-ascending within ties.
	for i := 1; i < len(full); i++ {
		a, b := full[i-1], full[i]
		if b.Event.Time < a.Event.Time {
			t.Fatalf("merged trace goes back in time at %d", i)
		}
		if b.Event.Time == a.Event.Time && b.Shard < a.Shard {
			t.Fatalf("merged trace breaks shard order within instant at %d", i)
		}
	}
}

// TestFederationRejectsOversizedJob pins the capacity contract: one job
// must fit on one shard, so a job wider than ShardCores is refused even
// though the federation's total capacity could hold it.
func TestFederationRejectsOversizedJob(t *testing.T) {
	f, err := New(Config{
		Shards: 4, ShardCores: 64,
		Opt: online.Options{Policy: sched.FCFS()},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = f.Submit(0, workload.Job{ID: 1, Runtime: 10, Estimate: 10, Cores: 65}, nil)
	if err == nil {
		t.Fatal("a job wider than one shard was accepted")
	}
	if _, ok := f.router.Locate(1); ok {
		t.Fatal("rejected job left a placement behind")
	}
}
