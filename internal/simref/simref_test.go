package simref

import (
	"testing"

	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/workload"
)

func job(id int, submit, runtime float64, cores int) workload.Job {
	return workload.Job{ID: id, Submit: submit, Runtime: runtime, Estimate: runtime, Cores: cores}
}

func mustRun(t *testing.T, cores int, jobs []workload.Job, opt Options) []Placement {
	t.Helper()
	pls, err := Run(cores, jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	return pls
}

func TestRefValidation(t *testing.T) {
	if _, err := Run(4, nil, Options{}); err != ErrNoPolicy {
		t.Errorf("missing policy: err = %v", err)
	}
	if _, err := Run(0, nil, Options{Policy: sched.FCFS()}); err != ErrNoCores {
		t.Errorf("no cores: err = %v", err)
	}
	if _, err := Run(4, []workload.Job{job(1, 0, 10, 8)}, Options{Policy: sched.FCFS()}); err == nil {
		t.Error("oversized job accepted")
	}
}

// TestRefEASYTextbook replays the sim package's canonical EASY case: the
// oracle must backfill the safe candidate and never delay the head.
func TestRefEASYTextbook(t *testing.T) {
	jobs := []workload.Job{
		job(1, 0, 100, 2),  // A
		job(2, 10, 50, 4),  // B: blocked head, shadow = 100
		job(3, 20, 80, 2),  // C: finishes by the shadow, backfills
		job(4, 25, 200, 2), // D: unsafe
	}
	pls := mustRun(t, 4, jobs, Options{Policy: sched.FCFS(), Mode: ModeEASY})
	if pls[2].Start != 20 || !pls[2].Backfilled {
		t.Errorf("C = %+v, want backfilled at 20", pls[2])
	}
	if pls[1].Start != 100 {
		t.Errorf("B start = %v, want 100 (head not delayed)", pls[1].Start)
	}
	if pls[3].Start != 150 {
		t.Errorf("D start = %v, want 150", pls[3].Start)
	}
	if err := CheckSchedule(4, pls); err != nil {
		t.Errorf("CheckSchedule: %v", err)
	}
}

func TestRefConservativeTextbook(t *testing.T) {
	jobs := []workload.Job{
		job(1, 0, 100, 2),
		job(2, 10, 50, 4),
		job(3, 20, 80, 2),
		job(4, 25, 200, 2), // would delay B's reservation
	}
	pls := mustRun(t, 4, jobs, Options{Policy: sched.FCFS(), Mode: ModeConservative})
	want := []float64{0, 100, 20, 150}
	for i, w := range want {
		if pls[i].Start != w {
			t.Errorf("job %d start = %v, want %v", i+1, pls[i].Start, w)
		}
	}
}

func TestRefCompare(t *testing.T) {
	jobs := []workload.Job{job(1, 0, 10, 1), job(2, 0, 20, 1)}
	a := mustRun(t, 2, jobs, Options{Policy: sched.FCFS()})
	b := mustRun(t, 2, jobs, Options{Policy: sched.FCFS()})
	if err := Compare(a, b); err != nil {
		t.Errorf("identical runs differ: %v", err)
	}
	b[1].Start += 1
	b[1].Finish += 1
	if err := Compare(a, b); err == nil {
		t.Error("perturbed schedule not flagged")
	}
	if err := Compare(a, a[:1]); err == nil {
		t.Error("length mismatch not flagged")
	}
}

func TestRefCheckScheduleRejectsImpossible(t *testing.T) {
	pls := []Placement{
		{Job: job(1, 0, 10, 3), Start: 0, Finish: 10},
		{Job: job(2, 0, 10, 3), Start: 5, Finish: 15}, // overlaps on a 4-core machine
	}
	if err := CheckSchedule(4, pls); err == nil {
		t.Error("oversubscription not caught")
	}
	if err := CheckSchedule(8, pls); err != nil {
		t.Errorf("feasible schedule rejected: %v", err)
	}
	early := []Placement{{Job: job(1, 50, 10, 1), Start: 0, Finish: 10}}
	if err := CheckSchedule(4, early); err == nil {
		t.Error("start before submit not caught")
	}
	zero := []Placement{{Job: job(1, 0, 10, 1), Start: 0, Finish: 0}}
	if err := CheckSchedule(4, zero); err == nil {
		t.Error("unstarted job not caught")
	}
}
