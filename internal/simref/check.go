package simref

import (
	"fmt"
	"sort"
)

// CheckSchedule audits a complete schedule against the machine-level
// invariants every valid run must satisfy, independent of policy or
// backfill mode:
//
//   - every job started (placements are complete), at or after its
//     submission time;
//   - every job ran for a positive duration (finish > start);
//   - the start/finish envelope never uses more than cores cores at any
//     instant, counting releases before acquisitions at equal times the
//     way the engine applies completions before arrivals.
//
// It is the post-run half of sim.Options.Check and the backbone of the
// fuzz harness: any engine bug that manifests as an impossible schedule
// is caught here even when the differential oracle is not consulted.
func CheckSchedule(cores int, pls []Placement) error {
	if cores <= 0 {
		return ErrNoCores
	}
	type ev struct {
		at    float64
		delta int
		id    int
	}
	evs := make([]ev, 0, 2*len(pls))
	for i := range pls {
		p := &pls[i]
		if p.Start < p.Job.Submit-timeEps {
			return fmt.Errorf("simref: job %d started at %g before its submission at %g",
				p.Job.ID, p.Start, p.Job.Submit)
		}
		if p.Finish <= p.Start {
			return fmt.Errorf("simref: job %d has non-positive execution [%g, %g]",
				p.Job.ID, p.Start, p.Finish)
		}
		evs = append(evs,
			ev{at: p.Start, delta: p.Job.Cores, id: p.Job.ID},
			ev{at: p.Finish, delta: -p.Job.Cores, id: p.Job.ID})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].delta < evs[j].delta // releases before acquisitions
	})
	used := 0
	for _, e := range evs {
		used += e.delta
		if used > cores {
			return fmt.Errorf("simref: %d cores in use at t=%g around job %d (platform has %d)",
				used, e.at, e.id, cores)
		}
	}
	if used != 0 {
		return fmt.Errorf("simref: unbalanced schedule: %d cores never released", used)
	}
	return nil
}

// Compare reports the first divergence between two schedules of the same
// job list (typically the optimized engine versus this oracle). Start and
// finish times must match bit-for-bit — both implementations compute them
// with identical floating-point expressions — and backfill attribution
// must agree.
func Compare(got, want []Placement) error {
	if len(got) != len(want) {
		return fmt.Errorf("simref: schedule length %d != oracle %d", len(got), len(want))
	}
	for i := range got {
		g, w := &got[i], &want[i]
		if g.Job.ID != w.Job.ID {
			return fmt.Errorf("simref: placement %d is job %d, oracle has job %d", i, g.Job.ID, w.Job.ID)
		}
		if g.Start != w.Start {
			return fmt.Errorf("simref: job %d start %g != oracle %g", g.Job.ID, g.Start, w.Start)
		}
		if g.Finish != w.Finish {
			return fmt.Errorf("simref: job %d finish %g != oracle %g", g.Job.ID, g.Finish, w.Finish)
		}
		if g.Backfilled != w.Backfilled {
			return fmt.Errorf("simref: job %d backfilled=%v, oracle says %v", g.Job.ID, g.Backfilled, w.Backfilled)
		}
	}
	return nil
}
