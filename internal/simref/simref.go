// Package simref is a small, slow, obviously-correct reference
// implementation of the sim engine's scheduling semantics, plus a
// schedule auditor (CheckSchedule). It exists so the optimized engine in
// internal/sim can be differentially tested: for any workload and any
// option combination, simref.Run must produce bit-identical placements.
//
// The implementation deliberately keeps no incremental state: every
// scheduling pass recomputes scores, re-sorts the waiting queue, rescans
// the running set and rebuilds the availability profile from scratch,
// using nothing but plain slices and linear scans. That makes it O(n²)
// and easy to audit line by line — the properties the optimized engine
// trades away.
//
// The scheduling *semantics* are a shared contract with internal/sim and
// are spelled out here so both sides implement the same spec:
//
//   - Time advances to the next submission or completion instant; all
//     events at exactly that timestamp are applied together, completions
//     before arrivals, followed by one scheduling pass.
//   - The waiting queue is ordered by ascending (score, submit, id).
//     Static policies are scored with Wait = 0; time-varying policies are
//     rescored at every pass.
//   - The queue head starts while it fits; EASY and conservative
//     backfilling follow Mu'alem & Feitelson with decisions made on
//     perceived runtimes (the estimate when UseEstimates is set).
//   - A running task's perceived finish is start + perceived, clamped to
//     the current time; release scans visit running tasks in ascending
//     (start + perceived, job id) order.
//   - Schedule-time comparisons use the shared epsilon (1e-9); the
//     conservative profile coalesces releases within the epsilon. These
//     constants and expressions are intentionally identical to the
//     engine's so the two produce the same floating-point results.
//
// simref must not import internal/sim (sim imports simref for its
// Options.Check audit), so the option surface is mirrored here.
package simref

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/workload"
)

// timeEps is the shared schedule-time comparison epsilon (= sim's).
const timeEps = 1e-9

// Mode mirrors sim.BackfillMode without importing it.
type Mode int

const (
	ModeNone Mode = iota
	ModeEASY
	ModeConservative
)

// Options mirrors the scheduling-relevant fields of sim.Options.
type Options struct {
	Policy         sched.Policy
	BackfillOrder  sched.Policy // EASY candidate order (SJBF-style); nil = queue order
	Mode           Mode
	UseEstimates   bool
	KillAtEstimate bool
}

// Placement is the oracle's verdict for one job, in input order.
type Placement struct {
	Job        workload.Job
	Start      float64
	Finish     float64
	Backfilled bool
}

// Errors mirroring sim.Run's validation.
var (
	ErrNoPolicy = errors.New("simref: options require a policy")
	ErrNoCores  = errors.New("simref: platform needs at least one core")
)

type refTask struct {
	job        workload.Job
	perceived  float64
	execution  float64
	arrived    bool
	started    bool
	done       bool
	backfilled bool
	start      float64
	finish     float64
}

type refSim struct {
	cores int
	free  int
	opt   Options
	ts    []refTask
	now   float64
}

// Run schedules jobs on a cores-wide machine and returns one Placement
// per input job, in input order.
func Run(cores int, jobs []workload.Job, opt Options) ([]Placement, error) {
	if opt.Policy == nil {
		return nil, ErrNoPolicy
	}
	if cores <= 0 {
		return nil, ErrNoCores
	}
	for i := range jobs {
		if err := jobs[i].Validate(cores); err != nil {
			return nil, fmt.Errorf("simref: %w", err)
		}
	}
	s := &refSim{cores: cores, free: cores, opt: opt, ts: make([]refTask, len(jobs))}
	for i, j := range jobs {
		perceived := j.Runtime
		if opt.UseEstimates && j.Estimate > 0 {
			perceived = j.Estimate
		}
		execution := j.Runtime
		if opt.KillAtEstimate && j.Estimate > 0 && j.Estimate < execution {
			execution = j.Estimate
		}
		s.ts[i] = refTask{job: j, perceived: perceived, execution: execution}
	}
	s.loop()
	out := make([]Placement, len(jobs))
	for i := range s.ts {
		t := &s.ts[i]
		out[i] = Placement{Job: t.job, Start: t.start, Finish: t.finish, Backfilled: t.backfilled}
	}
	return out, nil
}

// loop is the event loop: find the next instant anything happens, apply
// every completion and arrival at exactly that instant (completions
// first), then hold one scheduling pass.
func (s *refSim) loop() {
	for {
		now := math.Inf(1)
		for i := range s.ts {
			t := &s.ts[i]
			if !t.arrived {
				if t.job.Submit < now {
					now = t.job.Submit
				}
			} else if t.started && !t.done {
				if t.finish < now {
					now = t.finish
				}
			}
		}
		if math.IsInf(now, 1) {
			return
		}
		s.now = now
		for i := range s.ts { // completions before arrivals
			t := &s.ts[i]
			if t.started && !t.done && t.finish == now {
				t.done = true
				s.free += t.job.Cores
			}
		}
		for i := range s.ts {
			t := &s.ts[i]
			if !t.arrived && t.job.Submit == now {
				t.arrived = true
			}
		}
		s.schedulePass()
	}
}

// score evaluates the policy for task i at the current time. Static
// policies see Wait = 0 (their score cannot depend on it); time-varying
// policies see the true wait.
func (s *refSim) score(i int) float64 {
	t := &s.ts[i]
	wait := 0.0
	if s.opt.Policy.TimeVarying() {
		wait = s.now - t.job.Submit
		if wait < 0 {
			wait = 0
		}
	}
	v := sched.JobView{
		Runtime: t.perceived,
		Cores:   float64(t.job.Cores),
		Submit:  t.job.Submit,
		Wait:    wait,
	}
	if w, ok := s.opt.Policy.(sched.PolicyWithID); ok {
		return w.ScoreID(t.job.ID, v)
	}
	return s.opt.Policy.Score(v)
}

// waitingQueue rebuilds the waiting queue from scratch: every arrived,
// unstarted task, sorted by (score, submit, id).
func (s *refSim) waitingQueue() []int {
	var q []int
	for i := range s.ts {
		if s.ts[i].arrived && !s.ts[i].started {
			q = append(q, i)
		}
	}
	scores := make(map[int]float64, len(q))
	for _, i := range q {
		scores[i] = s.score(i)
	}
	sort.SliceStable(q, func(a, b int) bool {
		ta, tb := &s.ts[q[a]], &s.ts[q[b]]
		if scores[q[a]] != scores[q[b]] {
			return scores[q[a]] < scores[q[b]]
		}
		if ta.job.Submit != tb.job.Submit {
			return ta.job.Submit < tb.job.Submit
		}
		return ta.job.ID < tb.job.ID
	})
	return q
}

func (s *refSim) start(i int, backfill bool) {
	t := &s.ts[i]
	t.started = true
	t.backfilled = backfill
	t.start = s.now
	t.finish = s.now + t.execution
	s.free -= t.job.Cores
}

func (s *refSim) schedulePass() {
	q := s.waitingQueue()
	if len(q) == 0 || s.free == 0 {
		return
	}
	for len(q) > 0 && s.ts[q[0]].job.Cores <= s.free {
		s.start(q[0], false)
		q = q[1:]
	}
	if len(q) == 0 || s.free == 0 {
		return
	}
	switch s.opt.Mode {
	case ModeEASY:
		s.easy(q)
	case ModeConservative:
		s.conservative(q)
	}
}

// runningByFinish lists running tasks in ascending (start + perceived,
// job id) order — the release order every reservation scan uses.
func (s *refSim) runningByFinish() []int {
	var run []int
	for i := range s.ts {
		if s.ts[i].started && !s.ts[i].done {
			run = append(run, i)
		}
	}
	sort.SliceStable(run, func(a, b int) bool {
		pa := s.ts[run[a]].start + s.ts[run[a]].perceived
		pb := s.ts[run[b]].start + s.ts[run[b]].perceived
		if pa != pb {
			return pa < pb
		}
		return s.ts[run[a]].job.ID < s.ts[run[b]].job.ID
	})
	return run
}

// clampedFinish is a running task's perceived finish, never in the past.
func (s *refSim) clampedFinish(i int) float64 {
	pf := s.ts[i].start + s.ts[i].perceived
	if pf < s.now {
		pf = s.now
	}
	return pf
}

// reservation computes the EASY head reservation: walk releases in
// perceived-finish order accumulating freed cores until the head fits.
func (s *refSim) reservation(head int) (shadow float64, extra int) {
	need := s.ts[head].job.Cores
	free := s.free
	for _, ri := range s.runningByFinish() {
		free += s.ts[ri].job.Cores
		if free >= need {
			return s.clampedFinish(ri), free - need
		}
	}
	return math.Inf(1), 0
}

// easy implements aggressive backfilling: repeatedly recompute the head's
// reservation and start the first safe candidate, until none remains.
func (s *refSim) easy(q []int) {
	for s.free > 0 {
		var cands []int
		for _, i := range q[1:] {
			if !s.ts[i].started {
				cands = append(cands, i)
			}
		}
		if len(cands) == 0 {
			return
		}
		shadow, extra := s.reservation(q[0])
		if p := s.opt.BackfillOrder; p != nil {
			keys := make(map[int]float64, len(cands))
			for _, i := range cands {
				t := &s.ts[i]
				wait := s.now - t.job.Submit
				if wait < 0 {
					wait = 0
				}
				keys[i] = p.Score(sched.JobView{
					Runtime: t.perceived,
					Cores:   float64(t.job.Cores),
					Submit:  t.job.Submit,
					Wait:    wait,
				})
			}
			sort.SliceStable(cands, func(a, b int) bool {
				if keys[cands[a]] != keys[cands[b]] {
					return keys[cands[a]] < keys[cands[b]]
				}
				ta, tb := &s.ts[cands[a]], &s.ts[cands[b]]
				if ta.job.Submit != tb.job.Submit {
					return ta.job.Submit < tb.job.Submit
				}
				return ta.job.ID < tb.job.ID
			})
		}
		started := false
		for _, ci := range cands {
			t := &s.ts[ci]
			if t.job.Cores > s.free {
				continue
			}
			if s.now+t.perceived <= shadow+timeEps || t.job.Cores <= extra {
				s.start(ci, true)
				started = true
				break
			}
		}
		if !started {
			return
		}
	}
}

// conservative gives every waiting task a reservation in queue order over
// a freshly built availability profile; a task starts now only when its
// reservation is immediate.
func (s *refSim) conservative(q []int) {
	times := []float64{s.now}
	avail := []int{s.free}
	for _, ri := range s.runningByFinish() {
		at := s.clampedFinish(ri)
		last := len(times) - 1
		if at <= times[last]+timeEps {
			avail[last] += s.ts[ri].job.Cores
			continue
		}
		times = append(times, at)
		avail = append(avail, avail[last]+s.ts[ri].job.Cores)
	}
	for _, wi := range q {
		t := &s.ts[wi]
		st := earliest(times, avail, t.job.Cores, t.perceived)
		times, avail = reserve(times, avail, st, t.perceived, t.job.Cores)
		if st <= s.now+timeEps && t.job.Cores <= s.free {
			s.start(wi, true)
		}
	}
}

// earliest scans the step function for the first interval start at which
// cores are continuously available for duration. Expression-identical to
// the engine's profile.earliestStart.
func earliest(times []float64, avail []int, cores int, duration float64) float64 {
	for i := 0; i < len(times); i++ {
		if avail[i] < cores {
			continue
		}
		t := times[i]
		end := t + duration
		ok := true
		for j := i; j < len(times) && times[j] < end-timeEps; j++ {
			if avail[j] < cores {
				ok = false
				break
			}
		}
		if ok {
			return t
		}
	}
	return times[len(times)-1]
}

// breakAt ensures t is a breakpoint of the step function, returning its
// index and the (possibly reallocated) slices. Times beyond the last
// breakpoint extend the function; times before the origin clamp to it.
func breakAt(times []float64, avail []int, t float64) (int, []float64, []int) {
	last := len(times) - 1
	if t > times[last] {
		times = append(times, t)
		avail = append(avail, avail[last])
		return len(times) - 1, times, avail
	}
	if t <= times[0] {
		return 0, times, avail
	}
	i := sort.SearchFloat64s(times, t)
	if i < len(times) && times[i] == t {
		return i, times, avail
	}
	times = append(times, 0)
	avail = append(avail, 0)
	copy(times[i+1:], times[i:])
	copy(avail[i+1:], avail[i:])
	times[i] = t
	avail[i] = avail[i-1]
	return i, times, avail
}

// reserve subtracts cores over [t, t+duration) in the step function.
func reserve(times []float64, avail []int, t, duration float64, cores int) ([]float64, []int) {
	var start, end int
	start, times, avail = breakAt(times, avail, t)
	end, times, avail = breakAt(times, avail, t+duration)
	for i := start; i < end; i++ {
		avail[i] -= cores
	}
	return times, avail
}
