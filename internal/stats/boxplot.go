package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Boxplot is a Tukey five-number boxplot summary with 1.5·IQR whiskers,
// exactly the convention the paper states for Figures 4–9: "the box limits
// representing the upper and lower quartiles, and the whiskers representing
// the lowest and highest values outside the box limits but still inside the
// range of 1.5 times the difference between the upper and lower quartiles".
type Boxplot struct {
	Median   float64
	Q1, Q3   float64
	LoWhisk  float64 // smallest observation >= Q1 - 1.5*IQR
	HiWhisk  float64 // largest observation <= Q3 + 1.5*IQR
	Outliers []float64
	N        int
}

// NewBoxplot computes the boxplot summary of xs. It returns ErrEmpty for
// empty input.
func NewBoxplot(xs []float64) (Boxplot, error) {
	if len(xs) == 0 {
		return Boxplot{}, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	b := Boxplot{
		Median: quantileSorted(sorted, 0.5),
		Q1:     quantileSorted(sorted, 0.25),
		Q3:     quantileSorted(sorted, 0.75),
		N:      len(sorted),
	}
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.LoWhisk = math.NaN()
	b.HiWhisk = math.NaN()
	for _, x := range sorted {
		if x < loFence || x > hiFence {
			b.Outliers = append(b.Outliers, x)
			continue
		}
		if math.IsNaN(b.LoWhisk) {
			b.LoWhisk = x
		}
		b.HiWhisk = x
	}
	// All points can be outliers only if IQR is NaN; with finite data at
	// least the quartiles themselves are inside the fences.
	if math.IsNaN(b.LoWhisk) {
		b.LoWhisk, b.HiWhisk = b.Q1, b.Q3
	}
	return b, nil
}

// IQR returns the interquartile range.
func (b Boxplot) IQR() float64 { return b.Q3 - b.Q1 }

// String renders the five-number summary on one line.
func (b Boxplot) String() string {
	return fmt.Sprintf("n=%d lo=%.2f q1=%.2f med=%.2f q3=%.2f hi=%.2f outliers=%d",
		b.N, b.LoWhisk, b.Q1, b.Median, b.Q3, b.HiWhisk, len(b.Outliers))
}

// RenderBoxplots draws labeled horizontal ASCII boxplots on a shared linear
// scale, one per series, in the order given. It is the terminal stand-in
// for the paper's figures; width is the number of columns for the plot area
// (minimum 20).
func RenderBoxplots(labels []string, boxes []Boxplot, width int) string {
	if width < 20 {
		width = 20
	}
	if len(labels) != len(boxes) || len(boxes) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range boxes {
		bLo, bHi := b.LoWhisk, b.HiWhisk
		if len(b.Outliers) > 0 {
			bLo = math.Min(bLo, b.Outliers[0])
			bHi = math.Max(bHi, b.Outliers[len(b.Outliers)-1])
		}
		lo = math.Min(lo, bLo)
		hi = math.Max(hi, bHi)
	}
	if hi <= lo {
		hi = lo + 1
	}
	col := func(v float64) int {
		c := int(math.Round((v - lo) / (hi - lo) * float64(width-1)))
		if c < 0 {
			c = 0
		}
		if c > width-1 {
			c = width - 1
		}
		return c
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var sb strings.Builder
	for i, b := range boxes {
		row := make([]byte, width)
		for j := range row {
			row[j] = ' '
		}
		for j := col(b.LoWhisk); j <= col(b.HiWhisk); j++ {
			row[j] = '-'
		}
		for j := col(b.Q1); j <= col(b.Q3); j++ {
			row[j] = '='
		}
		row[col(b.LoWhisk)] = '|'
		row[col(b.HiWhisk)] = '|'
		row[col(b.Median)] = 'M'
		for _, o := range b.Outliers {
			row[col(o)] = 'o'
		}
		fmt.Fprintf(&sb, "%-*s [%s] med=%.2f\n", labelW, labels[i], string(row), b.Median)
	}
	fmt.Fprintf(&sb, "%-*s  %-*.6g%*.6g\n", labelW, "scale", width/2, lo, width-width/2, hi)
	return sb.String()
}
