package stats

import (
	"math"
	"sort"
)

// Ranks returns the 1-based ranks of xs with ties assigned their average
// rank (the "fractional" convention Spearman correlation expects).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Pearson returns the Pearson correlation coefficient of the paired
// samples, or NaN when undefined (fewer than two points or zero variance).
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of the paired samples:
// the Pearson correlation of their rank vectors. For a scheduling policy
// this is the right fidelity metric — only the induced order of the queue
// matters, not the absolute score values.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	return Pearson(Ranks(x), Ranks(y))
}
