package stats

// Unit tests specific to hist.go beyond the smoke checks in
// stats_test.go: exact bin placement at boundaries, degenerate
// construction, proportional bar rendering, and Welford edge semantics.

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramExactBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5) // bins of width 2: [0,2) [2,4) [4,6) [6,8) [8,10)
	for _, x := range []float64{0, 1.9, 2, 4.5, 9.99, 10} {
		h.Add(x) // 10 == hi clamps into the last bin
	}
	want := []int{2, 1, 1, 0, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("counts = %v, want %v", h.Counts, want)
		}
	}
	if h.Total() != 6 {
		t.Errorf("total = %d, want 6", h.Total())
	}
	if got := h.Fraction(4); got != 2.0/6.0 {
		t.Errorf("Fraction(4) = %v", got)
	}
}

func TestHistogramDegenerateConstruction(t *testing.T) {
	// bins < 1 is promoted to one bin; hi <= lo widens to a unit range.
	h := NewHistogram(5, 5, 0)
	if len(h.Counts) != 1 || h.Hi != 6 {
		t.Fatalf("degenerate histogram: %+v", h)
	}
	h.Add(5)
	if h.Counts[0] != 1 || h.Fraction(0) != 1 {
		t.Errorf("counts = %v fraction = %v", h.Counts, h.Fraction(0))
	}
}

func TestHistogramRenderBarWidths(t *testing.T) {
	h := NewHistogram(0, 4, 2)
	h.Add(1)
	h.Add(1)
	h.Add(3)
	out := h.Render(20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("rendered %d lines, want 2:\n%s", len(lines), out)
	}
	if strings.Count(lines[0], "#") != 20 {
		t.Errorf("fullest bin must render the full width:\n%s", out)
	}
	if strings.Count(lines[1], "#") != 10 {
		t.Errorf("half-count bin must render half the width:\n%s", out)
	}
	// Width below the minimum is clamped to 10 columns.
	if narrow := h.Render(1); strings.Count(strings.SplitN(narrow, "\n", 2)[0], "#") != 10 {
		t.Errorf("clamped width render:\n%s", narrow)
	}
}

func TestWelfordEmptyIsNaN(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Variance()) || !math.IsNaN(w.StdDev()) {
		t.Errorf("empty accumulator: mean=%v var=%v", w.Mean(), w.Variance())
	}
	if w.N() != 0 {
		t.Errorf("n = %d", w.N())
	}
}

func TestWelfordMergeEmptyAccumulators(t *testing.T) {
	var whole Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		whole.Add(x)
	}
	if whole.Mean() != 5 || whole.Variance() != 4 || whole.StdDev() != 2 {
		t.Fatalf("known population moments: mean=%v var=%v", whole.Mean(), whole.Variance())
	}
	// Merging into an empty accumulator copies; merging an empty one is a
	// no-op.
	var empty Welford
	empty.Merge(whole)
	if empty != whole {
		t.Error("merge into empty lost state")
	}
	before := whole
	whole.Merge(Welford{})
	if whole != before {
		t.Error("merging an empty accumulator changed state")
	}
}
