package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width binning of observations over [Lo, Hi).
// Values outside the range are clamped into the first or last bin so no
// observation is silently dropped.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Render draws the histogram as ASCII bars with one row per bin.
func (h *Histogram) Render(width int) string {
	if width < 10 {
		width = 10
	}
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC == 0 {
		maxC = 1
	}
	var sb strings.Builder
	binW := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*width/maxC)
		fmt.Fprintf(&sb, "[%10.4g,%10.4g) %6d %s\n", h.Lo+float64(i)*binW, h.Lo+float64(i+1)*binW, c, bar)
	}
	return sb.String()
}

// Welford is an online mean/variance accumulator (Welford's algorithm).
// The trial engine uses it to accumulate per-task score statistics without
// storing every trial.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations recorded so far.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (NaN if no observations).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the running population variance (NaN if no observations).
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Merge combines another accumulator into this one (Chan et al. parallel
// merge), enabling sharded parallel accumulation with a deterministic
// final reduce.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}
