package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRanksSimple(t *testing.T) {
	got := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{1, 2, 2, 3})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
	// All equal: everyone gets the average rank.
	got = Ranks([]float64{5, 5, 5})
	for _, r := range got {
		if r != 2 {
			t.Fatalf("tied ranks = %v, want all 2", got)
		}
	}
}

func TestPearsonKnown(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect linear = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect inverse = %v, want -1", got)
	}
	if got := Pearson(x, []float64{3, 3, 3, 3, 3}); !math.IsNaN(got) {
		t.Errorf("zero variance = %v, want NaN", got)
	}
	if got := Pearson(x, []float64{1}); !math.IsNaN(got) {
		t.Errorf("length mismatch = %v, want NaN", got)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly monotone (even wildly nonlinear) relation gives rho=1.
	x := []float64{1, 2, 3, 4, 5, 6}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Exp(v) // nonlinear but monotone
	}
	if got := Spearman(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("monotone rho = %v, want 1", got)
	}
	// Reverse gives -1.
	for i, v := range x {
		y[i] = -v * v * v
	}
	if got := Spearman(x, y); math.Abs(got+1) > 1e-12 {
		t.Errorf("antitone rho = %v, want -1", got)
	}
}

func TestSpearmanBounds(t *testing.T) {
	if err := quick.Check(func(pairs []float64) bool {
		if len(pairs) < 6 {
			return true
		}
		half := len(pairs) / 2
		x := make([]float64, 0, half)
		y := make([]float64, 0, half)
		for i := 0; i < half; i++ {
			a, b := pairs[2*i], pairs[2*i+1]
			if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
				return true
			}
			x = append(x, a)
			y = append(y, b)
		}
		rho := Spearman(x, y)
		return math.IsNaN(rho) || (rho >= -1-1e-9 && rho <= 1+1e-9)
	}, nil); err != nil {
		t.Error(err)
	}
}
